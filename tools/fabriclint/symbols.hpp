#pragma once
/// \file symbols.hpp
/// Per-translation-unit symbol analysis for fabriclint's semantic engine.
///
/// analyze_tu() walks the token stream of one file and resolves the scope
/// structure of the project's C++ subset: namespaces, classes with their
/// fields (including FABRIC_GUARDED_BY annotations from
/// src/common/concurrency.hpp) and mutex members, and function
/// definitions/declarations with their body token ranges. Inside each
/// function body it records the events the semantic rules consume: lock
/// acquisitions with their lexical scope, call sites, std::thread locals,
/// thread-lambda (parallel) regions, floating-point local declarations and
/// direct stdio uses. Deliberately not a real C++ front end — like the
/// lexer, it tolerates a lossy view; the rules built on top
/// (callgraph.hpp, conc.* / flow.* passes) are designed so that what the
/// subset cannot see degrades to silence, not to false findings.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace vpga::fabriclint {

/// One data member of a class. `guarded_by` is the mutex named in a
/// FABRIC_GUARDED_BY annotation ("" when unannotated).
struct FieldInfo {
  std::string name;
  std::string guarded_by;
  int line = 0;
};

/// One class/struct with the members the conc rules care about.
struct ClassInfo {
  std::string name;
  std::vector<FieldInfo> fields;
  std::set<std::string> mutexes;  ///< members of a *mutex type
  /// Data members of container type the perf rules care about:
  /// member name -> head type ident (map, unordered_map, vector, ...).
  std::map<std::string, std::string> container_fields;
};

/// A mutex acquisition inside a function body. `tok` is the index of the
/// acquiring token; the lock is held for tokens in (tok, scope_end).
struct LockEvent {
  std::string mutex;       ///< last path segment of the lock argument
  std::size_t tok = 0;
  std::size_t scope_end = 0;  ///< token index of the enclosing block's '}'
  int line = 0;
};

/// One call site inside a function body.
struct CallSite {
  std::string callee;     ///< unqualified name
  std::string qualifier;  ///< `X` of `X::callee` ("" otherwise)
  bool member_call = false;  ///< reached through `.` or `->`
  std::size_t tok = 0;
  int line = 0;
};

/// A `std::thread t(...)` local and whether its lifetime is resolved.
struct ThreadLocalVar {
  std::string name;
  std::size_t tok = 0;
  int line = 0;
  bool joined_or_detached = false;  ///< join()/detach()/moved/escaped
};

/// Token range of a lambda body passed to a std::thread constructor.
struct ParallelRegion {
  std::size_t begin = 0;  ///< token index of the lambda body '{'
  std::size_t end = 0;    ///< token index one past the matching '}'
};

/// A local variable declaration of floating-point type.
struct FloatVar {
  std::string name;
  std::size_t tok = 0;
};

/// An unsuppressed direct stdio use (io.stray-stream token set).
struct StdioUse {
  std::string callee;
  int line = 0;
};

/// One function definition or declaration.
struct FunctionInfo {
  std::string name;
  std::string class_name;  ///< enclosing or `X::` qualifier class ("" = free)
  int line = 0;
  bool is_definition = false;
  bool is_ctor_or_dtor = false;
  /// Raw return-type token texts (empty for ctors/dtors and declarations the
  /// subset could not attribute a type to).
  std::vector<std::string> return_type;
  /// The return type carries `&`/`&&` (return_type keeps only idents, so the
  /// reference qualifier would otherwise be lost; lifetime.dangling-local).
  bool returns_reference = false;
  std::size_t params_open = 0;   ///< token index of the parameter-list '('
  std::size_t params_close = 0;  ///< token index of the matching ')'
  std::size_t body_begin = 0;  ///< token index of '{' (definitions only)
  std::size_t body_end = 0;    ///< one past the matching '}'
  std::vector<LockEvent> locks;
  std::vector<CallSite> calls;
  std::vector<ThreadLocalVar> thread_locals;
  std::vector<ParallelRegion> parallel_regions;
  std::vector<FloatVar> float_vars;
  std::vector<StdioUse> stdio_uses;  ///< unsuppressed direct stdio only

  [[nodiscard]] bool returns_type(std::string_view type) const {
    for (const std::string& t : return_type)
      if (t == type) return true;
    return false;
  }
};

/// Everything the semantic rules need from one file.
struct TuSymbols {
  std::string rel_path;
  LexResult lexed;
  std::vector<ClassInfo> classes;
  std::vector<FunctionInfo> functions;
  /// line -> rule ids suppressed by well-formed directives (same semantics
  /// as the token-level Linter: own-line directives bind to the next code
  /// line).
  std::map<int, std::set<std::string>> suppressed;
  /// Local variables of known class type per function body is resolved
  /// on demand by the rule passes via typed_locals().

  [[nodiscard]] bool is_suppressed(int line, std::string_view rule) const {
    const auto it = suppressed.find(line);
    return it != suppressed.end() && it->second.count(std::string(rule)) > 0;
  }
};

/// Analyzes one file. `rel_path` is repo-relative with forward slashes.
TuSymbols analyze_tu(std::string_view rel_path, std::string_view content);

/// Resolves local variables of known class types inside `fn`'s body:
/// `ClassName [&*] name` declarations, mapping variable name -> class name.
/// `classes` is the project-wide class index (name -> ClassInfo).
std::map<std::string, std::string> typed_locals(
    const TuSymbols& tu, const FunctionInfo& fn,
    const std::map<std::string, const ClassInfo*>& classes);

}  // namespace vpga::fabriclint
