#include "symbols.hpp"

#include <array>

namespace vpga::fabriclint {
namespace {

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool all_caps_macro(std::string_view name) {
  bool has_alpha = false;
  for (char c : name) {
    if (c >= 'a' && c <= 'z') return false;
    if (c >= 'A' && c <= 'Z') has_alpha = true;
  }
  return has_alpha;
}

const std::set<std::string_view>& control_keywords() {
  static const std::set<std::string_view> kw = {
      "if",       "for",      "while",    "switch",       "catch",   "return",
      "sizeof",   "alignof",  "decltype", "static_assert", "noexcept", "throw",
      "co_await", "co_yield", "co_return", "new",          "delete",  "typeid",
      "alignas",  "requires", "assert"};
  return kw;
}

const std::set<std::string_view>& lock_raii_types() {
  static const std::set<std::string_view> t = {"lock_guard", "scoped_lock",
                                               "unique_lock", "shared_lock"};
  return t;
}

const std::set<std::string_view>& stdio_names() {
  static const std::set<std::string_view> s = {
      "cout", "cerr", "clog",     "printf", "fprintf", "vprintf",
      "puts", "putchar", "fputs", "fputc",  "fwrite"};
  return s;
}

bool mutex_type_name(std::string_view t) {
  return t == "mutex" || t == "recursive_mutex" || t == "shared_mutex" ||
         t == "timed_mutex" || t == "recursive_timed_mutex";
}

/// Container head-type idents the perf rules track for data members.
bool container_type_name(std::string_view t) {
  return t == "map" || t == "unordered_map" || t == "multimap" ||
         t == "unordered_multimap" || t == "set" || t == "unordered_set" ||
         t == "multiset" || t == "unordered_multiset" || t == "vector" ||
         t == "deque" || t == "list" || t == "string";
}

/// Index one past the `>` matching the `<` at `open` (`>>` counts twice), or
/// npos when it never closes before `;`/`{`.
std::size_t match_angle(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "<" || t.text == "<<") depth += static_cast<int>(t.text.size());
    if (t.text == ">" || t.text == ">>") {
      depth -= static_cast<int>(t.text.size());
      if (depth <= 0) return i + 1;
    }
    if (t.text == ";" || t.text == "{") return std::string::npos;
  }
  return std::string::npos;
}

/// The analyzer proper: one instance per TU.
class TuAnalyzer {
 public:
  TuAnalyzer(std::string_view rel_path, std::string_view content) {
    tu_.rel_path = std::string(rel_path);
    tu_.lexed = lex(content);
    match_brackets();
    index_suppressions();
  }

  TuSymbols run() {
    scan_scopes();
    return std::move(tu_);
  }

 private:
  const std::vector<Token>& toks() const { return tu_.lexed.tokens; }

  /// close_[i] = index of the token closing the (), [] or {} opened at i.
  void match_brackets() {
    const auto& t = toks();
    close_.assign(t.size(), std::string::npos);
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kPunct || t[i].text.size() != 1) continue;
      const char c = t[i].text[0];
      if (c == '(' || c == '[' || c == '{') {
        stack.push_back(i);
      } else if (c == ')' || c == ']' || c == '}') {
        const char open = c == ')' ? '(' : (c == ']' ? '[' : '{');
        // Pop until the matching opener kind (tolerates lossy streams).
        while (!stack.empty() && toks()[stack.back()].text[0] != open) stack.pop_back();
        if (!stack.empty()) {
          close_[stack.back()] = i;
          stack.pop_back();
        }
      }
    }
  }

  int next_code_line(int line) const {
    for (const Token& t : toks())
      if (t.line > line) return t.line;
    return line + 1;
  }

  /// Well-formed suppressions only; malformed ones are reported by the
  /// token-level Linter, not here.
  void index_suppressions() {
    for (const Directive& d : tu_.lexed.directives) {
      const int target = d.own_line ? next_code_line(d.line) : d.line;
      if (d.kind == Directive::Kind::kSortedDownstream)
        tu_.suppressed[target].insert("det.unordered-iter");
      if (d.kind == Directive::Kind::kDisable && d.has_reason && !d.rule.empty())
        tu_.suppressed[target].insert(d.rule);
    }
  }

  // -------------------------------------------------------------------------
  // Scope scan
  // -------------------------------------------------------------------------

  struct Scope {
    enum class Kind { kNamespace, kClass, kOther };
    Kind kind = Kind::kOther;
    int class_idx = -1;
    std::size_t close = std::string::npos;
  };

  bool at_decl_scope() const {
    return scopes_.empty() || scopes_.back().kind != Scope::Kind::kOther;
  }
  int current_class() const {
    return scopes_.empty() || scopes_.back().kind != Scope::Kind::kClass
               ? -1
               : scopes_.back().class_idx;
  }

  void scan_scopes() {
    const auto& t = toks();
    std::size_t i = 0;
    std::size_t stmt_start = 0;
    while (i < t.size()) {
      if (is_punct(t[i], "}")) {
        if (!scopes_.empty() && scopes_.back().close == i) scopes_.pop_back();
        stmt_start = ++i;
        continue;
      }
      if (is_punct(t[i], ";")) {
        if (current_class() >= 0) scan_field_statement(stmt_start, i);
        stmt_start = ++i;
        continue;
      }
      if (is_ident(t[i], "namespace") && !(i > 0 && is_ident(t[i - 1], "using"))) {
        std::size_t j = i + 1;
        while (j < t.size() && !is_punct(t[j], "{") && !is_punct(t[j], ";")) ++j;
        if (j < t.size() && is_punct(t[j], "{")) {
          scopes_.push_back({Scope::Kind::kNamespace, -1, close_[j]});
          stmt_start = i = j + 1;
        } else {
          stmt_start = i = j + 1;  // namespace alias / malformed
        }
        continue;
      }
      if ((is_ident(t[i], "class") || is_ident(t[i], "struct") || is_ident(t[i], "union")) &&
          !(i > 0 && (is_punct(t[i - 1], "<") || is_punct(t[i - 1], ",") ||
                      is_ident(t[i - 1], "enum")))) {
        if (std::size_t adv = try_open_class(i, stmt_start); adv != 0) {
          i = adv;
          continue;
        }
      }
      if (at_decl_scope() && t[i].kind == TokKind::kIdent) {
        if (std::size_t adv = try_parse_function(i, stmt_start); adv != 0) {
          stmt_start = i = adv;
          continue;
        }
      }
      if (is_punct(t[i], "{")) {
        scopes_.push_back({Scope::Kind::kOther, -1, close_[i]});
        stmt_start = ++i;
        continue;
      }
      ++i;
    }
  }

  /// At a `class`/`struct` keyword: opens a class scope when this is a
  /// definition. Returns the next scan index, or 0 when not a definition.
  std::size_t try_open_class(std::size_t i, std::size_t& stmt_start) {
    const auto& t = toks();
    std::size_t j = i + 1;
    std::string name;
    if (j < t.size() && t[j].kind == TokKind::kIdent) name = t[j++].text;
    // Walk to '{' (definition) or ';'/'('/'=' (declaration, parameter, ...).
    while (j < t.size() && !is_punct(t[j], "{")) {
      if (is_punct(t[j], ";") || is_punct(t[j], "(") || is_punct(t[j], ")") ||
          is_punct(t[j], "=") || is_punct(t[j], ">"))
        return 0;
      ++j;
    }
    if (j >= t.size() || name.empty()) return 0;
    tu_.classes.push_back({name, {}, {}});
    scopes_.push_back(
        {Scope::Kind::kClass, static_cast<int>(tu_.classes.size() - 1), close_[j]});
    stmt_start = j + 1;
    return j + 1;
  }

  /// A class-scope statement ending in `;`: extracts FABRIC_GUARDED_BY
  /// annotations and mutex members.
  void scan_field_statement(std::size_t begin, std::size_t end) {
    const auto& t = toks();
    ClassInfo& cls = tu_.classes[static_cast<std::size_t>(current_class())];
    for (std::size_t i = begin; i < end; ++i) {
      if (is_ident(t[i], "FABRIC_GUARDED_BY") && i > begin &&
          t[i - 1].kind == TokKind::kIdent && i + 1 < end && is_punct(t[i + 1], "(")) {
        const std::size_t close = close_[i + 1];
        if (close == std::string::npos || close > end) continue;
        std::string mutex;
        for (std::size_t k = i + 2; k < close; ++k)
          if (t[k].kind == TokKind::kIdent) mutex = t[k].text;  // last path segment
        if (!mutex.empty())
          cls.fields.push_back({t[i - 1].text, mutex, t[i - 1].line});
      }
      if (t[i].kind == TokKind::kIdent && mutex_type_name(t[i].text) && i + 1 < end &&
          t[i + 1].kind == TokKind::kIdent &&
          (i + 2 >= end || is_punct(t[i + 2], ";") || is_punct(t[i + 2], "=") ||
           is_ident(t[i + 2], "FABRIC_GUARDED_BY")))
        cls.mutexes.insert(t[i + 1].text);
      // Container members: `map<...> name` / `vector<...> name` / `string
      // name` — the head type ident, an optional template argument list, then
      // the member name (perf rules resolve member receivers through these).
      if (t[i].kind == TokKind::kIdent && container_type_name(t[i].text) && i + 1 < end) {
        std::size_t j = i + 1;
        if (is_punct(t[j], "<")) {
          const std::size_t a = match_angle(t, j);
          if (a == std::string::npos || a >= end) continue;
          j = a;
        }
        if (j < end && t[j].kind == TokKind::kIdent &&
            (j + 1 >= end || is_punct(t[j + 1], ";") || is_punct(t[j + 1], "=") ||
             is_punct(t[j + 1], "{") || is_ident(t[j + 1], "FABRIC_GUARDED_BY"))) {
          cls.container_fields.emplace(t[j].text, t[i].text);
          i = j;
        }
      }
    }
  }

  /// At an identifier followed by `(` in declaration scope: records a
  /// function definition (with body analysis) or declaration. Returns the
  /// next scan index, or 0 when this is not a function.
  std::size_t try_parse_function(std::size_t i, std::size_t stmt_start) {
    const auto& t = toks();
    std::string name = t[i].text;
    std::size_t open = i + 1;
    if (is_ident(t[i], "operator")) {
      // operator<op>( — fold the operator tokens into the name.
      std::size_t j = i + 1;
      while (j < t.size() && !is_punct(t[j], "(") && j - i <= 3) name += t[j++].text;
      if (j < t.size() && is_punct(t[j], "(")) {
        // operator()(args): the first () pair is part of the name.
        if (close_[j] == j + 1 && j + 2 < t.size() && is_punct(t[j + 2], "(")) {
          name += "()";
          j += 2;
        }
        open = j;
      } else {
        return 0;
      }
    }
    if (open >= t.size() || !is_punct(t[open], "(")) return 0;
    if (control_keywords().count(name) > 0) return 0;
    if (all_caps_macro(name)) return 0;  // VPGA_ASSERT(...), FABRIC_GUARDED_BY(...)
    const std::size_t params_close = close_[open];
    if (params_close == std::string::npos) return 0;

    FunctionInfo fn;
    fn.name = name;
    fn.line = t[i].line;

    // `Class::name` qualification (nearest qualifier wins for A::B::name).
    std::size_t name_start = i;
    while (name_start >= 2 && is_punct(t[name_start - 1], "::") &&
           t[name_start - 2].kind == TokKind::kIdent) {
      if (fn.class_name.empty()) fn.class_name = t[name_start - 2].text;
      name_start -= 2;
    }
    const bool dtor = name_start > 0 && is_punct(t[name_start - 1], "~");
    if (dtor) --name_start;
    if (fn.class_name.empty() && current_class() >= 0)
      fn.class_name = tu_.classes[static_cast<std::size_t>(current_class())].name;
    fn.is_ctor_or_dtor = dtor || (!fn.class_name.empty() && fn.name == fn.class_name);

    // Return type: statement tokens before the (qualified) name.
    if (!fn.is_ctor_or_dtor)
      for (std::size_t k = stmt_start; k < name_start; ++k) {
        if (t[k].kind == TokKind::kIdent) fn.return_type.push_back(t[k].text);
        if (is_punct(t[k], "&") || is_punct(t[k], "&&")) fn.returns_reference = true;
      }
    fn.params_open = open;
    fn.params_close = params_close;

    // Past the parameter list: specifiers, ctor init list, then `{` or `;`.
    std::size_t j = params_close + 1;
    while (j < t.size()) {
      if (is_punct(t[j], "{") || is_punct(t[j], ";")) break;
      if (is_punct(t[j], "=")) {
        // = default / = delete / = 0: declaration; skip to ';'.
        while (j < t.size() && !is_punct(t[j], ";")) ++j;
        break;
      }
      if (is_punct(t[j], ":")) {
        // Ctor member-init list: skip each `name(args)` / `name{args}`.
        ++j;
        while (j < t.size()) {
          while (j < t.size() && !is_punct(t[j], "(") && !is_punct(t[j], "{") &&
                 !is_punct(t[j], ";"))
            ++j;
          if (j >= t.size() || is_punct(t[j], ";")) break;
          const std::size_t c = close_[j];
          if (c == std::string::npos) return 0;
          if (is_punct(t[j], "{")) {
            // Brace-init of a member, unless this IS the body: a body brace
            // follows `)`/`}` of a previous initializer or the init colon
            // with no preceding member name — heuristic: a member init brace
            // is preceded by an identifier.
            if (j == 0 || t[j - 1].kind != TokKind::kIdent) break;
          }
          j = c + 1;
          if (j < t.size() && is_punct(t[j], ",")) {
            ++j;
            continue;
          }
          break;
        }
        continue;
      }
      if (is_punct(t[j], "(")) {  // noexcept(...)
        const std::size_t c = close_[j];
        if (c == std::string::npos) return 0;
        j = c + 1;
        continue;
      }
      if (t[j].kind == TokKind::kIdent || t[j].kind == TokKind::kPunct) {
        // const / noexcept / override / final / & / && / -> trailing return
        ++j;
        continue;
      }
      return 0;
    }
    if (j >= t.size()) return 0;

    if (is_punct(t[j], "{")) {
      const std::size_t body_close = close_[j];
      if (body_close == std::string::npos) return 0;
      fn.is_definition = true;
      fn.body_begin = j;
      fn.body_end = body_close + 1;
      analyze_body(fn, open, params_close);
      tu_.functions.push_back(std::move(fn));
      return body_close + 1;
    }
    if (is_punct(t[j], ";")) {
      tu_.functions.push_back(std::move(fn));
      return j + 1;
    }
    return 0;
  }

  // -------------------------------------------------------------------------
  // Body analysis
  // -------------------------------------------------------------------------

  /// Innermost enclosing block close for a token index, given a stack of
  /// open-brace token indices.
  std::size_t enclosing_close(const std::vector<std::size_t>& blocks,
                              std::size_t body_end) const {
    if (blocks.empty()) return body_end - 1;
    const std::size_t c = close_[blocks.back()];
    return c == std::string::npos ? body_end - 1 : c;
  }

  void analyze_body(FunctionInfo& fn, std::size_t params_open, std::size_t params_close) {
    const auto& t = toks();

    // Parameters of floating-point type count as accumulation targets.
    for (std::size_t k = params_open + 1; k < params_close; ++k)
      if ((is_ident(t[k], "double") || is_ident(t[k], "float")) && k + 1 < params_close) {
        std::size_t m = k + 1;
        while (m < params_close && (is_punct(t[m], "&") || is_punct(t[m], "*") ||
                                    is_ident(t[m], "const")))
          ++m;
        if (m < params_close && t[m].kind == TokKind::kIdent)
          fn.float_vars.push_back({t[m].text, m});
      }

    std::vector<std::size_t> blocks;  // open `{` indices inside the body
    for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
      if (is_punct(t[i], "{")) {
        blocks.push_back(i);
        continue;
      }
      if (is_punct(t[i], "}")) {
        if (!blocks.empty() && close_[blocks.back()] == i) blocks.pop_back();
        continue;
      }
      if (t[i].kind != TokKind::kIdent) continue;

      // RAII lock acquisition: lock_guard/scoped_lock/unique_lock/shared_lock
      // [<...>] var(args).
      if (lock_raii_types().count(t[i].text) > 0) {
        std::size_t j = i + 1;
        if (j < t.size() && is_punct(t[j], "<")) {
          const std::size_t a = match_angle(t, j);
          if (a == std::string::npos) continue;
          j = a;
        }
        if (j < t.size() && t[j].kind == TokKind::kIdent) ++j;  // variable name
        if (j >= t.size() || !is_punct(t[j], "(")) continue;
        const std::size_t args_close = close_[j];
        if (args_close == std::string::npos || args_close >= fn.body_end) continue;
        const std::size_t scope_end = enclosing_close(blocks, fn.body_end);
        std::string mutex;
        for (std::size_t k = j + 1; k <= args_close; ++k) {
          if (t[k].kind == TokKind::kIdent) mutex = t[k].text;  // last path segment
          if ((is_punct(t[k], ",") && close_[j] == args_close) || k == args_close) {
            if (!mutex.empty())
              fn.locks.push_back({mutex, i, scope_end, t[i].line});
            mutex.clear();
          }
        }
        continue;
      }

      // Manual m.lock() ... m.unlock(): held to unlock or body end.
      if (is_ident(t[i], "lock") && i >= 2 &&
          (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")) &&
          t[i - 2].kind == TokKind::kIdent && i + 1 < t.size() && is_punct(t[i + 1], "(")) {
        const std::string& m = t[i - 2].text;
        std::size_t until = fn.body_end - 1;
        for (std::size_t k = i + 1; k + 1 < fn.body_end; ++k)
          if (is_ident(t[k], "unlock") && k >= 2 && t[k - 2].text == m &&
              (is_punct(t[k - 1], ".") || is_punct(t[k - 1], "->"))) {
            until = k;
            break;
          }
        fn.locks.push_back({m, i, until, t[i].line});
        continue;
      }

      // std::thread locals and thread-lambda parallel regions.
      if (is_ident(t[i], "thread") || is_ident(t[i], "jthread")) {
        std::size_t ctor = std::string::npos;
        if (i + 1 < t.size() && t[i + 1].kind == TokKind::kIdent && i + 2 < t.size() &&
            (is_punct(t[i + 2], "(") || is_punct(t[i + 2], "{"))) {
          fn.thread_locals.push_back({t[i + 1].text, i + 1, t[i + 1].line, false});
          ctor = i + 2;
        } else if (i + 1 < t.size() && is_punct(t[i + 1], "(")) {
          ctor = i + 1;  // temporary std::thread(...)
        }
        if (ctor != std::string::npos) record_parallel_regions(fn, ctor);
        continue;
      }

      // Floating-point local declarations.
      if ((is_ident(t[i], "double") || is_ident(t[i], "float")) && i + 1 < t.size()) {
        std::size_t m = i + 1;
        while (m < t.size() &&
               (is_punct(t[m], "&") || is_punct(t[m], "*") || is_ident(t[m], "const")))
          ++m;
        if (m < t.size() && t[m].kind == TokKind::kIdent)
          fn.float_vars.push_back({t[m].text, m});
        continue;
      }

      // Unsuppressed direct stdio.
      if (stdio_names().count(t[i].text) > 0 &&
          !(i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) &&
          !tu_.is_suppressed(t[i].line, "io.stray-stream")) {
        fn.stdio_uses.push_back({t[i].text, t[i].line});
        continue;
      }

      // Call sites.
      if (i + 1 < t.size() && is_punct(t[i + 1], "(") &&
          control_keywords().count(t[i].text) == 0 && !all_caps_macro(t[i].text)) {
        CallSite c;
        c.callee = t[i].text;
        c.tok = i;
        c.line = t[i].line;
        if (i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) {
          c.member_call = true;
          fn.calls.push_back(std::move(c));
        } else if (i >= 2 && is_punct(t[i - 1], "::") && t[i - 2].kind == TokKind::kIdent) {
          c.qualifier = t[i - 2].text;
          fn.calls.push_back(std::move(c));
        } else {
          // `Type name(...)` declarations are excluded by the prev-token
          // test; keyword predecessors that introduce expressions are not.
          const Token& prev = t[i - 1];
          const bool decl_like =
              i > fn.body_begin &&
              ((prev.kind == TokKind::kIdent && prev.text != "return" &&
                prev.text != "else" && prev.text != "do" && prev.text != "co_return" &&
                prev.text != "co_yield") ||
               is_punct(prev, ">") || is_punct(prev, "*") || is_punct(prev, "&"));
          if (!decl_like) fn.calls.push_back(std::move(c));
        }
      }
    }

    // Resolve thread lifetimes: join()/detach()/std::move(t)/swap escape.
    for (ThreadLocalVar& tv : fn.thread_locals) {
      for (std::size_t k = tv.tok + 1; k + 1 < fn.body_end; ++k) {
        if (t[k].text != tv.name || t[k].kind != TokKind::kIdent) continue;
        const bool member = k + 2 < fn.body_end &&
                            (is_punct(t[k + 1], ".") || is_punct(t[k + 1], "->")) &&
                            (is_ident(t[k + 2], "join") || is_ident(t[k + 2], "detach"));
        const bool moved = k >= 2 && is_punct(t[k - 1], "(") &&
                           (is_ident(t[k - 2], "move") || is_ident(t[k - 2], "swap"));
        const bool returned = k >= 1 && is_ident(t[k - 1], "return");
        if (member || moved || returned) {
          tv.joined_or_detached = true;
          break;
        }
      }
    }
  }

  /// Records the body token range of every lambda literal among a thread
  /// constructor's arguments.
  void record_parallel_regions(FunctionInfo& fn, std::size_t ctor_open) {
    const auto& t = toks();
    const std::size_t args_close = close_[ctor_open];
    if (args_close == std::string::npos) return;
    for (std::size_t k = ctor_open + 1; k < args_close; ++k) {
      if (!is_punct(t[k], "[")) continue;
      if (!(is_punct(t[k - 1], "(") || is_punct(t[k - 1], ",") || is_punct(t[k - 1], "{")))
        continue;  // subscript, not a lambda introducer
      const std::size_t cap_close = close_[k];
      if (cap_close == std::string::npos || cap_close >= args_close) continue;
      std::size_t j = cap_close + 1;
      if (j < args_close && is_punct(t[j], "(")) {
        const std::size_t p = close_[j];
        if (p == std::string::npos) continue;
        j = p + 1;
      }
      while (j < args_close && !is_punct(t[j], "{")) ++j;  // mutable/noexcept/->
      if (j >= args_close) continue;
      const std::size_t body_close = close_[j];
      if (body_close == std::string::npos) continue;
      fn.parallel_regions.push_back({j, body_close + 1});
      k = body_close;
    }
  }

  TuSymbols tu_;
  std::vector<std::size_t> close_;
  std::vector<Scope> scopes_;
};

}  // namespace

TuSymbols analyze_tu(std::string_view rel_path, std::string_view content) {
  return TuAnalyzer(rel_path, content).run();
}

std::map<std::string, std::string> typed_locals(
    const TuSymbols& tu, const FunctionInfo& fn,
    const std::map<std::string, const ClassInfo*>& classes) {
  std::map<std::string, std::string> locals;
  const auto& t = tu.lexed.tokens;
  if (!fn.is_definition) return locals;
  for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
    if (t[i].kind != TokKind::kIdent || classes.count(t[i].text) == 0) continue;
    std::size_t j = i + 1;
    while (j + 1 < fn.body_end &&
           (is_punct(t[j], "&") || is_punct(t[j], "*") || is_ident(t[j], "const")))
      ++j;
    if (j + 1 < fn.body_end && t[j].kind == TokKind::kIdent)
      locals.emplace(t[j].text, t[i].text);
  }
  return locals;
}

}  // namespace vpga::fabriclint
