/// \file main.cpp
/// fabriclint CLI — walks the tree, runs every rule, prints findings as
/// file:line: rule: message, optionally emits the JSON findings document,
/// and exits nonzero on any unsuppressed finding (docs/LINT.md).
///
/// Usage:
///   fabriclint [--root DIR] [--json FILE|-] [--headers [COMPILER]] [DIR...]
///
/// DIR... are lint roots relative to --root (default: src bench examples).
/// --headers additionally compiles every src/**/*.hpp standalone
/// (hdr.self-contained); the same property is enforced at build time by the
/// vpga_header_selfcheck target, so CI's fabriclint job runs without it.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fabriclint.hpp"

namespace {

namespace fs = std::filesystem;
using vpga::fabriclint::Finding;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string rel_slash(const fs::path& p, const fs::path& root) {
  std::string s = p.lexically_relative(root).generic_string();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string json_out;
  bool headers = false;
  std::string compiler = "c++";
  std::vector<std::string> dirs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--headers") {
      headers = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') compiler = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: fabriclint [--root DIR] [--json FILE|-] [--headers [CXX]] "
                   "[DIR...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fabriclint: unknown option " << arg << "\n";
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "bench", "examples"};

  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::cerr << "fabriclint: bad --root: " << ec.message() << "\n";
    return 2;
  }

  // The obs name registry (absence is tolerated: convention checks still run).
  vpga::fabriclint::ObsRegistry registry;
  const fs::path names = root / "src" / "obs" / "names.hpp";
  if (fs::exists(names)) registry = vpga::fabriclint::parse_obs_registry(read_file(names));

  // Deterministic file order regardless of directory enumeration order.
  std::vector<fs::path> files;
  for (const std::string& d : dirs) {
    const fs::path base = root / d;
    if (!fs::exists(base)) continue;
    for (auto it = fs::recursive_directory_iterator(base); it != fs::recursive_directory_iterator();
         ++it) {
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc")
        files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const fs::path& f : files) {
    auto file_findings =
        vpga::fabriclint::lint_source(rel_slash(f, root), read_file(f), &registry);
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }

  // Tree-level rule/doc sync: the verify catalogue and fabriclint's own.
  const std::pair<const char*, const char*> sync_pairs[] = {
      {"src/verify/rules.hpp", "docs/VERIFY.md"},
      {"tools/fabriclint/catalogue.hpp", "docs/LINT.md"},
  };
  for (const auto& [hdr, doc] : sync_pairs) {
    const fs::path hp = root / hdr, dp = root / doc;
    if (!fs::exists(hp) || !fs::exists(dp)) {
      findings.push_back({hdr, 1, "verify.rule-sync",
                          std::string("missing ") + (fs::exists(hp) ? doc : hdr) +
                              " — catalogue/docs pair incomplete"});
      continue;
    }
    auto sync = vpga::fabriclint::check_rule_sync(hdr, read_file(hp), doc, read_file(dp));
    findings.insert(findings.end(), sync.begin(), sync.end());
  }

  if (headers) {
    const fs::path src = root / "src";
    for (const fs::path& f : files) {
      if (f.extension() != ".hpp") continue;
      const std::string rel = rel_slash(f, root);
      if (rel.rfind("src/", 0) != 0) continue;
      auto hdr_findings = vpga::fabriclint::check_header_self_contained(
          f.string(), rel, src.string(), compiler);
      findings.insert(findings.end(), hdr_findings.begin(), hdr_findings.end());
    }
  }

  vpga::fabriclint::sort_findings(findings);
  for (const Finding& f : findings)
    std::cerr << f.file << ":" << f.line << ": " << f.rule << ": " << f.message << "\n";

  if (!json_out.empty()) {
    const std::string doc = vpga::fabriclint::findings_json(findings);
    if (json_out == "-") {
      std::cout << doc << "\n";
    } else {
      std::ofstream out(json_out, std::ios::binary);
      out << doc << "\n";
    }
  }

  if (findings.empty()) {
    std::cerr << "fabriclint: clean (" << files.size() << " files)\n";
    return 0;
  }
  std::cerr << "fabriclint: " << findings.size() << " finding(s)\n";
  return 1;
}
