/// \file main.cpp
/// fabriclint CLI — walks the tree, runs every rule, prints findings as
/// file:line: rule: message, optionally emits the JSON findings document,
/// and exits nonzero on any unsuppressed finding (docs/LINT.md).
///
/// Usage:
///   fabriclint [--root DIR] [--json FILE|-] [--headers [COMPILER]]
///              [--only PREFIX] [--jobs N] [--profile FILE]
///              [--perf-report FILE|-] [--max-elapsed-ms N] [DIR...]
///
/// DIR... are lint roots relative to --root (default: src bench examples).
/// Per-file token rules run on a worker pool (--jobs, default hardware
/// concurrency clamped to the file count); findings are merged in file order
/// and sorted, so output is byte-stable regardless of scheduling. The
/// semantic pass (symbol tables, call graph, dataflow, conc.*/flow.*/perf.*
/// rules) then runs over src/ as one project, on the same pool.
/// --only keeps only findings whose rule id starts with PREFIX (e.g.
/// `--only conc.` for CI's static-race cross-check). --headers additionally
/// compiles every src/**/*.hpp standalone (hdr.self-contained); the same
/// property is enforced at build time by the vpga_header_selfcheck target,
/// so CI's fabriclint job runs without it.
///
/// Profile-guided mode (docs/LINT.md "Profile-guided lint"): --profile names
/// a BENCH_flow.json document; when absent, <root>/BENCH_flow.json is loaded
/// automatically if present. With a profile, the hot-loop perf rules gate on
/// the per-function hotness score and --perf-report emits the full
/// hotness-ranked perf worklist. --max-elapsed-ms makes the linter fail its
/// own runtime budget (the fabriclint ctest passes a generous cap so a
/// pathological slowdown of the linter itself fails CI).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fabriclint.hpp"
#include "hotness.hpp"

namespace {

namespace fs = std::filesystem;
using vpga::fabriclint::Finding;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string rel_slash(const fs::path& p, const fs::path& root) {
  std::string s = p.lexically_relative(root).generic_string();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto t0 = std::chrono::steady_clock::now();
  fs::path root = ".";
  std::string json_out;
  bool headers = false;
  std::string compiler = "c++";
  std::string only_prefix;
  std::string profile_arg;
  std::string perf_report_out;
  long long max_elapsed_ms = -1;
  std::size_t jobs = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::string> dirs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--only" && i + 1 < argc) {
      only_prefix = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::max(1ul, std::stoul(argv[++i]));
    } else if (arg == "--profile" && i + 1 < argc) {
      profile_arg = argv[++i];
    } else if (arg == "--perf-report" && i + 1 < argc) {
      perf_report_out = argv[++i];
    } else if (arg == "--max-elapsed-ms" && i + 1 < argc) {
      max_elapsed_ms = std::stoll(argv[++i]);
    } else if (arg == "--headers") {
      headers = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') compiler = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: fabriclint [--root DIR] [--json FILE|-] [--headers [CXX]] "
                   "[--only PREFIX] [--jobs N] [--profile FILE] "
                   "[--perf-report FILE|-] [--max-elapsed-ms N] [DIR...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fabriclint: unknown option " << arg << "\n";
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "bench", "examples"};

  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::cerr << "fabriclint: bad --root: " << ec.message() << "\n";
    return 2;
  }

  // The obs name registry (absence is tolerated: convention checks still run).
  vpga::fabriclint::ObsRegistry registry;
  const fs::path names = root / "src" / "obs" / "names.hpp";
  if (fs::exists(names)) registry = vpga::fabriclint::parse_obs_registry(read_file(names));

  // The flow profile: --profile wins; otherwise the committed
  // <root>/BENCH_flow.json snapshot is picked up automatically. An explicit
  // --profile that fails to load is an error; the implicit one degrades to
  // unprofiled linting.
  vpga::fabriclint::StageProfile profile;
  std::string profile_path;
  {
    const fs::path implicit = root / "BENCH_flow.json";
    const fs::path chosen = profile_arg.empty() ? implicit : fs::path(profile_arg);
    if (!profile_arg.empty() || fs::exists(implicit)) {
      std::string perr;
      if (!vpga::fabriclint::load_flow_profile(read_file(chosen), profile, &perr)) {
        if (!profile_arg.empty()) {
          std::cerr << "fabriclint: bad --profile " << chosen.string() << ": " << perr
                    << "\n";
          return 2;
        }
      } else {
        profile_path = rel_slash(chosen, root);
      }
    }
  }

  // Deterministic file order regardless of directory enumeration order.
  std::vector<fs::path> files;
  for (const std::string& d : dirs) {
    const fs::path base = root / d;
    if (!fs::exists(base)) continue;
    for (auto it = fs::recursive_directory_iterator(base); it != fs::recursive_directory_iterator();
         ++it) {
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc")
        files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());

  // Contents are read once and shared by the token pass and the semantic
  // pass.
  std::vector<vpga::fabriclint::SourceFile> sources(files.size());
  for (std::size_t i = 0; i < files.size(); ++i)
    sources[i] = {rel_slash(files[i], root), read_file(files[i])};

  // Per-file token rules on a worker pool; results land in per-file slots and
  // are merged in file order, so output is identical to a serial run.
  std::vector<std::vector<Finding>> per_file(files.size());
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  const std::size_t nworkers = std::min(jobs, std::max<std::size_t>(1, files.size()));
  workers.reserve(nworkers);
  for (std::size_t w = 0; w < nworkers; ++w)
    workers.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < sources.size(); i = next.fetch_add(1))
        per_file[i] = vpga::fabriclint::lint_source(sources[i].rel_path,
                                                    sources[i].content, &registry);
    });
  for (std::thread& w : workers) w.join();

  std::vector<Finding> findings;
  for (const auto& file_findings : per_file)
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());

  // Semantic pass: src/ only — library code is where the lock-discipline and
  // report-flow contracts live.
  std::vector<vpga::fabriclint::SourceFile> lib_sources;
  for (const auto& s : sources)
    if (s.rel_path.rfind("src/", 0) == 0) lib_sources.push_back(s);
  std::vector<Finding> perf_worklist;
  if (!lib_sources.empty()) {
    vpga::fabriclint::ProjectOptions popts;
    popts.profile = profile.loaded ? &profile : nullptr;
    popts.perf_worklist = perf_report_out.empty() ? nullptr : &perf_worklist;
    popts.jobs = nworkers;
    auto sem = vpga::fabriclint::lint_project(lib_sources, popts);
    findings.insert(findings.end(), sem.begin(), sem.end());
  }

  if (!perf_report_out.empty()) {
    const std::string doc =
        vpga::fabriclint::perf_report_json(std::move(perf_worklist), profile_path);
    if (perf_report_out == "-") {
      std::cout << doc << "\n";
    } else {
      std::ofstream out(perf_report_out, std::ios::binary);
      out << doc << "\n";
    }
  }

  // Tree-level rule/doc sync: the verify catalogue and fabriclint's own.
  const std::pair<const char*, const char*> sync_pairs[] = {
      {"src/verify/rules.hpp", "docs/VERIFY.md"},
      {"tools/fabriclint/catalogue.hpp", "docs/LINT.md"},
  };
  for (const auto& [hdr, doc] : sync_pairs) {
    const fs::path hp = root / hdr, dp = root / doc;
    if (!fs::exists(hp) || !fs::exists(dp)) {
      findings.push_back({hdr, 1, "verify.rule-sync",
                          std::string("missing ") + (fs::exists(hp) ? doc : hdr) +
                              " — catalogue/docs pair incomplete"});
      continue;
    }
    auto sync = vpga::fabriclint::check_rule_sync(hdr, read_file(hp), doc, read_file(dp));
    findings.insert(findings.end(), sync.begin(), sync.end());
  }

  if (headers) {
    const fs::path src = root / "src";
    for (const fs::path& f : files) {
      if (f.extension() != ".hpp") continue;
      const std::string rel = rel_slash(f, root);
      if (rel.rfind("src/", 0) != 0) continue;
      auto hdr_findings = vpga::fabriclint::check_header_self_contained(
          f.string(), rel, src.string(), compiler);
      findings.insert(findings.end(), hdr_findings.begin(), hdr_findings.end());
    }
  }

  if (!only_prefix.empty()) {
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [&](const Finding& f) {
                                    return f.rule.rfind(only_prefix, 0) != 0;
                                  }),
                   findings.end());
  }

  vpga::fabriclint::sort_findings(findings);
  for (const Finding& f : findings)
    std::cerr << f.file << ":" << f.line << ": " << f.rule << ": " << f.message << "\n";

  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  if (!json_out.empty()) {
    const std::string doc = vpga::fabriclint::findings_json(findings, elapsed);
    if (json_out == "-") {
      std::cout << doc << "\n";
    } else {
      std::ofstream out(json_out, std::ios::binary);
      out << doc << "\n";
    }
  }

  if (max_elapsed_ms >= 0 && elapsed > max_elapsed_ms) {
    std::cerr << "fabriclint: runtime budget exceeded (" << elapsed << " ms > "
              << max_elapsed_ms << " ms)\n";
    return 1;
  }
  if (findings.empty()) {
    std::cerr << "fabriclint: clean (" << files.size() << " files, " << elapsed
              << " ms)\n";
    return 0;
  }
  std::cerr << "fabriclint: " << findings.size() << " finding(s)\n";
  return 1;
}
