#pragma once
/// \file fabriclint.hpp
/// fabriclint — the project-native static-analysis pass (docs/LINT.md).
///
/// A fast, dependency-free linter (tokenizer + lightweight decl tracking, no
/// libclang) that walks src/, bench/ and examples/ and enforces the
/// determinism / observability / verification invariants the flow's
/// reproducibility rests on. Rule ids are catalogued in catalogue.hpp;
/// rationale and suppression policy live in docs/LINT.md.
///
/// The engine is a library so tests/test_fabriclint.cpp can drive every rule
/// on in-memory fixtures; tools/fabriclint/main.cpp wraps it as the CLI and
/// CTest / CI gate.

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace vpga::fabriclint {

/// One finding. `file` is repo-relative with forward slashes. `hotness` is
/// the profile-guided score of the enclosing function in [0, 1] (0 when no
/// profile was loaded or the rule is not hotness-aware; hotness.hpp).
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  double hotness = 0.0;
};

/// Canonical observability names parsed from src/obs/names.hpp.
struct ObsRegistry {
  std::set<std::string, std::less<>> spans;
  std::set<std::string, std::less<>> metrics;
  std::set<std::string, std::less<>> events;
  [[nodiscard]] bool empty() const {
    return spans.empty() && metrics.empty() && events.empty();
  }
};

/// Scrapes kSpanNames / kMetricNames / kEventNames string literals out of
/// the registry header's content (src/obs/names.hpp).
ObsRegistry parse_obs_registry(std::string_view names_hpp);

/// Lints one translation unit. `rel_path` decides rule scoping: io.* and
/// obs.* rules fire only under src/, det.raw-rng is exempt in
/// src/common/rng.hpp, det.wall-clock is exempt under src/obs/. Pass a null
/// registry to skip obs registry-membership checks (convention still
/// enforced).
std::vector<Finding> lint_source(std::string_view rel_path, std::string_view content,
                                 const ObsRegistry* registry);

/// Tree-level `verify.rule-sync`: the dotted string literals of a rule
/// catalogue header must equal the rule ids documented in a markdown table
/// (lines starting with '|' whose first backticked token is dotted). Used for
/// src/verify/rules.hpp <-> docs/VERIFY.md and
/// tools/fabriclint/catalogue.hpp <-> docs/LINT.md.
std::vector<Finding> check_rule_sync(std::string_view header_rel_path,
                                     std::string_view header_content,
                                     std::string_view docs_rel_path,
                                     std::string_view docs_content);

/// `hdr.self-contained`: compiles `#include "<header>"` as its own
/// translation unit (`compiler` -std=c++20 -fsyntax-only -I include_dir).
/// Returns one finding on failure, none on success. The build-time
/// enforcement is the vpga_header_selfcheck CMake target; this entry point
/// backs the CLI --headers mode and the fixture tests.
std::vector<Finding> check_header_self_contained(const std::string& header_path,
                                                 const std::string& rel_path,
                                                 const std::string& include_dir,
                                                 const std::string& compiler);

/// One file handed to the semantic pass. `rel_path` is repo-relative with
/// forward slashes; rules only fire for paths under src/ but every file
/// contributes symbols to the project index.
struct SourceFile {
  std::string rel_path;
  std::string content;
};

struct StageProfile;  // hotness.hpp

/// Options for the semantic engine (fabriclint v3).
struct ProjectOptions {
  /// Aggregated BENCH_flow.json stage timings; null = no profile, which
  /// silences the hotness-gated perf rules (they still feed perf_worklist
  /// with hotness 0).
  const StageProfile* profile = nullptr;
  /// Minimum hotness score for perf.map-in-hot-loop / perf.alloc-in-hot-loop
  /// / perf.growth-in-loop to surface as regular findings. 0.4 puts the cut
  /// between functions reached from the dominant flow stages (pack/compact
  /// score ≳0.45 on the committed profile) and the long tail.
  double hot_threshold = 0.4;
  /// When non-null, receives every perf.* finding ungated and unsuppressed,
  /// hotness attached — the --perf-report worklist.
  std::vector<Finding>* perf_worklist = nullptr;
  /// Worker threads for the per-TU analysis phase (results are merged in
  /// file order, so output is independent of scheduling).
  std::size_t jobs = 1;
};

/// The semantic engine (fabriclint v3): analyzes every file with
/// symbols.hpp, builds the interprocedural call graph (callgraph.hpp) plus
/// per-function dataflow (dataflow.hpp) and hotness scores (hotness.hpp),
/// and runs the project-wide rules — conc.unguarded-access, conc.lock-order,
/// conc.unjoined-thread, flow.dropped-report, det.float-accum,
/// det.iter-invalidation, the transitive extension of io.stray-stream, the
/// perf.* family and lifetime.dangling-local. Complements the per-TU token
/// rules of lint_source(); suppression directives apply identically.
std::vector<Finding> lint_project(const std::vector<SourceFile>& files,
                                  const ProjectOptions& options);
std::vector<Finding> lint_project(const std::vector<SourceFile>& files);

/// Renders findings as a JSON document (schema vpga.fabriclint.v3), parseable
/// by obs/json.hpp — {"schema", "total", "findings":
/// [{file,line,rule,hotness,message}]}. A non-negative `elapsed_ms` adds the
/// linter's own wall-clock to the footer.
std::string findings_json(const std::vector<Finding>& findings,
                          long long elapsed_ms = -1);

/// Renders the hotness-ranked perf worklist (schema vpga.fabriclint.perf.v1):
/// findings sorted by hotness descending, then (file, line, rule, message) —
/// deterministic for a fixed profile. `profile_path` names the profile the
/// scores came from ("" = none).
std::string perf_report_json(std::vector<Finding> worklist,
                             std::string_view profile_path);

/// Stable output order: (file, line, rule, message).
void sort_findings(std::vector<Finding>& findings);

}  // namespace vpga::fabriclint
