#pragma once
/// \file fabriclint.hpp
/// fabriclint — the project-native static-analysis pass (docs/LINT.md).
///
/// A fast, dependency-free linter (tokenizer + lightweight decl tracking, no
/// libclang) that walks src/, bench/ and examples/ and enforces the
/// determinism / observability / verification invariants the flow's
/// reproducibility rests on. Rule ids are catalogued in catalogue.hpp;
/// rationale and suppression policy live in docs/LINT.md.
///
/// The engine is a library so tests/test_fabriclint.cpp can drive every rule
/// on in-memory fixtures; tools/fabriclint/main.cpp wraps it as the CLI and
/// CTest / CI gate.

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace vpga::fabriclint {

/// One finding. `file` is repo-relative with forward slashes.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Canonical observability names parsed from src/obs/names.hpp.
struct ObsRegistry {
  std::set<std::string, std::less<>> spans;
  std::set<std::string, std::less<>> metrics;
  [[nodiscard]] bool empty() const { return spans.empty() && metrics.empty(); }
};

/// Scrapes kSpanNames / kMetricNames string literals out of the registry
/// header's content (src/obs/names.hpp).
ObsRegistry parse_obs_registry(std::string_view names_hpp);

/// Lints one translation unit. `rel_path` decides rule scoping: io.* and
/// obs.* rules fire only under src/, det.raw-rng is exempt in
/// src/common/rng.hpp, det.wall-clock is exempt under src/obs/. Pass a null
/// registry to skip obs registry-membership checks (convention still
/// enforced).
std::vector<Finding> lint_source(std::string_view rel_path, std::string_view content,
                                 const ObsRegistry* registry);

/// Tree-level `verify.rule-sync`: the dotted string literals of a rule
/// catalogue header must equal the rule ids documented in a markdown table
/// (lines starting with '|' whose first backticked token is dotted). Used for
/// src/verify/rules.hpp <-> docs/VERIFY.md and
/// tools/fabriclint/catalogue.hpp <-> docs/LINT.md.
std::vector<Finding> check_rule_sync(std::string_view header_rel_path,
                                     std::string_view header_content,
                                     std::string_view docs_rel_path,
                                     std::string_view docs_content);

/// `hdr.self-contained`: compiles `#include "<header>"` as its own
/// translation unit (`compiler` -std=c++20 -fsyntax-only -I include_dir).
/// Returns one finding on failure, none on success. The build-time
/// enforcement is the vpga_header_selfcheck CMake target; this entry point
/// backs the CLI --headers mode and the fixture tests.
std::vector<Finding> check_header_self_contained(const std::string& header_path,
                                                 const std::string& rel_path,
                                                 const std::string& include_dir,
                                                 const std::string& compiler);

/// One file handed to the semantic pass. `rel_path` is repo-relative with
/// forward slashes; rules only fire for paths under src/ but every file
/// contributes symbols to the project index.
struct SourceFile {
  std::string rel_path;
  std::string content;
};

/// The semantic engine (fabriclint v2): analyzes every file with
/// symbols.hpp, builds the interprocedural call graph (callgraph.hpp) and
/// runs the project-wide rules — conc.unguarded-access, conc.lock-order,
/// conc.unjoined-thread, flow.dropped-report, det.float-accum and the
/// transitive extension of io.stray-stream. Complements the per-TU token
/// rules of lint_source(); suppression directives apply identically.
std::vector<Finding> lint_project(const std::vector<SourceFile>& files);

/// Renders findings as a JSON document (schema vpga.fabriclint.v2), parseable
/// by obs/json.hpp — {"schema", "total", "findings": [{file,line,rule,message}]}.
/// A non-negative `elapsed_ms` adds the linter's own wall-clock to the footer.
std::string findings_json(const std::vector<Finding>& findings,
                          long long elapsed_ms = -1);

/// Stable output order: (file, line, rule, message).
void sort_findings(std::vector<Finding>& findings);

}  // namespace vpga::fabriclint
