#pragma once
/// \file dataflow.hpp
/// Per-function dataflow layer for fabriclint v3, built on the body token
/// ranges recorded by symbols.hpp.
///
/// analyze_dataflow() recovers the loop structure of one function body
/// (for / while / do-while / range-for, with nesting depth and — for
/// range-for — the normalized range expression), collects the local and
/// parameter variable definitions whose head type the C++ subset can name
/// (containers, fundamental types, project class names via `auto` stays
/// `auto`), and builds the def/use chains the perf.* and lifetime.* rules
/// walk: every write to a variable is a Def, every read a Use, and
/// reaching_defs() answers which writes can reach a given use under the
/// lossy CFG (an unconditional top-level write kills everything before it;
/// writes inside nested blocks are conditional and accumulate). Like the
/// rest of the semantic engine, anything the subset cannot resolve degrades
/// to silence, not to false findings.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "symbols.hpp"

namespace vpga::fabriclint {

/// One recovered loop inside a function body.
struct LoopInfo {
  std::size_t header_tok = 0;  ///< token index of `for`/`while`/`do`
  std::size_t body_begin = 0;  ///< first token index of the loop body
  std::size_t body_end = 0;    ///< one past the last body token
  int line = 0;
  int depth = 0;          ///< 0 = outermost loop in this function
  bool range_for = false;
  /// Normalized range expression of a range-for (`->` folded to `.`,
  /// whitespace-free concatenation): "tiles", "nl.nodes()", ...
  std::string range_expr;
};

/// One variable the dataflow pass could attribute a declaration to.
struct VarDef {
  std::string name;
  std::string type_head;  ///< head type ident: map, vector, int, auto, ...
  std::size_t tok = 0;    ///< token index of the declared name
  int line = 0;
  bool is_param = false;
  bool is_reference = false;  ///< `&`/`*` between type and name
  bool is_array = false;      ///< declarator followed by `[`
  bool is_static = false;     ///< `static` local (outlives the call)
};

/// One write to a tracked variable (declaration-with-init or assignment).
struct Def {
  std::string name;
  std::size_t tok = 0;
  int line = 0;
  int block_depth = 0;  ///< 0 = function-body top level (unconditional)
};

/// One read of a tracked variable.
struct Use {
  std::string name;
  std::size_t tok = 0;
  int line = 0;
};

/// One lambda literal inside a function body. `run_once` marks the
/// immediately-invoked initializer of a static local (`static T x = []{...}()`)
/// — its body executes exactly once, so hot-loop rules skip it.
struct LambdaBody {
  std::size_t cap_tok = 0;  ///< token index of the capture `[`
  std::size_t begin = 0;    ///< token index of the body `{`
  std::size_t end = 0;      ///< one past the body `}`
  bool run_once = false;
};

/// The dataflow facts for one function definition.
struct FunctionDataflow {
  std::vector<LoopInfo> loops;
  std::vector<VarDef> vars;
  std::vector<Def> defs;  ///< in token order
  std::vector<Use> uses;  ///< in token order
  /// Lambda literal bodies inside the function body — a `return` in one of
  /// these leaves the lambda, not the function.
  std::vector<LambdaBody> lambda_bodies;

  [[nodiscard]] const VarDef* var(std::string_view name) const {
    for (const VarDef& v : vars)
      if (v.name == name) return &v;
    return nullptr;
  }

  [[nodiscard]] bool in_lambda(std::size_t tok) const {
    for (const LambdaBody& l : lambda_bodies)
      if (l.begin <= tok && tok < l.end) return true;
    return false;
  }

  [[nodiscard]] bool in_run_once_lambda(std::size_t tok) const {
    for (const LambdaBody& l : lambda_bodies)
      if (l.run_once && l.begin <= tok && tok < l.end) return true;
    return false;
  }

  /// The innermost loop whose body contains `tok`; nullptr when none does.
  [[nodiscard]] const LoopInfo* innermost_loop(std::size_t tok) const {
    const LoopInfo* best = nullptr;
    for (const LoopInfo& l : loops)
      if (l.body_begin < tok && tok < l.body_end &&
          (best == nullptr || l.body_begin > best->body_begin))
        best = &l;
    return best;
  }
};

/// Builds the dataflow facts for `fn` (a definition) in `tu`.
FunctionDataflow analyze_dataflow(const TuSymbols& tu, const FunctionInfo& fn);

/// The defs of `use.name` that can reach `use` under the lossy CFG: the last
/// unconditional (block_depth == 0) def before the use, plus every
/// conditional def between that def and the use. Empty when the variable is
/// never written before the use (e.g. a parameter).
std::vector<Def> reaching_defs(const FunctionDataflow& df, const Use& use);

/// True when a `container.reserve(...)` call lexically precedes
/// `loop.header_tok` inside `fn`'s body — the conservative
/// "reserve dominates the loop" test perf.growth-in-loop keys on.
bool reserve_dominates(const TuSymbols& tu, const FunctionInfo& fn,
                       std::string_view container, const LoopInfo& loop);

/// Normalized receiver chain of a member call: for the callee ident at
/// `callee_tok` (whose predecessor is `.` or `->`), walks the
/// `ident (. | ->) ident ...` chain backwards and returns it with `->`
/// folded to `.` ("a.b" for `a->b.push_back`). Empty when the receiver is
/// not a plain ident chain (subscripts, call results, ...).
std::string receiver_chain(const std::vector<Token>& toks, std::size_t callee_tok);

}  // namespace vpga::fabriclint
