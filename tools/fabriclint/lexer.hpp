#pragma once
/// \file lexer.hpp
/// Minimal C++ tokenizer for fabriclint: identifiers, numbers, string/char
/// literals (including raw strings) and punctuation, with line numbers, plus
/// extraction of `// fabriclint: ...` suppression directives from comments.
/// Deliberately not a real C++ front end — the rules it feeds are pattern
/// checks that tolerate a lossy token stream (template-angle ambiguity,
/// preprocessor lines tokenized as ordinary text).

#include <string>
#include <string_view>
#include <vector>

namespace vpga::fabriclint {

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;  ///< for kString: the decoded-free raw contents (no quotes)
  int line = 1;
};

/// One `// fabriclint: ...` comment directive.
struct Directive {
  enum class Kind {
    kDisable,           ///< fabriclint: disable(<rule>) -- <reason>
    kSortedDownstream,  ///< fabriclint: sorted-downstream [-- <reason>]
    kMalformed,         ///< unparseable fabriclint: comment
  };
  Kind kind = Kind::kMalformed;
  int line = 1;
  bool own_line = false;  ///< nothing but whitespace before the comment
  std::string rule;       ///< disable() target ("" otherwise)
  bool has_reason = false;
  std::string raw;  ///< directive text after "fabriclint:" (diagnostics)
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Directive> directives;
};

/// Tokenizes `src`. Never fails: unterminated literals are closed at EOF.
LexResult lex(std::string_view src);

}  // namespace vpga::fabriclint
