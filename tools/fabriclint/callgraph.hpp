#pragma once
/// \file callgraph.hpp
/// Interprocedural call graph over the per-TU symbol tables.
///
/// build_call_graph() merges every function *definition* from the analyzed
/// TUs into one index and resolves each recorded call site against it.
/// Resolution is by unqualified name; an explicit `X::` qualifier or a
/// member-call receiver class filters the candidates, and a caller's own
/// class is preferred for unqualified names. Where the subset cannot decide
/// between candidates it keeps all of them — the graph over-approximates,
/// which is the conservative direction for reachability rules
/// (io.stray-stream transitive, conc.lock-order) and is compensated by the
/// caller-holds-lock check of conc.unguarded-access requiring *all* callers
/// to hold the mutex.

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "symbols.hpp"

namespace vpga::fabriclint {

class CallGraph {
 public:
  /// One resolved call edge; `tok`/`line` locate the call site in `from`'s
  /// TU.
  struct Edge {
    int from = -1;
    int to = -1;
    std::size_t tok = 0;
    int line = 0;
  };

  explicit CallGraph(const std::vector<TuSymbols>& tus);

  [[nodiscard]] int function_count() const { return static_cast<int>(fns_.size()); }
  [[nodiscard]] const FunctionInfo& fn(int i) const;
  [[nodiscard]] const TuSymbols& tu_of(int i) const;
  [[nodiscard]] const std::vector<Edge>& callees(int i) const;
  [[nodiscard]] const std::vector<Edge>& callers(int i) const;

  /// Finds a definition by `name` or `Class::name`; -1 when absent. First
  /// match in deterministic (TU, declaration) order.
  [[nodiscard]] int find(std::string_view qualified) const;

  /// True when `to` is reachable from `from` over callee edges (including
  /// from == to only if `from` sits on a cycle through itself).
  [[nodiscard]] bool reachable(int from, int to) const;

 private:
  struct FnRef {
    int tu = 0;
    int fn = 0;
  };

  void resolve_calls();

  const std::vector<TuSymbols>* tus_;
  std::vector<FnRef> fns_;  ///< definitions, in (TU, declaration) order
  std::map<std::string, std::vector<int>> by_name_;
  std::vector<std::vector<Edge>> callees_;
  std::vector<std::vector<Edge>> callers_;
};

/// Builds the graph; `tus` must outlive the returned object.
CallGraph build_call_graph(const std::vector<TuSymbols>& tus);

}  // namespace vpga::fabriclint
