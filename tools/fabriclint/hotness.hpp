#pragma once
/// \file hotness.hpp
/// Profile-guided hotness scoring for fabriclint v3.
///
/// The obs subsystem's flow benchmark (bench/flow_bench_json.cpp) emits
/// BENCH_flow.json: per-run wall-clock per flow stage span (stage.map,
/// stage.pack, ...). load_flow_profile() aggregates those stage timings;
/// hotness_scores() maps each stage to the flow entry point it times
/// (src/flow/flow.cpp calls exactly one subsystem entry under each stage
/// span), seeds every definition of that entry in the call graph with the
/// stage's aggregate wall-clock, propagates the weight forward over callee
/// edges (a function reachable from several stages accumulates all of
/// them), and normalizes by the maximum so every function gets a score in
/// [0, 1]. The perf.* rules gate on the score; --perf-report ranks by it.

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "callgraph.hpp"

namespace vpga::fabriclint {

/// Aggregated per-stage wall-clock from one or more BENCH_flow.json runs.
struct StageProfile {
  std::map<std::string, double> stage_us;  ///< "stage.map" -> summed micros
  double total_us = 0.0;
  bool loaded = false;
};

/// Parses a BENCH_flow.json document (schema vpga.flow_bench.v1) and sums
/// `runs[].stages` into `out`. Returns false with a message in `*error`
/// (when supplied) on malformed input or an unexpected schema.
bool load_flow_profile(std::string_view json_text, StageProfile& out,
                       std::string* error = nullptr);

/// The stage-span -> flow-entry-function mapping (mirrors
/// src/flow/flow.cpp's stage structure). Exposed for the docs and tests.
const std::map<std::string, std::string>& stage_entry_functions();

/// Per-function hotness in [0, 1], indexed like `graph.fn()`. All zeros when
/// the profile is empty or no stage entry resolves into the graph.
std::vector<double> hotness_scores(const CallGraph& graph, const StageProfile& profile);

}  // namespace vpga::fabriclint
