/// \file semantics.cpp
/// lint_project(): the project-wide rule passes of fabriclint v2, built on
/// the per-TU symbol tables (symbols.hpp) and the interprocedural call graph
/// (callgraph.hpp). Every rule here degrades to silence when the C++ subset
/// cannot resolve something — over-reporting would make the lint gate
/// unusable, and the dynamic TSan CI job backstops what the subset misses.

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <string>
#include <string_view>
#include <vector>

#include "callgraph.hpp"
#include "fabriclint.hpp"
#include "symbols.hpp"

namespace vpga::fabriclint {
namespace {

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool in_src(std::string_view rel_path) {
  return rel_path.substr(0, 4) == "src/";
}

class SemanticLinter {
 public:
  explicit SemanticLinter(const std::vector<SourceFile>& files) {
    tus_.reserve(files.size());
    for (const SourceFile& f : files) tus_.push_back(analyze_tu(f.rel_path, f.content));
    for (const TuSymbols& tu : tus_)
      for (const ClassInfo& c : tu.classes)
        if (classes_.count(c.name) == 0) classes_.emplace(c.name, &c);
    graph_.emplace(tus_);
  }

  std::vector<Finding> run() {
    check_unguarded_access();
    check_lock_order();
    check_unjoined_threads();
    check_dropped_reports();
    check_float_accum();
    check_transitive_stdio();
    sort_findings(findings_);
    return std::move(findings_);
  }

 private:
  const CallGraph& graph() const { return *graph_; }

  void add(const TuSymbols& tu, int line, std::string rule, std::string message) {
    if (tu.is_suppressed(line, rule)) return;
    findings_.push_back({tu.rel_path, line, std::move(rule), std::move(message)});
  }

  /// True when `fn` holds `mutex` at token index `at` via a lexically
  /// enclosing lock event.
  static bool lock_active(const FunctionInfo& fn, std::string_view mutex,
                          std::size_t at) {
    for (const LockEvent& l : fn.locks)
      if (l.mutex == mutex && l.tok < at && at <= l.scope_end) return true;
    return false;
  }

  /// True when every caller of `fn_idx` holds `mutex` at its call site,
  /// directly or (recursively) via its own callers. A function with no
  /// callers does not hold the lock; cycles resolve optimistically so
  /// mutually recursive helpers under a locked entry point stay clean.
  bool callers_hold(int fn_idx, std::string_view mutex, std::set<int>& visiting) const {
    const auto& callers = graph().callers(fn_idx);
    if (callers.empty()) return false;
    for (const CallGraph::Edge& e : callers) {
      if (lock_active(graph().fn(e.from), mutex, e.tok)) continue;
      if (!visiting.insert(e.from).second) continue;  // cycle: optimistic
      const bool held = callers_hold(e.from, mutex, visiting);
      visiting.erase(e.from);
      if (!held) return false;
    }
    return true;
  }

  // ---------------------------------------------------------------------
  // conc.unguarded-access
  // ---------------------------------------------------------------------

  void check_unguarded_access() {
    for (int i = 0; i < graph().function_count(); ++i) {
      const FunctionInfo& fn = graph().fn(i);
      const TuSymbols& tu = graph().tu_of(i);
      if (!in_src(tu.rel_path) || fn.is_ctor_or_dtor) continue;
      const auto locals = typed_locals(tu, fn, classes_);
      const auto& toks = tu.lexed.tokens;
      for (std::size_t k = fn.body_begin + 1; k + 1 < fn.body_end; ++k) {
        if (toks[k].kind != TokKind::kIdent) continue;
        // Resolve the owning class: `obj.field` / `obj->field` through a
        // local of known class type or `this`, else a bare identifier
        // inside a member function of the owning class.
        std::string cls;
        if (k >= 2 && (is_punct(toks[k - 1], ".") || is_punct(toks[k - 1], "->")) &&
            toks[k - 2].kind == TokKind::kIdent) {
          if (toks[k - 2].text == "this") {
            cls = fn.class_name;
          } else if (const auto it = locals.find(toks[k - 2].text); it != locals.end()) {
            cls = it->second;
          } else {
            continue;
          }
        } else if (k >= 1 &&
                   (is_punct(toks[k - 1], ".") || is_punct(toks[k - 1], "->"))) {
          continue;  // member access through an unresolved receiver
        } else {
          cls = fn.class_name;
        }
        if (cls.empty()) continue;
        const auto cit = classes_.find(cls);
        if (cit == classes_.end()) continue;
        const FieldInfo* field = nullptr;
        for (const FieldInfo& f : cit->second->fields)
          if (f.name == toks[k].text && !f.guarded_by.empty()) field = &f;
        if (field == nullptr) continue;
        if (lock_active(fn, field->guarded_by, k)) continue;
        std::set<int> visiting{i};
        if (callers_hold(i, field->guarded_by, visiting)) continue;
        add(tu, toks[k].line, "conc.unguarded-access",
            "'" + cls + "::" + field->name + "' is FABRIC_GUARDED_BY(" +
                field->guarded_by + ") but accessed in '" + fn.name +
                "' without the mutex held on every path; take a "
                "std::lock_guard first (src/common/concurrency.hpp)");
      }
    }
  }

  // ---------------------------------------------------------------------
  // conc.lock-order
  // ---------------------------------------------------------------------

  /// Mutexes `fn_idx` may acquire directly or through any callee (memoized).
  const std::set<std::string>& acquires(int fn_idx) {
    auto it = acquires_.find(fn_idx);
    if (it != acquires_.end()) return it->second;
    auto& out = acquires_[fn_idx];  // inserted empty first: cycles terminate
    for (const LockEvent& l : graph().fn(fn_idx).locks) out.insert(l.mutex);
    for (const CallGraph::Edge& e : graph().callees(fn_idx)) {
      const std::set<std::string> sub = acquires(e.to);  // copy: `out` may move
      out.insert(sub.begin(), sub.end());
    }
    return out;
  }

  void check_lock_order() {
    struct Site {
      std::string file;
      int line = 0;
    };
    std::map<std::pair<std::string, std::string>, Site> pairs;
    auto note = [&](const std::string& held, const std::string& then,
                    const TuSymbols& tu, int line) {
      if (held == then) return;
      pairs.emplace(std::make_pair(held, then), Site{tu.rel_path, line});
    };
    for (int i = 0; i < graph().function_count(); ++i) {
      const FunctionInfo& fn = graph().fn(i);
      const TuSymbols& tu = graph().tu_of(i);
      if (!in_src(tu.rel_path)) continue;
      for (const LockEvent& l : fn.locks) {
        for (const LockEvent& l2 : fn.locks)
          if (l2.tok > l.tok && l2.tok <= l.scope_end) note(l.mutex, l2.mutex, tu, l2.line);
        for (const CallGraph::Edge& e : graph().callees(i))
          if (e.tok > l.tok && e.tok <= l.scope_end)
            for (const std::string& b : acquires(e.to)) note(l.mutex, b, tu, e.line);
      }
    }
    for (const auto& [pair, site] : pairs) {
      if (pair.first >= pair.second) continue;  // report each unordered pair once
      const auto rev = pairs.find({pair.second, pair.first});
      if (rev == pairs.end()) continue;
      // Anchor on the lexicographically first of the two witness sites.
      const Site& a = site;
      const Site& b = rev->second;
      const bool a_first = std::tie(a.file, a.line) <= std::tie(b.file, b.line);
      const Site& anchor = a_first ? a : b;
      const Site& other = a_first ? b : a;
      const TuSymbols* tu = nullptr;
      for (const TuSymbols& t : tus_)
        if (t.rel_path == anchor.file) tu = &t;
      if (tu == nullptr) continue;
      add(*tu, anchor.line, "conc.lock-order",
          "'" + pair.first + "' and '" + pair.second +
              "' are acquired in both orders (other order at " + other.file + ":" +
              std::to_string(other.line) +
              "); pick one global order or use std::scoped_lock");
    }
  }

  // ---------------------------------------------------------------------
  // conc.unjoined-thread
  // ---------------------------------------------------------------------

  void check_unjoined_threads() {
    for (int i = 0; i < graph().function_count(); ++i) {
      const TuSymbols& tu = graph().tu_of(i);
      if (!in_src(tu.rel_path)) continue;
      for (const ThreadLocalVar& tv : graph().fn(i).thread_locals)
        if (!tv.joined_or_detached)
          add(tu, tv.line, "conc.unjoined-thread",
              "std::thread '" + tv.name +
                  "' is neither joined nor detached on any path; a running "
                  "thread at destruction calls std::terminate");
    }
  }

  // ---------------------------------------------------------------------
  // flow.dropped-report
  // ---------------------------------------------------------------------

  /// True when some declaration or definition named `callee` (narrowed by
  /// `qualifier` when it matches anything) returns VerifyReport/Diagnostic.
  bool returns_report(const std::string& callee, const std::string& qualifier) const {
    bool narrowed_any = false;
    bool narrowed_hit = false;
    bool any_hit = false;
    for (const TuSymbols& tu : tus_)
      for (const FunctionInfo& f : tu.functions) {
        if (f.name != callee) continue;
        const bool hit = f.returns_type("VerifyReport") || f.returns_type("Diagnostic");
        any_hit = any_hit || hit;
        if (!qualifier.empty() && f.class_name == qualifier) {
          narrowed_any = true;
          narrowed_hit = narrowed_hit || hit;
        }
      }
    return narrowed_any ? narrowed_hit : any_hit;
  }

  void check_dropped_reports() {
    for (int i = 0; i < graph().function_count(); ++i) {
      const FunctionInfo& fn = graph().fn(i);
      const TuSymbols& tu = graph().tu_of(i);
      if (!in_src(tu.rel_path)) continue;
      const auto& toks = tu.lexed.tokens;
      for (const CallSite& c : fn.calls) {
        if (!returns_report(c.callee, c.qualifier)) continue;
        // Statement-level call: the expression chain starts a statement and
        // the matching ')' is immediately followed by ';'.
        std::size_t start = c.tok;
        while (start >= 2 &&
               (is_punct(toks[start - 1], ".") || is_punct(toks[start - 1], "->") ||
                is_punct(toks[start - 1], "::")) &&
               toks[start - 2].kind == TokKind::kIdent)
          start -= 2;
        if (!(start == fn.body_begin + 1 || is_punct(toks[start - 1], ";") ||
              is_punct(toks[start - 1], "{") || is_punct(toks[start - 1], "}")))
          continue;
        int depth = 0;
        std::size_t close = std::string::npos;
        for (std::size_t k = c.tok + 1; k < fn.body_end; ++k) {
          if (is_punct(toks[k], "(")) ++depth;
          if (is_punct(toks[k], ")") && --depth == 0) {
            close = k;
            break;
          }
        }
        if (close == std::string::npos || close + 1 >= fn.body_end ||
            !is_punct(toks[close + 1], ";"))
          continue;
        add(tu, c.line, "flow.dropped-report",
            "result of '" + c.callee +
                "' (VerifyReport/Diagnostic) is discarded; inspect it or wrap "
                "the call in verify::enforce()");
      }
    }
  }

  // ---------------------------------------------------------------------
  // det.float-accum
  // ---------------------------------------------------------------------

  void check_float_accum() {
    for (int i = 0; i < graph().function_count(); ++i) {
      const FunctionInfo& fn = graph().fn(i);
      const TuSymbols& tu = graph().tu_of(i);
      if (!in_src(tu.rel_path)) continue;
      const auto& toks = tu.lexed.tokens;
      for (const ParallelRegion& region : fn.parallel_regions)
        for (std::size_t k = region.begin + 1; k + 1 < region.end; ++k) {
          if (toks[k].kind != TokKind::kIdent || k + 1 >= region.end) continue;
          if (!(is_punct(toks[k + 1], "+=") || is_punct(toks[k + 1], "-=") ||
                is_punct(toks[k + 1], "*=")))
            continue;
          // Accumulating into a float declared *outside* the region (and not
          // shadowed by a region-local redeclaration before this token).
          bool outside = false;
          bool shadowed = false;
          for (const FloatVar& v : fn.float_vars) {
            if (v.name != toks[k].text) continue;
            if (v.tok < region.begin) outside = true;
            if (v.tok > region.begin && v.tok < k) shadowed = true;
          }
          if (!outside || shadowed) continue;
          add(tu, toks[k].line, "det.float-accum",
              "floating-point accumulation into '" + toks[k].text +
                  "' inside a std::thread lambda; FP addition is not "
                  "associative, so reduce into per-thread slots and combine "
                  "in a fixed order");
        }
    }
  }

  // ---------------------------------------------------------------------
  // io.stray-stream (transitive)
  // ---------------------------------------------------------------------

  void check_transitive_stdio() {
    // Sinks: src/ functions with unsuppressed direct stdio. Suppressed sinks
    // (documented boundaries like verify::enforce) neither report nor
    // propagate. Reverse-BFS finds every function that can reach a sink; the
    // finding anchors on the call edge that enters the tainted region.
    struct Taint {
      std::string via;   ///< callee the taint flows through
      std::string sink;  ///< "file:line uses 'name'"
      std::size_t tok = 0;
      int line = 0;
    };
    std::map<int, Taint> tainted;  // fn index -> witness edge
    std::vector<int> work;
    for (int i = 0; i < graph().function_count(); ++i) {
      const FunctionInfo& fn = graph().fn(i);
      if (!in_src(graph().tu_of(i).rel_path) || fn.stdio_uses.empty()) continue;
      const StdioUse& u = fn.stdio_uses.front();
      tainted.emplace(i, Taint{fn.name,
                               graph().tu_of(i).rel_path + ":" +
                                   std::to_string(u.line) + " uses '" + u.callee + "'",
                               0, 0});
      work.push_back(i);
    }
    while (!work.empty()) {
      const int cur = work.back();
      work.pop_back();
      const Taint& t = tainted.at(cur);
      const std::string sink = t.sink;
      for (const CallGraph::Edge& e : graph().callers(cur)) {
        if (tainted.count(e.from) > 0) continue;
        tainted.emplace(e.from,
                        Taint{graph().fn(cur).name, sink, e.tok, e.line});
        work.push_back(e.from);
      }
    }
    for (const auto& [idx, t] : tainted) {
      if (t.line == 0) continue;  // a direct sink, handled by the token rule
      const TuSymbols& tu = graph().tu_of(idx);
      if (!in_src(tu.rel_path)) continue;
      add(tu, t.line, "io.stray-stream",
          "'" + graph().fn(idx).name + "' transitively reaches direct I/O "
              "through '" + t.via + "' (" + t.sink +
              "); route diagnostics through verify::Diagnostic or obs spans");
    }
  }

  std::vector<TuSymbols> tus_;
  std::map<std::string, const ClassInfo*> classes_;
  std::optional<CallGraph> graph_;
  std::map<int, std::set<std::string>> acquires_;
  std::vector<Finding> findings_;
};

}  // namespace

std::vector<Finding> lint_project(const std::vector<SourceFile>& files) {
  return SemanticLinter(files).run();
}

}  // namespace vpga::fabriclint
