/// \file semantics.cpp
/// lint_project(): the project-wide rule passes of fabriclint v3, built on
/// the per-TU symbol tables (symbols.hpp), the interprocedural call graph
/// (callgraph.hpp), the per-function dataflow facts (dataflow.hpp) and the
/// profile-guided hotness scores (hotness.hpp). Every rule here degrades to
/// silence when the C++ subset cannot resolve something — over-reporting
/// would make the lint gate unusable, and the dynamic TSan CI job backstops
/// what the subset misses.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <tuple>
#include <string>
#include <string_view>
#include <vector>

#include "callgraph.hpp"
#include "dataflow.hpp"
#include "fabriclint.hpp"
#include "hotness.hpp"
#include "symbols.hpp"

namespace vpga::fabriclint {
namespace {

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool in_src(std::string_view rel_path) {
  return rel_path.substr(0, 4) == "src/";
}

class SemanticLinter {
 public:
  SemanticLinter(const std::vector<SourceFile>& files, const ProjectOptions& options)
      : opts_(options) {
    // Per-TU analysis is independent per file: run it on a worker pool with
    // indexed result slots, so the TU order (and everything derived from it)
    // is identical to a serial run.
    tus_.resize(files.size());
    const std::size_t nworkers = std::min(
        std::max<std::size_t>(1, opts_.jobs), std::max<std::size_t>(1, files.size()));
    if (nworkers <= 1) {
      for (std::size_t i = 0; i < files.size(); ++i)
        tus_[i] = analyze_tu(files[i].rel_path, files[i].content);
    } else {
      std::atomic<std::size_t> next{0};
      std::vector<std::thread> workers;
      workers.reserve(nworkers);
      for (std::size_t w = 0; w < nworkers; ++w)
        workers.emplace_back([&] {
          for (std::size_t i = next.fetch_add(1); i < files.size();
               i = next.fetch_add(1))
            tus_[i] = analyze_tu(files[i].rel_path, files[i].content);
        });
      for (std::thread& t : workers) t.join();
    }
    for (const TuSymbols& tu : tus_)
      for (const ClassInfo& c : tu.classes)
        if (classes_.count(c.name) == 0) classes_.emplace(c.name, &c);
    graph_.emplace(tus_);
    if (opts_.profile != nullptr)
      hotness_ = hotness_scores(*graph_, *opts_.profile);
    else
      hotness_.assign(static_cast<std::size_t>(graph_->function_count()), 0.0);
  }

  std::vector<Finding> run() {
    check_unguarded_access();
    check_lock_order();
    check_unjoined_threads();
    check_dropped_reports();
    check_float_accum();
    check_transitive_stdio();
    check_dataflow_rules();
    sort_findings(findings_);
    return std::move(findings_);
  }

 private:
  const CallGraph& graph() const { return *graph_; }

  void add(const TuSymbols& tu, int line, std::string rule, std::string message,
           double hotness = 0.0) {
    if (tu.is_suppressed(line, rule)) return;
    findings_.push_back(
        {tu.rel_path, line, std::move(rule), std::move(message), hotness});
  }

  /// True when `fn` holds `mutex` at token index `at` via a lexically
  /// enclosing lock event.
  static bool lock_active(const FunctionInfo& fn, std::string_view mutex,
                          std::size_t at) {
    for (const LockEvent& l : fn.locks)
      if (l.mutex == mutex && l.tok < at && at <= l.scope_end) return true;
    return false;
  }

  /// True when every caller of `fn_idx` holds `mutex` at its call site,
  /// directly or (recursively) via its own callers. A function with no
  /// callers does not hold the lock; cycles resolve optimistically so
  /// mutually recursive helpers under a locked entry point stay clean.
  bool callers_hold(int fn_idx, std::string_view mutex, std::set<int>& visiting) const {
    const auto& callers = graph().callers(fn_idx);
    if (callers.empty()) return false;
    for (const CallGraph::Edge& e : callers) {
      if (lock_active(graph().fn(e.from), mutex, e.tok)) continue;
      if (!visiting.insert(e.from).second) continue;  // cycle: optimistic
      const bool held = callers_hold(e.from, mutex, visiting);
      visiting.erase(e.from);
      if (!held) return false;
    }
    return true;
  }

  // ---------------------------------------------------------------------
  // conc.unguarded-access
  // ---------------------------------------------------------------------

  void check_unguarded_access() {
    for (int i = 0; i < graph().function_count(); ++i) {
      const FunctionInfo& fn = graph().fn(i);
      const TuSymbols& tu = graph().tu_of(i);
      if (!in_src(tu.rel_path) || fn.is_ctor_or_dtor) continue;
      const auto locals = typed_locals(tu, fn, classes_);
      const auto& toks = tu.lexed.tokens;
      for (std::size_t k = fn.body_begin + 1; k + 1 < fn.body_end; ++k) {
        if (toks[k].kind != TokKind::kIdent) continue;
        // Resolve the owning class: `obj.field` / `obj->field` through a
        // local of known class type or `this`, else a bare identifier
        // inside a member function of the owning class.
        std::string cls;
        if (k >= 2 && (is_punct(toks[k - 1], ".") || is_punct(toks[k - 1], "->")) &&
            toks[k - 2].kind == TokKind::kIdent) {
          if (toks[k - 2].text == "this") {
            cls = fn.class_name;
          } else if (const auto it = locals.find(toks[k - 2].text); it != locals.end()) {
            cls = it->second;
          } else {
            continue;
          }
        } else if (k >= 1 &&
                   (is_punct(toks[k - 1], ".") || is_punct(toks[k - 1], "->"))) {
          continue;  // member access through an unresolved receiver
        } else {
          cls = fn.class_name;
        }
        if (cls.empty()) continue;
        const auto cit = classes_.find(cls);
        if (cit == classes_.end()) continue;
        const FieldInfo* field = nullptr;
        for (const FieldInfo& f : cit->second->fields)
          if (f.name == toks[k].text && !f.guarded_by.empty()) field = &f;
        if (field == nullptr) continue;
        if (lock_active(fn, field->guarded_by, k)) continue;
        std::set<int> visiting{i};
        if (callers_hold(i, field->guarded_by, visiting)) continue;
        add(tu, toks[k].line, "conc.unguarded-access",
            "'" + cls + "::" + field->name + "' is FABRIC_GUARDED_BY(" +
                field->guarded_by + ") but accessed in '" + fn.name +
                "' without the mutex held on every path; take a "
                "std::lock_guard first (src/common/concurrency.hpp)");
      }
    }
  }

  // ---------------------------------------------------------------------
  // conc.lock-order
  // ---------------------------------------------------------------------

  /// Mutexes `fn_idx` may acquire directly or through any callee (memoized).
  const std::set<std::string>& acquires(int fn_idx) {
    auto it = acquires_.find(fn_idx);
    if (it != acquires_.end()) return it->second;
    auto& out = acquires_[fn_idx];  // inserted empty first: cycles terminate
    for (const LockEvent& l : graph().fn(fn_idx).locks) out.insert(l.mutex);
    for (const CallGraph::Edge& e : graph().callees(fn_idx)) {
      const std::set<std::string> sub = acquires(e.to);  // copy: `out` may move
      out.insert(sub.begin(), sub.end());
    }
    return out;
  }

  void check_lock_order() {
    struct Site {
      std::string file;
      int line = 0;
    };
    std::map<std::pair<std::string, std::string>, Site> pairs;
    auto note = [&](const std::string& held, const std::string& then,
                    const TuSymbols& tu, int line) {
      if (held == then) return;
      pairs.emplace(std::make_pair(held, then), Site{tu.rel_path, line});
    };
    for (int i = 0; i < graph().function_count(); ++i) {
      const FunctionInfo& fn = graph().fn(i);
      const TuSymbols& tu = graph().tu_of(i);
      if (!in_src(tu.rel_path)) continue;
      for (const LockEvent& l : fn.locks) {
        for (const LockEvent& l2 : fn.locks)
          if (l2.tok > l.tok && l2.tok <= l.scope_end) note(l.mutex, l2.mutex, tu, l2.line);
        for (const CallGraph::Edge& e : graph().callees(i))
          if (e.tok > l.tok && e.tok <= l.scope_end)
            for (const std::string& b : acquires(e.to)) note(l.mutex, b, tu, e.line);
      }
    }
    for (const auto& [pair, site] : pairs) {
      if (pair.first >= pair.second) continue;  // report each unordered pair once
      const auto rev = pairs.find({pair.second, pair.first});
      if (rev == pairs.end()) continue;
      // Anchor on the lexicographically first of the two witness sites.
      const Site& a = site;
      const Site& b = rev->second;
      const bool a_first = std::tie(a.file, a.line) <= std::tie(b.file, b.line);
      const Site& anchor = a_first ? a : b;
      const Site& other = a_first ? b : a;
      const TuSymbols* tu = nullptr;
      for (const TuSymbols& t : tus_)
        if (t.rel_path == anchor.file) tu = &t;
      if (tu == nullptr) continue;
      add(*tu, anchor.line, "conc.lock-order",
          "'" + pair.first + "' and '" + pair.second +
              "' are acquired in both orders (other order at " + other.file + ":" +
              std::to_string(other.line) +
              "); pick one global order or use std::scoped_lock");
    }
  }

  // ---------------------------------------------------------------------
  // conc.unjoined-thread
  // ---------------------------------------------------------------------

  void check_unjoined_threads() {
    for (int i = 0; i < graph().function_count(); ++i) {
      const TuSymbols& tu = graph().tu_of(i);
      if (!in_src(tu.rel_path)) continue;
      for (const ThreadLocalVar& tv : graph().fn(i).thread_locals)
        if (!tv.joined_or_detached)
          add(tu, tv.line, "conc.unjoined-thread",
              "std::thread '" + tv.name +
                  "' is neither joined nor detached on any path; a running "
                  "thread at destruction calls std::terminate");
    }
  }

  // ---------------------------------------------------------------------
  // flow.dropped-report
  // ---------------------------------------------------------------------

  /// True when some declaration or definition named `callee` (narrowed by
  /// `qualifier` when it matches anything) returns VerifyReport/Diagnostic.
  bool returns_report(const std::string& callee, const std::string& qualifier) const {
    bool narrowed_any = false;
    bool narrowed_hit = false;
    bool any_hit = false;
    for (const TuSymbols& tu : tus_)
      for (const FunctionInfo& f : tu.functions) {
        if (f.name != callee) continue;
        const bool hit = f.returns_type("VerifyReport") || f.returns_type("Diagnostic");
        any_hit = any_hit || hit;
        if (!qualifier.empty() && f.class_name == qualifier) {
          narrowed_any = true;
          narrowed_hit = narrowed_hit || hit;
        }
      }
    return narrowed_any ? narrowed_hit : any_hit;
  }

  void check_dropped_reports() {
    for (int i = 0; i < graph().function_count(); ++i) {
      const FunctionInfo& fn = graph().fn(i);
      const TuSymbols& tu = graph().tu_of(i);
      if (!in_src(tu.rel_path)) continue;
      const auto& toks = tu.lexed.tokens;
      for (const CallSite& c : fn.calls) {
        if (!returns_report(c.callee, c.qualifier)) continue;
        // Statement-level call: the expression chain starts a statement and
        // the matching ')' is immediately followed by ';'.
        std::size_t start = c.tok;
        while (start >= 2 &&
               (is_punct(toks[start - 1], ".") || is_punct(toks[start - 1], "->") ||
                is_punct(toks[start - 1], "::")) &&
               toks[start - 2].kind == TokKind::kIdent)
          start -= 2;
        if (!(start == fn.body_begin + 1 || is_punct(toks[start - 1], ";") ||
              is_punct(toks[start - 1], "{") || is_punct(toks[start - 1], "}")))
          continue;
        int depth = 0;
        std::size_t close = std::string::npos;
        for (std::size_t k = c.tok + 1; k < fn.body_end; ++k) {
          if (is_punct(toks[k], "(")) ++depth;
          if (is_punct(toks[k], ")") && --depth == 0) {
            close = k;
            break;
          }
        }
        if (close == std::string::npos || close + 1 >= fn.body_end ||
            !is_punct(toks[close + 1], ";"))
          continue;
        add(tu, c.line, "flow.dropped-report",
            "result of '" + c.callee +
                "' (VerifyReport/Diagnostic) is discarded; inspect it or wrap "
                "the call in verify::enforce()");
      }
    }
  }

  // ---------------------------------------------------------------------
  // det.float-accum
  // ---------------------------------------------------------------------

  void check_float_accum() {
    for (int i = 0; i < graph().function_count(); ++i) {
      const FunctionInfo& fn = graph().fn(i);
      const TuSymbols& tu = graph().tu_of(i);
      if (!in_src(tu.rel_path)) continue;
      const auto& toks = tu.lexed.tokens;
      for (const ParallelRegion& region : fn.parallel_regions)
        for (std::size_t k = region.begin + 1; k + 1 < region.end; ++k) {
          if (toks[k].kind != TokKind::kIdent || k + 1 >= region.end) continue;
          if (!(is_punct(toks[k + 1], "+=") || is_punct(toks[k + 1], "-=") ||
                is_punct(toks[k + 1], "*=")))
            continue;
          // Accumulating into a float declared *outside* the region (and not
          // shadowed by a region-local redeclaration before this token).
          bool outside = false;
          bool shadowed = false;
          for (const FloatVar& v : fn.float_vars) {
            if (v.name != toks[k].text) continue;
            if (v.tok < region.begin) outside = true;
            if (v.tok > region.begin && v.tok < k) shadowed = true;
          }
          if (!outside || shadowed) continue;
          add(tu, toks[k].line, "det.float-accum",
              "floating-point accumulation into '" + toks[k].text +
                  "' inside a std::thread lambda; FP addition is not "
                  "associative, so reduce into per-thread slots and combine "
                  "in a fixed order");
        }
    }
  }

  // ---------------------------------------------------------------------
  // io.stray-stream (transitive)
  // ---------------------------------------------------------------------

  void check_transitive_stdio() {
    // Sinks: src/ functions with unsuppressed direct stdio. Suppressed sinks
    // (documented boundaries like verify::enforce) neither report nor
    // propagate. Reverse-BFS finds every function that can reach a sink; the
    // finding anchors on the call edge that enters the tainted region.
    struct Taint {
      std::string via;   ///< callee the taint flows through
      std::string sink;  ///< "file:line uses 'name'"
      std::size_t tok = 0;
      int line = 0;
    };
    std::map<int, Taint> tainted;  // fn index -> witness edge
    std::vector<int> work;
    for (int i = 0; i < graph().function_count(); ++i) {
      const FunctionInfo& fn = graph().fn(i);
      if (!in_src(graph().tu_of(i).rel_path) || fn.stdio_uses.empty()) continue;
      const StdioUse& u = fn.stdio_uses.front();
      tainted.emplace(i, Taint{fn.name,
                               graph().tu_of(i).rel_path + ":" +
                                   std::to_string(u.line) + " uses '" + u.callee + "'",
                               0, 0});
      work.push_back(i);
    }
    while (!work.empty()) {
      const int cur = work.back();
      work.pop_back();
      const Taint& t = tainted.at(cur);
      const std::string sink = t.sink;
      for (const CallGraph::Edge& e : graph().callers(cur)) {
        if (tainted.count(e.from) > 0) continue;
        tainted.emplace(e.from,
                        Taint{graph().fn(cur).name, sink, e.tok, e.line});
        work.push_back(e.from);
      }
    }
    for (const auto& [idx, t] : tainted) {
      if (t.line == 0) continue;  // a direct sink, handled by the token rule
      const TuSymbols& tu = graph().tu_of(idx);
      if (!in_src(tu.rel_path)) continue;
      add(tu, t.line, "io.stray-stream",
          "'" + graph().fn(idx).name + "' transitively reaches direct I/O "
              "through '" + t.via + "' (" + t.sink +
              "); route diagnostics through verify::Diagnostic or obs spans");
    }
  }

  // ---------------------------------------------------------------------
  // Dataflow rules: perf.*, lifetime.dangling-local, det.iter-invalidation
  // ---------------------------------------------------------------------

  static const std::set<std::string_view>& map_types() {
    static const std::set<std::string_view> t = {"map", "unordered_map", "multimap",
                                                 "unordered_multimap"};
    return t;
  }
  static const std::set<std::string_view>& growable_types() {
    static const std::set<std::string_view> t = {"vector", "deque", "string"};
    return t;
  }
  static const std::set<std::string_view>& container_types() {
    static const std::set<std::string_view> t = {
        "map",    "unordered_map", "multimap", "unordered_multimap",
        "set",    "unordered_set", "vector",   "deque",
        "list",   "string"};
    return t;
  }
  /// Aggregates big enough that a by-value parameter is a deep copy worth a
  /// finding (netlists, libraries and the flow/verify reports).
  static const std::set<std::string_view>& heavy_types() {
    static const std::set<std::string_view> t = {
        "Netlist",     "Aig",           "CellLibrary",      "CutDatabase",
        "VerifyReport", "BenchmarkDesign", "CompactionResult", "MapResult",
        "PackedDesign", "Placement",     "RoutingResult",    "FlowReport"};
    return t;
  }

  /// Resolves the head type of a receiver chain: a tracked local/param, or a
  /// container member of the enclosing class (`this.` prefix tolerated).
  /// Returns "" when unresolved; `var_out` gets the VarDef when it was one.
  std::string receiver_type(const FunctionDataflow& df, const FunctionInfo& fn,
                            std::string chain, const VarDef** var_out) const {
    *var_out = nullptr;
    if (chain.rfind("this.", 0) == 0) chain = chain.substr(5);
    if (chain.empty() || chain.find('.') != std::string::npos) return {};
    if (const VarDef* v = df.var(chain); v != nullptr) {
      *var_out = v;
      return v->type_head;
    }
    if (!fn.class_name.empty()) {
      const auto cit = classes_.find(fn.class_name);
      if (cit != classes_.end()) {
        const auto fit = cit->second->container_fields.find(chain);
        if (fit != cit->second->container_fields.end()) return fit->second;
      }
    }
    return {};
  }

  /// Emits a hotness-gated perf finding: always recorded on the worklist,
  /// surfaced as a regular finding only when a profile is loaded and the
  /// enclosing function is hot enough.
  void add_perf(const TuSymbols& tu, int line, std::string rule, std::string message,
                double hotness, bool gated) {
    if (tu.is_suppressed(line, rule)) return;
    if (opts_.perf_worklist != nullptr)
      opts_.perf_worklist->push_back({tu.rel_path, line, rule, message, hotness});
    if (gated && (opts_.profile == nullptr || hotness < opts_.hot_threshold)) return;
    findings_.push_back({tu.rel_path, line, std::move(rule), std::move(message), hotness});
  }

  static std::string hot_tag(double hotness) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", hotness);
    return std::string(" (hotness ") + buf + ")";
  }

  void check_dataflow_rules() {
    for (int i = 0; i < graph().function_count(); ++i) {
      const FunctionInfo& fn = graph().fn(i);
      const TuSymbols& tu = graph().tu_of(i);
      if (!in_src(tu.rel_path) || !fn.is_definition) continue;
      const FunctionDataflow df = analyze_dataflow(tu, fn);
      const double hot = hotness_[static_cast<std::size_t>(i)];
      check_copy_heavy_param(tu, fn, df);
      check_dangling_local(tu, fn, df);
      check_loop_perf(tu, fn, df, hot);
      for (const LoopInfo& loop : df.loops)
        if (loop.range_for) check_iter_invalidation(tu, fn, loop);
    }
  }

  // perf.copy-heavy-param ------------------------------------------------

  void check_copy_heavy_param(const TuSymbols& tu, const FunctionInfo& fn,
                              const FunctionDataflow& df) {
    for (const VarDef& v : df.vars) {
      if (!v.is_param || v.is_reference || heavy_types().count(v.type_head) == 0)
        continue;
      add(tu, v.line, "perf.copy-heavy-param",
          "parameter '" + v.name + "' passes " + v.type_head +
              " by value into '" + fn.name +
              "'; take const& (or std::move at every call site) — deep-copying "
              "netlist-sized aggregates dominates small-stage runtimes");
    }
  }

  // lifetime.dangling-local ----------------------------------------------

  void check_dangling_local(const TuSymbols& tu, const FunctionInfo& fn,
                            const FunctionDataflow& df) {
    if (!fn.returns_reference && !fn.returns_type("string_view")) return;
    const auto& t = tu.lexed.tokens;
    for (std::size_t k = fn.body_begin + 1; k + 2 < fn.body_end; ++k) {
      if (!(t[k].kind == TokKind::kIdent && t[k].text == "return")) continue;
      if (df.in_lambda(k)) continue;  // leaves the lambda, not the function
      if (t[k + 1].kind != TokKind::kIdent || !is_punct(t[k + 2], ";")) continue;
      const VarDef* v = df.var(t[k + 1].text);
      if (v == nullptr || v->is_param || v->is_reference || v->is_static) continue;
      const char* what = fn.returns_reference ? "a reference" : "a string_view";
      add(tu, t[k + 1].line, "lifetime.dangling-local",
          "'" + fn.name + "' returns " + what + " to local '" + v->name +
              "' (declared at line " + std::to_string(v->line) +
              "), which dies with the call; return by value or take the "
              "storage from the caller");
    }
  }

  // perf.map-in-hot-loop / perf.alloc-in-hot-loop / perf.growth-in-loop --

  /// Single scan over the function body: each candidate site is attributed
  /// to its *innermost* enclosing loop (so nested loops report once, not once
  /// per level), and sites inside run-once static-initializer lambdas are
  /// skipped — those bodies execute exactly once regardless of hotness.
  void check_loop_perf(const TuSymbols& tu, const FunctionInfo& fn,
                       const FunctionDataflow& df, double hot) {
    static const std::set<std::string_view> lookup_names = {
        "find", "at", "count", "contains", "lower_bound", "upper_bound"};
    const auto& t = tu.lexed.tokens;
    std::set<std::string> grown;  // one growth finding per (container, loop)
    for (std::size_t k = fn.body_begin + 1; k + 1 < fn.body_end; ++k) {
      if (t[k].kind != TokKind::kIdent) continue;
      const LoopInfo* loop = df.innermost_loop(k);
      if (loop == nullptr || df.in_run_once_lambda(k)) continue;
      // Node-based associative lookup through a tracked receiver.
      if (lookup_names.count(t[k].text) > 0 && k >= 2 &&
          (is_punct(t[k - 1], ".") || is_punct(t[k - 1], "->")) &&
          is_punct(t[k + 1], "(")) {
        const std::string chain = receiver_chain(t, k);
        const VarDef* v = nullptr;
        const std::string type = receiver_type(df, fn, chain, &v);
        if (map_types().count(type) > 0)
          add_perf(tu, t[k].line, "perf.map-in-hot-loop",
                   "std::" + type + " lookup '" + chain + "." + t[k].text +
                       "()' inside a loop of '" + fn.name + "'" + hot_tag(hot) +
                       "; node-based lookups in hot loops thrash the cache — "
                       "use a flat vector indexed by id (SoA roadmap)",
                   hot, /*gated=*/true);
        continue;
      }
      // operator[] on a tracked map (array-of-map declarators excluded).
      if (is_punct(t[k + 1], "[") &&
          !(k > 0 && (is_punct(t[k - 1], ".") || is_punct(t[k - 1], "->")))) {
        const VarDef* v = nullptr;
        const std::string type = receiver_type(df, fn, t[k].text, &v);
        if (map_types().count(type) > 0 && (v == nullptr || !v->is_array))
          add_perf(tu, t[k].line, "perf.map-in-hot-loop",
                   "std::" + type + " operator[] on '" + t[k].text +
                       "' inside a loop of '" + fn.name + "'" + hot_tag(hot) +
                       "; node-based lookups in hot loops thrash the cache — "
                       "use a flat vector indexed by id (SoA roadmap)",
                   hot, /*gated=*/true);
        continue;
      }
      // Growth into a container declared outside the loop with no dominating
      // reserve. Only locals/params: growth into a loop-local container is
      // covered by perf.alloc-in-hot-loop, and member containers may be
      // reserved far away (ctor).
      const bool grows =
          (t[k].text == "push_back" || t[k].text == "emplace_back") && k >= 2 &&
          (is_punct(t[k - 1], ".") || is_punct(t[k - 1], "->")) &&
          is_punct(t[k + 1], "(");
      if (grows) {
        const std::string chain = receiver_chain(t, k);
        const VarDef* v = nullptr;
        const std::string type = receiver_type(df, fn, chain, &v);
        if (v != nullptr && v->tok < loop->body_begin &&
            (growable_types().count(type) > 0 || type == "auto") &&
            !reserve_dominates(tu, fn, chain, *loop) &&
            grown.insert(chain + "#" + std::to_string(loop->header_tok)).second)
          add_perf(tu, t[k].line, "perf.growth-in-loop",
                   "'" + chain + "." + t[k].text + "()' grows inside a loop of '" +
                       fn.name + "'" + hot_tag(hot) + " with no dominating '" +
                       chain +
                       ".reserve(...)'; repeated geometric regrowth copies every "
                       "element — reserve before the loop",
                   hot, /*gated=*/true);
        continue;
      }
      // Explicit allocation per iteration.
      const bool alloc_call =
          (t[k].text == "make_unique" || t[k].text == "make_shared") &&
          (is_punct(t[k + 1], "(") || is_punct(t[k + 1], "<"));
      if (t[k].text == "new" || alloc_call) {
        add_perf(tu, t[k].line, "perf.alloc-in-hot-loop",
                 "heap allocation ('" + t[k].text + "') inside a loop of '" +
                     fn.name + "'" + hot_tag(hot) +
                     "; hoist the allocation out of the loop or reuse a "
                     "scratch buffer",
                 hot, /*gated=*/true);
      }
    }
    // A container local constructed with an initializer inside a loop body
    // allocates every iteration.
    for (const VarDef& v : df.vars) {
      if (v.is_param || v.is_reference || v.is_static) continue;
      if (container_types().count(v.type_head) == 0) continue;
      const LoopInfo* loop = df.innermost_loop(v.tok);
      if (loop == nullptr || df.in_run_once_lambda(v.tok)) continue;
      const bool has_init = v.tok + 1 < fn.body_end &&
                            (is_punct(t[v.tok + 1], "=") || is_punct(t[v.tok + 1], "{") ||
                             is_punct(t[v.tok + 1], "("));
      if (!has_init) continue;
      add_perf(tu, v.line, "perf.alloc-in-hot-loop",
               "std::" + v.type_head + " '" + v.name +
                   "' constructed every iteration of a loop in '" + fn.name + "'" +
                   hot_tag(hot) +
                   "; hoist it out of the loop and clear() per iteration",
               hot, /*gated=*/true);
    }
  }

  // det.iter-invalidation ------------------------------------------------

  void check_iter_invalidation(const TuSymbols& tu, const FunctionInfo& fn,
                               const LoopInfo& loop) {
    static const std::set<std::string_view> mutators = {
        "push_back", "emplace_back", "insert", "emplace", "erase",
        "clear",     "resize",       "pop_back"};
    const auto& t = tu.lexed.tokens;
    for (std::size_t k = loop.body_begin + 1; k + 1 < loop.body_end; ++k) {
      if (t[k].kind != TokKind::kIdent || mutators.count(t[k].text) == 0) continue;
      if (k < 2 || !(is_punct(t[k - 1], ".") || is_punct(t[k - 1], "->"))) continue;
      if (!is_punct(t[k + 1], "(")) continue;
      const std::string chain = receiver_chain(t, k);
      if (chain.empty() || chain != loop.range_expr) continue;
      add(tu, t[k].line, "det.iter-invalidation",
          "'" + chain + "." + t[k].text + "()' mutates the container '" +
              loop.range_expr + "' being range-for iterated (loop at line " +
              std::to_string(loop.line) +
              "); growth/erase invalidates the hidden iterators — collect "
              "changes and apply them after the loop");
    }
  }

  const ProjectOptions opts_;
  std::vector<TuSymbols> tus_;
  std::map<std::string, const ClassInfo*> classes_;
  std::optional<CallGraph> graph_;
  std::vector<double> hotness_;
  std::map<int, std::set<std::string>> acquires_;
  std::vector<Finding> findings_;
};

}  // namespace

std::vector<Finding> lint_project(const std::vector<SourceFile>& files,
                                  const ProjectOptions& options) {
  return SemanticLinter(files, options).run();
}

std::vector<Finding> lint_project(const std::vector<SourceFile>& files) {
  return lint_project(files, ProjectOptions{});
}

}  // namespace vpga::fabriclint
