#include "fabriclint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "catalogue.hpp"
#include "lexer.hpp"

namespace vpga::fabriclint {
namespace {

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool in_library(std::string_view rel) { return starts_with(rel, "src/"); }

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Index one past the `>` matching the `<` at `open` (treating `>>` as two
/// closes), or npos when the angle bracket never closes before a `;`/`{`.
std::size_t match_angle(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "<" || t.text == "<<") depth += static_cast<int>(t.text.size());
    if (t.text == ">" || t.text == ">>") {
      depth -= static_cast<int>(t.text.size());
      if (depth <= 0) return i + 1;
    }
    if (t.text == ";" || t.text == "{") return std::string::npos;
  }
  return std::string::npos;
}

/// Index one past the token matching the opener at `open` ((), [], {}).
std::size_t match_pair(const std::vector<Token>& toks, std::size_t open, char o, char c) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text.size() == 1 && toks[i].text[0] == o) ++depth;
    if (toks[i].text.size() == 1 && toks[i].text[0] == c && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

bool matches_obs_convention(std::string_view name) {
  int segments = 0;
  std::size_t pos = 0;
  while (pos <= name.size()) {
    const auto dot = name.find('.', pos);
    const std::string_view seg = name.substr(pos, dot == std::string_view::npos
                                                      ? std::string_view::npos
                                                      : dot - pos);
    if (seg.empty() || !(seg[0] >= 'a' && seg[0] <= 'z')) return false;
    for (char ch : seg)
      if (!((ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') || ch == '_')) return false;
    ++segments;
    if (dot == std::string_view::npos) break;
    pos = dot + 1;
  }
  return segments >= 2;
}

// ---------------------------------------------------------------------------
// Rule engine
// ---------------------------------------------------------------------------

class Linter {
 public:
  Linter(std::string_view rel_path, std::string_view content, const ObsRegistry* registry)
      : rel_(rel_path), registry_(registry), lexed_(lex(content)) {
    index_suppressions();
  }

  std::vector<Finding> run() {
    collect_unordered_decls();
    scan_tokens();
    scan_lambda_comparators();
    sort_findings(findings_);
    return std::move(findings_);
  }

 private:
  void add(int line, std::string_view rule, std::string message) {
    const auto it = suppressed_.find(line);
    if (it != suppressed_.end() && it->second.count(std::string(rule)) > 0) return;
    findings_.push_back({std::string(rel_), line, std::string(rule), std::move(message)});
  }

  /// Line of the first token strictly after `line` (the code an own-line
  /// directive annotates), or `line` + 1 when no token follows.
  int next_code_line(int line) const {
    for (const Token& t : lexed_.tokens)
      if (t.line > line) return t.line;
    return line + 1;
  }

  /// Builds line -> suppressed-rule-ids from the directives; malformed or
  /// reasonless directives become meta.bad-suppression findings themselves.
  void index_suppressions() {
    for (const Directive& d : lexed_.directives) {
      const int target = d.own_line ? next_code_line(d.line) : d.line;
      switch (d.kind) {
        case Directive::Kind::kSortedDownstream:
          suppressed_[target].insert("det.unordered-iter");
          break;
        case Directive::Kind::kDisable:
          if (!known_rule(d.rule)) {
            findings_.push_back({std::string(rel_), d.line, "meta.bad-suppression",
                                 "disable() names unknown rule '" + d.rule + "'"});
          } else if (!d.has_reason) {
            findings_.push_back({std::string(rel_), d.line, "meta.bad-suppression",
                                 "suppression of " + d.rule +
                                     " needs a reason: // fabriclint: disable(" + d.rule +
                                     ") -- <why>"});
          } else {
            suppressed_[target].insert(d.rule);
          }
          break;
        case Directive::Kind::kMalformed:
          findings_.push_back({std::string(rel_), d.line, "meta.bad-suppression",
                               "unparseable fabriclint directive: '" + d.raw + "'"});
          break;
      }
    }
  }

  /// Records every variable/member declared with an unordered container type
  /// (std::unordered_map<K,V> name / const std::unordered_set<T>& name).
  void collect_unordered_decls() {
    const auto& t = lexed_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      if (t[i].text != "unordered_map" && t[i].text != "unordered_set" &&
          t[i].text != "unordered_multimap" && t[i].text != "unordered_multiset")
        continue;
      if (i + 1 >= t.size() || !is_punct(t[i + 1], "<")) continue;
      std::size_t j = match_angle(t, i + 1);
      if (j == std::string::npos) continue;
      while (j < t.size() && (is_punct(t[j], "&") || is_punct(t[j], "*") ||
                              is_ident(t[j], "const")))
        ++j;
      if (j < t.size() && t[j].kind == TokKind::kIdent) unordered_vars_.insert(t[j].text);
    }
  }

  /// One linear pass for the token-pattern rules.
  void scan_tokens() {
    const auto& t = lexed_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind == TokKind::kIdent) {
        check_raw_rng(i);
        check_wall_clock(i);
        check_stray_stream(i);
        check_range_for(i);
        check_less_ptr(i);
        check_obs_call(i);
      }
      check_addr_compare(i);
    }
  }

  void check_raw_rng(std::size_t i) {
    if (rel_ == "src/common/rng.hpp") return;
    static const std::set<std::string_view> kRaw = {
        "rand",         "srand",          "rand_r",        "random_shuffle",
        "mt19937",      "mt19937_64",     "minstd_rand",   "minstd_rand0",
        "random_device", "default_random_engine", "knuth_b"};
    const auto& t = lexed_.tokens;
    if (kRaw.count(t[i].text) == 0) return;
    // `rand`/`srand` only as calls; the generator type names always count.
    if ((t[i].text == "rand" || t[i].text == "srand" || t[i].text == "rand_r") &&
        (i + 1 >= t.size() || !is_punct(t[i + 1], "(")))
      return;
    add(t[i].line, "det.raw-rng",
        "raw randomness source '" + t[i].text +
            "' — draw from common/rng.hpp (vpga::common::Rng) with an explicit seed");
  }

  void check_wall_clock(std::size_t i) {
    if (starts_with(rel_, "src/obs/") || starts_with(rel_, "tools/")) return;
    const auto& t = lexed_.tokens;
    static const std::set<std::string_view> kWall = {"system_clock", "gettimeofday",
                                                     "localtime",    "gmtime",
                                                     "mktime",       "timespec_get"};
    const bool std_qualified =
        i >= 2 && is_punct(t[i - 1], "::") && is_ident(t[i - 2], "std");
    bool hit = kWall.count(t[i].text) > 0;
    if (!hit && (t[i].text == "time" || t[i].text == "clock")) {
      if (std_qualified) {
        hit = true;
      } else if (t[i].text == "time" && i + 1 < t.size() && is_punct(t[i + 1], "(")) {
        // Bare C time(...) call: not a member access, not another namespace's
        // qualification, and not a declaration (`double time(...)`) — a
        // preceding identifier only counts when it is a statement keyword.
        const bool member_or_scope = i > 0 && (is_punct(t[i - 1], ".") ||
                                               is_punct(t[i - 1], "->") ||
                                               is_punct(t[i - 1], "::"));
        const bool decl_like = i > 0 && t[i - 1].kind == TokKind::kIdent &&
                               t[i - 1].text != "return" && t[i - 1].text != "case" &&
                               t[i - 1].text != "co_return";
        if (!member_or_scope && !decl_like) hit = true;
      }
    }
    if (hit)
      add(t[i].line, "det.wall-clock",
          "wall-clock source '" + t[i].text +
              "' outside src/obs/ — stages must not read real time (use obs spans "
              "for timing)");
  }

  void check_stray_stream(std::size_t i) {
    if (!in_library(rel_)) return;
    static const std::set<std::string_view> kStreams = {
        "cout", "cerr", "clog",     "printf", "fprintf", "vprintf",
        "puts", "putchar", "fputs", "fputc",  "fwrite"};
    const auto& t = lexed_.tokens;
    if (kStreams.count(t[i].text) == 0) return;
    // Skip member access (x.puts(...)) — only the global/std entities count.
    if (i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) return;
    add(t[i].line, "io.stray-stream",
        "direct I/O via '" + t[i].text +
            "' in library code — route diagnostics through verify::Diagnostic or obs");
  }

  /// Range-for whose range expression ends in a tracked unordered variable.
  void check_range_for(std::size_t i) {
    const auto& t = lexed_.tokens;
    if (!is_ident(t[i], "for") || i + 1 >= t.size() || !is_punct(t[i + 1], "(")) return;
    const std::size_t close = match_pair(t, i + 1, '(', ')');
    if (close == std::string::npos) return;
    // Locate the range colon at parenthesis depth 1 (a `;` first means a
    // classic three-clause for).
    int depth = 0;
    std::size_t colon = std::string::npos;
    for (std::size_t j = i + 1; j < close - 1; ++j) {
      if (is_punct(t[j], "(") || is_punct(t[j], "[")) ++depth;
      if (is_punct(t[j], ")") || is_punct(t[j], "]")) --depth;
      if (depth != 1) continue;
      if (is_punct(t[j], ";")) return;
      if (is_punct(t[j], ":")) {
        colon = j;
        break;
      }
    }
    if (colon == std::string::npos || colon + 1 >= close - 1) return;
    const Token& last = t[close - 2];  // final token of the range expression
    if (last.kind == TokKind::kIdent && unordered_vars_.count(last.text) > 0)
      add(t[i].line, "det.unordered-iter",
          "range-for over unordered container '" + last.text +
              "' — iteration order is nondeterministic; iterate a sorted/indexed view "
              "or annotate the loop with // fabriclint: sorted-downstream");
  }

  /// std::less<T*> keyed on pointer order.
  void check_less_ptr(std::size_t i) {
    const auto& t = lexed_.tokens;
    if (!is_ident(t[i], "less") || i + 1 >= t.size() || !is_punct(t[i + 1], "<")) return;
    const std::size_t end = match_angle(t, i + 1);
    if (end == std::string::npos || end < 3) return;
    if (is_punct(t[end - 2], "*"))
      add(t[i].line, "det.ptr-order",
          "std::less over a pointer type orders by address — allocation-dependent and "
          "nondeterministic across runs");
  }

  /// `&a < &b` — direct address comparison.
  void check_addr_compare(std::size_t i) {
    const auto& t = lexed_.tokens;
    if (i + 4 >= t.size()) return;
    if (is_punct(t[i], "&") && t[i + 1].kind == TokKind::kIdent &&
        (is_punct(t[i + 2], "<") || is_punct(t[i + 2], ">")) && is_punct(t[i + 3], "&") &&
        t[i + 4].kind == TokKind::kIdent)
      add(t[i].line, "det.ptr-order",
          "ordering on object addresses (&" + t[i + 1].text + " vs &" + t[i + 4].text +
              ") is allocation-dependent — key on stable ids instead");
  }

  /// Lambdas with pointer-typed parameters compared by `<`/`>` in the body.
  void scan_lambda_comparators() {
    const auto& t = lexed_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!is_punct(t[i], "[")) continue;
      // Subscript, not a lambda introducer, when preceded by a value.
      if (i > 0 && (t[i - 1].kind == TokKind::kIdent || t[i - 1].kind == TokKind::kNumber ||
                    t[i - 1].kind == TokKind::kString || is_punct(t[i - 1], ")") ||
                    is_punct(t[i - 1], "]")))
        continue;
      const std::size_t cap_end = match_pair(t, i, '[', ']');
      if (cap_end == std::string::npos || cap_end >= t.size() || !is_punct(t[cap_end], "("))
        continue;
      const std::size_t params_end = match_pair(t, cap_end, '(', ')');
      if (params_end == std::string::npos) continue;
      // Pointer-typed parameter names: last ident of any `,`-separated
      // parameter that contains a `*`.
      std::set<std::string> ptr_params;
      std::size_t start = cap_end + 1;
      int depth = 0;
      for (std::size_t j = cap_end + 1; j < params_end; ++j) {
        const bool at_end = j == params_end - 1;
        if (is_punct(t[j], "(") || is_punct(t[j], "[") || is_punct(t[j], "<")) ++depth;
        if (is_punct(t[j], ")") || is_punct(t[j], "]") || is_punct(t[j], ">")) --depth;
        if ((depth == 0 && is_punct(t[j], ",")) || at_end) {
          const std::size_t stop = at_end ? params_end : j;
          bool has_star = false;
          std::string name;
          for (std::size_t k = start; k < stop; ++k) {
            if (is_punct(t[k], "*")) has_star = true;
            if (t[k].kind == TokKind::kIdent) name = t[k].text;
          }
          if (has_star && !name.empty()) ptr_params.insert(name);
          start = j + 1;
        }
      }
      if (ptr_params.empty()) continue;
      // Body: skip specifiers/trailing return until `{`, then search it.
      std::size_t body = params_end;
      while (body < t.size() && !is_punct(t[body], "{") && !is_punct(t[body], ";")) ++body;
      if (body >= t.size() || !is_punct(t[body], "{")) continue;
      const std::size_t body_end = match_pair(t, body, '{', '}');
      if (body_end == std::string::npos) continue;
      for (std::size_t j = body + 1; j + 2 < body_end; ++j) {
        if (t[j].kind == TokKind::kIdent && (is_punct(t[j + 1], "<") || is_punct(t[j + 1], ">")) &&
            t[j + 2].kind == TokKind::kIdent && ptr_params.count(t[j].text) > 0 &&
            ptr_params.count(t[j + 2].text) > 0 && t[j].text != t[j + 2].text) {
          add(t[j].line, "det.ptr-order",
              "comparator orders pointers '" + t[j].text + "' and '" + t[j + 2].text +
                  "' by address — compare stable keys (ids, names) instead");
          break;
        }
      }
    }
  }

  /// obs::Span / obs::count / obs::gauge / obs::observe with a literal name:
  /// the literal must follow the dotted lowercase convention and be present
  /// in the src/obs/names.hpp registry. Concatenated (dynamic) names are the
  /// registry's documented prefix families and are skipped.
  void check_obs_call(std::size_t i) {
    if (!in_library(rel_) || starts_with(rel_, "src/obs/")) return;
    const auto& t = lexed_.tokens;
    if (!is_ident(t[i], "obs") || i + 2 >= t.size() || !is_punct(t[i + 1], "::")) return;
    const std::string& fn = t[i + 2].text;
    const bool span = fn == "Span";
    const bool metric = fn == "count" || fn == "gauge" || fn == "observe";
    const bool event = fn == "flight_event";
    if (!span && !metric && !event) return;
    std::size_t j = i + 3;
    if (span && j < t.size() && t[j].kind == TokKind::kIdent) ++j;  // variable name
    if (j >= t.size() || (!is_punct(t[j], "(") && !is_punct(t[j], "{"))) return;
    ++j;
    if (j >= t.size() || t[j].kind != TokKind::kString) return;
    if (j + 1 < t.size() && is_punct(t[j + 1], "+")) return;  // dynamic name
    const std::string& name = t[j].text;
    const std::string_view rule =
        span ? "obs.span-name" : (event ? "obs.event-name" : "obs.metric-name");
    const char* noun = span ? "span" : (event ? "event" : "metric");
    if (!matches_obs_convention(name)) {
      add(t[j].line, rule,
          std::string(noun) + " name '" + name +
              "' violates the dotted lowercase family.detail convention "
              "(docs/OBSERVABILITY.md)");
      return;
    }
    if (registry_ == nullptr || registry_->empty()) return;
    const auto& known =
        span ? registry_->spans : (event ? registry_->events : registry_->metrics);
    if (known.count(name) == 0)
      add(t[j].line, rule,
          std::string(noun) + " name '" + name +
              "' is not in the registry — add it to src/obs/names.hpp and "
              "docs/OBSERVABILITY.md");
  }

  std::string_view rel_;
  const ObsRegistry* registry_;
  LexResult lexed_;
  std::set<std::string> unordered_vars_;
  std::map<int, std::set<std::string>> suppressed_;
  std::vector<Finding> findings_;
};

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

}  // namespace

ObsRegistry parse_obs_registry(std::string_view names_hpp) {
  ObsRegistry reg;
  const LexResult lexed = lex(names_hpp);
  std::set<std::string, std::less<>>* current = nullptr;
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokKind::kIdent) {
      if (t.text == "kSpanNames") current = &reg.spans;
      if (t.text == "kMetricNames") current = &reg.metrics;
      if (t.text == "kEventNames") current = &reg.events;
    }
    if (t.kind == TokKind::kString && current != nullptr) current->insert(t.text);
  }
  return reg;
}

std::vector<Finding> lint_source(std::string_view rel_path, std::string_view content,
                                 const ObsRegistry* registry) {
  return Linter(rel_path, content, registry).run();
}

std::vector<Finding> check_rule_sync(std::string_view header_rel_path,
                                     std::string_view header_content,
                                     std::string_view docs_rel_path,
                                     std::string_view docs_content) {
  std::set<std::string> catalogued;
  for (const Token& t : lex(header_content).tokens)
    if (t.kind == TokKind::kString && t.text.find('.') != std::string::npos)
      catalogued.insert(t.text);

  // A documented rule is the first backticked token of a table row when that
  // token is dotted and plain (no spaces, scopes or calls) — the same scrape
  // the retired test_verify string-scrape test used.
  std::set<std::string> documented;
  std::istringstream in{std::string(docs_content)};
  std::string line;
  while (std::getline(in, line)) {
    const auto bar = line.find_first_not_of(" \t");
    if (bar == std::string::npos || line[bar] != '|') continue;
    const auto open = line.find('`');
    if (open == std::string::npos) continue;
    const auto close = line.find('`', open + 1);
    if (close == std::string::npos) continue;
    const std::string tok = line.substr(open + 1, close - open - 1);
    if (tok.find('.') == std::string::npos) continue;
    if (tok.find_first_of(" :(/") != std::string::npos) continue;
    documented.insert(tok);
  }

  std::vector<Finding> findings;
  for (const std::string& r : catalogued)
    if (documented.count(r) == 0)
      findings.push_back({std::string(header_rel_path), 1, "verify.rule-sync",
                          "rule '" + r + "' is catalogued but has no table row in " +
                              std::string(docs_rel_path)});
  for (const std::string& r : documented)
    if (catalogued.count(r) == 0)
      findings.push_back({std::string(docs_rel_path), 1, "verify.rule-sync",
                          "rule '" + r + "' is documented but missing from " +
                              std::string(header_rel_path)});
  sort_findings(findings);
  return findings;
}

std::vector<Finding> check_header_self_contained(const std::string& header_path,
                                                 const std::string& rel_path,
                                                 const std::string& include_dir,
                                                 const std::string& compiler) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "fabriclint_hdr";
  fs::create_directories(dir);
  const fs::path tu = dir / "selfcheck.cpp";
  const fs::path err = dir / "selfcheck.err";
  {
    std::ofstream out(tu);
    out << "#include \"" << header_path << "\"\n";
  }
  const std::string cmd = compiler + " -std=c++20 -fsyntax-only -I \"" + include_dir +
                          "\" \"" + tu.string() + "\" 2> \"" + err.string() + "\"";
  const int rc = std::system(cmd.c_str());  // NOLINT
  if (rc == 0) return {};
  std::string first_error;
  std::ifstream in(err);
  std::getline(in, first_error);
  return {{rel_path, 1, "hdr.self-contained",
           "header does not compile standalone: " + first_error}};
}

namespace {

/// Fixed-precision hotness rendering keeps the documents byte-stable for a
/// fixed profile.
std::string hotness_str(double h) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", h);
  return buf;
}

void append_finding_json(std::string& out, const Finding& f) {
  out += "{\"file\": ";
  append_json_string(out, f.file);
  out += ", \"line\": " + std::to_string(f.line) + ", \"rule\": ";
  append_json_string(out, f.rule);
  out += ", \"hotness\": " + hotness_str(f.hotness) + ", \"message\": ";
  append_json_string(out, f.message);
  out += "}";
}

}  // namespace

std::string findings_json(const std::vector<Finding>& findings, long long elapsed_ms) {
  std::string out = "{\"schema\": \"vpga.fabriclint.v3\", \"total\": " +
                    std::to_string(findings.size()) + ", \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) out += ", ";
    first = false;
    append_finding_json(out, f);
  }
  out += "]";
  if (elapsed_ms >= 0) out += ", \"elapsed_ms\": " + std::to_string(elapsed_ms);
  out += "}";
  return out;
}

std::string perf_report_json(std::vector<Finding> worklist,
                             std::string_view profile_path) {
  std::sort(worklist.begin(), worklist.end(), [](const Finding& a, const Finding& b) {
    if (a.hotness != b.hotness) return a.hotness > b.hotness;
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  std::string out = "{\"schema\": \"vpga.fabriclint.perf.v1\", \"profile\": ";
  append_json_string(out, profile_path);
  out += ", \"total\": " + std::to_string(worklist.size()) + ", \"findings\": [";
  bool first = true;
  for (const Finding& f : worklist) {
    if (!first) out += ", ";
    first = false;
    append_finding_json(out, f);
  }
  out += "]}";
  return out;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
}

}  // namespace vpga::fabriclint
