#include "dataflow.hpp"

#include <set>

namespace vpga::fabriclint {
namespace {

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Head type idents the dataflow pass attributes declarations to. CamelCase
/// project class names are accepted separately in type_head_at().
const std::set<std::string_view>& known_type_heads() {
  static const std::set<std::string_view> t = {
      "map",    "unordered_map", "multimap", "unordered_multimap",
      "set",    "unordered_set", "multiset", "unordered_multiset",
      "vector", "deque",         "list",     "array",
      "string", "string_view",   "auto",     "int",
      "long",   "short",         "unsigned", "signed",
      "char",   "bool",          "float",    "double",
      "size_t", "ptrdiff_t",     "int8_t",   "int16_t",
      "int32_t", "int64_t",      "uint8_t",  "uint16_t",
      "uint32_t", "uint64_t",    "uintptr_t"};
  return t;
}

bool camel_case(std::string_view name) {
  if (name.empty() || name[0] < 'A' || name[0] > 'Z') return false;
  for (char c : name)
    if (c >= 'a' && c <= 'z') return true;
  return false;
}

/// Keywords that can precede a declaration's type without ending the
/// statement context.
bool decl_qualifier(const Token& t) {
  return is_ident(t, "const") || is_ident(t, "static") || is_ident(t, "constexpr") ||
         is_ident(t, "inline") || is_ident(t, "thread_local") || is_ident(t, "mutable");
}

/// Index one past the `>` matching the `<` at `open` (`>>` counts twice), or
/// npos when it never closes before `;`/`{`.
std::size_t match_angle(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "<" || t.text == "<<") depth += static_cast<int>(t.text.size());
    if (t.text == ">" || t.text == ">>") {
      depth -= static_cast<int>(t.text.size());
      if (depth <= 0) return i + 1;
    }
    if (t.text == ";" || t.text == "{") return std::string::npos;
  }
  return std::string::npos;
}

/// close[i] = index of the token closing the (), [] or {} opened at i, over
/// the half-open token range [begin, end).
std::vector<std::size_t> match_brackets(const std::vector<Token>& toks,
                                        std::size_t begin, std::size_t end) {
  std::vector<std::size_t> close(toks.size(), std::string::npos);
  std::vector<std::size_t> stack;
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct || toks[i].text.size() != 1) continue;
    const char c = toks[i].text[0];
    if (c == '(' || c == '[' || c == '{') {
      stack.push_back(i);
    } else if (c == ')' || c == ']' || c == '}') {
      const char open = c == ')' ? '(' : (c == ']' ? '[' : '{');
      while (!stack.empty() && toks[stack.back()].text[0] != open) stack.pop_back();
      if (!stack.empty()) {
        close[stack.back()] = i;
        stack.pop_back();
      }
    }
  }
  return close;
}

/// The collector proper: one instance per (tu, fn) pair.
class DataflowAnalyzer {
 public:
  DataflowAnalyzer(const TuSymbols& tu, const FunctionInfo& fn)
      : tu_(tu), fn_(fn), close_(match_brackets(tu.lexed.tokens, 0, tu.lexed.tokens.size())) {}

  FunctionDataflow run() {
    if (!fn_.is_definition) return std::move(df_);
    collect_params();
    recover_lambdas();
    recover_loops();
    collect_locals();
    mark_run_once_lambdas();
    collect_defs_and_uses();
    return std::move(df_);
  }

 private:
  const std::vector<Token>& toks() const { return tu_.lexed.tokens; }

  /// Attempts to read a declaration's type at token index i. On success
  /// returns the index of the first modifier/name token after the (possibly
  /// templated) type and fills `head`; 0 on failure.
  std::size_t type_head_at(std::size_t i, std::string& head) const {
    const auto& t = toks();
    if (t[i].kind != TokKind::kIdent) return 0;
    if (known_type_heads().count(t[i].text) == 0 && !camel_case(t[i].text)) return 0;
    head = t[i].text;
    std::size_t j = i + 1;
    if (j < t.size() && is_punct(t[j], "<")) {
      const std::size_t a = match_angle(t, j);
      if (a == std::string::npos) return 0;
      j = a;
    }
    return j;
  }

  void collect_params() {
    const auto& t = toks();
    std::size_t i = fn_.params_open + 1;
    const std::size_t end =
        fn_.params_close == std::string::npos ? fn_.params_open : fn_.params_close;
    while (i < end) {
      // Skip leading qualifiers and namespace qualification of the type.
      while (i < end && (decl_qualifier(t[i]) ||
                         (i + 1 < end && t[i].kind == TokKind::kIdent &&
                          is_punct(t[i + 1], "::"))))
        i += is_punct(t[i + 1 < end ? i + 1 : i], "::") && !decl_qualifier(t[i]) ? 2 : 1;
      std::string head;
      std::size_t j = i < end ? type_head_at(i, head) : 0;
      if (j == 0 || j > end) {
        // Not a recognized declaration: skip to the next top-level comma.
        while (i < end && !is_punct(t[i], ",")) {
          if (is_punct(t[i], "(") || is_punct(t[i], "[") || is_punct(t[i], "{")) {
            const std::size_t c = close_[i];
            if (c == std::string::npos || c >= end) return;
            i = c;
          }
          ++i;
        }
        ++i;
        continue;
      }
      bool ref = false;
      while (j < end && (is_punct(t[j], "&") || is_punct(t[j], "&&") ||
                         is_punct(t[j], "*") || decl_qualifier(t[j]))) {
        if (!decl_qualifier(t[j])) ref = true;
        ++j;
      }
      if (j < end && t[j].kind == TokKind::kIdent)
        df_.vars.push_back({t[j].text, head, j, t[j].line, true, ref,
                            j + 1 < end && is_punct(t[j + 1], "["), false});
      i = j;
      while (i < end && !is_punct(t[i], ",")) {
        if (is_punct(t[i], "(") || is_punct(t[i], "[") || is_punct(t[i], "{")) {
          const std::size_t c = close_[i];
          if (c == std::string::npos || c >= end) return;
          i = c;
        }
        ++i;
      }
      ++i;
    }
  }

  /// Records the body range of every lambda literal: a `[` that is not a
  /// subscript (no ident/`]`/`)` before it), its capture list, an optional
  /// parameter list, specifier tokens, then the `{` body.
  void recover_lambdas() {
    const auto& t = toks();
    for (std::size_t i = fn_.body_begin + 1; i + 1 < fn_.body_end; ++i) {
      if (!is_punct(t[i], "[")) continue;
      if (i > 0 && (t[i - 1].kind == TokKind::kIdent || is_punct(t[i - 1], "]") ||
                    is_punct(t[i - 1], ")")) &&
          !is_ident(t[i - 1], "return") && !is_ident(t[i - 1], "co_return"))
        continue;  // subscript
      const std::size_t cap_close = close_[i];
      if (cap_close == std::string::npos || cap_close >= fn_.body_end) continue;
      std::size_t j = cap_close + 1;
      if (j < fn_.body_end && is_punct(t[j], "(")) {
        const std::size_t p = close_[j];
        if (p == std::string::npos || p >= fn_.body_end) continue;
        j = p + 1;
      }
      // mutable / noexcept / -> RetType, but never across a statement end.
      while (j < fn_.body_end && !is_punct(t[j], "{") && !is_punct(t[j], ";") &&
             j - cap_close < 8)
        ++j;
      if (j >= fn_.body_end || !is_punct(t[j], "{")) continue;
      const std::size_t body_close = close_[j];
      if (body_close == std::string::npos || body_close >= fn_.body_end) continue;
      df_.lambda_bodies.push_back({i, j, body_close + 1, false});
    }
  }

  /// Marks lambdas that immediately initialize a static local — `static T x
  /// = []{...}()` runs its body exactly once. Needs collect_locals() done.
  void mark_run_once_lambdas() {
    const auto& t = toks();
    for (const VarDef& v : df_.vars) {
      if (!v.is_static || v.tok + 2 >= fn_.body_end) continue;
      if (!is_punct(t[v.tok + 1], "=") || !is_punct(t[v.tok + 2], "[")) continue;
      for (LambdaBody& l : df_.lambda_bodies)
        if (l.cap_tok == v.tok + 2) l.run_once = true;
    }
  }

  void recover_loops() {
    const auto& t = toks();
    for (std::size_t i = fn_.body_begin + 1; i + 1 < fn_.body_end; ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      LoopInfo loop;
      loop.header_tok = i;
      loop.line = t[i].line;
      if ((is_ident(t[i], "for") || is_ident(t[i], "while")) && i + 1 < fn_.body_end &&
          is_punct(t[i + 1], "(")) {
        // `} while (...)` is the tail of a do-while already recovered below.
        if (is_ident(t[i], "while") && i > 0 && is_punct(t[i - 1], "}")) continue;
        const std::size_t header_close = close_[i + 1];
        if (header_close == std::string::npos || header_close + 1 >= fn_.body_end) continue;
        if (is_ident(t[i], "for")) recover_range_for(loop, i + 1, header_close);
        body_range(loop, header_close + 1);
      } else if (is_ident(t[i], "do") && i + 1 < fn_.body_end && is_punct(t[i + 1], "{")) {
        body_range(loop, i + 1);
      } else {
        continue;
      }
      if (loop.body_end == 0) continue;
      df_.loops.push_back(std::move(loop));
    }
    // Nesting depth: the number of previously recovered loops (token order =
    // outer before inner) whose body encloses this loop's header.
    for (std::size_t a = 0; a < df_.loops.size(); ++a)
      for (std::size_t b = 0; b < a; ++b)
        if (df_.loops[b].body_begin <= df_.loops[a].header_tok &&
            df_.loops[a].header_tok < df_.loops[b].body_end)
          ++df_.loops[a].depth;
  }

  /// Fills body_begin/body_end from the token after the loop header: a `{`
  /// block or a single statement up to its `;`.
  void body_range(LoopInfo& loop, std::size_t at) {
    const auto& t = toks();
    if (at >= fn_.body_end) return;
    if (is_punct(t[at], "{")) {
      const std::size_t c = close_[at];
      if (c == std::string::npos || c >= fn_.body_end) return;
      loop.body_begin = at;
      loop.body_end = c + 1;
      return;
    }
    std::size_t j = at;
    while (j < fn_.body_end && !is_punct(t[j], ";")) {
      if (is_punct(t[j], "(") || is_punct(t[j], "[") || is_punct(t[j], "{")) {
        const std::size_t c = close_[j];
        if (c == std::string::npos || c >= fn_.body_end) return;
        j = c;
      }
      ++j;
    }
    if (j >= fn_.body_end) return;
    loop.body_begin = at;
    loop.body_end = j + 1;
  }

  /// Detects `for (decl : range)` and normalizes the range expression. With
  /// `::` lexed as one token, a single `:` at header paren depth 0 is
  /// unambiguously the range colon.
  void recover_range_for(LoopInfo& loop, std::size_t header_open,
                         std::size_t header_close) {
    const auto& t = toks();
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t k = header_open + 1; k < header_close; ++k) {
      if (is_punct(t[k], "(") || is_punct(t[k], "[") || is_punct(t[k], "{")) ++depth;
      if (is_punct(t[k], ")") || is_punct(t[k], "]") || is_punct(t[k], "}")) --depth;
      if (depth == 0 && is_punct(t[k], ":")) {
        colon = k;
        break;
      }
    }
    if (colon == std::string::npos) return;
    loop.range_for = true;
    for (std::size_t k = colon + 1; k < header_close; ++k)
      loop.range_expr += is_punct(t[k], "->") ? "." : t[k].text;
  }

  /// Block depth of a token relative to the function body (0 = top level).
  int block_depth(std::size_t tok) const {
    const auto& t = toks();
    int depth = 0;
    for (std::size_t k = fn_.body_begin + 1; k < tok && k + 1 < fn_.body_end; ++k) {
      if (is_punct(t[k], "{")) ++depth;
      if (is_punct(t[k], "}")) --depth;
    }
    return depth < 0 ? 0 : depth;
  }

  void collect_locals() {
    const auto& t = toks();
    for (std::size_t i = fn_.body_begin + 1; i + 1 < fn_.body_end; ++i) {
      // Statement context: a declaration starts after `;` `{` `}` `(`;
      // namespace qualification (`std::`, `logic::`) and qualifier keywords
      // (`static const`) may precede the head type ident — walk back over
      // both, collecting `static` on the way.
      std::size_t start = i;
      bool is_static = false;
      while (start > fn_.body_begin + 1) {
        const Token& prev = t[start - 1];
        if (decl_qualifier(prev)) {
          if (is_ident(prev, "static")) is_static = true;
          --start;
          continue;
        }
        if (is_punct(prev, "::") && start >= 2 && t[start - 2].kind == TokKind::kIdent) {
          start -= 2;
          continue;
        }
        break;
      }
      if (start > fn_.body_begin + 1) {
        const Token& prev = t[start - 1];
        const bool stmt_start = is_punct(prev, ";") || is_punct(prev, "{") ||
                                is_punct(prev, "}") || is_punct(prev, "(");
        if (!stmt_start) continue;
      }
      std::string head;
      const std::size_t after_type = type_head_at(i, head);
      if (after_type == 0 || after_type + 1 >= fn_.body_end) continue;
      std::size_t j = after_type;
      bool ref = false;
      while (j + 1 < fn_.body_end && (is_punct(t[j], "&") || is_punct(t[j], "&&") ||
                                      is_punct(t[j], "*") || decl_qualifier(t[j]))) {
        if (!decl_qualifier(t[j])) ref = true;
        ++j;
      }
      if (j + 1 >= fn_.body_end || t[j].kind != TokKind::kIdent) continue;
      const Token& next = t[j + 1];
      const bool declarator_end = is_punct(next, "=") || is_punct(next, ";") ||
                                  is_punct(next, "{") || is_punct(next, "(") ||
                                  is_punct(next, "[") || is_punct(next, ",") ||
                                  is_punct(next, ":") || is_punct(next, ")");
      if (!declarator_end) continue;
      if (df_.var(t[j].text) != nullptr) continue;  // first declaration wins
      df_.vars.push_back(
          {t[j].text, head, j, t[j].line, false, ref, is_punct(next, "["), is_static});
      // A declaration with an initializer is the variable's first def.
      if (is_punct(next, "=") || is_punct(next, "{") || is_punct(next, "(") ||
          is_punct(next, ":"))
        df_.defs.push_back({t[j].text, j, t[j].line, block_depth(j)});
      i = j;
    }
  }

  void collect_defs_and_uses() {
    const auto& t = toks();
    for (std::size_t i = fn_.body_begin + 1; i + 1 < fn_.body_end; ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      const VarDef* v = df_.var(t[i].text);
      if (v == nullptr || v->tok == i) continue;  // untracked or the decl itself
      if (i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->") ||
                    is_punct(t[i - 1], "::")))
        continue;  // member/scope access: not this variable
      const bool assign = i + 1 < fn_.body_end && is_punct(t[i + 1], "=");
      const bool compound =
          i + 1 < fn_.body_end &&
          (is_punct(t[i + 1], "+=") || is_punct(t[i + 1], "-=") ||
           is_punct(t[i + 1], "*=") || is_punct(t[i + 1], "/=") ||
           is_punct(t[i + 1], "|=") || is_punct(t[i + 1], "&=") ||
           is_punct(t[i + 1], "++") || is_punct(t[i + 1], "--"));
      const bool incdec_pre =
          i > 0 && (is_punct(t[i - 1], "++") || is_punct(t[i - 1], "--"));
      if (assign || compound || incdec_pre)
        df_.defs.push_back({t[i].text, i, t[i].line, block_depth(i)});
      if (!assign)  // plain `=` kills without reading; compound ops read too
        df_.uses.push_back({t[i].text, i, t[i].line});
    }
  }

  const TuSymbols& tu_;
  const FunctionInfo& fn_;
  std::vector<std::size_t> close_;
  FunctionDataflow df_;
};

}  // namespace

FunctionDataflow analyze_dataflow(const TuSymbols& tu, const FunctionInfo& fn) {
  return DataflowAnalyzer(tu, fn).run();
}

std::vector<Def> reaching_defs(const FunctionDataflow& df, const Use& use) {
  // Last unconditional def before the use kills everything earlier; the
  // conditional defs after it accumulate (lossy CFG: a nested block may not
  // execute).
  std::size_t kill = std::string::npos;
  for (const Def& d : df.defs)
    if (d.name == use.name && d.tok < use.tok && d.block_depth == 0) kill = d.tok;
  std::vector<Def> out;
  for (const Def& d : df.defs) {
    if (d.name != use.name || d.tok >= use.tok) continue;
    if (kill != std::string::npos && d.tok < kill) continue;
    out.push_back(d);
  }
  return out;
}

bool reserve_dominates(const TuSymbols& tu, const FunctionInfo& fn,
                       std::string_view container, const LoopInfo& loop) {
  const auto& t = tu.lexed.tokens;
  for (std::size_t i = fn.body_begin + 1; i < loop.header_tok && i + 1 < fn.body_end;
       ++i) {
    if (!is_ident(t[i], "reserve")) continue;
    if (i == 0 || !(is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) continue;
    if (i + 1 >= fn.body_end || !is_punct(t[i + 1], "(")) continue;
    if (receiver_chain(t, i) == container) return true;
  }
  return false;
}

std::string receiver_chain(const std::vector<Token>& toks, std::size_t callee_tok) {
  std::vector<std::string> parts;
  std::size_t i = callee_tok;
  while (i >= 2 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
         toks[i - 2].kind == TokKind::kIdent) {
    parts.push_back(toks[i - 2].text);
    i -= 2;
  }
  // A pending `.`/`->` means the walk stopped inside a longer chain whose
  // head is not a plain ident (`x[0].y.callee`, `f().y.callee`): unresolved.
  // A `)`/`]` directly before the first chain ident is NOT a receiver — an
  // ident can only follow one across a statement or control-flow-header
  // boundary (`for (...) out.push_back(x);`).
  if (i >= 1 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")))
    return {};
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!out.empty()) out += '.';
    out += *it;
  }
  return out;
}

}  // namespace vpga::fabriclint
