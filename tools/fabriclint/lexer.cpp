#include "lexer.hpp"

#include <cctype>

namespace vpga::fabriclint {
namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

/// Two-character punctuators lexed as one token. `::` matters most: with it
/// fused, a single `:` inside a range-for header is unambiguously the range
/// colon. The operators keep `&` ident `<` `&` ident patterns unambiguous.
bool two_char_punct(char a, char b) {
  switch (a) {
    case ':': return b == ':';
    case '-': return b == '>' || b == '-' || b == '=';
    case '+': return b == '+' || b == '=';
    case '<': return b == '<' || b == '=';
    case '>': return b == '>' || b == '=';
    case '=': return b == '=';
    case '!': return b == '=';
    case '&': return b == '&' || b == '=';
    case '|': return b == '|' || b == '=';
    default: return false;
  }
}

/// Parses one comment body for a fabriclint directive. `own_line` = the
/// comment is the first non-whitespace content on its line.
void parse_directive(std::string_view comment, int line, bool own_line,
                     std::vector<Directive>& out) {
  const auto pos = comment.find("fabriclint:");
  if (pos == std::string_view::npos) return;
  std::string_view body = trim(comment.substr(pos + 11));
  Directive d;
  d.line = line;
  d.own_line = own_line;
  d.raw = std::string(body);
  std::string_view reason;
  if (const auto sep = body.find("--"); sep != std::string_view::npos) {
    reason = trim(body.substr(sep + 2));
    body = trim(body.substr(0, sep));
  }
  d.has_reason = !reason.empty();
  if (body.substr(0, 8) == "disable(" && body.back() == ')') {
    d.kind = Directive::Kind::kDisable;
    d.rule = std::string(trim(body.substr(8, body.size() - 9)));
  } else if (body == "sorted-downstream") {
    d.kind = Directive::Kind::kSortedDownstream;
  } else {
    d.kind = Directive::Kind::kMalformed;
  }
  out.push_back(std::move(d));
}

}  // namespace

LexResult lex(std::string_view src) {
  LexResult res;
  std::size_t i = 0;
  int line = 1;
  bool line_has_code = false;  // any token emitted on the current line yet

  auto push = [&](TokKind k, std::string text) {
    res.tokens.push_back({k, std::move(text), line});
    line_has_code = true;
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      line_has_code = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment (and directive extraction).
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      const auto end = src.find('\n', i);
      const std::string_view body =
          src.substr(i + 2, (end == std::string_view::npos ? src.size() : end) - i - 2);
      parse_directive(body, line, !line_has_code, res.directives);
      i = end == std::string_view::npos ? src.size() : end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      const int start_line = line;
      const bool own = !line_has_code;
      std::size_t j = i + 2;
      while (j + 1 < src.size() && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      parse_directive(src.substr(i + 2, j - i - 2), start_line, own, res.directives);
      i = j + 2 > src.size() ? src.size() : j + 2;
      continue;
    }
    // Identifier (possibly a raw-string prefix).
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < src.size() && ident_char(src[j])) ++j;
      std::string id(src.substr(i, j - i));
      // Raw string literal: R"delim( ... )delim" (incl. u8R, uR, UR, LR).
      if (j < src.size() && src[j] == '"' && !id.empty() && id.back() == 'R' &&
          (id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR")) {
        std::size_t k = j + 1;
        std::string delim;
        while (k < src.size() && src[k] != '(') delim += src[k++];
        const std::string closer = ")" + delim + "\"";
        const auto end = src.find(closer, k);
        const std::size_t stop = end == std::string_view::npos ? src.size() : end;
        std::string body(src.substr(k + 1 <= stop ? k + 1 : stop, stop - (k + 1)));
        for (char bc : body)
          if (bc == '\n') ++line;
        push(TokKind::kString, std::move(body));
        i = end == std::string_view::npos ? src.size() : end + closer.size();
        continue;
      }
      push(TokKind::kIdent, std::move(id));
      i = j;
      continue;
    }
    // Ordinary string / char literal.
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      std::string body;
      while (j < src.size() && src[j] != c) {
        if (src[j] == '\\' && j + 1 < src.size()) {
          body += src[j];
          body += src[j + 1];
          j += 2;
          continue;
        }
        if (src[j] == '\n') ++line;  // unterminated; keep line count honest
        body += src[j++];
      }
      push(c == '"' ? TokKind::kString : TokKind::kChar, std::move(body));
      i = j < src.size() ? j + 1 : j;
      continue;
    }
    // Number (pp-number: digits, letters, dots, exponent signs, separators).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t j = i;
      while (j < src.size()) {
        const char n = src[j];
        if (ident_char(n) || n == '.' || n == '\'') {
          ++j;
          continue;
        }
        if ((n == '+' || n == '-') && j > i) {
          const char p = src[j - 1];
          if (p == 'e' || p == 'E' || p == 'p' || p == 'P') {
            ++j;
            continue;
          }
        }
        break;
      }
      push(TokKind::kNumber, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    // Punctuation (two-char operators fused).
    if (i + 1 < src.size() && two_char_punct(c, src[i + 1])) {
      push(TokKind::kPunct, std::string(src.substr(i, 2)));
      i += 2;
      continue;
    }
    push(TokKind::kPunct, std::string(1, c));
    ++i;
  }
  return res;
}

}  // namespace vpga::fabriclint
