#pragma once
/// \file catalogue.hpp
/// The canonical catalogue of fabriclint rule ids, modeled on
/// src/verify/rules.hpp: every rule the linter can emit appears here exactly
/// once, the docs table in docs/LINT.md is checked against this list by the
/// tree-level `verify.rule-sync` check, and tests/test_fabriclint.cpp keeps a
/// failing + passing fixture per id. A rule added to the engine without a doc
/// row and a fixture fails CI rather than drifting.
///
/// Only rule-id string literals may appear in this file: the sync check
/// scrapes every dotted string literal below as a catalogue entry.

#include <array>
#include <string_view>

namespace vpga::fabriclint {

inline constexpr std::array<std::string_view, 22> kLintCatalogue = {
    // Determinism (all walked trees).
    "det.unordered-iter",
    "det.raw-rng",
    "det.ptr-order",
    "det.wall-clock",
    "det.float-accum",
    "det.iter-invalidation",
    // Performance (semantic engine + dataflow, src/ only; the hot-loop rules
    // additionally gate on the BENCH_flow.json hotness score).
    "perf.map-in-hot-loop",
    "perf.growth-in-loop",
    "perf.copy-heavy-param",
    "perf.alloc-in-hot-loop",
    // Lifetime (semantic engine + dataflow, src/ only).
    "lifetime.dangling-local",
    // Library I/O discipline (src/ only).
    "io.stray-stream",
    // Lock discipline (semantic engine, src/ only).
    "conc.unguarded-access",
    "conc.lock-order",
    "conc.unjoined-thread",
    // Verification-result flow (semantic engine, src/ only).
    "flow.dropped-report",
    // Observability naming (src/ only).
    "obs.span-name",
    "obs.metric-name",
    "obs.event-name",
    // Tree-level sync and build-level checks.
    "verify.rule-sync",
    "hdr.self-contained",
    // Suppression hygiene.
    "meta.bad-suppression",
};

/// True iff `rule` names a catalogued rule id.
constexpr bool known_rule(std::string_view rule) {
  for (std::string_view r : kLintCatalogue)
    if (r == rule) return true;
  return false;
}

}  // namespace vpga::fabriclint
