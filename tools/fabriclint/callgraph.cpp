#include "callgraph.hpp"

#include <set>

namespace vpga::fabriclint {

CallGraph::CallGraph(const std::vector<TuSymbols>& tus) : tus_(&tus) {
  for (std::size_t t = 0; t < tus.size(); ++t)
    for (std::size_t f = 0; f < tus[t].functions.size(); ++f)
      if (tus[t].functions[f].is_definition) {
        by_name_[tus[t].functions[f].name].push_back(static_cast<int>(fns_.size()));
        fns_.push_back({static_cast<int>(t), static_cast<int>(f)});
      }
  callees_.resize(fns_.size());
  callers_.resize(fns_.size());
  resolve_calls();
}

const FunctionInfo& CallGraph::fn(int i) const {
  const FnRef& r = fns_[static_cast<std::size_t>(i)];
  return (*tus_)[static_cast<std::size_t>(r.tu)]
      .functions[static_cast<std::size_t>(r.fn)];
}

const TuSymbols& CallGraph::tu_of(int i) const {
  return (*tus_)[static_cast<std::size_t>(fns_[static_cast<std::size_t>(i)].tu)];
}

const std::vector<CallGraph::Edge>& CallGraph::callees(int i) const {
  return callees_[static_cast<std::size_t>(i)];
}

const std::vector<CallGraph::Edge>& CallGraph::callers(int i) const {
  return callers_[static_cast<std::size_t>(i)];
}

void CallGraph::resolve_calls() {
  for (int from = 0; from < function_count(); ++from) {
    const FunctionInfo& f = fn(from);
    for (const CallSite& c : f.calls) {
      const auto it = by_name_.find(c.callee);
      if (it == by_name_.end()) continue;
      std::vector<int> candidates = it->second;
      // An explicit qualifier narrows to that class when any candidate has
      // it; a member of the caller's own class is preferred for unqualified
      // calls.
      const std::string& want =
          !c.qualifier.empty() ? c.qualifier : (c.member_call ? "" : f.class_name);
      if (!want.empty()) {
        std::vector<int> narrowed;
        for (int cand : candidates)
          if (fn(cand).class_name == want) narrowed.push_back(cand);
        if (!narrowed.empty()) candidates = std::move(narrowed);
      }
      for (int to : candidates) {
        callees_[static_cast<std::size_t>(from)].push_back({from, to, c.tok, c.line});
        callers_[static_cast<std::size_t>(to)].push_back({from, to, c.tok, c.line});
      }
    }
  }
}

int CallGraph::find(std::string_view qualified) const {
  std::string cls;
  std::string name(qualified);
  if (const std::size_t sep = name.rfind("::"); sep != std::string::npos) {
    cls = name.substr(0, sep);
    name = name.substr(sep + 2);
  }
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return -1;
  for (int i : it->second)
    if (cls.empty() || fn(i).class_name == cls) return i;
  return -1;
}

bool CallGraph::reachable(int from, int to) const {
  std::set<int> seen;
  std::vector<int> work;
  for (const Edge& e : callees(from)) work.push_back(e.to);
  while (!work.empty()) {
    const int cur = work.back();
    work.pop_back();
    if (cur == to) return true;
    if (!seen.insert(cur).second) continue;
    for (const Edge& e : callees(cur)) work.push_back(e.to);
  }
  return false;
}

CallGraph build_call_graph(const std::vector<TuSymbols>& tus) { return CallGraph(tus); }

}  // namespace vpga::fabriclint
