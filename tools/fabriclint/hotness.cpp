#include "hotness.hpp"

#include <deque>

#include "obs/json.hpp"

namespace vpga::fabriclint {

bool load_flow_profile(std::string_view json_text, StageProfile& out,
                       std::string* error) {
  namespace json = vpga::obs::json;
  json::Value doc;
  if (!json::parse(json_text, doc, error)) return false;
  // Accepts every vpga.flow_bench schema version: v1 and v2 share the
  // "runs[].stages" timing layout this profile consumes (v2 only adds the
  // per-run "memory" object, which hotness scoring ignores).
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      (schema->string != "vpga.flow_bench.v1" &&
       schema->string != "vpga.flow_bench.v2")) {
    if (error != nullptr) *error = "not a vpga.flow_bench v1/v2 document";
    return false;
  }
  const json::Value* runs = doc.find("runs");
  if (runs == nullptr || !runs->is_array()) {
    if (error != nullptr) *error = "missing runs[]";
    return false;
  }
  for (const json::Value& run : runs->array) {
    const json::Value* stages = run.find("stages");
    if (stages == nullptr || !stages->is_object()) continue;
    for (const auto& [name, us] : stages->object) {
      if (!us.is_number()) continue;
      out.stage_us[name] += us.number;
      out.total_us += us.number;
    }
  }
  out.loaded = true;
  return true;
}

const std::map<std::string, std::string>& stage_entry_functions() {
  // One subsystem entry point per stage span in src/flow/flow.cpp.
  static const std::map<std::string, std::string> entries = {
      {"stage.verify", "check"},        {"stage.map", "tech_map"},
      {"stage.compact", "compact_from"}, {"stage.buffer", "insert_buffers"},
      {"stage.place", "place"},         {"stage.pack", "pack"},
      {"stage.route", "route"},         {"stage.sta", "analyze"},
  };
  return entries;
}

std::vector<double> hotness_scores(const CallGraph& graph, const StageProfile& profile) {
  std::vector<double> weight(static_cast<std::size_t>(graph.function_count()), 0.0);
  for (const auto& [stage, entry] : stage_entry_functions()) {
    const auto it = profile.stage_us.find(stage);
    if (it == profile.stage_us.end() || it->second <= 0.0) continue;
    // Seed every definition matching the entry name (the over-approximating
    // graph may hold several: place::place, overloads, ...), then flood the
    // stage's wall-clock forward over callee edges.
    std::vector<bool> seen(weight.size(), false);
    std::deque<int> work;
    for (int i = 0; i < graph.function_count(); ++i)
      if (graph.fn(i).name == entry) {
        seen[static_cast<std::size_t>(i)] = true;
        work.push_back(i);
      }
    while (!work.empty()) {
      const int cur = work.front();
      work.pop_front();
      weight[static_cast<std::size_t>(cur)] += it->second;
      for (const CallGraph::Edge& e : graph.callees(cur)) {
        if (seen[static_cast<std::size_t>(e.to)]) continue;
        seen[static_cast<std::size_t>(e.to)] = true;
        work.push_back(e.to);
      }
    }
  }
  double max = 0.0;
  for (const double w : weight) max = max < w ? w : max;
  if (max > 0.0)
    for (double& w : weight) w /= max;
  return weight;
}

}  // namespace vpga::fabriclint
