#pragma once
/// \file flowscope.hpp
/// Noise-aware perf-trajectory analysis over BENCH_flow.json snapshots.
///
/// CI used to byte-diff the committed BENCH_flow.json against a freshly
/// generated one, which cannot distinguish a real regression from timer
/// noise (and went red on every wall-clock wiggle). flowscope replaces that
/// with a model: given N >= 1 baseline snapshots and one candidate, it
///
///   - normalizes per-stage times by the median stage ratio, so a uniformly
///     faster/slower machine shifts no verdicts (only *relative* stage
///     movement counts);
///   - estimates per-stage noise (cv) from baseline repeats when there are
///     two or more, and falls back to a configurable default otherwise;
///   - classifies each stage / counter / memory column / report quantity as
///     regress, improve or neutral against a threshold of z*cv + floor;
///   - emits a deterministic verdict document (`vpga.flowscope.v1`) and a
///     markdown trajectory table, and exits nonzero on any regression.
///
/// Counters are deterministic work measures, so they compare exactly by
/// default; memory columns get a wide tolerance (allocation sizes are
/// libc-dependent); report quantities are QoR and compare near-exactly.
/// Loads both vpga.flow_bench.v1 and .v2 snapshots (v1 has no memory data).

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace vpga::flowscope {

/// One flow run (one cell of the paper's tables) from one snapshot.
struct Run {
  double total_us = 0;
  std::map<std::string, double> stage_us;   ///< "stage.pack" -> microseconds
  std::map<std::string, double> counters;   ///< deterministic work counters
  std::map<std::string, double> memory;     ///< "stage.pack/alloc_bytes" -> value
  std::map<std::string, double> report;     ///< QoR quantities
};

/// One parsed BENCH_flow.json document.
struct Snapshot {
  std::string path;
  int schema_version = 0;  ///< 1 or 2
  double scale = 1.0;
  std::map<std::string, Run> runs;  ///< key "design/arch/flow"
};

/// Parses one snapshot (schema v1 or v2). Returns false with a message in
/// *error on malformed input or an unknown schema.
bool load_snapshot(std::string_view text, std::string_view path, Snapshot& out,
                   std::string* error);

struct Options {
  double z = 3.0;            ///< threshold = z * cv + min_rel for stage times
  double default_cv = 0.05;  ///< per-stage cv assumed with < 2 baseline repeats
  double min_cv = 0.01;      ///< floor under measured cv (2 repeats undersample)
  double min_rel = 0.02;     ///< absolute relative-change floor for stage times
  double min_share = 0.03;   ///< stages under this share of total time are advisory
  double counter_tol = 0.0;  ///< counters are deterministic: exact by default
  double mem_tol = 0.10;     ///< memory columns: allocator/libc wiggle room
  double report_tol = 1e-9;  ///< QoR: bit-stable modulo serialization
};

enum class Verdict { kNeutral, kImprove, kRegress, kNew, kGone };
std::string_view to_string(Verdict v);

/// One compared quantity. `gated` distinguishes verdicts that count toward
/// the exit code from advisory ones (e.g. stages under min_share).
struct Delta {
  std::string kind;  ///< "time" | "counter" | "memory" | "report"
  std::string id;    ///< "stage.pack" or "alu8/granular_plb/b/route.ripups"
  double baseline = 0;
  double candidate = 0;
  double delta_rel = 0;   ///< normalized relative change (time) or plain (rest)
  double cv = 0;          ///< measured/estimated noise (time rows only)
  double threshold = 0;   ///< |delta_rel| beyond this flips the verdict
  int repeats = 1;        ///< baseline snapshots contributing
  bool gated = true;
  Verdict verdict = Verdict::kNeutral;
};

struct Analysis {
  std::vector<std::string> baseline_paths;
  std::string candidate_path;
  Options options;
  std::vector<Delta> deltas;  ///< sorted by (kind, id): deterministic
  int regressions = 0;        ///< gated regress verdicts
  int improvements = 0;       ///< gated improve verdicts
  /// Per-snapshot aggregate stage shares (baselines in order, candidate
  /// last) for the markdown trajectory table.
  std::vector<std::map<std::string, double>> stage_share;
};

/// Compares `candidate` against `baselines` (>= 1). Every quantity present
/// on either side produces a delta row; kNew/kGone rows are never gated.
Analysis analyze(const std::vector<Snapshot>& baselines, const Snapshot& candidate,
                 const Options& options);

/// The verdict document, schema `vpga.flowscope.v1`. Deterministic: same
/// inputs, same bytes.
std::string verdict_json(const Analysis& analysis);

/// Human-readable markdown: stage trajectory table + changed counters,
/// memory movement and QoR drift.
std::string trajectory_markdown(const Analysis& analysis);

}  // namespace vpga::flowscope
