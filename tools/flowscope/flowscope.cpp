#include "flowscope.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>

#include "obs/json.hpp"

namespace vpga::flowscope {
namespace {

using obs::json::Value;

double num(const Value* v, double fallback = 0.0) {
  return v != nullptr && v->is_number() ? v->number : fallback;
}

/// Members of an object value as a sorted name->number map.
std::map<std::string, double> number_map(const Value* v) {
  std::map<std::string, double> out;
  if (v == nullptr || !v->is_object()) return out;
  for (const auto& [k, member] : v->object)
    if (member.is_number()) out[k] = member.number;
  return out;
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 1.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

struct MeanCv {
  double mean = 0;
  double cv = 0;
  int n = 0;
};

MeanCv mean_cv(const std::vector<double>& xs) {
  MeanCv out;
  out.n = static_cast<int>(xs.size());
  if (xs.empty()) return out;
  for (const double x : xs) out.mean += x;
  out.mean /= static_cast<double>(xs.size());
  if (xs.size() >= 2 && out.mean > 0) {
    double ss = 0;
    for (const double x : xs) ss += (x - out.mean) * (x - out.mean);
    out.cv = std::sqrt(ss / static_cast<double>(xs.size() - 1)) / out.mean;
  }
  return out;
}

/// Aggregates one snapshot's per-stage time across all its runs.
std::map<std::string, double> aggregate_stages(const Snapshot& s) {
  std::map<std::string, double> agg;
  for (const auto& [key, run] : s.runs)
    for (const auto& [stage, us] : run.stage_us) agg[stage] += us;
  return agg;
}

std::map<std::string, double> shares(const std::map<std::string, double>& agg) {
  double total = 0;
  for (const auto& [stage, us] : agg) total += us;
  std::map<std::string, double> out;
  if (total <= 0) return out;
  for (const auto& [stage, us] : agg) out[stage] = us / total;
  return out;
}

/// Aggregates one snapshot's memory columns ("span/field" keys) across runs.
std::map<std::string, double> aggregate_memory(const Snapshot& s) {
  std::map<std::string, double> agg;
  for (const auto& [key, run] : s.runs)
    for (const auto& [col, v] : run.memory) agg[col] += v;
  return agg;
}

void classify_relative(Delta& d, double tol, bool increase_is_regress = true) {
  if (d.delta_rel > tol)
    d.verdict = increase_is_regress ? Verdict::kRegress : Verdict::kImprove;
  else if (d.delta_rel < -tol)
    d.verdict = increase_is_regress ? Verdict::kImprove : Verdict::kRegress;
  else
    d.verdict = Verdict::kNeutral;
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  out += '"';
}

std::string fmt(double v) { return obs::json::format_double(v); }

std::string percent(double rel) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", rel * 100.0);
  return buf;
}

}  // namespace

std::string_view to_string(Verdict v) {
  switch (v) {
    case Verdict::kNeutral: return "neutral";
    case Verdict::kImprove: return "improve";
    case Verdict::kRegress: return "regress";
    case Verdict::kNew: return "new";
    case Verdict::kGone: return "gone";
  }
  return "?";
}

bool load_snapshot(std::string_view text, std::string_view path, Snapshot& out,
                   std::string* error) {
  out = Snapshot{};
  out.path = path;
  Value doc;
  if (!obs::json::parse(text, doc, error)) return false;
  const Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    if (error != nullptr) *error = "missing \"schema\"";
    return false;
  }
  if (schema->string == "vpga.flow_bench.v1") {
    out.schema_version = 1;
  } else if (schema->string == "vpga.flow_bench.v2") {
    out.schema_version = 2;
  } else {
    if (error != nullptr) *error = "unsupported schema \"" + schema->string + "\"";
    return false;
  }
  out.scale = num(doc.find("scale"), 1.0);
  const Value* runs = doc.find("runs");
  if (runs == nullptr || !runs->is_array()) {
    if (error != nullptr) *error = "missing \"runs\" array";
    return false;
  }
  for (const Value& rv : runs->array) {
    const Value* design = rv.find("design");
    const Value* arch = rv.find("arch");
    const Value* flow = rv.find("flow");
    if (design == nullptr || arch == nullptr || flow == nullptr) {
      if (error != nullptr) *error = "run missing design/arch/flow";
      return false;
    }
    Run run;
    run.total_us = num(rv.find("total_us"));
    run.stage_us = number_map(rv.find("stages"));
    run.counters = number_map(rv.find("counters"));
    run.report = number_map(rv.find("report"));
    // v2 memory: {"stage.map": {"alloc_bytes": ...}, ...} flattened to
    // "stage.map/alloc_bytes" (v1 snapshots simply have none).
    if (const Value* mem = rv.find("memory"); mem != nullptr && mem->is_object()) {
      for (const auto& [span, fields] : mem->object)
        for (const auto& [field, v] : number_map(&fields))
          run.memory[span + "/" + field] = v;
    }
    out.runs[design->string + "/" + arch->string + "/" + flow->string] = run;
  }
  return true;
}

Analysis analyze(const std::vector<Snapshot>& baselines, const Snapshot& candidate,
                 const Options& options) {
  Analysis a;
  a.options = options;
  for (const Snapshot& b : baselines) a.baseline_paths.push_back(b.path);
  a.candidate_path = candidate.path;
  const int repeats = static_cast<int>(baselines.size());

  // ---- Stage times: median-ratio normalization + cv thresholds ----
  std::vector<std::map<std::string, double>> base_aggs;
  base_aggs.reserve(baselines.size());
  for (const Snapshot& b : baselines) base_aggs.push_back(aggregate_stages(b));
  const std::map<std::string, double> cand_agg = aggregate_stages(candidate);
  for (const auto& agg : base_aggs) a.stage_share.push_back(shares(agg));
  a.stage_share.push_back(shares(cand_agg));

  // Per-stage baseline mean/cv over repeats.
  std::map<std::string, MeanCv> base_stats;
  {
    std::map<std::string, std::vector<double>> samples;
    for (const auto& agg : base_aggs)
      for (const auto& [stage, us] : agg) samples[stage].push_back(us);
    for (const auto& [stage, xs] : samples) base_stats[stage] = mean_cv(xs);
  }

  // Machine-speed factor: median of candidate/baseline ratios across stages
  // present on both sides. A uniformly faster or slower runner moves every
  // ratio equally and cancels out here.
  std::vector<double> ratios;
  for (const auto& [stage, st] : base_stats) {
    const auto it = cand_agg.find(stage);
    if (it != cand_agg.end() && st.mean > 0) ratios.push_back(it->second / st.mean);
  }
  const double speed = ratios.empty() ? 1.0 : median(ratios);

  // Mean baseline share decides which stages are load-bearing enough to gate.
  std::map<std::string, double> mean_share;
  {
    double total = 0;
    for (const auto& [stage, st] : base_stats) total += st.mean;
    if (total > 0)
      for (const auto& [stage, st] : base_stats) mean_share[stage] = st.mean / total;
  }

  for (const auto& [stage, st] : base_stats) {
    Delta d;
    d.kind = "time";
    d.id = stage;
    d.baseline = st.mean;
    d.repeats = repeats;
    const auto it = cand_agg.find(stage);
    if (it == cand_agg.end()) {
      d.verdict = Verdict::kGone;
      d.gated = false;
      a.deltas.push_back(d);
      continue;
    }
    d.candidate = it->second;
    d.cv = repeats >= 2 ? std::max(st.cv, options.min_cv) : options.default_cv;
    d.threshold = options.z * d.cv + options.min_rel;
    d.delta_rel = speed > 0 && st.mean > 0
                      ? (it->second / st.mean) / speed - 1.0
                      : 0.0;
    d.gated = mean_share[stage] >= options.min_share;
    classify_relative(d, d.threshold);
    a.deltas.push_back(d);
  }
  for (const auto& [stage, us] : cand_agg) {
    if (base_stats.find(stage) != base_stats.end()) continue;
    Delta d;
    d.kind = "time";
    d.id = stage;
    d.candidate = us;
    d.repeats = repeats;
    d.verdict = Verdict::kNew;
    d.gated = false;
    a.deltas.push_back(d);
  }

  // ---- Counters: deterministic, compared exactly against the most recent
  // baseline, per run key ----
  const Snapshot* reference = baselines.empty() ? nullptr : &baselines.back();
  if (reference != nullptr) {
    for (const auto& [key, brun] : reference->runs) {
      const auto crun = candidate.runs.find(key);
      for (const auto& [name, bval] : brun.counters) {
        Delta d;
        d.kind = "counter";
        d.id = key + "/" + name;
        d.baseline = bval;
        d.repeats = repeats;
        if (crun == candidate.runs.end() ||
            crun->second.counters.find(name) == crun->second.counters.end()) {
          d.verdict = Verdict::kGone;
          d.gated = false;
          a.deltas.push_back(d);
          continue;
        }
        d.candidate = crun->second.counters.at(name);
        d.threshold = options.counter_tol;
        d.delta_rel =
            (d.candidate - d.baseline) / std::max(std::fabs(d.baseline), 1.0);
        classify_relative(d, d.threshold);
        a.deltas.push_back(d);
      }
      if (crun == candidate.runs.end()) continue;
      for (const auto& [name, cval] : crun->second.counters) {
        if (brun.counters.find(name) != brun.counters.end()) continue;
        Delta d;
        d.kind = "counter";
        d.id = key + "/" + name;
        d.candidate = cval;
        d.repeats = repeats;
        d.verdict = Verdict::kNew;
        d.gated = false;
        a.deltas.push_back(d);
      }
    }
  }

  // ---- Memory columns: mean across baselines that carry them (v1 carries
  // none), wide tolerance — allocation sizes are libc/compiler-dependent ----
  {
    std::map<std::string, std::vector<double>> samples;
    for (const Snapshot& b : baselines)
      for (const auto& [col, v] : aggregate_memory(b)) samples[col].push_back(v);
    const std::map<std::string, double> cand_mem = aggregate_memory(candidate);
    for (const auto& [col, xs] : samples) {
      Delta d;
      d.kind = "memory";
      d.id = col;
      const MeanCv st = mean_cv(xs);
      d.baseline = st.mean;
      d.repeats = st.n;
      const auto it = cand_mem.find(col);
      if (it == cand_mem.end()) {
        d.verdict = Verdict::kGone;
        d.gated = false;
        a.deltas.push_back(d);
        continue;
      }
      d.candidate = it->second;
      d.threshold = options.mem_tol;
      d.delta_rel =
          (d.candidate - d.baseline) / std::max(std::fabs(d.baseline), 1.0);
      classify_relative(d, d.threshold);
      a.deltas.push_back(d);
    }
    for (const auto& [col, v] : cand_mem) {
      if (samples.find(col) != samples.end()) continue;
      Delta d;
      d.kind = "memory";
      d.id = col;
      d.candidate = v;
      d.repeats = repeats;
      d.verdict = Verdict::kNew;
      d.gated = false;
      a.deltas.push_back(d);
    }
  }

  // ---- Report (QoR): near-exact, all quantities lower-is-better ----
  if (reference != nullptr) {
    for (const auto& [key, brun] : reference->runs) {
      const auto crun = candidate.runs.find(key);
      for (const auto& [name, bval] : brun.report) {
        Delta d;
        d.kind = "report";
        d.id = key + "/" + name;
        d.baseline = bval;
        d.repeats = repeats;
        if (crun == candidate.runs.end() ||
            crun->second.report.find(name) == crun->second.report.end()) {
          d.verdict = Verdict::kGone;
          d.gated = false;
          a.deltas.push_back(d);
          continue;
        }
        d.candidate = crun->second.report.at(name);
        d.threshold = options.report_tol;
        d.delta_rel =
            (d.candidate - d.baseline) / std::max(std::fabs(d.baseline), 1.0);
        classify_relative(d, d.threshold);
        a.deltas.push_back(d);
      }
    }
  }

  std::sort(a.deltas.begin(), a.deltas.end(), [](const Delta& x, const Delta& y) {
    return x.kind != y.kind ? x.kind < y.kind : x.id < y.id;
  });
  for (const Delta& d : a.deltas) {
    if (!d.gated) continue;
    if (d.verdict == Verdict::kRegress) ++a.regressions;
    if (d.verdict == Verdict::kImprove) ++a.improvements;
  }
  return a;
}

std::string verdict_json(const Analysis& a) {
  std::string out = "{\"schema\":\"vpga.flowscope.v1\",\"baselines\":[";
  for (std::size_t i = 0; i < a.baseline_paths.size(); ++i) {
    if (i > 0) out += ',';
    append_quoted(out, a.baseline_paths[i]);
  }
  out += "],\"candidate\":";
  append_quoted(out, a.candidate_path);
  out += ",\"options\":{\"z\":" + fmt(a.options.z) +
         ",\"default_cv\":" + fmt(a.options.default_cv) +
         ",\"min_cv\":" + fmt(a.options.min_cv) +
         ",\"min_rel\":" + fmt(a.options.min_rel) +
         ",\"min_share\":" + fmt(a.options.min_share) +
         ",\"counter_tol\":" + fmt(a.options.counter_tol) +
         ",\"mem_tol\":" + fmt(a.options.mem_tol) +
         ",\"report_tol\":" + fmt(a.options.report_tol) + "}";
  out += ",\"summary\":{\"regressions\":" + std::to_string(a.regressions) +
         ",\"improvements\":" + std::to_string(a.improvements) +
         ",\"deltas\":" + std::to_string(a.deltas.size()) + "}";
  out += ",\"deltas\":[";
  bool first = true;
  for (const Delta& d : a.deltas) {
    if (!first) out += ',';
    first = false;
    out += "{\"kind\":";
    append_quoted(out, d.kind);
    out += ",\"id\":";
    append_quoted(out, d.id);
    out += ",\"baseline\":" + fmt(d.baseline);
    out += ",\"candidate\":" + fmt(d.candidate);
    out += ",\"delta_rel\":" + fmt(d.delta_rel);
    if (d.kind == "time") out += ",\"cv\":" + fmt(d.cv);
    out += ",\"threshold\":" + fmt(d.threshold);
    out += ",\"repeats\":" + std::to_string(d.repeats);
    out += std::string(",\"gated\":") + (d.gated ? "true" : "false");
    out += ",\"verdict\":";
    append_quoted(out, to_string(d.verdict));
    out += '}';
  }
  out += "]}\n";
  return out;
}

std::string trajectory_markdown(const Analysis& a) {
  std::string out = "# Flow perf trajectory\n\n";
  out += "Candidate `" + a.candidate_path + "` vs " +
         std::to_string(a.baseline_paths.size()) + " baseline snapshot(s). ";
  out += "Verdict: **" + std::to_string(a.regressions) + " regression(s), " +
         std::to_string(a.improvements) + " improvement(s)**.\n\n";

  // Stage share trajectory: one column per snapshot (baselines then
  // candidate), one row per stage seen anywhere.
  out += "## Stage time shares\n\n| stage |";
  for (std::size_t i = 0; i + 1 < a.stage_share.size(); ++i)
    out += " base" + std::to_string(i + 1) + " |";
  out += " candidate | Δ(norm) | verdict |\n|---|";
  for (std::size_t i = 0; i < a.stage_share.size(); ++i) out += "---|";
  out += "---|---|\n";
  std::map<std::string, const Delta*> time_rows;
  for (const Delta& d : a.deltas)
    if (d.kind == "time") time_rows[d.id] = &d;
  for (const auto& [stage, d] : time_rows) {
    out += "| `" + stage + "` |";
    for (const auto& share : a.stage_share) {
      const auto it = share.find(stage);
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.1f%%",
                    (it != share.end() ? it->second : 0.0) * 100.0);
      out += " " + std::string(buf) + " |";
    }
    out += " " + percent(d->delta_rel) + " | " + std::string(to_string(d->verdict)) +
           (d->gated ? "" : " (advisory)") + " |\n";
  }

  // Non-neutral rows of the other kinds, most interesting first.
  for (const std::string_view kind : {"counter", "memory", "report"}) {
    std::vector<const Delta*> rows;
    for (const Delta& d : a.deltas)
      if (d.kind == kind && d.verdict != Verdict::kNeutral) rows.push_back(&d);
    out += "\n## ";
    out += kind;
    out += rows.empty() ? " — no movement\n" : " movement\n\n";
    if (rows.empty()) continue;
    out += "| id | baseline | candidate | Δ | verdict |\n|---|---|---|---|---|\n";
    for (const Delta* d : rows) {
      out += "| `" + d->id + "` | " + fmt(d->baseline) + " | " + fmt(d->candidate) +
             " | " + percent(d->delta_rel) + " | " +
             std::string(to_string(d->verdict)) + (d->gated ? "" : " (advisory)") +
             " |\n";
    }
  }
  return out;
}

}  // namespace vpga::flowscope
