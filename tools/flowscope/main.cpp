// flowscope — noise-aware perf-trajectory gate over BENCH_flow.json.
//
//   flowscope BASE1.json [BASE2.json ...] CANDIDATE.json
//             [--out verdict.json] [--md trajectory.md]
//             [--z Z] [--default-cv CV] [--min-cv CV] [--min-rel R]
//             [--min-share S] [--counter-tol T] [--mem-tol T] [--report-tol T]
//
// The last positional file is the candidate; everything before it is a
// baseline (>= 1; give several repeats of the same baseline to measure
// per-stage noise instead of assuming --default-cv). Exits 0 when no gated
// quantity regressed, 1 on regression, 2 on usage or load errors. The
// verdict JSON (schema vpga.flowscope.v1) is deterministic for fixed inputs
// and options, so it can be diffed and archived. See docs/OBSERVABILITY.md.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "flowscope.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool parse_number(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != nullptr && *end == '\0' && end != s;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASE1.json [BASE2.json ...] CANDIDATE.json\n"
               "          [--out verdict.json] [--md trajectory.md]\n"
               "          [--z Z] [--default-cv CV] [--min-cv CV] [--min-rel R]\n"
               "          [--min-share S] [--counter-tol T] [--mem-tol T]\n"
               "          [--report-tol T]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpga::flowscope;
  std::vector<std::string> inputs;
  std::string out_path;
  std::string md_path;
  Options options;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    double* num_opt = nullptr;
    if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--md" && i + 1 < argc) {
      md_path = argv[++i];
    } else if (a == "--z") {
      num_opt = &options.z;
    } else if (a == "--default-cv") {
      num_opt = &options.default_cv;
    } else if (a == "--min-cv") {
      num_opt = &options.min_cv;
    } else if (a == "--min-rel") {
      num_opt = &options.min_rel;
    } else if (a == "--min-share") {
      num_opt = &options.min_share;
    } else if (a == "--counter-tol") {
      num_opt = &options.counter_tol;
    } else if (a == "--mem-tol") {
      num_opt = &options.mem_tol;
    } else if (a == "--report-tol") {
      num_opt = &options.report_tol;
    } else if (!a.empty() && a[0] == '-') {
      return usage(argv[0]);
    } else {
      inputs.push_back(a);
    }
    if (num_opt != nullptr &&
        (i + 1 >= argc || !parse_number(argv[++i], *num_opt)))
      return usage(argv[0]);
  }
  if (inputs.size() < 2) return usage(argv[0]);

  std::vector<Snapshot> baselines(inputs.size() - 1);
  Snapshot candidate;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    std::string text;
    std::string err;
    Snapshot& dst = i + 1 < inputs.size() ? baselines[i] : candidate;
    if (!read_file(inputs[i], text)) {
      std::fprintf(stderr, "[flowscope] cannot read %s\n", inputs[i].c_str());
      return 2;
    }
    if (!load_snapshot(text, inputs[i], dst, &err)) {
      std::fprintf(stderr, "[flowscope] %s: %s\n", inputs[i].c_str(), err.c_str());
      return 2;
    }
  }

  const Analysis analysis = analyze(baselines, candidate, options);
  const std::string verdict = verdict_json(analysis);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "[flowscope] cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << verdict;
  }
  if (!md_path.empty()) {
    std::ofstream md(md_path);
    if (!md) {
      std::fprintf(stderr, "[flowscope] cannot write %s\n", md_path.c_str());
      return 2;
    }
    md << trajectory_markdown(analysis);
  }

  std::fprintf(stderr, "[flowscope] %zu delta(s): %d regression(s), %d improvement(s)\n",
               analysis.deltas.size(), analysis.regressions, analysis.improvements);
  for (const Delta& d : analysis.deltas) {
    if (d.verdict != Verdict::kRegress && d.verdict != Verdict::kImprove) continue;
    std::fprintf(stderr, "[flowscope]   %s %s %s: %+.1f%% (threshold %.1f%%)%s\n",
                 std::string(to_string(d.verdict)).c_str(), d.kind.c_str(),
                 d.id.c_str(), d.delta_rel * 100.0, d.threshold * 100.0,
                 d.gated ? "" : " [advisory]");
  }
  return analysis.regressions > 0 ? 1 : 0;
}
