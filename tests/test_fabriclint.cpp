// Fixture tests for every fabriclint rule (docs/LINT.md): one failing and
// one passing snippet per rule id, suppression-comment behavior, JSON-output
// round-trip through the bundled obs/json.hpp parser, and the
// catalogue <-> docs/LINT.md sync check. A registry of fired rule ids is
// cross-checked against kLintCatalogue so a rule added to the engine without
// fixtures fails here (same enforcement pattern as test_verify.cpp).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "callgraph.hpp"
#include "catalogue.hpp"
#include "dataflow.hpp"
#include "fabriclint.hpp"
#include "hotness.hpp"
#include "obs/json.hpp"
#include "symbols.hpp"

namespace {

using vpga::fabriclint::Finding;
using vpga::fabriclint::ObsRegistry;
using vpga::fabriclint::SourceFile;

std::set<std::string>& fired_registry() {
  static std::set<std::string> fired;
  return fired;
}

void record(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) fired_registry().insert(f.rule);
}

std::vector<Finding> run_lint(std::string_view rel_path, std::string_view source,
                              const ObsRegistry* registry = nullptr) {
  auto findings = vpga::fabriclint::lint_source(rel_path, source, registry);
  record(findings);
  return findings;
}

bool has_rule(const std::vector<Finding>& findings, std::string_view rule) {
  for (const Finding& f : findings)
    if (f.rule == rule) return true;
  return false;
}

// Drives the semantic engine (symbol tables + call graph + conc./flow.
// rules) on in-memory project fixtures.
std::vector<Finding> run_project(std::vector<SourceFile> files) {
  auto findings = vpga::fabriclint::lint_project(files);
  record(findings);
  return findings;
}

ObsRegistry small_registry() {
  ObsRegistry reg;
  reg.spans = {"stage.map", "pack.attempt"};
  reg.metrics = {"route.nets", "pack.groups"};
  reg.events = {"flow.begin", "flow.seed"};
  return reg;
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// det.unordered-iter
// ---------------------------------------------------------------------------

TEST(DetUnorderedIter, FlagsRangeForOverUnorderedMember) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <unordered_map>
    std::unordered_map<int, int> table_;
    int sum() {
      int s = 0;
      for (const auto& [k, v] : table_) s += v;
      return s;
    }
  )cpp");
  ASSERT_TRUE(has_rule(findings, "det.unordered-iter"));
  EXPECT_EQ(findings[0].line, 6);
}

TEST(DetUnorderedIter, PassesOnVectorAndOnLookups) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <unordered_map>
    #include <vector>
    std::unordered_map<int, int> table_;
    std::vector<int> order_;
    int sum() {
      int s = 0;
      for (int k : order_) s += table_.at(k);  // index-ordered iteration
      return s;
    }
  )cpp");
  EXPECT_FALSE(has_rule(findings, "det.unordered-iter"));
}

TEST(DetUnorderedIter, SortedDownstreamAnnotationSuppresses) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <unordered_map>
    std::unordered_map<int, int> table_;
    int count_all() {
      int n = 0;
      // fabriclint: sorted-downstream -- commutative count, order washes out
      for (const auto& [k, v] : table_) ++n;
      return n;
    }
  )cpp");
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// det.raw-rng
// ---------------------------------------------------------------------------

TEST(DetRawRng, FlagsMt19937AndRandCall) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <random>
    int noise() {
      std::mt19937 gen(42);
      return rand() % 7;
    }
  )cpp");
  EXPECT_TRUE(has_rule(findings, "det.raw-rng"));
  EXPECT_EQ(findings.size(), 2u);
}

TEST(DetRawRng, PassesOnProjectRngAndInsideRngHeader) {
  EXPECT_TRUE(run_lint("src/x/x.cpp", R"cpp(
    #include "common/rng.hpp"
    int noise(vpga::common::Rng& rng) { return static_cast<int>(rng.next_below(7)); }
  )cpp")
                  .empty());
  // The one blessed home of RNG machinery is exempt.
  EXPECT_TRUE(run_lint("src/common/rng.hpp", "// not std::mt19937\nint rand();\n").empty());
}

// ---------------------------------------------------------------------------
// det.ptr-order
// ---------------------------------------------------------------------------

TEST(DetPtrOrder, FlagsPointerComparatorLambda) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <algorithm>
    #include <vector>
    struct Node { int id; };
    void order(std::vector<Node*>& v) {
      std::sort(v.begin(), v.end(), [](const Node* a, const Node* b) { return a < b; });
    }
  )cpp");
  EXPECT_TRUE(has_rule(findings, "det.ptr-order"));
}

TEST(DetPtrOrder, FlagsStdLessOverPointerAndAddressCompare) {
  EXPECT_TRUE(has_rule(run_lint("src/x/x.cpp", R"cpp(
    #include <map>
    struct Node { int id; };
    std::map<Node*, int, std::less<Node*>> rank_;
  )cpp"),
                       "det.ptr-order"));
  EXPECT_TRUE(has_rule(run_lint("src/x/x.cpp", R"cpp(
    struct Node { int id; };
    bool before(const Node& x, const Node& y) { return &x < &y; }
  )cpp"),
                       "det.ptr-order"));
}

TEST(DetPtrOrder, PassesOnStableKeyComparator) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <algorithm>
    #include <vector>
    struct Node { int id; };
    void order(std::vector<Node*>& v) {
      std::sort(v.begin(), v.end(),
                [](const Node* a, const Node* b) { return a->id < b->id; });
    }
  )cpp");
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// det.wall-clock
// ---------------------------------------------------------------------------

TEST(DetWallClock, FlagsSystemClockAndBareTime) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <chrono>
    #include <ctime>
    long stamp() {
      auto t = std::chrono::system_clock::now();
      (void)t;
      return time(nullptr);
    }
  )cpp");
  EXPECT_TRUE(has_rule(findings, "det.wall-clock"));
  EXPECT_EQ(findings.size(), 2u);
}

TEST(DetWallClock, PassesOnSteadyClockAndInsideObs) {
  EXPECT_TRUE(run_lint("src/x/x.cpp", R"cpp(
    #include <chrono>
    auto tick() { return std::chrono::steady_clock::now(); }
  )cpp")
                  .empty());
  // src/obs/ owns the clocks.
  EXPECT_TRUE(run_lint("src/obs/x.cpp", "auto t = std::chrono::system_clock::now();\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// io.stray-stream
// ---------------------------------------------------------------------------

TEST(IoStrayStream, FlagsCoutAndPrintfInLibraryCode) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <cstdio>
    #include <iostream>
    void report(int n) {
      std::cout << n << "\n";
      printf("%d\n", n);
    }
  )cpp");
  EXPECT_TRUE(has_rule(findings, "io.stray-stream"));
  EXPECT_EQ(findings.size(), 2u);
}

TEST(IoStrayStream, PassesOutsideLibraryAndForSnprintf) {
  // bench/ and examples/ are presentation code: stdout is their job.
  EXPECT_TRUE(run_lint("bench/x.cpp", "#include <iostream>\nvoid p() { std::cout << 1; }\n")
                  .empty());
  // String formatting is not I/O.
  EXPECT_TRUE(run_lint("src/x/x.cpp", R"cpp(
    #include <cstdio>
    int fmt(char* buf, unsigned long n, double v) { return std::snprintf(buf, n, "%g", v); }
  )cpp")
                  .empty());
}

// ---------------------------------------------------------------------------
// obs.span-name / obs.metric-name
// ---------------------------------------------------------------------------

TEST(ObsSpanName, FlagsConventionViolationAndUnregisteredName) {
  const ObsRegistry reg = small_registry();
  EXPECT_TRUE(has_rule(run_lint("src/x/x.cpp", R"cpp(
    #include "obs/obs.hpp"
    void f() { vpga::obs::Span s("BadName"); }
  )cpp",
                                &reg),
                       "obs.span-name"));
  EXPECT_TRUE(has_rule(run_lint("src/x/x.cpp", R"cpp(
    #include "obs/obs.hpp"
    void f() { vpga::obs::Span s("stage.unheard_of"); }
  )cpp",
                                &reg),
                       "obs.span-name"));
}

TEST(ObsSpanName, PassesOnRegisteredAndDynamicNames) {
  const ObsRegistry reg = small_registry();
  EXPECT_TRUE(run_lint("src/x/x.cpp", R"cpp(
    #include "obs/obs.hpp"
    #include <string>
    void f(const std::string& stage) {
      vpga::obs::Span s("stage.map");
      vpga::obs::Span t("verify." + stage);  // dynamic family: linter skips
    }
  )cpp",
                       &reg)
                  .empty());
}

TEST(ObsMetricName, FlagsConventionViolationAndUnregisteredName) {
  const ObsRegistry reg = small_registry();
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include "obs/obs.hpp"
    void f() {
      vpga::obs::count("Route_Nets");
      vpga::obs::observe("route.unheard_of", 1.0);
    }
  )cpp",
                                 &reg);
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_TRUE(has_rule(findings, "obs.metric-name"));
}

TEST(ObsMetricName, PassesOnRegisteredNames) {
  const ObsRegistry reg = small_registry();
  EXPECT_TRUE(run_lint("src/x/x.cpp", R"cpp(
    #include "obs/obs.hpp"
    void f() {
      vpga::obs::count("route.nets", 3);
      vpga::obs::gauge("pack.groups", 2.0);
    }
  )cpp",
                       &reg)
                  .empty());
}

TEST(ObsEventName, FlagsConventionViolationAndUnregisteredName) {
  const ObsRegistry reg = small_registry();
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include "obs/events.hpp"
    void f() {
      vpga::obs::flight_event("FlowBegin");
      vpga::obs::flight_event("flow.unheard_of", 7);
    }
  )cpp",
                                 &reg);
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_TRUE(has_rule(findings, "obs.event-name"));
}

TEST(ObsEventName, PassesOnRegisteredAndDynamicNames) {
  const ObsRegistry reg = small_registry();
  EXPECT_TRUE(run_lint("src/x/x.cpp", R"cpp(
    #include "obs/events.hpp"
    #include <string>
    void f(const std::string& which) {
      vpga::obs::flight_event("flow.begin");
      vpga::obs::flight_event("flow.seed", 42);
      vpga::obs::flight_event("flow." + which);  // dynamic family: linter skips
    }
  )cpp",
                       &reg)
                  .empty());
}

TEST(ObsRegistryParse, ReadsRealNamesHeader) {
  const auto names_path =
      std::filesystem::path(VPGA_REPO_ROOT) / "src" / "obs" / "names.hpp";
  const ObsRegistry reg = vpga::fabriclint::parse_obs_registry(read_file(names_path));
  EXPECT_TRUE(reg.spans.count("stage.map") > 0);
  EXPECT_TRUE(reg.spans.count("route.negotiate") > 0);
  EXPECT_TRUE(reg.metrics.count("route.ripups") > 0);
  EXPECT_TRUE(reg.metrics.count("verify.equiv.vectors") > 0);
  EXPECT_TRUE(reg.events.count("flow.seed") > 0);
  EXPECT_TRUE(reg.events.count("verify.abort") > 0);
  // Span names never leak into the metric set or vice versa.
  EXPECT_EQ(reg.metrics.count("stage.map"), 0u);
  EXPECT_EQ(reg.events.count("stage.map"), 0u);
}

// ---------------------------------------------------------------------------
// verify.rule-sync
// ---------------------------------------------------------------------------

TEST(VerifyRuleSync, FlagsBothDriftDirections) {
  const std::string header = R"cpp(
    constexpr const char* kRules[] = {"a.one", "a.two"};
  )cpp";
  const std::string docs = "| rule | meaning |\n|---|---|\n| `a.one` | ok |\n| `a.three` | ghost |\n";
  const auto findings =
      vpga::fabriclint::check_rule_sync("h.hpp", header, "d.md", docs);
  record(findings);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(has_rule(findings, "verify.rule-sync"));
}

TEST(VerifyRuleSync, PassesOnMatchingPair) {
  const std::string header = R"cpp(constexpr const char* kRules[] = {"a.one"};)cpp";
  const std::string docs = "| `a.one` | documented |\n";
  EXPECT_TRUE(vpga::fabriclint::check_rule_sync("h.hpp", header, "d.md", docs).empty());
}

TEST(VerifyRuleSync, RealVerifyCatalogueMatchesDocs) {
  const std::filesystem::path root(VPGA_REPO_ROOT);
  const auto findings = vpga::fabriclint::check_rule_sync(
      "src/verify/rules.hpp", read_file(root / "src" / "verify" / "rules.hpp"),
      "docs/VERIFY.md", read_file(root / "docs" / "VERIFY.md"));
  for (const Finding& f : findings) ADD_FAILURE() << f.file << ": " << f.message;
}

// docs/LINT.md's catalogue table stays in sync with catalogue.hpp (the
// verify.rule-sync-style guard for fabriclint's own rules).
TEST(VerifyRuleSync, LintCatalogueMatchesLintDocs) {
  const std::filesystem::path root(VPGA_REPO_ROOT);
  const auto findings = vpga::fabriclint::check_rule_sync(
      "tools/fabriclint/catalogue.hpp",
      read_file(root / "tools" / "fabriclint" / "catalogue.hpp"), "docs/LINT.md",
      read_file(root / "docs" / "LINT.md"));
  for (const Finding& f : findings) ADD_FAILURE() << f.file << ": " << f.message;
}

// ---------------------------------------------------------------------------
// hdr.self-contained
// ---------------------------------------------------------------------------

class TempHeader {
 public:
  explicit TempHeader(std::string_view content) {
    dir_ = std::filesystem::temp_directory_path() / "fabriclint_test_hdr";
    std::filesystem::create_directories(dir_);
    path_ = dir_ / "fixture.hpp";
    std::ofstream(path_) << content;
  }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path dir_, path_;
};

TEST(HdrSelfContained, FlagsHeaderMissingItsIncludes) {
  const TempHeader hdr("#pragma once\ninline std::string broken() { return {}; }\n");
  const auto findings = vpga::fabriclint::check_header_self_contained(
      hdr.path().string(), "src/fixture.hpp", hdr.dir().string(), VPGA_CXX_COMPILER);
  record(findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "hdr.self-contained");
}

TEST(HdrSelfContained, PassesOnSelfContainedHeader) {
  const TempHeader hdr("#pragma once\n#include <string>\ninline std::string ok() { return {}; }\n");
  EXPECT_TRUE(vpga::fabriclint::check_header_self_contained(
                  hdr.path().string(), "src/fixture.hpp", hdr.dir().string(), VPGA_CXX_COMPILER)
                  .empty());
}

// ---------------------------------------------------------------------------
// Suppressions / meta.bad-suppression
// ---------------------------------------------------------------------------

TEST(Suppression, DisableWithReasonSuppressesOwnLineAndNextCodeLine) {
  // Same line.
  EXPECT_TRUE(run_lint("src/x/x.cpp",
                       "#include <cstdio>\nvoid f() { printf(\"x\"); }  "
                       "// fabriclint: disable(io.stray-stream) -- test sink\n")
                  .empty());
  // Own line, applying past a continuation comment to the next code line.
  EXPECT_TRUE(run_lint("src/x/x.cpp", R"cpp(
    #include <cstdio>
    void f() {
      // fabriclint: disable(io.stray-stream) -- the reason is long enough
      // to spill onto a second comment line before the code.
      printf("x");
    }
  )cpp")
                  .empty());
}

TEST(Suppression, DisableOnlySilencesTheNamedRule) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <cstdio>
    void f() {
      // fabriclint: disable(det.raw-rng) -- wrong rule for this line
      printf("x");
    }
  )cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io.stray-stream");
}

TEST(MetaBadSuppression, FlagsMissingReasonUnknownRuleAndGarbage) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    // fabriclint: disable(io.stray-stream)
    // fabriclint: disable(no.such-rule) -- reason present but rule unknown
    // fabriclint: frobnicate the linter
    int x = 0;
  )cpp");
  EXPECT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "meta.bad-suppression");
}

TEST(MetaBadSuppression, PassesOnWellFormedDirectives) {
  EXPECT_TRUE(run_lint("src/x/x.cpp", R"cpp(
    #include <cstdio>
    // fabriclint: disable(io.stray-stream) -- fixture demonstrating the form
    void f() { printf("x"); }
  )cpp")
                  .empty());
}

// ---------------------------------------------------------------------------
// Semantic engine: symbol table + call graph
// ---------------------------------------------------------------------------

TEST(CallGraph, DirectTransitiveAndRecursiveEdges) {
  std::vector<vpga::fabriclint::TuSymbols> tus;
  tus.push_back(vpga::fabriclint::analyze_tu("src/x/a.cpp", R"cpp(
    namespace x {
    int leaf() { return 1; }
    int mid() { return leaf(); }
    int top() { return mid(); }
    int self(int n) {
      if (n == 0) return 0;
      return self(n - 1);
    }
    int lonely() { return 2; }
    }  // namespace x
  )cpp"));
  const auto graph = vpga::fabriclint::build_call_graph(tus);
  const int leaf = graph.find("leaf");
  const int mid = graph.find("mid");
  const int top = graph.find("top");
  const int self = graph.find("self");
  const int lonely = graph.find("lonely");
  ASSERT_TRUE(leaf >= 0 && mid >= 0 && top >= 0 && self >= 0 && lonely >= 0);

  // Direct edge: top -> mid (and the reverse caller edge).
  ASSERT_EQ(graph.callees(top).size(), 1u);
  EXPECT_EQ(graph.callees(top)[0].to, mid);
  ASSERT_EQ(graph.callers(mid).size(), 1u);
  EXPECT_EQ(graph.callers(mid)[0].from, top);

  // Transitive reachability: top -> mid -> leaf, never the other way.
  EXPECT_TRUE(graph.reachable(top, leaf));
  EXPECT_FALSE(graph.reachable(leaf, top));
  EXPECT_FALSE(graph.reachable(top, lonely));

  // Recursive edge: self is on a cycle through itself.
  EXPECT_TRUE(graph.reachable(self, self));
  EXPECT_FALSE(graph.reachable(top, top));
}

TEST(CallGraph, QualifierResolvesAcrossTranslationUnits) {
  std::vector<vpga::fabriclint::TuSymbols> tus;
  tus.push_back(vpga::fabriclint::analyze_tu("src/x/a.cpp", R"cpp(
    class Packer {
     public:
      int run();
    };
    int Packer::run() { return 1; }
  )cpp"));
  tus.push_back(vpga::fabriclint::analyze_tu("src/x/b.cpp", R"cpp(
    class Router {
     public:
      int run() { return 2; }
    };
    int drive(Packer& p) { return p.run(); }
  )cpp"));
  const auto graph = vpga::fabriclint::build_call_graph(tus);
  const int drive = graph.find("drive");
  ASSERT_TRUE(drive >= 0);
  // p.run() is a member call with an unresolved receiver class in this
  // subset: both run() definitions stay candidates (over-approximation).
  EXPECT_TRUE(graph.reachable(drive, graph.find("Packer::run")));
  EXPECT_TRUE(graph.reachable(drive, graph.find("Router::run")));
  EXPECT_TRUE(graph.find("Packer::run") != graph.find("Router::run"));
}

// ---------------------------------------------------------------------------
// conc.unguarded-access
// ---------------------------------------------------------------------------

// The seeded-regression of the acceptance criteria: an unguarded write to a
// FABRIC_GUARDED_BY field of the *real* obs::MetricsRegistry header must be
// caught.
TEST(ConcUnguardedAccess, CatchesSeededUnguardedWriteInRealMetricsRegistry) {
  const std::filesystem::path root(VPGA_REPO_ROOT);
  const auto findings = run_project({
      {"src/obs/obs.hpp", read_file(root / "src" / "obs" / "obs.hpp")},
      {"src/obs/evil.cpp", R"cpp(
        #include "obs/obs.hpp"
        namespace vpga::obs {
        void MetricsRegistry::evil_reset() { counters_.clear(); }
        }  // namespace vpga::obs
      )cpp"},
  });
  ASSERT_TRUE(has_rule(findings, "conc.unguarded-access"));
  EXPECT_EQ(findings[0].file, "src/obs/evil.cpp");
  EXPECT_NE(findings[0].message.find("MetricsRegistry::counters_"), std::string::npos);
}

TEST(ConcUnguardedAccess, RealObsSubsystemIsClean) {
  const std::filesystem::path root(VPGA_REPO_ROOT);
  const auto findings = vpga::fabriclint::lint_project({
      {"src/obs/obs.hpp", read_file(root / "src" / "obs" / "obs.hpp")},
      {"src/obs/obs.cpp", read_file(root / "src" / "obs" / "obs.cpp")},
  });
  for (const Finding& f : findings)
    ADD_FAILURE() << f.file << ":" << f.line << ": " << f.rule << ": " << f.message;
}

TEST(ConcUnguardedAccess, TransitiveCallersHoldingTheLockAreClean) {
  const char* kSource = R"cpp(
    #include <mutex>
    #include "common/concurrency.hpp"
    namespace x {
    class Cache {
     public:
      void refresh();
      void refresh_unsafe();
     private:
      void rebuild() { entries_ = 1; }  // callers must hold mu_
      std::mutex mu_;
      int entries_ FABRIC_GUARDED_BY(mu_) = 0;
    };
    void Cache::refresh() {
      const std::lock_guard<std::mutex> lock(mu_);
      rebuild();
    }
    }  // namespace x
  )cpp";
  EXPECT_TRUE(run_project({{"src/x/cache.cpp", kSource}}).empty());

  // The same helper with one caller that does NOT hold the lock: flagged.
  const auto findings = run_project({{"src/x/cache.cpp", kSource},
                                     {"src/x/bad.cpp", R"cpp(
    namespace x {
    void Cache::refresh_unsafe() { rebuild(); }
    }  // namespace x
  )cpp"}});
  ASSERT_TRUE(has_rule(findings, "conc.unguarded-access"));
  EXPECT_NE(findings[0].message.find("Cache::entries_"), std::string::npos);
}

TEST(ConcUnguardedAccess, TypedLocalAccessRequiresTheLock) {
  // Free functions reach guarded state through a typed local: the unlocked
  // variant is flagged, the locked one is not.
  const auto findings = run_project({{"src/x/tally.cpp", R"cpp(
    #include <mutex>
    #include "common/concurrency.hpp"
    namespace x {
    struct Tally {
      std::mutex mu;
      long long runs FABRIC_GUARDED_BY(mu) = 0;
    };
    Tally& storage() {
      static Tally t;
      return t;
    }
    void bump_unlocked() {
      Tally& t = storage();
      ++t.runs;
    }
    void bump_locked() {
      Tally& t = storage();
      const std::lock_guard<std::mutex> lock(t.mu);
      ++t.runs;
    }
    }  // namespace x
  )cpp"}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "conc.unguarded-access");
  EXPECT_NE(findings[0].message.find("bump_unlocked"), std::string::npos);
}

TEST(ConcUnguardedAccess, SuppressionDirectiveSilences) {
  EXPECT_TRUE(run_project({{"src/x/init.cpp", R"cpp(
    #include <mutex>
    #include "common/concurrency.hpp"
    namespace x {
    class Cache {
     public:
      void init() {
        // fabriclint: disable(conc.unguarded-access) -- single-threaded init
        entries_ = 0;
      }
     private:
      std::mutex mu_;
      int entries_ FABRIC_GUARDED_BY(mu_) = 0;
    };
    }  // namespace x
  )cpp"}})
                  .empty());
}

// ---------------------------------------------------------------------------
// conc.lock-order
// ---------------------------------------------------------------------------

TEST(ConcLockOrder, FlagsInconsistentTwoMutexOrder) {
  const auto findings = run_project({{"src/x/deadlock.cpp", R"cpp(
    #include <mutex>
    namespace x {
    std::mutex job_mu;
    std::mutex log_mu;
    void submit() {
      const std::lock_guard<std::mutex> a(job_mu);
      const std::lock_guard<std::mutex> b(log_mu);
    }
    void flush() {
      const std::lock_guard<std::mutex> b(log_mu);
      const std::lock_guard<std::mutex> a(job_mu);
    }
    }  // namespace x
  )cpp"}});
  ASSERT_TRUE(has_rule(findings, "conc.lock-order"));
  EXPECT_NE(findings[0].message.find("job_mu"), std::string::npos);
  EXPECT_NE(findings[0].message.find("log_mu"), std::string::npos);
}

TEST(ConcLockOrder, FlagsOrderInversionThroughCallee) {
  const auto findings = run_project({{"src/x/deadlock2.cpp", R"cpp(
    #include <mutex>
    namespace x {
    std::mutex job_mu;
    std::mutex log_mu;
    void take_job() { const std::lock_guard<std::mutex> a(job_mu); }
    void forward() {
      const std::lock_guard<std::mutex> b(log_mu);
      take_job();
    }
    void direct() {
      const std::lock_guard<std::mutex> a(job_mu);
      const std::lock_guard<std::mutex> b(log_mu);
    }
    }  // namespace x
  )cpp"}});
  EXPECT_TRUE(has_rule(findings, "conc.lock-order"));
}

TEST(ConcLockOrder, ConsistentOrderIsClean) {
  EXPECT_TRUE(run_project({{"src/x/ordered.cpp", R"cpp(
    #include <mutex>
    namespace x {
    std::mutex job_mu;
    std::mutex log_mu;
    void submit() {
      const std::lock_guard<std::mutex> a(job_mu);
      const std::lock_guard<std::mutex> b(log_mu);
    }
    void drain() {
      const std::lock_guard<std::mutex> a(job_mu);
      const std::lock_guard<std::mutex> b(log_mu);
    }
    }  // namespace x
  )cpp"}})
                  .empty());
}

// ---------------------------------------------------------------------------
// conc.unjoined-thread
// ---------------------------------------------------------------------------

TEST(ConcUnjoinedThread, FlagsThreadWithoutJoinOrDetach) {
  const auto findings = run_project({{"src/x/spawn.cpp", R"cpp(
    #include <thread>
    namespace x {
    void fire_and_forget() {
      std::thread worker([] { });
    }
    }  // namespace x
  )cpp"}});
  ASSERT_TRUE(has_rule(findings, "conc.unjoined-thread"));
  EXPECT_NE(findings[0].message.find("worker"), std::string::npos);
}

TEST(ConcUnjoinedThread, JoinedDetachedAndMovedThreadsAreClean) {
  EXPECT_TRUE(run_project({{"src/x/spawn.cpp", R"cpp(
    #include <thread>
    #include <utility>
    #include <vector>
    namespace x {
    void joined() {
      std::thread worker([] { });
      worker.join();
    }
    void detached() {
      std::thread background([] { });
      background.detach();
    }
    void moved(std::vector<std::thread>& pool) {
      std::thread handoff([] { });
      pool.push_back(std::move(handoff));
    }
    }  // namespace x
  )cpp"}})
                  .empty());
}

// ---------------------------------------------------------------------------
// flow.dropped-report
// ---------------------------------------------------------------------------

TEST(FlowDroppedReport, FlagsDiscardedVerifyReport) {
  const auto findings = run_project({{"src/x/drop.cpp", R"cpp(
    namespace x {
    struct VerifyReport {
      int errors = 0;
    };
    VerifyReport check_stage();
    void run() {
      check_stage();
    }
    }  // namespace x
  )cpp"}});
  ASSERT_TRUE(has_rule(findings, "flow.dropped-report"));
  EXPECT_NE(findings[0].message.find("check_stage"), std::string::npos);
}

TEST(FlowDroppedReport, ConsumedOrEnforcedReportsAreClean) {
  EXPECT_TRUE(run_project({{"src/x/consume.cpp", R"cpp(
    namespace x {
    struct VerifyReport {
      int errors = 0;
    };
    VerifyReport check_stage();
    void enforce(const VerifyReport& report);
    int run() {
      const VerifyReport rep = check_stage();
      enforce(check_stage());
      return rep.errors;
    }
    }  // namespace x
  )cpp"}})
                  .empty());
}

// ---------------------------------------------------------------------------
// det.float-accum
// ---------------------------------------------------------------------------

TEST(DetFloatAccum, FlagsSharedFloatAccumulationInThreadLambda) {
  const auto findings = run_project({{"src/x/reduce.cpp", R"cpp(
    #include <thread>
    namespace x {
    double race_sum() {
      double total = 0.0;
      std::thread worker([&] { total += 1.5; });
      worker.join();
      return total;
    }
    }  // namespace x
  )cpp"}});
  ASSERT_TRUE(has_rule(findings, "det.float-accum"));
  EXPECT_NE(findings[0].message.find("total"), std::string::npos);
}

TEST(DetFloatAccum, PerThreadSlotsAndSerialAccumulationAreClean) {
  EXPECT_TRUE(run_project({{"src/x/reduce.cpp", R"cpp(
    #include <thread>
    namespace x {
    void sink(double value);
    double fixed_order_sum() {
      double total = 0.0;
      std::thread worker([&] {
        double local = 0.0;
        local += 1.5;
        sink(local);
      });
      worker.join();
      total += 2.5;  // serial accumulation outside the region is fine
      return total;
    }
    }  // namespace x
  )cpp"}})
                  .empty());
}

// ---------------------------------------------------------------------------
// io.stray-stream — transitive reach through the call graph
// ---------------------------------------------------------------------------

TEST(IoStrayStreamTransitive, FlagsLibraryCodeReachingStdioThroughCallee) {
  const auto findings = run_project({{"src/x/report.cpp", R"cpp(
    #include <cstdio>
    namespace x {
    void emit(int n) { printf("%d", n); }
    void drive() { emit(3); }
    }  // namespace x
  )cpp"}});
  ASSERT_TRUE(has_rule(findings, "io.stray-stream"));
  bool found_transitive = false;
  for (const Finding& f : findings)
    if (f.message.find("transitively") != std::string::npos &&
        f.message.find("'drive'") != std::string::npos)
      found_transitive = true;
  EXPECT_TRUE(found_transitive);
}

TEST(IoStrayStreamTransitive, SuppressedSinksDoNotPropagate) {
  // A documented sink (suppressed direct use) is a sanctioned boundary:
  // callers reaching it are not tainted.
  EXPECT_TRUE(run_project({{"src/x/report.cpp", R"cpp(
    #include <cstdio>
    namespace x {
    void emit(int n) {
      // fabriclint: disable(io.stray-stream) -- documented abort-path sink
      printf("%d", n);
    }
    void drive() { emit(3); }
    }  // namespace x
  )cpp"}})
                  .empty());
}

// ---------------------------------------------------------------------------
// Dataflow layer (fabriclint v3): loop recovery, reaching defs, reserve
// domination
// ---------------------------------------------------------------------------

const vpga::fabriclint::FunctionInfo* find_fn(const vpga::fabriclint::TuSymbols& tu,
                                              std::string_view name) {
  for (const auto& fn : tu.functions)
    if (fn.name == name && fn.is_definition) return &fn;
  return nullptr;
}

TEST(Dataflow, RecoversLoopStructureWithNestingAndRangeExpr) {
  const auto tu = vpga::fabriclint::analyze_tu("src/x/x.cpp", R"cpp(
    #include <vector>
    int f(int n, const std::vector<int>& vals) {
      int s = 0;
      for (int i = 0; i < n; ++i) {
        while (s < n) { ++s; }
      }
      do { --n; } while (n > 0);
      for (int v : vals) s += v;
      return s;
    }
  )cpp");
  const auto* fn = find_fn(tu, "f");
  ASSERT_NE(fn, nullptr);
  const auto df = vpga::fabriclint::analyze_dataflow(tu, *fn);
  ASSERT_EQ(df.loops.size(), 4u);
  EXPECT_EQ(df.loops[0].depth, 0);   // for
  EXPECT_EQ(df.loops[1].depth, 1);   // nested while
  EXPECT_EQ(df.loops[2].depth, 0);   // do-while
  EXPECT_FALSE(df.loops[0].range_for);
  EXPECT_TRUE(df.loops[3].range_for);
  EXPECT_EQ(df.loops[3].range_expr, "vals");
  // innermost_loop attributes a token inside the while to the while.
  const auto* inner = df.innermost_loop(df.loops[1].body_begin + 1);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->header_tok, df.loops[1].header_tok);
}

TEST(Dataflow, ReachingDefsKillAndConditionalAccumulate) {
  const auto tu = vpga::fabriclint::analyze_tu("src/x/x.cpp", R"cpp(
    int f(int c) {
      int x = 1;
      if (c) { x = 2; }
      int y = x;
      x = 3;
      int z = x;
      return y + z;
    }
  )cpp");
  const auto* fn = find_fn(tu, "f");
  ASSERT_NE(fn, nullptr);
  const auto df = vpga::fabriclint::analyze_dataflow(tu, *fn);
  std::vector<const vpga::fabriclint::Use*> x_uses;
  for (const auto& u : df.uses)
    if (u.name == "x") x_uses.push_back(&u);
  ASSERT_EQ(x_uses.size(), 2u);
  // `int y = x`: the unconditional `x = 1` plus the conditional `x = 2`.
  auto reach1 = vpga::fabriclint::reaching_defs(df, *x_uses[0]);
  ASSERT_EQ(reach1.size(), 2u);
  EXPECT_EQ(reach1[0].line, 3);
  EXPECT_EQ(reach1[1].line, 4);
  EXPECT_EQ(reach1[1].block_depth, 1);
  // `int z = x`: the unconditional `x = 3` kills everything earlier.
  auto reach2 = vpga::fabriclint::reaching_defs(df, *x_uses[1]);
  ASSERT_EQ(reach2.size(), 1u);
  EXPECT_EQ(reach2[0].line, 6);
}

TEST(Dataflow, ReserveDominatesPushBackLoop) {
  const auto tu = vpga::fabriclint::analyze_tu("src/x/x.cpp", R"cpp(
    #include <vector>
    void f(int n) {
      std::vector<int> a;
      a.reserve(n);
      for (int i = 0; i < n; ++i) a.push_back(i);
      std::vector<int> b;
      for (int i = 0; i < n; ++i) b.push_back(i);
    }
  )cpp");
  const auto* fn = find_fn(tu, "f");
  ASSERT_NE(fn, nullptr);
  const auto df = vpga::fabriclint::analyze_dataflow(tu, *fn);
  ASSERT_EQ(df.loops.size(), 2u);
  EXPECT_TRUE(vpga::fabriclint::reserve_dominates(tu, *fn, "a", df.loops[0]));
  EXPECT_FALSE(vpga::fabriclint::reserve_dominates(tu, *fn, "b", df.loops[1]));
}

TEST(Dataflow, MarksRunOnceStaticInitializerLambda) {
  const auto tu = vpga::fabriclint::analyze_tu("src/x/x.cpp", R"cpp(
    #include <vector>
    int f() {
      static const std::vector<int> table = []{
        std::vector<int> out;
        for (int i = 0; i < 8; ++i) out.push_back(i);
        return out;
      }();
      return table[0];
    }
  )cpp");
  const auto* fn = find_fn(tu, "f");
  ASSERT_NE(fn, nullptr);
  const auto df = vpga::fabriclint::analyze_dataflow(tu, *fn);
  ASSERT_EQ(df.loops.size(), 1u);
  EXPECT_TRUE(df.in_run_once_lambda(df.loops[0].body_begin + 1));
}

// ---------------------------------------------------------------------------
// Hotness: profile parsing and call-graph propagation
// ---------------------------------------------------------------------------

TEST(Hotness, LoadsCheckedInMiniProfile) {
  const std::filesystem::path root(VPGA_REPO_ROOT);
  vpga::fabriclint::StageProfile profile;
  std::string error;
  ASSERT_TRUE(vpga::fabriclint::load_flow_profile(
      read_file(root / "tests" / "data" / "mini_flow_bench.json"), profile, &error))
      << error;
  EXPECT_TRUE(profile.loaded);
  EXPECT_DOUBLE_EQ(profile.stage_us.at("stage.pack"), 1000.0);
  EXPECT_DOUBLE_EQ(profile.stage_us.at("stage.map"), 300.0);
  EXPECT_DOUBLE_EQ(profile.stage_us.at("stage.sta"), 100.0);
}

TEST(Hotness, RejectsWrongSchema) {
  vpga::fabriclint::StageProfile profile;
  EXPECT_FALSE(vpga::fabriclint::load_flow_profile(
      R"({"schema": "vpga.fabriclint.v3", "runs": []})", profile));
  EXPECT_FALSE(profile.loaded);
}

TEST(Hotness, PropagatesStageWeightOverCallGraph) {
  const std::filesystem::path root(VPGA_REPO_ROOT);
  vpga::fabriclint::StageProfile profile;
  ASSERT_TRUE(vpga::fabriclint::load_flow_profile(
      read_file(root / "tests" / "data" / "mini_flow_bench.json"), profile));
  std::vector<vpga::fabriclint::TuSymbols> tus;
  tus.push_back(vpga::fabriclint::analyze_tu("src/pack/packer.cpp", R"cpp(
    void shared_util();
    namespace vpga::pack {
    void helper() { shared_util(); }
    void pack() { helper(); }
    }
  )cpp"));
  tus.push_back(vpga::fabriclint::analyze_tu("src/synth/mapper.cpp", R"cpp(
    void shared_util();
    namespace vpga::synth {
    void tech_map() { shared_util(); }
    }
  )cpp"));
  tus.push_back(vpga::fabriclint::analyze_tu("src/common/util.cpp", R"cpp(
    void shared_util() {}
    void cold_path() {}
  )cpp"));
  const auto graph = vpga::fabriclint::build_call_graph(tus);
  const auto scores = vpga::fabriclint::hotness_scores(graph, profile);
  ASSERT_EQ(scores.size(), static_cast<std::size_t>(graph.function_count()));
  std::map<std::string, double> by_name;
  for (int i = 0; i < graph.function_count(); ++i)
    by_name[graph.fn(i).name] = scores[static_cast<std::size_t>(i)];
  // shared_util is reached from both stage.pack (1000us) and stage.map
  // (300us), so it is the hottest function and normalizes to 1.
  EXPECT_DOUBLE_EQ(by_name.at("shared_util"), 1.0);
  // pack/helper carry the pack stage only; tech_map the map stage only.
  EXPECT_NEAR(by_name.at("pack"), 1000.0 / 1300.0, 1e-9);
  EXPECT_NEAR(by_name.at("helper"), 1000.0 / 1300.0, 1e-9);
  EXPECT_NEAR(by_name.at("tech_map"), 300.0 / 1300.0, 1e-9);
  EXPECT_DOUBLE_EQ(by_name.at("cold_path"), 0.0);
}

TEST(Hotness, StageEntryMapCoversTheFlowStages) {
  const auto& entries = vpga::fabriclint::stage_entry_functions();
  EXPECT_EQ(entries.at("stage.pack"), "pack");
  EXPECT_EQ(entries.at("stage.map"), "tech_map");
  EXPECT_EQ(entries.at("stage.compact"), "compact_from");
}

// ---------------------------------------------------------------------------
// Profile-gated perf rules: perf.map-in-hot-loop, perf.growth-in-loop,
// perf.alloc-in-hot-loop (fixture entry point `pack` + a pack-only profile
// make the fixture function maximally hot)
// ---------------------------------------------------------------------------

vpga::fabriclint::StageProfile pack_only_profile() {
  vpga::fabriclint::StageProfile p;
  p.stage_us["stage.pack"] = 1000.0;
  p.total_us = 1000.0;
  p.loaded = true;
  return p;
}

std::vector<Finding> run_project_profiled(std::vector<SourceFile> files,
                                          std::vector<Finding>* worklist = nullptr) {
  const auto profile = pack_only_profile();
  vpga::fabriclint::ProjectOptions opts;
  opts.profile = &profile;
  opts.perf_worklist = worklist;
  auto findings = vpga::fabriclint::lint_project(std::move(files), opts);
  record(findings);
  return findings;
}

TEST(PerfMapInHotLoop, FlagsMapLookupAndSubscriptInHotLoop) {
  const auto findings = run_project_profiled({{"src/pack/packer.cpp", R"cpp(
    #include <map>
    #include <vector>
    namespace vpga::pack {
    int pack(const std::vector<int>& ids) {
      std::map<int, int> index;
      int hits = 0;
      for (int id : ids) {
        if (index.find(id) != index.end()) ++hits;
        index[id] = hits;
      }
      return hits;
    }
    }
  )cpp"}});
  EXPECT_TRUE(has_rule(findings, "perf.map-in-hot-loop"));
}

TEST(PerfMapInHotLoop, FlatVectorLookupIsClean) {
  const auto findings = run_project_profiled({{"src/pack/packer.cpp", R"cpp(
    #include <vector>
    namespace vpga::pack {
    int pack(const std::vector<int>& ids) {
      std::vector<int> seen(256, 0);
      int hits = 0;
      for (int id : ids) hits += seen[id];
      return hits;
    }
    }
  )cpp"}});
  EXPECT_FALSE(has_rule(findings, "perf.map-in-hot-loop"));
}

TEST(PerfMapInHotLoop, ColdFunctionsOnlyLandOnTheWorklist) {
  // No profile at all: the gated rule must stay silent but still feed the
  // perf worklist (with hotness 0) so --perf-report sees the whole tree.
  std::vector<Finding> worklist;
  vpga::fabriclint::ProjectOptions opts;
  opts.perf_worklist = &worklist;
  const auto findings = vpga::fabriclint::lint_project(
      {{"src/pack/packer.cpp", R"cpp(
    #include <map>
    #include <vector>
    namespace vpga::pack {
    int pack(const std::vector<int>& ids) {
      std::map<int, int> index;
      int hits = 0;
      for (int id : ids) hits += index.count(id);
      return hits;
    }
    }
  )cpp"}},
      opts);
  EXPECT_FALSE(has_rule(findings, "perf.map-in-hot-loop"));
  ASSERT_TRUE(has_rule(worklist, "perf.map-in-hot-loop"));
  EXPECT_DOUBLE_EQ(worklist[0].hotness, 0.0);
}

TEST(PerfGrowthInLoop, FlagsPushBackWithoutReserve) {
  const auto findings = run_project_profiled({{"src/pack/packer.cpp", R"cpp(
    #include <vector>
    namespace vpga::pack {
    std::vector<int> pack(int n) {
      std::vector<int> out;
      for (int i = 0; i < n; ++i) out.push_back(i);
      return out;
    }
    }
  )cpp"}});
  EXPECT_TRUE(has_rule(findings, "perf.growth-in-loop"));
}

TEST(PerfGrowthInLoop, DominatingReserveIsClean) {
  const auto findings = run_project_profiled({{"src/pack/packer.cpp", R"cpp(
    #include <vector>
    namespace vpga::pack {
    std::vector<int> pack(int n) {
      std::vector<int> out;
      out.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) out.push_back(i);
      return out;
    }
    }
  )cpp"}});
  EXPECT_FALSE(has_rule(findings, "perf.growth-in-loop"));
}

TEST(PerfAllocInHotLoop, FlagsPerIterationContainerAndNew) {
  const auto findings = run_project_profiled({{"src/pack/packer.cpp", R"cpp(
    #include <vector>
    namespace vpga::pack {
    int pack(int n) {
      int s = 0;
      for (int i = 0; i < n; ++i) {
        std::vector<int> scratch(8, 0);
        s += scratch[0] + *(new int(i));
      }
      return s;
    }
    }
  )cpp"}});
  EXPECT_TRUE(has_rule(findings, "perf.alloc-in-hot-loop"));
}

TEST(PerfAllocInHotLoop, HoistedScratchAndRunOnceLambdaAreClean) {
  const auto findings = run_project_profiled({{"src/pack/packer.cpp", R"cpp(
    #include <vector>
    namespace vpga::pack {
    int pack(int n) {
      std::vector<int> scratch;
      int s = 0;
      for (int i = 0; i < n; ++i) {
        scratch.assign(8, 0);
        s += scratch[0];
      }
      static const std::vector<int> table = []{
        std::vector<int> out;
        for (int i = 0; i < 4; ++i) {
          std::vector<int> tmp(2, i);
          out.push_back(tmp[0]);
        }
        return out;
      }();
      return s + table[0];
    }
    }
  )cpp"}});
  EXPECT_FALSE(has_rule(findings, "perf.alloc-in-hot-loop"));
}

// ---------------------------------------------------------------------------
// perf.copy-heavy-param (ungated)
// ---------------------------------------------------------------------------

TEST(PerfCopyHeavyParam, FlagsNetlistByValue) {
  const auto findings = run_project({{"src/x/x.cpp", R"cpp(
    namespace vpga {
    int count_nodes(netlist::Netlist nl) { return 0; }
    }
  )cpp"}});
  EXPECT_TRUE(has_rule(findings, "perf.copy-heavy-param"));
}

TEST(PerfCopyHeavyParam, ConstRefAndSmallTypesAreClean) {
  const auto findings = run_project({{"src/x/x.cpp", R"cpp(
    namespace vpga {
    int count_nodes(const netlist::Netlist& nl, int scale) { return scale; }
    }
  )cpp"}});
  EXPECT_FALSE(has_rule(findings, "perf.copy-heavy-param"));
}

// ---------------------------------------------------------------------------
// lifetime.dangling-local (ungated)
// ---------------------------------------------------------------------------

TEST(LifetimeDanglingLocal, FlagsReferenceToLocal) {
  const auto findings = run_project({{"src/x/x.cpp", R"cpp(
    #include <string>
    namespace vpga {
    const std::string& name() {
      std::string s = "x";
      return s;
    }
    }
  )cpp"}});
  EXPECT_TRUE(has_rule(findings, "lifetime.dangling-local"));
}

TEST(LifetimeDanglingLocal, StaticLocalAndByValueReturnAreClean) {
  const auto findings = run_project({{"src/x/x.cpp", R"cpp(
    #include <string>
    namespace vpga {
    const std::string& cached() {
      static std::string s = "x";
      return s;
    }
    std::string copied() {
      std::string s = "x";
      return s;
    }
    }
  )cpp"}});
  EXPECT_FALSE(has_rule(findings, "lifetime.dangling-local"));
}

// ---------------------------------------------------------------------------
// det.iter-invalidation (ungated)
// ---------------------------------------------------------------------------

TEST(DetIterInvalidation, FlagsMutationOfIteratedContainer) {
  const auto findings = run_project({{"src/x/x.cpp", R"cpp(
    #include <vector>
    namespace vpga {
    void mirror(std::vector<int>& xs) {
      for (int x : xs) {
        if (x > 0) xs.push_back(-x);
      }
    }
    }
  )cpp"}});
  EXPECT_TRUE(has_rule(findings, "det.iter-invalidation"));
}

TEST(DetIterInvalidation, MutatingAnotherContainerIsClean) {
  const auto findings = run_project({{"src/x/x.cpp", R"cpp(
    #include <vector>
    namespace vpga {
    void mirror(const std::vector<int>& xs, std::vector<int>& out) {
      out.reserve(xs.size());
      for (int x : xs) out.push_back(-x);
    }
    }
  )cpp"}});
  EXPECT_FALSE(has_rule(findings, "det.iter-invalidation"));
}

// ---------------------------------------------------------------------------
// Real-tree semantic cleanliness (the lint gate the fabriclint ctest also
// enforces, kept here so a unit-test run catches regressions without the CLI)
// ---------------------------------------------------------------------------

TEST(SemanticEngine, RealGuardedSubsystemsLintClean) {
  const std::filesystem::path root(VPGA_REPO_ROOT);
  std::vector<SourceFile> files;
  for (const char* rel : {"src/obs/obs.hpp", "src/obs/obs.cpp", "src/flow/flow.hpp",
                          "src/flow/flow.cpp", "src/pack/packer.hpp",
                          "src/pack/packer.cpp", "src/verify/stage.hpp",
                          "src/verify/stage.cpp", "src/verify/verify.hpp",
                          "src/verify/verify.cpp"}) {
    files.push_back({rel, read_file(root / rel)});
  }
  for (const Finding& f : vpga::fabriclint::lint_project(files))
    ADD_FAILURE() << f.file << ":" << f.line << ": " << f.rule << ": " << f.message;
}

// ---------------------------------------------------------------------------
// JSON output round-trip
// ---------------------------------------------------------------------------

TEST(JsonOutput, RoundTripsThroughBundledParser) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <cstdio>
    void f() { printf("quote \" and backslash \\ in message context"); }
  )cpp");
  ASSERT_FALSE(findings.empty());
  const std::string doc = vpga::fabriclint::findings_json(findings);

  vpga::obs::json::Value parsed;
  std::string error;
  ASSERT_TRUE(vpga::obs::json::parse(doc, parsed, &error)) << error;
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.find("schema")->string, "vpga.fabriclint.v3");
  // Without an elapsed time the footer is omitted entirely.
  EXPECT_EQ(parsed.find("elapsed_ms"), nullptr);
  EXPECT_EQ(static_cast<std::size_t>(parsed.find("total")->number), findings.size());
  const auto* arr = parsed.find("findings");
  ASSERT_TRUE(arr != nullptr && arr->is_array());
  ASSERT_EQ(arr->array.size(), findings.size());
  const auto& first = arr->array[0];
  EXPECT_EQ(first.find("file")->string, findings[0].file);
  EXPECT_EQ(static_cast<int>(first.find("line")->number), findings[0].line);
  EXPECT_EQ(first.find("rule")->string, findings[0].rule);
  EXPECT_EQ(first.find("message")->string, findings[0].message);
  ASSERT_NE(first.find("hotness"), nullptr);
  EXPECT_DOUBLE_EQ(first.find("hotness")->number, findings[0].hotness);
}

TEST(JsonOutput, PerfReportIsRankedByHotnessThenPosition) {
  std::vector<Finding> worklist = {
      {"src/b.cpp", 10, "perf.growth-in-loop", "m1", 0.25},
      {"src/a.cpp", 5, "perf.map-in-hot-loop", "m2", 0.75},
      {"src/a.cpp", 2, "perf.alloc-in-hot-loop", "m3", 0.25},
  };
  const std::string doc = vpga::fabriclint::perf_report_json(worklist, "BENCH_flow.json");
  vpga::obs::json::Value parsed;
  std::string error;
  ASSERT_TRUE(vpga::obs::json::parse(doc, parsed, &error)) << error;
  EXPECT_EQ(parsed.find("schema")->string, "vpga.fabriclint.perf.v1");
  EXPECT_EQ(parsed.find("profile")->string, "BENCH_flow.json");
  const auto* arr = parsed.find("findings");
  ASSERT_TRUE(arr != nullptr && arr->is_array());
  ASSERT_EQ(arr->array.size(), 3u);
  EXPECT_EQ(arr->array[0].find("file")->string, "src/a.cpp");   // hottest first
  EXPECT_DOUBLE_EQ(arr->array[0].find("hotness")->number, 0.75);
  EXPECT_EQ(arr->array[1].find("file")->string, "src/a.cpp");   // then file order
  EXPECT_EQ(static_cast<int>(arr->array[1].find("line")->number), 2);
  EXPECT_EQ(arr->array[2].find("file")->string, "src/b.cpp");
}

TEST(JsonOutput, EmptyFindingsIsValidDocument) {
  vpga::obs::json::Value parsed;
  ASSERT_TRUE(vpga::obs::json::parse(vpga::fabriclint::findings_json({}), parsed, nullptr));
  EXPECT_EQ(parsed.find("total")->number, 0.0);
  EXPECT_TRUE(parsed.find("findings")->is_array());
}

TEST(JsonOutput, ElapsedMsFooterRoundTrips) {
  vpga::obs::json::Value parsed;
  ASSERT_TRUE(
      vpga::obs::json::parse(vpga::fabriclint::findings_json({}, 1234), parsed, nullptr));
  ASSERT_NE(parsed.find("elapsed_ms"), nullptr);
  EXPECT_EQ(parsed.find("elapsed_ms")->number, 1234.0);
}

// ---------------------------------------------------------------------------
// Catalogue coverage (must run last: gtest preserves file order per suite
// name, so give it a name that sorts the intent, and rely on the fixtures
// above all having executed in this binary).
// ---------------------------------------------------------------------------

TEST(ZLintCatalogue, EveryRuleHasFixtures) {
  for (std::string_view rule : vpga::fabriclint::kLintCatalogue) {
    EXPECT_TRUE(fired_registry().count(std::string(rule)) > 0)
        << "rule " << rule << " is catalogued but no fixture in "
        << "test_fabriclint.cpp triggered it";
  }
  for (const std::string& rule : fired_registry()) {
    EXPECT_TRUE(vpga::fabriclint::known_rule(rule))
        << "fixtures fired rule " << rule << " which is not in kLintCatalogue";
  }
}

}  // namespace
