// Fixture tests for every fabriclint rule (docs/LINT.md): one failing and
// one passing snippet per rule id, suppression-comment behavior, JSON-output
// round-trip through the bundled obs/json.hpp parser, and the
// catalogue <-> docs/LINT.md sync check. A registry of fired rule ids is
// cross-checked against kLintCatalogue so a rule added to the engine without
// fixtures fails here (same enforcement pattern as test_verify.cpp).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "catalogue.hpp"
#include "fabriclint.hpp"
#include "obs/json.hpp"

namespace {

using vpga::fabriclint::Finding;
using vpga::fabriclint::ObsRegistry;

std::set<std::string>& fired_registry() {
  static std::set<std::string> fired;
  return fired;
}

void record(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) fired_registry().insert(f.rule);
}

std::vector<Finding> run_lint(std::string_view rel_path, std::string_view source,
                              const ObsRegistry* registry = nullptr) {
  auto findings = vpga::fabriclint::lint_source(rel_path, source, registry);
  record(findings);
  return findings;
}

bool has_rule(const std::vector<Finding>& findings, std::string_view rule) {
  for (const Finding& f : findings)
    if (f.rule == rule) return true;
  return false;
}

ObsRegistry small_registry() {
  ObsRegistry reg;
  reg.spans = {"stage.map", "pack.attempt"};
  reg.metrics = {"route.nets", "pack.groups"};
  return reg;
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// det.unordered-iter
// ---------------------------------------------------------------------------

TEST(DetUnorderedIter, FlagsRangeForOverUnorderedMember) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <unordered_map>
    std::unordered_map<int, int> table_;
    int sum() {
      int s = 0;
      for (const auto& [k, v] : table_) s += v;
      return s;
    }
  )cpp");
  ASSERT_TRUE(has_rule(findings, "det.unordered-iter"));
  EXPECT_EQ(findings[0].line, 6);
}

TEST(DetUnorderedIter, PassesOnVectorAndOnLookups) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <unordered_map>
    #include <vector>
    std::unordered_map<int, int> table_;
    std::vector<int> order_;
    int sum() {
      int s = 0;
      for (int k : order_) s += table_.at(k);  // index-ordered iteration
      return s;
    }
  )cpp");
  EXPECT_FALSE(has_rule(findings, "det.unordered-iter"));
}

TEST(DetUnorderedIter, SortedDownstreamAnnotationSuppresses) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <unordered_map>
    std::unordered_map<int, int> table_;
    int count_all() {
      int n = 0;
      // fabriclint: sorted-downstream -- commutative count, order washes out
      for (const auto& [k, v] : table_) ++n;
      return n;
    }
  )cpp");
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// det.raw-rng
// ---------------------------------------------------------------------------

TEST(DetRawRng, FlagsMt19937AndRandCall) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <random>
    int noise() {
      std::mt19937 gen(42);
      return rand() % 7;
    }
  )cpp");
  EXPECT_TRUE(has_rule(findings, "det.raw-rng"));
  EXPECT_EQ(findings.size(), 2u);
}

TEST(DetRawRng, PassesOnProjectRngAndInsideRngHeader) {
  EXPECT_TRUE(run_lint("src/x/x.cpp", R"cpp(
    #include "common/rng.hpp"
    int noise(vpga::common::Rng& rng) { return static_cast<int>(rng.next_below(7)); }
  )cpp")
                  .empty());
  // The one blessed home of RNG machinery is exempt.
  EXPECT_TRUE(run_lint("src/common/rng.hpp", "// not std::mt19937\nint rand();\n").empty());
}

// ---------------------------------------------------------------------------
// det.ptr-order
// ---------------------------------------------------------------------------

TEST(DetPtrOrder, FlagsPointerComparatorLambda) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <algorithm>
    #include <vector>
    struct Node { int id; };
    void order(std::vector<Node*>& v) {
      std::sort(v.begin(), v.end(), [](const Node* a, const Node* b) { return a < b; });
    }
  )cpp");
  EXPECT_TRUE(has_rule(findings, "det.ptr-order"));
}

TEST(DetPtrOrder, FlagsStdLessOverPointerAndAddressCompare) {
  EXPECT_TRUE(has_rule(run_lint("src/x/x.cpp", R"cpp(
    #include <map>
    struct Node { int id; };
    std::map<Node*, int, std::less<Node*>> rank_;
  )cpp"),
                       "det.ptr-order"));
  EXPECT_TRUE(has_rule(run_lint("src/x/x.cpp", R"cpp(
    struct Node { int id; };
    bool before(const Node& x, const Node& y) { return &x < &y; }
  )cpp"),
                       "det.ptr-order"));
}

TEST(DetPtrOrder, PassesOnStableKeyComparator) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <algorithm>
    #include <vector>
    struct Node { int id; };
    void order(std::vector<Node*>& v) {
      std::sort(v.begin(), v.end(),
                [](const Node* a, const Node* b) { return a->id < b->id; });
    }
  )cpp");
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// det.wall-clock
// ---------------------------------------------------------------------------

TEST(DetWallClock, FlagsSystemClockAndBareTime) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <chrono>
    #include <ctime>
    long stamp() {
      auto t = std::chrono::system_clock::now();
      (void)t;
      return time(nullptr);
    }
  )cpp");
  EXPECT_TRUE(has_rule(findings, "det.wall-clock"));
  EXPECT_EQ(findings.size(), 2u);
}

TEST(DetWallClock, PassesOnSteadyClockAndInsideObs) {
  EXPECT_TRUE(run_lint("src/x/x.cpp", R"cpp(
    #include <chrono>
    auto tick() { return std::chrono::steady_clock::now(); }
  )cpp")
                  .empty());
  // src/obs/ owns the clocks.
  EXPECT_TRUE(run_lint("src/obs/x.cpp", "auto t = std::chrono::system_clock::now();\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// io.stray-stream
// ---------------------------------------------------------------------------

TEST(IoStrayStream, FlagsCoutAndPrintfInLibraryCode) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <cstdio>
    #include <iostream>
    void report(int n) {
      std::cout << n << "\n";
      printf("%d\n", n);
    }
  )cpp");
  EXPECT_TRUE(has_rule(findings, "io.stray-stream"));
  EXPECT_EQ(findings.size(), 2u);
}

TEST(IoStrayStream, PassesOutsideLibraryAndForSnprintf) {
  // bench/ and examples/ are presentation code: stdout is their job.
  EXPECT_TRUE(run_lint("bench/x.cpp", "#include <iostream>\nvoid p() { std::cout << 1; }\n")
                  .empty());
  // String formatting is not I/O.
  EXPECT_TRUE(run_lint("src/x/x.cpp", R"cpp(
    #include <cstdio>
    int fmt(char* buf, unsigned long n, double v) { return std::snprintf(buf, n, "%g", v); }
  )cpp")
                  .empty());
}

// ---------------------------------------------------------------------------
// obs.span-name / obs.metric-name
// ---------------------------------------------------------------------------

TEST(ObsSpanName, FlagsConventionViolationAndUnregisteredName) {
  const ObsRegistry reg = small_registry();
  EXPECT_TRUE(has_rule(run_lint("src/x/x.cpp", R"cpp(
    #include "obs/obs.hpp"
    void f() { vpga::obs::Span s("BadName"); }
  )cpp",
                                &reg),
                       "obs.span-name"));
  EXPECT_TRUE(has_rule(run_lint("src/x/x.cpp", R"cpp(
    #include "obs/obs.hpp"
    void f() { vpga::obs::Span s("stage.unheard_of"); }
  )cpp",
                                &reg),
                       "obs.span-name"));
}

TEST(ObsSpanName, PassesOnRegisteredAndDynamicNames) {
  const ObsRegistry reg = small_registry();
  EXPECT_TRUE(run_lint("src/x/x.cpp", R"cpp(
    #include "obs/obs.hpp"
    #include <string>
    void f(const std::string& stage) {
      vpga::obs::Span s("stage.map");
      vpga::obs::Span t("verify." + stage);  // dynamic family: linter skips
    }
  )cpp",
                       &reg)
                  .empty());
}

TEST(ObsMetricName, FlagsConventionViolationAndUnregisteredName) {
  const ObsRegistry reg = small_registry();
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include "obs/obs.hpp"
    void f() {
      vpga::obs::count("Route_Nets");
      vpga::obs::observe("route.unheard_of", 1.0);
    }
  )cpp",
                                 &reg);
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_TRUE(has_rule(findings, "obs.metric-name"));
}

TEST(ObsMetricName, PassesOnRegisteredNames) {
  const ObsRegistry reg = small_registry();
  EXPECT_TRUE(run_lint("src/x/x.cpp", R"cpp(
    #include "obs/obs.hpp"
    void f() {
      vpga::obs::count("route.nets", 3);
      vpga::obs::gauge("pack.groups", 2.0);
    }
  )cpp",
                       &reg)
                  .empty());
}

TEST(ObsRegistryParse, ReadsRealNamesHeader) {
  const auto names_path =
      std::filesystem::path(VPGA_REPO_ROOT) / "src" / "obs" / "names.hpp";
  const ObsRegistry reg = vpga::fabriclint::parse_obs_registry(read_file(names_path));
  EXPECT_TRUE(reg.spans.count("stage.map") > 0);
  EXPECT_TRUE(reg.spans.count("route.negotiate") > 0);
  EXPECT_TRUE(reg.metrics.count("route.ripups") > 0);
  EXPECT_TRUE(reg.metrics.count("verify.equiv.vectors") > 0);
  // Span names never leak into the metric set or vice versa.
  EXPECT_EQ(reg.metrics.count("stage.map"), 0u);
}

// ---------------------------------------------------------------------------
// verify.rule-sync
// ---------------------------------------------------------------------------

TEST(VerifyRuleSync, FlagsBothDriftDirections) {
  const std::string header = R"cpp(
    constexpr const char* kRules[] = {"a.one", "a.two"};
  )cpp";
  const std::string docs = "| rule | meaning |\n|---|---|\n| `a.one` | ok |\n| `a.three` | ghost |\n";
  const auto findings =
      vpga::fabriclint::check_rule_sync("h.hpp", header, "d.md", docs);
  record(findings);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(has_rule(findings, "verify.rule-sync"));
}

TEST(VerifyRuleSync, PassesOnMatchingPair) {
  const std::string header = R"cpp(constexpr const char* kRules[] = {"a.one"};)cpp";
  const std::string docs = "| `a.one` | documented |\n";
  EXPECT_TRUE(vpga::fabriclint::check_rule_sync("h.hpp", header, "d.md", docs).empty());
}

TEST(VerifyRuleSync, RealVerifyCatalogueMatchesDocs) {
  const std::filesystem::path root(VPGA_REPO_ROOT);
  const auto findings = vpga::fabriclint::check_rule_sync(
      "src/verify/rules.hpp", read_file(root / "src" / "verify" / "rules.hpp"),
      "docs/VERIFY.md", read_file(root / "docs" / "VERIFY.md"));
  for (const Finding& f : findings) ADD_FAILURE() << f.file << ": " << f.message;
}

// docs/LINT.md's catalogue table stays in sync with catalogue.hpp (the
// verify.rule-sync-style guard for fabriclint's own rules).
TEST(VerifyRuleSync, LintCatalogueMatchesLintDocs) {
  const std::filesystem::path root(VPGA_REPO_ROOT);
  const auto findings = vpga::fabriclint::check_rule_sync(
      "tools/fabriclint/catalogue.hpp",
      read_file(root / "tools" / "fabriclint" / "catalogue.hpp"), "docs/LINT.md",
      read_file(root / "docs" / "LINT.md"));
  for (const Finding& f : findings) ADD_FAILURE() << f.file << ": " << f.message;
}

// ---------------------------------------------------------------------------
// hdr.self-contained
// ---------------------------------------------------------------------------

class TempHeader {
 public:
  explicit TempHeader(std::string_view content) {
    dir_ = std::filesystem::temp_directory_path() / "fabriclint_test_hdr";
    std::filesystem::create_directories(dir_);
    path_ = dir_ / "fixture.hpp";
    std::ofstream(path_) << content;
  }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path dir_, path_;
};

TEST(HdrSelfContained, FlagsHeaderMissingItsIncludes) {
  const TempHeader hdr("#pragma once\ninline std::string broken() { return {}; }\n");
  const auto findings = vpga::fabriclint::check_header_self_contained(
      hdr.path().string(), "src/fixture.hpp", hdr.dir().string(), VPGA_CXX_COMPILER);
  record(findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "hdr.self-contained");
}

TEST(HdrSelfContained, PassesOnSelfContainedHeader) {
  const TempHeader hdr("#pragma once\n#include <string>\ninline std::string ok() { return {}; }\n");
  EXPECT_TRUE(vpga::fabriclint::check_header_self_contained(
                  hdr.path().string(), "src/fixture.hpp", hdr.dir().string(), VPGA_CXX_COMPILER)
                  .empty());
}

// ---------------------------------------------------------------------------
// Suppressions / meta.bad-suppression
// ---------------------------------------------------------------------------

TEST(Suppression, DisableWithReasonSuppressesOwnLineAndNextCodeLine) {
  // Same line.
  EXPECT_TRUE(run_lint("src/x/x.cpp",
                       "#include <cstdio>\nvoid f() { printf(\"x\"); }  "
                       "// fabriclint: disable(io.stray-stream) -- test sink\n")
                  .empty());
  // Own line, applying past a continuation comment to the next code line.
  EXPECT_TRUE(run_lint("src/x/x.cpp", R"cpp(
    #include <cstdio>
    void f() {
      // fabriclint: disable(io.stray-stream) -- the reason is long enough
      // to spill onto a second comment line before the code.
      printf("x");
    }
  )cpp")
                  .empty());
}

TEST(Suppression, DisableOnlySilencesTheNamedRule) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <cstdio>
    void f() {
      // fabriclint: disable(det.raw-rng) -- wrong rule for this line
      printf("x");
    }
  )cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io.stray-stream");
}

TEST(MetaBadSuppression, FlagsMissingReasonUnknownRuleAndGarbage) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    // fabriclint: disable(io.stray-stream)
    // fabriclint: disable(no.such-rule) -- reason present but rule unknown
    // fabriclint: frobnicate the linter
    int x = 0;
  )cpp");
  EXPECT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "meta.bad-suppression");
}

TEST(MetaBadSuppression, PassesOnWellFormedDirectives) {
  EXPECT_TRUE(run_lint("src/x/x.cpp", R"cpp(
    #include <cstdio>
    // fabriclint: disable(io.stray-stream) -- fixture demonstrating the form
    void f() { printf("x"); }
  )cpp")
                  .empty());
}

// ---------------------------------------------------------------------------
// JSON output round-trip
// ---------------------------------------------------------------------------

TEST(JsonOutput, RoundTripsThroughBundledParser) {
  const auto findings = run_lint("src/x/x.cpp", R"cpp(
    #include <cstdio>
    void f() { printf("quote \" and backslash \\ in message context"); }
  )cpp");
  ASSERT_FALSE(findings.empty());
  const std::string doc = vpga::fabriclint::findings_json(findings);

  vpga::obs::json::Value parsed;
  std::string error;
  ASSERT_TRUE(vpga::obs::json::parse(doc, parsed, &error)) << error;
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.find("schema")->string, "vpga.fabriclint.v1");
  EXPECT_EQ(static_cast<std::size_t>(parsed.find("total")->number), findings.size());
  const auto* arr = parsed.find("findings");
  ASSERT_TRUE(arr != nullptr && arr->is_array());
  ASSERT_EQ(arr->array.size(), findings.size());
  const auto& first = arr->array[0];
  EXPECT_EQ(first.find("file")->string, findings[0].file);
  EXPECT_EQ(static_cast<int>(first.find("line")->number), findings[0].line);
  EXPECT_EQ(first.find("rule")->string, findings[0].rule);
  EXPECT_EQ(first.find("message")->string, findings[0].message);
}

TEST(JsonOutput, EmptyFindingsIsValidDocument) {
  vpga::obs::json::Value parsed;
  ASSERT_TRUE(vpga::obs::json::parse(vpga::fabriclint::findings_json({}), parsed, nullptr));
  EXPECT_EQ(parsed.find("total")->number, 0.0);
  EXPECT_TRUE(parsed.find("findings")->is_array());
}

// ---------------------------------------------------------------------------
// Catalogue coverage (must run last: gtest preserves file order per suite
// name, so give it a name that sorts the intent, and rely on the fixtures
// above all having executed in this binary).
// ---------------------------------------------------------------------------

TEST(ZLintCatalogue, EveryRuleHasFixtures) {
  for (std::string_view rule : vpga::fabriclint::kLintCatalogue) {
    EXPECT_TRUE(fired_registry().count(std::string(rule)) > 0)
        << "rule " << rule << " is catalogued but no fixture in "
        << "test_fabriclint.cpp triggered it";
  }
  for (const std::string& rule : fired_registry()) {
    EXPECT_TRUE(vpga::fabriclint::known_rule(rule))
        << "fixtures fired rule " << rule << " which is not in kLintCatalogue";
  }
}

}  // namespace
