// Tests for the and-inverter graph: hashing, folding, conversion round trips.

#include "aig/aig.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "designs/designs.hpp"
#include "netlist/simulate.hpp"

namespace vpga::aig {
namespace {

TEST(Aig, ConstantFoldingRules) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  EXPECT_EQ(g.add_and(a, kFalse), kFalse);
  EXPECT_EQ(g.add_and(kTrue, b), b);
  EXPECT_EQ(g.add_and(a, a), a);
  EXPECT_EQ(g.add_and(a, negate(a)), kFalse);
}

TEST(Aig, StructuralHashingDeduplicates) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit x = g.add_and(a, b);
  const Lit y = g.add_and(b, a);  // commuted
  EXPECT_EQ(x, y);
  EXPECT_EQ(g.num_nodes(), 4u);  // const + 2 inputs + 1 and
}

TEST(Aig, XorEvaluates) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  g.add_output(g.add_xor(a, b));
  for (int v = 0; v < 4; ++v) {
    const auto out = g.eval({(v & 1) != 0, (v & 2) != 0});
    EXPECT_EQ(out[0], ((v & 1) ^ ((v >> 1) & 1)) != 0);
  }
}

TEST(Aig, MuxEvaluates) {
  Aig g;
  const Lit s = g.add_input();
  const Lit d0 = g.add_input();
  const Lit d1 = g.add_input();
  g.add_output(g.add_mux(s, d0, d1));
  for (int v = 0; v < 8; ++v) {
    const bool sv = v & 1, d0v = (v >> 1) & 1, d1v = (v >> 2) & 1;
    EXPECT_EQ(g.eval({sv, d0v, d1v})[0], sv ? d1v : d0v);
  }
}

TEST(Aig, BuildFunctionMatchesTruthTable) {
  common::Rng rng(3);
  for (int iter = 0; iter < 100; ++iter) {
    const logic::TruthTable f(3, rng.next_u64() & 0xFF);
    Aig g;
    const std::vector<Lit> leaves = {g.add_input(), g.add_input(), g.add_input()};
    g.add_output(g.build_function(f, leaves));
    for (unsigned row = 0; row < 8; ++row) {
      const auto out = g.eval({(row & 1) != 0, (row & 2) != 0, (row & 4) != 0});
      EXPECT_EQ(out[0], f.eval(row)) << f.to_string() << " row " << row;
    }
  }
}

TEST(Aig, BuildFunctionHandlesConstantsAndLiterals) {
  Aig g;
  const std::vector<Lit> leaves = {g.add_input(), g.add_input()};
  EXPECT_EQ(g.build_function(logic::TruthTable::constant(2, false), leaves), kFalse);
  EXPECT_EQ(g.build_function(logic::TruthTable::constant(2, true), leaves), kTrue);
  EXPECT_EQ(g.build_function(logic::TruthTable::var(2, 0), leaves), leaves[0]);
  EXPECT_EQ(g.build_function(~logic::TruthTable::var(2, 1), leaves), negate(leaves[1]));
}

TEST(Aig, LevelsAndDepth) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit c = g.add_input();
  const Lit x = g.add_and(a, b);
  const Lit y = g.add_and(x, c);
  g.add_output(y);
  EXPECT_EQ(g.depth(), 2);
  EXPECT_EQ(g.count_reachable_ands(), 2u);
}

TEST(Aig, RoundTripCombinational) {
  const auto nl = designs::make_ripple_adder(6);
  const auto m = from_netlist(nl);
  EXPECT_EQ(m.num_pis, nl.inputs().size());
  EXPECT_EQ(m.num_pos, nl.outputs().size());
  const auto back = to_netlist(m);
  EXPECT_TRUE(back.check().ok);
  EXPECT_TRUE(netlist::equivalent_random_sim(nl, back, 200));
}

TEST(Aig, RoundTripSequential) {
  const auto nl = designs::make_counter(5);
  const auto m = from_netlist(nl);
  EXPECT_EQ(m.num_latches, 5u);
  const auto back = to_netlist(m);
  EXPECT_TRUE(back.check().ok);
  EXPECT_TRUE(netlist::equivalent_random_sim(nl, back, 100));
}

TEST(Aig, RoundTripAlu) {
  const auto d = designs::make_alu(8);
  const auto m = from_netlist(d.netlist);
  const auto back = to_netlist(m);
  EXPECT_TRUE(netlist::equivalent_random_sim(d.netlist, back, 100));
}

TEST(Aig, RoundTripFirewire) {
  const auto d = designs::make_firewire(4, 8);
  const auto back = to_netlist(from_netlist(d.netlist));
  EXPECT_TRUE(netlist::equivalent_random_sim(d.netlist, back, 100));
}

TEST(Aig, HashingShrinksRedundantNetlists) {
  // Build the same function twice; strashing must share the structure.
  netlist::Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto x = nl.add_and(a, b);
  const auto y = nl.add_and(a, b);  // duplicate
  nl.add_output(nl.add_or(x, y), "o");
  const auto m = from_netlist(nl);
  EXPECT_EQ(m.aig.count_reachable_ands(), 1u);  // or of identical = identity
}

}  // namespace
}  // namespace vpga::aig
