// Tests for the flight recorder (src/obs/events.*): ring wraparound,
// concurrent writers, forensics serialization, and the two crash-dump
// triggers the ISSUE names — a verify-failure abort and a fatal signal
// mid-pack. The death tests fork, crash the child, then parse the dump the
// child left behind and assert its tail names the active span and the seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "verify/diagnostic.hpp"
#include "verify/verify.hpp"

namespace {

using namespace vpga::obs;

class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flight::reset_for_testing();
    flight::set_enabled(true);
  }
  void TearDown() override { flight::reset_for_testing(); }
};

TEST_F(FlightTest, RingKeepsLastEventsAfterWraparound) {
  for (int i = 0; i < 600; ++i)
    flight::record(flight::EventKind::kMark, "flow.begin", i);
  const std::vector<flight::FlightEvent> events = flight::snapshot();
  ASSERT_LE(static_cast<int>(events.size()), flight::kRingCapacity);
  ASSERT_GT(static_cast<int>(events.size()), 0);
  // The ring keeps the *newest* events, in ascending seq order.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  EXPECT_EQ(events.back().a, 599);
  EXPECT_EQ(events.back().us >= 0, true);
  EXPECT_STREQ(events.back().name, "flow.begin");
}

TEST_F(FlightTest, SeedEventsSurviveEviction) {
  flight_event("flow.seed", 20040216);
  for (int i = 0; i < 2 * flight::kRingCapacity; ++i)
    flight::record(flight::EventKind::kMark, "flow.begin", i);
  const std::vector<flight::FlightEvent> events = flight::snapshot();
  const auto seed = std::find_if(
      events.begin(), events.end(), [](const flight::FlightEvent& e) {
        return e.kind == flight::EventKind::kSeed;
      });
  ASSERT_NE(seed, events.end()) << "pinned seed must survive ring wraparound";
  EXPECT_EQ(seed->a, 20040216);
}

TEST_F(FlightTest, ConcurrentWritersAreLosslessPerRing) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;  // < kRingCapacity: nothing may be evicted
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i)
        flight::record(flight::EventKind::kMark, "flow.begin",
                       t * kPerThread + i);
    });
  for (std::thread& w : writers) w.join();
  ASSERT_EQ(flight::dropped(), 0u);

  const std::vector<flight::FlightEvent> events = flight::snapshot();
  ASSERT_EQ(static_cast<int>(events.size()), kThreads * kPerThread);
  // Every payload 0..399 shows up exactly once, and each ring's events are
  // internally seq-ordered (single writer per ring).
  std::vector<int> seen(kThreads * kPerThread, 0);
  std::map<std::int32_t, std::uint64_t> last_seq;
  for (const flight::FlightEvent& e : events) {
    ASSERT_GE(e.a, 0);
    ASSERT_LT(e.a, kThreads * kPerThread);
    ++seen[static_cast<std::size_t>(e.a)];
    const auto it = last_seq.find(e.ring);
    if (it != last_seq.end()) EXPECT_LT(it->second, e.seq);
    last_seq[e.ring] = e.seq;
  }
  for (const int n : seen) EXPECT_EQ(n, 1);
}

TEST_F(FlightTest, ForensicsJsonParsesAndCarriesTheSeed) {
  flight_event("flow.seed", 42);
  {
    Span pack("stage.pack");
    flight::record(flight::EventKind::kVerify, "lint.dangling-net", 3, 1);
  }
  const std::string doc_text = flight::forensics_json("unit-test");

  namespace json = vpga::obs::json;
  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(doc_text, doc, &error)) << error;
  const json::Value* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "vpga.forensics.v1");
  const json::Value* reason = doc.find("reason");
  ASSERT_NE(reason, nullptr);
  EXPECT_EQ(reason->string, "unit-test");

  const json::Value* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_seed = false, saw_begin = false, saw_end = false, saw_verify = false;
  for (const json::Value& e : events->array) {
    const json::Value* kind = e.find("kind");
    const json::Value* name = e.find("name");
    ASSERT_NE(kind, nullptr);
    ASSERT_NE(name, nullptr);
    if (kind->string == "seed" && e.find("a")->number == 42.0) saw_seed = true;
    if (kind->string == "span_begin" && name->string == "stage.pack")
      saw_begin = true;
    if (kind->string == "span_end" && name->string == "stage.pack")
      saw_end = true;
    if (kind->string == "verify" && name->string == "lint.dangling-net")
      saw_verify = true;
  }
  EXPECT_TRUE(saw_seed);
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
  EXPECT_TRUE(saw_verify);
}

TEST_F(FlightTest, DisabledRecorderRecordsNothing) {
  flight::set_enabled(false);
  flight::record(flight::EventKind::kMark, "flow.begin", 1);
  EXPECT_TRUE(flight::snapshot().empty());
}

// ---------------------------------------------------------------------------
// Crash-dump death tests. TSan's runtime intercepts fork/abort in ways that
// make gtest death tests unreliable, so they compile out under TSan (the CI
// tsan job still runs every non-death flight test above).
#if !defined(__SANITIZE_THREAD__)
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define VPGA_FLIGHT_NO_DEATH_TESTS 1
#endif
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define VPGA_FLIGHT_NO_DEATH_TESTS 1
#endif

#if !defined(VPGA_FLIGHT_NO_DEATH_TESTS)

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Parses the dump the dead child left at `path` and returns (reason, and
/// whether the events include an active stage.pack span and seed 42).
void check_dump(const std::string& path, const std::string& want_reason) {
  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty()) << "no forensics dump at " << path;

  namespace json = vpga::obs::json;
  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(text, doc, &error)) << error << "\n" << text;
  ASSERT_NE(doc.find("reason"), nullptr);
  EXPECT_EQ(doc.find("reason")->string, want_reason);

  const json::Value* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  bool pack_open = false, saw_seed = false;
  for (const json::Value& e : events->array) {
    const std::string& kind = e.find("kind")->string;
    const std::string& name = e.find("name")->string;
    if (name == "stage.pack") pack_open = kind == "span_begin";
    if (kind == "seed" && e.find("a")->number == 42.0) saw_seed = true;
  }
  EXPECT_TRUE(pack_open) << "tail must show stage.pack still open: " << text;
  EXPECT_TRUE(saw_seed) << "dump must carry the RNG seed: " << text;
}

class FlightDeathTest : public FlightTest {
 protected:
  std::string dump_path_;
  void SetUp() override {
    dump_path_ = ::testing::TempDir() + "vpga_flight_dump_" +
                 ::testing::UnitTest::GetInstance()->current_test_info()->name() +
                 ".json";
    ::setenv("VPGA_FORENSICS_PATH", dump_path_.c_str(), 1);
    std::remove(dump_path_.c_str());
    FlightTest::SetUp();  // reset_for_testing drops the cached path
  }
  void TearDown() override {
    FlightTest::TearDown();
    std::remove(dump_path_.c_str());
    ::unsetenv("VPGA_FORENSICS_PATH");
  }
};

TEST_F(FlightDeathTest, VerifyFailureDumpsForensics) {
  EXPECT_DEATH(
      {
        flight_event("flow.seed", 42);
        Span pack("stage.pack");
        vpga::verify::VerifyReport report;
        report.add(vpga::verify::Severity::kError, "pack.unplaced-config",
                   "post-pack", vpga::netlist::NodeId(), "config left behind");
        vpga::verify::enforce(report);
      },
      "flow verification failed");
  check_dump(dump_path_, "verify-failure");
}

TEST_F(FlightDeathTest, FatalSignalMidPackDumpsForensics) {
  EXPECT_DEATH(
      {
        flight::install_crash_handlers();
        flight_event("flow.seed", 42);
        Span pack("stage.pack");
        std::abort();
      },
      "");
  check_dump(dump_path_, "signal:6");
}

#endif  // !VPGA_FLIGHT_NO_DEATH_TESTS

}  // namespace
