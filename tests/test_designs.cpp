// Functional tests for the benchmark-design generators: the flow's results
// are only meaningful if the workloads compute what they claim.

#include "designs/designs.hpp"

#include <gtest/gtest.h>

#include "designs/datapath.hpp"
#include "netlist/simulate.hpp"

namespace vpga::designs {
namespace {

using netlist::Simulator;

std::uint64_t read_bus_outputs(const Simulator& sim, const netlist::Netlist& nl,
                               const std::string& prefix) {
  std::uint64_t v = 0;
  int bit = 0;
  for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
    const auto& name = nl.name_of(nl.outputs()[o]);
    if (name.rfind(prefix + "[", 0) == 0) {
      if (sim.output(o)) v |= std::uint64_t{1} << bit;
      ++bit;
    }
  }
  return v;
}

void drive_bus(Simulator& sim, const netlist::Netlist& nl, const std::string& prefix,
               std::uint64_t value) {
  int bit = 0;
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    const auto& name = nl.name_of(nl.inputs()[i]);
    if (name.rfind(prefix + "[", 0) == 0) {
      sim.set_input(i, (value >> bit) & 1);
      ++bit;
    }
  }
}

void drive_pin(Simulator& sim, const netlist::Netlist& nl, const std::string& name,
               bool value) {
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    if (nl.name_of(nl.inputs()[i]) == name) {
      sim.set_input(i, value);
      return;
    }
  FAIL() << "no input pin " << name;
}

TEST(Designs, RippleAdderAddsExhaustively) {
  const auto nl = make_ripple_adder(4);
  ASSERT_TRUE(nl.check().ok);
  Simulator sim(nl);
  for (unsigned a = 0; a < 16; ++a)
    for (unsigned b = 0; b < 16; ++b) {
      drive_bus(sim, nl, "a", a);
      drive_bus(sim, nl, "b", b);
      drive_pin(sim, nl, "cin", false);
      sim.eval();
      const auto sum = read_bus_outputs(sim, nl, "sum");
      bool cout = false;
      for (std::size_t o = 0; o < nl.outputs().size(); ++o)
        if (nl.name_of(nl.outputs()[o]) == "cout") cout = sim.output(o);
      EXPECT_EQ(sum | (static_cast<std::uint64_t>(cout) << 4), a + b);
    }
}

TEST(Designs, CounterCounts) {
  const auto nl = make_counter(4);
  ASSERT_TRUE(nl.check().ok);
  Simulator sim(nl);
  drive_pin(sim, nl, "en", true);
  for (int t = 0; t < 20; ++t) {
    sim.eval();
    EXPECT_EQ(read_bus_outputs(sim, nl, "count"), static_cast<std::uint64_t>(t % 16));
    sim.step();
  }
}

TEST(Designs, CounterHoldsWhenDisabled) {
  const auto nl = make_counter(4);
  Simulator sim(nl);
  drive_pin(sim, nl, "en", true);
  for (int t = 0; t < 3; ++t) { sim.eval(); sim.step(); }
  drive_pin(sim, nl, "en", false);
  for (int t = 0; t < 5; ++t) {
    sim.eval();
    EXPECT_EQ(read_bus_outputs(sim, nl, "count"), 3u);
    sim.step();
  }
}

TEST(Designs, LfsrCyclesThroughStates) {
  const auto nl = make_lfsr(8, 0b10111000);  // x^8 + x^6 + x^5 + x^4 + 1 -ish
  ASSERT_TRUE(nl.check().ok);
  Simulator sim(nl);
  drive_pin(sim, nl, "seed", true);  // kick out of the all-zero state
  sim.eval();
  sim.step();
  drive_pin(sim, nl, "seed", false);
  std::uint64_t prev = read_bus_outputs(sim, nl, "state");
  int changes = 0;
  for (int t = 0; t < 32; ++t) {
    sim.eval();
    const auto s = read_bus_outputs(sim, nl, "state");
    if (s != prev) ++changes;
    prev = s;
    sim.step();
  }
  EXPECT_GT(changes, 20);
}

class AluOps : public ::testing::TestWithParam<int> {};

TEST_P(AluOps, ComputesCorrectly) {
  const int op = GetParam();
  const auto d = make_alu(8);
  const auto& nl = d.netlist;
  ASSERT_TRUE(nl.check().ok);
  Simulator sim(nl);
  const std::uint64_t test_vectors[][2] = {
      {0x00, 0x00}, {0x01, 0x01}, {0xFF, 0x01}, {0x5A, 0xA5}, {0x80, 0x7F}, {0x33, 0x0F}};
  for (const auto& [a, b] : test_vectors) {
    drive_bus(sim, nl, "a", a);
    drive_bus(sim, nl, "b", b);
    drive_bus(sim, nl, "op", static_cast<std::uint64_t>(op));
    sim.eval();
    sim.step();  // operands latch
    sim.eval();  // compute
    sim.step();  // result latches
    sim.eval();
    std::uint64_t expect = 0;
    const std::uint64_t sh = b & 7;
    switch (op) {
      case 0: expect = (a + b) & 0xFF; break;
      case 1: expect = (a - b) & 0xFF; break;
      case 2: expect = a & b; break;
      case 3: expect = a | b; break;
      case 4: expect = a ^ b; break;
      case 5: expect = (a << sh) & 0xFF; break;
      case 6: expect = a >> sh; break;
      case 7: expect = a < b ? 1 : 0; break;
    }
    EXPECT_EQ(read_bus_outputs(sim, nl, "result"), expect)
        << "op=" << op << " a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, AluOps, ::testing::Range(0, 8));

TEST(Designs, FpuMultiplySmall) {
  // 5-bit exponent, 6-bit mantissa FPU; check significand multiply via a
  // direct case: (1.m) * (1.m) with exponents mid-range.
  const auto d = make_fpu(5, 6);
  const auto& nl = d.netlist;
  ASSERT_TRUE(nl.check().ok);
  Simulator sim(nl);
  drive_pin(sim, nl, "x_sign", false);
  drive_pin(sim, nl, "y_sign", true);
  drive_bus(sim, nl, "x_exp", 16);
  drive_bus(sim, nl, "y_exp", 15);
  drive_bus(sim, nl, "x_man", 0);   // 1.0
  drive_bus(sim, nl, "y_man", 32);  // 1.5
  drive_pin(sim, nl, "op_mul", true);
  sim.eval(); sim.step();  // latch operands
  sim.eval(); sim.step();  // compute + latch result
  sim.eval();
  // 1.0 * 1.5 = 1.5: mantissa 100000, no exponent bump, sign = negative.
  EXPECT_EQ(read_bus_outputs(sim, nl, "z_man"), 32u);
  for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
    const auto& name = nl.name_of(nl.outputs()[o]);
    if (name == "z_sign") EXPECT_TRUE(sim.output(o));
    if (name == "z_zero") EXPECT_FALSE(sim.output(o));
  }
}

TEST(Designs, NetworkSwitchRoutesPacket) {
  const auto d = make_network_switch(4, 8);
  const auto& nl = d.netlist;
  ASSERT_TRUE(nl.check().ok);
  Simulator sim(nl);
  // Port 2 sends 0xAB to output 1; others idle.
  for (int p = 0; p < 4; ++p) {
    const std::string pn = "p" + std::to_string(p) + "_";
    drive_bus(sim, nl, pn + "data", p == 2 ? 0xAB : 0x00);
    drive_bus(sim, nl, pn + "dest", 1);
    drive_bus(sim, nl, pn + "offset", 0);
    drive_pin(sim, nl, pn + "valid", p == 2);
  }
  sim.eval(); sim.step();  // ingress latch
  sim.eval(); sim.step();  // switch + egress latch
  sim.eval();
  EXPECT_EQ(read_bus_outputs(sim, nl, "out1_data"), 0xABu);
  for (std::size_t o = 0; o < nl.outputs().size(); ++o)
    if (nl.name_of(nl.outputs()[o]) == "out1_valid") EXPECT_TRUE(sim.output(o));
}

TEST(Designs, FirewireRegisterFileReadsBack) {
  const auto d = make_firewire(4, 8);
  const auto& nl = d.netlist;
  ASSERT_TRUE(nl.check().ok);
  Simulator sim(nl);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) sim.set_input(i, false);
  drive_bus(sim, nl, "wr_data", 0x5C);
  drive_bus(sim, nl, "addr", 2);
  drive_pin(sim, nl, "wr_en", true);
  sim.eval(); sim.step();  // inputs latch
  sim.eval(); sim.step();  // register file writes
  drive_pin(sim, nl, "wr_en", false);
  sim.eval(); sim.step();  // read mux output latches
  sim.eval();
  EXPECT_EQ(read_bus_outputs(sim, nl, "rd_data"), 0x5Cu);
}

TEST(Designs, CharacterMatchesPaper) {
  // Firewire must be sequential-dominated relative to the datapath designs.
  const auto fw = make_firewire(8, 8);
  const auto alu = make_alu(8);
  const auto fw_frac = fw.netlist.stats().sequential_fraction();
  const auto alu_frac = alu.netlist.stats().sequential_fraction();
  EXPECT_GT(fw_frac, 2.0 * alu_frac);
  EXPECT_GT(fw_frac, 0.25);
  EXPECT_FALSE(fw.datapath_dominated);
  EXPECT_TRUE(alu.datapath_dominated);
}

TEST(Designs, PaperSuiteScalesAndChecks) {
  const auto suite = paper_suite(0.25);
  ASSERT_EQ(suite.size(), 4u);
  for (const auto& d : suite) {
    EXPECT_TRUE(d.netlist.check().ok) << d.netlist.name();
    EXPECT_GT(d.clock_period_ps, 0.0);
  }
  // Paper order: ALU, Firewire, FPU, Network switch.
  EXPECT_NE(suite[0].netlist.name().find("alu"), std::string::npos);
  EXPECT_NE(suite[1].netlist.name().find("firewire"), std::string::npos);
  EXPECT_NE(suite[2].netlist.name().find("fpu"), std::string::npos);
  EXPECT_NE(suite[3].netlist.name().find("netswitch"), std::string::npos);
}

TEST(Designs, PaperScaleGateCounts) {
  // The full-scale FPU and switch should be in the paper's size class
  // (24k / 80k NAND2 equivalents; we accept the right order of magnitude).
  const auto fpu = make_fpu(8, 23, 4);  // the paper_suite configuration
  const double fpu_gates = fpu.netlist.stats().nand2_equiv;
  EXPECT_GT(fpu_gates, 12000);
  EXPECT_LT(fpu_gates, 60000);
  const auto sw = make_network_switch();
  const double sw_gates = sw.netlist.stats().nand2_equiv;
  EXPECT_GT(sw_gates, 30000);
  EXPECT_LT(sw_gates, 160000);
}

}  // namespace
}  // namespace vpga::designs
