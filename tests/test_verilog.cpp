// Tests for the structural Verilog exporter.

#include "netlist/verilog.hpp"

#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "synth/mapper.hpp"

namespace vpga::netlist {
namespace {

TEST(Verilog, IdentifierSanitization) {
  EXPECT_EQ(verilog_identifier("a[3]", "x"), "a_3_");
  EXPECT_EQ(verilog_identifier("", "n42"), "n42");
  EXPECT_EQ(verilog_identifier("3state", "x"), "n3state");
  EXPECT_EQ(verilog_identifier("ok_name", "x"), "ok_name");
}

TEST(Verilog, CombinationalModuleShape) {
  Netlist nl("tiny");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  nl.add_output(nl.add_xor(a, b), "y");
  const auto v = to_verilog(nl);
  EXPECT_NE(v.find("module tiny ("), std::string::npos);
  EXPECT_NE(v.find("input a;"), std::string::npos);
  EXPECT_NE(v.find("output y;"), std::string::npos);
  EXPECT_NE(v.find("a ^ b"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // No clock port in a combinational module.
  EXPECT_EQ(v.find("clk"), std::string::npos);
}

TEST(Verilog, SequentialModuleHasClockAndAlways) {
  const auto nl = designs::make_counter(4);
  const auto v = to_verilog(nl);
  EXPECT_NE(v.find("input clk;"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("<="), std::string::npos);
  EXPECT_NE(v.find("reg "), std::string::npos);
}

TEST(Verilog, SopForThreeInputFunctions) {
  Netlist nl("sop");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto c = nl.add_input("c");
  nl.add_output(nl.add_maj(a, b, c), "m");
  const auto v = to_verilog(nl);
  // maj has four one-rows -> four product terms.
  std::size_t terms = 0;
  for (std::size_t at = v.find("(~"); at != std::string::npos; at = v.find("(~", at + 1)) ++terms;
  EXPECT_NE(v.find(" | "), std::string::npos);
  EXPECT_NE(v.find("(a & b & ~c)"), std::string::npos);
}

TEST(Verilog, AnnotatesMappedCells) {
  const auto src = designs::make_ripple_adder(4);
  const auto mapped = synth::tech_map(src, synth::cell_target(core::PlbArchitecture::granular()),
                                      synth::Objective::kDelay);
  const auto v = to_verilog(mapped.netlist);
  EXPECT_NE(v.find("// cell:"), std::string::npos);
}

TEST(Verilog, UniqueNamesUnderCollision) {
  Netlist nl("dup");
  const auto a = nl.add_input("x");
  const auto g = nl.add_comb(logic::TruthTable(1, 0b01), {a}, "x");  // collides with input
  nl.add_output(g, "x_out");
  const auto v = to_verilog(nl);
  EXPECT_NE(v.find("x_1"), std::string::npos);
}

TEST(Verilog, ConstantsEmitted) {
  Netlist nl("konst");
  const auto one = nl.add_constant(true);
  nl.add_output(one, "y");
  const auto v = to_verilog(nl);
  EXPECT_NE(v.find("1'b1"), std::string::npos);
}

TEST(Verilog, FileSave) {
  const auto nl = designs::make_lfsr(6, 0b101000);
  EXPECT_TRUE(save_verilog("/tmp/vpga_test.v", nl));
  EXPECT_FALSE(save_verilog("/no/such/dir/x.v", nl));
}

}  // namespace
}  // namespace vpga::netlist
