// Integration golden tests: end-to-end invariants that pin the reproduced
// paper results (exact where the result is combinatorial, banded where it
// depends on calibrated physics).

#include <gtest/gtest.h>

#include "core/arch_io.hpp"
#include "core/fa_packing.hpp"
#include "flow/flow.hpp"
#include "logic/npn.hpp"
#include "logic/s3.hpp"

namespace vpga {
namespace {

TEST(Golden, PaperCombinatorialResults) {
  // These five numbers ARE the paper's Section 2; they must never drift.
  const auto s3 = logic::analyze_s3();
  EXPECT_EQ(logic::count(s3.feasible), 196);
  EXPECT_EQ(s3.category_count[static_cast<int>(logic::S3Category::kCofactorXor)], 28);
  EXPECT_EQ(s3.category_count[static_cast<int>(logic::S3Category::kCofactorXnor)], 28);
  EXPECT_EQ(logic::count(logic::modified_s3_set3()), 256);
  EXPECT_EQ(core::plan_full_adder(core::PlbArchitecture::granular()).plbs, 1);
  EXPECT_EQ(core::plan_full_adder(core::PlbArchitecture::lut_based()).plbs, 2);
  EXPECT_EQ(logic::npn_classes().size(), 14u);
}

TEST(Golden, ArchitectureCalibration) {
  const auto g = core::PlbArchitecture::granular();
  const auto l = core::PlbArchitecture::lut_based();
  EXPECT_NEAR(g.tile_area_um2 / l.tile_area_um2, 1.20, 0.01);   // paper C11
  EXPECT_NEAR(g.comb_area_um2 / l.comb_area_um2, 1.266, 0.01);  // paper §3.2
}

TEST(Golden, DatapathDirectionHolds) {
  // The headline Table-1/2 directions on a scaled ALU, as a regression gate:
  // granular flow b must be smaller and faster than LUT flow b.
  const auto d = designs::make_alu(16);
  const auto g = flow::run_flow(d, core::PlbArchitecture::granular(), 'b');
  const auto l = flow::run_flow(d, core::PlbArchitecture::lut_based(), 'b');
  EXPECT_LT(g.die_area_um2, l.die_area_um2);
  EXPECT_LT(g.critical_delay_ps, l.critical_delay_ps);
  // And both flows pay for regularity relative to flow a.
  const auto ga = flow::run_flow(d, core::PlbArchitecture::granular(), 'a');
  EXPECT_GT(g.die_area_um2, ga.die_area_um2);
}

TEST(Golden, SequentialDirectionHolds) {
  const auto d = designs::make_firewire(8, 8);
  const auto g = flow::run_flow(d, core::PlbArchitecture::granular(), 'b');
  const auto l = flow::run_flow(d, core::PlbArchitecture::lut_based(), 'b');
  // The granular PLB loses its advantage on sequential-dominated logic.
  EXPECT_GT(g.die_area_um2, 0.95 * l.die_area_um2);
}

TEST(Golden, RippleAdderOnePlbPerBit) {
  // Section 2.2 end to end, exact: a 24-bit ripple adder legalizes into
  // exactly 24 granular PLBs (one FA macro each).
  designs::BenchmarkDesign d{designs::make_ripple_adder(24), 8000.0, true};
  const auto r = flow::run_flow(d, core::PlbArchitecture::granular(), 'b');
  EXPECT_EQ(r.plbs, 24);
  EXPECT_EQ(r.compaction.config_histogram[static_cast<int>(core::ConfigKind::kFullAdder)],
            24);
}

TEST(Golden, StockArchitecturesRoundTripThroughFilesIntoFlow) {
  // Parsing a serialized architecture and running the flow must give exactly
  // the built-in architecture's result (determinism + faithful IO).
  const auto d = designs::make_alu(8);
  const auto direct = flow::run_flow(d, core::PlbArchitecture::granular(), 'b');
  const auto parsed =
      core::parse_architecture(core::architecture_to_string(core::PlbArchitecture::granular()));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto via_file = flow::run_flow(d, parsed.arch, 'b');
  EXPECT_DOUBLE_EQ(direct.die_area_um2, via_file.die_area_um2);
  EXPECT_DOUBLE_EQ(direct.avg_slack_top10_ps, via_file.avg_slack_top10_ps);
  EXPECT_EQ(direct.plbs, via_file.plbs);
}

}  // namespace
}  // namespace vpga
