// Tests for the PLB configuration table (Section 2.3 of the paper).

#include "core/config.hpp"

#include <gtest/gtest.h>

#include "logic/s3.hpp"
#include "logic/truth_table.hpp"

namespace vpga::core {
namespace {

using logic::tt3::maj3;
using logic::tt3::xor3;

std::uint8_t bits(const logic::TruthTable& t) { return static_cast<std::uint8_t>(t.bits()); }

TEST(Config, TableHasAllKinds) {
  const auto& specs = config_specs();
  for (int i = 0; i < kNumConfigKinds; ++i)
    EXPECT_EQ(specs[static_cast<std::size_t>(i)].kind, static_cast<ConfigKind>(i));
}

TEST(Config, MxCoverageIsMuxSet) {
  EXPECT_EQ(config_spec(ConfigKind::kMx).coverage, logic::mux2_set3());
}

TEST(Config, Nd3CoverageIsNd3wiSet) {
  EXPECT_EQ(config_spec(ConfigKind::kNd3).coverage, logic::nd3wi_set3());
}

TEST(Config, NdmxIsSupersetOfMxAndNd2) {
  const auto& ndmx = config_spec(ConfigKind::kNdmx).coverage;
  for (int f = 0; f < 256; ++f) {
    if (logic::mux2_set3().test(static_cast<std::size_t>(f)))
      EXPECT_TRUE(ndmx.test(static_cast<std::size_t>(f))) << f;
    if (logic::nd2wi_set3().test(static_cast<std::size_t>(f)))
      EXPECT_TRUE(ndmx.test(static_cast<std::size_t>(f))) << f;
  }
  EXPECT_GT(ndmx.count(), logic::mux2_set3().count());
}

TEST(Config, NdmxLimitsAndXoandmxCompleteness) {
  const auto& ndmx = config_spec(ConfigKind::kNdmx).coverage;
  const auto& xoamx = config_spec(ConfigKind::kXoamx).coverage;
  const auto& xoandmx = config_spec(ConfigKind::kXoandmx).coverage;
  // XOR-type cofactors put xor3 out of NDMX's reach (its driver is a NAND).
  EXPECT_FALSE(ndmx.test(bits(xor3())));
  // maj3 = MUX(a xor b; a, c): the XOA-driven mux realizes it in one config —
  // exactly the carry-propagate trick of Section 2.2.
  EXPECT_TRUE(xoamx.test(bits(maj3())));
  EXPECT_TRUE(xoandmx.test(bits(maj3())));
  EXPECT_TRUE(ndmx.test(bits(logic::tt3::nand3())));
  // XOANDMX strictly extends XOAMX.
  EXPECT_EQ((xoamx & ~xoandmx).count(), 0u);
  EXPECT_GT(xoandmx.count(), xoamx.count());
}

TEST(Config, XoamxCoversXor3) {
  // XOAMX = MUX fed by the XOA: select = a xor b from the XOA, data = c', c.
  const auto& xoamx = config_spec(ConfigKind::kXoamx).coverage;
  EXPECT_TRUE(xoamx.test(bits(xor3())));
  EXPECT_TRUE(xoamx.test(bits(logic::tt3::xnor3())));
}

TEST(Config, XoandmxCoversAll256) {
  EXPECT_EQ(config_spec(ConfigKind::kXoandmx).coverage.count(), 256u);
  EXPECT_EQ(config_spec(ConfigKind::kXoandmx).coverage, logic::modified_s3_set3());
}

TEST(Config, Lut3CoversAll256) {
  EXPECT_EQ(config_spec(ConfigKind::kLut3).coverage.count(), 256u);
}

TEST(Config, GranularConfigsAreFasterThanLut3) {
  // The heart of the paper's performance claim: every granular configuration
  // beats the 3-LUT at realistic loads.
  const double load = 3.0;
  const double lut = config_spec(ConfigKind::kLut3).arc.delay(load);
  for (auto k : {ConfigKind::kMx, ConfigKind::kNd3, ConfigKind::kNdmx,
                 ConfigKind::kXoamx, ConfigKind::kXoandmx})
    EXPECT_LT(config_spec(k).arc.delay(load), lut) << to_string(k);
}

TEST(Config, GranularConfigsAreDenserThanLut3) {
  // "several 3-input functions can be implemented with logic configurations
  // that are faster and denser than a 3-input LUT" — the common
  // configurations beat the LUT on area; the rare three-gate XOANDMX
  // catch-all is exempt (it trades density for complete coverage).
  const double lut = config_spec(ConfigKind::kLut3).mapped_area_um2;
  for (auto k : {ConfigKind::kMx, ConfigKind::kNd3, ConfigKind::kNdmx, ConfigKind::kXoamx})
    EXPECT_LT(config_spec(k).mapped_area_um2, lut) << to_string(k);
}

TEST(Config, FootprintsMatchPaperStructure) {
  EXPECT_EQ(config_spec(ConfigKind::kMx).needs.size(), 1u);
  EXPECT_EQ(config_spec(ConfigKind::kNd3).needs.size(), 1u);
  EXPECT_EQ(config_spec(ConfigKind::kNdmx).needs.size(), 2u);
  EXPECT_EQ(config_spec(ConfigKind::kXoamx).needs.size(), 2u);
  EXPECT_EQ(config_spec(ConfigKind::kXoandmx).needs.size(), 3u);
  EXPECT_EQ(config_spec(ConfigKind::kFullAdder).needs.size(), 4u);
}

TEST(Config, MxRunsOnPlainMuxOrXoa) {
  const auto cls = config_spec(ConfigKind::kMx).needs[0];
  EXPECT_TRUE(class_accepts(cls, PlbComponent::kMux));
  EXPECT_TRUE(class_accepts(cls, PlbComponent::kXoa));
  EXPECT_FALSE(class_accepts(cls, PlbComponent::kNd3));
}

TEST(Config, NdmxDriverMayBeNdOrXoa) {
  // "two NDMX functions can be packed into a single PLB. In this
  // configuration, one of the NDMX functions must be packed as an XOAMX."
  const auto driver = config_spec(ConfigKind::kNdmx).needs[0];
  EXPECT_TRUE(class_accepts(driver, PlbComponent::kNd3));
  EXPECT_TRUE(class_accepts(driver, PlbComponent::kXoa));
}

TEST(Config, CompositeArcsExceedSingleStage) {
  EXPECT_GT(config_spec(ConfigKind::kNdmx).arc.intrinsic_ps,
            config_spec(ConfigKind::kMx).arc.intrinsic_ps);
  EXPECT_GT(config_spec(ConfigKind::kXoandmx).arc.intrinsic_ps,
            config_spec(ConfigKind::kXoamx).arc.intrinsic_ps - 1e-9);
}

TEST(Config, NamesAreStable) {
  EXPECT_STREQ(to_string(ConfigKind::kXoandmx), "XOANDMX");
  EXPECT_STREQ(to_string(PlbComponent::kXoa), "XOA");
}

}  // namespace
}  // namespace vpga::core
