// Tests for bit-parallel simulation and exhaustive equivalence checking.

#include "netlist/bitsim.hpp"

#include <gtest/gtest.h>

#include "compact/compact.hpp"
#include "designs/designs.hpp"
#include "synth/mapper.hpp"

namespace vpga::netlist {
namespace {

TEST(BitSim, MatchesScalarTruth) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto c = nl.add_input("c");
  nl.add_output(nl.add_xor3(a, b, c), "x");
  nl.add_output(nl.add_maj(a, b, c), "m");
  BitSimulator sim(nl);
  // Lanes: a alternates every bit, b every 2, c every 4.
  sim.set_input(0, 0xAAAAAAAAAAAAAAAAULL);
  sim.set_input(1, 0xCCCCCCCCCCCCCCCCULL);
  sim.set_input(2, 0xF0F0F0F0F0F0F0F0ULL);
  sim.eval();
  for (int lane = 0; lane < 8; ++lane) {
    const int av = lane & 1, bv = (lane >> 1) & 1, cv = (lane >> 2) & 1;
    EXPECT_EQ((sim.output(0) >> lane) & 1,
              static_cast<std::uint64_t>((av + bv + cv) & 1));
    EXPECT_EQ((sim.output(1) >> lane) & 1,
              static_cast<std::uint64_t>(av + bv + cv >= 2 ? 1 : 0));
  }
}

TEST(BitSim, ConstantsPropagate) {
  Netlist nl;
  const auto one = nl.add_constant(true);
  const auto a = nl.add_input("a");
  nl.add_output(nl.add_and(a, one), "y");
  BitSimulator sim(nl);
  sim.set_input(0, 0x123456789ABCDEF0ULL);
  sim.eval();
  EXPECT_EQ(sim.output(0), 0x123456789ABCDEF0ULL);
}

TEST(BitSim, NextStateReadsDffDInputs) {
  const auto nl = designs::make_counter(4);
  BitSimulator sim(nl);
  // State = 0b0101 per lane 0; enable on.
  sim.set_input(0, ~std::uint64_t{0});
  for (int d = 0; d < 4; ++d) sim.set_state(static_cast<std::size_t>(d), (5 >> d) & 1 ? ~0ULL : 0);
  sim.eval();
  // next = 6 = 0b0110.
  for (int d = 0; d < 4; ++d)
    EXPECT_EQ(sim.next_state(static_cast<std::size_t>(d)) & 1,
              static_cast<std::uint64_t>((6 >> d) & 1));
}

TEST(Exhaustive, AdderStylesProvablyEquivalent) {
  // 8+8+1 = 17 inputs: 2^17 patterns, proved exhaustively.
  const auto ripple = designs::make_ripple_adder(8);
  const auto prefix = designs::make_prefix_adder(8);
  const auto csel = designs::make_carry_select_adder(8, 3);
  EXPECT_TRUE(exhaustive_equivalent(ripple, prefix));
  EXPECT_TRUE(exhaustive_equivalent(ripple, csel));
}

TEST(Exhaustive, MappedAdderProvablyEquivalent) {
  const auto src = designs::make_ripple_adder(8);
  for (const auto& arch :
       {core::PlbArchitecture::granular(), core::PlbArchitecture::lut_based()}) {
    const auto mapped =
        synth::tech_map(src, synth::cell_target(arch), synth::Objective::kDelay);
    EXPECT_TRUE(exhaustive_equivalent(src, mapped.netlist)) << arch.name;
    const auto comp = compact::compact_from(src, mapped.netlist, arch);
    EXPECT_TRUE(exhaustive_equivalent(src, comp.netlist)) << arch.name;
  }
}

TEST(Exhaustive, DetectsSingleMintermDifference) {
  Netlist n1, n2;
  {
    const auto a = n1.add_input("a");
    const auto b = n1.add_input("b");
    const auto c = n1.add_input("c");
    n1.add_output(n1.add_comb(logic::TruthTable(3, 0x96), {a, b, c}), "y");
  }
  {
    const auto a = n2.add_input("a");
    const auto b = n2.add_input("b");
    const auto c = n2.add_input("c");
    n2.add_output(n2.add_comb(logic::TruthTable(3, 0x97), {a, b, c}), "y");  // one row off
  }
  EXPECT_FALSE(exhaustive_equivalent(n1, n2));
}

TEST(Exhaustive, RefusesOversizedOrMismatched) {
  const auto big = designs::make_ripple_adder(16);   // 33 inputs
  const auto small = designs::make_ripple_adder(8);  // 17 inputs
  EXPECT_FALSE(exhaustive_equivalent(big, big, /*max_inputs=*/22));
  EXPECT_FALSE(exhaustive_equivalent(big, small));
}

TEST(Exhaustive, TinyInterfaceWorks) {
  Netlist n1, n2;
  {
    const auto a = n1.add_input("a");
    n1.add_output(n1.add_not(n1.add_not(a)), "y");
  }
  {
    const auto a = n2.add_input("a");
    n2.add_output(n2.add_buf(a), "y");
  }
  EXPECT_TRUE(exhaustive_equivalent(n1, n2));
}

}  // namespace
}  // namespace vpga::netlist
