// Unit and property tests for vpga::logic::TruthTable.

#include "logic/truth_table.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace vpga::logic {
namespace {

TEST(TruthTable, ConstantsHaveExpectedBits) {
  EXPECT_EQ(TruthTable::constant(3, false).bits(), 0u);
  EXPECT_EQ(TruthTable::constant(3, true).bits(), 0xFFu);
  EXPECT_EQ(TruthTable::constant(2, true).bits(), 0xFu);
}

TEST(TruthTable, VarProjectionMatchesRowBits) {
  for (int v = 0; v < 3; ++v) {
    const auto t = TruthTable::var(3, v);
    for (unsigned r = 0; r < 8; ++r) EXPECT_EQ(t.eval(r), ((r >> v) & 1u) != 0) << v << " " << r;
  }
}

TEST(TruthTable, KnownTruthTables) {
  EXPECT_EQ(tt3::xor3().bits(), 0x96u);
  EXPECT_EQ(tt3::xnor3().bits(), 0x69u);
  EXPECT_EQ(tt3::maj3().bits(), 0xE8u);
  EXPECT_EQ(tt3::nand3().bits(), 0x7Fu);
}

TEST(TruthTable, MuxConvention) {
  // tt3::mux(): c selects between a (c=0) and b (c=1).
  const auto m = tt3::mux();
  for (unsigned r = 0; r < 8; ++r) {
    const bool a = r & 1u, b = (r >> 1) & 1u, c = (r >> 2) & 1u;
    EXPECT_EQ(m.eval(r), c ? b : a);
  }
}

TEST(TruthTable, OperatorsArePointwise) {
  const auto a = tt3::a(), b = tt3::b();
  EXPECT_EQ((a & b).bits(), 0x88u);
  EXPECT_EQ((a | b).bits(), 0xEEu);
  EXPECT_EQ((a ^ b).bits(), 0x66u);
  EXPECT_EQ((~a).bits(), 0x55u);
}

TEST(TruthTable, DependsOnDetectsSupport) {
  const auto f = tt3::a() ^ tt3::b();  // ignores c
  EXPECT_TRUE(f.depends_on(0));
  EXPECT_TRUE(f.depends_on(1));
  EXPECT_FALSE(f.depends_on(2));
  EXPECT_EQ(f.support_size(), 2);
  EXPECT_EQ(TruthTable::constant(3, true).support_size(), 0);
  EXPECT_EQ(tt3::maj3().support_size(), 3);
}

TEST(TruthTable, RestrictKeepsArity) {
  const auto f = tt3::maj3();
  const auto f0 = f.restrict_var(2, false);  // maj(a,b,0) = a&b
  const auto f1 = f.restrict_var(2, true);   // maj(a,b,1) = a|b
  EXPECT_EQ(f0, tt3::a() & tt3::b());
  EXPECT_EQ(f1, tt3::a() | tt3::b());
  EXPECT_FALSE(f0.depends_on(2));
}

TEST(TruthTable, CofactorDropsVariable) {
  const auto f = tt3::maj3();
  const auto g = f.cofactor(2, false);
  EXPECT_EQ(g.num_vars(), 2);
  EXPECT_EQ(g.bits(), 0x8u);  // a & b over 2 vars
  const auto h = f.cofactor(2, true);
  EXPECT_EQ(h.bits(), 0xEu);  // a | b
}

TEST(TruthTable, CofactorOfMiddleVariableKeepsOrder) {
  // f = b (projection of x1 in 3 vars); cofactor on x1 yields constants.
  const auto f = tt3::b();
  EXPECT_EQ(f.cofactor(1, false), TruthTable::constant(2, false));
  EXPECT_EQ(f.cofactor(1, true), TruthTable::constant(2, true));
  // f = c; after dropping x1, c becomes the new x1.
  const auto g = tt3::c().cofactor(1, false);
  EXPECT_EQ(g, TruthTable::var(2, 1));
}

TEST(TruthTable, ShannonExpansionIdentity) {
  common::Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    const TruthTable f(3, rng.next_u64() & 0xFF);
    for (int v = 0; v < 3; ++v) {
      const auto x = TruthTable::var(3, v);
      const auto expanded = (~x & f.restrict_var(v, false)) | (x & f.restrict_var(v, true));
      EXPECT_EQ(expanded, f);
    }
  }
}

TEST(TruthTable, PermuteRotatesVariables) {
  // perm maps new var i -> old var perm[i]; rotating (a,b,c) -> (b,c,a).
  const auto f = tt3::a() & ~tt3::c();
  std::array<int, TruthTable::kMaxVars> perm{1, 2, 0, 3, 4, 5};
  const auto g = f.permute(perm);
  // g(x) = f(y) where old variable perm[v] takes new variable v's value.
  for (unsigned r = 0; r < 8; ++r) {
    unsigned src = 0;
    for (int v = 0; v < 3; ++v)
      if (r & (1u << v)) src |= 1u << perm[static_cast<std::size_t>(v)];
    EXPECT_EQ(g.eval(r), f.eval(src));
  }
}

TEST(TruthTable, NegateVarIsInvolution) {
  common::Rng rng(11);
  for (int iter = 0; iter < 100; ++iter) {
    const TruthTable f(4, rng.next_u64() & 0xFFFF);
    for (int v = 0; v < 4; ++v) EXPECT_EQ(f.negate_var(v).negate_var(v), f);
  }
}

TEST(TruthTable, NegateVarMatchesSubstitution) {
  const auto f = tt3::a() & tt3::b();
  EXPECT_EQ(f.negate_var(0), ~tt3::a() & tt3::b());
}

TEST(TruthTable, ExtendAddsDontCares) {
  const auto f2 = TruthTable(2, 0x6);  // xor(a,b)
  const auto f3 = f2.extend(3);
  EXPECT_EQ(f3.num_vars(), 3);
  EXPECT_EQ(f3, tt3::a() ^ tt3::b());
  EXPECT_FALSE(f3.depends_on(2));
}

TEST(TruthTable, ToStringRowZeroFirst) {
  EXPECT_EQ(tt3::xor3().to_string(), "01101001");
  EXPECT_EQ(TruthTable(2, 0x8).to_string(), "0001");
}

TEST(TruthTable, SixVariableMaskIsFullWord) {
  const auto t = TruthTable::constant(6, true);
  EXPECT_EQ(t.bits(), ~std::uint64_t{0});
  EXPECT_EQ(t.num_rows(), 64);
}

}  // namespace
}  // namespace vpga::logic
