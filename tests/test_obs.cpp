// Tests for src/obs/: span nesting and trace export, metrics math, the
// zero-overhead disabled path, the JSON parser, and the flow-level contract
// that every stage of either flow records exactly the expected spans.

#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "designs/designs.hpp"
#include "flow/flow.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/memtrack.hpp"

namespace vpga::obs {
namespace {

// --- Spans and trace export -------------------------------------------------

TEST(Span, RecordsNestingDepthAndOrder) {
  ObsContext ctx(/*trace=*/true, /*metrics=*/false);
  {
    const ScopedObs bind(&ctx);
    const Span outer("outer");
    {
      const Span inner_a("inner_a");
    }
    {
      const Span inner_b("inner_b");
      const Span leaf("leaf");
    }
  }
  const ObsReport rep = ctx.report();
  ASSERT_EQ(rep.spans.size(), 4u);
  // Sorted by start time: outer first despite closing last.
  EXPECT_EQ(rep.spans[0].name, "outer");
  EXPECT_EQ(rep.spans[0].depth, 0);
  EXPECT_EQ(rep.spans[1].name, "inner_a");
  EXPECT_EQ(rep.spans[1].depth, 1);
  EXPECT_EQ(rep.spans[2].name, "inner_b");
  EXPECT_EQ(rep.spans[2].depth, 1);
  EXPECT_EQ(rep.spans[3].name, "leaf");
  EXPECT_EQ(rep.spans[3].depth, 2);
  // Children are contained in their parents.
  for (int child : {1, 2}) {
    EXPECT_GE(rep.spans[child].start_us, rep.spans[0].start_us);
    EXPECT_LE(rep.spans[child].start_us + rep.spans[child].dur_us,
              rep.spans[0].start_us + rep.spans[0].dur_us);
  }
  EXPECT_EQ(rep.span_count("inner_a"), 1);
  EXPECT_TRUE(rep.has_span("leaf"));
  EXPECT_FALSE(rep.has_span("nonexistent"));
}

TEST(Span, ChromeTraceJsonParsesBack) {
  ObsContext ctx(true, false);
  {
    const ScopedObs bind(&ctx);
    const Span outer("outer \"quoted\"\n");
    const Span inner("inner");
  }
  const std::string trace = ctx.report().chrome_trace_json();
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(trace, v, &err)) << err << "\n" << trace;
  ASSERT_TRUE(v.is_object());
  const json::Value* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  const json::Value& first = events->array[0];
  EXPECT_EQ(first.find("name")->string, "outer \"quoted\"\n");
  EXPECT_EQ(first.find("ph")->string, "X");
  EXPECT_GE(first.find("dur")->number, 0.0);
  EXPECT_EQ(first.find("args")->find("depth")->number, 0.0);
  EXPECT_EQ(events->array[1].find("args")->find("depth")->number, 1.0);
}

TEST(Span, NoContextIsANoOp) {
  // Must not crash nor record anything, with or without a disabled context.
  const Span orphan("orphan");
  count("orphan.counter");
  ObsContext ctx(false, false);
  const ScopedObs bind(&ctx);
  const Span disabled("disabled");
  count("disabled.counter", 5);
  const ObsReport rep = ctx.report();
  EXPECT_TRUE(rep.spans.empty());
  EXPECT_TRUE(rep.counters.empty());
}

TEST(Span, ScopedObsRestoresPreviousBinding) {
  ObsContext outer_ctx(true, false);
  const ScopedObs outer_bind(&outer_ctx);
  {
    ObsContext inner_ctx(true, false);
    const ScopedObs inner_bind(&inner_ctx);
    EXPECT_EQ(current(), &inner_ctx);
  }
  EXPECT_EQ(current(), &outer_ctx);
}

// --- Metrics ----------------------------------------------------------------

TEST(Metrics, CountersAccumulateAndGaugesKeepLatest) {
  ObsContext ctx(false, true);
  const ScopedObs bind(&ctx);
  count("c.hits");
  count("c.hits", 4);
  count("c.other", 2);
  gauge("g.v", 1.5);
  gauge("g.v", 2.5);
  const ObsReport rep = ctx.report();
  EXPECT_EQ(rep.counter("c.hits"), 5);
  EXPECT_EQ(rep.counter("c.other"), 2);
  EXPECT_EQ(rep.counter("absent"), 0);
  ASSERT_EQ(rep.gauges.size(), 1u);
  EXPECT_EQ(rep.gauges[0].first, "g.v");
  EXPECT_DOUBLE_EQ(rep.gauges[0].second, 2.5);
}

TEST(Metrics, HistogramTracksCountSumMinMaxAndBuckets) {
  ObsContext ctx(false, true);
  const ScopedObs bind(&ctx);
  for (double v : {0.5, 1.0, 3.0, 1000.0}) observe("h", v);
  const ObsReport rep = ctx.report();
  const HistogramData* h = rep.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4);
  EXPECT_DOUBLE_EQ(h->sum, 1004.5);
  EXPECT_DOUBLE_EQ(h->min, 0.5);
  EXPECT_DOUBLE_EQ(h->max, 1000.0);
  ASSERT_EQ(static_cast<int>(h->buckets.size()), kHistogramBuckets);
  EXPECT_EQ(h->buckets[histogram_bucket(0.5)], 2);    // 0.5 and 1.0 share bucket 0
  EXPECT_EQ(h->buckets[histogram_bucket(3.0)], 1);    // 2 < 3 <= 4
  EXPECT_EQ(h->buckets[histogram_bucket(1000.0)], 1); // 512 < 1000 <= 1024
  long long total = 0;
  for (long long b : h->buckets) total += b;
  EXPECT_EQ(total, h->count);
}

TEST(Metrics, HistogramBucketMath) {
  EXPECT_EQ(histogram_bucket(0.0), 0);
  EXPECT_EQ(histogram_bucket(1.0), 0);
  EXPECT_EQ(histogram_bucket(1.5), 1);
  EXPECT_EQ(histogram_bucket(2.0), 1);
  EXPECT_EQ(histogram_bucket(2.1), 2);
  EXPECT_EQ(histogram_bucket(4.0), 2);
  EXPECT_EQ(histogram_bucket(1e30), kHistogramBuckets - 1);
  EXPECT_DOUBLE_EQ(histogram_bucket_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(histogram_bucket_bound(3), 8.0);
}

TEST(Metrics, RegistryIsThreadSafe) {
  ObsContext ctx(false, true);
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&ctx] {
      const ScopedObs bind(&ctx);
      for (int i = 0; i < kIncrements; ++i) count("shared");
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(ctx.report().counter("shared"), kThreads * kIncrements);
}

TEST(Metrics, MetricsJsonParsesBack) {
  ObsContext ctx(false, true);
  const ScopedObs bind(&ctx);
  count("runs", 3);
  gauge("peak", 0.75);
  observe("sizes", 10.0);
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(ctx.report().metrics_json(), v, &err)) << err;
  EXPECT_EQ(v.find("counters")->find("runs")->number, 3.0);
  EXPECT_DOUBLE_EQ(v.find("gauges")->find("peak")->number, 0.75);
  const json::Value* h = v.find("histograms")->find("sizes");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->number, 1.0);
  EXPECT_EQ(h->find("buckets")->array.size(), static_cast<std::size_t>(kHistogramBuckets));
}

// --- JSON string escapes: UTF-16 surrogate pairs ----------------------------
// The parser decodes \uD800-\uDBFF + \uDC00-\uDFFF pairs into one
// supplementary-plane code point and rejects lone halves (json.cpp).

TEST(Json, SurrogatePairDecodesToSupplementaryPlaneUtf8) {
  json::Value v;
  std::string err;
  // U+1D11E MUSICAL SYMBOL G CLEF = F0 9D 84 9E in UTF-8.
  ASSERT_TRUE(json::parse(R"("\uD834\uDD1E")", v, &err)) << err;
  EXPECT_EQ(v.string, "\xF0\x9D\x84\x9E");

  // Boundary pair: U+10000, the first supplementary code point.
  ASSERT_TRUE(json::parse(R"("\uD800\uDC00")", v, &err)) << err;
  EXPECT_EQ(v.string, "\xF0\x90\x80\x80");

  // Boundary pair: U+10FFFF, the last code point.
  ASSERT_TRUE(json::parse(R"("\uDBFF\uDFFF")", v, &err)) << err;
  EXPECT_EQ(v.string, "\xF4\x8F\xBF\xBF");
}

TEST(Json, LoneSurrogatesAreRejected) {
  json::Value v;
  std::string err;
  // High surrogate at end of string.
  EXPECT_FALSE(json::parse(R"("\uD834")", v, &err));
  EXPECT_NE(err.find("unpaired high surrogate"), std::string::npos);
  // High surrogate followed by a non-\u escape.
  EXPECT_FALSE(json::parse(R"("\uD834\n")", v, &err));
  // High surrogate followed by an ordinary character.
  EXPECT_FALSE(json::parse(R"("\uD834x")", v, &err));
  // Two high surrogates in a row (second half must be in DC00-DFFF).
  EXPECT_FALSE(json::parse(R"("\uD834\uD834")", v, &err));
  EXPECT_NE(err.find("invalid low surrogate"), std::string::npos);
  // Low surrogate with no preceding high half.
  EXPECT_FALSE(json::parse(R"("\uDD1E")", v, &err));
  EXPECT_NE(err.find("unpaired low surrogate"), std::string::npos);
}

TEST(Json, BasicPlaneEscapesStillDecodeDirectly) {
  json::Value v;
  std::string err;
  // Just below the surrogate range: U+D7FF, and just above: U+E000.
  ASSERT_TRUE(json::parse(R"("\uD7FF\uE000")", v, &err)) << err;
  EXPECT_EQ(v.string, "\xED\x9F\xBF\xEE\x80\x80");
}

// --- Shortest round-trip double formatting ----------------------------------
// json::format_double must print the shortest decimal string that strtods
// back to the exact same bits — "0.15", never "0.14999999999999999".

TEST(Json, FormatDoubleIsShortestRoundTrip) {
  EXPECT_EQ(json::format_double(0.15), "0.15");
  EXPECT_EQ(json::format_double(0.1), "0.1");
  EXPECT_EQ(json::format_double(0.0), "0");
  EXPECT_EQ(json::format_double(-2.5), "-2.5");
  EXPECT_EQ(json::format_double(1e30), "1e+30");
  // Values with no short representation still round-trip exactly.
  for (double v : {1.0 / 3.0, 2.0 / 7.0, 0.1 + 0.2, 546.2095801219772,
                   1.7976931348623157e308, -4.9e-324}) {
    const std::string s = json::format_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(Json, FormatDoubleNeverEmitsNonFiniteTokens) {
  // JSON has no Infinity/NaN literals; the formatter degrades to 0.
  EXPECT_EQ(json::format_double(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json::format_double(std::numeric_limits<double>::quiet_NaN()), "0");
}

// --- OpenMetrics exposition -------------------------------------------------

TEST(OpenMetrics, EmitsCountersGaugesHistogramsAndEof) {
  ObsContext ctx(false, true);
  const ScopedObs bind(&ctx);
  count("route.ripups", 3);
  gauge("route.peak_congestion", 0.25);
  observe("pack.displacement_um", 3.0);
  observe("pack.displacement_um", 1000.0);
  const std::string text = openmetrics_text(ctx.report());

  // Counters: dotted names become vpga_-prefixed underscored families with
  // the mandatory _total sample suffix.
  EXPECT_NE(text.find("# TYPE vpga_route_ripups counter"), std::string::npos);
  EXPECT_NE(text.find("vpga_route_ripups_total 3"), std::string::npos);
  // Gauges keep the bare family name.
  EXPECT_NE(text.find("# TYPE vpga_route_peak_congestion gauge"), std::string::npos);
  EXPECT_NE(text.find("vpga_route_peak_congestion 0.25"), std::string::npos);
  // Histograms: cumulative le buckets, +Inf closes at count, _sum/_count.
  EXPECT_NE(text.find("# TYPE vpga_pack_displacement_um histogram"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("vpga_pack_displacement_um_sum 1003"), std::string::npos);
  EXPECT_NE(text.find("vpga_pack_displacement_um_count 2"), std::string::npos);
  // The spec's required terminator, exactly at the end.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetrics, HistogramBucketsAreCumulative) {
  ObsContext ctx(false, true);
  const ScopedObs bind(&ctx);
  observe("pack.displacement_um", 0.5);  // bucket 0 (le 1)
  observe("pack.displacement_um", 3.0);  // bucket 2 (le 4)
  const std::string text = openmetrics_text(ctx.report());
  // le="1" sees one sample, le="4" sees both (cumulative, not per-bucket).
  EXPECT_NE(text.find("le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("le=\"4\"} 2"), std::string::npos);
}

TEST(OpenMetrics, RegisterServeGaugesExposesDaemonFamilies) {
  ObsContext ctx(false, true);
  register_serve_gauges(ctx.metrics());
  const std::string text = openmetrics_text(ctx.report());
  EXPECT_NE(text.find("# TYPE vpga_serve_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("vpga_serve_queue_depth 0"), std::string::npos);
  EXPECT_NE(text.find("# TYPE vpga_serve_cache_hit_rate gauge"), std::string::npos);
}

// --- Disabled-path overhead -------------------------------------------------

TEST(Overhead, DisabledInstrumentationDoesNotAllocate) {
  // The library's own operator new hook (memtrack.cpp) is the allocation
  // counter: bind a tracker to this thread and watch its totals. The flight
  // recorder stays at its always-on default, so this also proves the
  // flight-on span path is allocation-free (names land in a fixed buffer).
  // Warm up any lazy thread-local initialization.
  { const Span warmup("warmup"); }
  count("warmup");
  memtrack::MemTracker tracker;
  const memtrack::ScopedMemTrack track(&tracker);

  const long long before = tracker.totals().alloc_count;
  for (int i = 0; i < 1000; ++i) {
    const Span s("hot.path.span.longer.than.sso.buffers");
    count("hot.path.counter", i);
    observe("hot.path.histogram", static_cast<double>(i));
    gauge("hot.path.gauge", static_cast<double>(i));
  }
  EXPECT_EQ(tracker.totals().alloc_count, before)
      << "instrumentation with no bound context must not allocate";

  ObsContext off(false, false);
  const ScopedObs bind(&off);  // rebinds the tracker slot to none...
  const memtrack::ScopedMemTrack retrack(&tracker);  // ...so bind it back
  const long long before_off = tracker.totals().alloc_count;
  for (int i = 0; i < 1000; ++i) {
    const Span s("hot.path.span");
    count("hot.path.counter", i);
  }
  EXPECT_EQ(tracker.totals().alloc_count, before_off)
      << "instrumentation with a fully disabled context must not allocate";
}

// --- Flow integration -------------------------------------------------------

designs::BenchmarkDesign small_design() {
  return {designs::make_ripple_adder(8), 8000.0, true};
}

TEST(FlowObs, FlowBRecordsEveryStageSpan) {
  flow::FlowOptions opts;
  opts.trace = true;
  opts.metrics = true;
  opts.pack_timing_iterations = 2;
  const auto rep =
      flow::run_flow(small_design(), core::PlbArchitecture::granular(), 'b', opts);
  EXPECT_TRUE(rep.obs.trace_enabled);
  EXPECT_TRUE(rep.obs.metrics_enabled);
  for (const char* stage : {"stage.verify", "stage.map", "stage.compact", "stage.buffer",
                            "stage.place", "stage.route", "stage.sta"})
    EXPECT_EQ(rep.obs.span_count(stage), 1) << stage;
  EXPECT_EQ(rep.obs.span_count("stage.pack"), 2);  // one per pack<->STA iteration
  EXPECT_EQ(rep.obs.counter("flow.pack_sta_iterations"), 2);

  // Packing and routing internals appear as nested children (greater depth).
  int stage_pack_depth = -1, stage_route_depth = -1;
  for (const auto& s : rep.obs.spans) {
    if (s.name == "stage.pack") stage_pack_depth = s.depth;
    if (s.name == "stage.route") stage_route_depth = s.depth;
  }
  for (const char* child : {"pack.attempt", "pack.fill"}) {
    ASSERT_TRUE(rep.obs.has_span(child)) << child;
    for (const auto& s : rep.obs.spans)
      if (s.name == child) EXPECT_GT(s.depth, stage_pack_depth) << child;
  }
  for (const char* child :
       {"route.decompose", "route.initial", "route.negotiate", "route.maze_repair"}) {
    ASSERT_TRUE(rep.obs.has_span(child)) << child;
    for (const auto& s : rep.obs.spans)
      if (s.name == child) EXPECT_GT(s.depth, stage_route_depth) << child;
  }

  // At least 10 distinct nonzero counters from the instrumented stages.
  int nonzero = 0;
  for (const auto& [name, value] : rep.obs.counters)
    if (value > 0) ++nonzero;
  EXPECT_GE(nonzero, 10);
  EXPECT_NE(rep.obs.histogram("pack.displacement_um"), nullptr);

  // Both export formats parse.
  json::Value v;
  std::string err;
  EXPECT_TRUE(json::parse(rep.obs.chrome_trace_json(), v, &err)) << err;
  EXPECT_TRUE(json::parse(rep.obs.metrics_json(), v, &err)) << err;
}

TEST(FlowObs, FlowAHasNoPackSpan) {
  flow::FlowOptions opts;
  opts.trace = true;
  const auto rep =
      flow::run_flow(small_design(), core::PlbArchitecture::lut_based(), 'a', opts);
  EXPECT_EQ(rep.obs.span_count("stage.pack"), 0);
  for (const char* stage :
       {"stage.map", "stage.compact", "stage.place", "stage.route", "stage.sta"})
    EXPECT_EQ(rep.obs.span_count(stage), 1) << stage;
}

TEST(FlowObs, DisabledRunCarriesNoObservability) {
  const auto rep =
      flow::run_flow(small_design(), core::PlbArchitecture::granular(), 'b', {});
  EXPECT_FALSE(rep.obs.trace_enabled);
  EXPECT_TRUE(rep.obs.spans.empty());
  EXPECT_TRUE(rep.obs.counters.empty());
}

TEST(FlowObs, ParallelCompareMatchesSerial) {
  const auto design = small_design();
  flow::FlowOptions serial_opts;
  serial_opts.metrics = true;
  auto parallel_opts = serial_opts;
  parallel_opts.parallel_compare = true;
  const auto serial = flow::compare_architectures(design, serial_opts);
  const auto parallel = flow::compare_architectures(design, parallel_opts);
  const std::pair<const flow::FlowReport*, const flow::FlowReport*> runs[] = {
      {&serial.granular_a, &parallel.granular_a},
      {&serial.granular_b, &parallel.granular_b},
      {&serial.lut_a, &parallel.lut_a},
      {&serial.lut_b, &parallel.lut_b},
  };
  for (const auto& [s, p] : runs) {
    EXPECT_EQ(s->arch, p->arch);
    EXPECT_EQ(s->flow, p->flow);
    EXPECT_DOUBLE_EQ(s->die_area_um2, p->die_area_um2);
    EXPECT_DOUBLE_EQ(s->wirelength_um, p->wirelength_um);
    EXPECT_DOUBLE_EQ(s->critical_delay_ps, p->critical_delay_ps);
    EXPECT_DOUBLE_EQ(s->gate_count_nand2, p->gate_count_nand2);
    EXPECT_EQ(s->plbs, p->plbs);
    // Work counters are deterministic too: each parallel run bound its own
    // ObsContext, so nothing bled between the four threads.
    EXPECT_EQ(s->obs.counters, p->obs.counters);
  }
}

}  // namespace
}  // namespace vpga::obs
