// Unit tests for the netlist IR and its structural checks.

#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

namespace vpga::netlist {
namespace {

Netlist tiny_comb() {
  Netlist nl("tiny");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto g = nl.add_and(a, b);
  nl.add_output(g, "y");
  return nl;
}

TEST(Netlist, BuildsAndCounts) {
  const auto nl = tiny_comb();
  const auto s = nl.stats();
  EXPECT_EQ(s.inputs, 2);
  EXPECT_EQ(s.outputs, 1);
  EXPECT_EQ(s.comb, 1);
  EXPECT_EQ(s.dffs, 0);
  EXPECT_TRUE(nl.check().ok);
}

TEST(Netlist, GateSugarTruthTables) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  EXPECT_EQ(nl.node(nl.add_and(a, b)).func.bits(), 0b1000u);
  EXPECT_EQ(nl.node(nl.add_or(a, b)).func.bits(), 0b1110u);
  EXPECT_EQ(nl.node(nl.add_xor(a, b)).func.bits(), 0b0110u);
  EXPECT_EQ(nl.node(nl.add_nand(a, b)).func.bits(), 0b0111u);
  EXPECT_EQ(nl.node(nl.add_nor(a, b)).func.bits(), 0b0001u);
  EXPECT_EQ(nl.node(nl.add_xnor(a, b)).func.bits(), 0b1001u);
  EXPECT_EQ(nl.node(nl.add_not(a)).func.bits(), 0b01u);
  EXPECT_EQ(nl.node(nl.add_buf(a)).func.bits(), 0b10u);
}

TEST(Netlist, MuxSelectConvention) {
  Netlist nl;
  const auto s = nl.add_input("s");
  const auto d0 = nl.add_input("d0");
  const auto d1 = nl.add_input("d1");
  const auto m = nl.add_mux(s, d0, d1);
  // Row bits: x0=s, x1=d0, x2=d1.
  const auto& f = nl.node(m).func;
  EXPECT_FALSE(f.eval(0b000));  // s=0,d0=0 -> 0
  EXPECT_TRUE(f.eval(0b010));   // s=0,d0=1 -> 1
  EXPECT_FALSE(f.eval(0b011));  // s=1,d0=1,d1=0 -> 0
  EXPECT_TRUE(f.eval(0b101));   // s=1,d1=1 -> 1
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto g1 = nl.add_and(a, b);
  const auto g2 = nl.add_xor(g1, a);
  const auto g3 = nl.add_or(g2, g1);
  nl.add_output(g3, "y");
  const auto order = nl.topo_order();
  auto pos = [&](NodeId id) {
    for (std::size_t i = 0; i < order.size(); ++i)
      if (order[i] == id) return static_cast<int>(i);
    return -1;
  };
  EXPECT_LT(pos(g1), pos(g2));
  EXPECT_LT(pos(g2), pos(g3));
  EXPECT_GE(pos(g1), 0);
}

TEST(Netlist, DffBreaksCycles) {
  // A counter bit: q' = q xor 1 — feedback through the DFF must be legal.
  Netlist nl;
  const auto one = nl.add_constant(true);
  const auto ff = nl.add_dff(NodeId{}, "q");
  const auto next = nl.add_xor(ff, one);
  nl.set_dff_input(ff, next);
  nl.add_output(ff, "count");
  EXPECT_TRUE(nl.check().ok);
  EXPECT_EQ(nl.topo_order().size(), 2u);  // xor + output
}

TEST(Netlist, CheckCatchesCombinationalCycle) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto g1 = nl.add_and(a, a);  // placeholder fanin, rewired below
  nl.set_fanin(g1, 1, g1);  // self-loop
  const auto r = nl.check();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("cycle"), std::string::npos);
}

TEST(Netlist, CheckCatchesReadingAnOutput) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto y = nl.add_output(a, "y");
  nl.add_comb(logic::TruthTable(1, 0b01), {y});
  EXPECT_FALSE(nl.check().ok);
}

TEST(Netlist, FanoutCounts) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto g1 = nl.add_and(a, b);
  nl.add_xor(g1, a);
  nl.add_or(g1, b);
  nl.add_output(g1, "y");
  const auto f = nl.fanout_counts();
  EXPECT_EQ(f[g1.index()], 3);
  EXPECT_EQ(f[a.index()], 2);
}

TEST(Netlist, StatsSequentialFraction) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto ff1 = nl.add_dff(a);
  const auto ff2 = nl.add_dff(ff1);
  const auto g = nl.add_xor(ff1, ff2);
  nl.add_output(g, "y");
  const auto s = nl.stats();
  EXPECT_EQ(s.dffs, 2);
  EXPECT_EQ(s.comb, 1);
  EXPECT_NEAR(s.sequential_fraction(), 2.0 / 3.0, 1e-12);
}

TEST(Netlist, ConfigTagDefaultsToNone) {
  const auto nl = tiny_comb();
  for (NodeId id : nl.all_nodes()) {
    EXPECT_FALSE(nl.node(id).has_config());
    EXPECT_FALSE(nl.node(id).is_mapped());
  }
}

}  // namespace
}  // namespace vpga::netlist
