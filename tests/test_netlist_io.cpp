// Tests for the plain-text netlist serialization.

#include "netlist/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "compact/compact.hpp"
#include "designs/designs.hpp"
#include "netlist/simulate.hpp"
#include "synth/mapper.hpp"

namespace vpga::netlist {
namespace {

Netlist round_trip(const Netlist& nl) {
  std::ostringstream os;
  write_netlist(os, nl);
  std::istringstream is(os.str());
  auto r = read_netlist(is);
  EXPECT_TRUE(r.ok) << r.error;
  return std::move(r.netlist);
}

TEST(NetlistIo, RoundTripCombinational) {
  const auto nl = designs::make_ripple_adder(8);
  const auto back = round_trip(nl);
  EXPECT_EQ(back.num_nodes(), nl.num_nodes());
  EXPECT_EQ(back.name(), nl.name());
  EXPECT_TRUE(equivalent_random_sim(nl, back, 200));
}

TEST(NetlistIo, RoundTripSequentialWithFeedback) {
  const auto nl = designs::make_counter(6);
  const auto back = round_trip(nl);
  EXPECT_TRUE(equivalent_random_sim(nl, back, 100));
}

TEST(NetlistIo, RoundTripPreservesAnnotations) {
  const auto src = designs::make_ripple_adder(8);
  const auto arch = core::PlbArchitecture::granular();
  const auto mapped =
      synth::tech_map(src, synth::cell_target(arch), synth::Objective::kDelay);
  auto comp = compact::compact_from(src, mapped.netlist, arch);
  const auto back = round_trip(comp.netlist);
  ASSERT_EQ(back.num_nodes(), comp.netlist.num_nodes());
  for (NodeId id : comp.netlist.all_nodes()) {
    const auto& a = comp.netlist.node(id);
    const auto& b = back.node(id);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.config_tag, b.config_tag) << id.index();
    EXPECT_EQ(a.cell.has_value(), b.cell.has_value());
    if (a.cell) EXPECT_EQ(*a.cell, *b.cell);
    EXPECT_EQ(a.macro_rep, b.macro_rep);
    EXPECT_EQ(a.func.bits(), b.func.bits());
  }
  EXPECT_TRUE(equivalent_random_sim(comp.netlist, back, 200));
}

TEST(NetlistIo, RejectsMissingHeader) {
  std::istringstream is("node 0 input a\nend\n");
  const auto r = read_netlist(is);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("header"), std::string::npos);
}

TEST(NetlistIo, RejectsOutOfOrderIds) {
  std::istringstream is("vpga-netlist 1\nnode 1 input a\nend\n");
  const auto r = read_netlist(is);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("dense"), std::string::npos);
}

TEST(NetlistIo, RejectsForwardCombFanin) {
  std::istringstream is(
      "vpga-netlist 1\n"
      "node 0 input a\n"
      "node 1 comb 2 8 0 2\n"
      "node 2 input b\n"
      "end\n");
  const auto r = read_netlist(is);
  EXPECT_FALSE(r.ok);
}

TEST(NetlistIo, RejectsMissingEnd) {
  std::istringstream is("vpga-netlist 1\nnode 0 input a\n");
  const auto r = read_netlist(is);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("end"), std::string::npos);
}

TEST(NetlistIo, RejectsBadTruthTable) {
  std::istringstream is(
      "vpga-netlist 1\n"
      "node 0 input a\n"
      "node 1 comb 1 zz 0\n"
      "end\n");
  EXPECT_FALSE(read_netlist(is).ok);
}

TEST(NetlistIo, RejectsUnknownCell) {
  std::istringstream is(
      "vpga-netlist 1\n"
      "node 0 input a\n"
      "node 1 comb 1 2 0 cell=BOGUS\n"
      "end\n");
  EXPECT_FALSE(read_netlist(is).ok);
}

TEST(NetlistIo, DffForwardReferenceAllowed) {
  std::istringstream is(
      "vpga-netlist 1\n"
      "name toggler\n"
      "node 0 dff 2 name=q\n"
      "node 1 const 1\n"
      "node 2 comb 2 6 0 1\n"
      "node 3 output 0 y\n"
      "end\n");
  const auto r = read_netlist(is);
  ASSERT_TRUE(r.ok) << r.error;
  Simulator sim(r.netlist);
  bool expected = false;
  for (int t = 0; t < 4; ++t) {
    sim.eval();
    EXPECT_EQ(sim.output(0), expected);
    sim.step();
    expected = !expected;
  }
}

TEST(NetlistIo, CommentsAndBlankLinesIgnored) {
  std::istringstream is(
      "vpga-netlist 1\n"
      "# a comment\n"
      "\n"
      "node 0 input a\n"
      "node 1 output 0 y\n"
      "end\n");
  EXPECT_TRUE(read_netlist(is).ok);
}

TEST(NetlistIo, FileRoundTrip) {
  const auto nl = designs::make_lfsr(8, 0b10111000);
  ASSERT_TRUE(save_netlist("/tmp/vpga_io_test.vnl", nl));
  const auto r = load_netlist("/tmp/vpga_io_test.vnl");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(equivalent_random_sim(nl, r.netlist, 100));
}

TEST(NetlistIo, LoadMissingFileFails) {
  const auto r = load_netlist("/tmp/definitely_not_here.vnl");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace vpga::netlist
