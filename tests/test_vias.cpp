// Tests for the configuration-via accounting model.

#include "core/vias.hpp"

#include <gtest/gtest.h>

#include "compact/compact.hpp"
#include "designs/designs.hpp"
#include "synth/mapper.hpp"

namespace vpga::core {
namespace {

TEST(Vias, GranularHasMoreCandidateSites) {
  // "greater configurability only results in an increase in potential via
  // sites" — the granular tile must offer more than the LUT-based one.
  EXPECT_GT(potential_via_sites(PlbArchitecture::granular()),
            potential_via_sites(PlbArchitecture::lut_based()));
  EXPECT_GT(potential_via_sites(PlbArchitecture::lut_based()), 0);
}

TEST(Vias, MoreFlipFlopsMoreSites) {
  EXPECT_GT(potential_via_sites(PlbArchitecture::granular_with_ffs(4)),
            potential_via_sites(PlbArchitecture::granular()));
}

TEST(Vias, ConfigViaCountsOrdered) {
  // Composite configurations program more vias than single-stage ones.
  EXPECT_GT(vias_for_config(ConfigKind::kNdmx), vias_for_config(ConfigKind::kMx));
  EXPECT_GT(vias_for_config(ConfigKind::kXoandmx), vias_for_config(ConfigKind::kXoamx));
  EXPECT_GT(vias_for_config(ConfigKind::kFullAdder), vias_for_config(ConfigKind::kXoandmx));
  for (int i = 0; i < kNumConfigKinds; ++i)
    EXPECT_GT(vias_for_config(static_cast<ConfigKind>(i)), 0) << i;
}

TEST(Vias, DesignCountScalesWithSize) {
  const auto arch = PlbArchitecture::granular();
  auto count = [&](int bits) {
    const auto src = designs::make_ripple_adder(bits);
    const auto mapped =
        synth::tech_map(src, synth::cell_target(arch), synth::Objective::kDelay);
    const auto comp = compact::compact_from(src, mapped.netlist, arch);
    return count_vias(comp.netlist, arch, bits).placed;
  };
  const auto v8 = count(8);
  const auto v16 = count(16);
  EXPECT_GT(v8, 0);
  EXPECT_NEAR(static_cast<double>(v16) / v8, 2.0, 0.3);
}

TEST(Vias, MacroCountedOnce) {
  // A fused FA pair contributes one macro's worth of vias, not two configs'.
  const auto arch = PlbArchitecture::granular();
  const auto src = designs::make_ripple_adder(4);
  const auto mapped =
      synth::tech_map(src, synth::cell_target(arch), synth::Objective::kDelay);
  const auto comp = compact::compact_from(src, mapped.netlist, arch);
  const auto vias = count_vias(comp.netlist, arch, 4);
  // 4 FA macros at 13 vias each, plus polarity repair buffers are free.
  EXPECT_EQ(vias.placed, 4 * vias_for_config(ConfigKind::kFullAdder));
}

TEST(Vias, UtilizationInUnitRange) {
  const auto arch = PlbArchitecture::lut_based();
  const auto src = designs::make_ripple_adder(8);
  const auto mapped =
      synth::tech_map(src, synth::cell_target(arch), synth::Objective::kDelay);
  const auto comp = compact::compact_from(src, mapped.netlist, arch);
  const auto vias = count_vias(comp.netlist, arch, 32);
  EXPECT_GT(vias.utilization(), 0.0);
  EXPECT_LT(vias.utilization(), 1.0);
}

}  // namespace
}  // namespace vpga::core
