// Flow-level determinism: the bit-reproducibility the paper's Tables 1/2
// comparisons rest on, and the property fabriclint's det.* rules enforce
// statically (docs/LINT.md). Two independent compare_architectures runs on
// the same design must agree byte-for-byte on every FlowReport quantity and
// on the full metrics export — including with the four flows racing on
// threads (parallel_compare), which is why this test is in the CI TSan job's
// filter alongside test_obs and test_flow.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/plb.hpp"
#include "designs/designs.hpp"
#include "flow/flow.hpp"

namespace vpga {
namespace {

designs::BenchmarkDesign small_design() {
  return {designs::make_ripple_adder(12), 8000.0, true};
}

/// Bit-exact double comparison: report doubles must match to the last ulp,
/// not within a tolerance.
void expect_bits_equal(double a, double b, const char* what) {
  EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
      << what << " differs between runs: " << a << " vs " << b;
}

void expect_reports_identical(const flow::FlowReport& a, const flow::FlowReport& b) {
  EXPECT_EQ(a.design, b.design);
  EXPECT_EQ(a.arch, b.arch);
  EXPECT_EQ(a.flow, b.flow);
  expect_bits_equal(a.clock_period_ps, b.clock_period_ps, "clock_period_ps");
  expect_bits_equal(a.gate_count_nand2, b.gate_count_nand2, "gate_count_nand2");
  expect_bits_equal(a.die_area_um2, b.die_area_um2, "die_area_um2");
  expect_bits_equal(a.avg_slack_top10_ps, b.avg_slack_top10_ps, "avg_slack_top10_ps");
  expect_bits_equal(a.wns_ps, b.wns_ps, "wns_ps");
  expect_bits_equal(a.critical_delay_ps, b.critical_delay_ps, "critical_delay_ps");
  expect_bits_equal(a.wirelength_um, b.wirelength_um, "wirelength_um");
  EXPECT_EQ(a.plbs, b.plbs);
  expect_bits_equal(a.max_displacement_um, b.max_displacement_um, "max_displacement_um");
  EXPECT_EQ(a.verify.size(), b.verify.size());
  // The metrics export covers every counter/gauge/histogram of the run;
  // byte-for-byte equality of the serialized document is the whole point
  // (trace spans carry wall-clock and are deliberately not compared).
  EXPECT_EQ(a.obs.metrics_json(), b.obs.metrics_json());
  EXPECT_EQ(a.obs.counters, b.obs.counters);
}

TEST(Determinism, CompareArchitecturesTwiceIsByteIdentical) {
  const auto design = small_design();
  flow::FlowOptions opts;
  opts.metrics = true;
  opts.seed = 7;
  const auto first = flow::compare_architectures(design, opts);
  const auto second = flow::compare_architectures(design, opts);
  expect_reports_identical(first.granular_a, second.granular_a);
  expect_reports_identical(first.granular_b, second.granular_b);
  expect_reports_identical(first.lut_a, second.lut_a);
  expect_reports_identical(first.lut_b, second.lut_b);
}

TEST(Determinism, ParallelCompareMatchesItselfAndSerial) {
  const auto design = small_design();
  flow::FlowOptions serial_opts;
  serial_opts.metrics = true;
  serial_opts.seed = 11;
  flow::FlowOptions parallel_opts = serial_opts;
  parallel_opts.parallel_compare = true;

  const auto serial = flow::compare_architectures(design, serial_opts);
  const auto parallel1 = flow::compare_architectures(design, parallel_opts);
  const auto parallel2 = flow::compare_architectures(design, parallel_opts);

  // Threading must change nothing: parallel == serial, and parallel runs
  // agree with each other.
  expect_reports_identical(serial.granular_a, parallel1.granular_a);
  expect_reports_identical(serial.granular_b, parallel1.granular_b);
  expect_reports_identical(serial.lut_a, parallel1.lut_a);
  expect_reports_identical(serial.lut_b, parallel1.lut_b);
  expect_reports_identical(parallel1.granular_b, parallel2.granular_b);
  expect_reports_identical(parallel1.lut_b, parallel2.lut_b);
}

/// Memory-profiling counter names, which legitimately differ between a
/// memtrack-on and a memtrack-off run and are excluded from the equality.
bool is_memtrack_counter(const std::string& name) {
  const auto ends_with = [&name](std::string_view suffix) {
    return name.size() >= suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  return ends_with(".alloc_bytes") || ends_with(".alloc_count") ||
         ends_with(".peak_live_bytes");
}

TEST(Determinism, MemtrackObservesWithoutPerturbing) {
  const auto design = small_design();
  flow::FlowOptions off;
  off.metrics = true;
  off.seed = 7;
  flow::FlowOptions on = off;
  on.memtrack = true;

  const auto arch = core::PlbArchitecture::granular();
  const auto plain = flow::run_flow(design, arch, 'b', off);
  const auto tracked = flow::run_flow(design, arch, 'b', on);

  // Every QoR quantity is bit-identical: the profiler observes the flow, it
  // must not steer it.
  expect_bits_equal(plain.clock_period_ps, tracked.clock_period_ps, "clock_period_ps");
  expect_bits_equal(plain.gate_count_nand2, tracked.gate_count_nand2, "gate_count_nand2");
  expect_bits_equal(plain.die_area_um2, tracked.die_area_um2, "die_area_um2");
  expect_bits_equal(plain.avg_slack_top10_ps, tracked.avg_slack_top10_ps, "avg_slack_top10_ps");
  expect_bits_equal(plain.wns_ps, tracked.wns_ps, "wns_ps");
  expect_bits_equal(plain.critical_delay_ps, tracked.critical_delay_ps, "critical_delay_ps");
  expect_bits_equal(plain.wirelength_um, tracked.wirelength_um, "wirelength_um");
  EXPECT_EQ(plain.plbs, tracked.plbs);
  expect_bits_equal(plain.max_displacement_um, tracked.max_displacement_um, "max_displacement_um");

  // The non-memory counters agree exactly; the tracked run only *adds* the
  // alloc counter family.
  std::vector<std::pair<std::string, long long>> plain_counters, tracked_counters;
  for (const auto& c : plain.obs.counters)
    if (!is_memtrack_counter(c.first)) plain_counters.push_back(c);
  for (const auto& c : tracked.obs.counters)
    if (!is_memtrack_counter(c.first)) tracked_counters.push_back(c);
  EXPECT_EQ(plain_counters, tracked_counters);
  EXPECT_GT(tracked.obs.counters.size(), plain.obs.counters.size());

  // And memtrack is itself deterministic where it can be: two tracked runs
  // agree on QoR, on every non-memory counter, and on every .alloc_count
  // (the flow performs the same allocations). Byte totals are NOT compared:
  // malloc_usable_size depends on heap chunk reuse, which varies in-process.
  const auto tracked2 = flow::run_flow(design, arch, 'b', on);
  expect_bits_equal(tracked.die_area_um2, tracked2.die_area_um2, "die_area_um2");
  expect_bits_equal(tracked.critical_delay_ps, tracked2.critical_delay_ps,
                    "critical_delay_ps");
  for (const auto& [name, value] : tracked.obs.counters) {
    const auto ends_with = [&n = name](std::string_view suffix) {
      return n.size() >= suffix.size() &&
             n.compare(n.size() - suffix.size(), suffix.size(), suffix) == 0;
    };
    if (ends_with(".alloc_bytes") || ends_with(".peak_live_bytes")) continue;
    EXPECT_EQ(value, tracked2.obs.counter(name)) << name;
  }
}

TEST(Determinism, SeedChangesStochasticStagesButStaysSelfConsistent) {
  const auto design = small_design();
  flow::FlowOptions a;
  a.metrics = true;
  a.seed = 1;
  flow::FlowOptions b = a;
  b.seed = 2;
  const auto arch = core::PlbArchitecture::granular();
  const auto r1 = flow::run_flow(design, arch, 'b', a);
  const auto r1_again = flow::run_flow(design, arch, 'b', a);
  const auto r2 = flow::run_flow(design, arch, 'b', b);
  expect_reports_identical(r1, r1_again);
  // Different seeds must still produce a valid flow; equality is not
  // required (annealing/tie-breaks legitimately depend on the seed).
  EXPECT_GT(r2.die_area_um2, 0.0);
}

}  // namespace
}  // namespace vpga
