// Tests for the power estimator and the SVG layout renderer.

#include <gtest/gtest.h>

#include "compact/compact.hpp"
#include "designs/designs.hpp"
#include "pack/layout_svg.hpp"
#include "place/placement.hpp"
#include "synth/mapper.hpp"
#include "timing/power.hpp"

namespace vpga {
namespace {

struct Prepared {
  netlist::Netlist nl;
  place::Placement placed;
};

Prepared prepare(const netlist::Netlist& src,
                 const core::PlbArchitecture& arch = core::PlbArchitecture::granular()) {
  const auto mapped =
      synth::tech_map(src, synth::cell_target(arch), synth::Objective::kDelay);
  auto comp = compact::compact_from(src, mapped.netlist, arch);
  Prepared p{std::move(comp.netlist), {}};
  p.placed = place::place(p.nl);
  return p;
}

TEST(Power, PositiveAndDecomposed) {
  const auto p = prepare(designs::make_alu(8).netlist);
  timing::PowerOptions o;
  o.clock_period_ps = 4500;
  const auto r = timing::estimate_power(p.nl, p.placed, o);
  EXPECT_GT(r.dynamic_mw, 0.0);
  EXPECT_GT(r.clock_mw, 0.0);
  EXPECT_NEAR(r.total_mw, r.dynamic_mw + r.clock_mw, 1e-12);
  EXPECT_GT(r.avg_toggle_rate, 0.0);
  EXPECT_LT(r.avg_toggle_rate, 1.0);
}

TEST(Power, ScalesWithFrequency) {
  const auto p = prepare(designs::make_ripple_adder(8));
  timing::PowerOptions slow, fast;
  slow.clock_period_ps = 10000;
  fast.clock_period_ps = 5000;
  const auto rs = timing::estimate_power(p.nl, p.placed, slow);
  const auto rf = timing::estimate_power(p.nl, p.placed, fast);
  EXPECT_NEAR(rf.total_mw / rs.total_mw, 2.0, 1e-6);
}

TEST(Power, DeterministicForSeed) {
  const auto p = prepare(designs::make_counter(8));
  timing::PowerOptions o;
  const auto r1 = timing::estimate_power(p.nl, p.placed, o);
  const auto r2 = timing::estimate_power(p.nl, p.placed, o);
  EXPECT_DOUBLE_EQ(r1.total_mw, r2.total_mw);
}

TEST(Power, IdleLogicTogglesLess) {
  // A counter with enable low toggles almost nowhere; compare toggle rate
  // against free-running inputs by fixing the PI probability through seeds is
  // impractical, so compare against a pure combinational xor network instead.
  const auto counter = prepare(designs::make_counter(8));
  timing::PowerOptions o;
  const auto rc = timing::estimate_power(counter.nl, counter.placed, o);
  // A free-running LFSR toggles its state bits nearly every other cycle.
  const auto lfsr = prepare(designs::make_lfsr(8, 0b10111000));
  const auto rl = timing::estimate_power(lfsr.nl, lfsr.placed, o);
  EXPECT_GT(rl.avg_toggle_rate, 0.1);
  EXPECT_GT(rc.total_mw, 0.0);
}

TEST(Power, LutArchitectureBurnsMore) {
  // Same function, larger input capacitances and extra wire: the LUT-based
  // implementation should not be cheaper in dynamic power.
  const auto src = designs::make_ripple_adder(16);
  const auto g = prepare(src, core::PlbArchitecture::granular());
  const auto l = prepare(src, core::PlbArchitecture::lut_based());
  timing::PowerOptions o;
  o.clock_period_ps = 8000;
  const auto rg = timing::estimate_power(g.nl, g.placed, o);
  const auto rl = timing::estimate_power(l.nl, l.placed, o);
  EXPECT_LE(rg.dynamic_mw, rl.dynamic_mw * 1.05);
}

TEST(LayoutSvg, WellFormedAndAnnotated) {
  const auto arch = core::PlbArchitecture::granular();
  const auto p = prepare(designs::make_ripple_adder(16), arch);
  const auto packed = pack::pack(p.nl, p.placed, arch);
  const auto svg = pack::layout_svg(p.nl, packed, arch);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("ripple_adder16"), std::string::npos);
  // The adder fuses FAs: orange macro outlines must appear.
  EXPECT_NE(svg.find("#d95f02"), std::string::npos);
  // Rect count >= grid size.
  std::size_t rects = 0;
  for (std::size_t at = svg.find("<rect"); at != std::string::npos;
       at = svg.find("<rect", at + 1))
    ++rects;
  EXPECT_GE(rects, static_cast<std::size_t>(packed.grid_w * packed.grid_h));
}

TEST(LayoutSvg, WritesFile) {
  const auto arch = core::PlbArchitecture::granular();
  const auto p = prepare(designs::make_counter(6), arch);
  const auto packed = pack::pack(p.nl, p.placed, arch);
  EXPECT_TRUE(pack::write_layout_svg("/tmp/vpga_layout_test.svg", p.nl, packed, arch));
  EXPECT_FALSE(pack::write_layout_svg("/nonexistent/dir/x.svg", p.nl, packed, arch));
}

}  // namespace
}  // namespace vpga
