// Tests for the PLB architecture descriptors, the resource/bin-packing model
// (Section 2.3 packing combinations), and full-adder packing (Section 2.2).

#include "core/plb.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/fa_packing.hpp"
#include "core/match.hpp"
#include "logic/truth_table.hpp"

namespace vpga::core {
namespace {

using K = ConfigKind;

TEST(Plb, LutBasedMatchesFigureOne) {
  const auto a = PlbArchitecture::lut_based();
  EXPECT_EQ(a.count(PlbComponent::kLut3), 1);
  EXPECT_EQ(a.count(PlbComponent::kNd3), 2);
  EXPECT_EQ(a.count(PlbComponent::kDff), 1);
  EXPECT_EQ(a.count(PlbComponent::kXoa), 0);
  EXPECT_TRUE(a.supports(K::kLut3));
  EXPECT_FALSE(a.supports(K::kXoamx));
}

TEST(Plb, GranularMatchesFigureFour) {
  const auto a = PlbArchitecture::granular();
  EXPECT_EQ(a.count(PlbComponent::kXoa), 1);
  EXPECT_EQ(a.count(PlbComponent::kMux), 2);
  EXPECT_EQ(a.count(PlbComponent::kNd3), 1);
  EXPECT_EQ(a.count(PlbComponent::kDff), 1);
  EXPECT_EQ(a.count(PlbComponent::kLut3), 0);
  for (auto k : {K::kMx, K::kNd3, K::kNdmx, K::kXoamx, K::kXoandmx, K::kFullAdder})
    EXPECT_TRUE(a.supports(k)) << to_string(k);
}

TEST(Plb, PaperAreaRatios) {
  const auto lut = PlbArchitecture::lut_based();
  const auto gran = PlbArchitecture::granular();
  // "the area of the proposed granular PLB being 20% larger than the
  // LUT-based PLB" and "26.6% more combinational logic area".
  EXPECT_NEAR(gran.tile_area_um2 / lut.tile_area_um2, 1.20, 0.01);
  EXPECT_NEAR(gran.comb_area_um2 / lut.comb_area_um2, 1.266, 0.01);
}

// --- Section 2.3: the four simultaneous packing combinations ---------------

TEST(PlbPacking, ThreeMxPlusNd3Fits) {
  const auto a = PlbArchitecture::granular();
  EXPECT_TRUE(fits_in_one_plb(a, {K::kMx, K::kMx, K::kMx, K::kNd3}));
  EXPECT_FALSE(fits_in_one_plb(a, {K::kMx, K::kMx, K::kMx, K::kMx}));
  EXPECT_FALSE(fits_in_one_plb(a, {K::kMx, K::kMx, K::kMx, K::kNd3, K::kNd3}));
}

TEST(PlbPacking, MxPlusXoamxPlusNd3Fits) {
  const auto a = PlbArchitecture::granular();
  EXPECT_TRUE(fits_in_one_plb(a, {K::kMx, K::kXoamx, K::kNd3}));
}

TEST(PlbPacking, NdmxPlusXoamxFits) {
  const auto a = PlbArchitecture::granular();
  EXPECT_TRUE(fits_in_one_plb(a, {K::kNdmx, K::kXoamx}));
}

TEST(PlbPacking, TwoNdmxFitOneViaXoa) {
  // "two NDMX functions can be packed into a single PLB. In this
  // configuration, one of the NDMX functions must be packed as an XOAMX."
  const auto a = PlbArchitecture::granular();
  EXPECT_TRUE(fits_in_one_plb(a, {K::kNdmx, K::kNdmx}));
  EXPECT_FALSE(fits_in_one_plb(a, {K::kNdmx, K::kNdmx, K::kNdmx}));
}

TEST(PlbPacking, TwoXoamxDoNotFit) {
  // Only one XOA exists, and a plain MUX cannot serve as the XOAMX driver.
  const auto a = PlbArchitecture::granular();
  EXPECT_FALSE(fits_in_one_plb(a, {K::kXoamx, K::kXoamx}));
}

TEST(PlbPacking, XoandmxConsumesBothGates) {
  const auto a = PlbArchitecture::granular();
  EXPECT_TRUE(fits_in_one_plb(a, {K::kXoandmx, K::kMx}));
  EXPECT_FALSE(fits_in_one_plb(a, {K::kXoandmx, K::kNd3}));
  EXPECT_FALSE(fits_in_one_plb(a, {K::kXoandmx, K::kXoamx}));
}

TEST(PlbPacking, FfPacksAlongsideLogic) {
  const auto a = PlbArchitecture::granular();
  EXPECT_TRUE(fits_in_one_plb(a, {K::kFullAdder, K::kFf}));
  EXPECT_FALSE(fits_in_one_plb(a, {K::kFf, K::kFf}));
  EXPECT_TRUE(fits_in_one_plb(PlbArchitecture::granular_with_ffs(4),
                              {K::kFf, K::kFf, K::kFf, K::kFf}));
}

TEST(PlbPacking, LutArchitectureCombinations) {
  const auto a = PlbArchitecture::lut_based();
  EXPECT_TRUE(fits_in_one_plb(a, {K::kLut3, K::kNd3, K::kNd3, K::kFf}));
  EXPECT_FALSE(fits_in_one_plb(a, {K::kLut3, K::kLut3}));
  EXPECT_FALSE(fits_in_one_plb(a, {K::kMx}));  // unsupported config
}

TEST(PlbPacking, MaximalPackingsIncludePaperCombos) {
  const auto a = PlbArchitecture::granular();
  const auto maximal = maximal_packings(
      a, {K::kMx, K::kNd3, K::kNdmx, K::kXoamx, K::kXoandmx});
  auto contains = [&](std::vector<K> combo) {
    std::sort(combo.begin(), combo.end());
    return std::any_of(maximal.begin(), maximal.end(), [&](std::vector<K> m) {
      std::sort(m.begin(), m.end());
      return m == combo;
    });
  };
  EXPECT_TRUE(contains({K::kMx, K::kMx, K::kMx, K::kNd3}));
  EXPECT_TRUE(contains({K::kMx, K::kXoamx, K::kNd3}));
  EXPECT_TRUE(contains({K::kNdmx, K::kXoamx}));
}

// --- Section 2.2: full adder ------------------------------------------------

TEST(FullAdder, GranularPacksInOnePlb) {
  EXPECT_TRUE(packs_full_adder(PlbArchitecture::granular()));
  const auto plan = plan_full_adder(PlbArchitecture::granular());
  EXPECT_EQ(plan.plbs, 1);
  EXPECT_EQ(plan.configs, std::vector<K>{K::kFullAdder});
  EXPECT_GT(plan.carry_delay_ps, 0.0);
  EXPECT_GT(plan.sum_delay_ps, plan.carry_delay_ps);
}

TEST(FullAdder, LutBasedNeedsTwoPlbs) {
  EXPECT_FALSE(packs_full_adder(PlbArchitecture::lut_based()));
  const auto plan = plan_full_adder(PlbArchitecture::lut_based());
  EXPECT_EQ(plan.plbs, 2);
  EXPECT_EQ(plan.configs, (std::vector<K>{K::kLut3, K::kLut3}));
}

TEST(FullAdder, RippleAdderScalesLinearly) {
  const auto g = plan_ripple_adder(PlbArchitecture::granular(), 32);
  const auto l = plan_ripple_adder(PlbArchitecture::lut_based(), 32);
  EXPECT_EQ(g.plbs, 32);
  EXPECT_EQ(l.plbs, 64);
  EXPECT_LT(g.critical_path_ps, l.critical_path_ps);
}

TEST(FullAdder, GranularCarryChainIsMuchFaster) {
  // Per carry step the granular PLB spends one mux stage; the LUT-based PLB
  // spends a full 3-LUT evaluation.
  const auto g = plan_full_adder(PlbArchitecture::granular());
  const auto l = plan_full_adder(PlbArchitecture::lut_based());
  EXPECT_GT(l.carry_delay_ps / g.carry_delay_ps, 2.0);
}

// --- Matching ----------------------------------------------------------------

TEST(Match, GranularMapsSimpleFunctionsOffTheLut) {
  const auto gran = PlbArchitecture::granular();
  const auto lut = PlbArchitecture::lut_based();
  const auto nand3 = static_cast<std::uint8_t>(logic::tt3::nand3().bits());
  EXPECT_EQ(min_area_config(gran, nand3), K::kNd3);
  EXPECT_EQ(min_area_config(lut, nand3), K::kNd3);
  const auto xor3 = static_cast<std::uint8_t>(logic::tt3::xor3().bits());
  EXPECT_EQ(min_area_config(gran, xor3), K::kXoamx);
  EXPECT_EQ(min_area_config(lut, xor3), K::kLut3);
  // maj3 = MUX(a xor b; a, c) — the XOA-driven mux pair handles the carry.
  const auto maj3 = static_cast<std::uint8_t>(logic::tt3::maj3().bits());
  EXPECT_EQ(min_area_config(gran, maj3), K::kXoamx);
  EXPECT_EQ(min_area_config(lut, maj3), K::kLut3);
}

TEST(Match, EveryFunctionHasAGranularConfig) {
  // XOANDMX covers all 256, so matching never fails on the granular PLB.
  const auto gran = PlbArchitecture::granular();
  for (int f = 0; f < 256; ++f)
    EXPECT_TRUE(min_area_config(gran, static_cast<std::uint8_t>(f)).has_value()) << f;
}

TEST(Match, MinDelayPrefersSingleStage) {
  const auto gran = PlbArchitecture::granular();
  const auto mux_like = static_cast<std::uint8_t>(logic::tt3::mux().bits());
  EXPECT_EQ(min_delay_config(gran, mux_like), K::kMx);
}

}  // namespace
}  // namespace vpga::core
