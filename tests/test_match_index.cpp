// Tests for the NPN match index: the precomputed cut-function -> option-set
// map must agree exactly with the per-option coverage probes it replaced.

#include "synth/match_index.hpp"

#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "designs/designs.hpp"
#include "synth/cuts.hpp"
#include "synth/mapper.hpp"

namespace vpga::synth {
namespace {

using core::PlbArchitecture;

/// The old inner loop, verbatim: bit i set iff option i's coverage holds tt.
MatchIndex::OptionMask brute_mask(const MapTarget& target, std::uint8_t tt) {
  MatchIndex::OptionMask mask = 0;
  for (std::size_t i = 0; i < target.options.size(); ++i)
    if (target.options[i].coverage.test(tt)) mask |= MatchIndex::OptionMask{1} << i;
  return mask;
}

void expect_index_matches_probes(const MapTarget& target) {
  ASSERT_LE(target.options.size(), MatchIndex::kMaxOptions);
  const MatchIndex index(target);
  for (int f = 0; f < 256; ++f) {
    const auto tt = static_cast<std::uint8_t>(f);
    EXPECT_EQ(index.options_for(tt), brute_mask(target, tt)) << "tt=" << f;
  }
}

TEST(MatchIndex, AgreesWithCoverageProbesOnCellTargets) {
  expect_index_matches_probes(cell_target(PlbArchitecture::lut_based()));
  expect_index_matches_probes(cell_target(PlbArchitecture::granular()));
}

TEST(MatchIndex, AgreesWithCoverageProbesOnConfigTargets) {
  expect_index_matches_probes(config_target(PlbArchitecture::lut_based()));
  expect_index_matches_probes(config_target(PlbArchitecture::granular()));
}

TEST(MatchIndex, CanonicalTransformIsAWitness) {
  // options_for only depends on the NPN class, so canonicalizing first must
  // give the same answer — the closure property the index is built on.
  const auto target = cell_target(PlbArchitecture::granular());
  const MatchIndex index(target);
  for (int f = 0; f < 256; ++f) {
    const auto tt = static_cast<std::uint8_t>(f);
    const auto canon = logic::apply_npn3(tt, MatchIndex::transform_for(tt));
    EXPECT_EQ(index.options_for(tt), index.options_for(canon)) << f;
  }
}

TEST(MatchIndex, MatchableClassesBounded) {
  // 14 NPN classes exist; a LUT3 target matches all of them, restricted
  // targets fewer (but at least the trivial/literal classes needed to map).
  const MatchIndex lut(cell_target(PlbArchitecture::lut_based()));
  EXPECT_EQ(lut.matchable_classes(), 14);
  const MatchIndex gran(cell_target(PlbArchitecture::granular()));
  EXPECT_GT(gran.matchable_classes(), 0);
  EXPECT_LE(gran.matchable_classes(), 14);
}

TEST(MatchIndex, CutMasksEqualProbesOnRealDesign) {
  // End-to-end on enumerated cuts of a bench design: for every (cut, option)
  // pair the index's verdict equals the direct coverage probe — the exact
  // replacement claim of the mapper rewrite.
  const auto nl = designs::make_ripple_adder(8);
  const auto target = cell_target(PlbArchitecture::granular());
  const MatchIndex index(target);
  const auto m = aig::from_netlist(nl);
  const CutDatabase cuts(m.aig);
  long long pairs = 0;
  for (std::uint32_t n = 0; n < m.aig.num_nodes(); ++n) {
    for (const Cut& c : cuts.cuts(n)) {
      const auto mask = index.options_for(c.tt);
      for (std::size_t i = 0; i < target.options.size(); ++i) {
        ASSERT_EQ((mask >> i) & 1u, target.options[i].coverage.test(c.tt) ? 1u : 0u);
        ++pairs;
      }
    }
  }
  EXPECT_GT(pairs, 0);
}

}  // namespace
}  // namespace vpga::synth
