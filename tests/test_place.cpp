// Tests for the ASIC-style placer.

#include "place/placement.hpp"

#include <gtest/gtest.h>

#include "compact/compact.hpp"
#include "core/plb.hpp"
#include "designs/designs.hpp"
#include "synth/mapper.hpp"

namespace vpga::place {
namespace {

netlist::Netlist compacted_adder(int bits) {
  const auto src = designs::make_ripple_adder(bits);
  const auto mapped = synth::tech_map(src, synth::cell_target(core::PlbArchitecture::granular()),
                                      synth::Objective::kDelay);
  return compact::compact(mapped.netlist, core::PlbArchitecture::granular()).netlist;
}

TEST(Place, AllNodesInsideDie) {
  const auto nl = compacted_adder(16);
  const auto p = place(nl);
  EXPECT_GT(p.width_um, 0.0);
  for (netlist::NodeId id : nl.all_nodes()) {
    const auto& pt = p.pos[id.index()];
    EXPECT_GE(pt.x, -1e-9);
    EXPECT_LE(pt.x, p.width_um + 1e-9);
    EXPECT_GE(pt.y, -1e-9);
    EXPECT_LE(pt.y, p.height_um + 1e-9);
  }
}

TEST(Place, DeterministicForSameSeed) {
  const auto nl = compacted_adder(12);
  const auto p1 = place(nl);
  const auto p2 = place(nl);
  for (std::size_t i = 0; i < p1.pos.size(); ++i) {
    EXPECT_DOUBLE_EQ(p1.pos[i].x, p2.pos[i].x);
    EXPECT_DOUBLE_EQ(p1.pos[i].y, p2.pos[i].y);
  }
}

TEST(Place, SeedChangesResult) {
  const auto nl = compacted_adder(12);
  PlacerOptions a, b;
  a.seed = 1;
  b.seed = 99;
  const auto p1 = place(nl, a);
  const auto p2 = place(nl, b);
  int moved = 0;
  for (std::size_t i = 0; i < p1.pos.size(); ++i)
    if (p1.pos[i].x != p2.pos[i].x || p1.pos[i].y != p2.pos[i].y) ++moved;
  EXPECT_GT(moved, 0);
}

TEST(Place, RefinementImprovesOverNaive) {
  // A netlist whose creation order carries no locality (random 2-input
  // network): the initial serpentine is poor and refinement must win big.
  netlist::Netlist nl("scrambled");
  common::Rng rng(17);
  std::vector<netlist::NodeId> pool;
  for (int i = 0; i < 24; ++i) pool.push_back(nl.add_input("i" + std::to_string(i)));
  for (int i = 0; i < 400; ++i) {
    const auto a = pool[rng.next_below(pool.size())];
    const auto b = pool[rng.next_below(pool.size())];
    pool.push_back(nl.add_xor(a, b));
  }
  for (int i = 0; i < 16; ++i)
    nl.add_output(pool[pool.size() - 1 - static_cast<std::size_t>(i)],
                  "o" + std::to_string(i));
  // Give nodes mapped identities so the placer can size the die.
  for (netlist::NodeId id : nl.all_nodes())
    if (nl.node(id).type == netlist::NodeType::kComb)
      nl.node(id).cell = library::CellKind::kMux2;
  PlacerOptions naive;
  naive.median_sweeps = 0;
  naive.sa_moves_per_node = 0;
  const auto p0 = place(nl, naive);
  const auto p1 = place(nl);
  EXPECT_LT(total_hpwl(nl, p1), total_hpwl(nl, p0));
}

TEST(Place, NoTwoCellsShareASlot) {
  const auto nl = compacted_adder(16);
  const auto p = place(nl);
  std::vector<std::pair<double, double>> seen;
  for (netlist::NodeId id : nl.all_nodes()) {
    const auto& n = nl.node(id);
    if (n.type != netlist::NodeType::kComb && n.type != netlist::NodeType::kDff) continue;
    for (const auto& s : seen) {
      EXPECT_FALSE(s.first == p.pos[id.index()].x && s.second == p.pos[id.index()].y)
          << "overlap at " << s.first << "," << s.second;
    }
    seen.emplace_back(p.pos[id.index()].x, p.pos[id.index()].y);
  }
}

TEST(Place, DieAreaMatchesUtilization) {
  const auto nl = compacted_adder(16);
  const double a85 = asic_die_area(nl, 0.85);
  const double a50 = asic_die_area(nl, 0.50);
  EXPECT_NEAR(a50 / a85, 0.85 / 0.50, 1e-9);
  EXPECT_GT(a85, compact::gate_area(nl) - 1e-9);
}

TEST(Place, HpwlIsPositiveAndFinite) {
  const auto nl = compacted_adder(8);
  const auto p = place(nl);
  const double h = total_hpwl(nl, p);
  EXPECT_GT(h, 0.0);
  EXPECT_LT(h, 1e9);
}

TEST(Place, CriticalityWeightingShiftsResult) {
  const auto nl = compacted_adder(16);
  PlacerOptions base;
  const auto p1 = place(nl, base);
  PlacerOptions crit = base;
  crit.criticality.assign(nl.num_nodes(), 0.0);
  for (std::size_t i = 0; i < nl.num_nodes(); i += 3) crit.criticality[i] = 1.0;
  const auto p2 = place(nl, crit);
  int moved = 0;
  for (std::size_t i = 0; i < p1.pos.size(); ++i)
    if (p1.pos[i].x != p2.pos[i].x || p1.pos[i].y != p2.pos[i].y) ++moved;
  EXPECT_GT(moved, 0);
}

}  // namespace
}  // namespace vpga::place
