// Tests for the via-configured coverage sets of the PLB component cells.

#include "logic/function_sets.hpp"

#include <gtest/gtest.h>

namespace vpga::logic {
namespace {

TEST(FunctionSets, Nd2wiCoversExactlyNonXorType) {
  const auto& s = nd2wi_set2();
  EXPECT_EQ(count(s), 14);
  for (int f = 0; f < 16; ++f)
    EXPECT_EQ(s.test(static_cast<std::size_t>(f)), !is_xor_type2(static_cast<std::uint8_t>(f)))
        << "tt2=" << f;
}

TEST(FunctionSets, Mux2CoversAllTwoInputFunctions) {
  EXPECT_EQ(count(mux2_set2()), 16);
}

TEST(FunctionSets, XorTypePredicate) {
  EXPECT_TRUE(is_xor_type2(kTt2Xor));
  EXPECT_TRUE(is_xor_type2(kTt2Xnor));
  EXPECT_FALSE(is_xor_type2(0b1000));  // and
  EXPECT_FALSE(is_xor_type2(0b0111));  // nand (hmm: ~and = 0111)
  EXPECT_FALSE(is_xor_type2(0b0000));
  EXPECT_FALSE(is_xor_type2(0b1010));  // literal a... (row order: b=1 rows are 2,3)
}

TEST(FunctionSets, Nd3wiContainsNandFamilyNotXor) {
  const auto& s = nd3wi_set3();
  EXPECT_TRUE(s.test(0x7F));   // nand3
  EXPECT_TRUE(s.test(0x80));   // and3
  EXPECT_TRUE(s.test(0x01));   // nor3
  EXPECT_TRUE(s.test(0xFE));   // or3
  EXPECT_TRUE(s.test(0xAA));   // literal a (bridging + constants)
  EXPECT_TRUE(s.test(0x00));   // constant 0
  EXPECT_TRUE(s.test(0xFF));   // constant 1
  EXPECT_FALSE(s.test(0x96));  // xor3
  EXPECT_FALSE(s.test(0x69));  // xnor3
  EXPECT_FALSE(s.test(0xE8));  // maj3 needs a sum of products
}

TEST(FunctionSets, Nd3wiIsClosedUnderOutputInversion) {
  const auto& s = nd3wi_set3();
  for (int f = 0; f < 256; ++f)
    EXPECT_EQ(s.test(static_cast<std::size_t>(f)), s.test(static_cast<std::size_t>(0xFF & ~f)));
}

TEST(FunctionSets, Nd3wiIsClosedUnderInputNegationAndPermutation) {
  const auto& s = nd3wi_set3();
  for (int f = 0; f < 256; ++f) {
    if (!s.test(static_cast<std::size_t>(f))) continue;
    const TruthTable t(3, static_cast<std::uint64_t>(f));
    for (int v = 0; v < 3; ++v)
      EXPECT_TRUE(s.test(static_cast<std::size_t>(t.negate_var(v).bits())));
    EXPECT_TRUE(s.test(static_cast<std::size_t>(
        t.permute({1, 0, 2, 3, 4, 5}).bits())));
    EXPECT_TRUE(s.test(static_cast<std::size_t>(
        t.permute({2, 1, 0, 3, 4, 5}).bits())));
  }
}

TEST(FunctionSets, Nd2wiSet3IsSubsetOfNd3wiSet3) {
  // A 3-input NAND with one input tied to Vdd degenerates to the 2-input gate.
  for (int f = 0; f < 256; ++f)
    if (nd2wi_set3().test(static_cast<std::size_t>(f)))
      EXPECT_TRUE(nd3wi_set3().test(static_cast<std::size_t>(f))) << f;
}

TEST(FunctionSets, Mux2Set3ContainsMuxXorLiterals) {
  const auto& s = mux2_set3();
  EXPECT_TRUE(s.test(0xCA));  // mux: c ? b : a
  EXPECT_TRUE(s.test(0x66));  // xor(a,b) extended to 3 vars
  EXPECT_TRUE(s.test(0x99));  // xnor(a,b)
  EXPECT_TRUE(s.test(0xAA));  // a
  EXPECT_TRUE(s.test(0x00));
  EXPECT_TRUE(s.test(0xFF));
  EXPECT_FALSE(s.test(0x96));  // xor3 needs two muxes
  EXPECT_FALSE(s.test(0xE8));  // maj3 needs two levels
}

TEST(FunctionSets, Mux2Set3ClosedUnderOutputInversion) {
  // MUX(s; d0', d1') = MUX(s; d0, d1)' — programmable inversion is free.
  const auto& s = mux2_set3();
  for (int f = 0; f < 256; ++f)
    EXPECT_EQ(s.test(static_cast<std::size_t>(f)), s.test(static_cast<std::size_t>(0xFF & ~f)));
}

TEST(FunctionSets, MuxSetStrictlyLargerThanNd2wiSet) {
  // The paper's reason for the XOA element: a MUX covers everything an ND2WI
  // covers, plus the XOR-type functions.
  for (int f = 0; f < 256; ++f)
    if (nd2wi_set3().test(static_cast<std::size_t>(f)))
      EXPECT_TRUE(mux2_set3().test(static_cast<std::size_t>(f))) << f;
  EXPECT_GT(count(mux2_set3()), count(nd2wi_set3()));
}

TEST(FunctionSets, Lut3CoversEverything) {
  EXPECT_EQ(count(lut3_set3()), 256);
}

}  // namespace
}  // namespace vpga::logic
