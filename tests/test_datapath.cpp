// Unit tests for the bus-level datapath construction kit.

#include "designs/datapath.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hpp"
#include "netlist/simulate.hpp"

namespace vpga::designs {
namespace {

using netlist::Netlist;
using netlist::Simulator;

std::uint64_t read_outputs(const Simulator& sim, const Netlist& nl) {
  std::uint64_t v = 0;
  for (std::size_t o = 0; o < nl.outputs().size(); ++o)
    if (sim.output(o)) v |= std::uint64_t{1} << o;
  return v;
}

void drive(Simulator& sim, std::size_t base, std::uint64_t value, int width) {
  for (int b = 0; b < width; ++b) sim.set_input(base + static_cast<std::size_t>(b), (value >> b) & 1);
}

TEST(Datapath, PrefixAddMatchesRippleAdd) {
  // Both adders built on the same inputs must agree on every output bit.
  Netlist nl;
  const Bus a = input_bus(nl, "a", 10);
  const Bus b = input_bus(nl, "b", 10);
  const auto r = ripple_add(nl, a, b, netlist::NodeId{}, true);
  const auto p = prefix_add(nl, a, b, netlist::NodeId{}, true);
  for (std::size_t i = 0; i < r.size(); ++i)
    nl.add_output(nl.add_xor(r[i], p[i]), "diff" + std::to_string(i));
  Simulator sim(nl);
  common::Rng rng(5);
  for (int iter = 0; iter < 400; ++iter) {
    drive(sim, 0, rng.next_u64() & 0x3FF, 10);
    drive(sim, 10, rng.next_u64() & 0x3FF, 10);
    sim.eval();
    EXPECT_EQ(read_outputs(sim, nl), 0u);
  }
}

TEST(Datapath, PrefixAddWithCarryIn) {
  Netlist nl;
  const Bus a = input_bus(nl, "a", 8);
  const Bus b = input_bus(nl, "b", 8);
  const auto cin = nl.add_input("cin");
  const auto s = prefix_add(nl, a, b, cin, true);
  output_bus(nl, "s", s);
  Simulator sim(nl);
  common::Rng rng(7);
  for (int iter = 0; iter < 500; ++iter) {
    const auto av = rng.next_u64() & 0xFF;
    const auto bv = rng.next_u64() & 0xFF;
    const bool c = rng.next_bool();
    drive(sim, 0, av, 8);
    drive(sim, 8, bv, 8);
    sim.set_input(16, c);
    sim.eval();
    EXPECT_EQ(read_outputs(sim, nl), av + bv + (c ? 1 : 0));
  }
}

TEST(Datapath, PrefixSubTwosComplement) {
  Netlist nl;
  const Bus a = input_bus(nl, "a", 8);
  const Bus b = input_bus(nl, "b", 8);
  output_bus(nl, "d", prefix_sub(nl, a, b));
  Simulator sim(nl);
  common::Rng rng(9);
  for (int iter = 0; iter < 300; ++iter) {
    const auto av = rng.next_u64() & 0xFF;
    const auto bv = rng.next_u64() & 0xFF;
    drive(sim, 0, av, 8);
    drive(sim, 8, bv, 8);
    sim.eval();
    EXPECT_EQ(read_outputs(sim, nl), (av - bv) & 0xFF);
  }
}

TEST(Datapath, LessThanUnsigned) {
  Netlist nl;
  const Bus a = input_bus(nl, "a", 6);
  const Bus b = input_bus(nl, "b", 6);
  nl.add_output(less_than(nl, a, b), "lt");
  Simulator sim(nl);
  for (unsigned av = 0; av < 64; av += 3)
    for (unsigned bv = 0; bv < 64; bv += 5) {
      drive(sim, 0, av, 6);
      drive(sim, 6, bv, 6);
      sim.eval();
      EXPECT_EQ(sim.output(0), av < bv) << av << " " << bv;
    }
}

TEST(Datapath, LeadingZerosCountsFromMsb) {
  Netlist nl;
  const Bus v = input_bus(nl, "v", 12);
  output_bus(nl, "z", leading_zeros(nl, v));
  Simulator sim(nl);
  for (int lead = 0; lead < 12; ++lead) {
    // Value with exactly `lead` leading zeros: top set bit at 11-lead.
    const std::uint64_t val = std::uint64_t{1} << (11 - lead);
    drive(sim, 0, val | (val >> 2), 12);
    sim.eval();
    // LSB-side padding with ones does not add leading zeros: count == lead.
    const auto out = read_outputs(sim, nl);
    EXPECT_EQ(out & 0xF, static_cast<unsigned>(lead)) << lead;
  }
}

TEST(Datapath, LeadingZerosAllZeroSetsTopFlag) {
  Netlist nl;
  const Bus v = input_bus(nl, "v", 8);
  const Bus z = leading_zeros(nl, v);
  nl.add_output(z.back(), "allzero");
  Simulator sim(nl);
  drive(sim, 0, 0, 8);
  sim.eval();
  EXPECT_TRUE(sim.output(0));
  drive(sim, 0, 1, 8);
  sim.eval();
  EXPECT_FALSE(sim.output(0));
}

TEST(Datapath, BarrelShiftBothDirections) {
  Netlist nl;
  const Bus v = input_bus(nl, "v", 8);
  const Bus amt = input_bus(nl, "amt", 3);
  output_bus(nl, "l", barrel_shift(nl, v, amt, true));
  output_bus(nl, "r", barrel_shift(nl, v, amt, false));
  Simulator sim(nl);
  for (unsigned a = 0; a < 8; ++a) {
    drive(sim, 0, 0xB5, 8);
    drive(sim, 8, a, 3);
    sim.eval();
    const auto out = read_outputs(sim, nl);
    EXPECT_EQ(out & 0xFF, (0xB5u << a) & 0xFF) << a;
    EXPECT_EQ((out >> 8) & 0xFF, 0xB5u >> a) << a;
  }
}

TEST(Datapath, CrcStepMatchesBitSerialReference) {
  // The parallel (matrix) construction must equal the classic bit-serial
  // Galois LFSR advanced data.size() times.
  constexpr std::uint64_t kPoly = 0x1021;  // CRC-16-CCITT
  Netlist nl;
  const Bus crc = input_bus(nl, "crc", 16);
  const Bus data = input_bus(nl, "d", 8);
  output_bus(nl, "next", crc_step(nl, crc, data, kPoly));
  Simulator sim(nl);
  common::Rng rng(21);
  for (int iter = 0; iter < 200; ++iter) {
    const auto c0 = rng.next_u64() & 0xFFFF;
    const auto dv = rng.next_u64() & 0xFF;
    drive(sim, 0, c0, 16);
    drive(sim, 16, dv, 8);
    sim.eval();
    // Software reference.
    std::uint64_t state = c0;
    for (int k = 0; k < 8; ++k) {
      const std::uint64_t fb = ((state >> 15) ^ (dv >> k)) & 1;
      state = ((state << 1) & 0xFFFF) | fb;
      if (fb) state ^= kPoly & ~1ULL;  // taps above bit 0 (bit 0 carries fb)
    }
    EXPECT_EQ(read_outputs(sim, nl) & 0xFFFF, state) << iter;
  }
}

TEST(Datapath, DecodeOneHot) {
  Netlist nl;
  const Bus sel = input_bus(nl, "s", 3);
  output_bus(nl, "d", decode(nl, sel));
  Simulator sim(nl);
  for (unsigned s = 0; s < 8; ++s) {
    drive(sim, 0, s, 3);
    sim.eval();
    EXPECT_EQ(read_outputs(sim, nl), std::uint64_t{1} << s);
  }
}

TEST(Datapath, PriorityGrantLsbWins) {
  Netlist nl;
  const Bus req = input_bus(nl, "r", 6);
  output_bus(nl, "g", priority_grant(nl, req));
  Simulator sim(nl);
  drive(sim, 0, 0b101100, 6);
  sim.eval();
  EXPECT_EQ(read_outputs(sim, nl), 0b000100u);
  drive(sim, 0, 0, 6);
  sim.eval();
  EXPECT_EQ(read_outputs(sim, nl), 0u);
}

TEST(Datapath, MuxTreeSelectsEveryInput) {
  Netlist nl;
  const Bus sel = input_bus(nl, "s", 2);
  std::vector<Bus> choices;
  for (int i = 0; i < 4; ++i) choices.push_back(input_bus(nl, "c" + std::to_string(i), 4));
  output_bus(nl, "o", mux_tree(nl, sel, choices));
  Simulator sim(nl);
  for (unsigned s = 0; s < 4; ++s) {
    drive(sim, 0, s, 2);
    for (unsigned i = 0; i < 4; ++i) drive(sim, 2 + 4 * i, 0x9 + i, 4);
    sim.eval();
    EXPECT_EQ(read_outputs(sim, nl), 0x9 + s);
  }
}

TEST(Datapath, ReduceTreesMatchSemantics) {
  Netlist nl;
  const Bus v = input_bus(nl, "v", 7);
  nl.add_output(reduce_or(nl, v), "or");
  nl.add_output(reduce_and(nl, v), "and");
  nl.add_output(reduce_xor(nl, v), "xor");
  Simulator sim(nl);
  common::Rng rng(3);
  for (int iter = 0; iter < 200; ++iter) {
    const auto val = rng.next_u64() & 0x7F;
    drive(sim, 0, val, 7);
    sim.eval();
    EXPECT_EQ(sim.output(0), val != 0);
    EXPECT_EQ(sim.output(1), val == 0x7F);
    EXPECT_EQ(sim.output(2), (std::popcount(val) & 1) != 0);
  }
}

}  // namespace
}  // namespace vpga::designs
