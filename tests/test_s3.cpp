// Tests reproducing Section 2.1 of the paper: S3 gate feasibility (196/256),
// the five infeasible categories of Figure 2, and the modified S3 cell.

#include "logic/s3.hpp"

#include <gtest/gtest.h>

#include "logic/truth_table.hpp"

namespace vpga::logic {
namespace {

TEST(S3, ImplementsExactly196Functions) {
  const auto a = analyze_s3();
  EXPECT_EQ(count(a.feasible), 196);  // paper, Section 2.1
  EXPECT_EQ(a.category_count[static_cast<int>(S3Category::kFeasible)], 196);
}

TEST(S3, FigureTwoCategoryCounts) {
  const auto a = analyze_s3();
  EXPECT_EQ(a.category_count[static_cast<int>(S3Category::kCofactorXor)], 28);
  EXPECT_EQ(a.category_count[static_cast<int>(S3Category::kCofactorXnor)], 28);
  EXPECT_EQ(a.category_count[static_cast<int>(S3Category::kTwoInputXor)], 1);
  EXPECT_EQ(a.category_count[static_cast<int>(S3Category::kTwoInputXnor)], 1);
  EXPECT_EQ(a.category_count[static_cast<int>(S3Category::kComplementaryCofactors)], 2);
}

TEST(S3, CategoriesPartitionAll256) {
  const auto a = analyze_s3();
  int total = 0;
  for (int c : a.category_count) total += c;
  EXPECT_EQ(total, 256);
}

TEST(S3, KnownFunctionClassification) {
  const auto a = analyze_s3();
  // 3-input XOR/XNOR have complementary cofactors.
  EXPECT_EQ(a.category[tt3::xor3().bits()], S3Category::kComplementaryCofactors);
  EXPECT_EQ(a.category[tt3::xnor3().bits()], S3Category::kComplementaryCofactors);
  // 2-input XOR of (a, b), independent of the select.
  EXPECT_EQ(a.category[(tt3::a() ^ tt3::b()).bits()], S3Category::kTwoInputXor);
  EXPECT_EQ(a.category[(~(tt3::a() ^ tt3::b())).bits()], S3Category::kTwoInputXnor);
  // Simple gates are feasible.
  EXPECT_EQ(a.category[tt3::nand3().bits()], S3Category::kFeasible);
  EXPECT_EQ(a.category[tt3::maj3().bits()], S3Category::kFeasible);
  EXPECT_EQ(a.category[tt3::mux().bits()], S3Category::kFeasible);
}

TEST(S3, FeasibleIffBothCofactorsNonXorType) {
  const auto a = analyze_s3();
  for (int f = 0; f < 256; ++f) {
    const auto g = static_cast<std::uint8_t>(f & 0x0F);
    const auto h = static_cast<std::uint8_t>(f >> 4);
    const bool expect = !is_xor_type2(g) && !is_xor_type2(h);
    EXPECT_EQ(a.feasible.test(static_cast<std::size_t>(f)), expect) << f;
  }
}

TEST(S3, AnySelectFreedomIsSuperset) {
  const auto designated = analyze_s3().feasible;
  const auto any = s3_feasible_any_select();
  for (int f = 0; f < 256; ++f)
    if (designated.test(static_cast<std::size_t>(f)))
      EXPECT_TRUE(any.test(static_cast<std::size_t>(f)));
  EXPECT_GE(count(any), 196);
  // 3-input XOR has XOR-type cofactors for every select choice: still out.
  EXPECT_FALSE(any.test(tt3::xor3().bits()));
  EXPECT_FALSE(any.test(tt3::xnor3().bits()));
  // 2-input XOR becomes feasible once a or b may drive the select pin:
  // a ? b' : b has cofactors b and b', both ND2WI-implementable.
  EXPECT_TRUE(any.test((tt3::a() ^ tt3::b()).bits()));
}

TEST(ModifiedS3, CoversAll256Functions) {
  EXPECT_EQ(count(modified_s3_set3()), 256);  // paper, Figure 3 claim
}

TEST(ModifiedS3, CoversEveryS3InfeasibleCategoryWitness) {
  const auto& m = modified_s3_set3();
  EXPECT_TRUE(m.test(tt3::xor3().bits()));
  EXPECT_TRUE(m.test(tt3::xnor3().bits()));
  EXPECT_TRUE(m.test((tt3::a() ^ tt3::b()).bits()));
  EXPECT_TRUE(m.test(tt3::maj3().bits()));
}

TEST(S3, CategoryNamesAreStable) {
  EXPECT_STREQ(to_string(S3Category::kFeasible), "S3-feasible");
  EXPECT_STREQ(to_string(S3Category::kComplementaryCofactors),
               "complementary cofactors (3-input XOR/XNOR)");
}

// Parameterized sweep: every feasible function must admit an explicit MUX +
// two-ND2WI realization; we verify constructively by searching cofactor pairs.
class S3FeasibleSweep : public ::testing::TestWithParam<int> {};

TEST_P(S3FeasibleSweep, FeasibleFunctionsReconstruct) {
  const int f = GetParam();
  const auto a = analyze_s3();
  const auto g = static_cast<std::uint8_t>(f & 0x0F);
  const auto h = static_cast<std::uint8_t>(f >> 4);
  if (a.feasible.test(static_cast<std::size_t>(f))) {
    // Rebuild f = s'·g + s·h and confirm identity.
    const int rebuilt = (g) | (h << 4);
    EXPECT_EQ(rebuilt, f);
    EXPECT_TRUE(nd2wi_set2().test(g));
    EXPECT_TRUE(nd2wi_set2().test(h));
  } else {
    EXPECT_TRUE(is_xor_type2(g) || is_xor_type2(h));
  }
}

INSTANTIATE_TEST_SUITE_P(All256, S3FeasibleSweep, ::testing::Range(0, 256));

}  // namespace
}  // namespace vpga::logic
