// Tests for per-stage memory profiling (src/obs/memtrack.*): the tracker
// itself, innermost-span attribution, and the FlowOptions::memtrack surface
// (stage.*.alloc_* counters in FlowReport::obs, off by default).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/plb.hpp"
#include "designs/designs.hpp"
#include "flow/flow.hpp"
#include "obs/memtrack.hpp"
#include "obs/obs.hpp"

namespace vpga {
namespace {

designs::BenchmarkDesign small_design() {
  return {designs::make_ripple_adder(12), 8000.0, true};
}

TEST(MemTracker, CountsAllocationsWhileBound) {
  obs::memtrack::MemTracker tracker;
  {
    obs::memtrack::ScopedMemTrack bind(&tracker);
    auto block = std::make_unique<char[]>(1 << 16);
    block[0] = 1;
  }
  const auto& t = tracker.totals();
  EXPECT_GE(t.alloc_count, 1);
  EXPECT_GE(t.alloc_bytes, 1 << 16);
  EXPECT_GE(t.peak_live_bytes, 1 << 16);
  EXPECT_GE(t.free_count, 1);

  // Unbound again: further allocations are invisible to this tracker.
  const long long count_before = tracker.totals().alloc_count;
  auto untracked = std::make_unique<char[]>(1 << 16);
  untracked[0] = 1;
  EXPECT_EQ(tracker.totals().alloc_count, count_before);
}

TEST(MemTracker, AttributesToInnermostFrame) {
  obs::memtrack::MemTracker tracker;
  obs::memtrack::ScopedMemTrack bind(&tracker);
  tracker.push_frame();  // outer
  auto outer_block = std::make_unique<char[]>(1 << 12);
  outer_block[0] = 1;
  tracker.push_frame();  // inner
  auto inner_block = std::make_unique<char[]>(1 << 20);
  inner_block[0] = 1;
  const obs::memtrack::FrameStats inner = tracker.pop_frame();
  const obs::memtrack::FrameStats outer = tracker.pop_frame();

  EXPECT_GE(inner.alloc_bytes, 1 << 20);
  EXPECT_GE(inner.alloc_count, 1);
  // The outer frame's own bytes exclude the inner allocation (innermost
  // attribution) ...
  EXPECT_GE(outer.alloc_bytes, 1 << 12);
  EXPECT_LT(outer.alloc_bytes, 1 << 20);
  // ... but its peak folds the child's peak in: the inner megabyte was live
  // while the outer frame was open.
  EXPECT_GE(outer.peak_live_bytes, 1 << 20);
}

TEST(MemTrackFlow, ProducesPerStageAllocCounters) {
  flow::FlowOptions opts;
  opts.metrics = true;
  opts.memtrack = true;
  opts.seed = 7;
  const auto arch = core::PlbArchitecture::granular();
  const auto rep = flow::run_flow(small_design(), arch, 'b', opts);

  EXPECT_TRUE(rep.obs.memtrack_enabled);
  EXPECT_GT(rep.obs.counter("stage.map.alloc_bytes"), 0);
  EXPECT_GT(rep.obs.counter("stage.map.alloc_count"), 0);
  EXPECT_GT(rep.obs.counter("stage.map.peak_live_bytes"), 0);
  EXPECT_GT(rep.obs.counter("stage.pack.alloc_bytes"), 0);
  // Whole-run totals from FlowOptions::memtrack plumbing in run_flow.
  EXPECT_GT(rep.obs.counter("flow.alloc_bytes"), 0);
  EXPECT_GT(rep.obs.counter("flow.alloc_count"), 0);
  EXPECT_GT(rep.obs.counter("flow.peak_live_bytes"), 0);
  // The run allocates at least what any single stage allocates.
  EXPECT_GE(rep.obs.counter("flow.alloc_bytes"),
            rep.obs.counter("stage.pack.alloc_bytes"));
}

TEST(MemTrackFlow, OffByDefaultLeavesNoAllocCounters) {
  flow::FlowOptions opts;
  opts.metrics = true;
  opts.seed = 7;
  const auto arch = core::PlbArchitecture::granular();
  const auto rep = flow::run_flow(small_design(), arch, 'b', opts);

  EXPECT_FALSE(rep.obs.memtrack_enabled);
  for (const auto& [name, value] : rep.obs.counters) {
    EXPECT_EQ(name.find(".alloc_bytes"), std::string::npos) << name;
    EXPECT_EQ(name.find(".alloc_count"), std::string::npos) << name;
    EXPECT_EQ(name.find(".peak_live_bytes"), std::string::npos) << name;
  }
  EXPECT_EQ(rep.obs.counter("flow.alloc_bytes"), 0);
}

}  // namespace
}  // namespace vpga
