// Tests for the exact equivalence checker (verify/cec.hpp): seeded mutations
// that random stimulus provably misses, counterexample replay, tier routing,
// resource limits and byte-stable determinism.

#include "verify/cec.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/plb.hpp"
#include "designs/designs.hpp"
#include "netlist/bitsim.hpp"
#include "netlist/netlist.hpp"
#include "synth/mapper.hpp"
#include "verify/equiv.hpp"

namespace vpga::verify {
namespace {

using netlist::BitSimulator;
using netlist::Netlist;
using netlist::NodeId;

/// Replays a counterexample through both original netlists and returns true
/// iff the diverging point really computes different values — the
/// independent witness check the tests insist on for every refutation.
bool cex_witnesses_diff(const Netlist& a, const Netlist& b, const CecCounterexample& cex) {
  BitSimulator sa(a);
  BitSimulator sb(b);
  for (std::size_t i = 0; i < cex.inputs.size(); ++i) {
    const std::uint64_t w = cex.inputs[i] != 0 ? ~std::uint64_t{0} : 0;
    sa.set_input(i, w);
    sb.set_input(i, w);
  }
  for (std::size_t d = 0; d < cex.state.size(); ++d) {
    const std::uint64_t w = cex.state[d] != 0 ? ~std::uint64_t{0} : 0;
    sa.set_state(d, w);
    sb.set_state(d, w);
  }
  sa.eval();
  sb.eval();
  const std::uint64_t va = cex.is_state ? sa.next_state(cex.point_index) : sa.output(cex.point_index);
  const std::uint64_t vb = cex.is_state ? sb.next_state(cex.point_index) : sb.output(cex.point_index);
  return ((va ^ vb) & 1u) != 0;
}

/// A `width`-input AND tree whose output is 1 only on the all-ones vector —
/// the classic needle random stimulus cannot find. `mutate_at` >= 0 replaces
/// that leaf-pair gate with OR (a gate-type flip visible only when the whole
/// tree is driven to 1).
Netlist make_and_tree(int width, int mutate_at = -1) {
  Netlist nl("and_tree");
  std::vector<NodeId> layer;
  for (int i = 0; i < width; ++i) layer.push_back(nl.add_input("x" + std::to_string(i)));
  int gate = 0;
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(gate == mutate_at ? nl.add_or(layer[i], layer[i + 1])
                                       : nl.add_and(layer[i], layer[i + 1]));
      ++gate;
    }
    if (layer.size() % 2 != 0) next.push_back(layer.back());
    layer = std::move(next);
  }
  nl.add_output(layer[0], "y");
  return nl;
}

/// How a parity chain folds its inputs. Parity is fully symmetric, so every
/// fold computes the same function — but through disjoint internal nodes, so
/// structural hashing and signature sweeping find nothing to merge between
/// two different folds and the verdict rests entirely on the closing tier.
enum class Fold {
  kForward,   ///< x0 ^ x1 ^ x2 ^ ...
  kReversed,  ///< ... ^ x2 ^ x1 ^ x0 (suffix parities vs prefix parities)
  /// A fixed pseudo-random input order. The XOR miter of a forward vs a
  /// shuffled fold is a Tseitin formula over the union of two Hamiltonian
  /// paths — an expander, the canonical resolution-hard family — while the
  /// BDD of every intermediate (a parity of some input subset) stays linear
  /// under any variable order. This is the shape that separates the tiers.
  kShuffled,
};

Netlist make_parity_chain(int width, Fold fold) {
  Netlist nl("parity");
  std::vector<NodeId> xs;
  for (int i = 0; i < width; ++i) xs.push_back(nl.add_input("x" + std::to_string(i)));
  std::vector<std::size_t> ord(static_cast<std::size_t>(width));
  for (std::size_t i = 0; i < ord.size(); ++i)
    ord[i] = fold == Fold::kReversed ? ord.size() - 1 - i : i;
  if (fold == Fold::kShuffled) {  // deterministic Fisher-Yates, fixed seed
    std::uint64_t s = 0x9E3779B97F4A7C15ull;
    for (std::size_t i = ord.size() - 1; i > 0; --i) {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      std::swap(ord[i], ord[(s >> 33) % (i + 1)]);
    }
  }
  NodeId acc = xs[ord[0]];
  for (std::size_t i = 1; i < ord.size(); ++i) acc = nl.add_xor(acc, xs[ord[i]]);
  nl.add_output(acc, "p");
  return nl;
}

/// Clones `src` with its registers *declared* in `perm` order (new DFF
/// position i holds the register at src position perm[i]); every function and
/// wire is otherwise identical. Positional DFF matching mislabels such a pair
/// as diverged — only register correspondence recovers the bijection.
Netlist permute_registers(const Netlist& src, const std::vector<std::size_t>& perm) {
  Netlist dst(src.name());
  std::vector<NodeId> map(src.num_nodes());
  // DFF Q pins act as combinational leaves, so declaring every register up
  // front (in permuted order) keeps all later references resolvable.
  for (const std::size_t at : perm) {
    const NodeId old = src.dffs()[at];
    map[old.index()] = dst.add_dff(NodeId(), src.name_of(old));
  }
  for (const NodeId id : src.all_nodes()) {
    const auto& n = src.node(id);
    switch (n.type) {
      case netlist::NodeType::kInput:
        map[id.index()] = dst.add_input(src.name_of(id));
        break;
      case netlist::NodeType::kConst:
        map[id.index()] = dst.add_constant((n.func.bits() & 1u) != 0);
        break;
      case netlist::NodeType::kComb: {
        std::vector<NodeId> fins;
        for (const NodeId f : src.fanins(id)) fins.push_back(map[f.index()]);
        map[id.index()] = dst.add_comb(n.func, fins, src.name_of(id));
        break;
      }
      case netlist::NodeType::kOutput:
        dst.add_output(map[src.fanin(id, 0).index()], src.name_of(id));
        break;
      case netlist::NodeType::kDff:
        break;  // declared above; D wired below once its cone exists
    }
  }
  for (const NodeId dff : src.dffs())
    dst.set_dff_input(map[dff.index()], map[src.fanin(dff, 0).index()]);
  return dst;
}

/// The random-stimulus gate at its defaults (64 cycles x 64 lanes) — used to
/// demonstrate which mutations it misses.
bool random_equiv_passes(const Netlist& golden, const Netlist& revised) {
  VerifyReport report;
  check_equivalence(golden, revised, "test", report, EquivOptions{});
  return !report.has_errors();
}

TEST(Cec, IdenticalNetlistsProveStructurally) {
  const Netlist nl = make_and_tree(32);
  const CecReport rep = check_combinational_equivalence(nl, nl);
  EXPECT_TRUE(rep.proven());
  EXPECT_EQ(rep.checks, 1);
  EXPECT_EQ(rep.tier_struct, 1);
  EXPECT_EQ(rep.tier_sat, 0);
}

TEST(Cec, ReassociatedAddersProve) {
  // Three adder architectures computing the same function with completely
  // different structure: ripple vs carry-select (exhaustive-tier supports)
  // and ripple vs Kogge-Stone prefix.
  const Netlist ripple = designs::make_ripple_adder(12);
  const Netlist csel = designs::make_carry_select_adder(12, 4);
  const Netlist prefix = designs::make_prefix_adder(12);
  EXPECT_TRUE(check_combinational_equivalence(ripple, csel).proven());
  const CecReport rep = check_combinational_equivalence(ripple, prefix);
  EXPECT_TRUE(rep.proven());
  EXPECT_EQ(rep.checks, 13);  // 12 sums + carry-out
}

TEST(Cec, GateTypeFlipEscapesRandomButIsCaught) {
  // Flip one leaf AND to OR deep inside a 40-input AND tree. The outputs
  // differ only when the other 38 inputs are all 1 (probability 2^-38 per
  // pattern), so the random gate's 4096 patterns miss it essentially surely
  // — while the exact gate returns a replayable counterexample.
  const Netlist golden = make_and_tree(40);
  const Netlist mutated = make_and_tree(40, /*mutate_at=*/3);
  EXPECT_TRUE(random_equiv_passes(golden, mutated));

  const CecReport rep = check_combinational_equivalence(golden, mutated);
  EXPECT_FALSE(rep.equivalent);
  ASSERT_TRUE(rep.cex.has_value());
  EXPECT_FALSE(rep.cex->is_state);
  EXPECT_TRUE(cex_witnesses_diff(golden, mutated, *rep.cex));
}

TEST(Cec, FaninSwapEscapesRandomButIsCaught) {
  // out = AND(x0..x35) & MUX(s, d0, d1): swapping the mux data fanins only
  // shows when every tree input is 1 and d0 != d1 — invisible to random
  // stimulus, found exactly by the miter.
  auto build = [](bool swap) {
    Netlist nl("gated_mux");
    std::vector<NodeId> xs;
    for (int i = 0; i < 36; ++i) xs.push_back(nl.add_input("x" + std::to_string(i)));
    const NodeId s = nl.add_input("s");
    const NodeId d0 = nl.add_input("d0");
    const NodeId d1 = nl.add_input("d1");
    NodeId acc = xs[0];
    for (int i = 1; i < 36; ++i) acc = nl.add_and(acc, xs[i]);
    const NodeId m = swap ? nl.add_mux(s, d1, d0) : nl.add_mux(s, d0, d1);
    nl.add_output(nl.add_and(acc, m), "y");
    return nl;
  };
  const Netlist golden = build(false);
  const Netlist mutated = build(true);
  EXPECT_TRUE(random_equiv_passes(golden, mutated));

  const CecReport rep = check_combinational_equivalence(golden, mutated);
  EXPECT_FALSE(rep.equivalent);
  ASSERT_TRUE(rep.cex.has_value());
  EXPECT_TRUE(cex_witnesses_diff(golden, mutated, *rep.cex));
}

TEST(Cec, ConstantStuckOutputEscapesRandomButIsCaught) {
  // The output of a 40-input AND tree is 0 on all but one of 2^40 vectors;
  // sticking it at constant 0 passes every random pattern, but the exact
  // checker must produce the all-ones witness.
  const Netlist golden = make_and_tree(40);
  Netlist stuck("and_tree");
  for (int i = 0; i < 40; ++i) stuck.add_input("x" + std::to_string(i));
  stuck.add_output(stuck.add_constant(false), "y");
  EXPECT_TRUE(random_equiv_passes(golden, stuck));

  const CecReport rep = check_combinational_equivalence(golden, stuck);
  EXPECT_FALSE(rep.equivalent);
  ASSERT_TRUE(rep.cex.has_value());
  for (const std::uint8_t v : rep.cex->inputs) EXPECT_EQ(v, 1);  // the needle
  EXPECT_TRUE(cex_witnesses_diff(golden, stuck, *rep.cex));
}

TEST(Cec, StateDivergenceIsCaughtWithStateWitness) {
  // Corrupt one next-state function of a counter: increment becomes hold on
  // the top bit. The witness must be a state assignment (is_state = true).
  auto build = [](bool corrupt) {
    Netlist nl("cnt");
    std::vector<NodeId> q;
    for (int i = 0; i < 4; ++i) q.push_back(nl.add_dff(NodeId(), "q" + std::to_string(i)));
    NodeId carry = nl.add_constant(true);
    for (int i = 0; i < 4; ++i) {
      const NodeId sum = nl.add_xor(q[i], carry);
      const NodeId d = (corrupt && i == 3) ? q[i] : sum;
      nl.set_dff_input(q[i], d);
      if (i + 1 < 4) carry = nl.add_and(q[i], carry);
      nl.add_output(q[i], "o" + std::to_string(i));
    }
    return nl;
  };
  const Netlist golden = build(false);
  const Netlist mutated = build(true);
  const CecReport rep = check_combinational_equivalence(golden, mutated);
  EXPECT_FALSE(rep.equivalent);
  ASSERT_TRUE(rep.cex.has_value());
  EXPECT_TRUE(rep.cex->is_state);
  EXPECT_EQ(rep.cex->point_index, 3u);
  EXPECT_TRUE(cex_witnesses_diff(golden, mutated, *rep.cex));
}

TEST(Cec, NpnPrefilterRejectsSmallCones) {
  // AND vs XOR are in different NPN classes, so the table tier refutes via
  // the canonical-form pre-filter before scanning rows.
  Netlist a("npn_a");
  Netlist b("npn_b");
  {
    const NodeId x = a.add_input("x");
    const NodeId y = a.add_input("y");
    a.add_output(a.add_and(x, y), "z");
  }
  {
    const NodeId x = b.add_input("x");
    const NodeId y = b.add_input("y");
    b.add_output(b.add_xor(x, y), "z");
  }
  const CecReport rep = check_combinational_equivalence(a, b);
  EXPECT_FALSE(rep.equivalent);
  EXPECT_EQ(rep.npn_rejects, 1);
  ASSERT_TRUE(rep.cex.has_value());
  EXPECT_TRUE(cex_witnesses_diff(a, b, *rep.cex));
}

TEST(Cec, InterfaceMismatchRefusesToCompare) {
  const Netlist small = designs::make_ripple_adder(4);
  const Netlist large = designs::make_ripple_adder(8);
  const CecReport rep = check_combinational_equivalence(small, large);
  EXPECT_FALSE(rep.interface_ok);
  EXPECT_FALSE(rep.proven());
}

TEST(Cec, ExhaustedBudgetReportsUnknownNotVerdict) {
  // With the sweep and BDD tiers disabled, the exhaustive tier capped below
  // the adders' support and a zero conflict budget, wide points must come
  // back unknown — never a wrong verdict.
  const Netlist ripple = designs::make_ripple_adder(16);
  const Netlist prefix = designs::make_prefix_adder(16);
  CecOptions opts;
  opts.sat_sweep = false;
  opts.bdd_tier = false;
  opts.max_exhaustive_inputs = 6;
  opts.sat_conflict_budget = 0;
  const CecReport rep = check_combinational_equivalence(ripple, prefix, opts);
  EXPECT_TRUE(rep.equivalent);  // nothing refuted...
  EXPECT_GT(rep.unknown, 0);    // ...but wide points are undecided
  EXPECT_FALSE(rep.proven());
  EXPECT_FALSE(rep.unknown_points.empty());
}

TEST(Cec, SweepCollapsesMappedDesign) {
  // Technology mapping rewrites the ALU into restricted cells; the sweep
  // must rediscover the internal equivalences and merge nodes across sides.
  const auto design = designs::make_alu(8);
  const auto arch = core::PlbArchitecture::granular();
  const auto mapped = synth::tech_map(design.netlist, synth::cell_target(arch),
                                      synth::Objective::kDelay);
  const CecReport rep = check_combinational_equivalence(design.netlist, mapped.netlist);
  EXPECT_TRUE(rep.proven()) << "ALU tech-map must prove exactly";
}

TEST(Cec, VerdictAndCounterexampleAreByteStable) {
  const Netlist golden = make_and_tree(40);
  const Netlist mutated = make_and_tree(40, /*mutate_at=*/3);
  const CecReport first = check_combinational_equivalence(golden, mutated);
  ASSERT_TRUE(first.cex.has_value());
  for (int i = 0; i < 3; ++i) {
    const CecReport again = check_combinational_equivalence(golden, mutated);
    ASSERT_TRUE(again.cex.has_value());
    EXPECT_EQ(again.cex->inputs, first.cex->inputs);
    EXPECT_EQ(again.cex->state, first.cex->state);
    EXPECT_EQ(again.cex->point_index, first.cex->point_index);
    EXPECT_EQ(again.equivalent, first.equivalent);
    EXPECT_EQ(again.sat_stats.conflicts, first.sat_stats.conflicts);
    EXPECT_EQ(again.sat_stats.decisions, first.sat_stats.decisions);
    EXPECT_EQ(again.sat_stats.propagations, first.sat_stats.propagations);
  }
}

TEST(Cec, ProofStatisticsAreByteStable) {
  const Netlist ripple = designs::make_ripple_adder(14);
  const Netlist prefix = designs::make_prefix_adder(14);
  const CecReport first = check_combinational_equivalence(ripple, prefix);
  EXPECT_TRUE(first.proven());
  const CecReport again = check_combinational_equivalence(ripple, prefix);
  EXPECT_EQ(again.tier_struct, first.tier_struct);
  EXPECT_EQ(again.tier_table, first.tier_table);
  EXPECT_EQ(again.tier_exhaustive, first.tier_exhaustive);
  EXPECT_EQ(again.tier_sat, first.tier_sat);
  EXPECT_EQ(again.sweep_merges, first.sweep_merges);
  EXPECT_EQ(again.sat_stats.conflicts, first.sat_stats.conflicts);
  EXPECT_EQ(again.sat_stats.propagations, first.sat_stats.propagations);
}

TEST(Cec, WideParityConeBeyondSatBudgetProvesByBdd) {
  // 128-input parity, forward vs shuffled fold: the XOR miter is an
  // expander-graph Tseitin formula, so with the BDD tier disabled the SAT
  // miter exhausts the *default* conflict budget (2^20 conflicts — this arm
  // deliberately burns them to prove the separation), while the default
  // ladder proves the same point in the BDD tier without a SAT fallback.
  const Netlist fwd = make_parity_chain(128, Fold::kForward);
  const Netlist shuf = make_parity_chain(128, Fold::kShuffled);
  CecOptions sat_only;
  sat_only.bdd_tier = false;
  sat_only.sat_sweep = false;
  const CecReport hard = check_combinational_equivalence(fwd, shuf, sat_only);
  EXPECT_TRUE(hard.equivalent);  // never a wrong verdict...
  EXPECT_GT(hard.unknown, 0);    // ...the point is undecided within budget
  EXPECT_FALSE(hard.proven());
  EXPECT_GE(hard.sat_stats.conflicts, CecOptions{}.sat_conflict_budget);

  const CecReport rep = check_combinational_equivalence(fwd, shuf);
  EXPECT_TRUE(rep.proven());
  EXPECT_EQ(rep.tier_bdd, 1);
  EXPECT_EQ(rep.bdd_fallbacks, 0);
  EXPECT_EQ(rep.unknown, 0);
}

TEST(Cec, ParityChainMutationRefutedByBddWithWitness) {
  // Complement one inner XOR of the reversed fold: the diff is parity-flipped
  // on every assignment touching that link, and the BDD tier must return a
  // replay-verified counterexample rather than just "not equal".
  const Netlist fwd = make_parity_chain(24, Fold::kForward);
  Netlist mutated = make_parity_chain(24, Fold::kReversed);
  for (const NodeId id : mutated.all_nodes()) {
    auto& n = mutated.node(id);
    if (n.type == netlist::NodeType::kComb) {
      n.func = ~n.func;  // XOR -> XNOR on the first chain link
      break;
    }
  }
  const CecReport rep = check_combinational_equivalence(fwd, mutated);
  EXPECT_FALSE(rep.equivalent);
  ASSERT_TRUE(rep.cex.has_value());
  EXPECT_TRUE(cex_witnesses_diff(fwd, mutated, *rep.cex));
}

TEST(Cec, PermutedRegistersProveViaCorrespondence) {
  // Reverse the declaration order of the counter's registers: position-based
  // matching would compare bit 0's next-state against bit 7's and refute a
  // correct design. Correspondence must recover the bijection and prove.
  const Netlist golden = designs::make_counter(8);
  std::vector<std::size_t> perm(golden.dffs().size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = perm.size() - 1 - i;
  const Netlist revised = permute_registers(golden, perm);
  const CecReport rep = check_combinational_equivalence(golden, revised);
  EXPECT_TRUE(rep.proven()) << "permuted counter must verify";
  EXPECT_GT(rep.corr_permuted, 0);
  EXPECT_EQ(rep.corr_fallbacks, 0);
  EXPECT_TRUE(rep.unmatched_registers.empty());
}

TEST(Cec, PermutedPaperDesignProvesExactly) {
  // The acceptance gate: a register-permuted variant of a paper design (the
  // sequential-dominated Firewire controller) passes the exact gate through
  // register correspondence, end to end via the check_cec wrapper.
  const Netlist golden = designs::make_firewire(4, 8).netlist;
  ASSERT_GT(golden.dffs().size(), 1u);
  std::vector<std::size_t> perm(golden.dffs().size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = perm.size() - 1 - i;
  const Netlist revised = permute_registers(golden, perm);
  const CecReport rep = check_combinational_equivalence(golden, revised);
  EXPECT_TRUE(rep.proven()) << "permuted firewire must verify";
  EXPECT_GT(rep.corr_permuted, 0);

  VerifyReport r;
  check_cec(golden, revised, "test", r);
  EXPECT_EQ(r.error_count(), 0) << r.summary();
  EXPECT_EQ(r.warning_count(), 0) << r.summary();
}

TEST(Cec, ForcedBddTierIsCompleteAndByteStable) {
  // force_bdd routes every point straight to the BDD tier (SAT remains only
  // as the exhaustion fallback); verdict and statistics must be byte-stable.
  const Netlist ripple = designs::make_ripple_adder(12);
  const Netlist prefix = designs::make_prefix_adder(12);
  CecOptions opts;
  opts.force_bdd = true;
  const CecReport first = check_combinational_equivalence(ripple, prefix, opts);
  EXPECT_TRUE(first.proven());
  EXPECT_EQ(first.tier_struct, 0);
  EXPECT_EQ(first.tier_table, 0);
  EXPECT_EQ(first.tier_exhaustive, 0);
  EXPECT_EQ(first.tier_bdd, first.checks);
  const CecReport again = check_combinational_equivalence(ripple, prefix, opts);
  EXPECT_EQ(again.bdd_nodes, first.bdd_nodes);
  EXPECT_EQ(again.bdd_ite_calls, first.bdd_ite_calls);
  EXPECT_EQ(again.bdd_cache_hits, first.bdd_cache_hits);
}

TEST(Cec, BddBudgetExhaustionFallsThroughToSat) {
  // A node budget too small for the adders' BDDs: the tier must give up
  // cleanly (bdd_fallbacks counts it) and SAT still proves the points.
  const Netlist ripple = designs::make_ripple_adder(12);
  const Netlist prefix = designs::make_prefix_adder(12);
  CecOptions opts;
  opts.force_bdd = true;
  opts.bdd_node_budget = 16;
  opts.sat_sweep = false;  // real per-point miters, so the fallback shows as tier_sat
  const CecReport rep = check_combinational_equivalence(ripple, prefix, opts);
  EXPECT_TRUE(rep.proven()) << "SAT fallback must close what the BDD budget cannot";
  EXPECT_GT(rep.bdd_fallbacks, 0);
  EXPECT_GT(rep.tier_sat, 0);
}

TEST(Cec, PaperSuiteMapsProveExactly) {
  // Every paper design survives technology mapping with an exact proof on
  // both architectures (the flow-level equivalent of the CI exact gate).
  for (const auto& arch : {core::PlbArchitecture::granular(), core::PlbArchitecture::lut_based()}) {
    for (const auto& design : designs::paper_suite(0.2)) {
      const auto mapped =
          synth::tech_map(design.netlist, synth::cell_target(arch), synth::Objective::kDelay);
      const CecReport rep =
          check_combinational_equivalence(design.netlist, mapped.netlist);
      EXPECT_TRUE(rep.proven()) << design.netlist.name() << " on " << arch.name;
      EXPECT_EQ(rep.checks,
                static_cast<int>(design.netlist.outputs().size() + design.netlist.dffs().size()));
    }
  }
}

}  // namespace
}  // namespace vpga::verify
