// Tests for tools/flowscope: the noise-aware perf-trajectory gate.
//
// Drives load_snapshot/analyze/verdict_json on the committed fixture
// snapshots under tests/data/ — the same files the flowscope_gate_* ctest
// entries feed the CLI — plus small handcrafted documents for the v1
// loader and counter gating.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "flowscope.hpp"
#include "obs/json.hpp"

namespace {

using namespace vpga::flowscope;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string fixture_path(const std::string& name) {
  return std::string(VPGA_REPO_ROOT) + "/tests/data/" + name;
}

Snapshot load_fixture(const std::string& name) {
  Snapshot snap;
  std::string error;
  const std::string path = fixture_path(name);
  EXPECT_TRUE(load_snapshot(read_file(path), path, snap, &error)) << error;
  return snap;
}

Analysis analyze_fixtures(const std::string& candidate_name) {
  const std::vector<Snapshot> baselines = {
      load_fixture("flowscope_base_a.json"),
      load_fixture("flowscope_base_b.json")};
  return analyze(baselines, load_fixture(candidate_name), Options{});
}

TEST(FlowscopeLoad, ParsesV2Fixture) {
  const Snapshot snap = load_fixture("flowscope_base_a.json");
  EXPECT_EQ(snap.schema_version, 2);
  EXPECT_DOUBLE_EQ(snap.scale, 0.15);
  ASSERT_EQ(snap.runs.size(), 4u);
  const auto it = snap.runs.find("alu8/granular_plb/b");
  ASSERT_NE(it, snap.runs.end());
  EXPECT_GT(it->second.stage_us.at("stage.pack"), 0.0);
  EXPECT_GT(it->second.counters.at("pack.groups"), 0.0);
  EXPECT_GT(it->second.memory.at("stage.pack/alloc_bytes"), 0.0);
  EXPECT_GT(it->second.report.at("critical_delay_ps"), 0.0);
}

TEST(FlowscopeLoad, ParsesV1WithoutMemory) {
  const std::string v1 =
      "{\"schema\":\"vpga.flow_bench.v1\",\"scale\":0.5,\"runs\":["
      "{\"design\":\"alu8\",\"arch\":\"lut_plb\",\"flow\":\"a\","
      "\"total_us\":10.0,\"stages\":{\"stage.map\":10.0},"
      "\"counters\":{\"map.dp_rounds\":6},\"report\":{\"plbs\":74}}]}";
  Snapshot snap;
  std::string error;
  ASSERT_TRUE(load_snapshot(v1, "v1.json", snap, &error)) << error;
  EXPECT_EQ(snap.schema_version, 1);
  ASSERT_EQ(snap.runs.size(), 1u);
  const vpga::flowscope::Run& run = snap.runs.at("alu8/lut_plb/a");
  EXPECT_DOUBLE_EQ(run.stage_us.at("stage.map"), 10.0);
  EXPECT_TRUE(run.memory.empty());
}

TEST(FlowscopeLoad, RejectsUnknownSchema) {
  Snapshot snap;
  std::string error;
  EXPECT_FALSE(load_snapshot("{\"schema\":\"vpga.flow_bench.v9\",\"runs\":[]}",
                             "bad.json", snap, &error));
  EXPECT_FALSE(error.empty());
}

TEST(FlowscopeGate, SeededPackRegressionIsFlagged) {
  const Analysis a = analyze_fixtures("flowscope_regress.json");
  EXPECT_GE(a.regressions, 1);
  bool pack_flagged = false;
  for (const Delta& d : a.deltas) {
    if (d.kind == "time" && d.id == "stage.pack") {
      pack_flagged = d.gated && d.verdict == Verdict::kRegress;
      EXPECT_GT(d.delta_rel, 0.15) << "seeded +20% should survive normalization";
      EXPECT_EQ(d.repeats, 2);
    }
  }
  EXPECT_TRUE(pack_flagged);
}

TEST(FlowscopeGate, WithinNoiseSnapshotIsClean) {
  const Analysis a = analyze_fixtures("flowscope_noise.json");
  EXPECT_EQ(a.regressions, 0);
  EXPECT_EQ(a.improvements, 0);
}

TEST(FlowscopeGate, CounterChangeIsExactNotNoisy) {
  Snapshot base = load_fixture("flowscope_base_a.json");
  Snapshot cand = base;
  cand.runs.at("alu8/granular_plb/b").counters.at("route.ripups") += 1;
  const Analysis a = analyze({base}, cand, Options{});
  bool seen = false;
  for (const Delta& d : a.deltas)
    if (d.kind == "counter" && d.id == "alu8/granular_plb/b/route.ripups") {
      seen = true;
      EXPECT_EQ(d.verdict, Verdict::kRegress);
      EXPECT_TRUE(d.gated);
    }
  EXPECT_TRUE(seen);
  EXPECT_GE(a.regressions, 1);
}

TEST(FlowscopeVerdict, JsonIsDeterministicAndParses) {
  const Analysis a = analyze_fixtures("flowscope_regress.json");
  const std::string once = verdict_json(a);
  const std::string twice = verdict_json(analyze_fixtures("flowscope_regress.json"));
  EXPECT_EQ(once, twice);

  namespace json = vpga::obs::json;
  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(once, doc, &error)) << error;
  const json::Value* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "vpga.flowscope.v1");
  const json::Value* summary = doc.find("summary");
  ASSERT_NE(summary, nullptr);
  const json::Value* regressions = summary->find("regressions");
  ASSERT_NE(regressions, nullptr);
  EXPECT_GE(regressions->number, 1.0);
  const json::Value* deltas = doc.find("deltas");
  ASSERT_NE(deltas, nullptr);
  EXPECT_TRUE(deltas->is_array());
  EXPECT_FALSE(deltas->array.empty());
}

TEST(FlowscopeVerdict, MarkdownNamesTheRegressedStage) {
  const Analysis a = analyze_fixtures("flowscope_regress.json");
  const std::string md = trajectory_markdown(a);
  EXPECT_NE(md.find("stage.pack"), std::string::npos);
  EXPECT_NE(md.find("regress"), std::string::npos);
}

}  // namespace
