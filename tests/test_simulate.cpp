// Tests for the cycle-accurate netlist simulator.

#include "netlist/simulate.hpp"

#include <gtest/gtest.h>

namespace vpga::netlist {
namespace {

TEST(Simulate, FullAdderTruth) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto cin = nl.add_input("cin");
  nl.add_output(nl.add_xor3(a, b, cin), "sum");
  nl.add_output(nl.add_maj(a, b, cin), "cout");
  Simulator sim(nl);
  for (unsigned v = 0; v < 8; ++v) {
    sim.set_input(0, v & 1);
    sim.set_input(1, (v >> 1) & 1);
    sim.set_input(2, (v >> 2) & 1);
    sim.eval();
    const int total = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
    EXPECT_EQ(sim.output(0), (total & 1) != 0) << v;
    EXPECT_EQ(sim.output(1), total >= 2) << v;
  }
}

TEST(Simulate, ToggleFlipFlopCounts) {
  Netlist nl;
  const auto one = nl.add_constant(true);
  const auto ff = nl.add_dff(NodeId{});
  const auto next = nl.add_xor(ff, one);
  nl.set_dff_input(ff, next);
  nl.add_output(ff, "q");
  Simulator sim(nl);
  bool expected = false;
  for (int cycle = 0; cycle < 6; ++cycle) {
    sim.eval();
    EXPECT_EQ(sim.output(0), expected);
    sim.step();
    expected = !expected;
  }
}

TEST(Simulate, ResetClearsState) {
  Netlist nl;
  const auto one = nl.add_constant(true);
  const auto ff = nl.add_dff(one);
  nl.add_output(ff, "q");
  Simulator sim(nl);
  sim.eval();
  sim.step();
  sim.eval();
  EXPECT_TRUE(sim.output(0));
  sim.reset();
  sim.eval();
  EXPECT_FALSE(sim.output(0));
}

TEST(Simulate, TwoBitRippleCounter) {
  Netlist nl;
  const auto q0 = nl.add_dff(NodeId{});
  const auto q1 = nl.add_dff(NodeId{});
  const auto one = nl.add_constant(true);
  nl.set_dff_input(q0, nl.add_xor(q0, one));
  nl.set_dff_input(q1, nl.add_xor(q1, q0));
  nl.add_output(q0, "b0");
  nl.add_output(q1, "b1");
  Simulator sim(nl);
  for (int t = 0; t < 8; ++t) {
    sim.eval();
    EXPECT_EQ(sim.output(0), (t & 1) != 0) << t;
    EXPECT_EQ(sim.output(1), (t & 2) != 0) << t;
    sim.step();
  }
}

TEST(Simulate, EquivalenceDetectsIdentity) {
  auto make = [] {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    nl.add_output(nl.add_xor(a, b), "y");
    return nl;
  };
  const auto n1 = make();
  const auto n2 = make();
  EXPECT_TRUE(equivalent_random_sim(n1, n2, 64));
}

TEST(Simulate, EquivalenceDetectsMismatch) {
  Netlist n1, n2;
  {
    const auto a = n1.add_input("a");
    const auto b = n1.add_input("b");
    n1.add_output(n1.add_xor(a, b), "y");
  }
  {
    const auto a = n2.add_input("a");
    const auto b = n2.add_input("b");
    n2.add_output(n2.add_and(a, b), "y");
  }
  EXPECT_FALSE(equivalent_random_sim(n1, n2, 64));
}

TEST(Simulate, EquivalenceRejectsInterfaceMismatch) {
  Netlist n1, n2;
  n1.add_output(n1.add_input("a"), "y");
  n2.add_input("a");
  n2.add_input("b");
  EXPECT_FALSE(equivalent_random_sim(n1, n2, 4));
}

TEST(Simulate, StructurallyDifferentButEquivalent) {
  // xor(a,b) vs (a|b) & ~(a&b): equivalence via random simulation.
  Netlist n1, n2;
  {
    const auto a = n1.add_input("a");
    const auto b = n1.add_input("b");
    n1.add_output(n1.add_xor(a, b), "y");
  }
  {
    const auto a = n2.add_input("a");
    const auto b = n2.add_input("b");
    n2.add_output(n2.add_and(n2.add_or(a, b), n2.add_nand(a, b)), "y");
  }
  EXPECT_TRUE(equivalent_random_sim(n1, n2, 128));
}

}  // namespace
}  // namespace vpga::netlist
