// Tests for the global router and the static timing analyzer.

#include <gtest/gtest.h>

#include "compact/compact.hpp"
#include "designs/designs.hpp"
#include "place/placement.hpp"
#include "route/router.hpp"
#include "synth/mapper.hpp"
#include "timing/sta.hpp"

namespace vpga {
namespace {

using core::PlbArchitecture;

struct Prepared {
  netlist::Netlist nl;
  place::Placement placed;
};

Prepared prepare(const netlist::Netlist& src) {
  const auto arch = PlbArchitecture::granular();
  const auto mapped =
      synth::tech_map(src, synth::cell_target(arch), synth::Objective::kDelay);
  auto comp = compact::compact(mapped.netlist, arch);
  Prepared p{std::move(comp.netlist), {}};
  p.placed = place::place(p.nl);
  return p;
}

TEST(Route, WirelengthAtLeastHpwl) {
  const auto p = prepare(designs::make_ripple_adder(16));
  const auto r = route::route(p.nl, p.placed, 8.0);
  // Rectilinear MST length >= HPWL on a per-net basis (grid-quantized, so
  // allow slack of one tile per connection).
  EXPECT_GT(r.total_wirelength_um, 0.0);
  EXPECT_GE(r.grid_w, 2);
  EXPECT_GE(r.grid_h, 2);
}

TEST(Route, NetLengthsConsistentWithTotal) {
  const auto p = prepare(designs::make_ripple_adder(12));
  const auto r = route::route(p.nl, p.placed, 8.0);
  double sum = 0.0;
  for (double l : r.net_length_um) sum += l;
  EXPECT_NEAR(sum, r.total_wirelength_um, 1e-6);
}

TEST(Route, CongestionNegotiationReducesOverflow) {
  const auto p = prepare(designs::make_alu(8).netlist);
  route::RouterOptions tight;
  tight.capacity_per_edge = 2;
  tight.ripup_iterations = 0;
  const auto r0 = route::route(p.nl, p.placed, 8.0, tight);
  tight.ripup_iterations = 3;
  const auto r1 = route::route(p.nl, p.placed, 8.0, tight);
  // Negotiation + maze detours trade hotspots for mild spread: the peak must
  // drop (or hold) even if more edges sit slightly over a tiny capacity.
  EXPECT_LE(r1.peak_congestion, r0.peak_congestion + 1e-9);
  EXPECT_LT(r1.peak_congestion, r0.peak_congestion);
  EXPECT_LE(r1.overflow_edges, 2 * r0.overflow_edges + 2);
  // Detours lengthen wires, but boundedly.
  EXPECT_GE(r1.total_wirelength_um, r0.total_wirelength_um);
  EXPECT_LE(r1.total_wirelength_um, 2.0 * r0.total_wirelength_um);
}

TEST(Route, DeterministicAndFinite) {
  const auto p = prepare(designs::make_counter(8));
  const auto r1 = route::route(p.nl, p.placed, 8.0);
  const auto r2 = route::route(p.nl, p.placed, 8.0);
  EXPECT_DOUBLE_EQ(r1.total_wirelength_um, r2.total_wirelength_um);
  EXPECT_GE(r1.peak_congestion, 0.0);
}

TEST(Sta, CombinationalDelayPositive) {
  const auto p = prepare(designs::make_ripple_adder(8));
  timing::StaOptions o;
  o.clock_period_ps = 10000;
  const auto t = timing::analyze(p.nl, p.placed, o);
  EXPECT_GT(t.critical_delay_ps, 0.0);
  EXPECT_LE(t.critical_delay_ps, o.clock_period_ps - t.wns_ps + 1e-6);
}

TEST(Sta, SlackDecreasesWithClockPeriod) {
  const auto p = prepare(designs::make_ripple_adder(8));
  timing::StaOptions o1, o2;
  o1.clock_period_ps = 10000;
  o2.clock_period_ps = 5000;
  const auto t1 = timing::analyze(p.nl, p.placed, o1);
  const auto t2 = timing::analyze(p.nl, p.placed, o2);
  EXPECT_NEAR(t1.wns_ps - t2.wns_ps, 5000.0, 1e-6);
  EXPECT_NEAR(t1.avg_slack_top10_ps - t2.avg_slack_top10_ps, 5000.0, 1e-6);
}

TEST(Sta, TopEndpointsSortedWorstFirst) {
  const auto p = prepare(designs::make_alu(8).netlist);
  timing::StaOptions o;
  o.clock_period_ps = 4000;
  const auto t = timing::analyze(p.nl, p.placed, o);
  ASSERT_FALSE(t.top_endpoints.empty());
  for (std::size_t i = 1; i < t.top_endpoints.size(); ++i)
    EXPECT_GE(t.top_endpoints[i].slack_ps, t.top_endpoints[i - 1].slack_ps);
  EXPECT_LE(t.top_endpoints.size(), 10u);
  EXPECT_DOUBLE_EQ(t.top_endpoints.front().slack_ps, t.wns_ps);
}

TEST(Sta, WireParasiticsSlowThingsDown) {
  const auto p = prepare(designs::make_ripple_adder(16));
  timing::StaOptions o;
  o.clock_period_ps = 10000;
  place::Placement zero = p.placed;
  for (auto& pt : zero.pos) pt = {0.0, 0.0};
  const auto ideal = timing::analyze(p.nl, zero, o);
  const auto real = timing::analyze(p.nl, p.placed, o);
  EXPECT_GT(real.critical_delay_ps, ideal.critical_delay_ps);
}

TEST(Sta, RoutedLengthsOverrideHpwl) {
  const auto p = prepare(designs::make_ripple_adder(16));
  const auto r = route::route(p.nl, p.placed, 8.0);
  timing::StaOptions o;
  o.clock_period_ps = 10000;
  o.net_length_um = r.net_length_um;
  const auto t = timing::analyze(p.nl, p.placed, o);
  EXPECT_GT(t.critical_delay_ps, 0.0);
}

TEST(Sta, CriticalityInUnitRange) {
  const auto p = prepare(designs::make_alu(8).netlist);
  timing::StaOptions o;
  o.clock_period_ps = 4000;
  const auto t = timing::analyze(p.nl, p.placed, o);
  ASSERT_EQ(t.criticality.size(), p.nl.num_nodes());
  double max_crit = 0.0;
  for (double c : t.criticality) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    max_crit = std::max(max_crit, c);
  }
  EXPECT_GT(max_crit, 0.0);
}

TEST(Sta, SequentialPathsTimed) {
  // A counter's critical path is FF -> increment -> FF.
  const auto p = prepare(designs::make_counter(16));
  timing::StaOptions o;
  o.clock_period_ps = 5000;
  const auto t = timing::analyze(p.nl, p.placed, o);
  EXPECT_GT(t.critical_delay_ps, 0.0);
  bool endpoint_is_dff = false;
  for (const auto& e : t.top_endpoints)
    if (p.nl.node(e.endpoint).type == netlist::NodeType::kDff) endpoint_is_dff = true;
  EXPECT_TRUE(endpoint_is_dff);
}

TEST(Sta, LutArchSlowerThanGranular) {
  // Same design, same flow stage: the LUT-based implementation must show a
  // longer critical path (the paper's Table 2 direction).
  const auto src = designs::make_ripple_adder(16);
  auto run = [&](const PlbArchitecture& arch) {
    const auto mapped =
        synth::tech_map(src, synth::cell_target(arch), synth::Objective::kDelay);
    auto comp = compact::compact(mapped.netlist, arch);
    const auto placed = place::place(comp.netlist);
    timing::StaOptions o;
    o.clock_period_ps = 10000;
    return timing::analyze(comp.netlist, placed, o).critical_delay_ps;
  };
  EXPECT_LT(run(PlbArchitecture::granular()), run(PlbArchitecture::lut_based()));
}

}  // namespace
}  // namespace vpga
