// Seeded-corruption tests for the stage-boundary checker: each test mutates a
// known-good netlist in one targeted way and asserts that exactly the right
// rule id fires — plus the clean-pass direction: every bench design clears
// both flows at verify_level = lint+equiv with zero error diagnostics.

#include "verify/verify.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "compact/compact.hpp"
#include "core/vias.hpp"
#include "designs/designs.hpp"
#include "flow/flow.hpp"
#include "pack/packer.hpp"
#include "place/placement.hpp"
#include "synth/mapper.hpp"
#include "verify/rules.hpp"

namespace vpga::verify {
namespace {

using core::ConfigKind;
using core::PlbArchitecture;
using library::CellKind;
using netlist::Netlist;
using netlist::NodeId;
using netlist::NodeType;

VerifyReport lint(const Netlist& nl) {
  VerifyReport r;
  lint_netlist(nl, "test", r);
  return r;
}

/// Rules positively fired by this binary's corruption tests. The catalogue
/// coverage test (registered last, so it runs after every corruption test)
/// checks this registry against verify::kRuleCatalogue.
std::set<std::string, std::less<>>& fired_registry() {
  static std::set<std::string, std::less<>> reg;
  return reg;
}

/// Asserts `rule` fired and records it for the catalogue coverage test.
void expect_fired(const VerifyReport& r, std::string_view rule) {
  EXPECT_TRUE(r.fired(rule)) << "expected rule " << rule << "\n" << r.summary();
  if (r.fired(rule)) fired_registry().insert(std::string(rule));
}

/// A small clean netlist every lint rule is exercised against. (The counter
/// generator is not used here: it carries a genuinely dead comb node, which
/// the lint rightly flags as lint.unreachable.)
Netlist good_netlist() { return designs::make_ripple_adder(4); }

TEST(Lint, CleanNetlistHasNoFindings) {
  const auto r = lint(good_netlist());
  EXPECT_EQ(r.error_count(), 0) << r.summary();
  EXPECT_EQ(r.warning_count(), 0) << r.summary();
}

TEST(Lint, DroppedFaninFiresArityMismatch) {
  auto nl = good_netlist();
  for (NodeId id : nl.all_nodes()) {
    const auto& n = nl.node(id);
    if (n.type == NodeType::kComb && n.num_fanins() >= 2) {
      // The seeded corruption: one fanin dropped.
      const auto fins = nl.fanins(id);
      nl.replace_fanins(id, fins.subspan(0, fins.size() - 1));
      break;
    }
  }
  const auto r = lint(nl);
  expect_fired(r, "lint.arity-mismatch");
  EXPECT_TRUE(r.has_errors());
}

TEST(Lint, OutOfRangeFaninFiresInvalidFanin) {
  auto nl = good_netlist();
  for (NodeId id : nl.all_nodes()) {
    const auto& n = nl.node(id);
    if (n.type == NodeType::kComb && n.num_fanins() > 0) {
      nl.set_fanin(id, 0, NodeId(nl.num_nodes() + 100));
      break;
    }
  }
  expect_fired(lint(nl), "lint.invalid-fanin");
}

TEST(Lint, ReadingAPrimaryOutputFiresOutputRead) {
  auto nl = good_netlist();
  ASSERT_FALSE(nl.outputs().empty());
  for (NodeId id : nl.all_nodes()) {
    const auto& n = nl.node(id);
    if (n.type == NodeType::kComb && n.num_fanins() > 0) {
      nl.set_fanin(id, 0, nl.outputs().front());
      break;
    }
  }
  expect_fired(lint(nl), "lint.output-read");
}

TEST(Lint, BackEdgeFiresCombCycle) {
  auto nl = good_netlist();
  // Point an early comb node at a later one: a purely combinational loop.
  NodeId early, late;
  for (NodeId id : nl.all_nodes()) {
    if (nl.node(id).type != NodeType::kComb || nl.node(id).num_fanins() == 0) continue;
    if (!early.valid()) early = id;
    late = id;
  }
  ASSERT_TRUE(early.valid() && late.valid() && early != late);
  nl.set_fanin(early, 0, late);
  nl.set_fanin(late, 0, early);
  expect_fired(lint(nl), "lint.comb-cycle");
}

TEST(Lint, UnconnectedDffFiresUndrivenDff) {
  auto nl = good_netlist();
  nl.add_dff(NodeId{}, "orphan_ff");
  expect_fired(lint(nl), "lint.undriven-dff");
}

TEST(Lint, FaninOnAnInputFiresIoBoundary) {
  auto nl = good_netlist();
  ASSERT_FALSE(nl.inputs().empty());
  nl.replace_fanins(nl.inputs().front(), {{nl.inputs().front()}});
  expect_fired(lint(nl), "lint.io-boundary");
}

TEST(Lint, SharedNameFiresDuplicateNameWarning) {
  auto nl = good_netlist();
  const auto a = nl.add_input("twin");
  const auto b = nl.add_input("twin");
  (void)a;
  (void)b;
  const auto r = lint(nl);
  expect_fired(r, "lint.duplicate-name");
  EXPECT_FALSE(r.has_errors()) << "duplicate names are a warning, not an error";
}

TEST(Lint, DeadLogicFiresUnreachableWarning) {
  auto nl = good_netlist();
  ASSERT_GE(nl.inputs().size(), 2u);
  nl.add_and(nl.inputs()[0], nl.inputs()[1]);  // feeds nothing
  const auto r = lint(nl);
  expect_fired(r, "lint.unreachable");
  EXPECT_FALSE(r.has_errors());
}

/// Mapped/compacted/packed fixtures share this setup (granular architecture).
struct Staged {
  PlbArchitecture arch = PlbArchitecture::granular();
  Netlist golden, mapped, compacted;
  explicit Staged(Netlist src = designs::make_alu(4).netlist) : golden(std::move(src)) {
    mapped = synth::tech_map(golden, synth::cell_target(arch), synth::Objective::kDelay)
                 .netlist;
    compacted = compact::compact_from(golden, mapped, arch).netlist;
  }
};

TEST(StageChecks, CleanMappedAndCompactedNetlistsPass) {
  Staged s;
  VerifyReport r;
  check_post_map(s.mapped, s.arch, "post-map", r);
  check_post_compact(s.compacted, s.arch, "post-compact", r);
  EXPECT_EQ(r.error_count(), 0) << r.summary();
}

TEST(StageChecks, ClearedCellFiresUnmappedNode) {
  Staged s;
  for (NodeId id : s.mapped.all_nodes()) {
    auto& n = s.mapped.node(id);
    if (n.type == NodeType::kComb && n.cell) {
      n.cell.reset();
      break;
    }
  }
  VerifyReport r;
  check_post_map(s.mapped, s.arch, "post-map", r);
  expect_fired(r, "map.unmapped-node");
}

TEST(StageChecks, ForeignCellFiresIllegalCell) {
  Staged s;
  // The 3-LUT belongs to the LUT-based PLB, not the granular library.
  for (NodeId id : s.mapped.all_nodes()) {
    auto& n = s.mapped.node(id);
    if (n.type == NodeType::kComb && n.cell) {
      n.cell = CellKind::kLut3;
      break;
    }
  }
  VerifyReport r;
  check_post_map(s.mapped, s.arch, "post-map", r);
  expect_fired(r, "map.illegal-cell");
}

TEST(StageChecks, SwappedTruthTableFiresCellFunctionMismatch) {
  Staged s;
  // XOR3 is exactly what an ND3WI cannot realize (the S3 gap of Section 2).
  bool corrupted = false;
  for (NodeId id : s.mapped.all_nodes()) {
    auto& n = s.mapped.node(id);
    if (n.type == NodeType::kComb && n.cell == CellKind::kNd3wi && n.num_fanins() == 3) {
      n.func = logic::tt3::xor3();
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted) << "ALU mapping produced no 3-input ND3WI node";
  VerifyReport r;
  check_post_map(s.mapped, s.arch, "post-map", r);
  expect_fired(r, "map.cell-function-mismatch");
}

NodeId first_configured(const Netlist& nl) {
  for (NodeId id : nl.all_nodes()) {
    const auto& n = nl.node(id);
    if (n.type == NodeType::kComb && n.has_config()) return id;
  }
  return {};
}

TEST(StageChecks, ForgedConfigTagFiresBadConfigTag) {
  Staged s;
  const NodeId id = first_configured(s.compacted);
  ASSERT_TRUE(id.valid());
  s.compacted.node(id).config_tag = 0xEE;  // names no ConfigKind
  VerifyReport r;
  check_post_compact(s.compacted, s.arch, "post-compact", r);
  expect_fired(r, "compact.bad-config-tag");
}

TEST(StageChecks, ForeignConfigFiresUnsupportedConfig) {
  Staged s;
  const NodeId id = first_configured(s.compacted);
  ASSERT_TRUE(id.valid());
  s.compacted.node(id).config_tag = static_cast<std::uint8_t>(ConfigKind::kLut3);
  VerifyReport r;
  check_post_compact(s.compacted, s.arch, "post-compact", r);
  expect_fired(r, "compact.unsupported-config");
}

TEST(StageChecks, UndersizedTileFiresConfigOverflow) {
  // A crippled architecture that still lists XOAMX as supported but has no
  // MUX-class slots to realize it: supported yet unimplementable.
  Staged s;
  auto tiny = s.arch;
  tiny.component_count[static_cast<std::size_t>(core::PlbComponent::kMux)] = 0;
  tiny.component_count[static_cast<std::size_t>(core::PlbComponent::kXoa)] = 0;
  const NodeId id = first_configured(s.compacted);
  ASSERT_TRUE(id.valid());
  s.compacted.node(id).config_tag = static_cast<std::uint8_t>(ConfigKind::kXoamx);
  VerifyReport r;
  check_post_compact(s.compacted, tiny, "post-compact", r);
  expect_fired(r, "compact.config-overflow");
}

TEST(StageChecks, BrokenMacroGroupingFiresMacroRep) {
  Staged s{designs::make_ripple_adder(8)};  // compaction forms FA macros here
  bool corrupted = false;
  for (NodeId id : s.compacted.all_nodes()) {
    auto& n = s.compacted.node(id);
    if (n.in_macro() && n.macro_rep != id) {
      n.macro_rep = id == NodeId(0u) ? NodeId(1u) : NodeId(0u);  // a non-macro node
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  VerifyReport r;
  check_post_compact(s.compacted, s.arch, "post-compact", r);
  expect_fired(r, "compact.macro-rep");
}

TEST(StageChecks, StrippedConfigFiresMissingConfig) {
  Staged s;
  const NodeId id = first_configured(s.compacted);
  ASSERT_TRUE(id.valid());
  s.compacted.node(id).config_tag = netlist::Node::kNoConfig;
  s.compacted.node(id).cell.reset();
  VerifyReport r;
  check_post_compact(s.compacted, s.arch, "post-compact", r);
  expect_fired(r, "compact.missing-config");
}

/// Packed fixture: the compacted design legalized into the granular array.
/// Defaults to the ripple adder, whose compaction produces full-adder macros
/// (the ALU's re-cover does not), so macro co-location is exercised too.
struct PackedStage : Staged {
  place::Placement placed;
  pack::PackedDesign packed;
  explicit PackedStage(Netlist src = designs::make_ripple_adder(8))
      : Staged(std::move(src)) {
    placed = place::place(compacted);
    packed = pack::pack(compacted, placed, arch);
  }
};

TEST(StageChecks, CleanPackedDesignPasses) {
  PackedStage s;
  VerifyReport r;
  check_post_pack(s.compacted, s.packed, s.arch, "post-pack", r);
  EXPECT_EQ(r.error_count(), 0) << r.summary();
}

TEST(StageChecks, OutOfGridTileFiresTileBounds) {
  PackedStage s;
  const NodeId id = first_configured(s.compacted);
  ASSERT_TRUE(id.valid());
  s.packed.tile_of_node[id.index()] = s.packed.grid_w * s.packed.grid_h + 7;
  VerifyReport r;
  check_post_pack(s.compacted, s.packed, s.arch, "post-pack", r);
  expect_fired(r, "pack.tile-bounds");
}

TEST(StageChecks, DroppedAssignmentFiresUnassigned) {
  PackedStage s;
  const NodeId id = first_configured(s.compacted);
  ASSERT_TRUE(id.valid());
  s.packed.tile_of_node[id.index()] = -1;
  VerifyReport r;
  check_post_pack(s.compacted, s.packed, s.arch, "post-pack", r);
  expect_fired(r, "pack.unassigned");
}

TEST(StageChecks, OverstuffedTileFiresCapacity) {
  PackedStage s;
  for (NodeId id : s.compacted.all_nodes()) {
    const auto& n = s.compacted.node(id);
    if (n.type == NodeType::kDff || (n.type == NodeType::kComb && n.has_config()))
      s.packed.tile_of_node[id.index()] = 0;  // everything into one tile
  }
  VerifyReport r;
  check_post_pack(s.compacted, s.packed, s.arch, "post-pack", r);
  expect_fired(r, "pack.capacity");
}

TEST(StageChecks, SeparatedMacroMembersFireMacroSplit) {
  PackedStage s;
  ASSERT_GE(s.packed.grid_w * s.packed.grid_h, 2);
  bool corrupted = false;
  for (NodeId id : s.compacted.all_nodes()) {
    const auto& n = s.compacted.node(id);
    if (n.in_macro() && n.macro_rep != id) {  // a non-representative FA member
      const int tile = s.packed.tile_of_node[id.index()];
      s.packed.tile_of_node[id.index()] = tile == 0 ? 1 : 0;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted) << "ALU compaction produced no full-adder macro";
  VerifyReport r;
  check_post_pack(s.compacted, s.packed, s.arch, "post-pack", r);
  expect_fired(r, "pack.macro-split");
}

TEST(StageChecks, RoutedDesignWithinViaBudgetPasses) {
  PackedStage s;
  VerifyReport r;
  check_post_route(s.compacted, s.packed, s.arch, "post-route", r);
  EXPECT_EQ(r.error_count(), 0) << r.summary();
}

TEST(StageChecks, OverBudgetTileFiresViaBudget) {
  PackedStage s;
  // Cram every slot-consuming node into tile 0: its configuration vias alone
  // (eight full adders at 13 vias each, plus DFF taps) exceed the candidate
  // sites of a crippled single-MUX architecture (4 pins x 10 sources = 40).
  for (NodeId id : s.compacted.all_nodes()) {
    const auto& n = s.compacted.node(id);
    if (n.type == NodeType::kDff || (n.type == NodeType::kComb && n.has_config()))
      s.packed.tile_of_node[id.index()] = 0;
  }
  auto tiny = s.arch;
  for (auto& c : tiny.component_count) c = 0;
  tiny.component_count[static_cast<std::size_t>(core::PlbComponent::kMux)] = 1;
  ASSERT_EQ(core::potential_via_sites(tiny), 40);
  VerifyReport r;
  check_post_route(s.compacted, s.packed, tiny, "post-route", r);
  expect_fired(r, "route.via-budget");
}

TEST(StageChecks, ViaTallyCountsChecksAndOverruns) {
  PackedStage s;
  const auto before = via_tally();
  VerifyReport ok;
  check_post_route(s.compacted, s.packed, s.arch, "post-route", ok);
  for (NodeId id : s.compacted.all_nodes()) {
    const auto& n = s.compacted.node(id);
    if (n.type == NodeType::kDff || (n.type == NodeType::kComb && n.has_config()))
      s.packed.tile_of_node[id.index()] = 0;
  }
  auto tiny = s.arch;
  for (auto& c : tiny.component_count) c = 0;
  tiny.component_count[static_cast<std::size_t>(core::PlbComponent::kMux)] = 1;
  VerifyReport bad;
  check_post_route(s.compacted, s.packed, tiny, "post-route", bad);
  const auto after = via_tally();
  EXPECT_EQ(after.checks, before.checks + 2);
  EXPECT_GT(after.overruns, before.overruns);
}

TEST(StageChecks, FlowVerifierRoutesViaBudgetThroughPostRouteStage) {
  PackedStage s;
  for (NodeId id : s.compacted.all_nodes()) {
    const auto& n = s.compacted.node(id);
    if (n.type == NodeType::kDff || (n.type == NodeType::kComb && n.has_config()))
      s.packed.tile_of_node[id.index()] = 0;
  }
  auto tiny = s.arch;
  for (auto& c : tiny.component_count) c = 0;
  tiny.component_count[static_cast<std::size_t>(core::PlbComponent::kMux)] = 1;
  VerifyOptions opts;
  FlowVerifier v(tiny, opts);
  const auto r = v.check(Stage::kPostRoute, s.compacted, nullptr, &s.packed);
  expect_fired(r, "route.via-budget");
  for (const auto& d : r.diagnostics())
    if (d.rule == "route.via-budget") EXPECT_EQ(d.stage, "post-route");
}

TEST(Equiv, ComplementedNodeFiresOutputDiverges) {
  const auto golden = designs::make_ripple_adder(4);
  auto revised = golden;
  for (NodeId id : revised.all_nodes()) {
    auto& n = revised.node(id);
    if (n.type == NodeType::kComb && n.num_fanins() >= 2) {
      n.func = ~n.func;  // structurally legal, functionally wrong
      break;
    }
  }
  VerifyReport r;
  check_equivalence(golden, revised, "test", r);
  expect_fired(r, "equiv.output-diverges");
  ASSERT_FALSE(r.diagnostics().empty());
  // The diagnostic names the diverging cone.
  EXPECT_NE(r.diagnostics().front().message.find("cone"), std::string::npos);
}

TEST(Equiv, DifferentInterfacesFireInterfaceMismatch) {
  VerifyReport r;
  check_equivalence(designs::make_ripple_adder(4), designs::make_ripple_adder(8), "test", r);
  expect_fired(r, "equiv.interface-mismatch");
}

TEST(Equiv, EquivalentNetlistsPass) {
  const auto golden = designs::make_ripple_adder(6);
  Staged s;  // mapped ALU is equivalent to its source by construction
  VerifyReport r;
  check_equivalence(s.golden, s.mapped, "test", r);
  EXPECT_EQ(r.error_count(), 0) << r.summary();
}

TEST(FlowVerifier, AccumulatesAcrossStages) {
  Staged s;
  VerifyOptions opts;
  opts.level = VerifyLevel::kLintEquiv;
  FlowVerifier v(s.arch, opts);
  EXPECT_EQ(v.check(Stage::kInput, s.golden).error_count(), 0);
  EXPECT_EQ(v.check(Stage::kPostMap, s.mapped, &s.golden).error_count(), 0);
  EXPECT_EQ(v.check(Stage::kPostCompact, s.compacted, &s.golden).error_count(), 0);
  EXPECT_EQ(v.report().error_count(), 0) << v.report().summary();
}

TEST(FlowVerifier, OffLevelChecksNothing) {
  auto nl = good_netlist();
  nl.add_dff(NodeId{}, "orphan_ff");  // would be an error at kLint
  VerifyOptions opts;
  opts.level = VerifyLevel::kOff;
  FlowVerifier v(PlbArchitecture::granular(), opts);
  EXPECT_TRUE(v.check(Stage::kInput, nl).empty());
}

// The acceptance gate: every bench design runs both flows on both paper
// architectures at lint+equiv with zero error diagnostics.
TEST(FlowVerifier, BenchSuitePassesLintEquivCleanly) {
  flow::FlowOptions opts;
  opts.verify_level = VerifyLevel::kLintEquiv;
  for (const auto& d : designs::paper_suite(0.2)) {
    for (const auto& arch : {PlbArchitecture::granular(), PlbArchitecture::lut_based()}) {
      for (char which : {'a', 'b'}) {
        const auto rep = flow::run_flow(d, arch, which, opts);
        EXPECT_EQ(rep.verify.error_count(), 0)
            << d.netlist.name() << "/" << arch.name << "/" << which << "\n"
            << rep.verify.summary();
      }
    }
  }
}

// --- Exact equivalence gate (cec.*) ------------------------------------------

TEST(Cec, DifferentInterfacesFireInterfaceMismatch) {
  VerifyReport r;
  check_cec(designs::make_ripple_adder(4), designs::make_ripple_adder(8), "test", r);
  expect_fired(r, "cec.interface-mismatch");
}

TEST(Cec, ComplementedNodeFiresOutputDiverges) {
  const auto golden = designs::make_ripple_adder(4);
  auto revised = golden;
  for (NodeId id : revised.all_nodes()) {
    auto& n = revised.node(id);
    if (n.type == NodeType::kComb && n.num_fanins() >= 2) {
      n.func = ~n.func;  // structurally legal, functionally wrong
      break;
    }
  }
  VerifyReport r;
  check_cec(golden, revised, "test", r);
  expect_fired(r, "cec.output-diverges");
  ASSERT_FALSE(r.diagnostics().empty());
  // The diagnostic carries the replayed counterexample vector.
  EXPECT_NE(r.diagnostics().front().message.find("counterexample"), std::string::npos);
}

TEST(Cec, CorruptedNextStateFiresStateDiverges) {
  const auto golden = designs::make_counter(4);
  auto revised = golden;
  // Complement the D cone of the last register without touching any output.
  const NodeId dff = revised.dffs().back();
  const NodeId d = revised.fanin(dff, 0);
  revised.set_dff_input(dff, revised.add_not(d));
  VerifyReport r;
  check_cec(golden, revised, "test", r);
  expect_fired(r, "cec.state-diverges");
}

TEST(Cec, CrossPositionOrphanRegistersFireStateUnmatched) {
  // Golden registers: [X: a&b, Y: a^b]. Revised registers: [Y: a^b, Z: a|b].
  // Y finds its class-mate across positions; the leftovers X (golden, pos 0)
  // and Z (revised, pos 1) sit at different positions, so even the positional
  // fallback cannot pair them — the correspondence is incomplete and the
  // checker must refuse to compare points rather than guess a bijection.
  Netlist golden;
  {
    const NodeId a = golden.add_input("a");
    const NodeId b = golden.add_input("b");
    const NodeId x = golden.add_dff(NodeId(), "X");
    const NodeId y = golden.add_dff(NodeId(), "Y");
    golden.set_dff_input(x, golden.add_and(a, b));
    golden.set_dff_input(y, golden.add_xor(a, b));
    golden.add_output(golden.add_or(x, y), "o");
  }
  Netlist revised;
  {
    const NodeId a = revised.add_input("a");
    const NodeId b = revised.add_input("b");
    const NodeId y = revised.add_dff(NodeId(), "Y");
    const NodeId z = revised.add_dff(NodeId(), "Z");
    revised.set_dff_input(y, revised.add_xor(a, b));
    revised.set_dff_input(z, revised.add_or(a, b));
    revised.add_output(revised.add_or(y, z), "o");
  }
  VerifyReport r;
  check_cec(golden, revised, "test", r);
  expect_fired(r, "cec.state-unmatched");
  EXPECT_GT(r.error_count(), 0);
}

TEST(Cec, ExhaustedBudgetFiresResourceLimit) {
  CecOptions opts;
  opts.sat_sweep = false;
  opts.bdd_tier = false;
  opts.max_exhaustive_inputs = 6;
  opts.sat_conflict_budget = 0;
  VerifyReport r;
  check_cec(designs::make_ripple_adder(16), designs::make_prefix_adder(16), "test", r);
  EXPECT_EQ(r.error_count(), 0);  // full budget: proves clean
  check_cec(designs::make_ripple_adder(16), designs::make_prefix_adder(16), "test", r, opts);
  expect_fired(r, "cec.resource-limit");
  EXPECT_EQ(r.error_count(), 0);  // undecided is a warning, not a verdict
}

TEST(FlowVerifier, ExactLevelProvesMappedStages) {
  Staged s;
  VerifyOptions opts;
  opts.level = VerifyLevel::kExact;
  FlowVerifier v(s.arch, opts);
  EXPECT_EQ(v.check(Stage::kInput, s.golden).error_count(), 0);
  EXPECT_EQ(v.check(Stage::kPostMap, s.mapped, &s.golden).error_count(), 0);
  EXPECT_EQ(v.check(Stage::kPostCompact, s.compacted, &s.golden).error_count(), 0);
  EXPECT_EQ(v.report().error_count(), 0) << v.report().summary();
}

// --- Rule-catalogue audit ----------------------------------------------------
// These two suites are registered last in this translation unit so they run
// after every corruption test above has populated fired_registry() (gtest
// runs suites in registration order unless shuffling is requested).

// Every rule id in the canonical catalogue must have been exercised by a
// seeded-corruption test in this file.
TEST(RuleCatalogue, EveryRuleIsExercised) {
  for (std::string_view rule : kRuleCatalogue) {
    EXPECT_TRUE(fired_registry().count(rule) > 0)
        << "rule " << rule << " is in kRuleCatalogue but no test in "
        << "test_verify.cpp triggered it";
  }
  // And nothing fired that the catalogue does not know about.
  for (const auto& fired : fired_registry()) {
    EXPECT_TRUE(std::find(kRuleCatalogue.begin(), kRuleCatalogue.end(), fired) !=
                kRuleCatalogue.end())
        << "rule " << fired << " fired in tests but is missing from kRuleCatalogue";
  }
}

// The docs-table <-> catalogue sync check that used to live here (a string
// scrape of docs/VERIFY.md) moved into fabriclint's tree-level
// `verify.rule-sync` check (tools/fabriclint, docs/LINT.md), which runs as
// the `fabriclint` ctest and in CI; test_fabriclint.cpp covers the scrape
// logic itself against the real files.

}  // namespace
}  // namespace vpga::verify
