// Property test: the backtracking resource model in fits_in_one_plb agrees
// with an independent brute-force enumerator on every small configuration
// multiset, for every stock architecture and FF-count variant.

#include <gtest/gtest.h>

#include <functional>

#include "core/plb.hpp"

namespace vpga::core {
namespace {

/// Brute force: enumerate every assignment of needs to component kinds (by
/// cartesian product) and check slot budgets — independent of the production
/// backtracking order and pruning.
bool brute_force_fits(const PlbArchitecture& arch, const std::vector<ConfigKind>& configs) {
  std::vector<ComponentClass> needs;
  for (ConfigKind k : configs) {
    if (!arch.supports(k)) return false;
    const auto& spec = config_spec(k);
    needs.insert(needs.end(), spec.needs.begin(), spec.needs.end());
  }
  const std::size_t n = needs.size();
  if (n == 0) return true;
  // Accepted component kinds per need (cartesian product over these lists).
  std::vector<std::vector<int>> accepted(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (int c = 0; c < kNumPlbComponents; ++c)
      if (class_accepts(needs[i], static_cast<PlbComponent>(c))) accepted[i].push_back(c);
    if (accepted[i].empty()) return false;
  }
  std::vector<std::size_t> choice(n, 0);
  while (true) {
    std::array<int, kNumPlbComponents> used{};
    for (std::size_t i = 0; i < n; ++i) ++used[static_cast<std::size_t>(accepted[i][choice[i]])];
    bool within = true;
    for (int c = 0; c < kNumPlbComponents; ++c)
      within = within && used[static_cast<std::size_t>(c)] <=
                             arch.component_count[static_cast<std::size_t>(c)];
    if (within) return true;
    std::size_t i = 0;
    while (i < n && ++choice[i] == accepted[i].size()) choice[i++] = 0;
    if (i == n) return false;
  }
}

std::vector<PlbArchitecture> architectures() {
  return {PlbArchitecture::granular(), PlbArchitecture::lut_based(),
          PlbArchitecture::granular_with_ffs(2), PlbArchitecture::granular_with_ffs(4)};
}

/// All multisets (non-decreasing sequences) of configs of the given size.
void for_each_multiset(const std::vector<ConfigKind>& alphabet, int size,
                       const std::function<void(const std::vector<ConfigKind>&)>& fn) {
  std::vector<ConfigKind> cur;
  auto rec = [&](auto&& self, std::size_t start) -> void {
    if (static_cast<int>(cur.size()) == size) {
      fn(cur);
      return;
    }
    for (std::size_t i = start; i < alphabet.size(); ++i) {
      cur.push_back(alphabet[i]);
      self(self, i);
      cur.pop_back();
    }
  };
  rec(rec, 0);
}

class ResourceModelSweep : public ::testing::TestWithParam<int> {};

TEST_P(ResourceModelSweep, BacktrackingMatchesBruteForce) {
  const int size = GetParam();
  std::vector<ConfigKind> alphabet;
  for (int i = 0; i < kNumConfigKinds; ++i) alphabet.push_back(static_cast<ConfigKind>(i));
  int checked = 0;
  for (const auto& arch : architectures()) {
    for_each_multiset(alphabet, size, [&](const std::vector<ConfigKind>& multiset) {
      const bool fast = fits_in_one_plb(arch, multiset);
      const bool slow = brute_force_fits(arch, multiset);
      ASSERT_EQ(fast, slow) << arch.name << " size " << size;
      ++checked;
    });
  }
  EXPECT_GT(checked, 0);
}

// Sizes 1..4 cover every simultaneous combination the paper discusses
// (8 config kinds -> 330 multisets of size 4, x4 architectures).
INSTANTIATE_TEST_SUITE_P(Sizes, ResourceModelSweep, ::testing::Range(1, 5));

TEST(ResourceModel, EmptyMultisetAlwaysFits) {
  for (const auto& arch : architectures()) EXPECT_TRUE(fits_in_one_plb(arch, {}));
}

TEST(ResourceModel, UnsupportedConfigNeverFits) {
  EXPECT_FALSE(fits_in_one_plb(PlbArchitecture::lut_based(), {ConfigKind::kFullAdder}));
  EXPECT_FALSE(fits_in_one_plb(PlbArchitecture::granular(), {ConfigKind::kLut3}));
}

}  // namespace
}  // namespace vpga::core
