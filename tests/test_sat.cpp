// Tests for the CDCL SAT solver (sat/solver.hpp): verdicts, models,
// assumptions, incremental reuse, conflict budgets and determinism.

#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vpga::sat {
namespace {

Lit pos(Var v) { return Lit(v, false); }
Lit neg(Var v) { return Lit(v, true); }

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, UnitPropagationFixesModel) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({pos(a)});
  s.add_clause({neg(a), pos(b)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
}

TEST(SatSolver, ContradictoryUnitsAreUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({pos(a)});
  s.add_clause({neg(a)});
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_FALSE(s.ok());
}

TEST(SatSolver, EmptyClauseIsUnsat) {
  Solver s;
  (void)s.new_var();
  s.add_clause(std::initializer_list<Lit>{});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, DuplicateAndTautologicalLiterals) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({pos(a), pos(a), pos(a)});   // collapses to a unit
  s.add_clause({pos(b), neg(b), pos(a)});   // tautology, dropped
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(SatSolver, ModelSatisfiesEveryClause) {
  // 3-SAT instance with enough structure to force real search.
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 12; ++i) v.push_back(s.new_var());
  std::vector<std::vector<Lit>> clauses;
  for (int i = 0; i + 2 < 12; ++i) {
    clauses.push_back({pos(v[i]), neg(v[i + 1]), pos(v[i + 2])});
    clauses.push_back({neg(v[i]), pos(v[i + 1]), neg(v[i + 2])});
  }
  for (const auto& c : clauses) s.add_clause(std::span<const Lit>(c));
  ASSERT_EQ(s.solve(), Result::kSat);
  for (const auto& c : clauses) {
    bool satisfied = false;
    for (const Lit l : c) satisfied |= s.model_value(l.var()) != l.negated();
    EXPECT_TRUE(satisfied);
  }
}

/// Pigeonhole principle PHP(n+1, n): n+1 pigeons in n holes, classically
/// hard for resolution — exercises learning, restarts and VSIDS.
void add_pigeonhole(Solver& s, int pigeons, int holes, std::vector<std::vector<Var>>& at) {
  at.assign(static_cast<std::size_t>(pigeons), {});
  for (int p = 0; p < pigeons; ++p)
    for (int h = 0; h < holes; ++h) at[static_cast<std::size_t>(p)].push_back(s.new_var());
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> any;
    for (int h = 0; h < holes; ++h) any.push_back(pos(at[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    s.add_clause(std::span<const Lit>(any));
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        s.add_clause({neg(at[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)]),
                      neg(at[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)])});
}

TEST(SatSolver, PigeonholeIsUnsat) {
  Solver s;
  std::vector<std::vector<Var>> at;
  add_pigeonhole(s, 6, 5, at);
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0);
}

TEST(SatSolver, PigeonholeExactFitIsSat) {
  Solver s;
  std::vector<std::vector<Var>> at;
  add_pigeonhole(s, 5, 5, at);
  ASSERT_EQ(s.solve(), Result::kSat);
  // The model must place every pigeon in a distinct hole.
  std::vector<int> hole_of(5, -1);
  for (int p = 0; p < 5; ++p) {
    for (int h = 0; h < 5; ++h) {
      if (!s.model_value(at[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)])) continue;
      EXPECT_EQ(hole_of[static_cast<std::size_t>(h)], -1);
      hole_of[static_cast<std::size_t>(h)] = p;
    }
  }
}

TEST(SatSolver, AssumptionsAreTemporary) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({neg(a), pos(b)});
  const Lit assume_a[1] = {pos(a)};
  ASSERT_EQ(s.solve(std::span<const Lit>(assume_a, 1)), Result::kSat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  // A conflicting assumption pair is UNSAT without poisoning the solver.
  s.add_clause({neg(b), neg(a)});
  ASSERT_EQ(s.solve(std::span<const Lit>(assume_a, 1)), Result::kUnsat);
  EXPECT_TRUE(s.ok());  // only unsat *under the assumption*
  EXPECT_EQ(s.solve(), Result::kSat);  // still satisfiable without it
}

TEST(SatSolver, IncrementalSelectorRetirement) {
  // The CEC usage pattern: miters guarded by selector variables, retired by
  // unit clauses after each query.
  Solver s;
  const Var x = s.new_var();
  const Var y = s.new_var();
  s.add_clause({pos(x), pos(y)});
  const Lit sel1(s.new_var(), false);
  s.add_clause({~sel1, neg(x)});
  s.add_clause({~sel1, neg(y)});
  const Lit a1[1] = {sel1};
  EXPECT_EQ(s.solve(std::span<const Lit>(a1, 1)), Result::kUnsat);
  s.add_clause({~sel1});  // retire
  const Lit sel2(s.new_var(), false);
  s.add_clause({~sel2, neg(x)});
  const Lit a2[1] = {sel2};
  ASSERT_EQ(s.solve(std::span<const Lit>(a2, 1)), Result::kSat);
  EXPECT_FALSE(s.model_value(x));
  EXPECT_TRUE(s.model_value(y));
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  Solver s;
  std::vector<std::vector<Var>> at;
  add_pigeonhole(s, 8, 7, at);
  EXPECT_EQ(s.solve({}, 5), Result::kUnknown);
  EXPECT_LE(s.stats().conflicts, 64);  // stopped early, not after full search
  // The solver remains usable: the full-budget answer is still reachable.
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, VerdictAndStatsAreDeterministic) {
  auto run = [] {
    Solver s;
    std::vector<std::vector<Var>> at;
    add_pigeonhole(s, 6, 5, at);
    EXPECT_EQ(s.solve(), Result::kUnsat);
    return s.stats();
  };
  const SolverStats first = run();
  for (int i = 0; i < 3; ++i) {
    const SolverStats again = run();
    EXPECT_EQ(again.conflicts, first.conflicts);
    EXPECT_EQ(again.decisions, first.decisions);
    EXPECT_EQ(again.propagations, first.propagations);
    EXPECT_EQ(again.restarts, first.restarts);
    EXPECT_EQ(again.learned_clauses, first.learned_clauses);
  }
}

TEST(SatSolver, ModelIsDeterministic) {
  auto run = [] {
    Solver s;
    std::vector<Var> v;
    for (int i = 0; i < 16; ++i) v.push_back(s.new_var());
    for (int i = 0; i + 2 < 16; i += 2)
      s.add_clause({Lit(v[static_cast<std::size_t>(i)], false),
                    Lit(v[static_cast<std::size_t>(i + 1)], true),
                    Lit(v[static_cast<std::size_t>(i + 2)], false)});
    EXPECT_EQ(s.solve(), Result::kSat);
    std::vector<bool> model;
    for (const Var var : v) model.push_back(s.model_value(var));
    return model;
  };
  EXPECT_EQ(run(), run());
}

TEST(SatSolver, LubySequence) {
  // luby: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  const long long expect[] = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8};
  for (int i = 0; i < 15; ++i) EXPECT_EQ(luby(i), expect[i]) << i;
}

}  // namespace
}  // namespace vpga::sat
