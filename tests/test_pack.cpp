// Tests for the recursive-quadrisection packer/legalizer.

#include "pack/packer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "compact/compact.hpp"
#include "designs/designs.hpp"
#include "synth/mapper.hpp"

namespace vpga::pack {
namespace {

using core::ConfigKind;
using core::PlbArchitecture;

struct Prepared {
  netlist::Netlist nl;
  place::Placement placed;
};

Prepared prepare(const netlist::Netlist& src, const PlbArchitecture& arch) {
  const auto mapped =
      synth::tech_map(src, synth::cell_target(arch), synth::Objective::kDelay);
  auto comp = compact::compact(mapped.netlist, arch);
  Prepared p{std::move(comp.netlist), {}};
  p.placed = place::place(p.nl);
  return p;
}

/// Re-derives tile contents and checks the resource model per tile.
void verify_legal(const Prepared& p, const PackedDesign& d, const PlbArchitecture& arch) {
  ASSERT_GT(d.grid_w, 0);
  ASSERT_GT(d.grid_h, 0);
  std::vector<std::vector<ConfigKind>> tiles(static_cast<std::size_t>(d.grid_w) * d.grid_h);
  for (netlist::NodeId id : p.nl.all_nodes()) {
    const auto& n = p.nl.node(id);
    const int t = d.tile_of_node[id.index()];
    const bool slots = (n.type == netlist::NodeType::kDff) ||
                       (n.type == netlist::NodeType::kComb && n.has_config());
    if (slots) {
      ASSERT_GE(t, 0) << "unplaced node " << id.index();
      ASSERT_LT(t, d.grid_w * d.grid_h);
      if (n.in_macro()) {
        // Macro members share one configuration instance, counted at the
        // representative; all members must share the tile.
        EXPECT_EQ(t, d.tile_of_node[n.macro_rep.index()]);
        if (n.macro_rep != id) continue;
      }
      tiles[static_cast<std::size_t>(t)].push_back(
          n.type == netlist::NodeType::kDff ? ConfigKind::kFf
                                            : static_cast<ConfigKind>(n.config_tag));
    }
  }
  for (const auto& contents : tiles)
    if (!contents.empty())
      EXPECT_TRUE(core::fits_in_one_plb(arch, contents));
}

TEST(Pack, AdderLegalizesOnGranular) {
  const auto arch = PlbArchitecture::granular();
  const auto p = prepare(designs::make_ripple_adder(16), arch);
  const auto d = pack(p.nl, p.placed, arch);
  verify_legal(p, d, arch);
  EXPECT_GT(d.plbs_used, 0);
  EXPECT_GT(d.die_area_um2, 0.0);
}

TEST(Pack, AdderLegalizesOnLut) {
  const auto arch = PlbArchitecture::lut_based();
  const auto p = prepare(designs::make_ripple_adder(16), arch);
  const auto d = pack(p.nl, p.placed, arch);
  verify_legal(p, d, arch);
}

TEST(Pack, SequentialDesignLegalizes) {
  const auto arch = PlbArchitecture::granular();
  const auto p = prepare(designs::make_firewire(4, 8).netlist, arch);
  const auto d = pack(p.nl, p.placed, arch);
  verify_legal(p, d, arch);
  // At most one DFF per granular tile: tile count >= DFF count.
  EXPECT_GE(d.plbs_used, static_cast<int>(p.nl.dffs().size()));
}

TEST(Pack, FirstFitBoundRespectsResources) {
  const auto arch = PlbArchitecture::granular();
  const auto p = prepare(designs::make_ripple_adder(8), arch);
  const int tiles = first_fit_tile_count(p.nl, arch);
  int dffs = static_cast<int>(p.nl.dffs().size());
  EXPECT_GE(tiles, dffs);
  const auto d = pack(p.nl, p.placed, arch);
  EXPECT_GE(d.grid_w * d.grid_h, tiles);
}

TEST(Pack, DisplacementTrackedAndBounded) {
  const auto arch = PlbArchitecture::granular();
  const auto p = prepare(designs::make_alu(8).netlist, arch);
  const auto d = pack(p.nl, p.placed, arch);
  EXPECT_GE(d.total_displacement_um, 0.0);
  EXPECT_GE(d.max_displacement_um, 0.0);
  const double diag = std::hypot(d.grid_w * d.tile_size_um, d.grid_h * d.tile_size_um);
  EXPECT_LE(d.max_displacement_um, diag);
}

TEST(Pack, CriticalityChangesAssignment) {
  const auto arch = PlbArchitecture::granular();
  const auto p = prepare(designs::make_alu(8).netlist, arch);
  PackOptions o1;
  const auto d1 = pack(p.nl, p.placed, arch, o1);
  PackOptions o2;
  o2.criticality.assign(p.nl.num_nodes(), 0.0);
  for (std::size_t i = 0; i < p.nl.num_nodes(); i += 2) o2.criticality[i] = 1.0;
  const auto d2 = pack(p.nl, p.placed, arch, o2);
  int diff = 0;
  for (std::size_t i = 0; i < p.nl.num_nodes(); ++i)
    if (d1.tile_of_node[i] != d2.tile_of_node[i]) ++diff;
  EXPECT_GT(diff, 0);
}

TEST(Pack, GranularPacksDenserThanLutOnDatapath) {
  // The core Table-1 mechanism: mux/xor-rich datapath packs ~3 configs per
  // granular tile but ~1 LUT per LUT-based tile.
  const auto src = designs::make_ripple_adder(32);
  const auto gran_arch = PlbArchitecture::granular();
  const auto lut_arch = PlbArchitecture::lut_based();
  const auto pg = prepare(src, gran_arch);
  const auto pl = prepare(src, lut_arch);
  const auto dg = pack(pg.nl, pg.placed, gran_arch);
  const auto dl = pack(pl.nl, pl.placed, lut_arch);
  EXPECT_LT(dg.die_area_um2, dl.die_area_um2);
}

TEST(Pack, FreeRidersGetTileOfDriver) {
  const auto arch = PlbArchitecture::granular();
  const auto p = prepare(designs::make_ripple_adder(8), arch);
  const auto d = pack(p.nl, p.placed, arch);
  for (netlist::NodeId id : p.nl.all_nodes()) {
    const auto& n = p.nl.node(id);
    if (n.type != netlist::NodeType::kComb || n.has_config()) continue;
    if (n.num_fanins() == 0 || !p.nl.fanin(id, 0).valid()) continue;
    const int driver_tile = d.tile_of_node[p.nl.fanin(id, 0).index()];
    if (driver_tile >= 0) EXPECT_EQ(d.tile_of_node[id.index()], driver_tile);
  }
}

TEST(Pack, SlotUtilizationReported) {
  const auto arch = PlbArchitecture::granular();
  const auto p = prepare(designs::make_ripple_adder(16), arch);
  const auto d = pack(p.nl, p.placed, arch);
  double total = 0.0;
  for (double u : d.slot_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
    total += u;
  }
  EXPECT_GT(total, 0.0);
}

TEST(Pack, PackTallyAccumulatesAcrossCalls) {
  const auto arch = PlbArchitecture::granular();
  const auto p = prepare(designs::make_ripple_adder(8), arch);
  const auto before = pack_tally();
  const auto d = pack(p.nl, p.placed, arch);
  const auto after = pack_tally();
  EXPECT_EQ(after.packs, before.packs + 1);
  EXPECT_EQ(after.grow_attempts, before.grow_attempts + d.grow_attempts);
}

}  // namespace
}  // namespace vpga::pack
