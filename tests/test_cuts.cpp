// Direct tests for the priority-cut enumeration (k = 3).

#include "synth/cuts.hpp"

#include <gtest/gtest.h>

#include "designs/designs.hpp"

namespace vpga::synth {
namespace {

using aig::Aig;
using aig::Lit;

TEST(Cuts, TwoInputAndHasFaninCut) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit y = g.add_and(a, b);
  g.add_output(y);
  CutDatabase db(g);
  const auto& cuts = db.cuts(aig::node_of(y));
  ASSERT_GE(cuts.size(), 2u);  // fanin cut + trivial cut
  const Cut& c = cuts.front();
  EXPECT_EQ(c.size, 2);
  EXPECT_EQ(c.leaves[0], aig::node_of(a));
  EXPECT_EQ(c.leaves[1], aig::node_of(b));
  EXPECT_EQ(c.tt & 0xF, 0x8);  // and(a,b) in the low rows
}

TEST(Cuts, ThreeInputConeGetsFullCut) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit c = g.add_input();
  const Lit y = g.add_and(g.add_and(a, b), c);
  g.add_output(y);
  CutDatabase db(g);
  bool found = false;
  for (const Cut& cut : db.cuts(aig::node_of(y))) {
    if (cut.size == 3) {
      EXPECT_EQ(cut.tt, 0x80);  // and3
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Cuts, TruthTablesRespectComplementedEdges) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit y = g.add_and(aig::negate(a), b);  // ~a & b
  g.add_output(y);
  CutDatabase db(g);
  const Cut& c = db.cuts(aig::node_of(y)).front();
  ASSERT_EQ(c.size, 2);
  // Leaves sorted by node index: a first. rows ab: f = ~a & b -> row 2 only.
  EXPECT_EQ(c.tt & 0xF, 0x4);
}

TEST(Cuts, XorConeFunctionCorrect) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit y = g.add_xor(a, b);  // complemented literal over an XNOR node
  g.add_output(y);
  CutDatabase db(g);
  // Cut functions describe the NODE (positive polarity): the xor literal's
  // node computes XNOR when the literal is complemented.
  const std::uint8_t expect = aig::is_complemented(y) ? 0x9 : 0x6;
  bool found = false;
  for (const Cut& c : db.cuts(aig::node_of(y)))
    if (c.size == 2 && (c.tt & 0xF) == expect) found = true;
  EXPECT_TRUE(found);
}

TEST(Cuts, LeavesSortedAndUnique) {
  const auto d = designs::make_alu(8);
  const auto m = aig::from_netlist(d.netlist);
  CutDatabase db(m.aig);
  for (std::uint32_t n = 1; n < m.aig.num_nodes(); ++n) {
    for (const Cut& c : db.cuts(n)) {
      for (int i = 1; i < c.size; ++i)
        EXPECT_LT(c.leaves[static_cast<std::size_t>(i - 1)],
                  c.leaves[static_cast<std::size_t>(i)]);
      EXPECT_GE(c.size, 1);
      EXPECT_LE(c.size, 3);
    }
  }
}

TEST(Cuts, CutCountBounded) {
  const auto d = designs::make_alu(8);
  const auto m = aig::from_netlist(d.netlist);
  const int limit = 6;
  CutDatabase db(m.aig, limit);
  for (std::uint32_t n = 1; n < m.aig.num_nodes(); ++n)
    EXPECT_LE(db.cuts(n).size(), static_cast<std::size_t>(limit) + 1);  // + trivial
}

TEST(Cuts, AllInputCutsMatchExhaustiveConeEvaluation) {
  // Property: when every leaf of a cut is a primary input, the cut's truth
  // table must equal the AIG evaluated over all leaf assignments (other
  // inputs held at 0 cannot influence the cone if the cut is correct only
  // when the node's cone support is inside the leaves — which holds exactly
  // for all-input cuts of nodes whose cone reaches only those inputs, so we
  // assert agreement whenever the evaluation is insensitive to the rest).
  const auto nl = designs::make_ripple_adder(4);
  const auto m = aig::from_netlist(nl);
  CutDatabase db(m.aig);
  int verified = 0;
  for (std::uint32_t n = 1; n < m.aig.num_nodes(); ++n) {
    if (!m.aig.node(n).is_and) continue;
    // Reference: n's value over all full input assignments.
    const std::size_t ni = m.aig.num_inputs();
    ASSERT_LE(ni, 16u);
    for (const Cut& c : db.cuts(n)) {
      if (c.size == 1 && c.leaves[0] == n) continue;
      bool all_inputs = true;
      for (int i = 0; i < c.size; ++i)
        all_inputs = all_inputs && m.aig.is_input(c.leaves[static_cast<std::size_t>(i)]);
      if (!all_inputs) continue;
      // Leaf index -> input position.
      std::array<std::size_t, 3> pos{};
      for (int i = 0; i < c.size; ++i)
        for (std::size_t k = 0; k < ni; ++k)
          if (m.aig.inputs()[k] == c.leaves[static_cast<std::size_t>(i)])
            pos[static_cast<std::size_t>(i)] = k;
      // Check f(n) == tt(leaf bits) on every full assignment: this is the
      // strongest statement — the cut tt explains the node completely.
      bool cut_explains = true;
      for (unsigned full = 0; full < (1u << ni) && cut_explains; ++full) {
        std::vector<bool> in(ni);
        for (std::size_t k = 0; k < ni; ++k) in[k] = (full >> k) & 1;
        // Evaluate node n by evaluating the whole graph.
        std::vector<bool> inputs = in;
        const auto outs = m.aig.eval(inputs);
        (void)outs;
        unsigned row = 0;
        for (int i = 0; i < c.size; ++i)
          if (in[pos[static_cast<std::size_t>(i)]]) row |= 1u << i;
        // Recompute node value directly.
        std::vector<char> val(m.aig.num_nodes(), 0);
        for (std::size_t k = 0; k < ni; ++k) val[m.aig.inputs()[k]] = in[k] ? 1 : 0;
        for (std::uint32_t v = 1; v <= n; ++v) {
          if (!m.aig.node(v).is_and) continue;
          const auto f0 = m.aig.node(v).fanin0, f1 = m.aig.node(v).fanin1;
          val[v] = static_cast<char>(
              (val[aig::node_of(f0)] ^ (aig::is_complemented(f0) ? 1 : 0)) &
              (val[aig::node_of(f1)] ^ (aig::is_complemented(f1) ? 1 : 0)));
        }
        cut_explains = val[n] == (((c.tt >> row) & 1) ? 1 : 0);
      }
      EXPECT_TRUE(cut_explains) << "node " << n;
      ++verified;
      break;  // one all-input cut per node keeps the test fast
    }
  }
  EXPECT_GT(verified, 5);
}

}  // namespace
}  // namespace vpga::synth
