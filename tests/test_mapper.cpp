// Tests for the technology mapper: functional equivalence, target legality,
// and the architectural properties the paper relies on.

#include "synth/mapper.hpp"

#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "netlist/simulate.hpp"
#include "synth/buffering.hpp"

namespace vpga::synth {
namespace {

using core::PlbArchitecture;

void expect_only_cells(const netlist::Netlist& nl,
                       std::initializer_list<library::CellKind> allowed) {
  for (netlist::NodeId id : nl.all_nodes()) {
    const auto& n = nl.node(id);
    if (n.type != netlist::NodeType::kComb) continue;
    ASSERT_TRUE(n.cell.has_value());
    bool ok = false;
    for (auto k : allowed) ok = ok || *n.cell == k;
    EXPECT_TRUE(ok) << "unexpected cell " << library::to_string(*n.cell);
  }
}

TEST(Mapper, LutTargetMapsAdderEquivalently) {
  const auto src = designs::make_ripple_adder(8);
  const auto r = tech_map(src, cell_target(PlbArchitecture::lut_based()), Objective::kDelay);
  EXPECT_TRUE(r.netlist.check().ok);
  EXPECT_TRUE(netlist::equivalent_random_sim(src, r.netlist, 300));
  expect_only_cells(r.netlist, {library::CellKind::kLut3, library::CellKind::kNd3wi,
                                library::CellKind::kInv, library::CellKind::kBuf});
}

TEST(Mapper, GranularTargetMapsAdderEquivalently) {
  const auto src = designs::make_ripple_adder(8);
  const auto r = tech_map(src, cell_target(PlbArchitecture::granular()), Objective::kDelay);
  EXPECT_TRUE(r.netlist.check().ok);
  EXPECT_TRUE(netlist::equivalent_random_sim(src, r.netlist, 300));
  expect_only_cells(r.netlist, {library::CellKind::kMux2, library::CellKind::kNd3wi,
                                library::CellKind::kInv, library::CellKind::kBuf});
}

TEST(Mapper, SequentialDesignsSurviveMapping) {
  const auto src = designs::make_counter(6);
  const auto r = tech_map(src, cell_target(PlbArchitecture::granular()), Objective::kDelay);
  EXPECT_TRUE(r.netlist.check().ok);
  EXPECT_EQ(r.netlist.dffs().size(), 6u);
  EXPECT_TRUE(netlist::equivalent_random_sim(src, r.netlist, 200));
}

TEST(Mapper, AluMapsOnBothArchitectures) {
  const auto d = designs::make_alu(8);
  for (const auto& arch : {PlbArchitecture::lut_based(), PlbArchitecture::granular()}) {
    const auto r = tech_map(d.netlist, cell_target(arch), Objective::kDelay);
    EXPECT_TRUE(r.netlist.check().ok) << arch.name;
    EXPECT_TRUE(netlist::equivalent_random_sim(d.netlist, r.netlist, 150)) << arch.name;
    EXPECT_GT(r.stats.area_um2, 0.0);
    EXPECT_GT(r.stats.depth, 0);
  }
}

TEST(Mapper, AreaObjectiveNeverLarger) {
  const auto d = designs::make_alu(8);
  const auto t = cell_target(PlbArchitecture::lut_based());
  const auto delay = tech_map(d.netlist, t, Objective::kDelay);
  const auto area = tech_map(d.netlist, t, Objective::kArea);
  EXPECT_LE(area.stats.area_um2, delay.stats.area_um2 * 1.001);
  EXPECT_TRUE(netlist::equivalent_random_sim(delay.netlist, area.netlist, 150));
}

TEST(Mapper, DelayObjectiveNeverSlower) {
  const auto d = designs::make_alu(8);
  const auto t = cell_target(PlbArchitecture::granular());
  const auto delay = tech_map(d.netlist, t, Objective::kDelay);
  const auto area = tech_map(d.netlist, t, Objective::kArea);
  EXPECT_LE(delay.stats.est_delay_ps, area.stats.est_delay_ps * 1.001);
}

TEST(Mapper, ConfigTargetProducesConfigTags) {
  const auto src = designs::make_ripple_adder(6);
  const auto r = tech_map(src, config_target(PlbArchitecture::granular()), Objective::kArea);
  EXPECT_TRUE(netlist::equivalent_random_sim(src, r.netlist, 200));
  int tagged = 0;
  for (netlist::NodeId id : r.netlist.all_nodes()) {
    const auto& n = r.netlist.node(id);
    if (n.type == netlist::NodeType::kComb && n.has_config()) ++tagged;
  }
  EXPECT_GT(tagged, 0);
}

TEST(Mapper, XorChainsPreferMuxOnGranular) {
  // A pure xor tree: on the granular target every node should map to MUX2
  // (an ND3WI cannot express xor).
  netlist::Netlist src("xor_tree");
  auto a = src.add_input("a");
  for (int i = 0; i < 7; ++i) a = src.add_xor(a, src.add_input("x" + std::to_string(i)));
  src.add_output(a, "y");
  const auto r = tech_map(src, cell_target(PlbArchitecture::granular()), Objective::kDelay);
  for (netlist::NodeId id : r.netlist.all_nodes()) {
    const auto& n = r.netlist.node(id);
    if (n.type == netlist::NodeType::kComb && n.num_fanins() >= 2)
      EXPECT_EQ(*n.cell, library::CellKind::kMux2);
  }
  EXPECT_TRUE(netlist::equivalent_random_sim(src, r.netlist, 200));
}

TEST(Mapper, GranularMappingBeatsLutDelayEstimate) {
  // The paper's performance claim at the mapping level: granular components
  // realize the same logic with lower stage delay than 3-LUTs.
  const auto d = designs::make_alu(16);
  const auto lut = tech_map(d.netlist, cell_target(PlbArchitecture::lut_based()),
                            Objective::kDelay);
  const auto gran = tech_map(d.netlist, cell_target(PlbArchitecture::granular()),
                             Objective::kDelay);
  EXPECT_LT(gran.stats.est_delay_ps, lut.stats.est_delay_ps);
}

TEST(Buffering, CapsFanout) {
  netlist::Netlist nl("fanout");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto g = nl.add_and(a, b);
  for (int i = 0; i < 40; ++i) nl.add_output(nl.add_not(g), "o" + std::to_string(i));
  const int inserted = insert_buffers(nl, 8);
  EXPECT_GT(inserted, 0);
  const auto fan = nl.fanout_counts();
  for (netlist::NodeId id : nl.all_nodes())
    if (nl.node(id).type != netlist::NodeType::kOutput)
      EXPECT_LE(fan[id.index()], 8) << id.index();
  EXPECT_TRUE(nl.check().ok);
}

TEST(Buffering, PreservesFunction) {
  const auto src = designs::make_ripple_adder(8);
  auto buffered = src;
  insert_buffers(buffered, 3);
  EXPECT_TRUE(netlist::equivalent_random_sim(src, buffered, 200));
}

TEST(Buffering, NoChangeBelowLimit) {
  auto nl = designs::make_ripple_adder(4);
  const auto before = nl.num_nodes();
  EXPECT_EQ(insert_buffers(nl, 64), 0);
  EXPECT_EQ(nl.num_nodes(), before);
}

}  // namespace
}  // namespace vpga::synth
