// Tests for the textual PLB architecture format.

#include "core/arch_io.hpp"

#include <gtest/gtest.h>

namespace vpga::core {
namespace {

TEST(ArchIo, RoundTripStockArchitectures) {
  for (const auto& arch : {PlbArchitecture::granular(), PlbArchitecture::lut_based(),
                           PlbArchitecture::granular_with_ffs(3)}) {
    const auto r = parse_architecture(architecture_to_string(arch));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.arch.name, arch.name);
    EXPECT_EQ(r.arch.component_count, arch.component_count);
    EXPECT_EQ(r.arch.configs, arch.configs);
    EXPECT_DOUBLE_EQ(r.arch.tile_area_um2, arch.tile_area_um2);
    EXPECT_DOUBLE_EQ(r.arch.comb_area_um2, arch.comb_area_um2);
  }
}

TEST(ArchIo, ParsesHandWrittenDescription) {
  const auto r = parse_architecture(
      "# a controller-tuned tile\n"
      "plb ctrl\n"
      "  components xoa=1 mux=2 nd3=1 dff=2\n"
      "  configs MX ND3 NDMX XOAMX FF\n"
      "  tile_area 112\n"
      "  comb_area 63.3\n"
      "end\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.arch.name, "ctrl");
  EXPECT_EQ(r.arch.count(PlbComponent::kDff), 2);
  EXPECT_TRUE(r.arch.supports(ConfigKind::kNdmx));
  EXPECT_FALSE(r.arch.supports(ConfigKind::kLut3));
}

TEST(ArchIo, RejectsUnknownComponent) {
  const auto r = parse_architecture(
      "plb x\ncomponents frobnicator=1\nconfigs FF\ntile_area 1\ncomb_area 1\nend\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown component"), std::string::npos);
}

TEST(ArchIo, RejectsUnknownConfig) {
  const auto r = parse_architecture(
      "plb x\ncomponents dff=1\nconfigs BOGUS\ntile_area 1\ncomb_area 1\nend\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown config"), std::string::npos);
}

TEST(ArchIo, RejectsInfeasibleConfig) {
  // XOAMX needs an XOA and a plain MUX; a tile without an XOA cannot host it.
  const auto r = parse_architecture(
      "plb x\ncomponents mux=1 dff=1\nconfigs XOAMX FF\ntile_area 10\ncomb_area 5\nend\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("cannot fit"), std::string::npos);
}

TEST(ArchIo, RejectsMissingPieces) {
  EXPECT_FALSE(parse_architecture("end\n").ok);
  EXPECT_FALSE(parse_architecture("plb x\nconfigs FF\ncomb_area 1\nend\n").ok);  // no tile_area
  EXPECT_FALSE(
      parse_architecture("plb x\ncomponents dff=1\ntile_area 1\ncomb_area 1\nend\n").ok);
  EXPECT_FALSE(
      parse_architecture("plb x\ncomponents dff=1\nconfigs FF\ntile_area 1\ncomb_area 1\n").ok);
}

TEST(ArchIo, ParsedArchitectureRunsThroughResourceModel) {
  const auto r = parse_architecture(
      "plb wide\n"
      "components xoa=2 mux=4 nd3=2 dff=2\n"
      "configs MX ND3 NDMX XOAMX XOANDMX FF FA\n"
      "tile_area 200\ncomb_area 130\nend\n");
  ASSERT_TRUE(r.ok) << r.error;
  // Twice the granular capacity: two full adders fit simultaneously.
  EXPECT_TRUE(fits_in_one_plb(r.arch, {ConfigKind::kFullAdder, ConfigKind::kFullAdder}));
  EXPECT_FALSE(
      fits_in_one_plb(r.arch, {ConfigKind::kFullAdder, ConfigKind::kFullAdder,
                               ConfigKind::kFullAdder}));
}

TEST(ArchIo, LoadMissingFileFails) {
  const auto r = load_architecture("/tmp/no_such_arch.plb");
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace vpga::core
