// Tests for the FlowMap-style max-flow/min-cut labeling (k = 3).

#include "compact/flowmap.hpp"

#include <gtest/gtest.h>

#include "designs/designs.hpp"

namespace vpga::compact {
namespace {

using aig::Aig;
using aig::Lit;

TEST(FlowMap, InputsLabelZero) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  g.add_output(g.add_and(a, b));
  const auto l = flowmap_labels(g);
  EXPECT_EQ(l[aig::node_of(a)], 0);
  EXPECT_EQ(l[aig::node_of(b)], 0);
  EXPECT_EQ(l[aig::node_of(g.outputs()[0])], 1);
}

TEST(FlowMap, ThreeInputConeIsDepthOne) {
  // and3 = and(and(a,b),c): AIG depth 2, but 3-feasible depth 1.
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit c = g.add_input();
  g.add_output(g.add_and(g.add_and(a, b), c));
  EXPECT_EQ(flowmap_depth(g), 1);
}

TEST(FlowMap, XorOfTwoIsDepthOne) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  g.add_output(g.add_xor(a, b));  // 3 AND nodes, still one 2-input cut
  EXPECT_EQ(flowmap_depth(g), 1);
}

TEST(FlowMap, XorThreeIsDepthOne) {
  // xor3 has 3 inputs: one 3-feasible cut covers the whole cone.
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit c = g.add_input();
  g.add_output(g.add_xor(g.add_xor(a, b), c));
  EXPECT_EQ(flowmap_depth(g), 1);
}

TEST(FlowMap, FourInputAndNeedsTwoLevels) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit c = g.add_input();
  const Lit d = g.add_input();
  g.add_output(g.add_and(g.add_and(a, b), g.add_and(c, d)));
  EXPECT_EQ(flowmap_depth(g), 2);
}

TEST(FlowMap, LabelsAreMonotoneAlongEdges) {
  const auto d = designs::make_alu(8);
  const auto m = aig::from_netlist(d.netlist);
  const auto l = flowmap_labels(m.aig);
  for (std::uint32_t n = 1; n < m.aig.num_nodes(); ++n) {
    if (!m.aig.node(n).is_and) continue;
    EXPECT_GE(l[n], l[aig::node_of(m.aig.node(n).fanin0)]);
    EXPECT_GE(l[n], l[aig::node_of(m.aig.node(n).fanin1)]);
    const int p = std::max(l[aig::node_of(m.aig.node(n).fanin0)],
                           l[aig::node_of(m.aig.node(n).fanin1)]);
    EXPECT_TRUE(l[n] == p || l[n] == p + 1) << n;
    EXPECT_GE(l[n], 1);
  }
}

TEST(FlowMap, OptimalDepthNeverExceedsAigDepth) {
  for (int bits : {4, 8}) {
    const auto nl = designs::make_ripple_adder(bits);
    const auto m = aig::from_netlist(nl);
    EXPECT_LE(flowmap_depth(m.aig), m.aig.depth());
    EXPECT_GE(flowmap_depth(m.aig), (m.aig.depth() + 2) / 3);  // k=3 bound
  }
}

TEST(FlowMap, CutsAreSmallAndLowerLabel) {
  const auto nl = designs::make_ripple_adder(6);
  const auto m = aig::from_netlist(nl);
  const auto l = flowmap_labels(m.aig);
  for (std::uint32_t n = 1; n < m.aig.num_nodes(); ++n) {
    if (!m.aig.node(n).is_and) continue;
    const auto cut = flowmap_cut(m.aig, n, l);
    EXPECT_GE(cut.size(), 1u);
    EXPECT_LE(cut.size(), 3u);
    for (auto leaf : cut) EXPECT_LE(l[leaf], l[n] - 1) << "node " << n;
  }
}

TEST(FlowMap, MuxTreeDepth) {
  // An 8:1 mux tree (7 muxes): 3-feasible depth must be 3 (each mux is one
  // 3-input node) or better.
  Aig g;
  std::vector<Lit> data;
  for (int i = 0; i < 8; ++i) data.push_back(g.add_input());
  std::vector<Lit> sel = {g.add_input(), g.add_input(), g.add_input()};
  std::vector<Lit> level = data;
  for (int s = 0; s < 3; ++s) {
    std::vector<Lit> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(g.add_mux(sel[static_cast<std::size_t>(s)], level[i], level[i + 1]));
    level = next;
  }
  g.add_output(level[0]);
  EXPECT_LE(flowmap_depth(g), 3);
  EXPECT_GE(flowmap_depth(g), 2);
}

}  // namespace
}  // namespace vpga::compact
