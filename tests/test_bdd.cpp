// Unit tests for the ROBDD package (src/bdd/bdd.hpp): canonicity under
// complement edges, ITE identities, budget discipline and byte-stable
// determinism — the properties the CEC's BDD tier relies on.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"

namespace vpga::bdd {
namespace {

TEST(Bdd, TerminalsAndComplement) {
  EXPECT_EQ(bdd_not(kTrue), kFalse);
  EXPECT_EQ(bdd_not(kFalse), kTrue);
  EXPECT_EQ(bdd_not(bdd_not(kTrue)), kTrue);
  EXPECT_EQ(bdd_not(kInvalid), kInvalid);
}

TEST(Bdd, IteIdentities) {
  BddManager m;
  const Ref a = m.var(0);
  const Ref b = m.var(1);
  // Terminal cases.
  EXPECT_EQ(m.ite(kTrue, a, b), a);
  EXPECT_EQ(m.ite(kFalse, a, b), b);
  EXPECT_EQ(m.ite(a, kTrue, kFalse), a);
  EXPECT_EQ(m.ite(a, kFalse, kTrue), bdd_not(a));
  EXPECT_EQ(m.ite(a, b, b), b);
  // Boolean algebra through the derived connectives.
  EXPECT_EQ(m.bdd_and(a, kTrue), a);
  EXPECT_EQ(m.bdd_and(a, kFalse), kFalse);
  EXPECT_EQ(m.bdd_and(a, a), a);
  EXPECT_EQ(m.bdd_and(a, bdd_not(a)), kFalse);
  EXPECT_EQ(m.bdd_or(a, bdd_not(a)), kTrue);
  EXPECT_EQ(m.bdd_xor(a, a), kFalse);
  EXPECT_EQ(m.bdd_xor(a, kFalse), a);
  EXPECT_EQ(m.bdd_xor(a, kTrue), bdd_not(a));
  // Commutativity lands on the same edge — that's canonicity.
  EXPECT_EQ(m.bdd_and(a, b), m.bdd_and(b, a));
  EXPECT_EQ(m.bdd_xor(a, b), m.bdd_xor(b, a));
}

TEST(Bdd, ComplementEdgeCanonicity) {
  BddManager m;
  const Ref a = m.var(0);
  const Ref b = m.var(1);
  // De Morgan must hold at the edge level: !(a&b) == !a | !b, same Ref.
  EXPECT_EQ(bdd_not(m.bdd_and(a, b)), m.bdd_or(bdd_not(a), bdd_not(b)));
  // XOR and XNOR differ only by the complement bit — one shared node.
  const Ref x = m.bdd_xor(a, b);
  const Ref xn = bdd_not(m.bdd_xor(a, bdd_not(b)));
  EXPECT_EQ(x, xn);
  // A function and its complement share a node: building both must not
  // allocate twice. (a&b) and !(a&b):
  const std::size_t before = m.num_nodes();
  const Ref nand_ab = m.ite(m.bdd_and(a, b), kFalse, kTrue);
  EXPECT_EQ(nand_ab, bdd_not(m.bdd_and(a, b)));
  EXPECT_EQ(m.num_nodes(), before);
}

TEST(Bdd, EvalMatchesSemantics) {
  BddManager m;
  const Ref a = m.var(0);
  const Ref b = m.var(1);
  const Ref c = m.var(2);
  const Ref f = m.bdd_xor(m.bdd_and(a, b), c);  // (a&b)^c
  for (int bits = 0; bits < 8; ++bits) {
    const std::vector<std::uint8_t> v = {static_cast<std::uint8_t>(bits & 1),
                                         static_cast<std::uint8_t>((bits >> 1) & 1),
                                         static_cast<std::uint8_t>((bits >> 2) & 1)};
    const bool expect = ((v[0] & v[1]) ^ v[2]) != 0;
    EXPECT_EQ(m.eval(f, v), expect) << "assignment " << bits;
  }
}

TEST(Bdd, OneSatWitnessesAndIsFalseOnFalse) {
  BddManager m;
  const Ref a = m.var(0);
  const Ref b = m.var(1);
  const Ref f = m.bdd_and(bdd_not(a), b);  // !a & b has exactly one model
  std::vector<std::uint8_t> v;
  ASSERT_TRUE(m.one_sat(f, 2, v));
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[1], 1);
  EXPECT_TRUE(m.eval(f, v));
  EXPECT_FALSE(m.one_sat(kFalse, 2, v));
}

TEST(Bdd, BudgetExhaustionPoisonsNotCrashes) {
  // A tiny budget on a function needing many nodes: the manager must go
  // exhausted and answer kInvalid forever after, never grow past the cap.
  BddManager m(/*node_budget=*/8);
  Ref parity = kFalse;
  for (std::uint32_t v = 0; v < 32; ++v) parity = m.bdd_xor(parity, m.var(v));
  EXPECT_TRUE(m.exhausted());
  EXPECT_EQ(parity, kInvalid);
  EXPECT_LE(m.num_nodes(), 8u);
  // Sticky: even trivial operations now refuse.
  EXPECT_EQ(m.ite(kTrue, kTrue, kFalse), kInvalid);
  EXPECT_EQ(m.var(0), kInvalid);
}

TEST(Bdd, NodeIdsAndStatsAreByteStable) {
  // The same build sequence must produce identical edges, node counts and
  // stats across managers — the determinism contract the CEC depends on.
  auto build = [](std::vector<Ref>& edges, BddStats& stats, std::size_t& nodes) {
    BddManager m;
    Ref parity = kFalse;
    Ref majority = kFalse;
    for (std::uint32_t v = 0; v < 16; ++v) {
      parity = m.bdd_xor(parity, m.var(v));
      majority = m.ite(m.var(v), m.bdd_or(majority, m.var((v + 1) % 16)), majority);
      edges.push_back(parity);
      edges.push_back(majority);
    }
    stats = m.stats();
    nodes = m.num_nodes();
  };
  std::vector<Ref> e1, e2;
  BddStats s1, s2;
  std::size_t n1 = 0, n2 = 0;
  build(e1, s1, n1);
  build(e2, s2, n2);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(s1.unique_hits, s2.unique_hits);
  EXPECT_EQ(s1.cache_hits, s2.cache_hits);
  EXPECT_EQ(s1.ite_calls, s2.ite_calls);
}

TEST(Bdd, WideParityStaysLinear) {
  // Parity is the BDD sweet spot: n variables need O(n) nodes under any
  // order. Building 64-bit parity incrementally also materializes every
  // prefix parity (there is no garbage collection), so the arena holds
  // O(n^2) nodes total — still tiny next to the CEC tier's 2^18 budget.
  BddManager m(/*node_budget=*/1u << 14);
  Ref parity = kFalse;
  for (std::uint32_t v = 0; v < 64; ++v) parity = m.bdd_xor(parity, m.var(v));
  EXPECT_FALSE(m.exhausted());
  EXPECT_NE(parity, kInvalid);
  // Root-compare: the same parity built in reverse order is the same edge.
  Ref rev = kFalse;
  for (std::uint32_t v = 64; v-- > 0;) rev = m.bdd_xor(rev, m.var(v));
  EXPECT_EQ(parity, rev);
}

}  // namespace
}  // namespace vpga::bdd
