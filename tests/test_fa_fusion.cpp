// Tests for full-adder fusion (Section 2.2's one-tile full adder).

#include "compact/fa_fusion.hpp"

#include <gtest/gtest.h>

#include "compact/compact.hpp"
#include "designs/datapath.hpp"
#include "designs/designs.hpp"
#include "netlist/simulate.hpp"
#include "synth/mapper.hpp"

namespace vpga::compact {
namespace {

using core::ConfigKind;
using core::PlbArchitecture;

TEST(FaFusion, MajorityFamilyClosure) {
  const auto& fam = majority_family();
  EXPECT_TRUE(fam.test(logic::tt3::maj3().bits()));
  EXPECT_TRUE(fam.test((~logic::tt3::maj3()).bits()));
  // Subtractor carry: maj(a', b, c).
  EXPECT_TRUE(fam.test(logic::tt3::maj3().negate_var(0).bits()));
  EXPECT_FALSE(fam.test(logic::tt3::xor3().bits()));
  EXPECT_FALSE(fam.test(logic::tt3::nand3().bits()));
  // Input negations and complement: at most 16 members.
  EXPECT_LE(fam.count(), 16u);
  EXPECT_GE(fam.count(), 8u);
}

netlist::Netlist hand_built_fa_pair() {
  netlist::Netlist nl("fa");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto c = nl.add_input("c");
  auto sum = nl.add_xor3(a, b, c);
  auto cout = nl.add_maj(a, b, c);
  nl.node(sum).config_tag = static_cast<std::uint8_t>(ConfigKind::kXoamx);
  nl.node(cout).config_tag = static_cast<std::uint8_t>(ConfigKind::kXoamx);
  nl.add_output(sum, "s");
  nl.add_output(cout, "co");
  return nl;
}

TEST(FaFusion, PairsSumAndCarryOnSameFanins) {
  auto nl = hand_built_fa_pair();
  EXPECT_EQ(fuse_full_adders(nl, PlbArchitecture::granular()), 1);
  int fa_nodes = 0;
  netlist::NodeId rep;
  for (netlist::NodeId id : nl.all_nodes()) {
    const auto& n = nl.node(id);
    if (n.type == netlist::NodeType::kComb &&
        n.config_tag == static_cast<std::uint8_t>(ConfigKind::kFullAdder)) {
      ++fa_nodes;
      EXPECT_TRUE(n.in_macro());
      if (!rep.valid()) rep = n.macro_rep;
      EXPECT_EQ(n.macro_rep, rep);
    }
  }
  EXPECT_EQ(fa_nodes, 2);
}

TEST(FaFusion, NoOpOnLutArchitecture) {
  auto nl = hand_built_fa_pair();
  // Retag to LUT configs first (LUT arch would never carry XOAMX tags).
  for (netlist::NodeId id : nl.all_nodes())
    if (nl.node(id).type == netlist::NodeType::kComb)
      nl.node(id).config_tag = static_cast<std::uint8_t>(ConfigKind::kLut3);
  EXPECT_EQ(fuse_full_adders(nl, PlbArchitecture::lut_based()), 0);
  for (netlist::NodeId id : nl.all_nodes()) EXPECT_FALSE(nl.node(id).in_macro());
}

TEST(FaFusion, DifferentFaninsDoNotPair) {
  netlist::Netlist nl("nofa");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto c = nl.add_input("c");
  const auto d = nl.add_input("d");
  auto sum = nl.add_xor3(a, b, c);
  auto cout = nl.add_maj(a, b, d);  // different third input
  nl.node(sum).config_tag = static_cast<std::uint8_t>(ConfigKind::kXoamx);
  nl.node(cout).config_tag = static_cast<std::uint8_t>(ConfigKind::kXoamx);
  nl.add_output(sum, "s");
  nl.add_output(cout, "co");
  EXPECT_EQ(fuse_full_adders(nl, PlbArchitecture::granular()), 0);
}

TEST(FaFusion, UnpairedSpeculativeHalvesDemoteToXoamx) {
  netlist::Netlist nl("half");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto c = nl.add_input("c");
  auto sum = nl.add_xor3(a, b, c);  // a lone sum, no carry partner
  nl.node(sum).config_tag = static_cast<std::uint8_t>(ConfigKind::kFullAdder);
  nl.add_output(sum, "s");
  EXPECT_EQ(fuse_full_adders(nl, PlbArchitecture::granular()), 0);
  EXPECT_EQ(nl.node(sum).config_tag, static_cast<std::uint8_t>(ConfigKind::kXoamx));
  EXPECT_FALSE(nl.node(sum).in_macro());
}

TEST(FaFusion, RippleAdderFusesEveryBit) {
  const auto src = designs::make_ripple_adder(24);
  const auto arch = PlbArchitecture::granular();
  const auto mapped =
      synth::tech_map(src, synth::cell_target(arch), synth::Objective::kDelay);
  const auto c = compact_from(src, mapped.netlist, arch);
  EXPECT_EQ(c.report.config_histogram[static_cast<int>(ConfigKind::kFullAdder)], 24);
  EXPECT_TRUE(netlist::equivalent_random_sim(src, c.netlist, 300));
}

TEST(FaFusion, SubtractorCarriesFuseToo) {
  // a - b uses carries maj(a, b', c): still one FA per bit thanks to the
  // majority-family matching (programmable input polarity).
  netlist::Netlist src("sub8");
  designs::Bus a = designs::input_bus(src, "a", 8);
  designs::Bus b = designs::input_bus(src, "b", 8);
  designs::output_bus(src, "d", designs::ripple_sub(src, a, b));
  const auto arch = PlbArchitecture::granular();
  const auto mapped =
      synth::tech_map(src, synth::cell_target(arch), synth::Objective::kDelay);
  const auto c = compact_from(src, mapped.netlist, arch);
  EXPECT_GE(c.report.config_histogram[static_cast<int>(ConfigKind::kFullAdder)], 6);
  EXPECT_TRUE(netlist::equivalent_random_sim(src, c.netlist, 300));
}

TEST(FaFusion, MacroAreaCountedOnce) {
  auto nl = hand_built_fa_pair();
  const double before = gate_area(nl);
  fuse_full_adders(nl, PlbArchitecture::granular());
  const double after = gate_area(nl);
  // Two XOAMX configurations collapse into one FA macro: area must shrink.
  EXPECT_LT(after, before);
  EXPECT_NEAR(after, core::config_spec(ConfigKind::kFullAdder).mapped_area_um2, 1e-9);
}

}  // namespace
}  // namespace vpga::compact
