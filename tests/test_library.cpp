// Tests for the characterized cell library (the CellRater substitute).

#include "library/characterize.hpp"

#include <gtest/gtest.h>

namespace vpga::library {
namespace {

TEST(Characterize, ArcFollowsLogicalEffort) {
  EffortModel m;
  m.tau_ps = 10.0;
  m.unit_cap_ff = 2.0;
  CellElectrical e;
  e.logical_effort = 2.0;
  e.parasitic = 3.0;
  e.cin_units = 1.0;
  const auto arc = characterize_arc(m, e);
  EXPECT_DOUBLE_EQ(arc.intrinsic_ps, 30.0);
  EXPECT_DOUBLE_EQ(arc.slope_ps_per_ff, 10.0);  // tau*g/Cin = 10*2/2
  EXPECT_DOUBLE_EQ(arc.delay(4.0), 70.0);
}

TEST(Characterize, LibraryHasAllKinds) {
  const auto& lib = CellLibrary::standard();
  EXPECT_EQ(lib.all().size(), static_cast<std::size_t>(kNumCellKinds));
  for (int i = 0; i < kNumCellKinds; ++i) {
    const auto& s = lib.spec(static_cast<CellKind>(i));
    EXPECT_EQ(s.kind, static_cast<CellKind>(i));
    EXPECT_GT(s.area_um2, 0.0);
    EXPECT_GT(s.input_cap_ff, 0.0);
    EXPECT_GT(s.arc.intrinsic_ps, 0.0);
  }
}

TEST(Characterize, LutIsSubstantiallySlowerThanSimpleCells) {
  // The paper's motivation: "the VPGA LUT is substantially inferior to an
  // equivalent standard cell in terms of delay, power and area, when
  // configured as a simple logic function."
  const auto& lib = CellLibrary::standard();
  const double load = 2.0;  // a couple of fanout pins
  const double lut = lib.spec(CellKind::kLut3).arc.delay(load);
  const double nd2 = lib.spec(CellKind::kNd2wi).arc.delay(load);
  const double nd3 = lib.spec(CellKind::kNd3wi).arc.delay(load);
  const double mux = lib.spec(CellKind::kMux2).arc.delay(load);
  EXPECT_GT(lut / nd2, 2.0);
  EXPECT_GT(lut / nd3, 1.8);
  EXPECT_GT(lut / mux, 1.8);
}

TEST(Characterize, LutIsLargestCombinationalCell) {
  const auto& lib = CellLibrary::standard();
  const double lut = lib.spec(CellKind::kLut3).area_um2;
  for (auto k : {CellKind::kInv, CellKind::kBuf, CellKind::kNd2wi, CellKind::kNd3wi,
                 CellKind::kMux2, CellKind::kXoa})
    EXPECT_GT(lut, lib.spec(k).area_um2);
}

TEST(Characterize, XoaIsFasterDriverThanPlainMux) {
  // XOA is "sized differently from the other two MUXes to minimize logic
  // delay": flatter slope at the cost of input capacitance and area.
  const auto& lib = CellLibrary::standard();
  const auto& xoa = lib.spec(CellKind::kXoa);
  const auto& mux = lib.spec(CellKind::kMux2);
  EXPECT_LT(xoa.arc.slope_ps_per_ff, mux.arc.slope_ps_per_ff);
  EXPECT_GT(xoa.input_cap_ff, mux.input_cap_ff);
  EXPECT_GT(xoa.area_um2, mux.area_um2);
  EXPECT_LT(xoa.arc.delay(3.0), mux.arc.delay(3.0));
}

TEST(Characterize, CoverageSetsAttached) {
  const auto& lib = CellLibrary::standard();
  EXPECT_EQ(lib.spec(CellKind::kLut3).coverage.count(), 256u);
  EXPECT_EQ(lib.spec(CellKind::kNd2wi).coverage, logic::nd2wi_set3());
  EXPECT_EQ(lib.spec(CellKind::kMux2).coverage, logic::mux2_set3());
  EXPECT_TRUE(lib.spec(CellKind::kDff).coverage.none());
  // INV covers exactly literals and constants: 3*2 + 2 = 8 functions.
  EXPECT_EQ(lib.spec(CellKind::kInv).coverage.count(), 8u);
}

TEST(Characterize, SequentialFlagsAndSetup) {
  const auto& lib = CellLibrary::standard();
  EXPECT_TRUE(lib.spec(CellKind::kDff).is_sequential());
  EXPECT_GT(lib.spec(CellKind::kDff).setup_ps, 0.0);
  EXPECT_FALSE(lib.spec(CellKind::kMux2).is_sequential());
}

TEST(Characterize, Nand2EquivalentsNormalized) {
  const auto& lib = CellLibrary::standard();
  EXPECT_DOUBLE_EQ(lib.nand2_equivalents(CellKind::kNd2wi), 1.0);
  EXPECT_GT(lib.nand2_equivalents(CellKind::kLut3), 3.0);
}

TEST(Characterize, NamesAreStable) {
  EXPECT_STREQ(to_string(CellKind::kNd3wi), "ND3WI");
  EXPECT_STREQ(to_string(CellKind::kXoa), "XOA");
  EXPECT_STREQ(to_string(CellKind::kLut3), "LUT3");
}

TEST(Characterize, CustomModelScalesDelays) {
  EffortModel fast;
  fast.tau_ps = 6.0;  // a faster process: all delays halve
  const auto lib = characterize_library(fast);
  const auto& ref = CellLibrary::standard();
  for (int i = 0; i < kNumCellKinds; ++i) {
    const auto k = static_cast<CellKind>(i);
    EXPECT_NEAR(lib.spec(k).arc.intrinsic_ps, 0.5 * ref.spec(k).arc.intrinsic_ps, 1e-9);
  }
}

}  // namespace
}  // namespace vpga::library
