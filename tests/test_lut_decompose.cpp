// Tests for Figure 5: the 3-LUT as three via-configured 2:1 MUXes.

#include "logic/lut_decompose.hpp"

#include <gtest/gtest.h>

namespace vpga::logic {
namespace {

TEST(LutDecompose, XorThreeUsesLiteralLeaves) {
  const auto r = decompose_lut3(tt3::xor3());
  // Every leaf of xor3 is a or a' (never a constant).
  for (auto w : r.leaf) EXPECT_TRUE(w == LeafWire::kA || w == LeafWire::kNotA);
  EXPECT_EQ(mux_tree_function(r), tt3::xor3());
}

TEST(LutDecompose, ConstantUsesRailLeaves) {
  const auto r = decompose_lut3(TruthTable::constant(3, true));
  for (auto w : r.leaf) EXPECT_EQ(w, LeafWire::kVdd);
}

TEST(LutDecompose, LeafNamesPrintable) {
  EXPECT_STREQ(to_string(LeafWire::kGnd), "0");
  EXPECT_STREQ(to_string(LeafWire::kVdd), "1");
  EXPECT_STREQ(to_string(LeafWire::kA), "a");
  EXPECT_STREQ(to_string(LeafWire::kNotA), "a'");
}

// Property sweep: decomposition followed by evaluation is the identity for
// all 256 LUT configurations — this is exactly the paper's Figure 5 claim
// that the three re-arranged MUXes lose no functionality.
class LutDecomposeSweep : public ::testing::TestWithParam<int> {};

TEST_P(LutDecomposeSweep, RoundTripsAll256Configs) {
  const TruthTable f(3, static_cast<std::uint64_t>(GetParam()));
  const auto r = decompose_lut3(f);
  EXPECT_EQ(mux_tree_function(r), f);
  for (unsigned row = 0; row < 8; ++row) EXPECT_EQ(eval_mux_tree(r, row), f.eval(row));
}

INSTANTIATE_TEST_SUITE_P(All256, LutDecomposeSweep, ::testing::Range(0, 256));

TEST(LutDecompose, MajorityExample) {
  const auto r = decompose_lut3(tt3::maj3());
  // maj(a,b,c): cofactors by (b,c): 00 -> 0, 01 -> a, 10 -> a, 11 -> 1.
  EXPECT_EQ(r.leaf[0], LeafWire::kGnd);
  EXPECT_EQ(r.leaf[1], LeafWire::kA);
  EXPECT_EQ(r.leaf[2], LeafWire::kA);
  EXPECT_EQ(r.leaf[3], LeafWire::kVdd);
}

}  // namespace
}  // namespace vpga::logic
