// Tests for the common substrate: IDs, RNG determinism, table printer.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace vpga::common {
namespace {

struct TagA;
struct TagB;

TEST(Ids, DefaultIsInvalid) {
  Id<TagA> id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), Id<TagA>::kInvalid);
}

TEST(Ids, ValueRoundTrip) {
  Id<TagA> id(42u);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
  EXPECT_EQ(id.index(), 42u);
}

TEST(Ids, ComparisonAndHash) {
  Id<TagA> a(1u), b(2u), c(1u);
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_EQ(std::hash<Id<TagA>>{}(a), std::hash<Id<TagA>>{}(c));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng r1(123), r2(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r1.next_u64(), r2.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng r1(1), r2(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += r1.next_u64() == r2.next_u64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowIsInRange) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowHitsAllResidues) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(21);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(TextTable, AlignsColumnsAndPrintsSeparator) {
  TextTable t({"design", "area"});
  t.add_row({"alu", "10.5"});
  t.add_row({"network_switch", "123.0"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("design"), std::string::npos);
  EXPECT_NE(s.find("network_switch"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

}  // namespace
}  // namespace vpga::common
