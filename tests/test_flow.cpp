// Integration tests: the end-to-end flows reproduce the paper's directional
// claims on scaled-down versions of the evaluation designs.

#include "flow/flow.hpp"

#include <gtest/gtest.h>

namespace vpga::flow {
namespace {

using core::PlbArchitecture;

TEST(Flow, FlowAProducesReport) {
  const auto d = designs::make_alu(8);
  const auto r = run_flow(d, PlbArchitecture::granular(), 'a');
  EXPECT_EQ(r.flow, 'a');
  EXPECT_GT(r.die_area_um2, 0.0);
  EXPECT_GT(r.gate_count_nand2, 0.0);
  EXPECT_GT(r.wirelength_um, 0.0);
  EXPECT_EQ(r.plbs, 0);
}

TEST(Flow, FlowBProducesReport) {
  const auto d = designs::make_alu(8);
  const auto r = run_flow(d, PlbArchitecture::granular(), 'b');
  EXPECT_EQ(r.flow, 'b');
  EXPECT_GT(r.plbs, 0);
  EXPECT_GT(r.die_area_um2, 0.0);
}

TEST(Flow, PackingCostsAreaAndTiming) {
  // Flow b pays for regularity in both area and slack (paper Tables 1/2:
  // flow b > flow a in area; slack degrades).
  const auto d = designs::make_alu(8);
  for (const auto& arch : {PlbArchitecture::granular(), PlbArchitecture::lut_based()}) {
    const auto a = run_flow(d, arch, 'a');
    const auto b = run_flow(d, arch, 'b');
    EXPECT_GT(b.die_area_um2, a.die_area_um2) << arch.name;
    EXPECT_LT(b.avg_slack_top10_ps, a.avg_slack_top10_ps) << arch.name;
  }
}

TEST(Flow, GranularBeatsLutOnDatapathAreaAndSlack) {
  // The paper's headline: on datapath designs the granular PLB gives smaller
  // die area and better slack in the full VPGA flow.
  const auto d = designs::make_alu(16);
  const auto g = run_flow(d, PlbArchitecture::granular(), 'b');
  const auto l = run_flow(d, PlbArchitecture::lut_based(), 'b');
  EXPECT_LT(g.die_area_um2, l.die_area_um2);
  EXPECT_GT(g.avg_slack_top10_ps, l.avg_slack_top10_ps);
}

TEST(Flow, GranularDegradesLessFromAToB) {
  // "there is about 68% less performance degradation from Flow a to Flow b
  // for designs employing the granular PLB."
  const auto d = designs::make_alu(16);
  const auto c = compare_architectures(d);
  const double deg_gran = c.granular_a.avg_slack_top10_ps - c.granular_b.avg_slack_top10_ps;
  const double deg_lut = c.lut_a.avg_slack_top10_ps - c.lut_b.avg_slack_top10_ps;
  EXPECT_GT(deg_gran, 0.0);
  EXPECT_LT(deg_gran, deg_lut);
}

TEST(Flow, CompactionReportedInBothFlows) {
  const auto d = designs::make_alu(8);
  const auto a = run_flow(d, PlbArchitecture::granular(), 'a');
  const auto b = run_flow(d, PlbArchitecture::granular(), 'b');
  EXPECT_GE(a.compaction.area_reduction(), 0.0);
  EXPECT_DOUBLE_EQ(a.compaction.area_before_um2, b.compaction.area_before_um2);
}

TEST(Flow, SequentialDesignFavorsLutArchitecture) {
  // Firewire direction: sequential-dominated control logic underutilizes the
  // granular PLB's extra combinational area, so the LUT-based array is no
  // longer larger (paper: the granular PLB gives a *bigger* die here).
  const auto d = designs::make_firewire(8, 8);
  const auto g = run_flow(d, PlbArchitecture::granular(), 'b');
  const auto l = run_flow(d, PlbArchitecture::lut_based(), 'b');
  EXPECT_GT(g.die_area_um2 / l.die_area_um2, 0.95);
}

TEST(Flow, DeterministicReports) {
  const auto d = designs::make_alu(8);
  const auto r1 = run_flow(d, PlbArchitecture::granular(), 'b');
  const auto r2 = run_flow(d, PlbArchitecture::granular(), 'b');
  EXPECT_DOUBLE_EQ(r1.die_area_um2, r2.die_area_um2);
  EXPECT_DOUBLE_EQ(r1.avg_slack_top10_ps, r2.avg_slack_top10_ps);
  EXPECT_EQ(r1.plbs, r2.plbs);
}

TEST(Flow, GateCountInNand2Units) {
  const auto d = designs::make_fpu(5, 10);
  const auto r = run_flow(d, PlbArchitecture::granular(), 'a');
  EXPECT_GT(r.gate_count_nand2, 100.0);
}

TEST(Flow, ScaledSuiteRunsEndToEnd) {
  for (const auto& d : designs::paper_suite(0.2)) {
    const auto r = run_flow(d, PlbArchitecture::granular(), 'b');
    EXPECT_GT(r.die_area_um2, 0.0) << d.netlist.name();
    EXPECT_GT(r.plbs, 0) << d.netlist.name();
  }
}

TEST(Flow, RunTallyCountsEveryRunIncludingParallelCompares) {
  const auto before = run_tally();
  const auto d = designs::make_alu(4);
  (void)run_flow(d, PlbArchitecture::granular(), 'a');
  FlowOptions opts;
  opts.parallel_compare = true;
  (void)compare_architectures(d, opts);
  const auto after = run_tally();
  // One direct run plus the comparison's four (2 archs x 2 flows).
  EXPECT_EQ(after.runs, before.runs + 5);
  EXPECT_EQ(after.parallel_compares, before.parallel_compares + 1);
}

}  // namespace
}  // namespace vpga::flow
