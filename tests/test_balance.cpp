// Tests for the AIG delay-balancing pass.

#include "aig/balance.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "designs/designs.hpp"
#include "netlist/simulate.hpp"

namespace vpga::aig {
namespace {

TEST(Balance, SkewedAndChainBecomesLogDepth) {
  // and(and(and(...a1, a2), a3) ... a16): depth 15 -> 4.
  Aig g;
  Lit acc = g.add_input();
  for (int i = 1; i < 16; ++i) acc = g.add_and(acc, g.add_input());
  g.add_output(acc);
  const auto r = balance(g);
  EXPECT_EQ(r.depth_before, 15);
  EXPECT_EQ(r.depth_after, 4);
  // Function preserved: all-ones input -> 1, any zero -> 0.
  std::vector<bool> in(16, true);
  EXPECT_TRUE(r.aig.eval(in)[0]);
  in[7] = false;
  EXPECT_FALSE(r.aig.eval(in)[0]);
}

TEST(Balance, OrChainThroughDeMorganAlsoShrinks) {
  // or-chain = complemented and-chain of complements: the tree boundary is a
  // complemented edge, so each 2-input or stays, but the inner and-tree of
  // its complement form balances. Verify function + no depth increase.
  Aig g;
  Lit acc = g.add_input();
  for (int i = 1; i < 12; ++i) acc = g.add_or(acc, g.add_input());
  g.add_output(acc);
  const auto r = balance(g);
  EXPECT_LE(r.depth_after, r.depth_before);
  std::vector<bool> in(12, false);
  EXPECT_FALSE(r.aig.eval(in)[0]);
  in[5] = true;
  EXPECT_TRUE(r.aig.eval(in)[0]);
}

TEST(Balance, PreservesFunctionOnRandomAigs) {
  common::Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    Aig g;
    std::vector<Lit> pool;
    for (int i = 0; i < 8; ++i) pool.push_back(g.add_input());
    for (int i = 0; i < 60; ++i) {
      const Lit a = pool[rng.next_below(pool.size())] ^ static_cast<Lit>(rng.next_below(2));
      const Lit b = pool[rng.next_below(pool.size())] ^ static_cast<Lit>(rng.next_below(2));
      pool.push_back(g.add_and(a, b));
    }
    for (int o = 0; o < 4; ++o) g.add_output(pool[pool.size() - 1 - o]);
    const auto r = balance(g);
    EXPECT_LE(r.depth_after, r.depth_before);
    for (int vec = 0; vec < 64; ++vec) {
      std::vector<bool> in(8);
      for (int i = 0; i < 8; ++i) in[static_cast<std::size_t>(i)] = rng.next_bool();
      EXPECT_EQ(g.eval(in), r.aig.eval(in)) << "trial " << trial;
    }
  }
}

TEST(Balance, SharedSubtreesNotDuplicated) {
  // x = and(a,b) feeds two consumers: balancing must not blow up node count.
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit c = g.add_input();
  const Lit x = g.add_and(a, b);
  g.add_output(g.add_and(x, c));
  g.add_output(g.add_and(x, negate(c)));
  const auto r = balance(g);
  EXPECT_LE(r.aig.count_reachable_ands(), g.count_reachable_ands());
}

TEST(Balance, ConstantOutputsSurvive) {
  Aig g;
  const Lit a = g.add_input();
  g.add_output(g.add_and(a, negate(a)));  // folds to constant false
  g.add_output(kTrue);
  const auto r = balance(g);
  EXPECT_FALSE(r.aig.eval({true})[0]);
  EXPECT_TRUE(r.aig.eval({true})[1]);
}

TEST(Balance, RealDesignKeepsBehaviour) {
  const auto nl = designs::make_ripple_adder(8);
  auto m = from_netlist(nl);
  auto r = balance(m.aig);
  EXPECT_LE(r.depth_after, r.depth_before);
  AigMapping balanced{std::move(r.aig), m.num_pis, m.num_latches, m.num_pos};
  const auto back = to_netlist(balanced);
  EXPECT_TRUE(netlist::equivalent_random_sim(nl, back, 300));
}

}  // namespace
}  // namespace vpga::aig
