// Tests for NPN classification of 3-input functions.

#include "logic/npn.hpp"

#include <gtest/gtest.h>

#include "logic/s3.hpp"
#include "logic/truth_table.hpp"

namespace vpga::logic {
namespace {

TEST(Npn, FourteenClasses) {
  // The classic result: 256 three-input functions fall into 14 NPN classes.
  EXPECT_EQ(npn_classes().size(), 14u);
}

TEST(Npn, ClassSizesSumTo256) {
  int total = 0;
  for (const auto& c : npn_classes()) total += c.size;
  EXPECT_EQ(total, 256);
}

TEST(Npn, CanonicalIsInvariantOnOrbit) {
  for (int f = 0; f < 256; ++f) {
    const auto canon = npn_canonical(static_cast<std::uint8_t>(f));
    for (auto member : npn_class_of(static_cast<std::uint8_t>(f)))
      EXPECT_EQ(npn_canonical(member), canon) << f;
  }
}

TEST(Npn, CanonicalIsAMemberAndMinimal) {
  for (int f = 0; f < 256; ++f) {
    const auto orbit = npn_class_of(static_cast<std::uint8_t>(f));
    const auto canon = npn_canonical(static_cast<std::uint8_t>(f));
    EXPECT_EQ(canon, orbit.front());
    for (auto member : orbit) EXPECT_LE(canon, member);
  }
}

TEST(Npn, KnownClassMembers) {
  // xor3 and xnor3 share a class; mux and maj are distinct classes.
  EXPECT_EQ(npn_canonical(tt3::xor3().bits()), npn_canonical(tt3::xnor3().bits()));
  EXPECT_NE(npn_canonical(tt3::mux().bits()), npn_canonical(tt3::maj3().bits()));
  EXPECT_NE(npn_canonical(tt3::maj3().bits()), npn_canonical(tt3::xor3().bits()));
  // and3, nand3, nor3, or3 are all one class under NPN.
  const auto and3 = npn_canonical(0x80);
  EXPECT_EQ(npn_canonical(0x7F), and3);
  EXPECT_EQ(npn_canonical(0x01), and3);
  EXPECT_EQ(npn_canonical(0xFE), and3);
}

TEST(Npn, ConstantsAndLiteralsAreTinyClasses) {
  // Constants: {0x00, 0xFF} — one class of size 2.
  EXPECT_EQ(npn_canonical(0x00), npn_canonical(0xFF));
  EXPECT_EQ(static_cast<int>(npn_class_of(0x00).size()), 2);
  // Literals: 6 members (3 vars x 2 polarities).
  EXPECT_EQ(static_cast<int>(npn_class_of(0xAA).size()), 6);
}

TEST(Npn, CoverageOfFullSetIsAllOnes) {
  const auto cov = npn_coverage(lut3_set3());
  for (double c : cov) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(Npn, CoverageRespectsNpnClosedSets) {
  // nd3wi and mux2 coverage sets are NPN-closed (programmable polarity +
  // routable pins), so every class is covered fully or not at all.
  for (const auto* set : {&nd3wi_set3(), &mux2_set3()}) {
    const auto cov = npn_coverage(*set);
    for (double c : cov) EXPECT_TRUE(c == 0.0 || c == 1.0) << c;
  }
}

TEST(Npn, S3FeasibleSetIsNotNpnClosed) {
  // The S3 gate has a designated select pin, so its feasible set must have a
  // partially covered class (permuting inputs can break feasibility).
  const auto a = analyze_s3();
  const auto cov = npn_coverage(a.feasible);
  bool partial = false;
  for (double c : cov) partial = partial || (c > 0.0 && c < 1.0);
  EXPECT_TRUE(partial);
}

TEST(Npn, NamesPresent) {
  for (const auto& c : npn_classes()) EXPECT_FALSE(c.name.empty());
}

}  // namespace
}  // namespace vpga::logic
