// Tests for NPN classification of 3-input functions.

#include "logic/npn.hpp"

#include <gtest/gtest.h>

#include "logic/s3.hpp"
#include "logic/truth_table.hpp"

namespace vpga::logic {
namespace {

TEST(Npn, FourteenClasses) {
  // The classic result: 256 three-input functions fall into 14 NPN classes.
  EXPECT_EQ(npn_classes().size(), 14u);
}

TEST(Npn, ClassSizesSumTo256) {
  int total = 0;
  for (const auto& c : npn_classes()) total += c.size;
  EXPECT_EQ(total, 256);
}

TEST(Npn, CanonicalIsInvariantOnOrbit) {
  for (int f = 0; f < 256; ++f) {
    const auto canon = npn_canonical(static_cast<std::uint8_t>(f));
    for (auto member : npn_class_of(static_cast<std::uint8_t>(f)))
      EXPECT_EQ(npn_canonical(member), canon) << f;
  }
}

TEST(Npn, CanonicalIsAMemberAndMinimal) {
  for (int f = 0; f < 256; ++f) {
    const auto orbit = npn_class_of(static_cast<std::uint8_t>(f));
    const auto canon = npn_canonical(static_cast<std::uint8_t>(f));
    EXPECT_EQ(canon, orbit.front());
    for (auto member : orbit) EXPECT_LE(canon, member);
  }
}

TEST(Npn, KnownClassMembers) {
  // xor3 and xnor3 share a class; mux and maj are distinct classes.
  EXPECT_EQ(npn_canonical(tt3::xor3().bits()), npn_canonical(tt3::xnor3().bits()));
  EXPECT_NE(npn_canonical(tt3::mux().bits()), npn_canonical(tt3::maj3().bits()));
  EXPECT_NE(npn_canonical(tt3::maj3().bits()), npn_canonical(tt3::xor3().bits()));
  // and3, nand3, nor3, or3 are all one class under NPN.
  const auto and3 = npn_canonical(0x80);
  EXPECT_EQ(npn_canonical(0x7F), and3);
  EXPECT_EQ(npn_canonical(0x01), and3);
  EXPECT_EQ(npn_canonical(0xFE), and3);
}

TEST(Npn, ConstantsAndLiteralsAreTinyClasses) {
  // Constants: {0x00, 0xFF} — one class of size 2.
  EXPECT_EQ(npn_canonical(0x00), npn_canonical(0xFF));
  EXPECT_EQ(static_cast<int>(npn_class_of(0x00).size()), 2);
  // Literals: 6 members (3 vars x 2 polarities).
  EXPECT_EQ(static_cast<int>(npn_class_of(0xAA).size()), 6);
}

TEST(Npn, CoverageOfFullSetIsAllOnes) {
  const auto cov = npn_coverage(lut3_set3());
  for (double c : cov) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(Npn, CoverageRespectsNpnClosedSets) {
  // nd3wi and mux2 coverage sets are NPN-closed (programmable polarity +
  // routable pins), so every class is covered fully or not at all.
  for (const auto* set : {&nd3wi_set3(), &mux2_set3()}) {
    const auto cov = npn_coverage(*set);
    for (double c : cov) EXPECT_TRUE(c == 0.0 || c == 1.0) << c;
  }
}

TEST(Npn, S3FeasibleSetIsNotNpnClosed) {
  // The S3 gate has a designated select pin, so its feasible set must have a
  // partially covered class (permuting inputs can break feasibility).
  const auto a = analyze_s3();
  const auto cov = npn_coverage(a.feasible);
  bool partial = false;
  for (double c : cov) partial = partial || (c > 0.0 && c < 1.0);
  EXPECT_TRUE(partial);
}

TEST(Npn, NamesPresent) {
  for (const auto& c : npn_classes()) EXPECT_FALSE(c.name.empty());
}

TEST(Npn, CanonicalTransformCarriesOntoRepresentative) {
  // The exposed transform is the witness of class membership: applying it to
  // tt must land exactly on the canonical representative, for all 256.
  for (int f = 0; f < 256; ++f) {
    const auto tt = static_cast<std::uint8_t>(f);
    const auto t = npn_canonical_transform(tt);
    EXPECT_EQ(apply_npn3(tt, t), npn_canonical(tt)) << f;
  }
}

TEST(Npn, Table3MatchesScalarLookup) {
  const auto& table = npn_canonical_table3();
  for (int f = 0; f < 256; ++f)
    EXPECT_EQ(table[static_cast<std::size_t>(f)], npn_canonical(static_cast<std::uint8_t>(f)));
}

TEST(Npn4, TwoHundredTwentyTwoClasses) {
  // The classic result for 4 inputs: 65536 functions, 222 NPN classes.
  EXPECT_EQ(npn_representatives4().size(), 222u);
}

TEST(Npn4, RepresentativesAreFixedPoints) {
  for (auto rep : npn_representatives4()) EXPECT_EQ(npn_canonical4(rep), rep);
}

TEST(Npn4, TableMatchesBruteForce) {
  // Deterministic stride sample of the 65536 functions (the brute-force
  // reference walks 768 images per query, so exhaustive would be slow) plus
  // the structurally interesting corners.
  for (std::uint32_t f = 0; f < 0x10000; f += 257)
    EXPECT_EQ(npn_canonical4(static_cast<std::uint16_t>(f)),
              npn_canonical4_brute(static_cast<std::uint16_t>(f)))
        << f;
  for (std::uint16_t f : {std::uint16_t{0x0000}, std::uint16_t{0xFFFF}, std::uint16_t{0x6996},
                          std::uint16_t{0x8000}, std::uint16_t{0xAAAA}, std::uint16_t{0xCAFE}})
    EXPECT_EQ(npn_canonical4(f), npn_canonical4_brute(f)) << f;
}

TEST(Npn4, CanonicalInvariantUnderTransforms) {
  // Applying any single-swap / single-negation transform must not change the
  // canonical representative (those moves generate the whole NPN group).
  const std::uint16_t probes[] = {0x1234, 0x6996, 0x0001, 0x7F80, 0xDEAD};
  for (auto tt : probes) {
    const auto canon = npn_canonical4(tt);
    for (int a = 0; a < 4; ++a) {
      NpnTransform neg;
      neg.negate_mask = static_cast<std::uint8_t>(1u << a);
      EXPECT_EQ(npn_canonical4(apply_npn4(tt, neg)), canon);
      for (int b = a + 1; b < 4; ++b) {
        NpnTransform swap;
        std::swap(swap.perm[static_cast<std::size_t>(a)], swap.perm[static_cast<std::size_t>(b)]);
        EXPECT_EQ(npn_canonical4(apply_npn4(tt, swap)), canon);
      }
    }
    NpnTransform out;
    out.negate_output = true;
    EXPECT_EQ(npn_canonical4(apply_npn4(tt, out)), canon);
  }
}

}  // namespace
}  // namespace vpga::logic
