// Property-based fuzz tests: random netlists through the synthesis stack.
//
// For randomly generated circuits (random truth tables, random topology,
// registers, constants), mapping and compaction onto either architecture
// must preserve cycle-accurate behaviour, and the packer must legalize the
// result under the exact tile resource model.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "compact/compact.hpp"
#include "designs/designs.hpp"
#include "netlist/simulate.hpp"
#include "pack/packer.hpp"
#include "place/placement.hpp"
#include "synth/buffering.hpp"
#include "synth/mapper.hpp"

namespace vpga {
namespace {

using core::PlbArchitecture;

/// A random well-formed netlist: `gates` combinational nodes of arity 1-3
/// with random truth tables, a few registers with feedback, some constants.
netlist::Netlist random_netlist(std::uint64_t seed, int inputs, int gates, int ffs) {
  common::Rng rng(seed);
  netlist::Netlist nl("fuzz" + std::to_string(seed));
  std::vector<netlist::NodeId> pool;
  for (int i = 0; i < inputs; ++i) pool.push_back(nl.add_input("i" + std::to_string(i)));
  pool.push_back(nl.add_constant(false));
  pool.push_back(nl.add_constant(true));
  // Registers created up front; D connected at the end (feedback allowed).
  std::vector<netlist::NodeId> regs;
  for (int i = 0; i < ffs; ++i) {
    const auto ff = nl.add_dff(netlist::NodeId{}, "r" + std::to_string(i));
    regs.push_back(ff);
    pool.push_back(ff);
  }
  for (int g = 0; g < gates; ++g) {
    const int arity = 1 + static_cast<int>(rng.next_below(3));
    std::vector<netlist::NodeId> fanins;
    for (int k = 0; k < arity; ++k) fanins.push_back(pool[rng.next_below(pool.size())]);
    const auto mask = (std::uint64_t{1} << (1 << arity)) - 1;
    pool.push_back(nl.add_comb(logic::TruthTable(arity, rng.next_u64() & mask),
                               std::move(fanins)));
  }
  for (auto ff : regs) nl.set_dff_input(ff, pool[rng.next_below(pool.size())]);
  const int outputs = 1 + static_cast<int>(rng.next_below(8));
  for (int o = 0; o < outputs; ++o)
    nl.add_output(pool[pool.size() - 1 - rng.next_below(pool.size() / 2)],
                  "o" + std::to_string(o));
  return nl;
}

class FuzzFlow : public ::testing::TestWithParam<int> {};

TEST_P(FuzzFlow, MapAndCompactPreserveBehaviour) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto src = random_netlist(seed, 6 + seed % 5, 40 + static_cast<int>(seed) * 7 % 60,
                                  static_cast<int>(seed) % 6);
  ASSERT_TRUE(src.check().ok);
  for (const auto& arch : {PlbArchitecture::granular(), PlbArchitecture::lut_based()}) {
    const auto mapped =
        synth::tech_map(src, synth::cell_target(arch), synth::Objective::kDelay);
    ASSERT_TRUE(mapped.netlist.check().ok) << arch.name;
    EXPECT_TRUE(netlist::equivalent_random_sim(src, mapped.netlist, 128))
        << arch.name << " seed " << seed;
    auto comp = compact::compact_from(src, mapped.netlist, arch);
    ASSERT_TRUE(comp.netlist.check().ok) << arch.name;
    EXPECT_TRUE(netlist::equivalent_random_sim(src, comp.netlist, 128))
        << arch.name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzFlow, ::testing::Range(1, 13));

class FuzzPack : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPack, LegalizationRespectsResources) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto src = random_netlist(seed + 100, 8, 80, 10);
  const auto arch = (seed % 2) ? PlbArchitecture::granular() : PlbArchitecture::lut_based();
  const auto mapped =
      synth::tech_map(src, synth::cell_target(arch), synth::Objective::kDelay);
  auto comp = compact::compact_from(src, mapped.netlist, arch);
  synth::insert_buffers(comp.netlist, 8);
  const auto placed = place::place(comp.netlist);
  const auto packed = pack::pack(comp.netlist, placed, arch);
  // Re-verify every tile against the exact resource model.
  std::vector<std::vector<core::ConfigKind>> tiles(
      static_cast<std::size_t>(packed.grid_w) * packed.grid_h);
  for (netlist::NodeId id : comp.netlist.all_nodes()) {
    const auto& n = comp.netlist.node(id);
    const int t = packed.tile_of_node[id.index()];
    const bool slots = n.type == netlist::NodeType::kDff ||
                       (n.type == netlist::NodeType::kComb && n.has_config());
    if (!slots) continue;
    ASSERT_GE(t, 0);
    if (n.in_macro() && n.macro_rep != id) {
      EXPECT_EQ(t, packed.tile_of_node[n.macro_rep.index()]);
      continue;
    }
    tiles[static_cast<std::size_t>(t)].push_back(
        n.type == netlist::NodeType::kDff ? core::ConfigKind::kFf
                                          : static_cast<core::ConfigKind>(n.config_tag));
  }
  for (const auto& contents : tiles)
    if (!contents.empty()) EXPECT_TRUE(core::fits_in_one_plb(arch, contents));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPack, ::testing::Range(1, 9));

TEST(FuzzAdders, CarrySelectAddsCorrectly) {
  const auto nl = designs::make_carry_select_adder(12, 4);
  ASSERT_TRUE(nl.check().ok);
  netlist::Simulator sim(nl);
  common::Rng rng(77);
  for (int iter = 0; iter < 500; ++iter) {
    const auto a = rng.next_u64() & 0xFFF;
    const auto b = rng.next_u64() & 0xFFF;
    const bool cin = rng.next_bool();
    for (int i = 0; i < 12; ++i) sim.set_input(static_cast<std::size_t>(i), (a >> i) & 1);
    for (int i = 0; i < 12; ++i) sim.set_input(static_cast<std::size_t>(12 + i), (b >> i) & 1);
    sim.set_input(24, cin);
    sim.eval();
    std::uint64_t got = 0;
    for (int i = 0; i < 13; ++i)
      if (sim.output(static_cast<std::size_t>(i))) got |= std::uint64_t{1} << i;
    EXPECT_EQ(got, a + b + (cin ? 1 : 0)) << a << "+" << b;
  }
}

TEST(FuzzAdders, PrefixAdderMatchesCarrySelect) {
  const auto p = designs::make_prefix_adder(16);
  const auto c = designs::make_carry_select_adder(16, 4);
  EXPECT_TRUE(netlist::equivalent_random_sim(p, c, 500));
}

TEST(FuzzAdders, AllAdderStylesEquivalentThroughMapping) {
  for (auto make : {&designs::make_prefix_adder}) {
    const auto src = make(10);
    const auto mapped = synth::tech_map(src, synth::cell_target(PlbArchitecture::granular()),
                                        synth::Objective::kDelay);
    EXPECT_TRUE(netlist::equivalent_random_sim(src, mapped.netlist, 300));
  }
}

}  // namespace
}  // namespace vpga
