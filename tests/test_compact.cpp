// Tests for the regularity-driven logic compaction pass.

#include "compact/compact.hpp"

#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "netlist/simulate.hpp"

namespace vpga::compact {
namespace {

using core::ConfigKind;
using core::PlbArchitecture;
using synth::Objective;
using synth::cell_target;
using synth::tech_map;

CompactionResult run(const netlist::Netlist& src, const PlbArchitecture& arch) {
  // As in the flow driver: the cover is rebuilt from the pre-mapping
  // structure, the area delta is accounted against the mapped netlist.
  const auto mapped = tech_map(src, cell_target(arch), Objective::kDelay);
  return compact_from(src, mapped.netlist, arch);
}

TEST(Compact, PreservesFunctionGranular) {
  const auto src = designs::make_ripple_adder(8);
  const auto c = run(src, PlbArchitecture::granular());
  EXPECT_TRUE(c.netlist.check().ok);
  EXPECT_TRUE(netlist::equivalent_random_sim(src, c.netlist, 300));
}

TEST(Compact, PreservesFunctionLut) {
  const auto src = designs::make_ripple_adder(8);
  const auto c = run(src, PlbArchitecture::lut_based());
  EXPECT_TRUE(netlist::equivalent_random_sim(src, c.netlist, 300));
}

TEST(Compact, PreservesSequentialBehaviour) {
  const auto d = designs::make_firewire(4, 8);
  const auto c = run(d.netlist, PlbArchitecture::granular());
  EXPECT_TRUE(netlist::equivalent_random_sim(d.netlist, c.netlist, 200));
}

TEST(Compact, ReducesGateArea) {
  // The paper: "this compaction step resulted in a significant reduction in
  // total gate area of about 15% on the average" (both architectures).
  for (const auto& arch : {PlbArchitecture::lut_based(), PlbArchitecture::granular()}) {
    const auto d = designs::make_alu(16);
    const auto c = run(d.netlist, arch);
    EXPECT_LT(c.report.area_after_um2, c.report.area_before_um2) << arch.name;
    EXPECT_GT(c.report.area_reduction(), 0.03) << arch.name;
  }
}

TEST(Compact, EveryCombNodeGetsConfigOrBufferCell) {
  const auto d = designs::make_alu(8);
  const auto c = run(d.netlist, PlbArchitecture::granular());
  for (netlist::NodeId id : c.netlist.all_nodes()) {
    const auto& n = c.netlist.node(id);
    if (n.type != netlist::NodeType::kComb) continue;
    if (n.has_config()) continue;
    ASSERT_TRUE(n.is_mapped());
    EXPECT_TRUE(*n.cell == library::CellKind::kInv || *n.cell == library::CellKind::kBuf);
  }
}

TEST(Compact, GranularUsesOnlyGranularConfigs) {
  const auto d = designs::make_alu(8);
  const auto c = run(d.netlist, PlbArchitecture::granular());
  EXPECT_EQ(c.report.config_histogram[static_cast<int>(ConfigKind::kLut3)], 0);
  const int fast = c.report.config_histogram[static_cast<int>(ConfigKind::kMx)] +
                   c.report.config_histogram[static_cast<int>(ConfigKind::kNd3)] +
                   c.report.config_histogram[static_cast<int>(ConfigKind::kNdmx)] +
                   c.report.config_histogram[static_cast<int>(ConfigKind::kXoamx)] +
                   c.report.config_histogram[static_cast<int>(ConfigKind::kXoandmx)];
  EXPECT_GT(fast, 0);
}

TEST(Compact, LutArchUsesLutAndNdConfigs) {
  const auto d = designs::make_alu(8);
  const auto c = run(d.netlist, PlbArchitecture::lut_based());
  for (auto k : {ConfigKind::kMx, ConfigKind::kNdmx, ConfigKind::kXoamx, ConfigKind::kXoandmx})
    EXPECT_EQ(c.report.config_histogram[static_cast<int>(k)], 0) << to_string(k);
  EXPECT_GT(c.report.config_histogram[static_cast<int>(ConfigKind::kLut3)] +
                c.report.config_histogram[static_cast<int>(ConfigKind::kNd3)],
            0);
}

TEST(Compact, PaperClaimFunctionsMoveOffTheLut) {
  // "the majority of the functions that are mapped to a 3-LUT in the
  // LUT-based PLB are mapped to a NDMX or XOAMX configuration in the proposed
  // granular PLB."
  const auto d = designs::make_alu(16);
  const auto lut = run(d.netlist, PlbArchitecture::lut_based());
  const auto gran = run(d.netlist, PlbArchitecture::granular());
  const int luts = lut.report.config_histogram[static_cast<int>(ConfigKind::kLut3)];
  const int composite = gran.report.config_histogram[static_cast<int>(ConfigKind::kNdmx)] +
                        gran.report.config_histogram[static_cast<int>(ConfigKind::kXoamx)] +
                        gran.report.config_histogram[static_cast<int>(ConfigKind::kXoandmx)];
  EXPECT_GT(luts, 0);
  EXPECT_GT(composite, 0);
}

TEST(Compact, CompactedAreaBeatsLutArchOnDatapath) {
  // Datapath logic (xor-rich) should compact to less gate area on the
  // granular architecture than on the LUT architecture.
  const auto src = designs::make_ripple_adder(16);
  const auto lut = run(src, PlbArchitecture::lut_based());
  const auto gran = run(src, PlbArchitecture::granular());
  EXPECT_LT(gran.report.area_after_um2, lut.report.area_after_um2);
}

TEST(Compact, DepthReported) {
  const auto src = designs::make_ripple_adder(8);
  const auto c = run(src, PlbArchitecture::granular());
  EXPECT_GT(c.report.depth_after, 0);
  EXPECT_LE(c.report.depth_after, 64);
}

}  // namespace
}  // namespace vpga::compact
