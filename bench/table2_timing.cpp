// Table 2 reproduction: average slack over the 10 most critical paths for
// each design under {granular, LUT} x {flow a, flow b}, plus the Section 3.2
// timing claims (slack improvement, reduced a->b degradation).

#include "flow_bench.hpp"

#include "common/table.hpp"

int main() {
  using namespace vpga;
  const auto suite = benchharness::run_suite();

  std::printf("== Table 2: timing comparison — average slack of paths 1-10 (ns) ==\n\n");
  common::TextTable t({"design", "gates", "clock ns", "granular flow a", "granular flow b",
                       "LUT flow a", "LUT flow b"});
  for (std::size_t i = 0; i < suite.designs.size(); ++i) {
    const auto& c = suite.designs[i];
    auto ns = [](double ps) { return common::TextTable::num(ps / 1000.0, 2); };
    t.add_row({suite.names[i], common::TextTable::num(c.granular_a.gate_count_nand2, 0),
               ns(c.granular_a.clock_period_ps), ns(c.granular_a.avg_slack_top10_ps),
               ns(c.granular_b.avg_slack_top10_ps), ns(c.lut_a.avg_slack_top10_ps),
               ns(c.lut_b.avg_slack_top10_ps)});
  }
  t.print();

  std::printf("\n-- Section 3.2 claims --\n");
  // Slack improvement of the granular PLB in the full VPGA flow (flow b),
  // measured as reduction of the slack shortfall |T - arrival|.
  double improvement_sum = 0.0;
  double best = 0.0;
  std::string best_name;
  for (std::size_t i = 0; i < suite.designs.size(); ++i) {
    const auto& c = suite.designs[i];
    const double gran_short = c.granular_b.clock_period_ps - c.granular_b.avg_slack_top10_ps;
    const double lut_short = c.lut_b.clock_period_ps - c.lut_b.avg_slack_top10_ps;
    const double improvement = lut_short > 0 ? 1.0 - gran_short / lut_short : 0.0;
    improvement_sum += improvement;
    if (improvement > best) {
      best = improvement;
      best_name = suite.names[i];
    }
    std::printf("  %-16s critical-path improvement with granular PLB: %.1f%%\n",
                suite.names[i].c_str(), 100 * improvement);
  }
  std::printf(
      "average improvement %.1f%% (paper: ~18%% slack improvement), max %.1f%% on %s "
      "(paper: ~40%% on FPU)\n",
      100 * improvement_sum / static_cast<double>(suite.designs.size()), 100 * best,
      best_name.c_str());

  std::printf("\nflow a -> flow b performance degradation (avg top-10 slack, ps):\n");
  double drop_sum = 0.0;
  int drop_count = 0;
  for (std::size_t i = 0; i < suite.designs.size(); ++i) {
    const auto& c = suite.designs[i];
    const double dg = c.granular_a.avg_slack_top10_ps - c.granular_b.avg_slack_top10_ps;
    const double dl = c.lut_a.avg_slack_top10_ps - c.lut_b.avg_slack_top10_ps;
    if (dl <= 0.0) {
      // The LUT implementation happened not to degrade (timing-driven packing
      // recovered its poor flow-a placement): no ratio to report.
      std::printf("  %-16s granular %.0f  LUT %.0f  (LUT did not degrade; n/a)\n",
                  suite.names[i].c_str(), dg, dl);
      continue;
    }
    const double drop = 1.0 - dg / dl;
    drop_sum += drop;
    ++drop_count;
    std::printf("  %-16s granular %.0f  LUT %.0f  (%.1f%% less degradation)\n",
                suite.names[i].c_str(), dg, dl, 100 * drop);
  }
  std::printf("average: %.1f%% less a->b degradation with the granular PLB (paper: ~68%%)\n",
              100 * drop_sum / std::max(1, drop_count));
  return 0;
}
