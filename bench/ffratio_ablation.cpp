// Section 4 ablation: "the optimal ratio of combinational to sequential
// logic elements varies with the application-domain."
//
// Sweeps granular-PLB variants with 1..4 flip-flops per tile over a
// sequential-dominated design (Firewire) and a datapath design (ALU): the
// controller wants more FFs per tile, the datapath does not.

#include <cstdio>

#include "common/table.hpp"
#include "flow/flow.hpp"

int main() {
  using namespace vpga;

  std::printf("== FF-to-combinational ratio ablation (Section 4) ==\n\n");
  const auto fw = designs::make_firewire();
  const auto alu = designs::make_alu();

  common::TextTable t({"PLB variant", "tile um2", "firewire die um2", "firewire PLBs",
                       "alu die um2", "alu PLBs"});
  struct Best {
    double area = 1e18;
    std::string name;
  } best_fw, best_alu;
  for (int ffs = 1; ffs <= 4; ++ffs) {
    const auto arch = core::PlbArchitecture::granular_with_ffs(ffs);
    const auto rf = flow::run_flow(fw, arch, 'b');
    const auto ra = flow::run_flow(alu, arch, 'b');
    t.add_row({arch.name, common::TextTable::num(arch.tile_area_um2, 0),
               common::TextTable::num(rf.die_area_um2, 0), std::to_string(rf.plbs),
               common::TextTable::num(ra.die_area_um2, 0), std::to_string(ra.plbs)});
    if (rf.die_area_um2 < best_fw.area) best_fw = {rf.die_area_um2, arch.name};
    if (ra.die_area_um2 < best_alu.area) best_alu = {ra.die_area_um2, arch.name};
  }
  t.print();

  std::printf("\nbest for the controller (firewire): %s\n", best_fw.name.c_str());
  std::printf("best for the datapath (alu):        %s\n", best_alu.name.c_str());
  std::printf(
      "\n(The paper's conclusion: the optimal FF:comb ratio is application-domain\n"
      " dependent — a controller-tuned PLB carries more flip-flops per tile.)\n");
  return 0;
}
