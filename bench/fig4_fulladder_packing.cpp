// Figure 4 / Section 2.2 reproduction: full-adder packing.
//
// Shows that the granular PLB realizes SUM and COUT in one tile while the
// LUT-based PLB needs two, sweeps ripple-carry adders over bit widths, and
// lists the simultaneous packing combinations of Section 2.3.

#include <cstdio>

#include "common/table.hpp"
#include "core/fa_packing.hpp"

int main() {
  using namespace vpga;
  using core::ConfigKind;
  const auto gran = core::PlbArchitecture::granular();
  const auto lut = core::PlbArchitecture::lut_based();

  std::printf("== Figure 4 / Section 2.2: full-adder packing ==\n\n");
  for (const auto* arch : {&gran, &lut}) {
    const auto plan = core::plan_full_adder(*arch);
    std::printf("%-13s: %d PLB(s) per full adder;  carry step %.0f ps, sum %.0f ps\n",
                arch->name.c_str(), plan.plbs, plan.carry_delay_ps, plan.sum_delay_ps);
  }

  std::printf("\nripple-carry adders (PLBs and carry-chain critical path):\n\n");
  common::TextTable t({"bits", "granular PLBs", "granular ps", "LUT PLBs", "LUT ps",
                       "PLB ratio"});
  for (int bits : {4, 8, 16, 32, 64}) {
    const auto g = core::plan_ripple_adder(gran, bits);
    const auto l = core::plan_ripple_adder(lut, bits);
    t.add_row({std::to_string(bits), std::to_string(g.plbs),
               common::TextTable::num(g.critical_path_ps, 0), std::to_string(l.plbs),
               common::TextTable::num(l.critical_path_ps, 0),
               common::TextTable::num(static_cast<double>(l.plbs) / g.plbs, 2)});
  }
  t.print();

  std::printf("\nSection 2.3 simultaneous packing combinations (granular PLB):\n");
  const auto maximal = core::maximal_packings(
      gran, {ConfigKind::kMx, ConfigKind::kNd3, ConfigKind::kNdmx, ConfigKind::kXoamx,
             ConfigKind::kXoandmx});
  for (const auto& combo : maximal) {
    std::printf("  {");
    for (std::size_t i = 0; i < combo.size(); ++i)
      std::printf("%s%s", i ? ", " : " ", core::to_string(combo[i]));
    std::printf(" }\n");
  }
  return 0;
}
