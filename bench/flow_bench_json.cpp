// Machine-readable flow bench: runs the paper suite (Tables 1/2 structure —
// four designs x {granular, LUT} x {flow a, flow b}) with tracing, metrics
// and memory tracking enabled and emits BENCH_flow.json (schema
// vpga.flow_bench.v2) with per-stage wall-clock, every flow counter, and
// per-stage memory columns (alloc_bytes / alloc_count / peak_live_bytes),
// so tools/flowscope can chart stage cost and allocation behavior over time.
//
//   flow_bench_json [--out BENCH_flow.json]
//
// Doubles as the observability guard: exits nonzero if any expected stage
// span is missing from any run, or if the emitted JSON does not parse back
// (obs/json.hpp). VPGA_BENCH_SCALE shrinks the designs as usual.
//
// v2 vs v1: adds the per-run "memory" object and moves the dynamic
// "<span>.alloc_*" counter family there (counters stay exact-comparable
// across machines; allocation sizes are libc-dependent and get their own
// tolerance in flowscope). Consumers accept both versions.

#include "flow_bench.hpp"

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace {

using vpga::flow::FlowReport;

void append_escaped(std::string& out, std::string_view s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
      out += buf;
    } else {
      out += ch;
    }
  }
}

void append_num(std::string& out, double v) {
  out += vpga::obs::json::format_double(v);
}

/// The dynamic memtrack counter family ("<span>.alloc_bytes" etc.) is
/// reported under "memory", not "counters".
bool is_memory_counter(std::string_view name) {
  for (std::string_view suffix :
       {".alloc_bytes", ".alloc_count", ".peak_live_bytes"}) {
    if (name.size() > suffix.size() &&
        name.substr(name.size() - suffix.size()) == suffix)
      return true;
  }
  return false;
}

// Stage spans every flow must record exactly once (stage.pack repeats per
// pack<->STA iteration in flow b and never appears in flow a).
const std::vector<std::string>& required_stages() {
  static const std::vector<std::string> stages = {
      "stage.verify", "stage.map", "stage.compact", "stage.buffer",
      "stage.place",  "stage.route", "stage.sta"};
  return stages;
}

int check_spans(const FlowReport& r, const std::string& label) {
  int bad = 0;
  for (const auto& s : required_stages()) {
    if (r.obs.span_count(s) != 1) {
      std::fprintf(stderr, "[flow_bench_json] FAIL %s: span %s appears %d times (want 1)\n",
                   label.c_str(), s.c_str(), r.obs.span_count(s));
      ++bad;
    }
  }
  const int packs = r.obs.span_count("stage.pack");
  if (r.flow == 'b' ? packs < 1 : packs != 0) {
    std::fprintf(stderr, "[flow_bench_json] FAIL %s: stage.pack appears %d times in flow %c\n",
                 label.c_str(), packs, r.flow);
    ++bad;
  }
  return bad;
}

void append_run(std::string& out, const FlowReport& r, const std::string& design) {
  out += "    {\"design\":\"";
  append_escaped(out, design);
  out += "\",\"arch\":\"";
  append_escaped(out, r.arch);
  out += "\",\"flow\":\"";
  out += r.flow;
  out += "\",";

  // Per-stage wall clock: sum of same-named span durations (stage.pack may
  // close several times), plus the run total from the root spans.
  std::map<std::string, std::int64_t> stage_us;
  std::int64_t total_us = 0;
  for (const auto& s : r.obs.spans) {
    if (s.name.rfind("stage.", 0) == 0) stage_us[s.name] += s.dur_us;
    if (s.depth == 0) total_us += s.dur_us;
  }
  out += "\"total_us\":";
  append_num(out, static_cast<double>(total_us));
  out += ",\"stages\":{";
  bool first = true;
  for (const auto& [name, us] : stage_us) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":";
    append_num(out, static_cast<double>(us));
  }
  out += "},\"counters\":{";
  first = true;
  for (const auto& [name, value] : r.obs.counters) {
    if (is_memory_counter(name)) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":";
    append_num(out, static_cast<double>(value));
  }
  // Memory columns (schema v2): one object per span family that recorded
  // allocations, e.g. "memory":{"stage.map":{"alloc_bytes":...}}. The
  // "flow" entry carries the run-wide totals.
  out += "},\"memory\":{";
  std::map<std::string, std::map<std::string, long long>> memory;
  for (const auto& [name, value] : r.obs.counters) {
    if (!is_memory_counter(name)) continue;
    const std::size_t dot = name.rfind('.');
    memory[name.substr(0, dot)][name.substr(dot + 1)] = value;
  }
  first = true;
  for (const auto& [span, fields] : memory) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, span);
    out += "\":{";
    bool ffirst = true;
    for (const auto& [field, value] : fields) {
      if (!ffirst) out += ',';
      ffirst = false;
      out += '"';
      append_escaped(out, field);
      out += "\":";
      append_num(out, static_cast<double>(value));
    }
    out += '}';
  }
  out += "},\"report\":{";
  out += "\"gate_count_nand2\":";
  append_num(out, r.gate_count_nand2);
  out += ",\"die_area_um2\":";
  append_num(out, r.die_area_um2);
  out += ",\"wirelength_um\":";
  append_num(out, r.wirelength_um);
  out += ",\"critical_delay_ps\":";
  append_num(out, r.critical_delay_ps);
  out += ",\"plbs\":";
  append_num(out, r.plbs);
  out += "}}";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpga;
  std::string out_path = "BENCH_flow.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out BENCH_flow.json]\n", argv[0]);
      return 2;
    }
  }

  flow::FlowOptions opts;
  opts.trace = true;
  opts.metrics = true;
  opts.memtrack = true;
  // Exact equivalence at every stage boundary: the profile doubles as the
  // regression baseline for the sat.*/cec.* counters.
  opts.verify_level = verify::VerifyLevel::kExact;
  const auto suite = benchharness::run_suite(opts);

  int missing = 0;
  std::string json = "{\"schema\":\"vpga.flow_bench.v2\",\"scale\":";
  append_num(json, benchharness::bench_scale());
  json += ",\"runs\":[\n";
  bool first = true;
  for (std::size_t i = 0; i < suite.designs.size(); ++i) {
    const auto& c = suite.designs[i];
    for (const FlowReport* r : {&c.granular_a, &c.granular_b, &c.lut_a, &c.lut_b}) {
      missing += check_spans(*r, suite.names[i] + "/" + r->arch + "/" + r->flow);
      if (!first) json += ",\n";
      first = false;
      append_run(json, *r, suite.names[i]);
    }
  }
  json += "\n]}\n";

  // The file must be valid JSON before anything downstream trusts it.
  obs::json::Value parsed;
  std::string err;
  if (!obs::json::parse(json, parsed, &err)) {
    std::fprintf(stderr, "[flow_bench_json] FAIL: emitted JSON does not parse: %s\n",
                 err.c_str());
    return 1;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "[flow_bench_json] FAIL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json;
  out.close();
  std::fprintf(stderr, "[flow_bench_json] wrote %s (%zu runs)\n", out_path.c_str(),
               parsed.find("runs")->array.size());
  if (missing != 0) {
    std::fprintf(stderr, "[flow_bench_json] FAIL: %d missing/duplicated stage spans\n",
                 missing);
    return 1;
  }
  return 0;
}
