// Figure 3 reproduction: the modified S3 cell covers all 256 functions.
//
// Exhaustively enumerates the via configurations of the modified S3 cell
// (XOA + ND2WI + output MUX with flexible local interconnect) and shows how
// each formerly-infeasible category is recovered.

#include <cstdio>

#include "common/table.hpp"
#include "logic/s3.hpp"
#include "logic/truth_table.hpp"

int main() {
  using namespace vpga;
  const auto& m = logic::modified_s3_set3();
  const auto a = logic::analyze_s3();

  std::printf("== Figure 3: modified S3 cell coverage ==\n\n");
  std::printf("modified S3 cell implements %d / 256 three-input functions\n",
              logic::count(m));
  std::printf("(paper claim: all 256)\n\n");

  // Per-category recovery of the S3-infeasible functions.
  common::TextTable t({"S3 category", "functions", "covered by modified S3"});
  for (auto cat : {logic::S3Category::kCofactorXor, logic::S3Category::kCofactorXnor,
                   logic::S3Category::kTwoInputXor, logic::S3Category::kTwoInputXnor,
                   logic::S3Category::kComplementaryCofactors}) {
    int total = 0, covered = 0;
    for (int f = 0; f < 256; ++f) {
      if (a.category[static_cast<std::size_t>(f)] != cat) continue;
      ++total;
      covered += m.test(static_cast<std::size_t>(f)) ? 1 : 0;
    }
    t.add_row({logic::to_string(cat), std::to_string(total), std::to_string(covered)});
  }
  t.print();

  // Key witnesses from Section 2.2.
  std::printf("\nwitnesses:\n");
  std::printf("  3-input XOR  (sum of a full adder): %s\n",
              m.test(logic::tt3::xor3().bits()) ? "covered" : "MISSING");
  std::printf("  3-input MAJ  (carry of a full adder): %s\n",
              m.test(logic::tt3::maj3().bits()) ? "covered" : "MISSING");
  return logic::count(m) == 256 ? 0 : 1;
}
