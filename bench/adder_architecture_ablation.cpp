// Ablation: adder structure x PLB granularity.
//
// The granular PLB's headline feature is the one-tile full adder, which pays
// off exactly when synthesis emits explicit full-adder cells (ripple and
// carry-select structures). Prefix adders trade that regularity for depth.
// This bench quantifies the interaction on both architectures.

#include <cstdio>

#include "common/table.hpp"
#include "flow/flow.hpp"

int main() {
  using namespace vpga;
  std::printf("== Adder architecture x PLB granularity (32-bit adders) ==\n\n");

  struct Entry {
    const char* label;
    netlist::Netlist nl;
  };
  std::vector<Entry> adders;
  adders.push_back({"ripple", designs::make_ripple_adder(32)});
  adders.push_back({"carry-select/4", designs::make_carry_select_adder(32, 4)});
  adders.push_back({"carry-select/8", designs::make_carry_select_adder(32, 8)});
  adders.push_back({"kogge-stone", designs::make_prefix_adder(32)});

  common::TextTable t({"adder", "arch", "PLBs", "die um2", "critical ps", "FA macros"});
  for (auto& e : adders) {
    for (const auto& arch :
         {core::PlbArchitecture::granular(), core::PlbArchitecture::lut_based()}) {
      designs::BenchmarkDesign d{e.nl, 8000.0, true};
      const auto r = flow::run_flow(d, arch, 'b');
      t.add_row({e.label, arch.name, std::to_string(r.plbs),
                 common::TextTable::num(r.die_area_um2, 0),
                 common::TextTable::num(r.critical_delay_ps, 0),
                 std::to_string(r.compaction.config_histogram[static_cast<int>(
                     core::ConfigKind::kFullAdder)])});
    }
  }
  t.print();
  std::printf(
      "\nReading: the ripple structure fuses into one-tile FA macros on the\n"
      "granular PLB (its Section 2.2 feature, 2x denser than the LUT PLB).\n"
      "Carry-select shares the propagate term across its speculative blocks\n"
      "instead of forming FAs, and the prefix adder trades density for\n"
      "logarithmic depth — both narrow the area gap but keep the granular\n"
      "PLB's delay advantage.\n");
  return 0;
}
