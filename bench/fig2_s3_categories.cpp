// Figure 2 reproduction: categories of S3-infeasible functions.
//
// Prints the S3 gate's coverage of the 256 three-input functions (paper:
// "at least 196") and the five categories of infeasible functions, plus the
// extension analysis with free select-pin assignment.

#include <cstdio>

#include "common/table.hpp"
#include "logic/s3.hpp"

int main() {
  using namespace vpga;
  const auto a = logic::analyze_s3();

  std::printf("== Figure 2: S3 gate coverage of 3-input functions ==\n\n");
  std::printf("S3 gate (2:1 MUX driven by two ND2WI gates, designated select):\n");
  std::printf("  feasible functions: %d / 256   (paper: 196)\n\n",
              a.category_count[static_cast<int>(logic::S3Category::kFeasible)]);

  common::TextTable t({"category", "description", "count"});
  const std::pair<logic::S3Category, const char*> rows[] = {
      {logic::S3Category::kCofactorXor, "1"},
      {logic::S3Category::kCofactorXnor, "2"},
      {logic::S3Category::kTwoInputXor, "3"},
      {logic::S3Category::kTwoInputXnor, "4"},
      {logic::S3Category::kComplementaryCofactors, "5"},
  };
  int infeasible = 0;
  for (const auto& [cat, idx] : rows) {
    const int n = a.category_count[static_cast<int>(cat)];
    infeasible += n;
    t.add_row({idx, logic::to_string(cat), std::to_string(n)});
  }
  t.print();
  std::printf("\ntotal S3-infeasible: %d / 256\n", infeasible);

  const auto any = logic::s3_feasible_any_select();
  std::printf(
      "\nExtension: with free select-pin assignment at routing time the S3\n"
      "structure reaches %d / 256 (3-input XOR/XNOR remain out of reach).\n",
      logic::count(any));
  return 0;
}
