// Via-count statistics: the customization cost of the via-patterned fabric.
//
// A VPGA is programmed with a single via mask; the number of candidate via
// sites measures interconnect flexibility (the area cost the paper accepts
// for granularity), and placed vias per design measure mask complexity.

#include <cstdio>

#include "common/table.hpp"
#include "compact/compact.hpp"
#include "core/vias.hpp"
#include "designs/designs.hpp"
#include "flow_bench.hpp"
#include "pack/packer.hpp"
#include "place/placement.hpp"
#include "synth/buffering.hpp"
#include "synth/mapper.hpp"

int main() {
  using namespace vpga;
  const double scale = std::min(0.5, benchharness::bench_scale());

  std::printf("== Configuration-via statistics ==\n\n");
  std::printf("candidate via sites per tile: granular %d, LUT-based %d (+%.0f%%)\n\n",
              core::potential_via_sites(core::PlbArchitecture::granular()),
              core::potential_via_sites(core::PlbArchitecture::lut_based()),
              100.0 * core::potential_via_sites(core::PlbArchitecture::granular()) /
                      core::potential_via_sites(core::PlbArchitecture::lut_based()) -
                  100.0);

  common::TextTable t({"design", "arch", "tiles", "placed vias", "candidate sites",
                       "utilization"});
  for (const auto& d : designs::paper_suite(scale)) {
    for (const auto& arch :
         {core::PlbArchitecture::granular(), core::PlbArchitecture::lut_based()}) {
      const auto mapped =
          synth::tech_map(d.netlist, synth::cell_target(arch), synth::Objective::kDelay);
      auto comp = compact::compact_from(d.netlist, mapped.netlist, arch);
      synth::insert_buffers(comp.netlist, 8);
      const auto placed = place::place(comp.netlist);
      const auto packed = pack::pack(comp.netlist, placed, arch);
      const auto vias = core::count_vias(comp.netlist, arch, packed.grid_w * packed.grid_h);
      t.add_row({d.netlist.name(), arch.name, std::to_string(packed.plbs_used),
                 std::to_string(vias.placed), std::to_string(vias.potential),
                 common::TextTable::num(100 * vias.utilization(), 1) + "%"});
    }
  }
  t.print();
  std::printf(
      "\nReading: the granular PLB buys its flexibility with more candidate\n"
      "sites per tile, but programs a similar via count per design — the\n"
      "single-mask customization cost the VPGA economics argument rests on.\n");
  return 0;
}
