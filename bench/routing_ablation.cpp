// Section 4 future work: "exploring regular routing architectures for the
// VPGA fabric."
//
// Sweeps the per-edge track capacity of the ASIC-style routing that runs over
// the PLB array and reports overflow, peak congestion and wirelength for a
// packed design on both architectures — the data an architect needs to pick
// the metal resources of a *regular* (prefabricated) routing fabric.

#include <cstdio>

#include "common/table.hpp"
#include "compact/compact.hpp"
#include "designs/designs.hpp"
#include "pack/packer.hpp"
#include "place/placement.hpp"
#include "route/router.hpp"
#include "synth/buffering.hpp"
#include "synth/mapper.hpp"

int main() {
  using namespace vpga;
  const auto design = designs::make_alu(32);
  std::printf("== Regular-routing ablation (Section 4 future work) — %s ==\n\n",
              design.netlist.name().c_str());

  for (const auto& arch :
       {core::PlbArchitecture::granular(), core::PlbArchitecture::lut_based()}) {
    const auto mapped =
        synth::tech_map(design.netlist, synth::cell_target(arch), synth::Objective::kDelay);
    auto comp = compact::compact_from(design.netlist, mapped.netlist, arch);
    synth::insert_buffers(comp.netlist, 8);
    const auto placed = place::place(comp.netlist);
    const auto packed = pack::pack(comp.netlist, placed, arch);

    std::printf("%s: %dx%d tile array\n", arch.name.c_str(), packed.grid_w, packed.grid_h);
    common::TextTable t({"tracks/edge", "overflowed edges", "peak congestion",
                         "wirelength um"});
    for (int capacity : {2, 4, 8, 16, 32}) {
      route::RouterOptions opts;
      opts.capacity_per_edge = capacity;
      opts.ripup_iterations = 3;
      const auto r = route::route(comp.netlist, packed.legal, packed.tile_size_um, opts);
      t.add_row({std::to_string(capacity), std::to_string(r.overflow_edges),
                 common::TextTable::num(r.peak_congestion, 2),
                 common::TextTable::num(r.total_wirelength_um, 0)});
    }
    t.print();
    std::printf("\n");
  }
  std::printf(
      "Reading: the smallest track count with zero overflow is the routing\n"
      "fabric a regular (prefabricated) VPGA metal stack must provide (the\n"
      "router negotiates L-shape orientations, not detours, so these counts\n"
      "are conservative). The denser granular array also routes with fewer\n"
      "tracks: shorter nets over a smaller die.\n");
  return 0;
}
