// Engineering microbenchmarks (google-benchmark): throughput of the CAD
// kernels that dominate the flow's runtime. Not a paper figure — used to
// keep the paper-scale benches tractable.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "compact/compact.hpp"
#include "compact/flowmap.hpp"
#include "designs/designs.hpp"
#include "logic/npn.hpp"
#include "logic/s3.hpp"
#include "obs/events.hpp"
#include "obs/memtrack.hpp"
#include "obs/obs.hpp"
#include "pack/packer.hpp"
#include "place/placement.hpp"
#include "synth/cuts.hpp"
#include "synth/mapper.hpp"
#include "timing/sta.hpp"
#include "verify/cec.hpp"

namespace {

using namespace vpga;

void BM_S3Analysis(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(logic::analyze_s3());
}
BENCHMARK(BM_S3Analysis);

void BM_AigConstruction(benchmark::State& state) {
  const auto nl = designs::make_ripple_adder(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(aig::from_netlist(nl));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AigConstruction)->Arg(16)->Arg(64)->Complexity();

void BM_CutEnumeration(benchmark::State& state) {
  const auto d = designs::make_alu(static_cast<int>(state.range(0)));
  const auto m = aig::from_netlist(d.netlist);
  for (auto _ : state) benchmark::DoNotOptimize(synth::CutDatabase(m.aig));
}
BENCHMARK(BM_CutEnumeration)->Arg(8)->Arg(32);

void BM_TechMap(benchmark::State& state) {
  const auto d = designs::make_alu(static_cast<int>(state.range(0)));
  const auto target = synth::cell_target(core::PlbArchitecture::granular());
  for (auto _ : state)
    benchmark::DoNotOptimize(synth::tech_map(d.netlist, target, synth::Objective::kDelay));
}
BENCHMARK(BM_TechMap)->Arg(8)->Arg(32);

// The hottest flow stage (BENCH_flow.json: ~65% of wall-clock): the full
// pricing-round loop — three priced re-covers plus FA fusion and pool
// rebalancing — over a mapped ALU.
void BM_Compact(benchmark::State& state) {
  const auto d = designs::make_alu(static_cast<int>(state.range(0)));
  const auto arch = core::PlbArchitecture::granular();
  const auto mapped =
      synth::tech_map(d.netlist, synth::cell_target(arch), synth::Objective::kDelay);
  for (auto _ : state) benchmark::DoNotOptimize(compact::compact(mapped.netlist, arch));
}
BENCHMARK(BM_Compact)->Arg(8)->Arg(32);

// The canonicalization kernel behind the mapper's match index:
//   0: table lookup (npn_canonical4, the shipped path)
//   1: brute force (768 NPN images per query, the reference path)
// CI asserts the lookup beats brute force by a wide machine-independent
// ratio — a regression here means the lazy table got rebuilt per query.
// The exact-equivalence kernel: per-output miter proofs of a tech-mapped
// ripple adder against its golden generator netlist.
//   0: cheap-first tier ladder as shipped (every cone retires exhaustively)
//   1: SAT-only — the exhaustive tier is disabled, so every cone that
//      survives hashing and small truth tables goes to the CDCL miter
void BM_CecMiter(benchmark::State& state) {
  const auto nl = designs::make_ripple_adder(12);
  const auto target = synth::cell_target(core::PlbArchitecture::granular());
  const auto mapped = synth::tech_map(nl, target, synth::Objective::kDelay);
  verify::CecOptions opts;
  if (state.range(0) == 1) opts.max_exhaustive_inputs = 0;
  for (auto _ : state) {
    verify::VerifyReport report;
    verify::check_cec(nl, mapped.netlist, "bench", report, opts);
    benchmark::DoNotOptimize(report.error_count());
  }
}
BENCHMARK(BM_CecMiter)->Arg(0)->Arg(1);

// The BDD-tier claim: XOR-dominated cones are linear for ROBDDs and
// exponential for CDCL clause learning. A 24-bit parity cone, forward fold
// vs a fixed pseudo-random fold (the miter is a Tseitin formula over the
// union of two Hamiltonian paths — an expander, the resolution-hard family):
//   0: BDD tier forced (the shipped closing tier for such cones)
//   1: SAT-only, conflict budget capped at 4096 so the arm stays affordable —
//      the point comes back *undecided*, i.e. this measures a small fraction
//      of the real SAT cost, and CI still asserts the BDD arm wins 10x.
void BM_BddCec(benchmark::State& state) {
  netlist::Netlist fwd("parity_fwd");
  netlist::Netlist shuf("parity_shuf");
  constexpr int kWidth = 24;
  std::vector<netlist::NodeId> xf, xs;
  for (int i = 0; i < kWidth; ++i) {
    const std::string name = "x" + std::to_string(i);
    xf.push_back(fwd.add_input(name));
    xs.push_back(shuf.add_input(name));
  }
  std::vector<std::size_t> ord(kWidth);
  for (std::size_t i = 0; i < ord.size(); ++i) ord[i] = i;
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;  // deterministic Fisher-Yates
  for (std::size_t i = ord.size() - 1; i > 0; --i) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    std::swap(ord[i], ord[(seed >> 33) % (i + 1)]);
  }
  netlist::NodeId af = xf[0], as = xs[ord[0]];
  for (std::size_t i = 1; i < ord.size(); ++i) {
    af = fwd.add_xor(af, xf[i]);
    as = shuf.add_xor(as, xs[ord[i]]);
  }
  fwd.add_output(af, "p");
  shuf.add_output(as, "p");
  verify::CecOptions opts;
  opts.sat_sweep = false;
  if (state.range(0) == 0) {
    opts.force_bdd = true;
  } else {
    opts.bdd_tier = false;
    opts.sat_conflict_budget = 4096;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::check_combinational_equivalence(fwd, shuf, opts));
  }
}
BENCHMARK(BM_BddCec)->Arg(0)->Arg(1);

void BM_NpnCanon(benchmark::State& state) {
  const bool brute = state.range(0) == 1;
  // Touch the table once so the lookup path measures steady state, not the
  // one-time orbit-flood construction.
  benchmark::DoNotOptimize(logic::npn_canonical4(0x6996));
  std::uint16_t tt = 0x1234;
  for (auto _ : state) {
    tt = static_cast<std::uint16_t>(tt * 25173u + 13849u);  // LCG probe stream
    benchmark::DoNotOptimize(brute ? logic::npn_canonical4_brute(tt)
                                   : logic::npn_canonical4(tt));
  }
}
BENCHMARK(BM_NpnCanon)->Arg(0)->Arg(1);

void BM_FlowMapLabels(benchmark::State& state) {
  const auto nl = designs::make_ripple_adder(static_cast<int>(state.range(0)));
  const auto m = aig::from_netlist(nl);
  for (auto _ : state) benchmark::DoNotOptimize(compact::flowmap_labels(m.aig));
}
BENCHMARK(BM_FlowMapLabels)->Arg(16)->Arg(64);

struct Prepared {
  netlist::Netlist nl;
  place::Placement placed;
};

Prepared prepare(int width) {
  const auto d = designs::make_alu(width);
  const auto arch = core::PlbArchitecture::granular();
  auto mapped = synth::tech_map(d.netlist, synth::cell_target(arch), synth::Objective::kDelay);
  auto comp = compact::compact(mapped.netlist, arch);
  Prepared p{std::move(comp.netlist), {}};
  p.placed = place::place(p.nl);
  return p;
}

void BM_Place(benchmark::State& state) {
  const auto p = prepare(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(place::place(p.nl));
}
BENCHMARK(BM_Place)->Arg(8)->Arg(32);

void BM_Pack(benchmark::State& state) {
  const auto p = prepare(static_cast<int>(state.range(0)));
  const auto arch = core::PlbArchitecture::granular();
  for (auto _ : state) benchmark::DoNotOptimize(pack::pack(p.nl, p.placed, arch));
}
BENCHMARK(BM_Pack)->Arg(8)->Arg(32);

void BM_Sta(benchmark::State& state) {
  const auto p = prepare(static_cast<int>(state.range(0)));
  timing::StaOptions o;
  o.clock_period_ps = 4500;
  for (auto _ : state) benchmark::DoNotOptimize(timing::analyze(p.nl, p.placed, o));
}
BENCHMARK(BM_Sta)->Arg(8)->Arg(32);

// The observability claim: kernels pay nothing when tracing/metrics are off.
// BM_Sta runs the most instrumented kernel with no bound context; the pair
// below measures the raw disabled instrumentation points themselves.
void BM_ObsDisabledInstrumentation(benchmark::State& state) {
  for (auto _ : state) {
    const obs::Span s("bench.span");
    obs::count("bench.counter");
    obs::observe("bench.histogram", 1.0);
  }
}
BENCHMARK(BM_ObsDisabledInstrumentation);

// Metrics only: an enabled tracer keeps every span, which would grow without
// bound across benchmark iterations.
void BM_ObsEnabledMetrics(benchmark::State& state) {
  obs::ObsContext ctx(/*trace=*/false, /*metrics=*/true);
  const obs::ScopedObs bind(&ctx);
  for (auto _ : state) {
    obs::count("bench.counter");
    obs::observe("bench.histogram", 1.0);
  }
}
BENCHMARK(BM_ObsEnabledMetrics);

// Always-on observability overhead on a real kernel: BM_FlowMapLabels/16
// wrapped in one span per iteration, under three recorder states —
//   0: flight recorder off (VPGA_FLIGHT=0 equivalent)
//   1: flight recorder on (the shipped default)
//   2: flight on + memtrack bound (FlowOptions::memtrack)
// CI asserts state 1 stays within 2% of state 0 (the "always on at bounded
// cost" claim in events.hpp).
void BM_ObsOverhead(benchmark::State& state) {
  const auto nl = designs::make_ripple_adder(16);
  const auto m = aig::from_netlist(nl);
  const bool was_enabled = obs::flight::enabled();
  obs::flight::set_enabled(state.range(0) >= 1);
  obs::memtrack::MemTracker tracker;
  const obs::memtrack::ScopedMemTrack bind(state.range(0) >= 2 ? &tracker : nullptr);
  for (auto _ : state) {
    const obs::Span s("stage.map");
    benchmark::DoNotOptimize(compact::flowmap_labels(m.aig));
  }
  obs::flight::set_enabled(was_enabled);
}
BENCHMARK(BM_ObsOverhead)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
