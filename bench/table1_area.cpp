// Table 1 reproduction: die area for each design under
// {granular PLB, LUT-based PLB} x {flow a, flow b}, plus the prose claims of
// Section 3.2 (average datapath die-area reduction, FPU maximum, Firewire
// reversal, packing-overhead comparison).

#include "flow_bench.hpp"

#include "common/table.hpp"

int main() {
  using namespace vpga;
  const auto suite = benchharness::run_suite();

  std::printf("== Table 1: die-area comparison (um^2) ==\n\n");
  common::TextTable t({"design", "granular flow a", "granular flow b", "LUT flow a",
                       "LUT flow b", "b: gran/LUT"});
  double datapath_reduction_sum = 0.0;
  int datapath_count = 0;
  double best_reduction = 0.0;
  std::string best_design;
  for (std::size_t i = 0; i < suite.designs.size(); ++i) {
    const auto& c = suite.designs[i];
    const double ratio = c.granular_b.die_area_um2 / c.lut_b.die_area_um2;
    t.add_row({suite.names[i], common::TextTable::num(c.granular_a.die_area_um2, 0),
               common::TextTable::num(c.granular_b.die_area_um2, 0),
               common::TextTable::num(c.lut_a.die_area_um2, 0),
               common::TextTable::num(c.lut_b.die_area_um2, 0),
               common::TextTable::num(ratio, 3)});
    if (suite.datapath[i]) {
      datapath_reduction_sum += 1.0 - ratio;
      ++datapath_count;
      if (1.0 - ratio > best_reduction) {
        best_reduction = 1.0 - ratio;
        best_design = suite.names[i];
      }
    }
  }
  t.print();

  std::printf("\n-- Section 3.2 claims --\n");
  std::printf(
      "datapath die-area reduction with the granular PLB: avg %.1f%% over %d designs "
      "(paper: ~32%%), max %.1f%% on %s (paper: ~40%% on FPU)\n",
      100.0 * datapath_reduction_sum / std::max(1, datapath_count), datapath_count,
      100.0 * best_reduction, best_design.c_str());

  // Firewire reversal (sequential-dominated).
  for (std::size_t i = 0; i < suite.designs.size(); ++i) {
    if (suite.datapath[i]) continue;
    const auto& c = suite.designs[i];
    std::printf("%s (control/sequential): granular/LUT area = %.3f (paper: granular larger)\n",
                suite.names[i].c_str(), c.granular_b.die_area_um2 / c.lut_b.die_area_um2);
  }

  // Packing overhead flow a -> flow b.
  double overhead_drop_sum = 0.0;
  double best_drop = -1e9;
  std::string best_drop_design;
  std::printf("\nflow a -> flow b die-area overhead (the cost of the packing step):\n");
  for (std::size_t i = 0; i < suite.designs.size(); ++i) {
    const auto& c = suite.designs[i];
    const double og = c.granular_b.die_area_um2 / c.granular_a.die_area_um2 - 1.0;
    const double ol = c.lut_b.die_area_um2 / c.lut_a.die_area_um2 - 1.0;
    const double drop = ol > 0 ? 1.0 - og / ol : 0.0;
    overhead_drop_sum += drop;
    if (drop > best_drop) {
      best_drop = drop;
      best_drop_design = suite.names[i];
    }
    std::printf("  %-16s granular +%.1f%%  LUT +%.1f%%  (granular has %.1f%% less overhead)\n",
                suite.names[i].c_str(), 100 * og, 100 * ol, 100 * drop);
  }
  std::printf(
      "average: granular PLB has %.1f%% less packing overhead (paper: 48.4%%), "
      "max %.1f%% on %s (paper: 88.6%% on Network switch)\n",
      100.0 * overhead_drop_sum / static_cast<double>(suite.designs.size()), 100.0 * best_drop,
      best_drop_design.c_str());

  std::printf("\ncompaction gate-area reduction (Section 3.1 claim ~15%%):\n");
  for (std::size_t i = 0; i < suite.designs.size(); ++i) {
    const auto& c = suite.designs[i];
    std::printf("  %-16s granular %.1f%%  LUT %.1f%%\n", suite.names[i].c_str(),
                100 * c.granular_b.compaction.area_reduction(),
                100 * c.lut_b.compaction.area_reduction());
  }
  return 0;
}
