// Section 3.1 ablation: the regularity-driven logic compaction step.
//
// For each design and architecture: gate area entering compaction (the
// Design-Compiler-style delay mapping), gate area after configuration
// covering, and the supernode histogram. Paper claim: ~15% average gate-area
// reduction. Also reports the FlowMap (max-flow/min-cut) depth bound that
// seeds the supernode search, on the smaller designs.

#include <cstdio>

#include "common/table.hpp"
#include "compact/compact.hpp"
#include "compact/flowmap.hpp"
#include "designs/designs.hpp"
#include "flow_bench.hpp"
#include "synth/mapper.hpp"

int main() {
  using namespace vpga;
  const double scale = std::min(0.5, benchharness::bench_scale());  // compaction-only: mid scale

  std::printf("== Compaction ablation (Section 3.1) ==\n\n");
  common::TextTable t({"design", "arch", "area before", "area after", "reduction",
                       "supernodes", "FA macros"});
  double reduction_sum = 0.0;
  int runs = 0;
  for (const auto& d : designs::paper_suite(scale)) {
    for (const auto& arch :
         {core::PlbArchitecture::granular(), core::PlbArchitecture::lut_based()}) {
      const auto mapped =
          synth::tech_map(d.netlist, synth::cell_target(arch), synth::Objective::kDelay);
      const auto c = compact::compact_from(d.netlist, mapped.netlist, arch);
      int fas = c.report.config_histogram[static_cast<int>(core::ConfigKind::kFullAdder)];
      t.add_row({d.netlist.name(), arch.name,
                 common::TextTable::num(c.report.area_before_um2, 0),
                 common::TextTable::num(c.report.area_after_um2, 0),
                 common::TextTable::num(100 * c.report.area_reduction(), 1) + "%",
                 std::to_string(c.report.nodes_after), std::to_string(fas)});
      reduction_sum += c.report.area_reduction();
      ++runs;
    }
  }
  t.print();
  std::printf("\naverage gate-area reduction: %.1f%% (paper: ~15%%)\n",
              100 * reduction_sum / std::max(1, runs));

  std::printf("\nFlowMap 3-feasible depth bounds (max-flow/min-cut labeling):\n\n");
  common::TextTable f({"circuit", "AIG depth", "FlowMap depth", "mapped depth (granular)"});
  for (int bits : {8, 16, 32}) {
    const auto nl = designs::make_ripple_adder(bits);
    const auto m = aig::from_netlist(nl);
    const auto mapped = synth::tech_map(nl, synth::cell_target(core::PlbArchitecture::granular()),
                                        synth::Objective::kDelay);
    f.add_row({nl.name(), std::to_string(m.aig.depth()),
               std::to_string(compact::flowmap_depth(m.aig)),
               std::to_string(mapped.stats.depth)});
  }
  f.print();
  return 0;
}
