#pragma once
// Shared harness for the Table 1 / Table 2 benches: runs the paper's four
// designs through both flows on both architectures.
//
// VPGA_BENCH_SCALE (0 < s <= 1, default 1.0) shrinks the datapath widths for
// quick runs; the paper-scale default takes a few minutes.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "flow/flow.hpp"

namespace vpga::benchharness {

inline double bench_scale() {
  if (const char* s = std::getenv("VPGA_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0 && v <= 1.0) return v;
  }
  return 1.0;
}

struct SuiteResults {
  std::vector<flow::DesignComparison> designs;  // paper order
  std::vector<std::string> names;
  std::vector<bool> datapath;
};

inline SuiteResults run_suite(const flow::FlowOptions& opts = {}) {
  SuiteResults out;
  const double scale = bench_scale();
  std::fprintf(stderr, "[flow_bench] running paper suite at scale %.2f...\n", scale);
  for (const auto& d : designs::paper_suite(scale)) {
    std::fprintf(stderr, "[flow_bench]   %s (%0.0f NAND2-eq)\n", d.netlist.name().c_str(),
                 d.netlist.stats().nand2_equiv);
    out.designs.push_back(flow::compare_architectures(d, opts));
    out.names.push_back(d.netlist.name());
    out.datapath.push_back(d.datapath_dominated);
  }
  return out;
}

}  // namespace vpga::benchharness
