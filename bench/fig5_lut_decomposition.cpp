// Figure 5 / Section 2.3 reproduction: the 3-LUT as three 2:1 MUXes, and the
// delay/density advantage of the granular configurations over the LUT.

#include <cstdio>

#include "common/table.hpp"
#include "core/config.hpp"
#include "core/match.hpp"
#include "logic/lut_decompose.hpp"
#include "logic/s3.hpp"

int main() {
  using namespace vpga;
  using core::ConfigKind;

  std::printf("== Figure 5: 3-LUT = three re-arranged 2:1 MUXes ==\n\n");
  int ok = 0;
  for (int f = 0; f < 256; ++f) {
    const logic::TruthTable tt(3, static_cast<std::uint64_t>(f));
    if (logic::mux_tree_function(logic::decompose_lut3(tt)) == tt) ++ok;
  }
  std::printf("mux-tree decomposition reproduces %d / 256 LUT configurations\n\n", ok);

  std::printf("configuration characteristics (load = 3 fF):\n\n");
  common::TextTable t({"config", "coverage", "delay ps", "area um2", "vs LUT3 delay"});
  const double lut_delay = core::config_spec(ConfigKind::kLut3).arc.delay(3.0);
  for (auto k : {ConfigKind::kMx, ConfigKind::kNd3, ConfigKind::kNdmx, ConfigKind::kXoamx,
                 ConfigKind::kXoandmx, ConfigKind::kLut3}) {
    const auto& s = core::config_spec(k);
    t.add_row({s.name, std::to_string(s.coverage.count()) + "/256",
               common::TextTable::num(s.arc.delay(3.0), 0),
               common::TextTable::num(s.mapped_area_um2, 1),
               common::TextTable::num(s.arc.delay(3.0) / lut_delay, 2) + "x"});
  }
  t.print();

  // How many of the 256 functions leave the LUT on the granular PLB, and for
  // which configuration (the paper: "the majority of the functions ... are
  // mapped to a NDMX or XOAMX configuration").
  std::printf("\nwhere the granular PLB maps each 3-input function (min-area):\n\n");
  const auto gran = core::PlbArchitecture::granular();
  std::array<int, core::kNumConfigKinds> hist{};
  for (int f = 0; f < 256; ++f) {
    const auto cfg = core::min_area_config(gran, static_cast<std::uint8_t>(f));
    if (cfg) ++hist[static_cast<std::size_t>(*cfg)];
  }
  common::TextTable h({"config", "functions"});
  for (int i = 0; i < core::kNumConfigKinds; ++i)
    if (hist[static_cast<std::size_t>(i)] > 0)
      h.add_row({core::to_string(static_cast<ConfigKind>(i)),
                 std::to_string(hist[static_cast<std::size_t>(i)])});
  h.print();
  return ok == 256 ? 0 : 1;
}
