// Ablation: dynamic power per architecture.
//
// The paper sizes its component cells "to give a good power-delay tradeoff"
// and cites the VPGA LUT's power disadvantage for simple functions. This
// bench closes the loop: switching activity from random simulation, net
// capacitances from placement, dynamic + clock power per design per PLB.

#include <cstdio>

#include "common/table.hpp"
#include "compact/compact.hpp"
#include "designs/designs.hpp"
#include "flow_bench.hpp"
#include "place/placement.hpp"
#include "synth/buffering.hpp"
#include "synth/mapper.hpp"
#include "timing/power.hpp"

int main() {
  using namespace vpga;
  const double scale = std::min(0.5, benchharness::bench_scale());

  std::printf("== Dynamic power ablation (granular vs LUT-based PLB) ==\n\n");
  common::TextTable t({"design", "arch", "dynamic mW", "clock mW", "total mW",
                       "avg toggle rate"});
  double gran_total = 0.0, lut_total = 0.0;
  for (const auto& d : designs::paper_suite(scale)) {
    for (const auto& arch :
         {core::PlbArchitecture::granular(), core::PlbArchitecture::lut_based()}) {
      const auto mapped =
          synth::tech_map(d.netlist, synth::cell_target(arch), synth::Objective::kDelay);
      auto comp = compact::compact_from(d.netlist, mapped.netlist, arch);
      synth::insert_buffers(comp.netlist, 8);
      const auto placed = place::place(comp.netlist);
      timing::PowerOptions o;
      o.clock_period_ps = d.clock_period_ps;
      o.cycles = 128;
      const auto r = timing::estimate_power(comp.netlist, placed, o);
      t.add_row({d.netlist.name(), arch.name, common::TextTable::num(r.dynamic_mw, 3),
                 common::TextTable::num(r.clock_mw, 3), common::TextTable::num(r.total_mw, 3),
                 common::TextTable::num(r.avg_toggle_rate, 3)});
      (arch.name == "granular_plb" ? gran_total : lut_total) += r.total_mw;
    }
  }
  t.print();
  std::printf("\ntotal over the suite: granular %.2f mW vs LUT-based %.2f mW (%.1f%%)\n",
              gran_total, lut_total, 100.0 * (gran_total / lut_total - 1.0));
  return 0;
}
