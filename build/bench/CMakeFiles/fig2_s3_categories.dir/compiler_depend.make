# Empty compiler generated dependencies file for fig2_s3_categories.
# This may be replaced when dependencies are built.
