file(REMOVE_RECURSE
  "CMakeFiles/fig2_s3_categories.dir/fig2_s3_categories.cpp.o"
  "CMakeFiles/fig2_s3_categories.dir/fig2_s3_categories.cpp.o.d"
  "fig2_s3_categories"
  "fig2_s3_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_s3_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
