# Empty dependencies file for power_ablation.
# This may be replaced when dependencies are built.
