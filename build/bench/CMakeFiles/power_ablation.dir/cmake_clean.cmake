file(REMOVE_RECURSE
  "CMakeFiles/power_ablation.dir/power_ablation.cpp.o"
  "CMakeFiles/power_ablation.dir/power_ablation.cpp.o.d"
  "power_ablation"
  "power_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
