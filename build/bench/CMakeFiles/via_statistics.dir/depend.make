# Empty dependencies file for via_statistics.
# This may be replaced when dependencies are built.
