file(REMOVE_RECURSE
  "CMakeFiles/via_statistics.dir/via_statistics.cpp.o"
  "CMakeFiles/via_statistics.dir/via_statistics.cpp.o.d"
  "via_statistics"
  "via_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/via_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
