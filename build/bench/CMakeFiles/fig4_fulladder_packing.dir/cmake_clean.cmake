file(REMOVE_RECURSE
  "CMakeFiles/fig4_fulladder_packing.dir/fig4_fulladder_packing.cpp.o"
  "CMakeFiles/fig4_fulladder_packing.dir/fig4_fulladder_packing.cpp.o.d"
  "fig4_fulladder_packing"
  "fig4_fulladder_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fulladder_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
