# Empty dependencies file for fig4_fulladder_packing.
# This may be replaced when dependencies are built.
