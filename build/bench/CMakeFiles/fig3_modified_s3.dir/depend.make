# Empty dependencies file for fig3_modified_s3.
# This may be replaced when dependencies are built.
