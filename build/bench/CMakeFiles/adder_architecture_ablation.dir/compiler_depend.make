# Empty compiler generated dependencies file for adder_architecture_ablation.
# This may be replaced when dependencies are built.
