file(REMOVE_RECURSE
  "CMakeFiles/adder_architecture_ablation.dir/adder_architecture_ablation.cpp.o"
  "CMakeFiles/adder_architecture_ablation.dir/adder_architecture_ablation.cpp.o.d"
  "adder_architecture_ablation"
  "adder_architecture_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_architecture_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
