file(REMOVE_RECURSE
  "CMakeFiles/routing_ablation.dir/routing_ablation.cpp.o"
  "CMakeFiles/routing_ablation.dir/routing_ablation.cpp.o.d"
  "routing_ablation"
  "routing_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
