# Empty dependencies file for routing_ablation.
# This may be replaced when dependencies are built.
