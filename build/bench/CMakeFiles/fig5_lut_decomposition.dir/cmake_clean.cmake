file(REMOVE_RECURSE
  "CMakeFiles/fig5_lut_decomposition.dir/fig5_lut_decomposition.cpp.o"
  "CMakeFiles/fig5_lut_decomposition.dir/fig5_lut_decomposition.cpp.o.d"
  "fig5_lut_decomposition"
  "fig5_lut_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_lut_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
