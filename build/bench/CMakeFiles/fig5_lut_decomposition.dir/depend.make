# Empty dependencies file for fig5_lut_decomposition.
# This may be replaced when dependencies are built.
