# Empty compiler generated dependencies file for compaction_ablation.
# This may be replaced when dependencies are built.
