file(REMOVE_RECURSE
  "CMakeFiles/compaction_ablation.dir/compaction_ablation.cpp.o"
  "CMakeFiles/compaction_ablation.dir/compaction_ablation.cpp.o.d"
  "compaction_ablation"
  "compaction_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compaction_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
