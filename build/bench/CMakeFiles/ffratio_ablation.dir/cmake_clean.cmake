file(REMOVE_RECURSE
  "CMakeFiles/ffratio_ablation.dir/ffratio_ablation.cpp.o"
  "CMakeFiles/ffratio_ablation.dir/ffratio_ablation.cpp.o.d"
  "ffratio_ablation"
  "ffratio_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffratio_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
