# Empty compiler generated dependencies file for ffratio_ablation.
# This may be replaced when dependencies are built.
