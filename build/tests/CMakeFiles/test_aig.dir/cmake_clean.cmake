file(REMOVE_RECURSE
  "CMakeFiles/test_aig.dir/test_aig.cpp.o"
  "CMakeFiles/test_aig.dir/test_aig.cpp.o.d"
  "test_aig"
  "test_aig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
