# Empty dependencies file for test_power_svg.
# This may be replaced when dependencies are built.
