file(REMOVE_RECURSE
  "CMakeFiles/test_power_svg.dir/test_power_svg.cpp.o"
  "CMakeFiles/test_power_svg.dir/test_power_svg.cpp.o.d"
  "test_power_svg"
  "test_power_svg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_svg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
