file(REMOVE_RECURSE
  "CMakeFiles/test_fa_fusion.dir/test_fa_fusion.cpp.o"
  "CMakeFiles/test_fa_fusion.dir/test_fa_fusion.cpp.o.d"
  "test_fa_fusion"
  "test_fa_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fa_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
