# Empty dependencies file for test_fa_fusion.
# This may be replaced when dependencies are built.
