# Empty dependencies file for test_route_timing.
# This may be replaced when dependencies are built.
