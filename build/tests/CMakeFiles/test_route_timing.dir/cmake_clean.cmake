file(REMOVE_RECURSE
  "CMakeFiles/test_route_timing.dir/test_route_timing.cpp.o"
  "CMakeFiles/test_route_timing.dir/test_route_timing.cpp.o.d"
  "test_route_timing"
  "test_route_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_route_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
