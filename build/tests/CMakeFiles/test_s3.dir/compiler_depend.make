# Empty compiler generated dependencies file for test_s3.
# This may be replaced when dependencies are built.
