file(REMOVE_RECURSE
  "CMakeFiles/test_s3.dir/test_s3.cpp.o"
  "CMakeFiles/test_s3.dir/test_s3.cpp.o.d"
  "test_s3"
  "test_s3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_s3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
