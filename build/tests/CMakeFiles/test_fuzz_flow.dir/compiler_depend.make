# Empty compiler generated dependencies file for test_fuzz_flow.
# This may be replaced when dependencies are built.
