file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_flow.dir/test_fuzz_flow.cpp.o"
  "CMakeFiles/test_fuzz_flow.dir/test_fuzz_flow.cpp.o.d"
  "test_fuzz_flow"
  "test_fuzz_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
