file(REMOVE_RECURSE
  "CMakeFiles/test_resource_model_property.dir/test_resource_model_property.cpp.o"
  "CMakeFiles/test_resource_model_property.dir/test_resource_model_property.cpp.o.d"
  "test_resource_model_property"
  "test_resource_model_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resource_model_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
