# Empty compiler generated dependencies file for test_resource_model_property.
# This may be replaced when dependencies are built.
