# Empty dependencies file for test_bitsim.
# This may be replaced when dependencies are built.
