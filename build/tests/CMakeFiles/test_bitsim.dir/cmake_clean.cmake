file(REMOVE_RECURSE
  "CMakeFiles/test_bitsim.dir/test_bitsim.cpp.o"
  "CMakeFiles/test_bitsim.dir/test_bitsim.cpp.o.d"
  "test_bitsim"
  "test_bitsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
