# Empty compiler generated dependencies file for test_vias.
# This may be replaced when dependencies are built.
