file(REMOVE_RECURSE
  "CMakeFiles/test_vias.dir/test_vias.cpp.o"
  "CMakeFiles/test_vias.dir/test_vias.cpp.o.d"
  "test_vias"
  "test_vias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
