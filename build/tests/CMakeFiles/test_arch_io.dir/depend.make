# Empty dependencies file for test_arch_io.
# This may be replaced when dependencies are built.
