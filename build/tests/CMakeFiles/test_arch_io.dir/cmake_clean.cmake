file(REMOVE_RECURSE
  "CMakeFiles/test_arch_io.dir/test_arch_io.cpp.o"
  "CMakeFiles/test_arch_io.dir/test_arch_io.cpp.o.d"
  "test_arch_io"
  "test_arch_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
