# Empty compiler generated dependencies file for test_core_plb.
# This may be replaced when dependencies are built.
