file(REMOVE_RECURSE
  "CMakeFiles/test_core_plb.dir/test_core_plb.cpp.o"
  "CMakeFiles/test_core_plb.dir/test_core_plb.cpp.o.d"
  "test_core_plb"
  "test_core_plb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_plb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
