file(REMOVE_RECURSE
  "CMakeFiles/test_lut_decompose.dir/test_lut_decompose.cpp.o"
  "CMakeFiles/test_lut_decompose.dir/test_lut_decompose.cpp.o.d"
  "test_lut_decompose"
  "test_lut_decompose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lut_decompose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
