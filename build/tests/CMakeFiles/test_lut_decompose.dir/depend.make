# Empty dependencies file for test_lut_decompose.
# This may be replaced when dependencies are built.
