file(REMOVE_RECURSE
  "CMakeFiles/test_integration_golden.dir/test_integration_golden.cpp.o"
  "CMakeFiles/test_integration_golden.dir/test_integration_golden.cpp.o.d"
  "test_integration_golden"
  "test_integration_golden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
