# Empty compiler generated dependencies file for test_integration_golden.
# This may be replaced when dependencies are built.
