file(REMOVE_RECURSE
  "CMakeFiles/test_function_sets.dir/test_function_sets.cpp.o"
  "CMakeFiles/test_function_sets.dir/test_function_sets.cpp.o.d"
  "test_function_sets"
  "test_function_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_function_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
