# Empty dependencies file for test_function_sets.
# This may be replaced when dependencies are built.
