# Empty dependencies file for vpga_flow_cli.
# This may be replaced when dependencies are built.
