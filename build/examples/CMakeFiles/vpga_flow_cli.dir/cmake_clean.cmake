file(REMOVE_RECURSE
  "CMakeFiles/vpga_flow_cli.dir/vpga_flow_cli.cpp.o"
  "CMakeFiles/vpga_flow_cli.dir/vpga_flow_cli.cpp.o.d"
  "vpga_flow_cli"
  "vpga_flow_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpga_flow_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
