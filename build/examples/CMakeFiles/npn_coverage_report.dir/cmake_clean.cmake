file(REMOVE_RECURSE
  "CMakeFiles/npn_coverage_report.dir/npn_coverage_report.cpp.o"
  "CMakeFiles/npn_coverage_report.dir/npn_coverage_report.cpp.o.d"
  "npn_coverage_report"
  "npn_coverage_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npn_coverage_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
