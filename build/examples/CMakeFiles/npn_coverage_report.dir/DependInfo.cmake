
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/npn_coverage_report.cpp" "examples/CMakeFiles/npn_coverage_report.dir/npn_coverage_report.cpp.o" "gcc" "examples/CMakeFiles/npn_coverage_report.dir/npn_coverage_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vpga_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_route.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_pack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_place.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_designs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_library.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
