# Empty compiler generated dependencies file for npn_coverage_report.
# This may be replaced when dependencies are built.
