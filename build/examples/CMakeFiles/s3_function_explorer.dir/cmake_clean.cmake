file(REMOVE_RECURSE
  "CMakeFiles/s3_function_explorer.dir/s3_function_explorer.cpp.o"
  "CMakeFiles/s3_function_explorer.dir/s3_function_explorer.cpp.o.d"
  "s3_function_explorer"
  "s3_function_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3_function_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
