# Empty compiler generated dependencies file for s3_function_explorer.
# This may be replaced when dependencies are built.
