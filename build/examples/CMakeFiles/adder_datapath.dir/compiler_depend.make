# Empty compiler generated dependencies file for adder_datapath.
# This may be replaced when dependencies are built.
