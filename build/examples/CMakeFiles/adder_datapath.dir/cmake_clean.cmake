file(REMOVE_RECURSE
  "CMakeFiles/adder_datapath.dir/adder_datapath.cpp.o"
  "CMakeFiles/adder_datapath.dir/adder_datapath.cpp.o.d"
  "adder_datapath"
  "adder_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
