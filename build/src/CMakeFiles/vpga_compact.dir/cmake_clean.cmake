file(REMOVE_RECURSE
  "CMakeFiles/vpga_compact.dir/compact/compact.cpp.o"
  "CMakeFiles/vpga_compact.dir/compact/compact.cpp.o.d"
  "CMakeFiles/vpga_compact.dir/compact/fa_fusion.cpp.o"
  "CMakeFiles/vpga_compact.dir/compact/fa_fusion.cpp.o.d"
  "CMakeFiles/vpga_compact.dir/compact/flowmap.cpp.o"
  "CMakeFiles/vpga_compact.dir/compact/flowmap.cpp.o.d"
  "libvpga_compact.a"
  "libvpga_compact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpga_compact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
