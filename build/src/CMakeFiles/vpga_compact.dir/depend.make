# Empty dependencies file for vpga_compact.
# This may be replaced when dependencies are built.
