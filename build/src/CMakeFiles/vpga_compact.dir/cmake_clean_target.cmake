file(REMOVE_RECURSE
  "libvpga_compact.a"
)
