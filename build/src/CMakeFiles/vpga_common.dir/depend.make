# Empty dependencies file for vpga_common.
# This may be replaced when dependencies are built.
