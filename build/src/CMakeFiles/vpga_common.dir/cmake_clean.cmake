file(REMOVE_RECURSE
  "CMakeFiles/vpga_common.dir/common/common.cpp.o"
  "CMakeFiles/vpga_common.dir/common/common.cpp.o.d"
  "libvpga_common.a"
  "libvpga_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpga_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
