file(REMOVE_RECURSE
  "libvpga_common.a"
)
