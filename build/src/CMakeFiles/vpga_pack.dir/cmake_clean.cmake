file(REMOVE_RECURSE
  "CMakeFiles/vpga_pack.dir/pack/layout_svg.cpp.o"
  "CMakeFiles/vpga_pack.dir/pack/layout_svg.cpp.o.d"
  "CMakeFiles/vpga_pack.dir/pack/packer.cpp.o"
  "CMakeFiles/vpga_pack.dir/pack/packer.cpp.o.d"
  "libvpga_pack.a"
  "libvpga_pack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpga_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
