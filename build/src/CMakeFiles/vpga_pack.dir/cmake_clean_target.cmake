file(REMOVE_RECURSE
  "libvpga_pack.a"
)
