# Empty compiler generated dependencies file for vpga_pack.
# This may be replaced when dependencies are built.
