
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/buffering.cpp" "src/CMakeFiles/vpga_synth.dir/synth/buffering.cpp.o" "gcc" "src/CMakeFiles/vpga_synth.dir/synth/buffering.cpp.o.d"
  "/root/repo/src/synth/cuts.cpp" "src/CMakeFiles/vpga_synth.dir/synth/cuts.cpp.o" "gcc" "src/CMakeFiles/vpga_synth.dir/synth/cuts.cpp.o.d"
  "/root/repo/src/synth/mapper.cpp" "src/CMakeFiles/vpga_synth.dir/synth/mapper.cpp.o" "gcc" "src/CMakeFiles/vpga_synth.dir/synth/mapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vpga_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_library.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
