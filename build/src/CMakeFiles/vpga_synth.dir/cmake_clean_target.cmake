file(REMOVE_RECURSE
  "libvpga_synth.a"
)
