# Empty dependencies file for vpga_synth.
# This may be replaced when dependencies are built.
