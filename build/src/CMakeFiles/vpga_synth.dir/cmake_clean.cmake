file(REMOVE_RECURSE
  "CMakeFiles/vpga_synth.dir/synth/buffering.cpp.o"
  "CMakeFiles/vpga_synth.dir/synth/buffering.cpp.o.d"
  "CMakeFiles/vpga_synth.dir/synth/cuts.cpp.o"
  "CMakeFiles/vpga_synth.dir/synth/cuts.cpp.o.d"
  "CMakeFiles/vpga_synth.dir/synth/mapper.cpp.o"
  "CMakeFiles/vpga_synth.dir/synth/mapper.cpp.o.d"
  "libvpga_synth.a"
  "libvpga_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpga_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
