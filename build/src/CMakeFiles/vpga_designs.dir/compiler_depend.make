# Empty compiler generated dependencies file for vpga_designs.
# This may be replaced when dependencies are built.
