file(REMOVE_RECURSE
  "libvpga_designs.a"
)
