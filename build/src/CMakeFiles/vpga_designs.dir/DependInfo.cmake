
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/designs/alu.cpp" "src/CMakeFiles/vpga_designs.dir/designs/alu.cpp.o" "gcc" "src/CMakeFiles/vpga_designs.dir/designs/alu.cpp.o.d"
  "/root/repo/src/designs/datapath.cpp" "src/CMakeFiles/vpga_designs.dir/designs/datapath.cpp.o" "gcc" "src/CMakeFiles/vpga_designs.dir/designs/datapath.cpp.o.d"
  "/root/repo/src/designs/firewire.cpp" "src/CMakeFiles/vpga_designs.dir/designs/firewire.cpp.o" "gcc" "src/CMakeFiles/vpga_designs.dir/designs/firewire.cpp.o.d"
  "/root/repo/src/designs/fpu.cpp" "src/CMakeFiles/vpga_designs.dir/designs/fpu.cpp.o" "gcc" "src/CMakeFiles/vpga_designs.dir/designs/fpu.cpp.o.d"
  "/root/repo/src/designs/network_switch.cpp" "src/CMakeFiles/vpga_designs.dir/designs/network_switch.cpp.o" "gcc" "src/CMakeFiles/vpga_designs.dir/designs/network_switch.cpp.o.d"
  "/root/repo/src/designs/small.cpp" "src/CMakeFiles/vpga_designs.dir/designs/small.cpp.o" "gcc" "src/CMakeFiles/vpga_designs.dir/designs/small.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vpga_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_library.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
