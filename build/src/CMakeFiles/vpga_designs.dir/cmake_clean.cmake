file(REMOVE_RECURSE
  "CMakeFiles/vpga_designs.dir/designs/alu.cpp.o"
  "CMakeFiles/vpga_designs.dir/designs/alu.cpp.o.d"
  "CMakeFiles/vpga_designs.dir/designs/datapath.cpp.o"
  "CMakeFiles/vpga_designs.dir/designs/datapath.cpp.o.d"
  "CMakeFiles/vpga_designs.dir/designs/firewire.cpp.o"
  "CMakeFiles/vpga_designs.dir/designs/firewire.cpp.o.d"
  "CMakeFiles/vpga_designs.dir/designs/fpu.cpp.o"
  "CMakeFiles/vpga_designs.dir/designs/fpu.cpp.o.d"
  "CMakeFiles/vpga_designs.dir/designs/network_switch.cpp.o"
  "CMakeFiles/vpga_designs.dir/designs/network_switch.cpp.o.d"
  "CMakeFiles/vpga_designs.dir/designs/small.cpp.o"
  "CMakeFiles/vpga_designs.dir/designs/small.cpp.o.d"
  "libvpga_designs.a"
  "libvpga_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpga_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
