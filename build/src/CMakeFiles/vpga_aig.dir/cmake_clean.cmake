file(REMOVE_RECURSE
  "CMakeFiles/vpga_aig.dir/aig/aig.cpp.o"
  "CMakeFiles/vpga_aig.dir/aig/aig.cpp.o.d"
  "CMakeFiles/vpga_aig.dir/aig/balance.cpp.o"
  "CMakeFiles/vpga_aig.dir/aig/balance.cpp.o.d"
  "libvpga_aig.a"
  "libvpga_aig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpga_aig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
