# Empty dependencies file for vpga_aig.
# This may be replaced when dependencies are built.
