file(REMOVE_RECURSE
  "libvpga_aig.a"
)
