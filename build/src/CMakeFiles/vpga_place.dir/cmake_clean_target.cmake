file(REMOVE_RECURSE
  "libvpga_place.a"
)
