file(REMOVE_RECURSE
  "CMakeFiles/vpga_place.dir/place/placement.cpp.o"
  "CMakeFiles/vpga_place.dir/place/placement.cpp.o.d"
  "libvpga_place.a"
  "libvpga_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpga_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
