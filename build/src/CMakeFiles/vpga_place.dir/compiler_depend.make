# Empty compiler generated dependencies file for vpga_place.
# This may be replaced when dependencies are built.
