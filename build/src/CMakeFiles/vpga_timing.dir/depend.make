# Empty dependencies file for vpga_timing.
# This may be replaced when dependencies are built.
