file(REMOVE_RECURSE
  "libvpga_timing.a"
)
