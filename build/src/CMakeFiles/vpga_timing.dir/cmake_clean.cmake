file(REMOVE_RECURSE
  "CMakeFiles/vpga_timing.dir/timing/power.cpp.o"
  "CMakeFiles/vpga_timing.dir/timing/power.cpp.o.d"
  "CMakeFiles/vpga_timing.dir/timing/sta.cpp.o"
  "CMakeFiles/vpga_timing.dir/timing/sta.cpp.o.d"
  "libvpga_timing.a"
  "libvpga_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpga_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
