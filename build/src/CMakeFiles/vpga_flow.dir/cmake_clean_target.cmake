file(REMOVE_RECURSE
  "libvpga_flow.a"
)
