# Empty compiler generated dependencies file for vpga_flow.
# This may be replaced when dependencies are built.
