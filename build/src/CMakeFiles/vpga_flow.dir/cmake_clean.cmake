file(REMOVE_RECURSE
  "CMakeFiles/vpga_flow.dir/flow/flow.cpp.o"
  "CMakeFiles/vpga_flow.dir/flow/flow.cpp.o.d"
  "libvpga_flow.a"
  "libvpga_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpga_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
