file(REMOVE_RECURSE
  "CMakeFiles/vpga_route.dir/route/router.cpp.o"
  "CMakeFiles/vpga_route.dir/route/router.cpp.o.d"
  "libvpga_route.a"
  "libvpga_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpga_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
