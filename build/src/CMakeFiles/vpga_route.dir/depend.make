# Empty dependencies file for vpga_route.
# This may be replaced when dependencies are built.
