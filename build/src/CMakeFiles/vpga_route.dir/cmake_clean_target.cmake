file(REMOVE_RECURSE
  "libvpga_route.a"
)
