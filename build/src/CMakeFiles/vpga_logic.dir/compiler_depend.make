# Empty compiler generated dependencies file for vpga_logic.
# This may be replaced when dependencies are built.
