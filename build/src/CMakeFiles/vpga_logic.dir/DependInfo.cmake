
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/function_sets.cpp" "src/CMakeFiles/vpga_logic.dir/logic/function_sets.cpp.o" "gcc" "src/CMakeFiles/vpga_logic.dir/logic/function_sets.cpp.o.d"
  "/root/repo/src/logic/lut_decompose.cpp" "src/CMakeFiles/vpga_logic.dir/logic/lut_decompose.cpp.o" "gcc" "src/CMakeFiles/vpga_logic.dir/logic/lut_decompose.cpp.o.d"
  "/root/repo/src/logic/npn.cpp" "src/CMakeFiles/vpga_logic.dir/logic/npn.cpp.o" "gcc" "src/CMakeFiles/vpga_logic.dir/logic/npn.cpp.o.d"
  "/root/repo/src/logic/s3.cpp" "src/CMakeFiles/vpga_logic.dir/logic/s3.cpp.o" "gcc" "src/CMakeFiles/vpga_logic.dir/logic/s3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vpga_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
