file(REMOVE_RECURSE
  "libvpga_logic.a"
)
