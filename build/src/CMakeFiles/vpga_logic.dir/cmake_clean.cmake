file(REMOVE_RECURSE
  "CMakeFiles/vpga_logic.dir/logic/function_sets.cpp.o"
  "CMakeFiles/vpga_logic.dir/logic/function_sets.cpp.o.d"
  "CMakeFiles/vpga_logic.dir/logic/lut_decompose.cpp.o"
  "CMakeFiles/vpga_logic.dir/logic/lut_decompose.cpp.o.d"
  "CMakeFiles/vpga_logic.dir/logic/npn.cpp.o"
  "CMakeFiles/vpga_logic.dir/logic/npn.cpp.o.d"
  "CMakeFiles/vpga_logic.dir/logic/s3.cpp.o"
  "CMakeFiles/vpga_logic.dir/logic/s3.cpp.o.d"
  "libvpga_logic.a"
  "libvpga_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpga_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
