# Empty compiler generated dependencies file for vpga_library.
# This may be replaced when dependencies are built.
