file(REMOVE_RECURSE
  "libvpga_library.a"
)
