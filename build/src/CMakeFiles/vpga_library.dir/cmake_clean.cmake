file(REMOVE_RECURSE
  "CMakeFiles/vpga_library.dir/library/characterize.cpp.o"
  "CMakeFiles/vpga_library.dir/library/characterize.cpp.o.d"
  "libvpga_library.a"
  "libvpga_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpga_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
