file(REMOVE_RECURSE
  "libvpga_netlist.a"
)
