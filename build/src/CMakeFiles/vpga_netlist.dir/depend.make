# Empty dependencies file for vpga_netlist.
# This may be replaced when dependencies are built.
