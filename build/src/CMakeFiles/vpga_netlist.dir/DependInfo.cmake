
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/bitsim.cpp" "src/CMakeFiles/vpga_netlist.dir/netlist/bitsim.cpp.o" "gcc" "src/CMakeFiles/vpga_netlist.dir/netlist/bitsim.cpp.o.d"
  "/root/repo/src/netlist/io.cpp" "src/CMakeFiles/vpga_netlist.dir/netlist/io.cpp.o" "gcc" "src/CMakeFiles/vpga_netlist.dir/netlist/io.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/CMakeFiles/vpga_netlist.dir/netlist/netlist.cpp.o" "gcc" "src/CMakeFiles/vpga_netlist.dir/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/simulate.cpp" "src/CMakeFiles/vpga_netlist.dir/netlist/simulate.cpp.o" "gcc" "src/CMakeFiles/vpga_netlist.dir/netlist/simulate.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "src/CMakeFiles/vpga_netlist.dir/netlist/verilog.cpp.o" "gcc" "src/CMakeFiles/vpga_netlist.dir/netlist/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vpga_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_library.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
