file(REMOVE_RECURSE
  "CMakeFiles/vpga_netlist.dir/netlist/bitsim.cpp.o"
  "CMakeFiles/vpga_netlist.dir/netlist/bitsim.cpp.o.d"
  "CMakeFiles/vpga_netlist.dir/netlist/io.cpp.o"
  "CMakeFiles/vpga_netlist.dir/netlist/io.cpp.o.d"
  "CMakeFiles/vpga_netlist.dir/netlist/netlist.cpp.o"
  "CMakeFiles/vpga_netlist.dir/netlist/netlist.cpp.o.d"
  "CMakeFiles/vpga_netlist.dir/netlist/simulate.cpp.o"
  "CMakeFiles/vpga_netlist.dir/netlist/simulate.cpp.o.d"
  "CMakeFiles/vpga_netlist.dir/netlist/verilog.cpp.o"
  "CMakeFiles/vpga_netlist.dir/netlist/verilog.cpp.o.d"
  "libvpga_netlist.a"
  "libvpga_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpga_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
