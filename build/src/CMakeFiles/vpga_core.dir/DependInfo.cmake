
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arch_io.cpp" "src/CMakeFiles/vpga_core.dir/core/arch_io.cpp.o" "gcc" "src/CMakeFiles/vpga_core.dir/core/arch_io.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/vpga_core.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/vpga_core.dir/core/config.cpp.o.d"
  "/root/repo/src/core/fa_packing.cpp" "src/CMakeFiles/vpga_core.dir/core/fa_packing.cpp.o" "gcc" "src/CMakeFiles/vpga_core.dir/core/fa_packing.cpp.o.d"
  "/root/repo/src/core/match.cpp" "src/CMakeFiles/vpga_core.dir/core/match.cpp.o" "gcc" "src/CMakeFiles/vpga_core.dir/core/match.cpp.o.d"
  "/root/repo/src/core/plb.cpp" "src/CMakeFiles/vpga_core.dir/core/plb.cpp.o" "gcc" "src/CMakeFiles/vpga_core.dir/core/plb.cpp.o.d"
  "/root/repo/src/core/vias.cpp" "src/CMakeFiles/vpga_core.dir/core/vias.cpp.o" "gcc" "src/CMakeFiles/vpga_core.dir/core/vias.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vpga_library.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vpga_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
