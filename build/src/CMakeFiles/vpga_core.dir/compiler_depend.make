# Empty compiler generated dependencies file for vpga_core.
# This may be replaced when dependencies are built.
