file(REMOVE_RECURSE
  "libvpga_core.a"
)
