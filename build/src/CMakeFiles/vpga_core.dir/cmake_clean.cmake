file(REMOVE_RECURSE
  "CMakeFiles/vpga_core.dir/core/arch_io.cpp.o"
  "CMakeFiles/vpga_core.dir/core/arch_io.cpp.o.d"
  "CMakeFiles/vpga_core.dir/core/config.cpp.o"
  "CMakeFiles/vpga_core.dir/core/config.cpp.o.d"
  "CMakeFiles/vpga_core.dir/core/fa_packing.cpp.o"
  "CMakeFiles/vpga_core.dir/core/fa_packing.cpp.o.d"
  "CMakeFiles/vpga_core.dir/core/match.cpp.o"
  "CMakeFiles/vpga_core.dir/core/match.cpp.o.d"
  "CMakeFiles/vpga_core.dir/core/plb.cpp.o"
  "CMakeFiles/vpga_core.dir/core/plb.cpp.o.d"
  "CMakeFiles/vpga_core.dir/core/vias.cpp.o"
  "CMakeFiles/vpga_core.dir/core/vias.cpp.o.d"
  "libvpga_core.a"
  "libvpga_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpga_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
