#pragma once
/// \file bdd.hpp
/// Reduced ordered binary decision diagrams for the exact-equivalence engine.
///
/// A deliberately small, dependency-free ROBDD package in the
/// Brace–Rudell–Bryant style: an arena-backed node store with integer ids, a
/// unique table enforcing structural canonicity, complement edges with the
/// then-edge-regular normalization, and ITE with a bounded direct-mapped
/// computed cache. Under a fixed variable order two equivalent functions
/// always reduce to the *same edge*, so equivalence checking is a pointer
/// compare — the property the CEC tier ladder exploits for XOR-dominated
/// cones (parity chains, carry-lookahead) where CDCL clause learning scales
/// exponentially but BDDs stay linear.
///
/// Everything is deterministic by construction: node ids follow creation
/// order only, the cache is a fixed-size array, and there is no wall-clock,
/// pointer ordering or randomness anywhere — a given build sequence produces
/// byte-identical ids, stats and satisfying paths across runs and threads.
///
/// Resource discipline: the manager carries a hard node budget. Exceeding it
/// poisons the manager (`exhausted()`) and every subsequent operation returns
/// `kInvalid` instead of growing — callers fall back to another engine (the
/// CEC falls through to SAT) rather than consuming unbounded memory.

#include <cstdint>
#include <vector>

namespace vpga::bdd {

/// An edge into the node arena: (node index << 1) | complement bit.
/// `kTrue`/`kFalse` are the two edges onto the single terminal node 0;
/// `kInvalid` is the poisoned edge produced after budget exhaustion.
using Ref = std::uint32_t;

inline constexpr Ref kTrue = 0;
inline constexpr Ref kFalse = 1;
inline constexpr Ref kInvalid = 0xFFFFFFFFu;

/// Complement of an edge (constant time; kInvalid stays invalid).
constexpr Ref bdd_not(Ref f) { return f == kInvalid ? kInvalid : (f ^ 1u); }

/// Cumulative build statistics (deterministic, exported as cec.bdd_*).
struct BddStats {
  long long unique_hits = 0;   ///< mk() calls answered by the unique table
  long long cache_hits = 0;    ///< ite() calls answered by the computed cache
  long long ite_calls = 0;     ///< non-terminal ite() recursions
};

/// One ROBDD universe: a variable order (index = level), a node arena, the
/// unique table and the computed cache. Not thread-safe; the CEC builds one
/// manager per check point so cones get independent variable orders.
class BddManager {
 public:
  /// `node_budget` caps the arena (terminal included); 0 means the default.
  explicit BddManager(std::uint32_t node_budget = 0);

  /// The projection function of variable `v` (levels are the variable order:
  /// smaller v = closer to the root). Allocates the node on first use.
  Ref var(std::uint32_t v);

  /// if-then-else: f ? g : h, the universal connective. Returns kInvalid
  /// once the node budget is exhausted (sticky — see exhausted()).
  Ref ite(Ref f, Ref g, Ref h);

  Ref bdd_and(Ref f, Ref g) { return ite(f, g, kFalse); }
  Ref bdd_or(Ref f, Ref g) { return ite(f, kTrue, g); }
  Ref bdd_xor(Ref f, Ref g) { return ite(f, bdd_not(g), g); }

  /// True once any operation ran out of node budget; every later operation
  /// returns kInvalid. The caller is expected to discard the manager.
  [[nodiscard]] bool exhausted() const { return exhausted_; }

  /// Nodes allocated so far (terminal included).
  [[nodiscard]] std::size_t num_nodes() const { return var_.size(); }
  [[nodiscard]] const BddStats& stats() const { return stats_; }

  /// Evaluates `f` under a complete assignment (values[v] = value of
  /// variable v, one byte per variable). f must be valid.
  [[nodiscard]] bool eval(Ref f, const std::vector<std::uint8_t>& values) const;

  /// Extracts one satisfying assignment of `f` into `values` (resized to
  /// `num_vars`, don't-care variables forced to 0). Returns false iff
  /// f == kFalse (f must not be kInvalid). Deterministic: always follows the
  /// then-branch where possible, so the witness is byte-stable.
  bool one_sat(Ref f, std::uint32_t num_vars, std::vector<std::uint8_t>& values) const;

 private:
  static constexpr std::uint32_t kDefaultBudget = 1u << 20;
  /// Level of the terminal node: below every real variable.
  static constexpr std::uint32_t kTermLevel = 0xFFFFFFFFu;

  struct CacheEntry {
    Ref f = kInvalid;
    Ref g = kInvalid;
    Ref h = kInvalid;
    Ref result = kInvalid;
  };

  [[nodiscard]] std::uint32_t level(Ref f) const { return var_[f >> 1]; }
  /// Cofactors of `f` at `lvl` (a level at or above f's top level).
  [[nodiscard]] Ref cof(Ref f, std::uint32_t lvl, bool value) const {
    if (level(f) != lvl) return f;
    const Ref edge = value ? hi_[f >> 1] : lo_[f >> 1];
    return edge ^ (f & 1u);
  }

  /// Finds or creates the canonical node (v, hi, lo). hi/lo must be valid.
  Ref mk(std::uint32_t v, Ref hi, Ref lo);
  void grow_table();

  /// Arena: parallel per-node arrays (node 0 is the terminal). hi_ edges are
  /// always regular (complement normalized onto the node's output edge).
  std::vector<std::uint32_t> var_;
  std::vector<Ref> hi_;
  std::vector<Ref> lo_;

  /// Open-addressed unique table over (var, hi, lo); power-of-two capacity,
  /// entries are node indices (0 = empty slot; the terminal is never hashed).
  std::vector<std::uint32_t> table_;
  std::uint32_t table_mask_ = 0;

  /// Direct-mapped computed cache — bounded by construction, overwrite on
  /// collision, no growth and no eviction policy to keep determinism trivial.
  std::vector<CacheEntry> cache_;

  std::uint32_t budget_ = kDefaultBudget;
  bool exhausted_ = false;
  BddStats stats_;
};

}  // namespace vpga::bdd
