#include "bdd/bdd.hpp"

#include "common/assert.hpp"

namespace vpga::bdd {
namespace {

/// Cache/table sizing: the computed cache is a fixed 2^16-entry array
/// (1 MiB), the unique table starts small and doubles; both use the same
/// mixer. Constants from splitmix64, the project-wide deterministic mixer.
constexpr std::uint32_t kCacheBits = 16;

std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t hash3(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  return mix((std::uint64_t{a} << 32 | b) ^ mix(c));
}

}  // namespace

BddManager::BddManager(std::uint32_t node_budget)
    : budget_(node_budget == 0 ? kDefaultBudget : node_budget) {
  // Node 0: the terminal. Its hi/lo are never read; its level sorts below
  // every variable so cofactoring treats it as a leaf.
  var_.push_back(kTermLevel);
  hi_.push_back(kTrue);
  lo_.push_back(kTrue);
  table_.assign(1u << 10, 0);
  table_mask_ = static_cast<std::uint32_t>(table_.size()) - 1;
  cache_.assign(std::size_t{1} << kCacheBits, CacheEntry{});
}

Ref BddManager::var(std::uint32_t v) { return mk(v, kTrue, kFalse); }

void BddManager::grow_table() {
  std::vector<std::uint32_t> old;
  old.swap(table_);
  table_.assign(old.size() * 2, 0);
  table_mask_ = static_cast<std::uint32_t>(table_.size()) - 1;
  for (const std::uint32_t idx : old) {
    if (idx == 0) continue;
    std::uint32_t slot =
        static_cast<std::uint32_t>(hash3(var_[idx], hi_[idx], lo_[idx])) & table_mask_;
    while (table_[slot] != 0) slot = (slot + 1) & table_mask_;
    table_[slot] = idx;
  }
}

Ref BddManager::mk(std::uint32_t v, Ref hi, Ref lo) {
  if (exhausted_ || hi == kInvalid || lo == kInvalid) return kInvalid;
  if (hi == lo) return hi;  // reduction: redundant test
  // Canonical form: the then-edge is regular. A complemented then-edge moves
  // the complement onto the node's output edge instead.
  if ((hi & 1u) != 0) return bdd_not(mk(v, bdd_not(hi), bdd_not(lo)));

  std::uint32_t slot = static_cast<std::uint32_t>(hash3(v, hi, lo)) & table_mask_;
  while (table_[slot] != 0) {
    const std::uint32_t idx = table_[slot];
    if (var_[idx] == v && hi_[idx] == hi && lo_[idx] == lo) {
      ++stats_.unique_hits;
      return idx << 1;
    }
    slot = (slot + 1) & table_mask_;
  }
  if (var_.size() >= budget_) {
    exhausted_ = true;  // sticky: the whole build is abandoned, not one node
    return kInvalid;
  }
  const auto idx = static_cast<std::uint32_t>(var_.size());
  var_.push_back(v);
  hi_.push_back(hi);
  lo_.push_back(lo);
  table_[slot] = idx;
  // Grow at ~70% load so probe chains stay short; ids are untouched.
  if (var_.size() * 10 >= table_.size() * 7) grow_table();
  return idx << 1;
}

Ref BddManager::ite(Ref f, Ref g, Ref h) {
  if (f == kInvalid || g == kInvalid || h == kInvalid || exhausted_) return kInvalid;
  // Terminal and absorption cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  if (g == kFalse && h == kTrue) return bdd_not(f);
  if (f == g) g = kTrue;        // ite(f, f, h) = ite(f, 1, h)
  else if (f == bdd_not(g)) g = kFalse;
  if (f == h) h = kFalse;       // ite(f, g, f) = ite(f, g, 0)
  else if (f == bdd_not(h)) h = kTrue;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  if (g == kFalse && h == kTrue) return bdd_not(f);

  // Cache canonicalization: strip the complement off f (swapping the
  // branches), then off g (complementing the result) — one canonical triple
  // per equivalence class keeps the cache hit rate and, with the then-regular
  // node rule, makes equality a pure edge compare.
  if ((f & 1u) != 0) {
    f = bdd_not(f);
    const Ref t = g;
    g = h;
    h = t;
  }
  bool complement_result = false;
  if ((g & 1u) != 0) {
    complement_result = true;
    g = bdd_not(g);
    h = bdd_not(h);
  }

  ++stats_.ite_calls;
  const std::size_t slot =
      static_cast<std::size_t>(hash3(f, g, h) & ((std::uint64_t{1} << kCacheBits) - 1));
  CacheEntry& e = cache_[slot];
  if (e.f == f && e.g == g && e.h == h) {
    ++stats_.cache_hits;
    return complement_result ? bdd_not(e.result) : e.result;
  }

  const std::uint32_t lf = level(f);
  const std::uint32_t lg = level(g);
  const std::uint32_t lh = level(h);
  std::uint32_t top = lf < lg ? lf : lg;
  if (lh < top) top = lh;

  const Ref t = ite(cof(f, top, true), cof(g, top, true), cof(h, top, true));
  const Ref r0 = ite(cof(f, top, false), cof(g, top, false), cof(h, top, false));
  const Ref result = mk(top, t, r0);
  if (result == kInvalid) return kInvalid;
  e.f = f;
  e.g = g;
  e.h = h;
  e.result = result;
  return complement_result ? bdd_not(result) : result;
}

bool BddManager::eval(Ref f, const std::vector<std::uint8_t>& values) const {
  VPGA_ASSERT(f != kInvalid);
  std::uint32_t parity = f & 1u;
  while ((f >> 1) != 0) {
    const std::uint32_t v = level(f);
    VPGA_ASSERT(v < values.size());
    const Ref edge = values[v] != 0 ? hi_[f >> 1] : lo_[f >> 1];
    parity ^= edge & 1u;
    f = edge;
  }
  return parity == 0;
}

bool BddManager::one_sat(Ref f, std::uint32_t num_vars,
                         std::vector<std::uint8_t>& values) const {
  VPGA_ASSERT(f != kInvalid);
  values.assign(num_vars, 0);
  if (f == kFalse) return false;
  // Every internal node of a reduced BDD is non-constant, so from any node
  // some branch reaches 1 under the accumulated parity; only a branch that
  // lands directly on the terminal can be the wrong constant. Prefer the
  // then-branch for a deterministic witness.
  while ((f >> 1) != 0) {
    const std::uint32_t v = level(f);
    VPGA_ASSERT(v < num_vars);
    const Ref hi = hi_[f >> 1] ^ (f & 1u);
    if (hi != kFalse) {
      values[v] = 1;
      f = hi;
    } else {
      f = lo_[f >> 1] ^ (f & 1u);
    }
  }
  VPGA_ASSERT(f == kTrue && "one_sat walked into the 0 terminal");
  return true;
}

}  // namespace vpga::bdd
