#include "common/assert.hpp"
#include "designs/datapath.hpp"
#include "designs/designs.hpp"

namespace vpga::designs {

using netlist::Netlist;
using netlist::NodeId;

namespace {

/// Significand multiplier: partial-product column compression with full
/// adders (Wallace/Dadda style carry-save tree) followed by a final
/// parallel-prefix carry-propagate adder — the structure synthesis emits for
/// a * operator under timing constraints. Returns the 2w product bits.
Bus array_multiply(Netlist& nl, const Bus& x, const Bus& y) {
  const std::size_t w = x.size();
  VPGA_ASSERT(y.size() == w);
  // Two spare columns absorb structural carries past bit 2w-1 (provably
  // constant 0: the product of two w-bit numbers fits in 2w bits).
  std::vector<std::vector<NodeId>> column(2 * w + 2);
  for (std::size_t j = 0; j < w; ++j)
    for (std::size_t i = 0; i < w; ++i)
      column[i + j].push_back(nl.add_and(x[i], y[j]));
  // Level-synchronized compression: every column reduces simultaneously each
  // round, so carries enter the next round and total depth stays logarithmic
  // (this is what distinguishes a Wallace tree from a ripple array).
  bool reduced = true;
  std::vector<std::vector<NodeId>> next(column.size());
  while (reduced) {
    reduced = false;
    for (std::size_t c = 0; c < column.size(); ++c) {
      std::size_t i = 0;
      while (column[c].size() - i >= 3) {
        const NodeId a = column[c][i];
        const NodeId b = column[c][i + 1];
        const NodeId ci = column[c][i + 2];
        i += 3;
        next[c].push_back(nl.add_xor3(a, b, ci));
        if (c + 1 < column.size()) next[c + 1].push_back(nl.add_maj(a, b, ci));
        reduced = true;
      }
      for (; i < column[c].size(); ++i) next[c].push_back(column[c][i]);
    }
    column.swap(next);
    for (auto& col : next) col.clear();
  }
  // Final carry-propagate addition of the two remaining rows (2w bits).
  Bus row0, row1;
  for (std::size_t c = 0; c < 2 * w; ++c) {
    row0.push_back(column[c].empty() ? ground(nl) : column[c][0]);
    row1.push_back(column[c].size() > 1 ? column[c][1] : ground(nl));
  }
  return prefix_add(nl, row0, row1);
}

}  // namespace

BenchmarkDesign make_fpu(int exp_bits, int mant_bits, int lanes) {
  VPGA_ASSERT(exp_bits >= 3 && mant_bits >= 4 && lanes >= 1);
  {
    int log_sig = 0;
    while ((1 << log_sig) < mant_bits + 1) ++log_sig;
    VPGA_ASSERT_MSG(exp_bits >= log_sig, "exponent must cover the shift range");
  }
  Netlist nl("fpu_e" + std::to_string(exp_bits) + "m" + std::to_string(mant_bits) +
             (lanes > 1 ? "x" + std::to_string(lanes) : ""));

  const int sig = mant_bits + 1;  // significand with hidden bit

  // SIMD lanes: identical independent pipelines (lane 0 keeps bare pin names).
  std::string pfx;
  for (int lane = 0; lane < lanes; ++lane) {
  pfx = lane == 0 ? "" : "l" + std::to_string(lane) + "_";

  // Packed operands: sign, exponent, mantissa; plus the operation select.
  const NodeId xs = nl.add_dff(nl.add_input(pfx + "x_sign"));
  const NodeId ys = nl.add_dff(nl.add_input(pfx + "y_sign"));
  const Bus xe = register_bus(nl, input_bus(nl, pfx + "x_exp", exp_bits));
  const Bus ye = register_bus(nl, input_bus(nl, pfx + "y_exp", exp_bits));
  Bus xm = register_bus(nl, input_bus(nl, pfx + "x_man", mant_bits));
  Bus ym = register_bus(nl, input_bus(nl, pfx + "y_man", mant_bits));
  const NodeId is_mul = nl.add_dff(nl.add_input(pfx + "op_mul"));
  xm.push_back(power(nl));  // hidden leading 1
  ym.push_back(power(nl));

  // ---- multiply path (stage 1) ---------------------------------------------
  const Bus product = array_multiply(nl, xm, ym);            // 2*sig bits
  const Bus mul_exp = prefix_add(nl, xe, ye);                // bias fix below
  const NodeId mul_sign = nl.add_xor(xs, ys);

  // Normalization: product MSB selects between top windows; round by
  // incrementing the kept significand when the guard bit is set.
  const NodeId prod_msb = product[static_cast<std::size_t>(2 * sig - 1)];
  Bus mul_keep_hi(product.end() - sig, product.end());
  Bus mul_keep_lo(product.end() - sig - 1, product.end() - 1);
  Bus mul_mant = mux_bus(nl, prod_msb, mul_keep_lo, mul_keep_hi);
  const NodeId guard = nl.add_mux(prod_msb, product[static_cast<std::size_t>(sig - 2)],
                                  product[static_cast<std::size_t>(sig - 1)]);
  Bus mul_rounded = mux_bus(nl, guard, mul_mant,
                            prefix_add(nl, mul_mant, Bus(mul_mant.size(), ground(nl)), power(nl)));
  Bus mul_exp_adj = mux_bus(nl, prod_msb, mul_exp, increment(nl, mul_exp));

  // ---- add path (stage 1) ----------------------------------------------------
  // Exponent compare and operand swap so the larger exponent leads.
  const NodeId y_bigger = less_than(nl, xe, ye);
  const Bus big_e = mux_bus(nl, y_bigger, xe, ye);
  const Bus diff_raw = prefix_sub(nl, mux_bus(nl, y_bigger, xe, ye),
                                  mux_bus(nl, y_bigger, ye, xe));
  const Bus big_m = mux_bus(nl, y_bigger, xm, ym);
  const Bus small_m = mux_bus(nl, y_bigger, ym, xm);

  int log_sig = 0;
  while ((1 << log_sig) < sig) ++log_sig;
  const Bus align_amt(diff_raw.begin(), diff_raw.begin() + log_sig);
  const Bus aligned = barrel_shift(nl, small_m, align_amt, /*left=*/false);

  const NodeId eff_sub = nl.add_xor(xs, ys);
  const Bus addend = mux_bus(nl, eff_sub, aligned, bitwise_not(nl, aligned));
  const Bus raw_sum = prefix_add(nl, big_m, addend, eff_sub, /*carry_out=*/true);
  Bus sum_m(raw_sum.begin(), raw_sum.begin() + sig);
  const NodeId sum_carry = raw_sum[static_cast<std::size_t>(sig)];

  // Renormalize the add result with a leading-zero detector + left shift.
  Bus lzc = leading_zeros(nl, sum_m);
  lzc.resize(static_cast<std::size_t>(log_sig), ground(nl));
  const Bus norm = barrel_shift(nl, sum_m, lzc, /*left=*/true);
  const Bus add_exp = prefix_sub(nl, big_e, [&] {
    Bus ext(lzc);
    ext.resize(big_e.size(), ground(nl));  // zero-extend (exp_bits >= log_sig)
    return ext;
  }());
  const Bus add_mant = mux_bus(nl, sum_carry, norm, big_m);  // carry: shift right path
  const NodeId add_sign = nl.add_mux(y_bigger, xs, ys);

  // ---- stage 2: select, pack, register ---------------------------------------
  const Bus r_mant = mux_bus(nl, is_mul, add_mant, mul_rounded);
  const Bus r_exp = mux_bus(nl, is_mul, add_exp, mul_exp_adj);
  const NodeId r_sign = nl.add_mux(is_mul, add_sign, mul_sign);
  const NodeId is_zero = nl.add_not(reduce_or(nl, r_mant));

  output_bus(nl, pfx + "z_man", register_bus(nl, Bus(r_mant.begin(), r_mant.end() - 1)));
  output_bus(nl, pfx + "z_exp", register_bus(nl, r_exp));
  nl.add_output(nl.add_dff(r_sign), pfx + "z_sign");
  nl.add_output(nl.add_dff(is_zero), pfx + "z_zero");
  }  // lane

  BenchmarkDesign d{std::move(nl), /*clock_period_ps=*/30000.0, /*datapath_dominated=*/true};
  return d;
}

}  // namespace vpga::designs
