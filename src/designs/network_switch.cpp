#include <cmath>

#include "common/assert.hpp"
#include "designs/datapath.hpp"
#include "designs/designs.hpp"

namespace vpga::designs {

using netlist::Netlist;
using netlist::NodeId;

namespace {
constexpr std::uint64_t kCrc32Poly = 0x04C11DB7ULL;

/// Encodes a one-hot bus into binary (or-trees per output bit).
Bus encode_onehot(Netlist& nl, const Bus& onehot, int out_bits) {
  Bus out;
  out.reserve(static_cast<std::size_t>(out_bits));
  for (int b = 0; b < out_bits; ++b) {
    Bus terms;
    for (std::size_t i = 0; i < onehot.size(); ++i)
      if ((i >> b) & 1) terms.push_back(onehot[i]);
    out.push_back(terms.empty() ? ground(nl) : reduce_or(nl, terms));
  }
  return out;
}
}  // namespace

BenchmarkDesign make_network_switch(int ports, int width) {
  VPGA_ASSERT(ports >= 2 && (ports & (ports - 1)) == 0);
  VPGA_ASSERT(width >= 8 && (width & (width - 1)) == 0);
  Netlist nl("netswitch_p" + std::to_string(ports) + "w" + std::to_string(width));

  const int log_p = static_cast<int>(std::log2(ports));
  const int log_w = static_cast<int>(std::log2(width));

  // --- ingress pipeline per port ---------------------------------------------
  std::vector<Bus> port_data(static_cast<std::size_t>(ports));
  std::vector<Bus> port_dest(static_cast<std::size_t>(ports));
  std::vector<NodeId> port_valid(static_cast<std::size_t>(ports));

  std::string pn;
  for (int p = 0; p < ports; ++p) {
    pn = "p" + std::to_string(p) + "_";
    const Bus data = register_bus(nl, input_bus(nl, pn + "data", width));
    const Bus dest = register_bus(nl, input_bus(nl, pn + "dest", log_p));
    const NodeId valid = nl.add_dff(nl.add_input(pn + "valid"));
    const Bus offset = register_bus(nl, input_bus(nl, pn + "offset", log_w));

    // Ingress CRC-32 check: running CRC over the (aligned) payload.
    const Bus aligned = barrel_shift(nl, data, offset, /*left=*/false);
    Bus crc = register_bus(nl, Bus(32, ground(nl)));
    const Bus crc_next = crc_step(nl, crc, aligned, kCrc32Poly);
    for (std::size_t i = 0; i < crc.size(); ++i) nl.set_dff_input(crc[i], crc_next[i]);
    // Non-zero CRC residue flags the frame; the packet still switches (the
    // downstream node drops it), keeping control and data paths independent.
    const NodeId crc_err = reduce_or(nl, crc_next);
    nl.add_output(nl.add_dff(nl.add_and(valid, crc_err)), pn + "crc_err");

    port_data[static_cast<std::size_t>(p)] = aligned;
    port_dest[static_cast<std::size_t>(p)] = dest;
    port_valid[static_cast<std::size_t>(p)] = valid;
  }

  // --- request matrix and per-output arbitration ------------------------------
  // request[o][p] = port p wants output o.
  std::string on;
  for (int o = 0; o < ports; ++o) {
    Bus requests;
    requests.reserve(static_cast<std::size_t>(ports));
    for (int p = 0; p < ports; ++p) {
      const Bus& dest = port_dest[static_cast<std::size_t>(p)];
      NodeId hit;  // dest == o
      for (int b = 0; b < log_p; ++b) {
        const NodeId lit = (o >> b) & 1 ? dest[static_cast<std::size_t>(b)]
                                        : nl.add_not(dest[static_cast<std::size_t>(b)]);
        hit = hit.valid() ? nl.add_and(hit, lit) : lit;
      }
      requests.push_back(nl.add_and(hit, port_valid[static_cast<std::size_t>(p)]));
    }
    // Rotating-priority (round-robin) arbiter: a registered pointer masks the
    // requests; masked priority first, wraparound second.
    const Bus ptr = register_bus(nl, Bus(static_cast<std::size_t>(ports), ground(nl)));
    Bus masked;
    masked.reserve(requests.size());
    for (int p = 0; p < ports; ++p)
      masked.push_back(nl.add_and(requests[static_cast<std::size_t>(p)],
                                  ptr[static_cast<std::size_t>(p)]));
    const Bus g_masked = priority_grant(nl, masked);
    const Bus g_any = priority_grant(nl, requests);
    const NodeId have_masked = reduce_or(nl, masked);
    const Bus grant = mux_bus(nl, have_masked, g_any, g_masked);
    // Pointer update: one past the granted port (rotate the grant one-hot).
    for (int p = 0; p < ports; ++p)
      nl.set_dff_input(ptr[static_cast<std::size_t>(p)],
                       grant[static_cast<std::size_t>((p + ports - 1) % ports)]);

    // --- crossbar + egress ----------------------------------------------------
    const Bus sel = encode_onehot(nl, grant, log_p);
    const Bus out_word = mux_tree(nl, sel, port_data);
    // Egress CRC regeneration over the switched word.
    const Bus egress_crc = crc_step(nl, Bus(32, ground(nl)), out_word, kCrc32Poly);
    on = "out" + std::to_string(o) + "_";
    output_bus(nl, on + "data", register_bus(nl, out_word));
    output_bus(nl, on + "crc", register_bus(nl, egress_crc));
    nl.add_output(nl.add_dff(reduce_or(nl, grant)), on + "valid");
  }

  BenchmarkDesign d{std::move(nl), /*clock_period_ps=*/16000.0, /*datapath_dominated=*/true};
  return d;
}

}  // namespace vpga::designs
