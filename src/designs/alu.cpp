#include <cmath>

#include "common/assert.hpp"
#include "designs/datapath.hpp"
#include "designs/designs.hpp"

namespace vpga::designs {

using netlist::Netlist;
using netlist::NodeId;

BenchmarkDesign make_alu(int width) {
  VPGA_ASSERT(width >= 4 && (width & (width - 1)) == 0);
  Netlist nl("alu" + std::to_string(width));

  // Registered operand/opcode inputs (FF -> logic -> FF paths for STA).
  const Bus a = register_bus(nl, input_bus(nl, "a", width));
  const Bus b = register_bus(nl, input_bus(nl, "b", width));
  const Bus op = register_bus(nl, input_bus(nl, "op", 3));

  const int log_w = static_cast<int>(std::log2(width));
  const Bus shamt(b.begin(), b.begin() + log_w);

  const Bus add = prefix_add(nl, a, b);
  const Bus sub = prefix_sub(nl, a, b);
  const Bus land = bitwise_and(nl, a, b);
  const Bus lor = bitwise_or(nl, a, b);
  const Bus lxor = bitwise_xor(nl, a, b);
  const Bus shl = barrel_shift(nl, a, shamt, /*left=*/true);
  const Bus shr = barrel_shift(nl, a, shamt, /*left=*/false);

  // slt: zero-extended unsigned comparison result.
  Bus slt(static_cast<std::size_t>(width), ground(nl));
  slt[0] = less_than(nl, a, b);

  const Bus result = mux_tree(nl, op, {add, sub, land, lor, lxor, shl, shr, slt});
  const Bus result_q = register_bus(nl, result);
  output_bus(nl, "result", result_q);
  nl.add_output(nl.add_dff(nl.add_not(reduce_or(nl, result))), "zero");

  BenchmarkDesign d{std::move(nl), /*clock_period_ps=*/4500.0, /*datapath_dominated=*/true};
  return d;
}

}  // namespace vpga::designs
