#include "common/assert.hpp"
#include "designs/datapath.hpp"
#include "designs/designs.hpp"

namespace vpga::designs {

using netlist::Netlist;
using netlist::NodeId;

namespace {
constexpr std::uint64_t kCrc16Poly = 0x1021;  // CCITT, as IEEE-1394 uses

/// A small Moore FSM: `states` one-hot registers; transition (from, to, cond).
struct Fsm {
  Bus state;  // one-hot Q
};

Fsm make_fsm(Netlist& nl, int num_states,
             const std::vector<std::tuple<int, int, NodeId>>& transitions) {
  Fsm fsm;
  fsm.state.reserve(static_cast<std::size_t>(num_states));
  for (int s = 0; s < num_states; ++s) fsm.state.push_back(nl.add_dff(NodeId{}));
  // next[s] = OR of incoming transition terms, plus self-hold when no
  // outgoing transition fires. State 0 additionally latches on "all idle"
  // (reset-free one-hot init is modelled by collapsing into state 0).
  std::vector<Bus> incoming(static_cast<std::size_t>(num_states));
  std::vector<Bus> outgoing(static_cast<std::size_t>(num_states));
  for (const auto& [from, to, cond] : transitions) {
    const NodeId term = nl.add_and(fsm.state[static_cast<std::size_t>(from)], cond);
    incoming[static_cast<std::size_t>(to)].push_back(term);
    outgoing[static_cast<std::size_t>(from)].push_back(cond);
  }
  const NodeId any_state = reduce_or(nl, fsm.state);
  for (int s = 0; s < num_states; ++s) {
    const Bus& in = incoming[static_cast<std::size_t>(s)];
    NodeId next = in.empty() ? ground(nl) : reduce_or(nl, in);
    // Hold when no outgoing condition fires.
    const Bus& out = outgoing[static_cast<std::size_t>(s)];
    const NodeId leaving = out.empty() ? ground(nl) : reduce_or(nl, out);
    const NodeId hold = nl.add_and(fsm.state[static_cast<std::size_t>(s)], nl.add_not(leaving));
    next = nl.add_or(next, hold);
    if (s == 0) next = nl.add_or(next, nl.add_not(any_state));  // cold start
    nl.set_dff_input(fsm.state[static_cast<std::size_t>(s)], next);
  }
  return fsm;
}

}  // namespace

BenchmarkDesign make_firewire(int reg_words, int word_bits) {
  VPGA_ASSERT(reg_words >= 2 && (reg_words & (reg_words - 1)) == 0);
  Netlist nl("firewire");

  const int log_regs = [&] {
    int b = 0;
    while ((1 << b) < reg_words) ++b;
    return b;
  }();

  // --- host interface ---------------------------------------------------------
  const Bus wr_data = register_bus(nl, input_bus(nl, "wr_data", word_bits));
  const Bus addr = register_bus(nl, input_bus(nl, "addr", log_regs));
  const NodeId wr_en = nl.add_dff(nl.add_input("wr_en"));
  const NodeId rx_bit = nl.add_dff(nl.add_input("rx_bit"));
  const NodeId rx_valid = nl.add_dff(nl.add_input("rx_valid"));
  const NodeId tx_req = nl.add_dff(nl.add_input("tx_req"));
  const NodeId bus_idle = nl.add_dff(nl.add_input("bus_idle"));

  // --- configuration register file (the DFF-dominated core) --------------------
  const Bus wsel = decode(nl, addr);
  std::vector<Bus> regs(static_cast<std::size_t>(reg_words));
  for (int r = 0; r < reg_words; ++r) {
    Bus q = register_bus(nl, Bus(static_cast<std::size_t>(word_bits), ground(nl)));
    const NodeId we = nl.add_and(wr_en, wsel[static_cast<std::size_t>(r)]);
    for (int b = 0; b < word_bits; ++b)
      nl.set_dff_input(q[static_cast<std::size_t>(b)],
                       nl.add_mux(we, q[static_cast<std::size_t>(b)],
                                  wr_data[static_cast<std::size_t>(b)]));
    regs[static_cast<std::size_t>(r)] = std::move(q);
  }
  output_bus(nl, "rd_data", register_bus(nl, mux_tree(nl, addr, regs)));

  // --- protocol state machines -------------------------------------------------
  // Link FSM: idle -> arbitrate -> transmit -> ack -> idle; receive branch.
  const Fsm link = make_fsm(nl, 6, {{0, 1, tx_req},
                                    {1, 2, bus_idle},
                                    {2, 3, nl.add_not(tx_req)},
                                    {3, 0, bus_idle},
                                    {0, 4, rx_valid},
                                    {4, 5, nl.add_not(rx_valid)},
                                    {5, 0, bus_idle}});
  // PHY handshake FSM.
  const Fsm phy = make_fsm(nl, 4, {{0, 1, tx_req},
                                   {1, 2, bus_idle},
                                   {2, 3, rx_valid},
                                   {3, 0, bus_idle}});

  // --- serial datapath: shift registers + CRC-16 --------------------------------
  Bus shift = register_bus(nl, Bus(static_cast<std::size_t>(2 * word_bits), ground(nl)));
  for (std::size_t i = shift.size(); i-- > 1;)
    nl.set_dff_input(shift[i], nl.add_mux(rx_valid, shift[i], shift[i - 1]));
  nl.set_dff_input(shift[0], nl.add_mux(rx_valid, shift[0], rx_bit));

  // Transmit shift register (loads from register 0, shifts while tx active).
  Bus tx_shift = register_bus(nl, Bus(static_cast<std::size_t>(word_bits), ground(nl)));
  for (std::size_t i = tx_shift.size(); i-- > 1;)
    nl.set_dff_input(tx_shift[i], nl.add_mux(tx_req, tx_shift[i - 1], regs[0][i]));
  nl.set_dff_input(tx_shift[0], nl.add_mux(tx_req, ground(nl), regs[0][0]));
  nl.add_output(tx_shift.back(), "tx_bit");

  // Clock-domain synchronizers and retiming delay lines — the free-running
  // FF pipelines that make link controllers register-dominated.
  NodeId rx_sync = rx_bit;
  for (int s = 0; s < 4; ++s) rx_sync = nl.add_dff(rx_sync, "rx_sync" + std::to_string(s));
  nl.add_output(rx_sync, "rx_bit_sync");
  Bus delay = shift;
  for (int stage = 0; stage < 2; ++stage) delay = register_bus(nl, delay);
  output_bus(nl, "rx_delayed", Bus(delay.begin(), delay.begin() + word_bits));

  Bus crc = register_bus(nl, Bus(16, ground(nl)));
  const Bus crc_next = crc_step(nl, crc, {rx_bit}, kCrc16Poly);
  for (std::size_t i = 0; i < crc.size(); ++i)
    nl.set_dff_input(crc[i], nl.add_mux(rx_valid, crc[i], crc_next[i]));
  const NodeId crc_ok = nl.add_not(reduce_or(nl, crc));

  // --- timers -------------------------------------------------------------------
  auto make_timer = [&](const std::string& name, int bits) {
    Bus t = register_bus(nl, Bus(static_cast<std::size_t>(bits), ground(nl)));
    const Bus next = increment(nl, t);
    const NodeId run = nl.add_or(link.state[1], link.state[2]);
    for (int b = 0; b < bits; ++b)
      nl.set_dff_input(t[static_cast<std::size_t>(b)],
                       nl.add_and(run, nl.add_mux(run, t[static_cast<std::size_t>(b)],
                                                  next[static_cast<std::size_t>(b)])));
    nl.add_output(nl.add_dff(reduce_and(nl, t)), name + "_expired");
    return t;
  };
  make_timer("arb_timer", word_bits);
  make_timer("ack_timer", word_bits);

  // --- status outputs -------------------------------------------------------------
  nl.add_output(nl.add_dff(nl.add_and(link.state[5], crc_ok)), "rx_done");
  nl.add_output(nl.add_dff(link.state[2]), "tx_active");
  nl.add_output(nl.add_dff(phy.state[3]), "phy_ack");
  output_bus(nl, "rx_word", register_bus(nl, Bus(shift.begin(),
                                                 shift.begin() + word_bits)));

  BenchmarkDesign d{std::move(nl), /*clock_period_ps=*/4000.0, /*datapath_dominated=*/false};
  return d;
}

}  // namespace vpga::designs
