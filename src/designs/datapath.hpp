#pragma once
/// \file datapath.hpp
/// Bus-level structural builders used by the benchmark-design generators.
///
/// A Bus is an ordered little-endian vector of nets. These helpers build the
/// standard datapath idioms (adders, shifters, muxes, reducers, CRC steps,
/// decoders) out of generic gates; the synthesis flow then maps them onto the
/// PLB component library. They are deliberately plain structural generators —
/// the paper's designs come from RTL through Design Compiler, and these
/// produce the same class of gate-level structure.

#include <vector>

#include "netlist/netlist.hpp"

namespace vpga::designs {

using Bus = std::vector<netlist::NodeId>;

/// Fresh primary-input bus "name[0..width)".
Bus input_bus(netlist::Netlist& nl, const std::string& name, int width);
/// Primary outputs "name[0..width)" driven by the bus.
void output_bus(netlist::Netlist& nl, const std::string& name, const Bus& bus);
/// Registers every bit (returns the Q bus).
Bus register_bus(netlist::Netlist& nl, const Bus& d);

/// Ripple-carry add: returns sum bus; carry-out appended if `carry_out`.
Bus ripple_add(netlist::Netlist& nl, const Bus& a, const Bus& b,
               netlist::NodeId carry_in = {}, bool carry_out = false);
/// a - b (two's complement; carry-in forced to 1, b complemented).
Bus ripple_sub(netlist::Netlist& nl, const Bus& a, const Bus& b);
/// a + 1.
Bus increment(netlist::Netlist& nl, const Bus& a);

/// Parallel-prefix (Kogge-Stone) add — logarithmic carry depth, the adder
/// structure synthesis emits under timing constraints for wide datapaths.
Bus prefix_add(netlist::Netlist& nl, const Bus& a, const Bus& b,
               netlist::NodeId carry_in = {}, bool carry_out = false);
/// a - b using the prefix adder.
Bus prefix_sub(netlist::Netlist& nl, const Bus& a, const Bus& b);

/// Leading-zero count of `v` scanning from the MSB, as a ceil(log2(w))+1-bit
/// bus (logarithmic tree, not a serial priority chain). When v == 0 the top
/// bit is set and the remaining bits are unspecified.
Bus leading_zeros(netlist::Netlist& nl, const Bus& v);

/// Bitwise ops over equal-width buses.
Bus bitwise_and(netlist::Netlist& nl, const Bus& a, const Bus& b);
Bus bitwise_or(netlist::Netlist& nl, const Bus& a, const Bus& b);
Bus bitwise_xor(netlist::Netlist& nl, const Bus& a, const Bus& b);
Bus bitwise_not(netlist::Netlist& nl, const Bus& a);

/// 2:1 bus mux: sel == 0 -> a, sel == 1 -> b.
Bus mux_bus(netlist::Netlist& nl, netlist::NodeId sel, const Bus& a, const Bus& b);
/// N:1 bus mux over a power-of-two choice list, select bus little-endian.
Bus mux_tree(netlist::Netlist& nl, const Bus& sel, const std::vector<Bus>& choices);

/// Logarithmic barrel shifter; shift amount is a bus of ceil(log2(w)) bits.
/// `left` chooses direction; vacated bits fill with `fill` (constant 0 unless
/// a net is supplied).
Bus barrel_shift(netlist::Netlist& nl, const Bus& value, const Bus& amount, bool left,
                 netlist::NodeId fill = {});

/// Reductions.
netlist::NodeId reduce_or(netlist::Netlist& nl, const Bus& a);
netlist::NodeId reduce_and(netlist::Netlist& nl, const Bus& a);
netlist::NodeId reduce_xor(netlist::Netlist& nl, const Bus& a);

/// a == b.
netlist::NodeId equal(netlist::Netlist& nl, const Bus& a, const Bus& b);
/// Unsigned a < b (ripple borrow).
netlist::NodeId less_than(netlist::Netlist& nl, const Bus& a, const Bus& b);

/// One combinational CRC step: next = crc shifted by the data width with the
/// given polynomial taps (Galois form), absorbing `data`.
Bus crc_step(netlist::Netlist& nl, const Bus& crc, const Bus& data,
             std::uint64_t polynomial);

/// Binary decoder: out[i] = (sel == i); output width = 2^sel.size().
Bus decode(netlist::Netlist& nl, const Bus& sel);
/// Priority encoder over `req` (LSB wins): returns {grant one-hot bus}.
Bus priority_grant(netlist::Netlist& nl, const Bus& req);

/// Zero/one constants as needed.
netlist::NodeId ground(netlist::Netlist& nl);
netlist::NodeId power(netlist::Netlist& nl);

}  // namespace vpga::designs
