#include "common/assert.hpp"
#include "designs/datapath.hpp"
#include "designs/designs.hpp"

namespace vpga::designs {

using netlist::Netlist;
using netlist::NodeId;

netlist::Netlist make_ripple_adder(int bits) {
  VPGA_ASSERT(bits >= 1);
  Netlist nl("ripple_adder" + std::to_string(bits));
  const Bus a = input_bus(nl, "a", bits);
  const Bus b = input_bus(nl, "b", bits);
  const NodeId cin = nl.add_input("cin");
  const Bus sum = ripple_add(nl, a, b, cin, /*carry_out=*/true);
  output_bus(nl, "sum", Bus(sum.begin(), sum.end() - 1));
  nl.add_output(sum.back(), "cout");
  return nl;
}

netlist::Netlist make_counter(int bits) {
  VPGA_ASSERT(bits >= 1);
  Netlist nl("counter" + std::to_string(bits));
  const NodeId en = nl.add_input("en");
  Bus q = register_bus(nl, Bus(static_cast<std::size_t>(bits), ground(nl)));
  const Bus next = increment(nl, q);
  for (int b = 0; b < bits; ++b)
    nl.set_dff_input(q[static_cast<std::size_t>(b)],
                     nl.add_mux(en, q[static_cast<std::size_t>(b)],
                                next[static_cast<std::size_t>(b)]));
  output_bus(nl, "count", q);
  return nl;
}

netlist::Netlist make_lfsr(int bits, std::uint64_t taps) {
  VPGA_ASSERT(bits >= 2 && bits <= 64);
  Netlist nl("lfsr" + std::to_string(bits));
  const NodeId seed = nl.add_input("seed");  // injected into the feedback
  Bus q = register_bus(nl, Bus(static_cast<std::size_t>(bits), ground(nl)));
  NodeId fb = q.back();
  for (int b = 0; b < bits - 1; ++b)
    if ((taps >> b) & 1) fb = nl.add_xor(fb, q[static_cast<std::size_t>(b)]);
  fb = nl.add_xor(fb, seed);
  nl.set_dff_input(q[0], fb);
  for (std::size_t i = 1; i < q.size(); ++i) nl.set_dff_input(q[i], q[i - 1]);
  output_bus(nl, "state", q);
  return nl;
}

netlist::Netlist make_carry_select_adder(int bits, int block_bits) {
  VPGA_ASSERT(bits >= 2 && block_bits >= 1 && block_bits <= bits);
  Netlist nl("csel_adder" + std::to_string(bits) + "b" + std::to_string(block_bits));
  const Bus a = input_bus(nl, "a", bits);
  const Bus b = input_bus(nl, "b", bits);
  NodeId carry = nl.add_input("cin");
  Bus sum;
  sum.reserve(static_cast<std::size_t>(bits));
  for (int lo = 0; lo < bits; lo += block_bits) {
    const int hi = std::min(bits, lo + block_bits);
    const Bus ab(a.begin() + lo, a.begin() + hi);
    const Bus bb(b.begin() + lo, b.begin() + hi);
    // Both speculative block results; the block carry selects.
    const Bus s0 = ripple_add(nl, ab, bb, ground(nl), /*carry_out=*/true);
    const Bus s1 = ripple_add(nl, ab, bb, power(nl), /*carry_out=*/true);
    const Bus sel = mux_bus(nl, carry, s0, s1);
    sum.insert(sum.end(), sel.begin(), sel.end() - 1);
    carry = sel.back();
  }
  output_bus(nl, "sum", sum);
  nl.add_output(carry, "cout");
  return nl;
}

netlist::Netlist make_prefix_adder(int bits) {
  VPGA_ASSERT(bits >= 2);
  Netlist nl("prefix_adder" + std::to_string(bits));
  const Bus a = input_bus(nl, "a", bits);
  const Bus b = input_bus(nl, "b", bits);
  const NodeId cin = nl.add_input("cin");
  const Bus sum = prefix_add(nl, a, b, cin, /*carry_out=*/true);
  output_bus(nl, "sum", Bus(sum.begin(), sum.end() - 1));
  nl.add_output(sum.back(), "cout");
  return nl;
}

std::vector<BenchmarkDesign> paper_suite(double scale) {
  VPGA_ASSERT(scale > 0.0 && scale <= 1.0);
  auto shrink = [&](int full, int minimum) {
    int v = minimum;
    while (2 * v <= static_cast<int>(full * scale)) v *= 2;  // power of two <= scaled
    return v;
  };
  std::vector<BenchmarkDesign> suite;
  suite.push_back(make_alu(shrink(32, 8)));
  suite.push_back(make_firewire(shrink(16, 4), scale < 1.0 ? 8 : 16));
  suite.push_back(scale < 1.0 ? make_fpu(6, shrink(23, 8)) : make_fpu(8, 23, 4));
  suite.push_back(make_network_switch(shrink(8, 2), shrink(64, 8)));
  return suite;
}

}  // namespace vpga::designs
