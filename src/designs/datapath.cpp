#include "designs/datapath.hpp"

#include "common/assert.hpp"

namespace vpga::designs {

using netlist::Netlist;
using netlist::NodeId;

Bus input_bus(Netlist& nl, const std::string& name, int width) {
  Bus bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) bus.push_back(nl.add_input(name + "[" + std::to_string(i) + "]"));
  return bus;
}

void output_bus(Netlist& nl, const std::string& name, const Bus& bus) {
  for (std::size_t i = 0; i < bus.size(); ++i)
    nl.add_output(bus[i], name + "[" + std::to_string(i) + "]");
}

Bus register_bus(Netlist& nl, const Bus& d) {
  Bus q;
  q.reserve(d.size());
  for (NodeId bit : d) q.push_back(nl.add_dff(bit));
  return q;
}

Bus ripple_add(Netlist& nl, const Bus& a, const Bus& b, NodeId carry_in, bool carry_out) {
  VPGA_ASSERT(a.size() == b.size() && !a.empty());
  NodeId carry = carry_in.valid() ? carry_in : ground(nl);
  Bus sum;
  sum.reserve(a.size() + (carry_out ? 1 : 0));
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum.push_back(nl.add_xor3(a[i], b[i], carry));
    carry = nl.add_maj(a[i], b[i], carry);
  }
  if (carry_out) sum.push_back(carry);
  return sum;
}

Bus ripple_sub(Netlist& nl, const Bus& a, const Bus& b) {
  return ripple_add(nl, a, bitwise_not(nl, b), power(nl));
}

Bus increment(Netlist& nl, const Bus& a) {
  Bus sum;
  sum.reserve(a.size());
  NodeId carry = power(nl);
  for (NodeId bit : a) {
    sum.push_back(nl.add_xor(bit, carry));
    carry = nl.add_and(bit, carry);
  }
  return sum;
}

Bus prefix_add(Netlist& nl, const Bus& a, const Bus& b, NodeId carry_in, bool carry_out) {
  VPGA_ASSERT(a.size() == b.size() && !a.empty());
  const std::size_t w = a.size();
  Bus p = bitwise_xor(nl, a, b);
  Bus g = bitwise_and(nl, a, b);
  // Fold the carry-in into the bit-0 generate.
  if (carry_in.valid()) g[0] = nl.add_or(g[0], nl.add_and(p[0], carry_in));
  Bus gg = g, pp = p;
  for (std::size_t d = 1; d < w; d <<= 1) {
    Bus ng = gg, np = pp;
    for (std::size_t i = w; i-- > d;) {
      ng[i] = nl.add_or(gg[i], nl.add_and(pp[i], gg[i - d]));
      np[i] = nl.add_and(pp[i], pp[i - d]);
    }
    gg = std::move(ng);
    pp = std::move(np);
  }
  Bus sum(w);
  sum[0] = carry_in.valid() ? nl.add_xor(p[0], carry_in) : nl.add_buf(p[0]);
  for (std::size_t i = 1; i < w; ++i) sum[i] = nl.add_xor(p[i], gg[i - 1]);
  if (carry_out) sum.push_back(gg[w - 1]);
  return sum;
}

Bus prefix_sub(Netlist& nl, const Bus& a, const Bus& b) {
  return prefix_add(nl, a, bitwise_not(nl, b), power(nl));
}

namespace {
struct LzNode {
  Bus count;          // log2(width) bits, valid when !zero
  netlist::NodeId zero;  // the whole slice is zero
};

LzNode lz_rec(Netlist& nl, const Bus& v) {
  if (v.size() == 1) return {Bus{}, nl.add_not(v[0])};
  const std::size_t half = v.size() / 2;
  const LzNode lo = lz_rec(nl, Bus(v.begin(), v.begin() + static_cast<long>(half)));
  const LzNode hi = lz_rec(nl, Bus(v.begin() + static_cast<long>(half), v.end()));
  LzNode out;
  out.zero = nl.add_and(hi.zero, lo.zero);
  out.count = mux_bus(nl, hi.zero, hi.count, lo.count);
  out.count.push_back(hi.zero);  // MSB: the whole upper half was zero
  return out;
}
}  // namespace

Bus leading_zeros(Netlist& nl, const Bus& v) {
  VPGA_ASSERT(!v.empty());
  // Pad (at the LSB side) to a power of two with ones: padding never adds
  // leading zeros because the scan starts at the MSB.
  std::size_t padded = 1;
  while (padded < v.size()) padded <<= 1;
  Bus work(padded - v.size(), power(nl));
  work.insert(work.end(), v.begin(), v.end());
  const LzNode r = lz_rec(nl, work);
  Bus count = r.count;
  count.push_back(r.zero);  // all-zero input: count == padded width
  return count;
}

Bus bitwise_and(Netlist& nl, const Bus& a, const Bus& b) {
  VPGA_ASSERT(a.size() == b.size());
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(nl.add_and(a[i], b[i]));
  return out;
}

Bus bitwise_or(Netlist& nl, const Bus& a, const Bus& b) {
  VPGA_ASSERT(a.size() == b.size());
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(nl.add_or(a[i], b[i]));
  return out;
}

Bus bitwise_xor(Netlist& nl, const Bus& a, const Bus& b) {
  VPGA_ASSERT(a.size() == b.size());
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(nl.add_xor(a[i], b[i]));
  return out;
}

Bus bitwise_not(Netlist& nl, const Bus& a) {
  Bus out;
  out.reserve(a.size());
  for (NodeId bit : a) out.push_back(nl.add_not(bit));
  return out;
}

Bus mux_bus(Netlist& nl, NodeId sel, const Bus& a, const Bus& b) {
  VPGA_ASSERT(a.size() == b.size());
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(nl.add_mux(sel, a[i], b[i]));
  return out;
}

Bus mux_tree(Netlist& nl, const Bus& sel, const std::vector<Bus>& choices) {
  VPGA_ASSERT(!choices.empty());
  VPGA_ASSERT(choices.size() == (std::size_t{1} << sel.size()));
  std::vector<Bus> level = choices;
  for (std::size_t s = 0; s < sel.size(); ++s) {
    std::vector<Bus> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(mux_bus(nl, sel[s], level[i], level[i + 1]));
    level = std::move(next);
  }
  return level[0];
}

Bus barrel_shift(Netlist& nl, const Bus& value, const Bus& amount, bool left, NodeId fill) {
  const NodeId pad = fill.valid() ? fill : ground(nl);
  Bus cur = value;
  const int w = static_cast<int>(value.size());
  for (std::size_t s = 0; s < amount.size(); ++s) {
    const int dist = 1 << s;
    Bus shifted(cur.size());
    for (int i = 0; i < w; ++i) {
      const int src = left ? i - dist : i + dist;
      shifted[static_cast<std::size_t>(i)] =
          (src >= 0 && src < w) ? cur[static_cast<std::size_t>(src)] : pad;
    }
    cur = mux_bus(nl, amount[s], cur, shifted);
  }
  return cur;
}

namespace {
NodeId reduce(Netlist& nl, const Bus& a, NodeId (Netlist::*op)(NodeId, NodeId)) {
  VPGA_ASSERT(!a.empty());
  // Balanced tree keeps logic depth logarithmic, as synthesis would.
  std::vector<NodeId> level = a;
  while (level.size() > 1) {
    std::vector<NodeId> next;
    next.reserve(level.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back((nl.*op)(level[i], level[i + 1]));
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}
}  // namespace

NodeId reduce_or(Netlist& nl, const Bus& a) { return reduce(nl, a, &Netlist::add_or); }
NodeId reduce_and(Netlist& nl, const Bus& a) { return reduce(nl, a, &Netlist::add_and); }
NodeId reduce_xor(Netlist& nl, const Bus& a) { return reduce(nl, a, &Netlist::add_xor); }

NodeId equal(Netlist& nl, const Bus& a, const Bus& b) {
  return nl.add_not(reduce_or(nl, bitwise_xor(nl, a, b)));
}

NodeId less_than(Netlist& nl, const Bus& a, const Bus& b) {
  VPGA_ASSERT(a.size() == b.size());
  // a < b  <=>  no carry out of a + ~b + 1 (prefix adder: log depth).
  const Bus diff = prefix_add(nl, a, bitwise_not(nl, b), power(nl), /*carry_out=*/true);
  return nl.add_not(diff.back());
}

Bus crc_step(Netlist& nl, const Bus& crc, const Bus& data, std::uint64_t polynomial) {
  // Parallel (matrix) CRC: over GF(2) the advanced state is linear in the
  // current state and the data word, so each next-state bit is the XOR of a
  // fixed subset of state/data bits. The participation masks come from
  // symbolically running the Galois LFSR recurrence on bitmasks; each output
  // is then one balanced XOR tree — this is how RTL CRC generators unroll
  // wide datapaths without a serial feedback chain.
  const std::size_t w = crc.size();
  VPGA_ASSERT(w <= 64 && data.size() <= 64);
  struct Masks {
    std::uint64_t state;
    std::uint64_t data;
  };
  std::vector<Masks> m(w);
  std::vector<Masks> next;
  for (std::size_t i = 0; i < w; ++i) m[i] = {std::uint64_t{1} << i, 0};
  for (std::size_t k = 0; k < data.size(); ++k) {
    const Masks feedback = {m[w - 1].state, m[w - 1].data | (std::uint64_t{1} << k)};
    next.assign(w, Masks{});
    next[0] = feedback;
    for (std::size_t i = 1; i < w; ++i) {
      next[i] = m[i - 1];
      if ((polynomial >> i) & 1) {
        next[i].state ^= feedback.state;
        next[i].data ^= feedback.data;
      }
    }
    m.swap(next);
  }
  Bus out(w);
  for (std::size_t i = 0; i < w; ++i) {
    Bus terms;
    for (std::size_t b = 0; b < w; ++b)
      if ((m[i].state >> b) & 1) terms.push_back(crc[b]);
    for (std::size_t b = 0; b < data.size(); ++b)
      if ((m[i].data >> b) & 1) terms.push_back(data[b]);
    out[i] = terms.empty() ? ground(nl) : reduce_xor(nl, terms);
  }
  return out;
}

Bus decode(Netlist& nl, const Bus& sel) {
  const std::size_t n = std::size_t{1} << sel.size();
  Bus out;
  out.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    NodeId term;
    for (std::size_t b = 0; b < sel.size(); ++b) {
      const NodeId lit = (v >> b) & 1 ? sel[b] : nl.add_not(sel[b]);
      term = term.valid() ? nl.add_and(term, lit) : lit;
    }
    out.push_back(term);
  }
  return out;
}

Bus priority_grant(Netlist& nl, const Bus& req) {
  Bus grant;
  grant.reserve(req.size());
  NodeId any_above = ground(nl);
  for (NodeId r : req) {
    grant.push_back(nl.add_and(r, nl.add_not(any_above)));
    any_above = nl.add_or(any_above, r);
  }
  return grant;
}

NodeId ground(Netlist& nl) { return nl.add_constant(false); }
NodeId power(Netlist& nl) { return nl.add_constant(true); }

}  // namespace vpga::designs
