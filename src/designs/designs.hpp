#pragma once
/// \file designs.hpp
/// The paper's four benchmark designs plus small tutorial circuits.
///
/// The paper evaluates ALU, FPU (~24k gates), Network switch (~80k gates) —
/// all datapath-dominated — and Firewire, a small controller dominated by
/// control/sequential logic. The original RTL is proprietary, so these
/// structural generators synthesize netlists of the same character and
/// approximate scale (see DESIGN.md, substitution table). All generators are
/// parametric: tests use reduced widths, the bench harness uses paper scale.

#include <vector>

#include "netlist/netlist.hpp"

namespace vpga::designs {

/// A benchmark design instance: the netlist plus its evaluation parameters.
struct BenchmarkDesign {
  netlist::Netlist netlist;
  double clock_period_ps = 0.0;
  bool datapath_dominated = true;
};

/// 32-bit single-cycle ALU: add/sub/and/or/xor/shift-left/shift-right/set-
/// less-than with registered operands and result, zero flag.
BenchmarkDesign make_alu(int width = 32);

/// Floating-point unit: parallel multiply (Wallace-tree multiplier over the
/// full significand) and add (align/normalize barrel shifters, LZD) paths
/// with pipeline registers; `lanes` instantiates independent SIMD pipelines.
/// The paper-scale instance is the quad-lane single-precision configuration
/// used by paper_suite() (~the paper's 24k-gate class).
BenchmarkDesign make_fpu(int exp_bits = 8, int mant_bits = 23, int lanes = 1);

/// Input-queued packet switch: per-port ingress CRC check, header decode and
/// alignment shifter, request/grant arbitration per output, full crossbar,
/// egress CRC regeneration, registered boundaries.
BenchmarkDesign make_network_switch(int ports = 8, int width = 64);

/// Firewire-style link-layer controller: register file, protocol FSMs,
/// CRC-16 datapath, timers and shift registers. Sequential-dominated.
BenchmarkDesign make_firewire(int reg_words = 16, int word_bits = 16);

/// The evaluation suite of the paper's Tables 1 and 2, in paper order
/// {ALU, Firewire, FPU, Network switch}. `scale` < 1.0 shrinks the datapath
/// widths for fast test runs (1.0 = paper scale).
std::vector<BenchmarkDesign> paper_suite(double scale = 1.0);

/// Small tutorial circuits (examples/tests).
netlist::Netlist make_ripple_adder(int bits);
netlist::Netlist make_counter(int bits);
netlist::Netlist make_lfsr(int bits, std::uint64_t taps);
/// Carry-select adder: ripple blocks of `block_bits` computed for both carry
/// values, selected by the incoming block carry (area/delay middle ground).
netlist::Netlist make_carry_select_adder(int bits, int block_bits);
/// Parallel-prefix (Kogge-Stone) adder.
netlist::Netlist make_prefix_adder(int bits);

}  // namespace vpga::designs
