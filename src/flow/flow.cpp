#include "flow/flow.hpp"

#include <cmath>
#include <mutex>
#include <thread>

#include "common/assert.hpp"
#include "common/concurrency.hpp"
#include "obs/obs.hpp"
#include "place/placement.hpp"
#include "route/router.hpp"
#include "synth/buffering.hpp"
#include "synth/mapper.hpp"

namespace vpga::flow {
namespace {

/// The flow body proper; run_flow wraps it in an ObsContext so every
/// obs::Span / obs::count below (and inside the stage modules) lands in this
/// run's report.
FlowReport run_flow_impl(const designs::BenchmarkDesign& design,
                         const core::PlbArchitecture& arch, char which,
                         const FlowOptions& opts) {
  FlowReport rep;
  rep.design = design.netlist.name();
  rep.arch = arch.name;
  rep.flow = which;
  rep.clock_period_ps = design.clock_period_ps;

  // Stage-boundary checker: every transformation below is bracketed by a
  // check() + enforce() pair, so an illegal IR state aborts the flow at the
  // boundary where it was introduced (docs/VERIFY.md).
  verify::VerifyOptions vopts;
  vopts.level = opts.verify_level;
  vopts.equiv.seed = opts.seed;
  vopts.cec = opts.cec;
  verify::FlowVerifier verifier(arch, vopts);
  const netlist::Netlist& golden = design.netlist;
  {
    const obs::Span span("stage.verify");
    verify::enforce(verifier.check(verify::Stage::kInput, golden));
  }

  // 1. Synthesis + technology mapping to the restricted component library
  //    (Design Compiler stage), delay-oriented.
  synth::MapResult mapped;
  {
    const obs::Span span("stage.map");
    mapped = synth::tech_map(design.netlist, synth::cell_target(arch),
                             synth::Objective::kDelay);
    verify::enforce(verifier.check(verify::Stage::kPostMap, mapped.netlist, &golden));
  }

  // 2. Regularity-driven logic compaction into PLB configurations (the
  //    re-cover runs on the pre-mapping structure; area is accounted against
  //    the mapped netlist, as the paper's flow does).
  compact::CompactionResult compacted;
  {
    const obs::Span span("stage.compact");
    compacted = compact::compact_from(design.netlist, mapped.netlist, arch);
    rep.compaction = compacted.report;
    verify::enforce(verifier.check(verify::Stage::kPostCompact, compacted.netlist, &golden));
  }

  // 3. Physical synthesis: high-fanout buffering, then detailed placement.
  {
    const obs::Span span("stage.buffer");
    synth::insert_buffers(compacted.netlist, opts.max_fanout);
    verify::enforce(verifier.check(verify::Stage::kPostBuffer, compacted.netlist, &golden));
  }
  const netlist::Netlist& nl = compacted.netlist;
  rep.gate_count_nand2 = nl.stats().nand2_equiv;

  place::PlacerOptions popts;
  popts.seed = opts.seed;
  popts.utilization = opts.asic_utilization;

  const library::EffortModel process;
  timing::StaOptions sta;
  sta.clock_period_ps = design.clock_period_ps;
  sta.process = process;

  place::Placement placed;
  {
    const obs::Span span("stage.place");
    placed = place::place(nl, popts);
    // Timing-driven placement refinement (Dolphin's physical synthesis is
    // timing-driven): one STA pass feeds criticality weights into a re-place.
    const auto t = timing::analyze(nl, placed, sta);
    popts.criticality = t.criticality;
    placed = place::place(nl, popts);
  }

  if (which == 'a') {
    // flow a: ASIC implementation of the restricted-library netlist.
    rep.die_area_um2 = place::asic_die_area(nl, opts.asic_utilization);
    const double cell_pitch = std::max(4.0, placed.width_um / 64.0);
    route::RoutingResult routed;
    {
      const obs::Span span("stage.route");
      routed = route::route(nl, placed, cell_pitch);
    }
    rep.wirelength_um = routed.total_wirelength_um;
    sta.net_length_um = routed.net_length_um;
    const obs::Span span("stage.sta");
    const auto t = timing::analyze(nl, placed, sta);
    rep.avg_slack_top10_ps = t.avg_slack_top10_ps;
    rep.wns_ps = t.wns_ps;
    rep.critical_delay_ps = t.critical_delay_ps;
    rep.verify = verifier.report();
    return rep;
  }

  // flow b: legalize into the PLB array inside a timing-driven loop.
  pack::PackOptions packo;
  pack::PackedDesign packed;
  for (int iter = 0; iter < std::max(1, opts.pack_timing_iterations); ++iter) {
    const obs::Span span("stage.pack");
    obs::count("flow.pack_sta_iterations");
    packed = pack::pack(nl, placed, arch, packo);
    // Timing on the legalized design feeds criticality back into the next
    // packing round (the paper's packing <-> physical-synthesis iteration).
    timing::StaOptions pre = sta;
    const auto t = timing::analyze(nl, packed.legal, pre);
    packo.criticality = t.criticality;
  }
  verify::enforce(verifier.check(verify::Stage::kPostPack, nl, &golden, &packed));

  rep.die_area_um2 = packed.die_area_um2;
  rep.plbs = packed.plbs_used;
  rep.max_displacement_um = packed.max_displacement_um;

  // ASIC-style global+detailed routing over the array (upper metal layers),
  // then the via-budget gate: the routed + configured design must fit the
  // tiles' candidate via sites.
  route::RoutingResult routed;
  {
    const obs::Span span("stage.route");
    routed = route::route(nl, packed.legal, packed.tile_size_um);
    verify::enforce(verifier.check(verify::Stage::kPostRoute, nl, nullptr, &packed));
  }
  rep.wirelength_um = routed.total_wirelength_um;
  sta.net_length_um = routed.net_length_um;
  const obs::Span span("stage.sta");
  const auto t = timing::analyze(nl, packed.legal, sta);
  rep.avg_slack_top10_ps = t.avg_slack_top10_ps;
  rep.wns_ps = t.wns_ps;
  rep.critical_delay_ps = t.critical_delay_ps;
  rep.verify = verifier.report();
  return rep;
}

/// Backing store of flow::run_tally(). Concurrent run_flow calls (parallel
/// compare) increment it from four threads, hence the lock discipline.
struct RunTally {
  std::mutex mu;
  long long runs FABRIC_GUARDED_BY(mu) = 0;
  long long parallel_compares FABRIC_GUARDED_BY(mu) = 0;
};

RunTally& run_tally_storage() {
  static RunTally tally;
  return tally;
}

}  // namespace

FlowReport run_flow(const designs::BenchmarkDesign& design, const core::PlbArchitecture& arch,
                    char which, const FlowOptions& opts) {
  VPGA_ASSERT(which == 'a' || which == 'b');
  // Forensics: dump the flight-recorder ring on terminate / fatal signal,
  // so any crash below ships its last-N-events context (events.hpp).
  obs::flight::install_crash_handlers();
  obs::ObsContext ctx(opts.trace, opts.metrics, opts.memtrack);
  const obs::ScopedObs bind(&ctx);
  obs::flight_event("flow.begin");
  obs::flight_event("flow.seed", static_cast<long long>(opts.seed));
  FlowReport rep = run_flow_impl(design, arch, which, opts);
  if (opts.memtrack) {
    // Run-wide totals alongside the per-span family published at span close.
    const obs::memtrack::Totals& t = ctx.memtracker().totals();
    ctx.metrics().add("flow.alloc_bytes", t.alloc_bytes);
    ctx.metrics().add("flow.alloc_count", t.alloc_count);
    ctx.metrics().add("flow.peak_live_bytes", t.peak_live_bytes);
  }
  rep.obs = ctx.report();
  obs::flight_event("flow.end");
  {
    RunTally& tally = run_tally_storage();
    const std::lock_guard<std::mutex> lock(tally.mu);
    ++tally.runs;
  }
  return rep;
}

RunTallySnapshot run_tally() {
  RunTally& tally = run_tally_storage();
  const std::lock_guard<std::mutex> lock(tally.mu);
  return {tally.runs, tally.parallel_compares};
}

DesignComparison compare_architectures(const designs::BenchmarkDesign& design,
                                       const FlowOptions& opts) {
  DesignComparison c;
  const auto gran = core::PlbArchitecture::granular();
  const auto lut = core::PlbArchitecture::lut_based();
  if (!opts.parallel_compare) {
    c.granular_a = run_flow(design, gran, 'a', opts);
    c.granular_b = run_flow(design, gran, 'b', opts);
    c.lut_a = run_flow(design, lut, 'a', opts);
    c.lut_b = run_flow(design, lut, 'b', opts);
    return c;
  }
  {
    RunTally& tally = run_tally_storage();
    const std::lock_guard<std::mutex> lock(tally.mu);
    ++tally.parallel_compares;
  }
  // The four runs share only immutable inputs (design, architectures, opts);
  // each run_flow binds a fresh thread-local ObsContext, so traces and
  // metrics never interleave and the reports match the serial path exactly.
  std::thread tga([&] { c.granular_a = run_flow(design, gran, 'a', opts); });
  std::thread tgb([&] { c.granular_b = run_flow(design, gran, 'b', opts); });
  std::thread tla([&] { c.lut_a = run_flow(design, lut, 'a', opts); });
  std::thread tlb([&] { c.lut_b = run_flow(design, lut, 'b', opts); });
  tga.join();
  tgb.join();
  tla.join();
  tlb.join();
  return c;
}

}  // namespace vpga::flow
