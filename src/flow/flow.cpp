#include "flow/flow.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "place/placement.hpp"
#include "route/router.hpp"
#include "synth/buffering.hpp"
#include "synth/mapper.hpp"

namespace vpga::flow {

FlowReport run_flow(const designs::BenchmarkDesign& design, const core::PlbArchitecture& arch,
                    char which, const FlowOptions& opts) {
  VPGA_ASSERT(which == 'a' || which == 'b');
  FlowReport rep;
  rep.design = design.netlist.name();
  rep.arch = arch.name;
  rep.flow = which;
  rep.clock_period_ps = design.clock_period_ps;

  // Stage-boundary checker: every transformation below is bracketed by a
  // check() + enforce() pair, so an illegal IR state aborts the flow at the
  // boundary where it was introduced (docs/VERIFY.md).
  verify::VerifyOptions vopts;
  vopts.level = opts.verify_level;
  vopts.equiv.seed = opts.seed;
  verify::FlowVerifier verifier(arch, vopts);
  const netlist::Netlist& golden = design.netlist;
  verify::enforce(verifier.check(verify::Stage::kInput, golden));

  // 1. Synthesis + technology mapping to the restricted component library
  //    (Design Compiler stage), delay-oriented.
  auto mapped = synth::tech_map(design.netlist, synth::cell_target(arch),
                                synth::Objective::kDelay);
  verify::enforce(verifier.check(verify::Stage::kPostMap, mapped.netlist, &golden));

  // 2. Regularity-driven logic compaction into PLB configurations (the
  //    re-cover runs on the pre-mapping structure; area is accounted against
  //    the mapped netlist, as the paper's flow does).
  auto compacted = compact::compact_from(design.netlist, mapped.netlist, arch);
  rep.compaction = compacted.report;
  verify::enforce(verifier.check(verify::Stage::kPostCompact, compacted.netlist, &golden));

  // 3. Physical synthesis: high-fanout buffering, then detailed placement.
  synth::insert_buffers(compacted.netlist, opts.max_fanout);
  const netlist::Netlist& nl = compacted.netlist;
  verify::enforce(verifier.check(verify::Stage::kPostBuffer, nl, &golden));
  rep.gate_count_nand2 = nl.stats().nand2_equiv;

  place::PlacerOptions popts;
  popts.seed = opts.seed;
  popts.utilization = opts.asic_utilization;
  auto placed = place::place(nl, popts);

  const library::EffortModel process;
  timing::StaOptions sta;
  sta.clock_period_ps = design.clock_period_ps;
  sta.process = process;

  // Timing-driven placement refinement (Dolphin's physical synthesis is
  // timing-driven): one STA pass feeds criticality weights into a re-place.
  {
    const auto t = timing::analyze(nl, placed, sta);
    popts.criticality = t.criticality;
    placed = place::place(nl, popts);
  }

  if (which == 'a') {
    // flow a: ASIC implementation of the restricted-library netlist.
    rep.die_area_um2 = place::asic_die_area(nl, opts.asic_utilization);
    const double cell_pitch = std::max(4.0, placed.width_um / 64.0);
    const auto routed = route::route(nl, placed, cell_pitch);
    rep.wirelength_um = routed.total_wirelength_um;
    sta.net_length_um = routed.net_length_um;
    const auto t = timing::analyze(nl, placed, sta);
    rep.avg_slack_top10_ps = t.avg_slack_top10_ps;
    rep.wns_ps = t.wns_ps;
    rep.critical_delay_ps = t.critical_delay_ps;
    rep.verify = verifier.report();
    return rep;
  }

  // flow b: legalize into the PLB array inside a timing-driven loop.
  pack::PackOptions packo;
  pack::PackedDesign packed;
  for (int iter = 0; iter < std::max(1, opts.pack_timing_iterations); ++iter) {
    packed = pack::pack(nl, placed, arch, packo);
    // Timing on the legalized design feeds criticality back into the next
    // packing round (the paper's packing <-> physical-synthesis iteration).
    timing::StaOptions pre = sta;
    const auto t = timing::analyze(nl, packed.legal, pre);
    packo.criticality = t.criticality;
  }
  verify::enforce(verifier.check(verify::Stage::kPostPack, nl, &golden, &packed));

  rep.die_area_um2 = packed.die_area_um2;
  rep.plbs = packed.plbs_used;
  rep.max_displacement_um = packed.max_displacement_um;

  // ASIC-style global+detailed routing over the array (upper metal layers).
  const auto routed = route::route(nl, packed.legal, packed.tile_size_um);
  rep.wirelength_um = routed.total_wirelength_um;
  sta.net_length_um = routed.net_length_um;
  const auto t = timing::analyze(nl, packed.legal, sta);
  rep.avg_slack_top10_ps = t.avg_slack_top10_ps;
  rep.wns_ps = t.wns_ps;
  rep.critical_delay_ps = t.critical_delay_ps;
  rep.verify = verifier.report();
  return rep;
}

DesignComparison compare_architectures(const designs::BenchmarkDesign& design,
                                       const FlowOptions& opts) {
  DesignComparison c;
  const auto gran = core::PlbArchitecture::granular();
  const auto lut = core::PlbArchitecture::lut_based();
  c.granular_a = run_flow(design, gran, 'a', opts);
  c.granular_b = run_flow(design, gran, 'b', opts);
  c.lut_a = run_flow(design, lut, 'a', opts);
  c.lut_b = run_flow(design, lut, 'b', opts);
  return c;
}

}  // namespace vpga::flow
