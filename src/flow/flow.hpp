#pragma once
/// \file flow.hpp
/// The paper's end-to-end design flows (Figure 6).
///
///   flow a — the standard-cell ASIC flow using the restricted library of
///            PLB component cells (the Packing step is skipped);
///   flow b — the full VPGA flow: the compacted design is legalized into a
///            regular PLB array by the packer, inside an iterative loop with
///            timing analysis (the paper's packing <-> Dolphin loop), then
///            routed over the array and timed post-layout.
///
/// Both flows share synthesis, mapping, compaction, buffering, placement,
/// routing and STA, so the a/b deltas isolate exactly what the paper's
/// Tables 1 and 2 measure: the cost of regularity and the quality of the PLB
/// architecture.

#include <string>

#include "compact/compact.hpp"
#include "core/plb.hpp"
#include "designs/designs.hpp"
#include "obs/obs.hpp"
#include "pack/packer.hpp"
#include "timing/sta.hpp"
#include "verify/verify.hpp"

namespace vpga::flow {

struct FlowOptions {
  std::uint64_t seed = 1;
  /// Packing <-> timing iterations in flow b (paper: "This iteration loop is
  /// repeated until all the components have been alloted legal locations").
  int pack_timing_iterations = 2;
  int max_fanout = 8;
  double asic_utilization = 0.85;
  /// Stage-boundary verification (docs/VERIFY.md). Every stage of either
  /// flow is bracketed by checker calls; the flow aborts on error-severity
  /// findings. kLintEquiv additionally checks each stage against the input
  /// design on random stimulus; kExact proves equivalence with the SAT-backed
  /// miter checker (src/verify/cec.hpp), tuned by `cec`.
  verify::VerifyLevel verify_level = verify::VerifyLevel::kLint;
  /// Exact-equivalence knobs (tier ceilings, SAT conflict budget); only read
  /// at verify_level kExact.
  verify::CecOptions cec;
  /// Record a nested span tree of the run (docs/OBSERVABILITY.md); exported
  /// from FlowReport::obs as Chrome trace-event JSON. Off = zero overhead.
  bool trace = false;
  /// Record named work counters/gauges/histograms from every stage.
  bool metrics = false;
  /// Attribute heap allocations (bytes, count, peak live) to the innermost
  /// active span via the global operator new/delete hooks; surfaces as the
  /// "<span>.alloc_bytes" counter family and per-span trace args. Off =
  /// zero overhead beyond one thread-local load per allocation, and the
  /// flow result is byte-identical either way (tests/test_determinism.cpp).
  bool memtrack = false;
  /// Run compare_architectures' four flows on four threads. Each run binds
  /// its own ObsContext, so traces/metrics stay per-run; results are
  /// deterministic and identical to the serial path.
  bool parallel_compare = false;
};

struct FlowReport {
  std::string design;
  std::string arch;
  char flow = 'a';
  double clock_period_ps = 0.0;
  double gate_count_nand2 = 0.0;       ///< paper Table 2 "No. of gates"
  double die_area_um2 = 0.0;           ///< paper Table 1
  double avg_slack_top10_ps = 0.0;     ///< paper Table 2
  double wns_ps = 0.0;
  double critical_delay_ps = 0.0;
  double wirelength_um = 0.0;
  int plbs = 0;                        ///< flow b only
  double max_displacement_um = 0.0;    ///< flow b legalization perturbation
  compact::CompactionReport compaction;
  /// Findings from all stage-boundary checks (empty at verify_level kOff;
  /// never contains errors — those abort the flow).
  verify::VerifyReport verify;
  /// Trace spans + metrics of this run (empty unless FlowOptions::trace /
  /// metrics were set; see docs/OBSERVABILITY.md).
  obs::ObsReport obs;
};

/// Runs one flow (a or b) for one design on one PLB architecture.
FlowReport run_flow(const designs::BenchmarkDesign& design, const core::PlbArchitecture& arch,
                    char which, const FlowOptions& opts = {});

/// Convenience: both flows on both paper architectures for one design
/// (the 4-column structure of Tables 1 and 2).
struct DesignComparison {
  FlowReport granular_a, granular_b, lut_a, lut_b;
};
DesignComparison compare_architectures(const designs::BenchmarkDesign& design,
                                       const FlowOptions& opts = {});

/// Process-lifetime flow counters. Unlike the per-run ObsContext metrics
/// (which die with their FlowReport), these accumulate across every run in
/// the process — including the four concurrent runs of a parallel compare —
/// so they are mutex-guarded (FABRIC_GUARDED_BY, src/common/concurrency.hpp)
/// and read through a locked snapshot.
struct RunTallySnapshot {
  long long runs = 0;               ///< completed run_flow calls
  long long parallel_compares = 0;  ///< compare_architectures parallel paths
};
[[nodiscard]] RunTallySnapshot run_tally();

}  // namespace vpga::flow
