#include "synth/match_index.hpp"

#include "common/assert.hpp"

namespace vpga::synth {

MatchIndex::MatchIndex(const MapTarget& target) {
  VPGA_ASSERT_MSG(target.options.size() <= kMaxOptions,
                  "MatchIndex supports at most 32 match options");
  const auto& canon = logic::npn_canonical_table3();

  // Test each NPN class representative once per option...
  std::array<OptionMask, 256> rep_mask{};
  for (unsigned tt = 0; tt < 256; ++tt) {
    if (canon[tt] != tt) continue;  // not a representative
    OptionMask m = 0;
    for (std::size_t oi = 0; oi < target.options.size(); ++oi)
      if (target.options[oi].coverage.test(tt)) m |= OptionMask{1} << oi;
    rep_mask[tt] = m;
    if (m != 0) ++matchable_classes_;
  }
  // ...then flood the class answer over every member through the canonical
  // table, so a lookup is a single load with no canonicalization at map time.
  for (unsigned tt = 0; tt < 256; ++tt) mask_[tt] = rep_mask[canon[tt]];

  // Closure audit: coverage sets are documented NPN-closed (mapper.hpp); a
  // target violating that must fail loudly here, not mis-match in the DP.
  for (unsigned tt = 0; tt < 256; ++tt) {
    OptionMask exact = 0;
    for (std::size_t oi = 0; oi < target.options.size(); ++oi)
      if (target.options[oi].coverage.test(tt)) exact |= OptionMask{1} << oi;
    VPGA_ASSERT_MSG(exact == mask_[tt],
                    "match option coverage is not closed under NPN");
  }
}

}  // namespace vpga::synth
