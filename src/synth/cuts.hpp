#pragma once
/// \file cuts.hpp
/// Priority-cut enumeration over an AIG (k = 3, matching the 3-input PLB
/// component cells and configurations).
///
/// Every AND node receives a bounded set of 3-feasible cuts, each with its
/// local function as a 3-variable truth table over the (sorted) cut leaves.
/// The mapper and the compaction pass both consume these cuts and match the
/// functions exactly against coverage sets.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "logic/truth_table.hpp"

namespace vpga::synth {

/// One cut: up to 3 leaves (AIG node indices, strictly increasing) and the
/// root's function over them.
struct Cut {
  std::array<std::uint32_t, 3> leaves{};
  std::uint8_t size = 0;
  /// Truth table over 3 variables; variables >= size are don't-cares.
  std::uint8_t tt = 0;

  [[nodiscard]] bool contains(std::uint32_t n) const {
    for (int i = 0; i < size; ++i)
      if (leaves[static_cast<std::size_t>(i)] == n) return true;
    return false;
  }
  friend bool operator==(const Cut& a, const Cut& b) {
    return a.size == b.size && a.leaves == b.leaves;
  }
};

/// Per-node cut sets for the whole AIG, stored CSR-style: one flat pool of
/// cuts plus per-node offsets, so the database is two allocations total and
/// per-cut side tables (e.g. the mapper's match masks) can be indexed flat by
/// `offset(node) + cut_index`.
class CutDatabase {
 public:
  /// Enumerates cuts bottom-up, keeping at most `cut_limit` cuts per node
  /// (smallest-leaf-count first — a good priority for exact matching). Every
  /// node also keeps its trivial cut implicitly (leaf use).
  CutDatabase(const aig::Aig& g, int cut_limit = 8);

  [[nodiscard]] std::span<const Cut> cuts(std::uint32_t node) const {
    return {pool_.data() + offsets_[node], offsets_[node + 1] - offsets_[node]};
  }
  /// Flat pool index of `node`'s first cut.
  [[nodiscard]] std::size_t offset(std::uint32_t node) const { return offsets_[node]; }
  [[nodiscard]] std::size_t total_cuts() const { return pool_.size(); }

 private:
  std::vector<Cut> pool_;
  std::vector<std::uint32_t> offsets_;
};

}  // namespace vpga::synth
