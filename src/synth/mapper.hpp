#pragma once
/// \file mapper.hpp
/// Technology mapping: covers an AIG with 3-input matches from a target set.
///
/// This stands in for the paper's Design Compiler mapping step (restricted
/// library of PLB component cells) AND, with a configuration target and the
/// area objective, for the "regularity driven logic compaction" step: the
/// compaction pass re-covers the design with PLB *configurations* (MX, ND3,
/// NDMX, XOAMX, XOANDMX), which is what lets more logic collapse into PLBs.
///
/// Matching is exact: a cut is implementable by an option iff the cut's
/// 3-variable truth table is in the option's coverage set (coverage sets are
/// closed under the via-programmable pin freedoms, so no NPN search is
/// needed at map time).

#include <optional>
#include <string>
#include <vector>

#include "core/plb.hpp"
#include "library/cells.hpp"
#include "netlist/netlist.hpp"

namespace vpga::synth {

/// One way of implementing a cut.
struct MatchOption {
  std::string name;
  logic::FnSet3 coverage;
  library::TimingArc arc;
  double area_um2 = 0.0;
  /// Set when the option is a library cell (pre-compaction netlists).
  std::optional<library::CellKind> cell;
  /// Set when the option is a PLB configuration (compacted netlists);
  /// raw core::ConfigKind value.
  std::uint8_t config_tag = netlist::Node::kNoConfig;
};

/// A complete mapping target (plus the inverter used for polarity repair).
struct MapTarget {
  std::vector<MatchOption> options;
  MatchOption inverter;
  MatchOption buffer;
};

/// The component-cell target of an architecture: LUT3+ND3WI for the LUT-based
/// PLB, MUX2+ND3WI for the granular PLB (the XOA is functionally a MUX2 and
/// is claimed at packing time).
MapTarget cell_target(const core::PlbArchitecture& arch,
                      const library::CellLibrary& lib = library::CellLibrary::standard());

/// The configuration target of an architecture (used by the compaction pass).
MapTarget config_target(const core::PlbArchitecture& arch,
                        const library::CellLibrary& lib = library::CellLibrary::standard());

enum class Objective {
  kDelay,  ///< minimize arrival times (area flow breaks ties)
  kArea,   ///< minimize area flow (arrival breaks ties)
};

struct MapStats {
  double area_um2 = 0.0;     ///< total mapped gate area (the paper's metric)
  int nodes = 0;             ///< mapped combinational nodes (incl. inv/buf)
  int depth = 0;             ///< logic depth in mapped stages
  double est_delay_ps = 0.0; ///< arrival estimate at the worst output
};

struct MapResult {
  netlist::Netlist netlist;
  MapStats stats;
};

/// Maps `src` (any well-formed netlist) onto the target. The result is
/// functionally equivalent (verified by the property tests via random
/// simulation) and carries cell / config annotations per node.
MapResult tech_map(const netlist::Netlist& src, const MapTarget& target,
                   Objective objective, int cut_limit = 8);

}  // namespace vpga::synth
