#pragma once
/// \file buffering.hpp
/// High-fanout buffering — part of the "physical synthesis" repertoire the
/// paper delegates to Dolphin (buffer insertion to meet timing constraints).

#include "library/cells.hpp"
#include "netlist/netlist.hpp"

namespace vpga::synth {

/// Splits every net with more than `max_fanout` sinks by inserting BUF cells
/// (balanced groups; applied repeatedly so the buffer tree itself obeys the
/// limit). Returns the number of buffers inserted. Works on mapped or generic
/// netlists; inserted nodes carry the BUF cell annotation.
int insert_buffers(netlist::Netlist& nl, int max_fanout,
                   const library::CellLibrary& lib = library::CellLibrary::standard());

}  // namespace vpga::synth
