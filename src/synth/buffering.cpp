#include "synth/buffering.hpp"

#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace vpga::synth {

int insert_buffers(netlist::Netlist& nl, int max_fanout, const library::CellLibrary& lib) {
  VPGA_ASSERT(max_fanout >= 2);
  (void)lib;
  int inserted = 0;
  bool changed = true;
  // Sink references per driver: (consumer node, fanin pin). Hoisted out of
  // the fixpoint loop; per-entry clear() keeps the inner vectors' capacity.
  std::vector<std::vector<std::pair<netlist::NodeId, int>>> sinks;
  while (changed) {
    changed = false;
    if (sinks.size() < nl.num_nodes()) sinks.resize(nl.num_nodes());
    for (auto& s : sinks) s.clear();
    for (netlist::NodeId id : nl.all_nodes()) {
      const auto fins = nl.fanins(id);
      for (std::size_t p = 0; p < fins.size(); ++p)
        if (fins[p].valid())
          sinks[fins[p].index()].emplace_back(id, static_cast<int>(p));
    }
    const std::size_t original_count = nl.num_nodes();
    for (std::size_t d = 0; d < original_count; ++d) {
      const netlist::NodeId driver(d);
      if (nl.node(driver).type == netlist::NodeType::kOutput) continue;
      auto& fan = sinks[d];
      if (static_cast<int>(fan.size()) <= max_fanout) continue;
      // Keep the first max_fanout-1 sinks on the driver and move the rest
      // behind a buffer; iterating again balances deep trees.
      const auto keep = static_cast<std::size_t>(max_fanout - 1);
      const auto buf = nl.add_comb(logic::TruthTable(1, 0b10), {driver});
      nl.node(buf).cell = library::CellKind::kBuf;
      for (std::size_t i = keep; i < fan.size(); ++i)
        nl.set_fanin(fan[i].first, static_cast<std::size_t>(fan[i].second), buf);
      ++inserted;
      changed = true;
    }
  }
  return inserted;
}

}  // namespace vpga::synth
