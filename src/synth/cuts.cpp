#include "synth/cuts.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/obs.hpp"

namespace vpga::synth {
namespace {

/// Remaps `tt` (over cut `from`) onto the leaf space of the merged cut `to`.
std::uint8_t remap(std::uint8_t tt, const Cut& from, const Cut& to) {
  std::uint8_t out = 0;
  for (unsigned row = 0; row < 8; ++row) {
    unsigned src = 0;
    for (int i = 0; i < from.size; ++i) {
      // Position of from.leaves[i] within to.leaves.
      int pos = -1;
      for (int j = 0; j < to.size; ++j)
        if (to.leaves[static_cast<std::size_t>(j)] ==
            from.leaves[static_cast<std::size_t>(i)]) {
          pos = j;
          break;
        }
      VPGA_ASSERT(pos >= 0);
      if (row & (1u << pos)) src |= 1u << i;
    }
    if (tt & (1u << src)) out |= static_cast<std::uint8_t>(1u << row);
  }
  return out;
}

/// Merges the leaf sets; returns false if the union exceeds 3.
bool merge_leaves(const Cut& a, const Cut& b, Cut& out) {
  std::array<std::uint32_t, 6> tmp{};
  int n = 0;
  int i = 0, j = 0;
  while (i < a.size || j < b.size) {
    std::uint32_t next;
    if (j >= b.size || (i < a.size && a.leaves[static_cast<std::size_t>(i)] <=
                                          b.leaves[static_cast<std::size_t>(j)])) {
      next = a.leaves[static_cast<std::size_t>(i)];
      if (j < b.size && b.leaves[static_cast<std::size_t>(j)] == next) ++j;
      ++i;
    } else {
      next = b.leaves[static_cast<std::size_t>(j)];
      ++j;
    }
    if (n == 3) return false;
    tmp[static_cast<std::size_t>(n++)] = next;
  }
  if (n > 3) return false;
  out.size = static_cast<std::uint8_t>(n);
  for (int k = 0; k < n; ++k) out.leaves[static_cast<std::size_t>(k)] = tmp[static_cast<std::size_t>(k)];
  return true;
}

Cut trivial_cut(std::uint32_t node) {
  Cut c;
  c.size = 1;
  c.leaves[0] = node;
  c.tt = 0xAA;  // x0
  return c;
}

}  // namespace

CutDatabase::CutDatabase(const aig::Aig& g, int cut_limit) {
  offsets_.assign(g.num_nodes() + 1, 0);
  pool_.reserve(g.num_nodes() * static_cast<std::size_t>(cut_limit) / 2);
  // Node 0 (constant) gets a single trivial cut so lookups are total, but it
  // must not participate in merging: an AND with a constant fanin keeps only
  // its own trivial cut (the constant is below every cut frontier).
  pool_.push_back(trivial_cut(0));
  offsets_[1] = 1;

  std::vector<Cut> result;  // scratch, reused across nodes
  result.reserve(static_cast<std::size_t>(cut_limit) * 4);
  for (std::uint32_t n = 1; n < g.num_nodes(); ++n) {
    result.clear();
    if (g.node(n).is_and) {
      const auto f0 = g.node(n).fanin0;
      const auto f1 = g.node(n).fanin1;
      // Empty spans for a constant fanin (see node-0 note above). These views
      // read earlier pool slices; appends happen only after merging, so the
      // pool cannot reallocate under them.
      const auto set0 = aig::node_of(f0) == 0 ? std::span<const Cut>{} : cuts(aig::node_of(f0));
      const auto set1 = aig::node_of(f1) == 0 ? std::span<const Cut>{} : cuts(aig::node_of(f1));
      auto consider = [&](const Cut& c) {
        if (std::find(result.begin(), result.end(), c) != result.end()) return;
        result.push_back(c);
      };
      for (const Cut& a : set0) {
        for (const Cut& b : set1) {
          Cut merged;
          if (!merge_leaves(a, b, merged)) continue;
          std::uint8_t ta = remap(a.tt, a, merged);
          std::uint8_t tb = remap(b.tt, b, merged);
          if (aig::is_complemented(f0)) ta = static_cast<std::uint8_t>(~ta);
          if (aig::is_complemented(f1)) tb = static_cast<std::uint8_t>(~tb);
          merged.tt = ta & tb;
          consider(merged);
        }
      }
      // Priority: fewer leaves first (cheaper to match and pack), stable beyond.
      std::stable_sort(result.begin(), result.end(),
                       [](const Cut& a, const Cut& b) { return a.size < b.size; });
      if (static_cast<int>(result.size()) > cut_limit)
        result.resize(static_cast<std::size_t>(cut_limit));
    }
    // The trivial cut last: always available for leaf use by fanouts.
    result.push_back(trivial_cut(n));
    pool_.insert(pool_.end(), result.begin(), result.end());
    offsets_[n + 1] = static_cast<std::uint32_t>(pool_.size());
  }

  obs::count("map.cuts_enumerated", static_cast<long long>(pool_.size()));
}

}  // namespace vpga::synth
