#include "synth/cuts.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/obs.hpp"

namespace vpga::synth {
namespace {

/// Remaps `tt` (over cut `from`) onto the leaf space of the merged cut `to`.
std::uint8_t remap(std::uint8_t tt, const Cut& from, const Cut& to) {
  std::uint8_t out = 0;
  for (unsigned row = 0; row < 8; ++row) {
    unsigned src = 0;
    for (int i = 0; i < from.size; ++i) {
      // Position of from.leaves[i] within to.leaves.
      int pos = -1;
      for (int j = 0; j < to.size; ++j)
        if (to.leaves[static_cast<std::size_t>(j)] ==
            from.leaves[static_cast<std::size_t>(i)]) {
          pos = j;
          break;
        }
      VPGA_ASSERT(pos >= 0);
      if (row & (1u << pos)) src |= 1u << i;
    }
    if (tt & (1u << src)) out |= static_cast<std::uint8_t>(1u << row);
  }
  return out;
}

/// Merges the leaf sets; returns false if the union exceeds 3.
bool merge_leaves(const Cut& a, const Cut& b, Cut& out) {
  std::array<std::uint32_t, 6> tmp{};
  int n = 0;
  int i = 0, j = 0;
  while (i < a.size || j < b.size) {
    std::uint32_t next;
    if (j >= b.size || (i < a.size && a.leaves[static_cast<std::size_t>(i)] <=
                                          b.leaves[static_cast<std::size_t>(j)])) {
      next = a.leaves[static_cast<std::size_t>(i)];
      if (j < b.size && b.leaves[static_cast<std::size_t>(j)] == next) ++j;
      ++i;
    } else {
      next = b.leaves[static_cast<std::size_t>(j)];
      ++j;
    }
    if (n == 3) return false;
    tmp[static_cast<std::size_t>(n++)] = next;
  }
  if (n > 3) return false;
  out.size = static_cast<std::uint8_t>(n);
  for (int k = 0; k < n; ++k) out.leaves[static_cast<std::size_t>(k)] = tmp[static_cast<std::size_t>(k)];
  return true;
}

Cut trivial_cut(std::uint32_t node) {
  Cut c;
  c.size = 1;
  c.leaves[0] = node;
  c.tt = 0xAA;  // x0
  return c;
}

}  // namespace

CutDatabase::CutDatabase(const aig::Aig& g, int cut_limit) {
  cuts_.resize(g.num_nodes());
  for (std::uint32_t n = 1; n < g.num_nodes(); ++n) {
    if (!g.node(n).is_and) {
      cuts_[n].push_back(trivial_cut(n));
      continue;
    }
    const auto f0 = g.node(n).fanin0;
    const auto f1 = g.node(n).fanin1;
    const auto& set0 = cuts_[aig::node_of(f0)];
    const auto& set1 = cuts_[aig::node_of(f1)];
    std::vector<Cut> result;
    auto consider = [&](const Cut& c) {
      if (std::find(result.begin(), result.end(), c) != result.end()) return;
      result.push_back(c);
    };
    for (const Cut& a : set0) {
      for (const Cut& b : set1) {
        Cut merged;
        if (!merge_leaves(a, b, merged)) continue;
        std::uint8_t ta = remap(a.tt, a, merged);
        std::uint8_t tb = remap(b.tt, b, merged);
        if (aig::is_complemented(f0)) ta = static_cast<std::uint8_t>(~ta);
        if (aig::is_complemented(f1)) tb = static_cast<std::uint8_t>(~tb);
        merged.tt = ta & tb;
        consider(merged);
      }
    }
    // Priority: fewer leaves first (cheaper to match and pack), stable beyond.
    std::stable_sort(result.begin(), result.end(),
                     [](const Cut& a, const Cut& b) { return a.size < b.size; });
    if (static_cast<int>(result.size()) > cut_limit) result.resize(static_cast<std::size_t>(cut_limit));
    // The trivial cut last: always available for leaf use by fanouts.
    result.push_back(trivial_cut(n));
    cuts_[n] = std::move(result);
  }
  // Node 0 (constant): single trivial cut so lookups are total.
  cuts_[0].push_back(trivial_cut(0));

  long long total = 0;
  for (const auto& set : cuts_) total += static_cast<long long>(set.size());
  obs::count("map.cuts_enumerated", total);
}

}  // namespace vpga::synth
