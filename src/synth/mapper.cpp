#include "synth/mapper.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "aig/aig.hpp"
#include "common/assert.hpp"
#include "core/config.hpp"
#include "obs/obs.hpp"
#include "synth/cuts.hpp"
#include "synth/match_index.hpp"

namespace vpga::synth {
namespace {

using aig::Lit;

/// Electrical load assumed per sink during mapping (placement is not known
/// yet; this is the usual pre-layout fanout-of-2 style estimate).
constexpr double kNominalLoadFf = 3.0;

MatchOption cell_option(library::CellKind k, const library::CellLibrary& lib) {
  const auto& s = lib.spec(k);
  MatchOption o;
  o.name = s.name;
  o.coverage = s.coverage;
  o.arc = s.arc;
  o.area_um2 = s.area_um2;
  o.cell = k;
  return o;
}

MatchOption config_option(core::ConfigKind k, const library::CellLibrary& lib) {
  const auto& s = core::config_spec(k, lib);
  MatchOption o;
  o.name = s.name;
  o.coverage = s.coverage;
  o.arc = s.arc;
  o.area_um2 = s.mapped_area_um2;
  o.config_tag = static_cast<std::uint8_t>(k);
  return o;
}

}  // namespace

MapTarget cell_target(const core::PlbArchitecture& arch, const library::CellLibrary& lib) {
  MapTarget t;
  if (arch.count(core::PlbComponent::kLut3) > 0)
    t.options.push_back(cell_option(library::CellKind::kLut3, lib));
  if (arch.count(core::PlbComponent::kMux) > 0 || arch.count(core::PlbComponent::kXoa) > 0)
    t.options.push_back(cell_option(library::CellKind::kMux2, lib));
  if (arch.count(core::PlbComponent::kNd3) > 0)
    t.options.push_back(cell_option(library::CellKind::kNd3wi, lib));
  t.inverter = cell_option(library::CellKind::kInv, lib);
  t.buffer = cell_option(library::CellKind::kBuf, lib);
  return t;
}

MapTarget config_target(const core::PlbArchitecture& arch, const library::CellLibrary& lib) {
  MapTarget t;
  for (core::ConfigKind k : arch.configs) {
    if (k == core::ConfigKind::kFf || k == core::ConfigKind::kFullAdder) continue;
    t.options.push_back(config_option(k, lib));
  }
  t.inverter = cell_option(library::CellKind::kInv, lib);
  t.buffer = cell_option(library::CellKind::kBuf, lib);
  return t;
}

MapResult tech_map(const netlist::Netlist& src, const MapTarget& target,
                   Objective objective, int cut_limit) {
  VPGA_ASSERT_MSG(!target.options.empty(), "mapping target has no options");
  const obs::Span map_span("map.tech_map");
  const auto m = aig::from_netlist(src);
  const aig::Aig& g = m.aig;
  const CutDatabase cuts(g, cut_limit);

  // NPN match index: each cut's matching-option set is one table load,
  // computed once here instead of per (round, cut, option) coverage probes
  // inside the DP. `match_attempts` counts these lookups — one per cut.
  const MatchIndex index(target);
  std::vector<MatchIndex::OptionMask> cut_masks(cuts.total_cuts());
  long long match_attempts = 0;
  for (std::uint32_t n = 0; n < g.num_nodes(); ++n) {
    const auto node_cuts = cuts.cuts(n);
    const std::size_t flat = cuts.offset(n);
    for (std::size_t ci = 0; ci < node_cuts.size(); ++ci) {
      ++match_attempts;
      cut_masks[flat + ci] = index.options_for(node_cuts[ci].tt);
    }
  }

  // Fanout estimates for area flow, refined from the chosen cover each round
  // (structural AIG fanouts systematically overestimate sharing, which makes
  // composite supernodes look worse than they are).
  std::vector<int> fanout(g.num_nodes(), 0);
  for (std::uint32_t n = 0; n < g.num_nodes(); ++n)
    if (g.node(n).is_and) {
      ++fanout[aig::node_of(g.node(n).fanin0)];
      ++fanout[aig::node_of(g.node(n).fanin1)];
    }
  for (Lit o : g.outputs()) ++fanout[aig::node_of(o)];

  struct Choice {
    int cut = -1;
    int option = -1;
    double arrival = 0.0;
    double area_flow = 0.0;
  };
  std::vector<Choice> best(g.num_nodes());
  std::vector<char> needed(g.num_nodes(), 0);

  // Dynamic program over AND nodes (node indices are topological).
  auto run_dp = [&] {
    for (std::uint32_t n = 1; n < g.num_nodes(); ++n) {
      if (!g.node(n).is_and) continue;
      Choice bc;
      bc.arrival = std::numeric_limits<double>::infinity();
      bc.area_flow = std::numeric_limits<double>::infinity();
      const auto node_cuts = cuts.cuts(n);
      const std::size_t flat = cuts.offset(n);
      for (int ci = 0; ci < static_cast<int>(node_cuts.size()); ++ci) {
        const Cut& c = node_cuts[static_cast<std::size_t>(ci)];
        if (c.size == 1 && c.leaves[0] == n) continue;  // trivial self-cut
        MatchIndex::OptionMask mask = cut_masks[flat + static_cast<std::size_t>(ci)];
        if (mask == 0) continue;
        double leaves_arrival = 0.0;
        double leaves_flow = 0.0;
        for (int li = 0; li < c.size; ++li) {
          const auto leaf = c.leaves[static_cast<std::size_t>(li)];
          leaves_arrival = std::max(leaves_arrival, best[leaf].arrival);
          leaves_flow += best[leaf].area_flow / std::max(1, fanout[leaf]);
        }
        // Iterate matching options lowest-index-first (countr_zero), which is
        // the same ascending order as the old per-option scan, so every
        // tie-break — and therefore the chosen cover — is unchanged.
        for (; mask != 0; mask &= mask - 1) {
          const int oi = std::countr_zero(mask);
          const MatchOption& opt = target.options[static_cast<std::size_t>(oi)];
          Choice cand;
          cand.cut = ci;
          cand.option = oi;
          cand.arrival = leaves_arrival + opt.arc.delay(kNominalLoadFf);
          cand.area_flow = leaves_flow + opt.area_um2;
          const bool better =
              objective == Objective::kDelay
                  ? (cand.arrival < bc.arrival - 1e-9 ||
                     (cand.arrival < bc.arrival + 1e-9 && cand.area_flow < bc.area_flow))
                  : (cand.area_flow < bc.area_flow - 1e-9 ||
                     (cand.area_flow < bc.area_flow + 1e-9 && cand.arrival < bc.arrival));
          if (better) bc = cand;
        }
      }
      VPGA_ASSERT_MSG(bc.cut >= 0, "no match covers a 2-input cut; target incomplete");
      best[n] = bc;
    }
  };

  // Cover extraction from the outputs.
  std::vector<std::uint32_t> stack;  // reused across rounds
  stack.reserve(g.num_nodes());
  auto extract_cover = [&] {
    std::fill(needed.begin(), needed.end(), 0);
    stack.clear();
    for (Lit o : g.outputs()) {
      const auto root = aig::node_of(o);
      if (g.node(root).is_and && !needed[root]) {
        needed[root] = 1;
        stack.push_back(root);
      }
    }
    while (!stack.empty()) {
      const auto n = stack.back();
      stack.pop_back();
      const Cut& c = cuts.cuts(n)[static_cast<std::size_t>(best[n].cut)];
      for (int li = 0; li < c.size; ++li) {
        const auto leaf = c.leaves[static_cast<std::size_t>(li)];
        if (g.node(leaf).is_and && !needed[leaf]) {
          needed[leaf] = 1;
          stack.push_back(leaf);
        }
      }
    }
  };

  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    obs::count("map.dp_rounds");
    run_dp();
    extract_cover();
    if (round + 1 == kRounds) break;
    // Refine fanouts from the actual cover.
    std::fill(fanout.begin(), fanout.end(), 0);
    for (std::uint32_t n = 1; n < g.num_nodes(); ++n) {
      if (!needed[n]) continue;
      const Cut& c = cuts.cuts(n)[static_cast<std::size_t>(best[n].cut)];
      for (int li = 0; li < c.size; ++li) ++fanout[c.leaves[static_cast<std::size_t>(li)]];
    }
    for (Lit o : g.outputs()) ++fanout[aig::node_of(o)];
  }

  // Emit the mapped netlist.
  MapResult result;
  netlist::Netlist& out = result.netlist;
  out = netlist::Netlist(src.name());
  std::vector<netlist::NodeId> emitted(g.num_nodes());
  std::vector<netlist::NodeId> dff_nodes;
  dff_nodes.reserve(g.num_inputs() - m.num_pis);
  for (std::size_t i = 0; i < g.num_inputs(); ++i) {
    if (i < m.num_pis) {
      emitted[g.inputs()[i]] = out.add_input(src.name_of(src.inputs()[i]));
    } else {
      const auto& ff_name = src.name_of(src.dffs()[i - m.num_pis]);
      const auto ff = out.add_dff(netlist::NodeId{}, ff_name);
      emitted[g.inputs()[i]] = ff;
      dff_nodes.push_back(ff);
    }
  }

  auto emit_node = [&](std::uint32_t n) {
    const Choice& ch = best[n];
    const Cut& c = cuts.cuts(n)[static_cast<std::size_t>(ch.cut)];
    const MatchOption& opt = target.options[static_cast<std::size_t>(ch.option)];
    std::array<netlist::NodeId, 3> fanins;
    for (int li = 0; li < c.size; ++li) {
      const auto leaf = c.leaves[static_cast<std::size_t>(li)];
      VPGA_ASSERT(emitted[leaf].valid());
      fanins[static_cast<std::size_t>(li)] = emitted[leaf];
    }
    const auto mask = (std::uint64_t{1} << (1 << c.size)) - 1;
    const auto id = out.add_comb(logic::TruthTable(c.size, c.tt & mask),
                                 std::span<const netlist::NodeId>(fanins.data(), c.size));
    out.node(id).cell = opt.cell;
    out.node(id).config_tag = opt.config_tag;
    result.stats.area_um2 += opt.area_um2;
    ++result.stats.nodes;
    emitted[n] = id;
  };
  for (std::uint32_t n = 1; n < g.num_nodes(); ++n)
    if (needed[n]) emit_node(n);

  // Polarity repair and boundary wiring.
  netlist::NodeId const0, const1;
  auto constant = [&](bool v) {
    netlist::NodeId& slot = v ? const1 : const0;
    if (!slot.valid()) slot = out.add_constant(v);
    return slot;
  };
  auto resolve = [&](Lit l) {
    if (aig::node_of(l) == 0) return constant(aig::is_complemented(l));
    const netlist::NodeId base = emitted[aig::node_of(l)];
    VPGA_ASSERT(base.valid());
    if (!aig::is_complemented(l)) return base;
    const auto inv = out.add_comb(logic::TruthTable(1, 0b01), {base});
    out.node(inv).cell = target.inverter.cell;
    out.node(inv).config_tag = target.inverter.config_tag;
    result.stats.area_um2 += target.inverter.area_um2;
    ++result.stats.nodes;
    return inv;
  };
  for (std::size_t j = 0; j < g.outputs().size(); ++j) {
    const auto driver = resolve(g.outputs()[j]);
    if (j < m.num_pos) {
      out.add_output(driver, src.name_of(src.outputs()[j]));
    } else {
      out.set_dff_input(dff_nodes[j - m.num_pos], driver);
    }
  }

  // Stats: arrival estimate and mapped depth.
  double worst = 0.0;
  for (Lit o : g.outputs())
    if (g.node(aig::node_of(o)).is_and)
      worst = std::max(worst, best[aig::node_of(o)].arrival);
  result.stats.est_delay_ps = worst;
  {
    std::vector<int> level(out.num_nodes(), 0);
    int depth = 0;
    for (netlist::NodeId id : out.topo_order()) {
      const auto& n = out.node(id);
      if (n.type != netlist::NodeType::kComb) continue;
      int l = 0;
      for (netlist::NodeId fi : out.fanins(id))
        if (out.node(fi).type == netlist::NodeType::kComb)
          l = std::max(l, level[fi.index()]);
      level[id.index()] = l + 1;
      depth = std::max(depth, l + 1);
    }
    result.stats.depth = depth;
  }
  obs::count("map.match_attempts", match_attempts);
  obs::count("map.nodes_emitted", result.stats.nodes);
  return result;
}

}  // namespace vpga::synth
