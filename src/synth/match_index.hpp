#pragma once
/// \file match_index.hpp
/// NPN match index: per-MapTarget precomputed cut-function -> option-set map.
///
/// The mapper DP used to probe every (cut, option) pair with
/// `option.coverage.test(cut.tt)` — the single hottest inner loop of the flow
/// (BENCH_flow.json: ~173k probes on a small suite). Coverage sets are closed
/// under the via-programmable pin freedoms (input negation / permutation,
/// output inversion), i.e. each one is a union of NPN classes, so matching
/// only depends on the cut function's NPN class. This index tests each class
/// *representative* once per option at construction, floods the class mask
/// over all members through the canonical table (logic::npn_canonical_table3),
/// and verifies the expansion against the exact per-tt answer — a non-closed
/// coverage set would be caught at construction, not mis-matched at map time.
///
/// After construction, matching a cut is one load: `options_for(cut.tt)`
/// returns the bitmask of matching options (bit i = target.options[i]).

#include <array>
#include <cstdint>

#include "logic/npn.hpp"
#include "synth/mapper.hpp"

namespace vpga::synth {

class MatchIndex {
 public:
  /// Bitmask over MapTarget::options; supports up to 32 options.
  using OptionMask = std::uint32_t;
  static constexpr std::size_t kMaxOptions = 32;

  explicit MatchIndex(const MapTarget& target);

  /// Options implementing the 3-input function `tt` (don't-care variables
  /// beyond a cut's size are already don't-cares of tt itself).
  [[nodiscard]] OptionMask options_for(std::uint8_t tt) const {
    return mask_[tt];
  }

  /// Number of distinct NPN classes with at least one matching option.
  [[nodiscard]] int matchable_classes() const { return matchable_classes_; }

  /// The transform used to canonicalize `tt` when the index was verified;
  /// exposes the cached-NPN plumbing for the equivalence tests.
  [[nodiscard]] static logic::NpnTransform transform_for(std::uint8_t tt) {
    return logic::npn_canonical_transform(tt);
  }

 private:
  std::array<OptionMask, 256> mask_{};
  int matchable_classes_ = 0;
};

}  // namespace vpga::synth
