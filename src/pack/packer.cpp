#include "pack/packer.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <mutex>

#include "common/assert.hpp"
#include "common/concurrency.hpp"
#include "obs/obs.hpp"

namespace vpga::pack {
namespace {

using core::ConfigKind;
using core::PlbArchitecture;
using netlist::Netlist;
using netlist::NodeId;
using netlist::NodeType;

/// True for nodes that occupy PLB component slots.
bool consumes_slots(const Netlist& nl, NodeId id) {
  const auto& n = nl.node(id);
  if (n.type == NodeType::kDff) return true;
  return n.type == NodeType::kComb && n.has_config();
}

/// True for nodes that live in a tile but use no slots (PLB input buffers).
bool is_free_rider(const Netlist& nl, NodeId id) {
  const auto& n = nl.node(id);
  return n.type == NodeType::kComb && !n.has_config();
}

ConfigKind config_of(const Netlist& nl, NodeId id) {
  const auto& n = nl.node(id);
  if (n.type == NodeType::kDff) return ConfigKind::kFf;
  return static_cast<ConfigKind>(n.config_tag);
}

/// An atomic packing unit: a single configuration node, or a multi-output
/// macro (full adder) whose members must land in the same tile.
struct Group {
  std::uint32_t rep = 0;
  std::vector<std::uint32_t> members;
  std::vector<ConfigKind> configs;
};

std::vector<Group> build_groups(const Netlist& nl) {
  std::vector<Group> groups;
  // Reps are node ids, so a dense index beats a hash map in the packer's
  // hottest entry path; one counting pass sizes `groups` exactly.
  constexpr std::size_t kNoGroup = ~std::size_t{0};
  std::vector<std::size_t> index_of_rep(nl.num_nodes(), kNoGroup);
  std::size_t consuming = 0;
  for (NodeId id : nl.all_nodes())
    if (consumes_slots(nl, id)) ++consuming;
  groups.reserve(consuming);
  for (NodeId id : nl.all_nodes()) {
    if (!consumes_slots(nl, id)) continue;
    const auto& n = nl.node(id);
    const std::uint32_t rep = n.in_macro() ? n.macro_rep.value() : id.value();
    std::size_t& slot = index_of_rep[rep];
    if (slot == kNoGroup) {
      slot = groups.size();
      groups.push_back(Group{rep, {}, {}});
    }
    groups[slot].members.push_back(id.value());
  }
  for (auto& g : groups) {
    if (g.members.size() > 1 || nl.node(NodeId(g.rep)).in_macro()) {
      // Macro: one combined configuration (currently only the full adder).
      g.configs = {config_of(nl, NodeId(g.rep))};
    } else {
      g.configs = {config_of(nl, NodeId(g.members[0]))};
    }
  }
  return groups;
}

/// A tile being filled.
struct Tile {
  std::vector<ConfigKind> contents;
};

/// Per-class demand tally. ComponentClass is a bitmask over the
/// kNumPlbComponents component kinds, so every possible class fits in a flat
/// array of 2^kNumPlbComponents counters — trivially copyable and walked
/// without node churn inside the Hall subset loop.
using DemandTally = std::array<int, std::size_t{1} << core::kNumPlbComponents>;

/// Hall-condition feasibility of a demand multiset against `tiles` copies of
/// the architecture's slots (necessary aggregate condition used to balance
/// quadrants; per-tile grouping is enforced later by fits_in_one_plb).
bool hall_feasible(const PlbArchitecture& arch, int tiles, const DemandTally& demand) {
  for (unsigned subset = 0; subset < (1u << core::kNumPlbComponents); ++subset) {
    int cap = 0;
    for (int c = 0; c < core::kNumPlbComponents; ++c)
      if (subset & (1u << c)) cap += tiles * arch.component_count[static_cast<std::size_t>(c)];
    int need = 0;
    for (unsigned mask = 0; mask < demand.size(); ++mask)
      if ((mask & ~subset) == 0) need += demand[mask];
    if (need > cap) return false;
  }
  return true;
}

void add_demand(DemandTally& d, const Group& g) {
  for (ConfigKind k : g.configs)
    for (auto cls : core::config_spec(k).needs) ++d[cls];
}

/// Backing store of pack::pack_tally(). pack() runs on four threads under a
/// parallel compare, hence the lock discipline.
struct PackTally {
  std::mutex mu;
  long long packs FABRIC_GUARDED_BY(mu) = 0;
  long long grow_attempts FABRIC_GUARDED_BY(mu) = 0;
};

PackTally& pack_tally_storage() {
  static PackTally tally;
  return tally;
}

}  // namespace

int first_fit_tile_count(const Netlist& nl, const PlbArchitecture& arch) {
  const auto groups = build_groups(nl);
  std::vector<Tile> tiles;
  tiles.reserve(groups.size());  // worst case: every group opens a tile
  for (const auto& g : groups) {
    bool placed = false;
    for (auto& t : tiles) {
      const auto before = t.contents.size();
      t.contents.insert(t.contents.end(), g.configs.begin(), g.configs.end());
      if (core::fits_in_one_plb(arch, t.contents)) {
        placed = true;
        break;
      }
      t.contents.resize(before);
    }
    if (!placed) tiles.push_back(Tile{g.configs});
  }
  return static_cast<int>(tiles.size());
}

PackedDesign pack(const Netlist& nl, const place::Placement& placed,
                  const PlbArchitecture& arch, const PackOptions& opts) {
  PackedDesign out;
  out.tile_size_um = std::sqrt(arch.tile_area_um2);
  out.legal = placed;
  out.tile_of_node.assign(nl.num_nodes(), -1);

  const auto groups = build_groups(nl);
  obs::count("pack.groups", static_cast<long long>(groups.size()));

  const int lower_bound = std::max(1, first_fit_tile_count(nl, arch));
  int target_tiles = std::max(
      1, static_cast<int>(std::ceil(static_cast<double>(lower_bound) * opts.initial_margin)));

  auto group_criticality = [&](const Group& g) {
    if (opts.criticality.empty()) return 0.0;
    double c = 0.0;
    for (auto v : g.members) c = std::max(c, opts.criticality[v]);
    return c;
  };

  // Scratch reused across grow attempts: the grid dimensions change per
  // attempt but the heap capacity carries over.
  std::vector<Tile> tiles;
  std::vector<int> tile_of;
  for (;; target_tiles = std::max(target_tiles + 1,
                                  static_cast<int>(target_tiles * 1.06)),
          ++out.grow_attempts) {
    const obs::Span attempt_span("pack.attempt");
    const int gw = std::max(1, static_cast<int>(std::ceil(std::sqrt(target_tiles))));
    const int gh = (target_tiles + gw - 1) / gw;
    tiles.assign(static_cast<std::size_t>(gw) * gh, Tile{});
    tile_of.assign(nl.num_nodes(), -1);

    // Map placed coordinates onto the tile grid (group position = its rep's).
    const double sx = placed.width_um > 0 ? gw / placed.width_um : 1.0;
    const double sy = placed.height_um > 0 ? gh / placed.height_um : 1.0;
    auto tile_x = [&](const Group& g) {
      return std::clamp(static_cast<int>(placed.pos[g.rep].x * sx), 0, gw - 1);
    };
    auto tile_y = [&](const Group& g) {
      return std::clamp(static_cast<int>(placed.pos[g.rep].y * sy), 0, gh - 1);
    };

    // --- recursive quadrisection: region assignment balancing supply/demand.
    // Each region is a tile rectangle plus the groups currently assigned to
    // it; when a quadrant's demand violates the Hall condition against its
    // slot supply, its least-critical groups spill to the sibling with slack.
    struct Region {
      int x0, y0, w, h;
      std::vector<std::size_t> items;  // indices into `groups`
    };
    std::vector<Region> leaves;
    auto quadrisect = [&](auto&& self, Region r) -> void {
      if (r.w <= 1 && r.h <= 1) {
        leaves.push_back(std::move(r));
        return;
      }
      const int wl = std::max(1, r.w / 2), hl = std::max(1, r.h / 2);
      Region quad[4];
      const int splits_x = r.w > 1 ? 2 : 1;
      const int splits_y = r.h > 1 ? 2 : 1;
      int nq = 0;
      for (int qy = 0; qy < splits_y; ++qy)
        for (int qx = 0; qx < splits_x; ++qx) {
          quad[nq].x0 = r.x0 + qx * wl;
          quad[nq].y0 = r.y0 + qy * hl;
          quad[nq].w = qx == splits_x - 1 ? r.w - qx * wl : wl;
          quad[nq].h = qy == splits_y - 1 ? r.h - qy * hl : hl;
          ++nq;
        }
      auto quadrant_of = [&](std::size_t gi) {
        const int tx = tile_x(groups[gi]), ty = tile_y(groups[gi]);
        for (int q = 0; q < nq; ++q)
          if (tx >= quad[q].x0 && tx < quad[q].x0 + quad[q].w && ty >= quad[q].y0 &&
              ty < quad[q].y0 + quad[q].h)
            return q;
        return 0;
      };
      DemandTally demand[4]{};
      for (auto gi : r.items) {
        const int q = quadrant_of(gi);
        quad[q].items.push_back(gi);
        add_demand(demand[q], groups[gi]);
      }
      // Rebalance: spill least-critical groups from infeasible quadrants.
      for (int q = 0; q < nq; ++q) {
        auto& src = quad[q];
        std::sort(src.items.begin(), src.items.end(), [&](std::size_t a, std::size_t b) {
          return group_criticality(groups[a]) > group_criticality(groups[b]);
        });
        while (!src.items.empty() &&
               !hall_feasible(arch, src.w * src.h, demand[q])) {
          const auto gi = src.items.back();
          src.items.pop_back();
          for (ConfigKind k : groups[gi].configs)
            for (auto cls : core::config_spec(k).needs) --demand[q][cls];
          // Receiver: the sibling with the most slack that stays feasible.
          int best = -1;
          int best_slack = -1;
          for (int q2 = 0; q2 < nq; ++q2) {
            if (q2 == q) continue;
            auto d2 = demand[q2];
            add_demand(d2, groups[gi]);
            if (!hall_feasible(arch, quad[q2].w * quad[q2].h, d2)) continue;
            int cap = 0, used = 0;
            for (int c = 0; c < core::kNumPlbComponents; ++c)
              cap += quad[q2].w * quad[q2].h * arch.component_count[static_cast<std::size_t>(c)];
            for (int count : d2) used += count;
            if (cap - used > best_slack) {
              best_slack = cap - used;
              best = q2;
            }
          }
          if (best < 0) {  // parent region too tight: keep and let spiral fix
            src.items.push_back(gi);
            add_demand(demand[q], groups[gi]);
            break;
          }
          quad[best].items.push_back(gi);
          add_demand(demand[best], groups[gi]);
        }
      }
      for (int q = 0; q < nq; ++q) self(self, std::move(quad[q]));
    };
    Region root{0, 0, gw, gh, {}};
    root.items.resize(groups.size());
    for (std::size_t i = 0; i < groups.size(); ++i) root.items[i] = i;
    {
      const obs::Span quad_span("pack.quadrisect");
      quadrisect(quadrisect, std::move(root));
    }

    // --- leaf filling + spiral relocation for overflow -----------------------
    bool ok = true;
    auto try_place = [&](std::size_t gi, int tx, int ty) {
      Tile& t = tiles[static_cast<std::size_t>(ty) * gw + tx];
      const auto before = t.contents.size();
      t.contents.insert(t.contents.end(), groups[gi].configs.begin(),
                        groups[gi].configs.end());
      if (core::fits_in_one_plb(arch, t.contents)) {
        for (auto v : groups[gi].members) tile_of[v] = ty * gw + tx;
        return true;
      }
      t.contents.resize(before);
      return false;
    };
    // Two-phase fill, wide footprints first: a full-adder macro needs a
    // completely free tile, so all macros claim tiles (leaf position, then
    // nearest-available spiral) before single configurations trickle in —
    // otherwise stranded macros force array growth.
    auto footprint = [&](std::size_t gi) {
      std::size_t slots = 0;
      for (ConfigKind k : groups[gi].configs) slots += core::config_spec(k).needs.size();
      return slots;
    };
    auto spiral_place = [&](std::size_t gi) {
      const int cx = tile_x(groups[gi]), cy = tile_y(groups[gi]);
      for (int radius = 0; radius < gw + gh; ++radius) {
        for (int dy = -radius; dy <= radius; ++dy) {
          for (int dx = -radius; dx <= radius; ++dx) {
            if (std::max(std::abs(dx), std::abs(dy)) != radius) continue;
            const int tx = cx + dx, ty = cy + dy;
            if (tx < 0 || ty < 0 || tx >= gw || ty >= gh) continue;
            if (try_place(gi, tx, ty)) return true;
          }
        }
      }
      return false;
    };
    constexpr std::size_t kBigFootprint = 3;  // >= XOANDMX / FA class
    {
      const obs::Span fill_span("pack.fill");
      std::vector<std::size_t> overflow;
      overflow.reserve(groups.size());  // worst case: nothing fits its leaf
      for (const bool big_phase : {true, false}) {
        overflow.clear();
        for (const auto& leaf : leaves)
          for (auto gi : leaf.items) {
            if ((footprint(gi) >= kBigFootprint) != big_phase) continue;
            if (!try_place(gi, leaf.x0, leaf.y0)) overflow.push_back(gi);
          }
        std::sort(overflow.begin(), overflow.end(), [&](std::size_t a, std::size_t b) {
          if (footprint(a) != footprint(b)) return footprint(a) > footprint(b);
          return group_criticality(groups[a]) > group_criticality(groups[b]);
        });
        obs::count("pack.spiral_relocations", static_cast<long long>(overflow.size()));
        for (auto gi : overflow)
          if (!spiral_place(gi)) { ok = false; break; }
        if (!ok) break;
      }
    }
    if (!ok) continue;  // grow the array and retry

    // --- success: finalize ----------------------------------------------------
    out.grid_w = gw;
    out.grid_h = gh;
    out.tile_of_node = std::move(tile_of);
    out.die_area_um2 = static_cast<double>(gw) * gh * arch.tile_area_um2;
    // Legalized positions: tile centers; I/O scaled onto the new die.
    out.legal.width_um = gw * out.tile_size_um;
    out.legal.height_um = gh * out.tile_size_um;
    const double ix = placed.width_um > 0 ? out.legal.width_um / placed.width_um : 1.0;
    const double iy = placed.height_um > 0 ? out.legal.height_um / placed.height_um : 1.0;
    for (NodeId id : nl.all_nodes()) {
      out.legal.pos[id.index()] = {placed.pos[id.index()].x * ix,
                                   placed.pos[id.index()].y * iy};
    }
    double total_disp = 0.0, max_disp = 0.0;
    for (NodeId id : nl.all_nodes()) {
      const int t = out.tile_of_node[id.index()];
      if (t < 0) continue;
      const place::Point center = {(t % gw + 0.5) * out.tile_size_um,
                                   (t / gw + 0.5) * out.tile_size_um};
      const double dx = center.x - out.legal.pos[id.index()].x;
      const double dy = center.y - out.legal.pos[id.index()].y;
      const double d = std::sqrt(dx * dx + dy * dy);
      obs::observe("pack.displacement_um", d);
      total_disp += d;
      max_disp = std::max(max_disp, d);
      out.legal.pos[id.index()] = center;
    }
    out.total_displacement_um = total_disp;
    out.max_displacement_um = max_disp;
    // Free riders (input buffers/inverters) ride in their driver's tile when
    // possible, else stay put (they consume no slots).
    for (NodeId id : nl.all_nodes()) {
      if (!is_free_rider(nl, id)) continue;
      const auto& n = nl.node(id);
      if (n.num_fanins() > 0 && nl.fanin(id, 0).valid()) {
        const int t = out.tile_of_node[nl.fanin(id, 0).index()];
        if (t >= 0) {
          out.tile_of_node[id.index()] = t;
          out.legal.pos[id.index()] = {(t % gw + 0.5) * out.tile_size_um,
                                       (t / gw + 0.5) * out.tile_size_um};
        }
      }
    }
    int used = 0;
    std::array<int, core::kNumPlbComponents> slots_used{};
    for (const auto& t : tiles) {
      if (t.contents.empty()) continue;
      ++used;
      for (ConfigKind k : t.contents)
        for (auto cls : core::config_spec(k).needs)
          for (int c = 0; c < core::kNumPlbComponents; ++c)
            if (core::class_accepts(cls, static_cast<core::PlbComponent>(c))) {
              // Attribution for the report only: count against the first
              // accepting component kind.
              ++slots_used[static_cast<std::size_t>(c)];
              break;
            }
    }
    out.plbs_used = used;
    obs::count("pack.grow_attempts", out.grow_attempts);
    {
      PackTally& tally = pack_tally_storage();
      const std::lock_guard<std::mutex> lock(tally.mu);
      ++tally.packs;
      tally.grow_attempts += out.grow_attempts;
    }
    for (int c = 0; c < core::kNumPlbComponents; ++c) {
      const int cap = used * arch.component_count[static_cast<std::size_t>(c)];
      out.slot_utilization[static_cast<std::size_t>(c)] =
          cap > 0 ? static_cast<double>(slots_used[static_cast<std::size_t>(c)]) / cap : 0.0;
    }
    return out;
  }
}

PackTallySnapshot pack_tally() {
  PackTally& tally = pack_tally_storage();
  const std::lock_guard<std::mutex> lock(tally.mu);
  return {tally.packs, tally.grow_attempts};
}

}  // namespace vpga::pack
