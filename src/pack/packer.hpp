#pragma once
/// \file packer.hpp
/// Legalization: packing the placed component/configuration netlist into a
/// regular array of PLBs (paper Section 3.1, "Packing into array of PLBs").
///
/// The algorithm follows the paper: recursive quadrisection assigns
/// configuration nodes to array regions balancing resource supply against
/// demand; within a region, nodes fill tiles under the exact
/// fits_in_one_plb() resource model; overflow relocates to "the nearest
/// region of the chip that has unused resources available" (spiral search).
/// The cost function minimizes perturbation of the ASIC-style placement and
/// protects timing-critical nodes (they move last). The packer is run inside
/// an iterative loop with placement refresh by the flow driver, mirroring the
/// paper's packing <-> physical-synthesis loop.

#include <vector>

#include "core/plb.hpp"
#include "place/placement.hpp"

namespace vpga::pack {

struct PackOptions {
  /// Criticality per node in [0,1] (empty = uniform); critical nodes are
  /// assigned first so they land nearest their placed positions.
  std::vector<double> criticality;
  /// Extra tiles allowed beyond the first-fit lower bound before the array
  /// grows (models array sizing slack).
  double initial_margin = 1.05;
};

/// The legalized design.
struct PackedDesign {
  int grid_w = 0;
  int grid_h = 0;
  double tile_size_um = 0.0;
  /// tile index (= y*grid_w + x) per node; -1 for I/O and constants.
  std::vector<int> tile_of_node;
  /// Legalized positions (tile centers; I/O keeps its placed position).
  place::Placement legal;
  int plbs_used = 0;          ///< tiles with at least one occupant
  int grow_attempts = 0;      ///< array-size retries before legalization fit
  double die_area_um2 = 0.0;  ///< grid_w * grid_h * tile area
  double total_displacement_um = 0.0;
  double max_displacement_um = 0.0;
  /// Fraction of component slots used, per PlbComponent, over used tiles.
  std::array<double, core::kNumPlbComponents> slot_utilization{};
};

/// Packs a compacted netlist (every comb node carries a config_tag or is an
/// INV/BUF cell) into the smallest PLB array that legalizes successfully.
PackedDesign pack(const netlist::Netlist& nl, const place::Placement& placed,
                  const core::PlbArchitecture& arch, const PackOptions& opts = {});

/// Lower bound on tiles by first-fit bin packing in placement order (used to
/// size the array; also a useful density metric on its own).
int first_fit_tile_count(const netlist::Netlist& nl, const core::PlbArchitecture& arch);

/// Process-lifetime packer counters, accumulated across every pack() call in
/// the process. pack() runs concurrently under FlowOptions::parallel_compare,
/// so the backing store is mutex-guarded (FABRIC_GUARDED_BY,
/// src/common/concurrency.hpp) and read through a locked snapshot.
struct PackTallySnapshot {
  long long packs = 0;          ///< completed pack() calls
  long long grow_attempts = 0;  ///< summed array-size retries
};
[[nodiscard]] PackTallySnapshot pack_tally();

}  // namespace vpga::pack
