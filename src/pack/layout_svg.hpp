#pragma once
/// \file layout_svg.hpp
/// SVG rendering of a packed PLB array — the quickest way to see what the
/// legalizer did: tile occupancy, full-adder macros, flip-flops and the
/// congestion of each region.

#include <string>

#include "pack/packer.hpp"

namespace vpga::pack {

/// Writes an SVG of the packed array. Tiles are shaded by slot utilization;
/// tiles hosting a full-adder macro are outlined. Returns false if the file
/// cannot be written.
bool write_layout_svg(const std::string& path, const netlist::Netlist& nl,
                      const PackedDesign& packed, const core::PlbArchitecture& arch);

/// Same, to a string (for tests).
std::string layout_svg(const netlist::Netlist& nl, const PackedDesign& packed,
                       const core::PlbArchitecture& arch);

}  // namespace vpga::pack
