#include "pack/layout_svg.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace vpga::pack {

std::string layout_svg(const netlist::Netlist& nl, const PackedDesign& packed,
                       const core::PlbArchitecture& arch) {
  const int gw = packed.grid_w, gh = packed.grid_h;
  const double cell = 12.0;  // pixels per tile
  const double margin = 24.0;

  // Per-tile slot usage and content flags.
  int total_slots = 0;
  for (int c = 0; c < core::kNumPlbComponents; ++c)
    total_slots += arch.component_count[static_cast<std::size_t>(c)];
  std::vector<int> used(static_cast<std::size_t>(gw) * gh, 0);
  std::vector<char> has_fa(static_cast<std::size_t>(gw) * gh, 0);
  std::vector<char> has_ff(static_cast<std::size_t>(gw) * gh, 0);
  for (netlist::NodeId id : nl.all_nodes()) {
    const auto& n = nl.node(id);
    const int t = packed.tile_of_node[id.index()];
    if (t < 0) continue;
    if (n.type == netlist::NodeType::kDff) {
      has_ff[static_cast<std::size_t>(t)] = 1;
      used[static_cast<std::size_t>(t)] += 1;
    } else if (n.type == netlist::NodeType::kComb && n.has_config()) {
      if (n.in_macro() && n.macro_rep != id) continue;  // counted at rep
      const auto tag = static_cast<core::ConfigKind>(n.config_tag);
      if (tag == core::ConfigKind::kFullAdder) has_fa[static_cast<std::size_t>(t)] = 1;
      used[static_cast<std::size_t>(t)] +=
          static_cast<int>(core::config_spec(tag).needs.size());
    }
  }

  std::ostringstream os;
  const double w = margin * 2 + gw * cell;
  const double h = margin * 2 + gh * cell + 40;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << w << "' height='" << h
     << "' viewBox='0 0 " << w << ' ' << h << "'>\n";
  os << "<rect width='100%' height='100%' fill='white'/>\n";
  os << "<text x='" << margin << "' y='16' font-family='monospace' font-size='12'>"
     << nl.name() << " on " << arch.name << ": " << packed.plbs_used << '/' << gw * gh
     << " tiles</text>\n";
  for (int y = 0; y < gh; ++y) {
    for (int x = 0; x < gw; ++x) {
      const std::size_t t = static_cast<std::size_t>(y) * gw + x;
      const double fill = total_slots > 0
                              ? std::min(1.0, static_cast<double>(used[t]) / total_slots)
                              : 0.0;
      // Empty: light gray; occupied: blue ramp; FA macro: orange outline.
      const int blue = static_cast<int>(235 - fill * 160);
      const char* stroke = has_fa[t] ? "#d95f02" : "#999";
      os << "<rect x='" << margin + x * cell << "' y='" << margin + y * cell << "' width='"
         << cell - 1 << "' height='" << cell - 1 << "' fill='rgb(" << blue - 20 << ','
         << blue << ",245)' stroke='" << stroke << "' stroke-width='"
         << (has_fa[t] ? 1.5 : 0.4) << "'/>\n";
      if (has_ff[t])
        os << "<circle cx='" << margin + x * cell + cell / 2 << "' cy='"
           << margin + y * cell + cell / 2 << "' r='1.6' fill='#1b9e77'/>\n";
    }
  }
  const double ly = margin + gh * cell + 18;
  os << "<text x='" << margin << "' y='" << ly
     << "' font-family='monospace' font-size='10'>shade = slot utilization; orange "
        "outline = full-adder macro; dot = flip-flop</text>\n";
  os << "</svg>\n";
  return os.str();
}

bool write_layout_svg(const std::string& path, const netlist::Netlist& nl,
                      const PackedDesign& packed, const core::PlbArchitecture& arch) {
  std::ofstream os(path);
  if (!os) return false;
  os << layout_svg(nl, packed, arch);
  return static_cast<bool>(os);
}

}  // namespace vpga::pack
