#pragma once
/// \file lint.hpp
/// Structural netlist lint — stage-independent well-formedness rules.
///
/// The lint is defensive: unlike Netlist::topo_order() (which asserts) it
/// must survive arbitrarily corrupt netlists and report *all* violations, so
/// every traversal bounds-checks ids before following them. Rules:
///
///   lint.invalid-fanin    a fanin handle is invalid or out of range
///   lint.undriven-dff     a DFF's D pin was never connected
///   lint.output-read      a node uses a primary output as a fanin
///   lint.arity-mismatch   func.num_vars() != fanins.size() on a comb node
///   lint.io-boundary      inputs/constants with fanins, outputs without
///                         exactly one, or a constant with a non-0-ary table
///   lint.comb-cycle       combinational cycle (DFF-aware: Q->D paths are ok)
///   lint.duplicate-name   two distinct nodes share a nonempty name (warning)
///   lint.unreachable      comb node feeds no output or register (warning)

#include "netlist/netlist.hpp"
#include "verify/diagnostic.hpp"

namespace vpga::verify {

/// Runs every structural rule on `nl`, tagging findings with `stage`.
void lint_netlist(const netlist::Netlist& nl, const std::string& stage, VerifyReport& report);

}  // namespace vpga::verify
