#pragma once
/// \file rules.hpp
/// The canonical catalogue of verification rule ids.
///
/// Single source of truth for every rule the checkers can emit: the docs
/// table in docs/VERIFY.md and the coverage tests in tests/test_verify.cpp
/// are both checked against this list, so a rule added to a checker without
/// a doc row and a seeded-corruption test fails CI rather than drifting.

#include <array>
#include <string_view>

namespace vpga::verify {

inline constexpr std::array<std::string_view, 28> kRuleCatalogue = {
    // Structural lint (any stage).
    "lint.invalid-fanin",
    "lint.undriven-dff",
    "lint.output-read",
    "lint.arity-mismatch",
    "lint.io-boundary",
    "lint.comb-cycle",
    "lint.duplicate-name",
    "lint.unreachable",
    // Post-map legality.
    "map.unmapped-node",
    "map.illegal-cell",
    "map.cell-function-mismatch",
    // Post-compact / post-buffer legality.
    "compact.missing-config",
    "compact.bad-config-tag",
    "compact.unsupported-config",
    "compact.config-overflow",
    "compact.macro-rep",
    // Post-pack legality.
    "pack.unassigned",
    "pack.tile-bounds",
    "pack.capacity",
    "pack.macro-split",
    // Post-route legality.
    "route.via-budget",
    // Equivalence gate.
    "equiv.interface-mismatch",
    "equiv.output-diverges",
    // Exact (SAT-backed) equivalence gate.
    "cec.interface-mismatch",
    "cec.output-diverges",
    "cec.state-diverges",
    "cec.state-unmatched",
    "cec.resource-limit",
};

}  // namespace vpga::verify
