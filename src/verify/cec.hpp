#pragma once
/// \file cec.hpp
/// Exact combinational equivalence checking (the `verify_level = exact` gate).
///
/// Where the random-stimulus gate (equiv.hpp) samples, this checker proves.
/// Each check point — a primary output's driver or a DFF's D driver — is
/// compared between the golden and revised netlists through a tier ladder,
/// cheapest first:
///
///   1. structural: shared signature hashing across both netlists; identical
///      cones are equivalent without touching their function.
///   2. truth table: cones whose union support fits 6 variables collapse to
///      logic::TruthTable and compare directly, with the NPN canonical
///      tables (<= 4 vars) as an O(1) inequivalence pre-filter.
///   3. exhaustive: union support up to `max_exhaustive_inputs` is swept
///      completely with the 64-way bit simulator (2^n / 64 evaluations).
///   4. SAT: everything else becomes a per-point miter over one incremental
///      CDCL solver (sat/solver.hpp) — selector assumptions retire solved
///      points while learned clauses carry over to the next. Before the first
///      miter, a SAT-sweeping pass simulates both netlists on shared
///      deterministic stimulus, pairs internal nodes by signature, and proves
///      the candidates bottom-up, merging equal nodes across the two sides so
///      deep miters (multiplier outputs, wide datapaths) collapse instead of
///      exploding.
///
/// Any inequivalence produces a full-interface counterexample which is
/// replayed through the bit simulator on the *original* netlists before
/// being reported, so a reported counterexample always witnesses the diff.
/// Every tier is deterministic, so verdicts, statistics and counterexamples
/// are byte-stable across runs and thread counts.
///
/// Rule ids (emitted by the check_cec wrapper):
///   cec.interface-mismatch  PI/PO/DFF counts differ between the netlists
///   cec.output-diverges     a primary output function differs (cex attached)
///   cec.state-diverges      a DFF next-state function differs (cex attached)
///   cec.resource-limit      a point exhausted the SAT conflict budget

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"
#include "verify/diagnostic.hpp"

namespace vpga::verify {

struct CecOptions {
  /// Run the structural-signature tier (disable to benchmark lower tiers).
  bool structural_tier = true;
  /// Union-support ceiling for the exhaustive bit-simulation tier; larger
  /// cones go to SAT. 16 => at most 1024 64-wide evaluation sweeps per point.
  int max_exhaustive_inputs = 16;
  /// Per-point SAT conflict budget; exhausting it yields cec.resource-limit
  /// (a warning) instead of an unbounded solve.
  long long sat_conflict_budget = 1 << 20;
  /// Run the SAT-sweeping pass before the first miter (disable to benchmark
  /// the raw per-point solver).
  bool sat_sweep = true;
};

/// A witness assignment over the full golden interface: inputs[i] / state[d]
/// are 0/1 values aligned with golden.inputs() / golden.dffs().
struct CecCounterexample {
  std::vector<std::uint8_t> inputs;
  std::vector<std::uint8_t> state;
  std::size_t point_index = 0;  ///< output index, or DFF index when is_state
  bool is_state = false;
  std::string point;            ///< interface name of the diverging point
};

struct CecReport {
  bool interface_ok = true;
  /// True when every point proved equivalent (unknowns excluded — see
  /// `unknown`); meaningless when interface_ok is false.
  bool equivalent = true;
  int checks = 0;           ///< points compared
  int tier_struct = 0;      ///< settled by structural signatures
  int tier_table = 0;       ///< settled by truth-table comparison
  int tier_exhaustive = 0;  ///< settled by exhaustive bit simulation
  int tier_sat = 0;         ///< settled by the SAT miter
  int npn_rejects = 0;      ///< inequivalences pre-filtered by NPN canon
  long long sweep_merges = 0;  ///< internal nodes proven equal by SAT sweeping
  int unknown = 0;          ///< points that exhausted the SAT budget
  std::vector<std::string> unknown_points;
  std::optional<CecCounterexample> cex;
  sat::SolverStats sat_stats;
  long long hashcons_hits = 0;

  [[nodiscard]] bool proven() const {
    return interface_ok && equivalent && unknown == 0;
  }
};

/// Proves or refutes combinational equivalence of every output and next-state
/// function. Both netlists must be structurally clean (lint first: cone
/// traversal needs valid references and acyclic logic).
[[nodiscard]] CecReport check_combinational_equivalence(const netlist::Netlist& golden,
                                                        const netlist::Netlist& revised,
                                                        const CecOptions& opts = {});

/// Order-sensitive structural fingerprint of a netlist (node types, function
/// words, fanin wiring, interface sizes), transparent to 1-input identity
/// buffers. The flow uses it to skip re-proving a stage boundary whose logic
/// function structure is unchanged since the last proven one — buffering,
/// pack, place and route do not rewrite logic, so their boundaries are
/// cache hits.
[[nodiscard]] std::uint64_t netlist_fingerprint(const netlist::Netlist& nl);

/// FlowVerifier wrapper: runs the checker and converts the outcome into
/// cec.* diagnostics on `report`. When the environment variable
/// VPGA_CEC_CEX_PATH is set, a refutation also writes the counterexample as
/// JSON to that path (the CI exact-gate uploads it as an artifact).
void check_cec(const netlist::Netlist& golden, const netlist::Netlist& revised,
               const std::string& stage, VerifyReport& report, const CecOptions& opts = {});

}  // namespace vpga::verify
