#pragma once
/// \file cec.hpp
/// Exact combinational equivalence checking (the `verify_level = exact` gate).
///
/// Where the random-stimulus gate (equiv.hpp) samples, this checker proves.
/// Each check point — a primary output's driver or a DFF's D driver — is
/// compared between the golden and revised netlists through a tier ladder,
/// cheapest first:
///
///   1. structural: shared signature hashing across both netlists; identical
///      cones are equivalent without touching their function.
///   2. truth table: cones whose union support fits 6 variables collapse to
///      logic::TruthTable and compare directly, with the NPN canonical
///      tables (<= 4 vars) as an O(1) inequivalence pre-filter.
///   3. exhaustive: union support up to `max_exhaustive_inputs` is swept
///      completely with the 64-way bit simulator (2^n / 64 evaluations).
///   4. BDD: both cones are built as ROBDDs (bdd/bdd.hpp) in one manager
///      under a shared, DFS-derived variable order, so equivalence is a root
///      edge compare. A hard node budget bounds the tier; exhausting it falls
///      through to SAT instead of growing. This is the complete tier for
///      XOR-dominated cones (parity chains, carry trees) where CDCL clause
///      learning scales exponentially but BDDs stay linear.
///   5. SAT: everything else becomes a per-point miter over one incremental
///      CDCL solver (sat/solver.hpp) — selector assumptions retire solved
///      points while learned clauses carry over to the next. Before the first
///      miter, a SAT-sweeping pass simulates both netlists on shared
///      deterministic stimulus, pairs internal nodes by signature, and proves
///      the candidates bottom-up, merging equal nodes across the two sides so
///      deep miters (multiplier outputs, wide datapaths) collapse instead of
///      exploding.
///
/// Sequential netlists are first aligned by *register correspondence*:
/// instead of assuming DFF i on one side is DFF i on the other, registers are
/// partition-refined by 256-pattern next-state simulation signatures plus
/// structural cone fingerprints (jointly over both sides, so class ids are
/// side-independent), then paired within classes. Netlists whose registers
/// were reordered or renamed therefore still verify; registers with no
/// signature-compatible partner on the other side are reported via
/// cec.state-unmatched and no point comparison is attempted (without a state
/// bijection the combinational comparison is not well defined).
///
/// Any inequivalence produces a full-interface counterexample which is
/// replayed through the bit simulator on the *original* netlists before
/// being reported, so a reported counterexample always witnesses the diff.
/// Every tier is deterministic, so verdicts, statistics and counterexamples
/// are byte-stable across runs and thread counts.
///
/// Rule ids (emitted by the check_cec wrapper):
///   cec.interface-mismatch  PI/PO/DFF counts differ between the netlists
///   cec.output-diverges     a primary output function differs (cex attached)
///   cec.state-diverges      a DFF next-state function differs (cex attached)
///   cec.state-unmatched     a register has no correspondence partner
///   cec.resource-limit      a point exhausted the SAT conflict budget

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"
#include "verify/diagnostic.hpp"

namespace vpga::verify {

struct CecOptions {
  /// Run the structural-signature tier (disable to benchmark lower tiers).
  bool structural_tier = true;
  /// Union-support ceiling for the exhaustive bit-simulation tier; larger
  /// cones go to SAT. 16 => at most 1024 64-wide evaluation sweeps per point.
  int max_exhaustive_inputs = 16;
  /// Per-point SAT conflict budget; exhausting it yields cec.resource-limit
  /// (a warning) instead of an unbounded solve.
  long long sat_conflict_budget = 1 << 20;
  /// Run the SAT-sweeping pass before the first miter (disable to benchmark
  /// the raw per-point solver).
  bool sat_sweep = true;
  /// Run the BDD tier between the exhaustive sweep and SAT (disable to
  /// benchmark the raw SAT tier).
  bool bdd_tier = true;
  /// Per-point node budget for the BDD tier; exhausting it abandons the
  /// point's BDDs and falls through to SAT instead of growing without bound.
  std::uint32_t bdd_node_budget = 1u << 18;
  /// Route every point straight to the BDD tier, bypassing the structural,
  /// truth-table and exhaustive tiers (SAT remains the exhaustion fallback).
  /// The CI forced-BDD exact run sets this via VPGA_CEC_FORCE_BDD=1, which
  /// the check_cec wrapper honours.
  bool force_bdd = false;
};

/// A witness assignment over the full golden interface: inputs[i] / state[d]
/// are 0/1 values aligned with golden.inputs() / golden.dffs().
struct CecCounterexample {
  std::vector<std::uint8_t> inputs;
  std::vector<std::uint8_t> state;
  std::size_t point_index = 0;  ///< output index, or DFF index when is_state
  bool is_state = false;
  std::string point;            ///< interface name of the diverging point
};

struct CecReport {
  bool interface_ok = true;
  /// True when every point proved equivalent (unknowns excluded — see
  /// `unknown`); meaningless when interface_ok is false.
  bool equivalent = true;
  int checks = 0;           ///< points compared
  int tier_struct = 0;      ///< settled by structural signatures
  int tier_table = 0;       ///< settled by truth-table comparison
  int tier_exhaustive = 0;  ///< settled by exhaustive bit simulation
  int tier_bdd = 0;         ///< settled by ROBDD root comparison
  int tier_sat = 0;         ///< settled by the SAT miter
  int npn_rejects = 0;      ///< inequivalences pre-filtered by NPN canon
  long long sweep_merges = 0;  ///< internal nodes proven equal by SAT sweeping
  int unknown = 0;          ///< points that exhausted the SAT budget
  std::vector<std::string> unknown_points;
  std::optional<CecCounterexample> cex;
  sat::SolverStats sat_stats;
  long long hashcons_hits = 0;
  /// BDD tier statistics (cumulative over every point the tier attempted).
  long long bdd_nodes = 0;      ///< nodes allocated across all per-point managers
  long long bdd_ite_calls = 0;  ///< non-terminal ITE recursions
  long long bdd_cache_hits = 0; ///< computed-cache hits
  int bdd_fallbacks = 0;        ///< budget exhaustions that fell through to SAT
  /// Register-correspondence statistics (zero on purely combinational pairs).
  int corr_classes = 0;   ///< refinement classes at the fixpoint
  int corr_rounds = 0;    ///< refinement rounds until the fixpoint
  int corr_permuted = 0;  ///< registers matched away from their position
  int corr_fallbacks = 0; ///< signature-unmatched registers paired positionally
  /// Registers with no partner ("name" golden side, "revised:name" revised
  /// side). Non-empty => no point comparison ran (see file comment).
  std::vector<std::string> unmatched_registers;

  [[nodiscard]] bool proven() const {
    return interface_ok && equivalent && unknown == 0 && unmatched_registers.empty();
  }
};

/// Proves or refutes combinational equivalence of every output and next-state
/// function. Both netlists must be structurally clean (lint first: cone
/// traversal needs valid references and acyclic logic).
[[nodiscard]] CecReport check_combinational_equivalence(const netlist::Netlist& golden,
                                                        const netlist::Netlist& revised,
                                                        const CecOptions& opts = {});

/// Order-sensitive structural fingerprint of a netlist (node types, function
/// words, fanin wiring, interface sizes), transparent to 1-input identity
/// buffers. The flow uses it to skip re-proving a stage boundary whose logic
/// function structure is unchanged since the last proven one — buffering,
/// pack, place and route do not rewrite logic, so their boundaries are
/// cache hits.
[[nodiscard]] std::uint64_t netlist_fingerprint(const netlist::Netlist& nl);

/// FlowVerifier wrapper: runs the checker and converts the outcome into
/// cec.* diagnostics on `report`. When the environment variable
/// VPGA_CEC_CEX_PATH is set, a refutation also writes the counterexample as
/// JSON to that path (the CI exact-gate uploads it as an artifact).
void check_cec(const netlist::Netlist& golden, const netlist::Netlist& revised,
               const std::string& stage, VerifyReport& report, const CecOptions& opts = {});

}  // namespace vpga::verify
