#include "verify/equiv.hpp"

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "netlist/bitsim.hpp"
#include "obs/obs.hpp"

namespace vpga::verify {

using netlist::BitSimulator;
using netlist::Netlist;
using netlist::NodeId;

namespace {

/// Transitive-fanin cone of one node: node count plus the primary inputs it
/// depends on (the region to inspect when this output diverges).
std::string describe_cone(const Netlist& nl, NodeId root) {
  std::vector<char> seen(nl.num_nodes(), 0);
  std::vector<std::uint32_t> stack;
  stack.reserve(nl.num_nodes());
  stack.push_back(root.value());
  seen[root.index()] = 1;
  int nodes = 0, inputs = 0;
  while (!stack.empty()) {
    const NodeId id{static_cast<std::size_t>(stack.back())};
    stack.pop_back();
    ++nodes;
    if (nl.node(id).type == netlist::NodeType::kInput) ++inputs;
    for (NodeId fi : nl.fanins(id)) {
      if (!fi.valid() || fi.index() >= nl.num_nodes() || seen[fi.index()]) continue;
      seen[fi.index()] = 1;
      stack.push_back(fi.value());
    }
  }
  return std::to_string(nodes) + " nodes / " + std::to_string(inputs) +
         " supporting inputs";
}

}  // namespace

void check_equivalence(const Netlist& golden, const Netlist& revised,
                       const std::string& stage, VerifyReport& report,
                       const EquivOptions& opts) {
  if (golden.inputs().size() != revised.inputs().size() ||
      golden.outputs().size() != revised.outputs().size()) {
    report.add(Severity::kError, "equiv.interface-mismatch", stage, NodeId{},
               "interface differs: " + std::to_string(golden.inputs().size()) + "/" +
                   std::to_string(golden.outputs().size()) + " PI/PO vs " +
                   std::to_string(revised.inputs().size()) + "/" +
                   std::to_string(revised.outputs().size()));
    return;
  }

  // 64 independent pattern streams per cycle; registers clock in lockstep
  // from the all-zero reset state, each netlist tracking its own state words.
  BitSimulator sa(golden), sb(revised);
  std::vector<std::uint64_t> state_a(golden.dffs().size(), 0);
  std::vector<std::uint64_t> state_b(revised.dffs().size(), 0);
  common::Rng rng(opts.seed);

  for (int cycle = 0; cycle < opts.cycles; ++cycle) {
    obs::count("verify.equiv.vectors", 64);  // one 64-wide pattern word per cycle
    for (std::size_t i = 0; i < golden.inputs().size(); ++i) {
      const std::uint64_t w = rng.next_u64();
      sa.set_input(i, w);
      sb.set_input(i, w);
    }
    for (std::size_t d = 0; d < state_a.size(); ++d) sa.set_state(d, state_a[d]);
    for (std::size_t d = 0; d < state_b.size(); ++d) sb.set_state(d, state_b[d]);
    sa.eval();
    sb.eval();

    for (std::size_t o = 0; o < golden.outputs().size(); ++o) {
      const std::uint64_t diff = sa.output(o) ^ sb.output(o);
      if (diff == 0) continue;
      const NodeId out = revised.outputs()[o];
      const int pattern = __builtin_ctzll(diff);
      report.add(Severity::kError, "equiv.output-diverges", stage, out,
                 "output '" + revised.name_of(out) + "' (index " + std::to_string(o) +
                     ") diverges at cycle " + std::to_string(cycle) + ", pattern " +
                     std::to_string(pattern) + "; revised cone: " +
                     describe_cone(revised, out));
      return;  // first diverging cone only; later mismatches are downstream noise
    }

    for (std::size_t d = 0; d < state_a.size(); ++d) state_a[d] = sa.next_state(d);
    for (std::size_t d = 0; d < state_b.size(); ++d) state_b[d] = sb.next_state(d);
  }
}

}  // namespace vpga::verify
