#include "verify/verify.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "obs/obs.hpp"

namespace vpga::verify {

const char* to_string(Stage s) {
  switch (s) {
    case Stage::kInput: return "input";
    case Stage::kPostMap: return "post-map";
    case Stage::kPostCompact: return "post-compact";
    case Stage::kPostBuffer: return "post-buffer";
    case Stage::kPostPack: return "post-pack";
    case Stage::kPostRoute: return "post-route";
  }
  return "?";
}

VerifyReport FlowVerifier::check(Stage stage, const netlist::Netlist& nl,
                                 const netlist::Netlist* golden,
                                 const pack::PackedDesign* packed) {
  VerifyReport local;
  if (opts_.level == VerifyLevel::kOff) return local;

  const std::string name = to_string(stage);
  const obs::Span span("verify." + name);
  obs::count("verify.checks");
  lint_netlist(nl, name, local);

  switch (stage) {
    case Stage::kInput:
      break;
    case Stage::kPostMap:
      check_post_map(nl, arch_, name, local);
      break;
    case Stage::kPostCompact:
    case Stage::kPostBuffer:
      check_post_compact(nl, arch_, name, local);
      break;
    case Stage::kPostPack:
      check_post_compact(nl, arch_, name, local);
      VPGA_ASSERT_MSG(packed != nullptr, "post-pack check needs the PackedDesign");
      check_post_pack(nl, *packed, arch_, name, local);
      break;
    case Stage::kPostRoute:
      VPGA_ASSERT_MSG(packed != nullptr, "post-route check needs the PackedDesign");
      check_post_route(nl, *packed, arch_, name, local);
      break;
  }

  // The equivalence gates need a valid topological order, so they only run on
  // netlists the lint passed without errors.
  if (golden != nullptr && stage != Stage::kInput && !local.has_errors()) {
    if (opts_.level == VerifyLevel::kLintEquiv)
      check_equivalence(*golden, nl, name, local, opts_.equiv);
    else if (opts_.level == VerifyLevel::kExact) {
      // The fingerprint is buffer-transparent, so boundaries that did not
      // change the logic function structure — pack, place, route, and the
      // buffering stage itself — skip the re-proof: the last proven pair is
      // the identical proof obligation.
      const std::uint64_t fp =
          netlist_fingerprint(*golden) * 0x100000001B3ull ^ netlist_fingerprint(nl);
      if (cec_has_proven_fp_ && fp == cec_proven_fp_) {
        obs::count("cec.cache_hits");
      } else {
        check_cec(*golden, nl, name, local, opts_.cec);
        if (!local.has_errors() && !local.fired("cec.resource-limit")) {
          cec_proven_fp_ = fp;
          cec_has_proven_fp_ = true;
        }
      }
    }
  }

  obs::count("verify.findings", static_cast<long long>(local.diagnostics().size()));
  for (const auto& d : local.diagnostics()) {
    if (d.severity == Severity::kError) {
      obs::count("verify.errors");
      // Error findings go straight to the flight recorder too: if enforce()
      // aborts the run, the forensics dump names the violated rule.
      obs::flight::record(obs::flight::EventKind::kVerify, d.rule,
                          static_cast<std::int64_t>(d.severity),
                          d.node.valid() ? d.node.index() : -1);
    }
    report_.add(d.severity, d.rule, d.stage, d.node, d.message);
  }
  // One summary event per boundary check (name = stage, a = findings,
  // b = errors) so a dump shows how far verification got.
  obs::flight::record(obs::flight::EventKind::kVerify, name,
                      static_cast<std::int64_t>(local.diagnostics().size()),
                      static_cast<std::int64_t>(local.error_count()));
  return local;
}

void enforce(const VerifyReport& report) {
  if (!report.has_errors()) return;  // warnings stay in the report, not on stderr
  // fabriclint: disable(io.stray-stream) -- enforce() is the documented abort
  // path: diagnostics must reach stderr before VPGA_ASSERT terminates.
  std::fputs(report.summary().c_str(), stderr);
  // Ship the postmortem before aborting: the dump latches, so the SIGABRT
  // raised below cannot overwrite the verify-failure reason.
  obs::flight_event("verify.abort", report.error_count());
  obs::flight::dump_forensics("verify-failure");
  VPGA_ASSERT_MSG(!report.has_errors(), "flow verification failed (see diagnostics above)");
}

}  // namespace vpga::verify
