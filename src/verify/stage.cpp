#include "verify/stage.hpp"

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/concurrency.hpp"
#include "core/vias.hpp"
#include "obs/obs.hpp"
#include "synth/mapper.hpp"

namespace vpga::verify {

using core::ConfigKind;
using core::PlbArchitecture;
using library::CellKind;
using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;
using netlist::NodeType;

namespace {

bool in_range(const Netlist& nl, NodeId id) {
  return id.valid() && id.index() < nl.num_nodes();
}

bool is_free_rider_cell(const Node& n) {
  return n.cell.has_value() && (*n.cell == CellKind::kInv || *n.cell == CellKind::kBuf);
}

/// Backing store of verify::via_tally(). check_post_route runs on four
/// threads under a parallel compare, hence the lock discipline.
struct ViaTally {
  std::mutex mu;
  long long checks FABRIC_GUARDED_BY(mu) = 0;
  long long overruns FABRIC_GUARDED_BY(mu) = 0;
};

ViaTally& via_tally_storage() {
  static ViaTally tally;
  return tally;
}

}  // namespace

void check_post_map(const Netlist& nl, const PlbArchitecture& arch, const std::string& stage,
                    VerifyReport& report) {
  // The architecture's restricted component library, exactly as the mapper
  // sees it (plus the polarity/fanout repair cells).
  const auto target = synth::cell_target(arch);
  bool allowed[library::kNumCellKinds] = {};
  for (const auto& opt : target.options)
    if (opt.cell) allowed[static_cast<std::size_t>(*opt.cell)] = true;
  allowed[static_cast<std::size_t>(CellKind::kInv)] = true;
  allowed[static_cast<std::size_t>(CellKind::kBuf)] = true;

  const auto& lib = library::CellLibrary::standard();
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const NodeId id{i};
    const Node& n = nl.node(id);
    if (n.type != NodeType::kComb) continue;
    if (!n.cell) {
      report.add(Severity::kError, "map.unmapped-node", stage, id,
                 "combinational node carries no library cell after mapping");
      continue;
    }
    if (!allowed[static_cast<std::size_t>(*n.cell)]) {
      report.add(Severity::kError, "map.illegal-cell", stage, id,
                 std::string("cell ") + library::to_string(*n.cell) +
                     " is not in the restricted library of " + arch.name);
      continue;
    }
    if (n.func.num_vars() > 3) {
      report.add(Severity::kError, "map.illegal-cell", stage, id,
                 "node has " + std::to_string(n.func.num_vars()) +
                     " inputs; no restricted cell has more than 3");
      continue;
    }
    // Exact coverage: the node's function must be realizable by the cell
    // under the via-programmable pin freedoms.
    if (n.func.num_vars() == n.num_fanins() &&
        !lib.spec(*n.cell).coverage.test(n.func.extend(3).bits() & 0xFF))
      report.add(Severity::kError, "map.cell-function-mismatch", stage, id,
                 std::string("function ") + n.func.to_string() +
                     " is outside the coverage set of " + library::to_string(*n.cell));
  }
}

void check_post_compact(const Netlist& nl, const PlbArchitecture& arch,
                        const std::string& stage, VerifyReport& report) {
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const NodeId id{i};
    const Node& n = nl.node(id);

    if (n.in_macro()) {
      const NodeId rep = n.macro_rep;
      if (!in_range(nl, rep) || !nl.node(rep).in_macro() ||
          nl.node(rep).macro_rep != rep)
        report.add(Severity::kError, "compact.macro-rep", stage, id,
                   "macro grouping is broken: representative does not point at itself");
    }

    if (n.type != NodeType::kComb) continue;
    if (!n.has_config()) {
      if (!is_free_rider_cell(n))
        report.add(Severity::kError, "compact.missing-config", stage, id,
                   "comb node has neither a PLB configuration nor an INV/BUF cell");
      continue;
    }
    if (n.config_tag >= core::kNumConfigKinds) {
      report.add(Severity::kError, "compact.bad-config-tag", stage, id,
                 "config_tag " + std::to_string(n.config_tag) +
                     " does not name a ConfigKind");
      continue;
    }
    const auto kind = static_cast<ConfigKind>(n.config_tag);
    if (!arch.supports(kind)) {
      report.add(Severity::kError, "compact.unsupported-config", stage, id,
                 std::string("configuration ") + core::to_string(kind) +
                     " is not supported by " + arch.name);
      continue;
    }
    if (!core::fits_in_one_plb(arch, {kind}))
      report.add(Severity::kError, "compact.config-overflow", stage, id,
                 std::string("configuration ") + core::to_string(kind) +
                     " exceeds one " + arch.name + " tile's component slots");
  }
}

void check_post_pack(const Netlist& nl, const pack::PackedDesign& packed,
                     const PlbArchitecture& arch, const std::string& stage,
                     VerifyReport& report) {
  if (packed.tile_of_node.size() != nl.num_nodes()) {
    report.add(Severity::kError, "pack.tile-bounds", stage, NodeId{},
               "tile assignment covers " + std::to_string(packed.tile_of_node.size()) +
                   " nodes but the netlist has " + std::to_string(nl.num_nodes()));
    return;
  }
  const int tiles = packed.grid_w * packed.grid_h;

  auto consumes_slots = [&](const Node& n) {
    return n.type == NodeType::kDff || (n.type == NodeType::kComb && n.has_config());
  };
  auto config_of = [](const Node& n) {
    return n.type == NodeType::kDff ? ConfigKind::kFf
                                    : static_cast<ConfigKind>(n.config_tag);
  };

  // Occupancy per tile (flat, indexed by tile id — every insertion below is
  // bounds-checked first), with each macro contributing its representative's
  // combined configuration once (the packer's atomic-unit semantics).
  std::vector<std::vector<ConfigKind>> occupancy(static_cast<std::size_t>(tiles));
  std::unordered_map<std::uint32_t, int> macro_tile;
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const NodeId id{i};
    const Node& n = nl.node(id);
    const int tile = packed.tile_of_node[i];
    if (!consumes_slots(n)) {
      if (tile >= tiles)
        report.add(Severity::kError, "pack.tile-bounds", stage, id,
                   "tile " + std::to_string(tile) + " outside the " +
                       std::to_string(packed.grid_w) + "x" +
                       std::to_string(packed.grid_h) + " grid");
      continue;
    }
    if (n.config_tag != Node::kNoConfig && n.config_tag >= core::kNumConfigKinds)
      continue;  // reported by the post-compact rules; occupancy undefined
    if (tile < 0) {
      report.add(Severity::kError, "pack.unassigned", stage, id,
                 "slot-consuming node was never assigned a tile");
      continue;
    }
    if (tile >= tiles) {
      report.add(Severity::kError, "pack.tile-bounds", stage, id,
                 "tile " + std::to_string(tile) + " outside the " +
                     std::to_string(packed.grid_w) + "x" +
                     std::to_string(packed.grid_h) + " grid");
      continue;
    }
    if (n.in_macro() && in_range(nl, n.macro_rep)) {
      const auto [it, inserted] = macro_tile.emplace(n.macro_rep.value(), tile);
      if (!inserted) {
        if (it->second != tile)
          report.add(Severity::kError, "pack.macro-split", stage, id,
                     "macro member in tile " + std::to_string(tile) +
                         " but its representative group is in tile " +
                         std::to_string(it->second));
        continue;  // the group's configuration was already counted once
      }
      occupancy[static_cast<std::size_t>(tile)].push_back(config_of(nl.node(n.macro_rep)));
      continue;
    }
    occupancy[static_cast<std::size_t>(tile)].push_back(config_of(n));
  }

  for (int tile = 0; tile < tiles; ++tile) {
    const auto& contents = occupancy[static_cast<std::size_t>(tile)];
    if (contents.empty()) continue;
    if (!core::fits_in_one_plb(arch, contents))
      report.add(Severity::kError, "pack.capacity", stage, NodeId{},
                 "tile " + std::to_string(tile) + " holds " +
                     std::to_string(contents.size()) +
                     " configurations exceeding one " + arch.name + " tile");
  }
}

void check_post_route(const Netlist& nl, const pack::PackedDesign& packed,
                      const PlbArchitecture& arch, const std::string& stage,
                      VerifyReport& report) {
  if (packed.tile_of_node.size() != nl.num_nodes()) return;  // reported post-pack
  const int tiles = packed.grid_w * packed.grid_h;
  if (tiles <= 0) return;
  const int budget = core::potential_via_sites(arch);

  auto tile_of = [&](NodeId id) {
    const int t = packed.tile_of_node[id.index()];
    return t >= 0 && t < tiles ? t : -1;
  };

  // Configuration vias: each placed instance programs vias_for_config() sites
  // in its tile; a macro's combined configuration is programmed once, in the
  // representative's tile.
  std::vector<long long> usage(static_cast<std::size_t>(tiles), 0);
  for (NodeId id : nl.all_nodes()) {
    const Node& n = nl.node(id);
    if (n.in_macro() && n.macro_rep != id) continue;
    const int tile = tile_of(id);
    if (tile < 0) continue;
    if (n.type == NodeType::kDff)
      usage[static_cast<std::size_t>(tile)] += core::vias_for_config(ConfigKind::kFf);
    else if (n.type == NodeType::kComb && n.has_config() &&
             n.config_tag < core::kNumConfigKinds)
      usage[static_cast<std::size_t>(tile)] +=
          core::vias_for_config(static_cast<ConfigKind>(n.config_tag));
  }

  // Routing-tap vias, counted per *net*: a net leaving its driver's tile
  // taps up to the routing layers once at the driver, and taps back down
  // once in every tile where it terminates — in-tile fanout then distributes
  // on the tile's local interconnect without further via sites. (The
  // previous per-connection model charged a high-fanout driver one tap per
  // external sink, which overstated hot tiles by the net's external fanout
  // and tripped this gate on the network switch's distribution nets.)
  std::vector<std::uint64_t> taps;  // (driver index << 32) | sink tile
  taps.reserve(nl.num_nodes());
  for (NodeId id : nl.all_nodes()) {
    const int sink_tile = tile_of(id);
    if (sink_tile < 0) continue;
    for (NodeId fi : nl.fanins(id)) {
      if (!in_range(nl, fi)) continue;
      const int driver_tile = tile_of(fi);
      if (driver_tile < 0 || driver_tile == sink_tile) continue;
      taps.push_back(static_cast<std::uint64_t>(fi.index()) << 32 |
                     static_cast<std::uint32_t>(sink_tile));
    }
  }
  std::sort(taps.begin(), taps.end());
  taps.erase(std::unique(taps.begin(), taps.end()), taps.end());
  std::uint32_t last_driver = 0xFFFFFFFFu;
  for (const std::uint64_t tap : taps) {
    const auto driver = static_cast<std::uint32_t>(tap >> 32);
    const auto sink_tile = static_cast<std::uint32_t>(tap);
    ++usage[sink_tile];
    if (driver != last_driver) {
      last_driver = driver;
      ++usage[static_cast<std::size_t>(tile_of(NodeId(driver)))];
    }
  }

  long long overruns = 0;
  for (int tile = 0; tile < tiles; ++tile) {
    const long long used = usage[static_cast<std::size_t>(tile)];
    if (used <= budget) continue;
    ++overruns;
    report.add(Severity::kError, "route.via-budget", stage, NodeId{},
               "tile " + std::to_string(tile) + " needs " + std::to_string(used) +
                   " vias but one " + arch.name + " tile provides only " +
                   std::to_string(budget) + " candidate sites");
  }
  obs::count("verify.via_budget.overruns", overruns);
  {
    ViaTally& tally = via_tally_storage();
    const std::lock_guard<std::mutex> lock(tally.mu);
    ++tally.checks;
    tally.overruns += overruns;
  }
}

ViaTallySnapshot via_tally() {
  ViaTally& tally = via_tally_storage();
  const std::lock_guard<std::mutex> lock(tally.mu);
  return {tally.checks, tally.overruns};
}

}  // namespace vpga::verify
