#include "verify/lint.hpp"

#include <string>
#include <unordered_map>
#include <vector>

namespace vpga::verify {

using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;
using netlist::NodeType;

namespace {

bool in_range(const Netlist& nl, NodeId id) {
  return id.valid() && id.index() < nl.num_nodes();
}

/// Per-node structural rules (arity, references, boundary conventions).
void lint_nodes(const Netlist& nl, const std::string& stage, VerifyReport& report) {
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const NodeId id{i};
    const Node& n = nl.node(id);
    const auto fins = nl.fanins(id);

    for (std::size_t k = 0; k < fins.size(); ++k) {
      const NodeId fi = fins[k];
      if (!in_range(nl, fi)) {
        if (n.type == NodeType::kDff && !fi.valid()) {
          report.add(Severity::kError, "lint.undriven-dff", stage, id,
                     "DFF '" + nl.name_of(id) + "' has an unconnected D pin");
        } else {
          report.add(Severity::kError, "lint.invalid-fanin", stage, id,
                     "fanin " + std::to_string(k) + " is invalid or out of range");
        }
        continue;
      }
      if (nl.node(fi).type == NodeType::kOutput)
        report.add(Severity::kError, "lint.output-read", stage, id,
                   "fanin " + std::to_string(k) + " reads primary output '" +
                       nl.name_of(fi) + "'");
    }

    switch (n.type) {
      case NodeType::kComb:
        if (static_cast<std::size_t>(n.func.num_vars()) != fins.size())
          report.add(Severity::kError, "lint.arity-mismatch", stage, id,
                     "truth table has " + std::to_string(n.func.num_vars()) +
                         " vars but node has " + std::to_string(fins.size()) +
                         " fanins");
        break;
      case NodeType::kOutput:
        if (fins.size() != 1)
          report.add(Severity::kError, "lint.io-boundary", stage, id,
                     "primary output '" + nl.name_of(id) + "' must have exactly one fanin");
        break;
      case NodeType::kDff:
        if (fins.size() != 1)
          report.add(Severity::kError, "lint.io-boundary", stage, id,
                     "DFF '" + nl.name_of(id) + "' must have exactly one fanin (D)");
        break;
      case NodeType::kInput:
        if (!fins.empty())
          report.add(Severity::kError, "lint.io-boundary", stage, id,
                     "primary input '" + nl.name_of(id) + "' must not have fanins");
        break;
      case NodeType::kConst:
        if (!fins.empty())
          report.add(Severity::kError, "lint.io-boundary", stage, id,
                     "constant must not have fanins");
        else if (n.func.num_vars() != 0)
          report.add(Severity::kError, "lint.io-boundary", stage, id,
                     "constant must carry a 0-variable truth table");
        break;
    }
  }
}

/// DFF-aware combinational cycle detection (Kahn over comb/output nodes;
/// register outputs are sources, register D pins are sinks). Mirrors
/// Netlist::check() but reports instead of asserting and tolerates broken
/// references (they are reported separately by lint_nodes).
void lint_cycles(const Netlist& nl, const std::string& stage, VerifyReport& report) {
  const std::size_t n = nl.num_nodes();
  auto is_sink = [&](std::size_t i) {
    const NodeType t = nl.node(NodeId(i)).type;
    return t == NodeType::kComb || t == NodeType::kOutput;
  };
  std::vector<int> pending(n, 0);
  std::vector<std::vector<std::uint32_t>> fanouts(n);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_sink(i)) continue;
    ++expected;
    for (NodeId fi : nl.fanins(NodeId(i))) {
      if (!in_range(nl, fi)) continue;
      if (nl.node(fi).type == NodeType::kComb) {
        ++pending[i];
        fanouts[fi.index()].push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  std::vector<std::uint32_t> ready;
  ready.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    if (is_sink(i) && pending[i] == 0) ready.push_back(static_cast<std::uint32_t>(i));
  std::size_t visited = 0;
  while (!ready.empty()) {
    const std::uint32_t i = ready.back();
    ready.pop_back();
    ++visited;
    for (std::uint32_t o : fanouts[i])
      if (--pending[o] == 0) ready.push_back(o);
  }
  if (visited == expected) return;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_sink(i) && pending[i] > 0) {
      report.add(Severity::kError, "lint.comb-cycle", stage, NodeId(i),
                 "combinational cycle through this node (" +
                     std::to_string(expected - visited) + " nodes unorderable)");
      return;  // one cycle diagnostic per run; members overlap heavily
    }
  }
}

/// Warning rules: dead logic and ambiguous names.
void lint_hygiene(const Netlist& nl, const std::string& stage, VerifyReport& report) {
  // Reverse reachability from observation points (primary outputs and
  // register D pins); a comb node outside every observed cone is dead.
  std::vector<char> reached(nl.num_nodes(), 0);
  std::vector<std::uint32_t> stack;
  auto push_root = [&](NodeId id) {
    if (in_range(nl, id) && !reached[id.index()]) {
      reached[id.index()] = 1;
      stack.push_back(id.value());
    }
  };
  for (NodeId id : nl.outputs()) push_root(id);
  for (NodeId id : nl.dffs()) push_root(id);
  while (!stack.empty()) {
    const NodeId id{static_cast<std::size_t>(stack.back())};
    stack.pop_back();
    for (NodeId fi : nl.fanins(id)) push_root(fi);
  }
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const Node& n = nl.node(NodeId(i));
    if (n.type == NodeType::kComb && !reached[i])
      report.add(Severity::kWarning, "lint.unreachable", stage, NodeId(i),
                 "combinational node feeds no primary output or register");
  }

  std::unordered_map<std::string, std::size_t> first_named;
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const std::string& name = nl.name_of(NodeId(i));
    if (name.empty()) continue;
    const auto [it, inserted] = first_named.emplace(name, i);
    if (!inserted)
      report.add(Severity::kWarning, "lint.duplicate-name", stage, NodeId(i),
                 "name '" + name + "' already used by node " +
                     std::to_string(it->second));
  }
}

}  // namespace

void lint_netlist(const Netlist& nl, const std::string& stage, VerifyReport& report) {
  lint_nodes(nl, stage, report);
  lint_cycles(nl, stage, report);
  lint_hygiene(nl, stage, report);
}

}  // namespace vpga::verify
