#pragma once
/// \file verify.hpp
/// Flow-wide verification façade: one checker call per stage boundary.
///
/// The flow driver holds a FlowVerifier for the whole run and calls check()
/// after every transformation. Each call runs the structural lint, then the
/// stage's legality rules, then (at lint+equiv level, when a golden reference
/// is supplied and the netlist linted clean) the random-stimulus equivalence
/// gate against the original design. Findings accumulate in one VerifyReport;
/// enforce() aborts the process on error-severity findings, printing every
/// diagnostic first — so an illegal IR state is caught at the boundary where
/// it is introduced, not three stages later as a wrong benchmark number.
///
/// See docs/VERIFY.md for the rule catalogue and the stage contracts.

#include <cstdint>
#include <string>

#include "core/plb.hpp"
#include "netlist/netlist.hpp"
#include "pack/packer.hpp"
#include "verify/cec.hpp"
#include "verify/diagnostic.hpp"
#include "verify/equiv.hpp"
#include "verify/lint.hpp"
#include "verify/stage.hpp"

namespace vpga::verify {

/// How much checking the flow performs at each stage boundary.
enum class VerifyLevel : std::uint8_t {
  kOff,       ///< no checking (benchmarking the raw flow)
  kLint,      ///< structural lint + stage legality rules (cheap; default)
  kLintEquiv, ///< lint + random-stimulus equivalence against the input design
  kExact,     ///< lint + SAT-backed exact equivalence proof (cec.hpp)
};

/// Pipeline positions at which the flow calls the checker.
enum class Stage : std::uint8_t {
  kInput,        ///< the benchmark netlist entering the flow
  kPostMap,      ///< after technology mapping to the restricted library
  kPostCompact,  ///< after regularity-driven compaction into configurations
  kPostBuffer,   ///< after high-fanout buffering (physical synthesis)
  kPostPack,     ///< after legalization into the PLB array (flow b)
  kPostRoute,    ///< after routing over the array (flow b via-budget gate)
};
const char* to_string(Stage s);

struct VerifyOptions {
  VerifyLevel level = VerifyLevel::kLint;
  EquivOptions equiv;
  CecOptions cec;
};

/// Stage-boundary checker for one flow run on one architecture.
class FlowVerifier {
 public:
  FlowVerifier(const core::PlbArchitecture& arch, const VerifyOptions& opts)
      : arch_(arch), opts_(opts) {}

  /// Checks one stage boundary and returns the findings of *this call*
  /// (also accumulated into report()). `golden` enables the equivalence gate
  /// (ignored below kLintEquiv or when the lint found errors); `packed` is
  /// required at kPostPack and kPostRoute.
  [[nodiscard]] VerifyReport check(Stage stage, const netlist::Netlist& nl,
                                   const netlist::Netlist* golden = nullptr,
                                   const pack::PackedDesign* packed = nullptr);

  /// All findings across every stage checked so far.
  [[nodiscard]] const VerifyReport& report() const { return report_; }
  [[nodiscard]] bool enabled() const { return opts_.level != VerifyLevel::kOff; }

 private:
  const core::PlbArchitecture& arch_;
  VerifyOptions opts_;
  VerifyReport report_;
  /// Buffer-transparent fingerprint of the last (golden, revised) pair the
  /// exact gate proved clean. Stage boundaries that do not rewrite the logic
  /// function structure (buffering, pack, place, route) present the same
  /// proof obligation again; matching here skips the re-proof.
  std::uint64_t cec_proven_fp_ = 0;
  bool cec_has_proven_fp_ = false;
};

/// Prints every diagnostic to stderr and aborts if the report carries
/// error-severity findings (the flow's stage gate).
void enforce(const VerifyReport& report);

}  // namespace vpga::verify
