#pragma once
/// \file equiv.hpp
/// Combinational-equivalence gate between flow stages.
///
/// Bit-parallel co-simulation of the pre- and post-stage netlists on shared
/// random stimulus: 64 independent pattern streams advance cycle-by-cycle
/// (registers clocked in lockstep from reset), so one run covers
/// 64 * cycles input vectors. On divergence the gate reports the first
/// mismatching primary output together with its input-support cone in the
/// post-stage netlist — the region a debugging session must inspect.
///
/// Rule ids:
///   equiv.interface-mismatch  PI/PO counts differ between the two netlists
///   equiv.output-diverges     a primary output computes a different value

#include <cstdint>

#include "netlist/netlist.hpp"
#include "verify/diagnostic.hpp"

namespace vpga::verify {

struct EquivOptions {
  int cycles = 64;             ///< clocked steps; 64 patterns in parallel each
  std::uint64_t seed = 0xE0;   ///< stimulus seed (deterministic)
};

/// Checks that `revised` is cycle-for-cycle equivalent to `golden` on random
/// stimulus. Both netlists must already be structurally clean (lint first:
/// the simulator requires a valid topological order).
void check_equivalence(const netlist::Netlist& golden, const netlist::Netlist& revised,
                       const std::string& stage, VerifyReport& report,
                       const EquivOptions& opts = {});

}  // namespace vpga::verify
