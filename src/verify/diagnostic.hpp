#pragma once
/// \file diagnostic.hpp
/// Structured findings emitted by the netlist lint / stage invariant checkers.
///
/// Every rule violation becomes one Diagnostic record carrying the rule id
/// (a stable dotted string such as "lint.arity-mismatch"), the flow stage at
/// whose boundary it was detected, the offending node (when one exists), and
/// a human-readable explanation. Reports aggregate diagnostics across stages
/// so the flow driver can abort on the first error-severity finding while
/// still surfacing every warning. Rule ids are documented in docs/VERIFY.md.

#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace vpga::verify {

enum class Severity : std::uint8_t {
  kWarning,  ///< suspicious but not correctness-breaking (flow continues)
  kError,    ///< invariant violation; the flow must not proceed past it
};

/// One finding from a checker.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule;       ///< stable rule id, e.g. "compact.bad-config-tag"
  std::string stage;      ///< stage boundary, e.g. "post-compact"
  netlist::NodeId node;   ///< offending node (invalid when not node-specific)
  std::string message;
};

/// Accumulated findings, typically across all stage boundaries of one flow.
class VerifyReport {
 public:
  void add(Severity sev, std::string rule, std::string stage, netlist::NodeId node,
           std::string message) {
    diagnostics_.push_back(
        {sev, std::move(rule), std::move(stage), node, std::move(message)});
  }

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  [[nodiscard]] std::size_t size() const { return diagnostics_.size(); }
  [[nodiscard]] bool empty() const { return diagnostics_.empty(); }

  [[nodiscard]] int error_count() const {
    int n = 0;
    for (const auto& d : diagnostics_) n += d.severity == Severity::kError ? 1 : 0;
    return n;
  }
  [[nodiscard]] int warning_count() const {
    return static_cast<int>(diagnostics_.size()) - error_count();
  }
  [[nodiscard]] bool has_errors() const { return error_count() > 0; }

  /// True iff some diagnostic carries exactly this rule id.
  [[nodiscard]] bool fired(std::string_view rule) const {
    for (const auto& d : diagnostics_)
      if (d.rule == rule) return true;
    return false;
  }

  /// Printable multi-line summary ("error [post-map] map.unmapped-node ...").
  [[nodiscard]] std::string summary() const {
    std::string s;
    for (const auto& d : diagnostics_) {
      s += d.severity == Severity::kError ? "error" : "warning";
      s += " [" + d.stage + "] " + d.rule;
      if (d.node.valid()) s += " (node " + std::to_string(d.node.index()) + ")";
      s += ": " + d.message + "\n";
    }
    return s;
  }

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace vpga::verify
