#include "verify/cec.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <span>

#include "bdd/bdd.hpp"
#include "common/assert.hpp"
#include "common/fnmap.hpp"
#include "common/rng.hpp"
#include "logic/npn.hpp"
#include "netlist/bitsim.hpp"
#include "netlist/cone.hpp"
#include "obs/obs.hpp"
#include "sat/cnf.hpp"

namespace vpga::verify {
namespace {

using netlist::BitSimulator;
using netlist::ConeSupport;
using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;
using netlist::NodeType;

/// 64-pattern word with bit t = (t >> i) & 1 — the i-th exhaustive lane.
std::uint64_t lane_word(int i) {
  std::uint64_t w = 0;
  for (int t = 0; t < 64; ++t) {
    if (((t >> i) & 1) != 0) w |= std::uint64_t{1} << t;
  }
  return w;
}

/// Collapses a cone extract (pure combinational, <= 6 inputs, one output)
/// into a single truth table over its input order.
logic::TruthTable cone_table(const Netlist& cone, int num_vars,
                             std::vector<logic::TruthTable>& tts,
                             std::vector<logic::TruthTable>& args) {
  tts.assign(cone.num_nodes(), logic::TruthTable());
  args.reserve(6);  // netlist gate arity ceiling
  for (std::size_t j = 0; j < cone.inputs().size(); ++j) {
    tts[cone.inputs()[j].index()] = logic::TruthTable::var(num_vars, static_cast<int>(j));
  }
  for (const NodeId id : cone.all_nodes()) {
    const Node& n = cone.node(id);
    if (n.type == NodeType::kConst) {
      tts[id.index()] = logic::TruthTable::constant(num_vars, n.func.eval(0));
    }
  }
  for (const NodeId id : cone.topo_order()) {
    const Node& n = cone.node(id);
    if (n.type != NodeType::kComb) continue;
    args.clear();
    for (const NodeId fi : cone.fanins(id)) args.push_back(tts[fi.index()]);
    tts[id.index()] = logic::compose(n.func, args);
  }
  return tts[cone.fanin(cone.outputs()[0], 0).index()];
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// A register correspondence between the golden and revised DFF index
/// spaces: perm maps golden index -> revised index, inv is its inverse.
/// `kNone` marks a register with no partner; when any exist the
/// correspondence is incomplete and no point comparison is well defined.
struct RegisterCorrespondence {
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;
  std::vector<std::uint32_t> perm;
  std::vector<std::uint32_t> inv;
  int classes = 0;
  int rounds = 0;
  int permuted = 0;
  int fallbacks = 0;
  std::vector<std::size_t> unmatched_golden;
  std::vector<std::size_t> unmatched_revised;

  [[nodiscard]] bool complete() const {
    return unmatched_golden.empty() && unmatched_revised.empty();
  }
};

/// Order-independent structural fingerprint of one D-cone: gate function
/// words and arities (as a multiset), primary-input leaf indices (PIs
/// correspond positionally, so their indices are shared currency) and leaf
/// counts. State leaf *indices* are deliberately excluded — they are what
/// the correspondence is solving for.
std::uint64_t dcone_fingerprint(const Netlist& nl, NodeId droot) {
  const ConeSupport sup = cone_support(nl, droot);
  std::uint64_t h = mix64(0xF16E52ull + sup.states.size()) ^
                    mix64((sup.comb_nodes << 16) + sup.inputs.size());
  for (const std::uint32_t i : sup.inputs) h += mix64(0x1000000ull + i);
  std::vector<std::uint8_t> visited(nl.num_nodes(), 0);
  std::vector<NodeId> stack;
  stack.reserve(sup.comb_nodes + 1);
  stack.push_back(droot);
  visited[droot.index()] = 1;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    const Node& n = nl.node(id);
    if (n.type != NodeType::kComb) continue;
    h += mix64(n.func.bits() ^ (static_cast<std::uint64_t>(n.num_fanins()) << 56));
    for (const NodeId fi : nl.fanins(id)) {
      if (visited[fi.index()] == 0) {
        visited[fi.index()] = 1;
        stack.push_back(fi);
      }
    }
  }
  return h;
}

/// Signature-based register correspondence: partition-refine the registers of
/// both netlists jointly — initial classes from structural D-cone
/// fingerprints plus the set of outputs observing each register, then rounds
/// of 256-pattern next-state simulation where every state leaf is driven by a
/// deterministic word of its *class* (not its index), re-keying each register
/// by (old class, signature, classes of its reader registers) until the
/// partition is stable. The class-keyed stimulus propagates *controllability*
/// forward; the reader-class term propagates *observability* backward — both
/// are needed, because symmetric twins (two structurally identical timers)
/// produce identical simulation signatures by construction and only who
/// *reads* them tells them apart. Classes are side-independent, so pairing
/// ascending within each class aligns reordered/renamed registers. Registers
/// left unpaired fall back to their positional partner when that position is
/// also unpaired (a genuinely diverged D function then refutes as
/// cec.state-diverges with a witness); anything else is unmatched.
RegisterCorrespondence match_registers(const Netlist& golden, const Netlist& revised) {
  RegisterCorrespondence corr;
  const std::size_t n = golden.dffs().size();
  corr.perm.assign(n, RegisterCorrespondence::kNone);
  corr.inv.assign(n, RegisterCorrespondence::kNone);
  if (n == 0) return corr;
  const Netlist* nets[2] = {&golden, &revised};

  // Observability structure (per side): which outputs read register d
  // (outputs correspond by index, so an order-independent hash of the output
  // set is shared currency), and which registers read register d (as indices
  // for now; their evolving classes feed every refinement round).
  std::vector<std::uint64_t> obs[2];
  std::vector<std::vector<std::uint32_t>> read_by[2];
  for (int s = 0; s < 2; ++s) {
    obs[s].assign(n, 0);
    read_by[s].assign(n, {});
    for (std::size_t o = 0; o < nets[s]->outputs().size(); ++o) {
      const ConeSupport sup = cone_support(*nets[s], nets[s]->fanin(nets[s]->outputs()[o], 0));
      for (const std::uint32_t d : sup.states) obs[s][d] += mix64(0x0B5E57ull + o);
    }
    for (std::size_t e = 0; e < n; ++e) {
      const ConeSupport sup = cone_support(*nets[s], nets[s]->fanin(nets[s]->dffs()[e], 0));
      for (const std::uint32_t d : sup.states) read_by[s][d].push_back(static_cast<std::uint32_t>(e));
    }
  }

  // Round 0: classes from structural fingerprints + output observability,
  // ids assigned by sorted key order so both sides agree on the numbering.
  std::vector<std::uint64_t> fp[2];
  std::vector<std::uint64_t> keys;
  keys.reserve(2 * n);
  for (int s = 0; s < 2; ++s) {
    fp[s].reserve(n);
    for (std::size_t d = 0; d < n; ++d) {
      fp[s].push_back(dcone_fingerprint(*nets[s], nets[s]->fanin(nets[s]->dffs()[d], 0)) +
                      obs[s][d]);
    }
    keys.insert(keys.end(), fp[s].begin(), fp[s].end());
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<std::uint32_t> cls[2];
  for (int s = 0; s < 2; ++s) {
    cls[s].resize(n);
    for (std::size_t d = 0; d < n; ++d) {
      cls[s][d] = static_cast<std::uint32_t>(
          std::lower_bound(keys.begin(), keys.end(), fp[s][d]) - keys.begin());
    }
  }
  std::size_t num_classes = keys.size();

  // Shared primary-input stimulus (fixed seed: byte-stable correspondence).
  constexpr int kWords = 4;  // 4 x 64 = 256 patterns per signature
  common::Rng rng(0xC025E5F0ull);
  const std::size_t ni = golden.inputs().size();
  std::vector<std::uint64_t> in_words(ni * kWords);
  for (auto& w : in_words) w = rng.next_u64();

  struct RefineKey {
    std::array<std::uint64_t, 6> t;  // (old class, 256-bit signature, readers)
    std::uint32_t side_d;            // side << 31 | register index
  };
  std::vector<std::uint64_t> sig(2 * n * kWords);
  std::vector<RefineKey> refine(2 * n);
  for (int round = 1; round <= 64; ++round) {
    corr.rounds = round;
    for (int s = 0; s < 2; ++s) {
      BitSimulator sim(*nets[s]);
      for (int w = 0; w < kWords; ++w) {
        for (std::size_t i = 0; i < ni; ++i) {
          sim.set_input(i, in_words[static_cast<std::size_t>(w) * ni + i]);
        }
        for (std::size_t d = 0; d < n; ++d) {
          sim.set_state(d, mix64(0xABCDull + (std::uint64_t{cls[s][d]} << 8) +
                                 static_cast<std::uint64_t>(w)));
        }
        sim.eval();
        for (std::size_t d = 0; d < n; ++d) {
          sig[(static_cast<std::size_t>(s) * n + d) * kWords + static_cast<std::size_t>(w)] =
              sim.next_state(d);
        }
      }
    }
    for (int s = 0; s < 2; ++s) {
      for (std::size_t d = 0; d < n; ++d) {
        RefineKey& k = refine[static_cast<std::size_t>(s) * n + d];
        k.t[0] = cls[s][d];
        for (int w = 0; w < kWords; ++w) {
          k.t[static_cast<std::size_t>(w) + 1] =
              sig[(static_cast<std::size_t>(s) * n + d) * kWords + static_cast<std::size_t>(w)];
        }
        // Backward observability: the multiset of classes reading this
        // register (order-independent sum, refined as the partition splits).
        std::uint64_t readers = 0;
        for (const std::uint32_t e : read_by[s][d]) readers += mix64(0x4EADull + cls[s][e]);
        k.t[5] = readers;
        k.side_d = (static_cast<std::uint32_t>(s) << 31) | static_cast<std::uint32_t>(d);
      }
    }
    std::sort(refine.begin(), refine.end(), [](const RefineKey& a, const RefineKey& b) {
      return a.t != b.t ? a.t < b.t : a.side_d < b.side_d;
    });
    std::uint32_t next_id = 0;
    for (std::size_t i = 0; i < refine.size(); ++i) {
      if (i > 0 && refine[i].t != refine[i - 1].t) ++next_id;
      const int s = static_cast<int>(refine[i].side_d >> 31);
      cls[s][refine[i].side_d & 0x7FFFFFFFu] = next_id;
    }
    // The key carries the old class, so the partition only ever splits;
    // an unchanged class count is the fixpoint.
    if (static_cast<std::size_t>(next_id) + 1 == num_classes) break;
    num_classes = static_cast<std::size_t>(next_id) + 1;
  }
  corr.classes = static_cast<int>(num_classes);

  // Pair ascending within each class, then the positional fallback.
  std::vector<std::vector<std::uint32_t>> members[2];
  for (int s = 0; s < 2; ++s) {
    members[s].resize(num_classes);
    for (std::size_t d = 0; d < n; ++d) {
      members[s][cls[s][d]].push_back(static_cast<std::uint32_t>(d));
    }
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    const auto& gm = members[0][c];
    const auto& rm = members[1][c];
    const std::size_t k = std::min(gm.size(), rm.size());
    for (std::size_t i = 0; i < k; ++i) {
      corr.perm[gm[i]] = rm[i];
      corr.inv[rm[i]] = gm[i];
    }
  }
  for (std::size_t d = 0; d < n; ++d) {
    if (corr.perm[d] == RegisterCorrespondence::kNone &&
        corr.inv[d] == RegisterCorrespondence::kNone) {
      corr.perm[d] = static_cast<std::uint32_t>(d);
      corr.inv[d] = static_cast<std::uint32_t>(d);
      ++corr.fallbacks;
    }
  }
  for (std::size_t d = 0; d < n; ++d) {
    if (corr.perm[d] == RegisterCorrespondence::kNone) corr.unmatched_golden.push_back(d);
    if (corr.inv[d] == RegisterCorrespondence::kNone) corr.unmatched_revised.push_back(d);
    if (corr.perm[d] != RegisterCorrespondence::kNone && corr.perm[d] != d) ++corr.permuted;
  }
  return corr;
}

/// One stage boundary's worth of point checks: structural signatures, the
/// lazily-built miter solver, and all loop scratch live here so the per-point
/// path never allocates beyond genuine growth.
class PointChecker {
 public:
  PointChecker(const Netlist& golden, const Netlist& revised,
               const RegisterCorrespondence& corr, const CecOptions& opts, CecReport& report)
      : golden_(golden), revised_(revised), corr_(corr), opts_(opts), report_(report) {
    for (int i = 0; i < 6; ++i) lanes_[i] = lane_word(i);
    if (opts_.structural_tier) {
      side_signatures(golden_, sig_[0], {});
      side_signatures(revised_, sig_[1], corr_.inv);
    }
  }

  /// Checks output `idx` (is_state == false) or golden DFF D-function `idx`
  /// against its correspondence partner (is_state == true). Returns false
  /// when a counterexample stopped the scan.
  bool check_point(std::size_t idx, bool is_state) {
    ++report_.checks;
    const NodeId ga = is_state ? golden_.fanin(golden_.dffs()[idx], 0)
                               : golden_.fanin(golden_.outputs()[idx], 0);
    const NodeId rb = is_state ? revised_.fanin(revised_.dffs()[corr_.perm[idx]], 0)
                               : revised_.fanin(revised_.outputs()[idx], 0);

    if (opts_.structural_tier && !opts_.force_bdd &&
        sig_[0][ga.index()] == sig_[1][rb.index()]) {
      ++report_.tier_struct;
      return true;
    }

    const ConeSupport sup_a = cone_support(golden_, ga);
    ConeSupport sup_b = cone_support(revised_, rb);
    // Revised state leaves live in the revised index space; the
    // correspondence maps them onto golden indices so both supports merge in
    // one shared space.
    for (std::uint32_t& s : sup_b.states) s = corr_.inv[s];
    std::sort(sup_b.states.begin(), sup_b.states.end());
    merged_.inputs.clear();
    merged_.states.clear();
    std::set_union(sup_a.inputs.begin(), sup_a.inputs.end(), sup_b.inputs.begin(),
                   sup_b.inputs.end(), std::back_inserter(merged_.inputs));
    std::set_union(sup_a.states.begin(), sup_a.states.end(), sup_b.states.begin(),
                   sup_b.states.end(), std::back_inserter(merged_.states));
    // The revised extract needs the same leaves back in its own index space,
    // preserving the merged leaf order so column j means the same variable
    // on both sides.
    merged_rev_.inputs = merged_.inputs;
    merged_rev_.states.clear();
    for (const std::uint32_t s : merged_.states) merged_rev_.states.push_back(corr_.perm[s]);
    const int m = static_cast<int>(merged_.num_leaves());

    if (opts_.force_bdd) {
      bool resolved = false;
      const bool scan = check_by_bdd(idx, is_state, ga, rb, m, resolved);
      if (resolved) return scan;
      return check_by_sat(idx, is_state, ga, rb);
    }
    if (m <= logic::TruthTable::kMaxVars) return check_by_table(idx, is_state, ga, rb, m);
    if (m <= opts_.max_exhaustive_inputs) return check_by_sweep(idx, is_state, ga, rb, m);
    if (opts_.bdd_tier) {
      bool resolved = false;
      const bool scan = check_by_bdd(idx, is_state, ga, rb, m, resolved);
      if (resolved) return scan;
    }
    return check_by_sat(idx, is_state, ga, rb);
  }

  void finish() {
    if (solver_) report_.sat_stats = solver_->stats();
    if (encoder_) report_.hashcons_hits = encoder_->hashcons_hits();
  }

 private:
  /// Tier 2: collapse both cones over the merged support and compare tables,
  /// with the NPN canonical table as the <= 4-var inequivalence pre-filter.
  bool check_by_table(std::size_t idx, bool is_state, NodeId ga, NodeId rb, int m) {
    const Netlist ca = extract_cone(golden_, ga, merged_);
    const Netlist cb = extract_cone(revised_, rb, merged_rev_);
    const logic::TruthTable ta = cone_table(ca, m, tts_, args_);
    const logic::TruthTable tb = cone_table(cb, m, tts_, args_);
    bool npn_reject = false;
    if (m <= 4) {
      const auto a4 = static_cast<std::uint16_t>(ta.extend(4).bits());
      const auto b4 = static_cast<std::uint16_t>(tb.extend(4).bits());
      npn_reject = logic::npn_canonical4(a4) != logic::npn_canonical4(b4);
      if (npn_reject) ++report_.npn_rejects;
    }
    if (!npn_reject && ta == tb) {
      ++report_.tier_table;
      return true;
    }
    // Inequivalent: the first differing row is the counterexample.
    unsigned row = 0;
    while (ta.eval(row) == tb.eval(row)) ++row;
    ++report_.tier_table;
    record_cex_from_row(idx, is_state, row, 0);
    return false;
  }

  /// Tier 3: exhaustive 64-way sweep over the merged support (7..16 leaves).
  bool check_by_sweep(std::size_t idx, bool is_state, NodeId ga, NodeId rb, int m) {
    VPGA_ASSERT(m > 6 && m <= 16);
    const Netlist ca = extract_cone(golden_, ga, merged_);
    const Netlist cb = extract_cone(revised_, rb, merged_rev_);
    BitSimulator sa(ca);
    BitSimulator sb(cb);
    for (int i = 0; i < 6; ++i) {
      sa.set_input(static_cast<std::size_t>(i), lanes_[i]);
      sb.set_input(static_cast<std::size_t>(i), lanes_[i]);
    }
    const std::uint32_t blocks = std::uint32_t{1} << (m - 6);
    for (std::uint32_t block = 0; block < blocks; ++block) {
      for (int i = 6; i < m; ++i) {
        const std::uint64_t w = ((block >> (i - 6)) & 1u) != 0 ? ~std::uint64_t{0} : 0;
        sa.set_input(static_cast<std::size_t>(i), w);
        sb.set_input(static_cast<std::size_t>(i), w);
      }
      sa.eval();
      sb.eval();
      const std::uint64_t diff = sa.output(0) ^ sb.output(0);
      if (diff != 0) {
        ++report_.tier_exhaustive;
        record_cex_from_row(idx, is_state,
                            static_cast<unsigned>(std::countr_zero(diff)), block);
        return false;
      }
    }
    ++report_.tier_exhaustive;
    return true;
  }

  /// Tier 4: both cones become ROBDDs in one manager under a shared
  /// DFS-derived variable order, so the verdict is a root-edge compare and a
  /// refutation is one satisfying path of the XOR of the roots. Sets
  /// `resolved` false when the node budget ran out — the point then falls
  /// through to SAT instead of this tier growing without bound.
  bool check_by_bdd(std::size_t idx, bool is_state, NodeId ga, NodeId rb, int m,
                    bool& resolved) {
    const Netlist ca = extract_cone(golden_, ga, merged_);
    const Netlist cb = extract_cone(revised_, rb, merged_rev_);
    bdd::BddManager mgr(opts_.bdd_node_budget);
    bdd_order(ca, cb);
    const bdd::Ref fa = cone_bdd(mgr, ca);
    const bdd::Ref fb = cone_bdd(mgr, cb);
    bdd::Ref miter = bdd::kInvalid;
    if (fa != bdd::kInvalid && fb != bdd::kInvalid && fa != fb) {
      miter = mgr.bdd_xor(fa, fb);
    }
    report_.bdd_nodes += static_cast<long long>(mgr.num_nodes());
    report_.bdd_ite_calls += mgr.stats().ite_calls;
    report_.bdd_cache_hits += mgr.stats().cache_hits;
    if (mgr.exhausted()) {
      ++report_.bdd_fallbacks;
      resolved = false;
      return true;
    }
    resolved = true;
    ++report_.tier_bdd;
    if (fa == fb) return true;
    // Canonicity: distinct roots mean the XOR is satisfiable — walk one path.
    const bool sat = mgr.one_sat(miter, static_cast<std::uint32_t>(m), path_vals_);
    VPGA_ASSERT(sat && "distinct ROBDD roots must have a satisfiable XOR");
    leaf_vals_.assign(static_cast<std::size_t>(m), 0);
    for (std::size_t j = 0; j < merged_.num_leaves(); ++j) {
      leaf_vals_[j] = path_vals_[bdd_level_[j]];
    }
    record_cex_from_leaves(idx, is_state, leaf_vals_);
    return false;
  }

  static constexpr std::uint32_t kNoLevel = 0xFFFFFFFFu;

  /// Assigns BDD levels to the merged leaves in depth-first discovery order
  /// from the golden cone's root (revised-only leaves follow, then leaves
  /// neither cone reads). DFS discovery keeps the leaves of one subcone on
  /// adjacent levels — a static cut-width-style order that keeps chained and
  /// tree-shaped arithmetic linear-sized.
  void bdd_order(const Netlist& ca, const Netlist& cb) {
    bdd_level_.assign(merged_.num_leaves(), kNoLevel);
    std::uint32_t next = 0;
    bdd_order_dfs(ca, next);
    bdd_order_dfs(cb, next);
    for (std::size_t j = 0; j < bdd_level_.size(); ++j) {
      if (bdd_level_[j] == kNoLevel) bdd_level_[j] = next++;
    }
  }

  void bdd_order_dfs(const Netlist& cone, std::uint32_t& next) {
    // cone.inputs()[j] is merged leaf j by construction of extract_cone.
    bdd_leaf_of_.assign(cone.num_nodes(), kNoLevel);
    for (std::size_t j = 0; j < cone.inputs().size(); ++j) {
      bdd_leaf_of_[cone.inputs()[j].index()] = static_cast<std::uint32_t>(j);
    }
    bdd_visited_.assign(cone.num_nodes(), 0);
    bdd_stack_.clear();
    const NodeId root = cone.fanin(cone.outputs()[0], 0);
    bdd_stack_.push_back(root);
    bdd_visited_[root.index()] = 1;
    while (!bdd_stack_.empty()) {
      const NodeId id = bdd_stack_.back();
      bdd_stack_.pop_back();
      const std::uint32_t leaf = bdd_leaf_of_[id.index()];
      if (leaf != kNoLevel && bdd_level_[leaf] == kNoLevel) bdd_level_[leaf] = next++;
      const Node& nd = cone.node(id);
      if (nd.type != NodeType::kComb) continue;
      const std::span<const NodeId> fis = cone.fanins(id);
      for (std::size_t k = fis.size(); k-- > 0;) {  // reverse push: fanin 0 first
        if (bdd_visited_[fis[k].index()] == 0) {
          bdd_visited_[fis[k].index()] = 1;
          bdd_stack_.push_back(fis[k]);
        }
      }
    }
  }

  /// Builds the ROBDD of an extracted cone under the shared level map.
  bdd::Ref cone_bdd(bdd::BddManager& mgr, const Netlist& cone) {
    bdd_refs_.assign(cone.num_nodes(), bdd::kInvalid);
    for (std::size_t j = 0; j < cone.inputs().size(); ++j) {
      bdd_refs_[cone.inputs()[j].index()] = mgr.var(bdd_level_[j]);
    }
    for (const NodeId id : cone.all_nodes()) {
      const Node& nd = cone.node(id);
      if (nd.type == NodeType::kConst) {
        bdd_refs_[id.index()] = nd.func.eval(0) ? bdd::kTrue : bdd::kFalse;
      }
    }
    for (const NodeId id : cone.topo_order()) {
      const Node& nd = cone.node(id);
      if (nd.type != NodeType::kComb) continue;
      bdd::Ref args[logic::TruthTable::kMaxVars] = {};
      const std::span<const NodeId> fis = cone.fanins(id);
      for (std::size_t k = 0; k < fis.size(); ++k) args[k] = bdd_refs_[fis[k].index()];
      bdd_refs_[id.index()] = gate_bdd(mgr, nd.func, args, static_cast<int>(fis.size()));
      if (mgr.exhausted()) return bdd::kInvalid;
    }
    return bdd_refs_[cone.fanin(cone.outputs()[0], 0).index()];
  }

  /// Shannon-expands a gate's truth table over its fanin BDDs (arity <= 6, so
  /// the recursion is at most depth 6 with 2^6 leaves).
  static bdd::Ref gate_bdd(bdd::BddManager& mgr, const logic::TruthTable& tt,
                           const bdd::Ref* args, int k) {
    if (tt.bits() == 0) return bdd::kFalse;
    if (tt == logic::TruthTable::constant(k, true)) return bdd::kTrue;
    // Non-constant => k >= 1.
    const bdd::Ref hi = gate_bdd(mgr, tt.cofactor(k - 1, true), args, k - 1);
    const bdd::Ref lo = gate_bdd(mgr, tt.cofactor(k - 1, false), args, k - 1);
    return mgr.ite(args[k - 1], hi, lo);
  }

  /// Tier 5: per-point miter under a selector assumption on the shared
  /// incremental solver.
  bool check_by_sat(std::size_t idx, bool is_state, NodeId ga, NodeId rb) {
    if (!solver_) {
      solver_ = std::make_unique<sat::Solver>();
      encoder_ = std::make_unique<sat::MiterEncoder>(golden_, revised_, *solver_, corr_.inv);
      if (opts_.sat_sweep) sat_sweep();
    }
    const sat::Lit la = encoder_->encode(sat::MiterEncoder::Side::kGolden, ga);
    const sat::Lit lb = encoder_->encode(sat::MiterEncoder::Side::kRevised, rb);
    if (la == lb) {
      // Structural hashing inside the encoder already merged the two cones.
      ++report_.tier_struct;
      return true;
    }
    const sat::Lit sel(solver_->new_var(), false);
    solver_->add_clause({~sel, la, lb});
    solver_->add_clause({~sel, ~la, ~lb});
    const sat::Lit assumption[1] = {sel};
    const sat::Result res =
        solver_->solve(std::span<const sat::Lit>(assumption, 1), opts_.sat_conflict_budget);
    if (res == sat::Result::kUnsat) {
      ++report_.tier_sat;
      solver_->add_clause({~sel});  // retire this point's miter
      return true;
    }
    if (res == sat::Result::kUnknown) {
      ++report_.unknown;
      report_.unknown_points.push_back(point_name(idx, is_state));
      solver_->add_clause({~sel});
      return true;
    }
    ++report_.tier_sat;
    CecCounterexample cex;
    cex.inputs.assign(golden_.inputs().size(), 0);
    cex.state.assign(golden_.dffs().size(), 0);
    for (std::size_t i = 0; i < encoder_->num_inputs(); ++i) {
      cex.inputs[i] = solver_->model_value(encoder_->input_lit(i).var()) ? 1 : 0;
    }
    for (std::size_t d = 0; d < encoder_->num_states(); ++d) {
      cex.state[d] = solver_->model_value(encoder_->state_lit(d).var()) ? 1 : 0;
    }
    verify_and_store(idx, is_state, std::move(cex));
    return false;
  }

  static constexpr int kSweepWords = 4;          ///< 256 shared stimulus patterns
  static constexpr long long kSweepBudget = 100;  ///< conflicts per candidate proof

  /// SAT sweeping: simulate both netlists on the same deterministic stimulus,
  /// register every golden comb node under its 256-pattern signature
  /// (complement-canonical), then walk the revised netlist bottom-up proving
  /// each signature match with a small miter. A proven match rebinds the
  /// revised node to the golden literal, so the eventual output miters are
  /// between largely-merged cones — the difference between multiplier CEC
  /// finishing in milliseconds and not finishing at all.
  void sat_sweep() {
    common::Rng rng(0xCEC5EEDull);  // fixed seed: sweep results are byte-stable
    const std::size_t width = golden_.inputs().size() + golden_.dffs().size();
    stimulus_.resize(width * static_cast<std::size_t>(kSweepWords));
    for (auto& w : stimulus_) w = rng.next_u64();
    sim_signatures(golden_, sweep_sig_[0], {});
    sim_signatures(revised_, sweep_sig_[1], corr_.inv);
    for (const NodeId id : golden_.topo_order()) {
      if (golden_.node(id).type != NodeType::kComb) continue;
      const sat::Lit lit = encoder_->encode(sat::MiterEncoder::Side::kGolden, id);
      sweep_node(0, id, lit);
    }
    for (const NodeId id : revised_.topo_order()) {
      if (revised_.node(id).type != NodeType::kComb) continue;
      const sat::Lit lit = encoder_->encode(sat::MiterEncoder::Side::kRevised, id);
      sweep_node(1, id, lit);
    }
  }

  /// Evaluates kSweepWords shared stimulus words through `nl`, storing every
  /// node's response words contiguously in `sig`. `state_key` (the revised
  /// side's correspondence) redirects each DFF to its golden partner's
  /// stimulus word so corresponding leaves see identical patterns.
  void sim_signatures(const Netlist& nl, std::vector<std::uint64_t>& sig,
                      std::span<const std::uint32_t> state_key) {
    sig.assign(nl.num_nodes() * static_cast<std::size_t>(kSweepWords), 0);
    BitSimulator sim(nl);
    const std::size_t ni = nl.inputs().size();
    for (int w = 0; w < kSweepWords; ++w) {
      const std::uint64_t* words = stimulus_.data() +
                                   static_cast<std::size_t>(w) * (ni + nl.dffs().size());
      for (std::size_t i = 0; i < ni; ++i) sim.set_input(i, words[i]);
      for (std::size_t d = 0; d < nl.dffs().size(); ++d) {
        sim.set_state(d, words[ni + (state_key.empty() ? d : state_key[d])]);
      }
      sim.eval();
      for (const NodeId id : nl.all_nodes()) {
        sig[id.index() * static_cast<std::size_t>(kSweepWords) + static_cast<std::size_t>(w)] =
            sim.value(id);
      }
    }
  }

  /// Registers node `id` (literal `lit`) under its canonical signature, or —
  /// for the revised side — proves it equal to the registered representative
  /// and rebinds it. Registration keys carry the full 256-bit signature, so
  /// only genuinely signature-equal nodes ever meet.
  void sweep_node(int side, NodeId id, sat::Lit lit) {
    const std::uint64_t* sig =
        sweep_sig_[side].data() + id.index() * static_cast<std::size_t>(kSweepWords);
    const bool phase = (sig[0] & 1u) != 0;  // complement-canonical form
    const std::uint64_t w0 = phase ? ~sig[0] : sig[0];
    const std::uint64_t w1 = phase ? ~sig[1] : sig[1];
    const std::uint64_t w2 = phase ? ~sig[2] : sig[2];
    const std::uint64_t w3 = phase ? ~sig[3] : sig[3];
    common::FnKey key;
    key.tag = 5;
    key.bits = w0;
    key.kids[0] = static_cast<std::uint32_t>(w1);
    key.kids[1] = static_cast<std::uint32_t>(w1 >> 32);
    key.kids[2] = static_cast<std::uint32_t>(w2);
    key.kids[3] = static_cast<std::uint32_t>(w2 >> 32);
    key.kids[4] = static_cast<std::uint32_t>(w3);
    key.kids[5] = static_cast<std::uint32_t>(w3 >> 32);
    const sat::Lit canon = phase ? ~lit : lit;
    const std::uint32_t found = sweepmap_.find_or_insert(key, canon.code());
    if (found == canon.code() || side == 0) return;  // representative, or golden pass
    const sat::Lit rep = phase ? ~sat::Lit::from_code(found) : sat::Lit::from_code(found);
    if (rep == lit) return;  // already shared via structural hashing
    const sat::Lit sel(solver_->new_var(), false);
    solver_->add_clause({~sel, lit, rep});
    solver_->add_clause({~sel, ~lit, ~rep});
    const sat::Lit assumption[1] = {sel};
    const sat::Result res =
        solver_->solve(std::span<const sat::Lit>(assumption, 1), kSweepBudget);
    solver_->add_clause({~sel});
    if (res != sat::Result::kUnsat) return;  // candidate refuted or budget-out
    solver_->add_clause({~lit, rep});
    solver_->add_clause({lit, ~rep});
    encoder_->set_lit(sat::MiterEncoder::Side::kRevised, id, rep);
    ++report_.sweep_merges;
  }

  /// Expands a merged-support row (low 6 bits in `row`, leaves >= 6 in
  /// `block`) into a full-interface counterexample and stores it.
  void record_cex_from_row(std::size_t idx, bool is_state, unsigned row, std::uint32_t block) {
    leaf_vals_.assign(merged_.num_leaves(), 0);
    for (std::size_t j = 0; j < merged_.num_leaves(); ++j) {
      leaf_vals_[j] = j < 6 ? static_cast<std::uint8_t>((row >> j) & 1u)
                            : static_cast<std::uint8_t>((block >> (j - 6)) & 1u);
    }
    record_cex_from_leaves(idx, is_state, leaf_vals_);
  }

  /// Expands one 0/1 value per merged leaf (BDD path or exhaustive row) into
  /// a full-interface counterexample and stores it. State leaves are golden
  /// indices, so the witness is always expressed on the golden interface.
  void record_cex_from_leaves(std::size_t idx, bool is_state,
                              const std::vector<std::uint8_t>& leaves) {
    CecCounterexample cex;
    cex.inputs.assign(golden_.inputs().size(), 0);
    cex.state.assign(golden_.dffs().size(), 0);
    const std::size_t ni = merged_.inputs.size();
    for (std::size_t j = 0; j < merged_.num_leaves(); ++j) {
      if (j < ni) {
        cex.inputs[merged_.inputs[j]] = leaves[j];
      } else {
        cex.state[merged_.states[j - ni]] = leaves[j];
      }
    }
    verify_and_store(idx, is_state, std::move(cex));
  }

  /// Replays the counterexample through the original netlists (broadcast
  /// words on the 64-way simulator) and asserts it witnesses the divergence
  /// before it is allowed into the report.
  void verify_and_store(std::size_t idx, bool is_state, CecCounterexample cex) {
    BitSimulator sg(golden_);
    BitSimulator sr(revised_);
    for (std::size_t i = 0; i < cex.inputs.size(); ++i) {
      const std::uint64_t w = cex.inputs[i] != 0 ? ~std::uint64_t{0} : 0;
      sg.set_input(i, w);
      sr.set_input(i, w);
    }
    for (std::size_t d = 0; d < cex.state.size(); ++d) {
      const std::uint64_t w = cex.state[d] != 0 ? ~std::uint64_t{0} : 0;
      sg.set_state(d, w);
      sr.set_state(corr_.perm[d], w);  // the revised partner sees the same value
    }
    sg.eval();
    sr.eval();
    const std::uint64_t vg = is_state ? sg.next_state(idx) : sg.output(idx);
    const std::uint64_t vr = is_state ? sr.next_state(corr_.perm[idx]) : sr.output(idx);
    VPGA_ASSERT_MSG((vg & 1) != (vr & 1), "CEC counterexample failed simulation replay");
    cex.point_index = idx;
    cex.is_state = is_state;
    cex.point = point_name(idx, is_state);
    report_.cex = std::move(cex);
    report_.equivalent = false;
  }

  [[nodiscard]] std::string point_name(std::size_t idx, bool is_state) const {
    const NodeId id = is_state ? golden_.dffs()[idx] : golden_.outputs()[idx];
    const std::string& name = golden_.name_of(id);
    if (!name.empty()) return name;
    return (is_state ? "dff[" : "output[") + std::to_string(idx) + "]";
  }

  /// Shared structural signatures: identical cones — across both netlists —
  /// get identical dense ids, making tier 1 a single compare per point.
  /// `state_key` (the revised side's correspondence) keys each DFF leaf by
  /// its golden partner so corresponding registers share a signature.
  void side_signatures(const Netlist& nl, std::vector<std::uint32_t>& sig,
                       std::span<const std::uint32_t> state_key) {
    sig.assign(nl.num_nodes(), 0);
    common::FnKey key;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      key = common::FnKey();
      key.tag = 1;
      key.bits = i;
      sig[nl.inputs()[i].index()] = fresh_sig(key);
    }
    for (std::size_t d = 0; d < nl.dffs().size(); ++d) {
      key = common::FnKey();
      key.tag = 2;
      key.bits = state_key.empty() ? d : state_key[d];
      sig[nl.dffs()[d].index()] = fresh_sig(key);
    }
    for (const NodeId id : nl.all_nodes()) {
      if (nl.node(id).type != NodeType::kConst) continue;
      key = common::FnKey();
      key.tag = 3;
      key.bits = nl.node(id).func.eval(0) ? 1 : 0;
      sig[id.index()] = fresh_sig(key);
    }
    for (const NodeId id : nl.topo_order()) {
      const Node& n = nl.node(id);
      if (n.type != NodeType::kComb) continue;
      key = common::FnKey();
      key.bits = n.func.bits();
      key.arity = static_cast<std::uint8_t>(n.num_fanins());
      const std::span<const NodeId> fis = nl.fanins(id);
      for (std::size_t k = 0; k < fis.size(); ++k) key.kids[k] = sig[fis[k].index()];
      sig[id.index()] = fresh_sig(key);
    }
  }

  std::uint32_t fresh_sig(const common::FnKey& key) {
    return sigmap_.find_or_insert(key, static_cast<std::uint32_t>(sigmap_.size()) + 1);
  }

  const Netlist& golden_;
  const Netlist& revised_;
  const RegisterCorrespondence& corr_;
  const CecOptions& opts_;
  CecReport& report_;
  std::uint64_t lanes_[6] = {};
  common::FnKeyMap sigmap_;
  std::vector<std::uint32_t> sig_[2];
  common::FnKeyMap sweepmap_;
  std::vector<std::uint64_t> stimulus_;
  std::vector<std::uint64_t> sweep_sig_[2];
  ConeSupport merged_;
  ConeSupport merged_rev_;  ///< merged support in the revised index space
  std::vector<logic::TruthTable> tts_;
  std::vector<logic::TruthTable> args_;
  // BDD-tier scratch, hoisted like the rest of the per-point loop state.
  std::vector<std::uint32_t> bdd_level_;
  std::vector<std::uint32_t> bdd_leaf_of_;
  std::vector<std::uint8_t> bdd_visited_;
  std::vector<NodeId> bdd_stack_;
  std::vector<bdd::Ref> bdd_refs_;
  std::vector<std::uint8_t> path_vals_;
  std::vector<std::uint8_t> leaf_vals_;
  std::unique_ptr<sat::Solver> solver_;
  std::unique_ptr<sat::MiterEncoder> encoder_;
};

/// Writes the counterexample as JSON (the CI exact-gate artifact format).
void dump_cex_json(const char* path, const Netlist& golden, const std::string& stage,
                   const CecCounterexample& cex) {
  std::ofstream os(path);
  if (!os) return;
  os << "{\n  \"design\": \"" << golden.name() << "\",\n  \"stage\": \"" << stage
     << "\",\n  \"point\": \"" << cex.point << "\",\n  \"is_state\": "
     << (cex.is_state ? "true" : "false") << ",\n  \"inputs\": [";
  for (std::size_t i = 0; i < cex.inputs.size(); ++i) {
    os << (i == 0 ? "" : ", ") << static_cast<int>(cex.inputs[i]);
  }
  os << "],\n  \"state\": [";
  for (std::size_t d = 0; d < cex.state.size(); ++d) {
    os << (d == 0 ? "" : ", ") << static_cast<int>(cex.state[d]);
  }
  os << "]\n}\n";
}

/// Compact 0/1 string for diagnostics ("inputs=0110 state=01").
std::string bits_to_string(const std::vector<std::uint8_t>& bits) {
  std::string s;
  s.reserve(bits.size());
  for (const std::uint8_t b : bits) s.push_back(b != 0 ? '1' : '0');
  return s;
}

}  // namespace

std::uint64_t netlist_fingerprint(const Netlist& nl) {
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return h;
  };
  // Buffers (1-input identity gates) are transparent: they are skipped and
  // fanin references resolve through them, so the fingerprint is invariant
  // under high-fanout buffering — which inserts buffers by appending nodes,
  // leaving every pre-existing index in place.
  auto is_buffer = [&nl](NodeId id) {
    const Node& n = nl.node(id);
    return n.type == NodeType::kComb && n.num_fanins() == 1 && n.func.bits() == 2;
  };
  auto resolve = [&](NodeId id) {
    while (is_buffer(id)) id = nl.fanin(id, 0);
    return id;
  };
  std::uint64_t h = mix(nl.inputs().size(), nl.outputs().size());
  h = mix(h, nl.dffs().size());
  for (const NodeId id : nl.all_nodes()) {
    const Node& n = nl.node(id);
    if (is_buffer(id)) continue;
    h = mix(h, static_cast<std::uint64_t>(n.type));
    h = mix(h, n.func.bits());
    for (const NodeId fi : nl.fanins(id)) h = mix(h, resolve(fi).index());
  }
  return h;
}

namespace {

std::string dff_display_name(const Netlist& nl, std::size_t d) {
  const std::string& name = nl.name_of(nl.dffs()[d]);
  if (!name.empty()) return name;
  return "dff[" + std::to_string(d) + "]";
}

}  // namespace

CecReport check_combinational_equivalence(const Netlist& golden, const Netlist& revised,
                                          const CecOptions& opts) {
  CecReport report;
  if (golden.inputs().size() != revised.inputs().size() ||
      golden.outputs().size() != revised.outputs().size() ||
      golden.dffs().size() != revised.dffs().size()) {
    report.interface_ok = false;
    report.equivalent = false;
    return report;
  }
  const RegisterCorrespondence corr = match_registers(golden, revised);
  report.corr_classes = corr.classes;
  report.corr_rounds = corr.rounds;
  report.corr_permuted = corr.permuted;
  report.corr_fallbacks = corr.fallbacks;
  if (!corr.complete()) {
    // Without a state bijection the point comparison is not well defined:
    // report the orphans and let the caller surface cec.state-unmatched.
    for (const std::size_t d : corr.unmatched_golden) {
      report.unmatched_registers.push_back(dff_display_name(golden, d));
    }
    for (const std::size_t d : corr.unmatched_revised) {
      report.unmatched_registers.push_back("revised:" + dff_display_name(revised, d));
    }
    return report;
  }
  PointChecker checker(golden, revised, corr, opts, report);
  bool scanning = true;
  for (std::size_t o = 0; scanning && o < golden.outputs().size(); ++o) {
    scanning = checker.check_point(o, false);
  }
  for (std::size_t d = 0; scanning && d < golden.dffs().size(); ++d) {
    scanning = checker.check_point(d, true);
  }
  checker.finish();
  return report;
}

void check_cec(const Netlist& golden, const Netlist& revised, const std::string& stage,
               VerifyReport& report, const CecOptions& opts) {
  const obs::Span span("verify.cec");
  CecOptions eff = opts;
  // CI's forced-BDD exact run flips the tier routing from the outside.
  if (const char* force = std::getenv("VPGA_CEC_FORCE_BDD");
      force != nullptr && force[0] != '\0' && force[0] != '0') {
    eff.force_bdd = true;
  }
  const CecReport cec = check_combinational_equivalence(golden, revised, eff);

  obs::count("cec.points", cec.checks);
  obs::count("cec.tier_struct", cec.tier_struct);
  obs::count("cec.tier_table", cec.tier_table);
  obs::count("cec.tier_exhaustive", cec.tier_exhaustive);
  obs::count("cec.tier_bdd", cec.tier_bdd);
  obs::count("cec.tier_sat", cec.tier_sat);
  obs::count("cec.npn_rejects", cec.npn_rejects);
  obs::count("cec.sweep_merges", cec.sweep_merges);
  obs::count("cec.unknown", cec.unknown);
  // The per-point tier-resolution family: one counter per ladder tier, so
  // BENCH_flow.json and the OpenMetrics export break down where points land.
  obs::count("cec.tier_resolved.structural", cec.tier_struct);
  obs::count("cec.tier_resolved.truth", cec.tier_table);
  obs::count("cec.tier_resolved.bitsim", cec.tier_exhaustive);
  obs::count("cec.tier_resolved.bdd", cec.tier_bdd);
  obs::count("cec.tier_resolved.sat", cec.tier_sat);
  obs::count("cec.bdd_nodes", cec.bdd_nodes);
  obs::count("cec.bdd_ite_calls", cec.bdd_ite_calls);
  obs::count("cec.bdd_cache_hits", cec.bdd_cache_hits);
  obs::count("cec.bdd_fallbacks", cec.bdd_fallbacks);
  obs::count("cec.corr_classes", cec.corr_classes);
  obs::count("cec.corr_rounds", cec.corr_rounds);
  obs::count("cec.corr_permuted", cec.corr_permuted);
  obs::count("cec.corr_fallbacks", cec.corr_fallbacks);
  obs::count("cec.corr_unmatched", static_cast<long long>(cec.unmatched_registers.size()));
  obs::count("sat.conflicts", cec.sat_stats.conflicts);
  obs::count("sat.decisions", cec.sat_stats.decisions);
  obs::count("sat.propagations", cec.sat_stats.propagations);
  obs::count("sat.restarts", cec.sat_stats.restarts);
  obs::count("sat.learned", cec.sat_stats.learned_clauses);

  if (!cec.interface_ok) {
    report.add(Severity::kError, "cec.interface-mismatch", stage, NodeId(),
               "interface differs from the equivalence baseline: inputs " +
                   std::to_string(golden.inputs().size()) + " vs " +
                   std::to_string(revised.inputs().size()) + ", outputs " +
                   std::to_string(golden.outputs().size()) + " vs " +
                   std::to_string(revised.outputs().size()) + ", dffs " +
                   std::to_string(golden.dffs().size()) + " vs " +
                   std::to_string(revised.dffs().size()));
    return;
  }
  if (!cec.unmatched_registers.empty()) {
    report.add(Severity::kError, "cec.state-unmatched", stage, NodeId(),
               std::to_string(cec.unmatched_registers.size()) +
                   " register(s) have no correspondence partner (signature refinement and "
                   "positional fallback both failed), first: " +
                   cec.unmatched_registers.front());
    return;
  }
  if (cec.cex.has_value()) {
    const CecCounterexample& cex = *cec.cex;
    if (const char* path = std::getenv("VPGA_CEC_CEX_PATH"); path != nullptr) {
      dump_cex_json(path, golden, stage, cex);
    }
    report.add(Severity::kError,
               cex.is_state ? "cec.state-diverges" : "cec.output-diverges", stage, NodeId(),
               (cex.is_state ? "next-state function of '" : "output '") + cex.point +
                   "' differs from the equivalence baseline; counterexample inputs=" +
                   bits_to_string(cex.inputs) +
                   (cex.state.empty() ? std::string() : " state=" + bits_to_string(cex.state)));
  }
  if (cec.unknown > 0) {
    report.add(Severity::kWarning, "cec.resource-limit", stage, NodeId(),
               std::to_string(cec.unknown) + " point(s) exhausted the SAT conflict budget (" +
                   std::to_string(eff.sat_conflict_budget) + "), first: " +
                   cec.unknown_points.front());
  }
}

}  // namespace vpga::verify
