#include "verify/cec.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>

#include "common/assert.hpp"
#include "common/fnmap.hpp"
#include "common/rng.hpp"
#include "logic/npn.hpp"
#include "netlist/bitsim.hpp"
#include "netlist/cone.hpp"
#include "obs/obs.hpp"
#include "sat/cnf.hpp"

namespace vpga::verify {
namespace {

using netlist::BitSimulator;
using netlist::ConeSupport;
using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;
using netlist::NodeType;

/// 64-pattern word with bit t = (t >> i) & 1 — the i-th exhaustive lane.
std::uint64_t lane_word(int i) {
  std::uint64_t w = 0;
  for (int t = 0; t < 64; ++t) {
    if (((t >> i) & 1) != 0) w |= std::uint64_t{1} << t;
  }
  return w;
}

/// Collapses a cone extract (pure combinational, <= 6 inputs, one output)
/// into a single truth table over its input order.
logic::TruthTable cone_table(const Netlist& cone, int num_vars,
                             std::vector<logic::TruthTable>& tts,
                             std::vector<logic::TruthTable>& args) {
  tts.assign(cone.num_nodes(), logic::TruthTable());
  args.reserve(6);  // netlist gate arity ceiling
  for (std::size_t j = 0; j < cone.inputs().size(); ++j) {
    tts[cone.inputs()[j].index()] = logic::TruthTable::var(num_vars, static_cast<int>(j));
  }
  for (const NodeId id : cone.all_nodes()) {
    const Node& n = cone.node(id);
    if (n.type == NodeType::kConst) {
      tts[id.index()] = logic::TruthTable::constant(num_vars, n.func.eval(0));
    }
  }
  for (const NodeId id : cone.topo_order()) {
    const Node& n = cone.node(id);
    if (n.type != NodeType::kComb) continue;
    args.clear();
    for (const NodeId fi : cone.fanins(id)) args.push_back(tts[fi.index()]);
    tts[id.index()] = logic::compose(n.func, args);
  }
  return tts[cone.fanin(cone.outputs()[0], 0).index()];
}

/// One stage boundary's worth of point checks: structural signatures, the
/// lazily-built miter solver, and all loop scratch live here so the per-point
/// path never allocates beyond genuine growth.
class PointChecker {
 public:
  PointChecker(const Netlist& golden, const Netlist& revised, const CecOptions& opts,
               CecReport& report)
      : golden_(golden), revised_(revised), opts_(opts), report_(report) {
    for (int i = 0; i < 6; ++i) lanes_[i] = lane_word(i);
    if (opts_.structural_tier) {
      side_signatures(golden_, sig_[0]);
      side_signatures(revised_, sig_[1]);
    }
  }

  /// Checks output `idx` (is_state == false) or DFF D-function `idx`
  /// (is_state == true). Returns false when a counterexample stopped the scan.
  bool check_point(std::size_t idx, bool is_state) {
    ++report_.checks;
    const NodeId ga = is_state ? golden_.fanin(golden_.dffs()[idx], 0)
                               : golden_.fanin(golden_.outputs()[idx], 0);
    const NodeId rb = is_state ? revised_.fanin(revised_.dffs()[idx], 0)
                               : revised_.fanin(revised_.outputs()[idx], 0);

    if (opts_.structural_tier && sig_[0][ga.index()] == sig_[1][rb.index()]) {
      ++report_.tier_struct;
      return true;
    }

    const ConeSupport sup_a = cone_support(golden_, ga);
    const ConeSupport sup_b = cone_support(revised_, rb);
    merged_.inputs.clear();
    merged_.states.clear();
    std::set_union(sup_a.inputs.begin(), sup_a.inputs.end(), sup_b.inputs.begin(),
                   sup_b.inputs.end(), std::back_inserter(merged_.inputs));
    std::set_union(sup_a.states.begin(), sup_a.states.end(), sup_b.states.begin(),
                   sup_b.states.end(), std::back_inserter(merged_.states));
    const int m = static_cast<int>(merged_.num_leaves());

    if (m <= logic::TruthTable::kMaxVars) return check_by_table(idx, is_state, ga, rb, m);
    if (m <= opts_.max_exhaustive_inputs) return check_by_sweep(idx, is_state, ga, rb, m);
    return check_by_sat(idx, is_state, ga, rb);
  }

  void finish() {
    if (solver_) report_.sat_stats = solver_->stats();
    if (encoder_) report_.hashcons_hits = encoder_->hashcons_hits();
  }

 private:
  /// Tier 2: collapse both cones over the merged support and compare tables,
  /// with the NPN canonical table as the <= 4-var inequivalence pre-filter.
  bool check_by_table(std::size_t idx, bool is_state, NodeId ga, NodeId rb, int m) {
    const Netlist ca = extract_cone(golden_, ga, merged_);
    const Netlist cb = extract_cone(revised_, rb, merged_);
    const logic::TruthTable ta = cone_table(ca, m, tts_, args_);
    const logic::TruthTable tb = cone_table(cb, m, tts_, args_);
    bool npn_reject = false;
    if (m <= 4) {
      const auto a4 = static_cast<std::uint16_t>(ta.extend(4).bits());
      const auto b4 = static_cast<std::uint16_t>(tb.extend(4).bits());
      npn_reject = logic::npn_canonical4(a4) != logic::npn_canonical4(b4);
      if (npn_reject) ++report_.npn_rejects;
    }
    if (!npn_reject && ta == tb) {
      ++report_.tier_table;
      return true;
    }
    // Inequivalent: the first differing row is the counterexample.
    unsigned row = 0;
    while (ta.eval(row) == tb.eval(row)) ++row;
    ++report_.tier_table;
    record_cex_from_row(idx, is_state, row, 0);
    return false;
  }

  /// Tier 3: exhaustive 64-way sweep over the merged support (7..16 leaves).
  bool check_by_sweep(std::size_t idx, bool is_state, NodeId ga, NodeId rb, int m) {
    VPGA_ASSERT(m > 6 && m <= 16);
    const Netlist ca = extract_cone(golden_, ga, merged_);
    const Netlist cb = extract_cone(revised_, rb, merged_);
    BitSimulator sa(ca);
    BitSimulator sb(cb);
    for (int i = 0; i < 6; ++i) {
      sa.set_input(static_cast<std::size_t>(i), lanes_[i]);
      sb.set_input(static_cast<std::size_t>(i), lanes_[i]);
    }
    const std::uint32_t blocks = std::uint32_t{1} << (m - 6);
    for (std::uint32_t block = 0; block < blocks; ++block) {
      for (int i = 6; i < m; ++i) {
        const std::uint64_t w = ((block >> (i - 6)) & 1u) != 0 ? ~std::uint64_t{0} : 0;
        sa.set_input(static_cast<std::size_t>(i), w);
        sb.set_input(static_cast<std::size_t>(i), w);
      }
      sa.eval();
      sb.eval();
      const std::uint64_t diff = sa.output(0) ^ sb.output(0);
      if (diff != 0) {
        ++report_.tier_exhaustive;
        record_cex_from_row(idx, is_state,
                            static_cast<unsigned>(std::countr_zero(diff)), block);
        return false;
      }
    }
    ++report_.tier_exhaustive;
    return true;
  }

  /// Tier 4: per-point miter under a selector assumption on the shared
  /// incremental solver.
  bool check_by_sat(std::size_t idx, bool is_state, NodeId ga, NodeId rb) {
    if (!solver_) {
      solver_ = std::make_unique<sat::Solver>();
      encoder_ = std::make_unique<sat::MiterEncoder>(golden_, revised_, *solver_);
      if (opts_.sat_sweep) sat_sweep();
    }
    const sat::Lit la = encoder_->encode(sat::MiterEncoder::Side::kGolden, ga);
    const sat::Lit lb = encoder_->encode(sat::MiterEncoder::Side::kRevised, rb);
    if (la == lb) {
      // Structural hashing inside the encoder already merged the two cones.
      ++report_.tier_struct;
      return true;
    }
    const sat::Lit sel(solver_->new_var(), false);
    solver_->add_clause({~sel, la, lb});
    solver_->add_clause({~sel, ~la, ~lb});
    const sat::Lit assumption[1] = {sel};
    const sat::Result res =
        solver_->solve(std::span<const sat::Lit>(assumption, 1), opts_.sat_conflict_budget);
    if (res == sat::Result::kUnsat) {
      ++report_.tier_sat;
      solver_->add_clause({~sel});  // retire this point's miter
      return true;
    }
    if (res == sat::Result::kUnknown) {
      ++report_.unknown;
      report_.unknown_points.push_back(point_name(idx, is_state));
      solver_->add_clause({~sel});
      return true;
    }
    ++report_.tier_sat;
    CecCounterexample cex;
    cex.inputs.assign(golden_.inputs().size(), 0);
    cex.state.assign(golden_.dffs().size(), 0);
    for (std::size_t i = 0; i < encoder_->num_inputs(); ++i) {
      cex.inputs[i] = solver_->model_value(encoder_->input_lit(i).var()) ? 1 : 0;
    }
    for (std::size_t d = 0; d < encoder_->num_states(); ++d) {
      cex.state[d] = solver_->model_value(encoder_->state_lit(d).var()) ? 1 : 0;
    }
    verify_and_store(idx, is_state, std::move(cex));
    return false;
  }

  static constexpr int kSweepWords = 4;          ///< 256 shared stimulus patterns
  static constexpr long long kSweepBudget = 100;  ///< conflicts per candidate proof

  /// SAT sweeping: simulate both netlists on the same deterministic stimulus,
  /// register every golden comb node under its 256-pattern signature
  /// (complement-canonical), then walk the revised netlist bottom-up proving
  /// each signature match with a small miter. A proven match rebinds the
  /// revised node to the golden literal, so the eventual output miters are
  /// between largely-merged cones — the difference between multiplier CEC
  /// finishing in milliseconds and not finishing at all.
  void sat_sweep() {
    common::Rng rng(0xCEC5EEDull);  // fixed seed: sweep results are byte-stable
    const std::size_t width = golden_.inputs().size() + golden_.dffs().size();
    stimulus_.resize(width * static_cast<std::size_t>(kSweepWords));
    for (auto& w : stimulus_) w = rng.next_u64();
    sim_signatures(golden_, sweep_sig_[0]);
    sim_signatures(revised_, sweep_sig_[1]);
    for (const NodeId id : golden_.topo_order()) {
      if (golden_.node(id).type != NodeType::kComb) continue;
      const sat::Lit lit = encoder_->encode(sat::MiterEncoder::Side::kGolden, id);
      sweep_node(0, id, lit);
    }
    for (const NodeId id : revised_.topo_order()) {
      if (revised_.node(id).type != NodeType::kComb) continue;
      const sat::Lit lit = encoder_->encode(sat::MiterEncoder::Side::kRevised, id);
      sweep_node(1, id, lit);
    }
  }

  /// Evaluates kSweepWords shared stimulus words through `nl`, storing every
  /// node's response words contiguously in `sig`.
  void sim_signatures(const Netlist& nl, std::vector<std::uint64_t>& sig) {
    sig.assign(nl.num_nodes() * static_cast<std::size_t>(kSweepWords), 0);
    BitSimulator sim(nl);
    const std::size_t ni = nl.inputs().size();
    for (int w = 0; w < kSweepWords; ++w) {
      const std::uint64_t* words = stimulus_.data() +
                                   static_cast<std::size_t>(w) * (ni + nl.dffs().size());
      for (std::size_t i = 0; i < ni; ++i) sim.set_input(i, words[i]);
      for (std::size_t d = 0; d < nl.dffs().size(); ++d) sim.set_state(d, words[ni + d]);
      sim.eval();
      for (const NodeId id : nl.all_nodes()) {
        sig[id.index() * static_cast<std::size_t>(kSweepWords) + static_cast<std::size_t>(w)] =
            sim.value(id);
      }
    }
  }

  /// Registers node `id` (literal `lit`) under its canonical signature, or —
  /// for the revised side — proves it equal to the registered representative
  /// and rebinds it. Registration keys carry the full 256-bit signature, so
  /// only genuinely signature-equal nodes ever meet.
  void sweep_node(int side, NodeId id, sat::Lit lit) {
    const std::uint64_t* sig =
        sweep_sig_[side].data() + id.index() * static_cast<std::size_t>(kSweepWords);
    const bool phase = (sig[0] & 1u) != 0;  // complement-canonical form
    const std::uint64_t w0 = phase ? ~sig[0] : sig[0];
    const std::uint64_t w1 = phase ? ~sig[1] : sig[1];
    const std::uint64_t w2 = phase ? ~sig[2] : sig[2];
    const std::uint64_t w3 = phase ? ~sig[3] : sig[3];
    common::FnKey key;
    key.tag = 5;
    key.bits = w0;
    key.kids[0] = static_cast<std::uint32_t>(w1);
    key.kids[1] = static_cast<std::uint32_t>(w1 >> 32);
    key.kids[2] = static_cast<std::uint32_t>(w2);
    key.kids[3] = static_cast<std::uint32_t>(w2 >> 32);
    key.kids[4] = static_cast<std::uint32_t>(w3);
    key.kids[5] = static_cast<std::uint32_t>(w3 >> 32);
    const sat::Lit canon = phase ? ~lit : lit;
    const std::uint32_t found = sweepmap_.find_or_insert(key, canon.code());
    if (found == canon.code() || side == 0) return;  // representative, or golden pass
    const sat::Lit rep = phase ? ~sat::Lit::from_code(found) : sat::Lit::from_code(found);
    if (rep == lit) return;  // already shared via structural hashing
    const sat::Lit sel(solver_->new_var(), false);
    solver_->add_clause({~sel, lit, rep});
    solver_->add_clause({~sel, ~lit, ~rep});
    const sat::Lit assumption[1] = {sel};
    const sat::Result res =
        solver_->solve(std::span<const sat::Lit>(assumption, 1), kSweepBudget);
    solver_->add_clause({~sel});
    if (res != sat::Result::kUnsat) return;  // candidate refuted or budget-out
    solver_->add_clause({~lit, rep});
    solver_->add_clause({lit, ~rep});
    encoder_->set_lit(sat::MiterEncoder::Side::kRevised, id, rep);
    ++report_.sweep_merges;
  }

  /// Expands a merged-support row (low 6 bits in `row`, leaves >= 6 in
  /// `block`) into a full-interface counterexample and stores it.
  void record_cex_from_row(std::size_t idx, bool is_state, unsigned row, std::uint32_t block) {
    CecCounterexample cex;
    cex.inputs.assign(golden_.inputs().size(), 0);
    cex.state.assign(golden_.dffs().size(), 0);
    const std::size_t ni = merged_.inputs.size();
    for (std::size_t j = 0; j < merged_.num_leaves(); ++j) {
      const std::uint8_t v =
          j < 6 ? static_cast<std::uint8_t>((row >> j) & 1u)
                : static_cast<std::uint8_t>((block >> (j - 6)) & 1u);
      if (j < ni) {
        cex.inputs[merged_.inputs[j]] = v;
      } else {
        cex.state[merged_.states[j - ni]] = v;
      }
    }
    verify_and_store(idx, is_state, std::move(cex));
  }

  /// Replays the counterexample through the original netlists (broadcast
  /// words on the 64-way simulator) and asserts it witnesses the divergence
  /// before it is allowed into the report.
  void verify_and_store(std::size_t idx, bool is_state, CecCounterexample cex) {
    BitSimulator sg(golden_);
    BitSimulator sr(revised_);
    for (std::size_t i = 0; i < cex.inputs.size(); ++i) {
      const std::uint64_t w = cex.inputs[i] != 0 ? ~std::uint64_t{0} : 0;
      sg.set_input(i, w);
      sr.set_input(i, w);
    }
    for (std::size_t d = 0; d < cex.state.size(); ++d) {
      const std::uint64_t w = cex.state[d] != 0 ? ~std::uint64_t{0} : 0;
      sg.set_state(d, w);
      sr.set_state(d, w);
    }
    sg.eval();
    sr.eval();
    const std::uint64_t vg = is_state ? sg.next_state(idx) : sg.output(idx);
    const std::uint64_t vr = is_state ? sr.next_state(idx) : sr.output(idx);
    VPGA_ASSERT_MSG((vg & 1) != (vr & 1), "CEC counterexample failed simulation replay");
    cex.point_index = idx;
    cex.is_state = is_state;
    cex.point = point_name(idx, is_state);
    report_.cex = std::move(cex);
    report_.equivalent = false;
  }

  [[nodiscard]] std::string point_name(std::size_t idx, bool is_state) const {
    const NodeId id = is_state ? golden_.dffs()[idx] : golden_.outputs()[idx];
    const std::string& name = golden_.name_of(id);
    if (!name.empty()) return name;
    return (is_state ? "dff[" : "output[") + std::to_string(idx) + "]";
  }

  /// Shared structural signatures: identical cones — across both netlists —
  /// get identical dense ids, making tier 1 a single compare per point.
  void side_signatures(const Netlist& nl, std::vector<std::uint32_t>& sig) {
    sig.assign(nl.num_nodes(), 0);
    common::FnKey key;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      key = common::FnKey();
      key.tag = 1;
      key.bits = i;
      sig[nl.inputs()[i].index()] = fresh_sig(key);
    }
    for (std::size_t d = 0; d < nl.dffs().size(); ++d) {
      key = common::FnKey();
      key.tag = 2;
      key.bits = d;
      sig[nl.dffs()[d].index()] = fresh_sig(key);
    }
    for (const NodeId id : nl.all_nodes()) {
      if (nl.node(id).type != NodeType::kConst) continue;
      key = common::FnKey();
      key.tag = 3;
      key.bits = nl.node(id).func.eval(0) ? 1 : 0;
      sig[id.index()] = fresh_sig(key);
    }
    for (const NodeId id : nl.topo_order()) {
      const Node& n = nl.node(id);
      if (n.type != NodeType::kComb) continue;
      key = common::FnKey();
      key.bits = n.func.bits();
      key.arity = static_cast<std::uint8_t>(n.num_fanins());
      const std::span<const NodeId> fis = nl.fanins(id);
      for (std::size_t k = 0; k < fis.size(); ++k) key.kids[k] = sig[fis[k].index()];
      sig[id.index()] = fresh_sig(key);
    }
  }

  std::uint32_t fresh_sig(const common::FnKey& key) {
    return sigmap_.find_or_insert(key, static_cast<std::uint32_t>(sigmap_.size()) + 1);
  }

  const Netlist& golden_;
  const Netlist& revised_;
  const CecOptions& opts_;
  CecReport& report_;
  std::uint64_t lanes_[6] = {};
  common::FnKeyMap sigmap_;
  std::vector<std::uint32_t> sig_[2];
  common::FnKeyMap sweepmap_;
  std::vector<std::uint64_t> stimulus_;
  std::vector<std::uint64_t> sweep_sig_[2];
  ConeSupport merged_;
  std::vector<logic::TruthTable> tts_;
  std::vector<logic::TruthTable> args_;
  std::unique_ptr<sat::Solver> solver_;
  std::unique_ptr<sat::MiterEncoder> encoder_;
};

/// Writes the counterexample as JSON (the CI exact-gate artifact format).
void dump_cex_json(const char* path, const Netlist& golden, const std::string& stage,
                   const CecCounterexample& cex) {
  std::ofstream os(path);
  if (!os) return;
  os << "{\n  \"design\": \"" << golden.name() << "\",\n  \"stage\": \"" << stage
     << "\",\n  \"point\": \"" << cex.point << "\",\n  \"is_state\": "
     << (cex.is_state ? "true" : "false") << ",\n  \"inputs\": [";
  for (std::size_t i = 0; i < cex.inputs.size(); ++i) {
    os << (i == 0 ? "" : ", ") << static_cast<int>(cex.inputs[i]);
  }
  os << "],\n  \"state\": [";
  for (std::size_t d = 0; d < cex.state.size(); ++d) {
    os << (d == 0 ? "" : ", ") << static_cast<int>(cex.state[d]);
  }
  os << "]\n}\n";
}

/// Compact 0/1 string for diagnostics ("inputs=0110 state=01").
std::string bits_to_string(const std::vector<std::uint8_t>& bits) {
  std::string s;
  s.reserve(bits.size());
  for (const std::uint8_t b : bits) s.push_back(b != 0 ? '1' : '0');
  return s;
}

}  // namespace

std::uint64_t netlist_fingerprint(const Netlist& nl) {
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return h;
  };
  // Buffers (1-input identity gates) are transparent: they are skipped and
  // fanin references resolve through them, so the fingerprint is invariant
  // under high-fanout buffering — which inserts buffers by appending nodes,
  // leaving every pre-existing index in place.
  auto is_buffer = [&nl](NodeId id) {
    const Node& n = nl.node(id);
    return n.type == NodeType::kComb && n.num_fanins() == 1 && n.func.bits() == 2;
  };
  auto resolve = [&](NodeId id) {
    while (is_buffer(id)) id = nl.fanin(id, 0);
    return id;
  };
  std::uint64_t h = mix(nl.inputs().size(), nl.outputs().size());
  h = mix(h, nl.dffs().size());
  for (const NodeId id : nl.all_nodes()) {
    const Node& n = nl.node(id);
    if (is_buffer(id)) continue;
    h = mix(h, static_cast<std::uint64_t>(n.type));
    h = mix(h, n.func.bits());
    for (const NodeId fi : nl.fanins(id)) h = mix(h, resolve(fi).index());
  }
  return h;
}

CecReport check_combinational_equivalence(const Netlist& golden, const Netlist& revised,
                                          const CecOptions& opts) {
  CecReport report;
  if (golden.inputs().size() != revised.inputs().size() ||
      golden.outputs().size() != revised.outputs().size() ||
      golden.dffs().size() != revised.dffs().size()) {
    report.interface_ok = false;
    report.equivalent = false;
    return report;
  }
  PointChecker checker(golden, revised, opts, report);
  bool scanning = true;
  for (std::size_t o = 0; scanning && o < golden.outputs().size(); ++o) {
    scanning = checker.check_point(o, false);
  }
  for (std::size_t d = 0; scanning && d < golden.dffs().size(); ++d) {
    scanning = checker.check_point(d, true);
  }
  checker.finish();
  return report;
}

void check_cec(const Netlist& golden, const Netlist& revised, const std::string& stage,
               VerifyReport& report, const CecOptions& opts) {
  const obs::Span span("verify.cec");
  const CecReport cec = check_combinational_equivalence(golden, revised, opts);

  obs::count("cec.points", cec.checks);
  obs::count("cec.tier_struct", cec.tier_struct);
  obs::count("cec.tier_table", cec.tier_table);
  obs::count("cec.tier_exhaustive", cec.tier_exhaustive);
  obs::count("cec.tier_sat", cec.tier_sat);
  obs::count("cec.npn_rejects", cec.npn_rejects);
  obs::count("cec.sweep_merges", cec.sweep_merges);
  obs::count("cec.unknown", cec.unknown);
  obs::count("sat.conflicts", cec.sat_stats.conflicts);
  obs::count("sat.decisions", cec.sat_stats.decisions);
  obs::count("sat.propagations", cec.sat_stats.propagations);
  obs::count("sat.restarts", cec.sat_stats.restarts);
  obs::count("sat.learned", cec.sat_stats.learned_clauses);

  if (!cec.interface_ok) {
    report.add(Severity::kError, "cec.interface-mismatch", stage, NodeId(),
               "interface differs from the equivalence baseline: inputs " +
                   std::to_string(golden.inputs().size()) + " vs " +
                   std::to_string(revised.inputs().size()) + ", outputs " +
                   std::to_string(golden.outputs().size()) + " vs " +
                   std::to_string(revised.outputs().size()) + ", dffs " +
                   std::to_string(golden.dffs().size()) + " vs " +
                   std::to_string(revised.dffs().size()));
    return;
  }
  if (cec.cex.has_value()) {
    const CecCounterexample& cex = *cec.cex;
    if (const char* path = std::getenv("VPGA_CEC_CEX_PATH"); path != nullptr) {
      dump_cex_json(path, golden, stage, cex);
    }
    report.add(Severity::kError,
               cex.is_state ? "cec.state-diverges" : "cec.output-diverges", stage, NodeId(),
               (cex.is_state ? "next-state function of '" : "output '") + cex.point +
                   "' differs from the equivalence baseline; counterexample inputs=" +
                   bits_to_string(cex.inputs) +
                   (cex.state.empty() ? std::string() : " state=" + bits_to_string(cex.state)));
  }
  if (cec.unknown > 0) {
    report.add(Severity::kWarning, "cec.resource-limit", stage, NodeId(),
               std::to_string(cec.unknown) + " point(s) exhausted the SAT conflict budget (" +
                   std::to_string(opts.sat_conflict_budget) + "), first: " +
                   cec.unknown_points.front());
  }
}

}  // namespace vpga::verify
