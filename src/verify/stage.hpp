#pragma once
/// \file stage.hpp
/// Stage-specific legality rules, keyed to pipeline position.
///
/// Each flow stage re-expresses the design under a tighter contract; these
/// checks pin the contract down at the boundary where it first holds:
///
/// post-map (restricted-library netlist):
///   map.unmapped-node          a kComb node carries no library cell
///   map.illegal-cell           the cell is outside the architecture's
///                              restricted component library
///   map.cell-function-mismatch the node's function is not in the cell's
///                              via-programmable coverage set
///
/// post-compact / post-buffer (configuration netlist):
///   compact.missing-config     a comb node has neither a config_tag nor an
///                              INV/BUF cell (the only legal free riders)
///   compact.bad-config-tag     config_tag does not name a real ConfigKind
///   compact.unsupported-config the architecture's interconnect cannot form
///                              this configuration
///   compact.config-overflow    the configuration alone exceeds one PLB's
///                              component slots (fits_in_one_plb)
///   compact.macro-rep          broken multi-output macro grouping
///
/// post-pack (legalized PLB array):
///   pack.unassigned            a slot-consuming node has no tile
///   pack.tile-bounds           a tile index is outside the grid
///   pack.capacity              a tile's occupants exceed its component slots
///   pack.macro-split           members of one macro landed in several tiles
///
/// post-route (routed PLB array):
///   route.via-budget           a tile's configuration vias plus routing-tap
///                              vias exceed its candidate via sites
///                              (core/vias.cpp potential_via_sites)

#include "core/plb.hpp"
#include "netlist/netlist.hpp"
#include "pack/packer.hpp"
#include "verify/diagnostic.hpp"

namespace vpga::verify {

/// Legality of a technology-mapped netlist against `arch`'s restricted
/// component-cell library.
void check_post_map(const netlist::Netlist& nl, const core::PlbArchitecture& arch,
                    const std::string& stage, VerifyReport& report);

/// Legality of a compacted (configuration-annotated) netlist against the
/// paper's PLB resource model. Also valid post-buffering, which may only add
/// BUF free riders.
void check_post_compact(const netlist::Netlist& nl, const core::PlbArchitecture& arch,
                        const std::string& stage, VerifyReport& report);

/// Legality of a packed design: grid bounds, per-tile capacity under the
/// exact resource model, macro co-location.
void check_post_pack(const netlist::Netlist& nl, const pack::PackedDesign& packed,
                     const core::PlbArchitecture& arch, const std::string& stage,
                     VerifyReport& report);

/// Via-budget legality of the routed array: each tile's programmed
/// configuration vias plus its per-net routing taps — one tap-up via at the
/// driver's tile per net that leaves it, one tap-down via per distinct sink
/// tile, however many connections the net serves there — must fit within the
/// tile's candidate via sites.
void check_post_route(const netlist::Netlist& nl, const pack::PackedDesign& packed,
                      const core::PlbArchitecture& arch, const std::string& stage,
                      VerifyReport& report);

/// Process-lifetime via-budget counters, accumulated across every
/// check_post_route call. The check runs concurrently under
/// FlowOptions::parallel_compare, so the backing store is mutex-guarded
/// (FABRIC_GUARDED_BY, src/common/concurrency.hpp) and read through a locked
/// snapshot.
struct ViaTallySnapshot {
  long long checks = 0;    ///< completed check_post_route calls
  long long overruns = 0;  ///< summed over-budget tiles
};
[[nodiscard]] ViaTallySnapshot via_tally();

}  // namespace vpga::verify
