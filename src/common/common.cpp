// Anchor translation unit for the header-only vpga_common library.
#include "common/assert.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
