#pragma once
/// \file fnmap.hpp
/// Open-addressed hash map from small function-shaped keys to dense ids.
///
/// The exact-equivalence engine hash-conses gates in two places: the Tseitin
/// encoder (structural sharing of identical gates across the golden/revised
/// pair) and the CEC structural-signature tier. Both run inside the hot
/// verify stage, so this map is built for that profile: keys are fixed-size
/// PODs (a function word plus up to six child ids), probing is linear over a
/// power-of-two slot table, and iteration order is never exposed — lookups
/// and the dense key/value arrays are the only access paths, which keeps the
/// behaviour deterministic regardless of insertion pressure.
///
/// Unlike std::unordered_map there is one allocation per growth step and no
/// per-node boxing, which also keeps the structure invisible to the
/// fabriclint `perf.map-in-hot-loop` rule for good reason rather than by
/// accident.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vpga::common {

/// Key for one hash-consed gate: a truth-table / function word, up to six
/// child ids, an arity, and a small tag discriminating key spaces that share
/// one map (e.g. encoder side or node kind).
struct FnKey {
  std::uint64_t bits = 0;
  std::uint32_t kids[6] = {0, 0, 0, 0, 0, 0};
  std::uint8_t arity = 0;
  std::uint8_t tag = 0;

  friend bool operator==(const FnKey& a, const FnKey& b) {
    if (a.bits != b.bits || a.arity != b.arity || a.tag != b.tag) return false;
    for (int i = 0; i < 6; ++i) {
      if (a.kids[i] != b.kids[i]) return false;
    }
    return true;
  }
};

/// Open-addressed FnKey -> uint32 map with linear probing.
class FnKeyMap {
 public:
  static constexpr std::uint32_t kNotFound = 0xFFFFFFFFu;

  FnKeyMap() = default;

  void clear() {
    keys_.clear();
    values_.clear();
    slots_.clear();
    mask_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return keys_.size(); }

  /// Returns the mapped value or kNotFound.
  [[nodiscard]] std::uint32_t find(const FnKey& key) const {
    if (slots_.empty()) return kNotFound;
    std::uint64_t slot = hash(key) & mask_;
    while (slots_[slot] != 0) {
      const std::uint32_t dense = slots_[slot] - 1;
      if (keys_[dense] == key) return values_[dense];
      slot = (slot + 1) & mask_;
    }
    return kNotFound;
  }

  /// Returns the existing value for `key`, or inserts `fresh` and returns it.
  std::uint32_t find_or_insert(const FnKey& key, std::uint32_t fresh) {
    if (keys_.size() + 1 > (slots_.size() * 3) / 4) {
      rehash(slots_.empty() ? 64 : slots_.size() * 2);
    }
    std::uint64_t slot = hash(key) & mask_;
    while (slots_[slot] != 0) {
      const std::uint32_t dense = slots_[slot] - 1;
      if (keys_[dense] == key) return values_[dense];
      slot = (slot + 1) & mask_;
    }
    slots_[slot] = static_cast<std::uint32_t>(keys_.size()) + 1;
    keys_.push_back(key);
    values_.push_back(fresh);
    return fresh;
  }

 private:
  [[nodiscard]] static std::uint64_t hash(const FnKey& key) {
    // splitmix64-style mixing over the key fields; fixed constants keep the
    // probe order identical on every run.
    std::uint64_t h = key.bits + 0x9E3779B97F4A7C15ull;
    h ^= (static_cast<std::uint64_t>(key.arity) << 8) | key.tag;
    for (int i = 0; i < 6; ++i) {
      h += key.kids[i];
      h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    }
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    return h ^ (h >> 31);
  }

  void rehash(std::size_t new_cap) {
    slots_.assign(new_cap, 0);
    mask_ = new_cap - 1;
    for (std::size_t dense = 0; dense < keys_.size(); ++dense) {
      std::uint64_t slot = hash(keys_[dense]) & mask_;
      while (slots_[slot] != 0) slot = (slot + 1) & mask_;
      slots_[slot] = static_cast<std::uint32_t>(dense) + 1;
    }
  }

  std::vector<FnKey> keys_;             ///< dense keys, insertion order
  std::vector<std::uint32_t> values_;   ///< dense values, parallel to keys_
  std::vector<std::uint32_t> slots_;    ///< dense index + 1; 0 = empty
  std::uint64_t mask_ = 0;
};

}  // namespace vpga::common
