#pragma once
/// \file ids.hpp
/// Strongly typed index handles.
///
/// Netlists, grids, and libraries are all index-based arenas. Raw size_t
/// indices invite cross-container mixups, so each arena gets its own ID type
/// via the Id<Tag> template. IDs are trivially copyable, hashable, ordered,
/// and have an explicit invalid state.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace vpga::common {

/// A typed wrapper around a 32-bit index. Tag is any (possibly incomplete)
/// type used purely for type distinction.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;
  static constexpr value_type kInvalid = std::numeric_limits<value_type>::max();

  constexpr Id() = default;
  constexpr explicit Id(value_type v) : v_(v) {}
  constexpr explicit Id(std::size_t v) : v_(static_cast<value_type>(v)) {}

  [[nodiscard]] constexpr value_type value() const { return v_; }
  [[nodiscard]] constexpr std::size_t index() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != kInvalid; }

  friend constexpr bool operator==(Id a, Id b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(Id a, Id b) { return a.v_ < b.v_; }

 private:
  value_type v_ = kInvalid;
};

}  // namespace vpga::common

template <typename Tag>
struct std::hash<vpga::common::Id<Tag>> {
  std::size_t operator()(vpga::common::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
