#pragma once
/// \file table.hpp
/// Minimal fixed-column text-table printer used by the bench harnesses so
/// every reproduced table/figure prints in a consistent, diff-friendly form.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace vpga::common {

/// Accumulates rows of strings and prints them with aligned columns.
class TextTable {
 public:
  /// Starts a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  /// Adds one row; missing cells print empty, extra cells are kept.
  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  /// Renders the table to the stream with a header separator line.
  // fabriclint: disable(io.stray-stream) -- stdout is this bench-table
  // printer's documented default sink; library code passes explicit streams.
  void print(std::ostream& os = std::cout) const {
    std::size_t ncols = headers_.size();
    for (const auto& r : rows_) ncols = std::max(ncols, r.size());
    std::vector<std::size_t> width(ncols, 0);
    auto widen = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
    };
    widen(headers_);
    for (const auto& r : rows_) widen(r);

    const std::string empty_cell;
    auto emit = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < ncols; ++c) {
        const std::string& cell = c < r.size() ? r[c] : empty_cell;
        os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cell;
      }
      os << '\n';
    };
    emit(headers_);
    std::size_t total = 0;
    for (auto w : width) total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& r : rows_) emit(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vpga::common
