#pragma once
/// \file assert.hpp
/// Checked assertions that stay enabled in release builds.
///
/// EDA data structures carry invariants (acyclicity, pin counts, resource
/// budgets) whose violation would silently corrupt downstream results, so we
/// keep the checks on in every build type and fail loudly with location info.

#include <cstdio>
#include <cstdlib>

namespace vpga::common {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  // fabriclint: disable(io.stray-stream) -- the assert handler runs on the
  // way to std::abort; stderr is the only sink that still exists.
  std::fprintf(stderr, "VPGA_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace vpga::common

/// Always-on assertion. Use for invariants whose violation would corrupt results.
#define VPGA_ASSERT(expr)                                                   \
  do {                                                                      \
    if (!(expr)) ::vpga::common::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

/// Always-on assertion with an explanatory message.
#define VPGA_ASSERT_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) ::vpga::common::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
