#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation (xoshiro256**).
///
/// Every stochastic stage in the flow (annealing, router tie-breaks, workload
/// generators, randomized property tests) draws from this generator with an
/// explicit seed so that all experiments are reproducible bit-for-bit.

#include <cstdint>

namespace vpga::common {

/// xoshiro256** by Blackman & Vigna; public-domain algorithm.
/// Small, fast, and high quality; deliberately not std::mt19937 so results
/// are identical across standard-library implementations.
class Rng {
 public:
  /// Seeds the state from a single 64-bit value via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    auto splitmix = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& s : state_) s = splitmix();
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with probability p.
  bool next_bool(double p = 0.5) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4];
};

}  // namespace vpga::common
