#pragma once
/// \file concurrency.hpp
/// Lock-discipline annotations checked statically by fabriclint.
///
/// `FABRIC_GUARDED_BY(m)` documents that a data member may only be read or
/// written while the mutex `m` is held. The macro expands to nothing — it is
/// a machine-checked comment: fabriclint's semantic engine (docs/LINT.md,
/// rule `conc.unguarded-access`) builds a symbol table and call graph over
/// `src/` and reports any access to an annotated field from a context that
/// does not hold the named mutex, either directly or transitively through
/// every caller. This turns the data-race discipline that the CI TSan job
/// samples dynamically into a property checked on every path at lint time.
///
/// Usage:
///
/// ```cpp
/// class MetricsRegistry {
///   mutable std::mutex mu_;
///   std::map<std::string, long long> counters_ FABRIC_GUARDED_BY(mu_);
/// };
/// ```
///
/// Place the annotation after the declarator, before any initializer:
/// `long long runs FABRIC_GUARDED_BY(mu) = 0;`.

#define FABRIC_GUARDED_BY(mutex_expr)
