#include "sat/solver.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace vpga::sat {

long long luby(long long i) {
  // Find the subsequence [2^k - 1] containing i (1-based) and recurse.
  long long k = 1, size = 1;
  while (size < i + 1) {
    ++k;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --k;
    i = i % size;
  }
  return 1LL << (k - 1);
}

Solver::Solver() {
  trail_.reserve(64);
  trail_lim_.reserve(16);
  learnt_scratch_.reserve(32);
  add_scratch_.reserve(8);
}

Var Solver::new_var() {
  const Var v = static_cast<Var>(activity_.size());
  activity_.push_back(0.0);
  assigns_.push_back(-1);
  polarity_.push_back(0);
  reason_.push_back(kNoClause);
  level_.push_back(0);
  heap_pos_.push_back(-1);
  model_.push_back(0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

std::uint32_t Solver::alloc_clause(std::span<const Lit> lits, bool learnt) {
  const std::uint32_t cref = static_cast<std::uint32_t>(arena_.size());
  arena_.push_back(static_cast<std::uint32_t>(lits.size()));
  for (const Lit l : lits) arena_.push_back(l.code());
  if (learnt) ++stats_.learned_clauses;
  return cref;
}

void Solver::watch_clause(std::uint32_t cref) {
  const Lit l0 = Lit::from_code(arena_[cref + 1]);
  const Lit l1 = Lit::from_code(arena_[cref + 2]);
  // A clause is registered under the codes of its two watched literals'
  // negations: when one of them is assigned true (falsifying the watch),
  // propagate() visits the clause.
  watches_[(~l0).code()].push_back({cref, l1});
  watches_[(~l1).code()].push_back({cref, l0});
}

bool Solver::add_clause(std::span<const Lit> lits) {
  VPGA_ASSERT_MSG(decision_level() == 0, "add_clause is a root-level operation");
  if (!ok_) return false;

  // Normalize: sort, dedupe, drop root-false literals, detect tautology and
  // root-satisfied clauses. The sorted layout is deterministic.
  add_scratch_.assign(lits.begin(), lits.end());
  std::sort(add_scratch_.begin(), add_scratch_.end());
  std::size_t n = 0;
  Lit prev;
  for (const Lit l : add_scratch_) {
    VPGA_ASSERT(l.var() < num_vars());
    if (value(l) == 1) return true;  // already satisfied at root
    if (l == prev || value(l) == 0) continue;
    if (prev.valid() && l == ~prev) return true;  // tautology
    add_scratch_[n++] = l;
    prev = l;
  }
  add_scratch_.resize(n);

  if (n == 0) {
    ok_ = false;
    return false;
  }
  if (n == 1) {
    enqueue(add_scratch_[0], kNoClause);
    if (propagate() != kNoClause) ok_ = false;
    return ok_;
  }
  watch_clause(alloc_clause(add_scratch_, /*learnt=*/false));
  return true;
}

void Solver::enqueue(Lit l, std::uint32_t reason) {
  const Var v = l.var();
  VPGA_ASSERT(assigns_[v] < 0);
  assigns_[v] = static_cast<std::int8_t>(l.negated() ? 0 : 1);
  polarity_[v] = assigns_[v];
  reason_[v] = reason;
  level_[v] = static_cast<std::uint32_t>(decision_level());
  trail_.push_back(l);
}

std::uint32_t Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];  // p just became true; ~p became false
    ++stats_.propagations;
    std::vector<Watch>& ws = watches_[p.code()];
    std::size_t i = 0, j = 0;
    const std::size_t end = ws.size();
    while (i < end) {
      const Watch w = ws[i];
      if (value(w.blocker) == 1) {  // clause already satisfied
        ws[j++] = ws[i++];
        continue;
      }
      const std::uint32_t cref = w.cref;
      const std::uint32_t size = arena_[cref];
      // Ensure the falsified literal sits in slot 1.
      if (Lit::from_code(arena_[cref + 1]) == ~p)
        std::swap(arena_[cref + 1], arena_[cref + 2]);
      const Lit first = Lit::from_code(arena_[cref + 1]);
      if (first != w.blocker && value(first) == 1) {
        ws[j++] = {cref, first};
        ++i;
        continue;
      }
      // Hunt for a replacement watch among the tail literals.
      bool moved = false;
      for (std::uint32_t k = 2; k < size; ++k) {
        const Lit lk = Lit::from_code(arena_[cref + 1 + k]);
        if (value(lk) != 0) {
          std::swap(arena_[cref + 2], arena_[cref + 1 + k]);
          watches_[(~lk).code()].push_back({cref, first});
          moved = true;
          break;
        }
      }
      if (moved) {
        ++i;  // clause left this watch list
        continue;
      }
      // No replacement: clause is unit on `first`, or conflicting.
      ws[j++] = {cref, first};
      ++i;
      if (value(first) == 0) {  // conflict
        qhead_ = trail_.size();
        while (i < end) ws[j++] = ws[i++];
        ws.resize(j);
        return cref;
      }
      enqueue(first, cref);
    }
    ws.resize(j);
  }
  return kNoClause;
}

void Solver::analyze(std::uint32_t confl, std::vector<Lit>& out_learnt,
                     std::size_t& out_btlevel) {
  // Standard first-UIP: walk the trail backwards resolving current-level
  // literals until exactly one remains; lower-level literals join the clause.
  out_learnt.clear();
  out_learnt.reserve(trail_.size() + 1);  // a learnt clause never exceeds the trail
  out_learnt.push_back(Lit());  // slot 0 reserved for the asserting literal
  int path_count = 0;
  Lit p;
  std::size_t index = trail_.size();

  for (;;) {
    VPGA_ASSERT(confl != kNoClause);
    const std::uint32_t size = arena_[confl];
    const std::uint32_t start = p.valid() ? 1 : 0;  // skip the asserting slot on reasons
    for (std::uint32_t k = start; k < size; ++k) {
      const Lit q = Lit::from_code(arena_[confl + 1 + k]);
      const Var v = q.var();
      if (seen_[v] != 0 || level_[v] == 0) continue;
      seen_[v] = 1;
      bump_var(v);
      if (level_[v] == decision_level()) {
        ++path_count;
      } else {
        out_learnt.push_back(q);
      }
    }
    // Next current-level literal to resolve on.
    while (seen_[trail_[index - 1].var()] == 0) --index;
    --index;
    p = trail_[index];
    seen_[p.var()] = 0;
    confl = reason_[p.var()];
    if (--path_count <= 0) break;
  }
  out_learnt[0] = ~p;

  // Backtrack level: the highest level among the non-asserting literals.
  out_btlevel = 0;
  std::size_t max_at = 1;
  for (std::size_t k = 1; k < out_learnt.size(); ++k) {
    const std::size_t lev = level_[out_learnt[k].var()];
    if (lev > out_btlevel) {
      out_btlevel = lev;
      max_at = k;
    }
  }
  if (out_learnt.size() > 1) std::swap(out_learnt[1], out_learnt[max_at]);
  for (std::size_t k = 1; k < out_learnt.size(); ++k) seen_[out_learnt[k].var()] = 0;
}

void Solver::cancel_until(std::size_t level) {
  if (decision_level() <= level) return;
  const std::uint32_t bound = trail_lim_[level];
  for (std::size_t k = trail_.size(); k > bound; --k) {
    const Var v = trail_[k - 1].var();
    assigns_[v] = -1;
    reason_[v] = kNoClause;
    if (heap_pos_[v] < 0) heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(level);
  qhead_ = trail_.size();
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[v] >= 0) heap_up(static_cast<std::size_t>(heap_pos_[v]));
}

void Solver::decay_activities() { var_inc_ *= (1.0 / 0.95); }

void Solver::heap_insert(Var v) {
  heap_pos_[v] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_up(heap_.size() - 1);
}

void Solver::heap_up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!order_less(v, heap_[parent])) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::int32_t>(i);
}

void Solver::heap_down(std::size_t i) {
  const Var v = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && order_less(heap_[child + 1], heap_[child])) ++child;
    if (!order_less(heap_[child], v)) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::int32_t>(i);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  const Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    heap_pos_[last] = 0;
    heap_down(0);
  }
  return top;
}

Lit Solver::pick_branch() {
  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (assigns_[v] < 0) return Lit(v, polarity_[v] == 0);
  }
  return Lit();
}

Result Solver::solve(std::span<const Lit> assumptions, long long conflict_budget) {
  if (!ok_) return Result::kUnsat;
  VPGA_ASSERT(decision_level() == 0);
  const long long conflict_limit =
      conflict_budget < 0 ? -1 : stats_.conflicts + conflict_budget;
  long long restarts_done = 0;
  long long conflicts_this_restart = 0;
  long long restart_limit = 100 * luby(0);

  if (propagate() != kNoClause) {
    ok_ = false;
    return Result::kUnsat;
  }

  for (;;) {
    const std::uint32_t confl = propagate();
    if (confl != kNoClause) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (decision_level() == 0) {
        ok_ = false;
        return Result::kUnsat;
      }
      if (conflict_limit >= 0 && stats_.conflicts > conflict_limit) {
        cancel_until(0);
        return Result::kUnknown;
      }
      std::size_t bt_level = 0;
      analyze(confl, learnt_scratch_, bt_level);
      cancel_until(bt_level);
      if (learnt_scratch_.size() == 1) {
        enqueue(learnt_scratch_[0], kNoClause);
      } else {
        const std::uint32_t cref = alloc_clause(learnt_scratch_, /*learnt=*/true);
        watch_clause(cref);
        enqueue(learnt_scratch_[0], cref);
      }
      decay_activities();
      continue;
    }

    if (conflict_limit >= 0 && stats_.conflicts >= conflict_limit) {
      cancel_until(0);
      return Result::kUnknown;
    }
    if (conflicts_this_restart >= restart_limit) {
      ++stats_.restarts;
      ++restarts_done;
      conflicts_this_restart = 0;
      restart_limit = 100 * luby(restarts_done);
      cancel_until(0);
      continue;
    }

    // Next decision: pending assumptions first, then the activity order.
    Lit next;
    while (decision_level() < assumptions.size()) {
      const Lit a = assumptions[decision_level()];
      if (value(a) == 1) {
        trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));  // dummy level
      } else if (value(a) == 0) {
        cancel_until(0);  // assumption contradicted by the clause set
        return Result::kUnsat;
      } else {
        next = a;
        break;
      }
    }
    if (!next.valid()) {
      next = pick_branch();
      if (!next.valid()) {  // every variable assigned: model found
        model_.assign(assigns_.begin(), assigns_.end());
        cancel_until(0);
        return Result::kSat;
      }
      ++stats_.decisions;
    }
    trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
    enqueue(next, kNoClause);
  }
}

}  // namespace vpga::sat
