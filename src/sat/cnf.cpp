#include "sat/cnf.hpp"

#include "common/assert.hpp"

namespace vpga::sat {

using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;
using netlist::NodeType;

MiterEncoder::MiterEncoder(const Netlist& golden, const Netlist& revised, Solver& solver,
                           std::span<const std::uint32_t> revised_state_map)
    : solver_(solver) {
  VPGA_ASSERT(golden.inputs().size() == revised.inputs().size());
  VPGA_ASSERT(golden.dffs().size() == revised.dffs().size());
  VPGA_ASSERT(revised_state_map.empty() || revised_state_map.size() == revised.dffs().size());
  sides_[0].nl = &golden;
  sides_[1].nl = &revised;
  sides_[0].lit_of.assign(golden.num_nodes(), kUnset);
  sides_[1].lit_of.assign(revised.num_nodes(), kUnset);
  // Shared leaf variables, allocated eagerly in interface order so the
  // variable numbering is independent of which cones get encoded later.
  input_lits_.reserve(golden.inputs().size());
  for (std::size_t i = 0; i < golden.inputs().size(); ++i) {
    input_lits_.push_back(Lit(solver_.new_var(), false));
  }
  state_lits_.reserve(golden.dffs().size());
  for (std::size_t i = 0; i < golden.dffs().size(); ++i) {
    state_lits_.push_back(Lit(solver_.new_var(), false));
  }
  bind_leaves(sides_[0], {});
  bind_leaves(sides_[1], revised_state_map);
}

void MiterEncoder::bind_leaves(SideState& ss, std::span<const std::uint32_t> state_map) {
  const Netlist& nl = *ss.nl;
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    ss.lit_of[nl.inputs()[i].index()] = input_lits_[i].code();
  }
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    const std::size_t leaf = state_map.empty() ? i : state_map[i];
    ss.lit_of[nl.dffs()[i].index()] = state_lits_[leaf].code();
  }
}

Lit MiterEncoder::const_lit(bool value) {
  if (!true_lit_.valid()) {
    true_lit_ = Lit(solver_.new_var(), false);
    solver_.add_clause({true_lit_});
  }
  return value ? true_lit_ : ~true_lit_;
}

Lit MiterEncoder::encode(Side side, NodeId node) {
  SideState& ss = sides_[static_cast<int>(side)];
  const Netlist& nl = *ss.nl;
  stack_.clear();
  stack_.push_back(node);
  while (!stack_.empty()) {
    const NodeId id = stack_.back();
    if (ss.lit_of[id.index()] != kUnset) {
      stack_.pop_back();
      continue;
    }
    const Node& n = nl.node(id);
    if (n.type == NodeType::kConst) {
      ss.lit_of[id.index()] = const_lit(n.func.eval(0)).code();
      stack_.pop_back();
      continue;
    }
    VPGA_ASSERT(n.type == NodeType::kComb && "encode roots must sit below the output shell");
    bool ready = true;
    for (const NodeId fi : nl.fanins(id)) {
      if (ss.lit_of[fi.index()] == kUnset) {
        stack_.push_back(fi);
        ready = false;
      }
    }
    if (!ready) continue;
    ss.lit_of[id.index()] = encode_comb(n, ss, id).code();
    stack_.pop_back();
  }
  return Lit::from_code(ss.lit_of[node.index()]);
}

Lit MiterEncoder::encode_comb(const Node& n, SideState& ss, NodeId id) {
  const Netlist& nl = *ss.nl;
  const logic::TruthTable f = n.func;
  const int k = f.num_vars();
  kid_buf_.clear();
  for (const NodeId fi : nl.fanins(id)) {
    kid_buf_.push_back(Lit::from_code(ss.lit_of[fi.index()]));
  }

  // Constant / buffer / inverter folding before any variable is spent.
  if (f.bits() == 0) return const_lit(false);
  if (f == logic::TruthTable::constant(k, true)) return const_lit(true);
  if (k == 1) {
    // Non-constant single-var function is the projection or its complement.
    return f.eval(1) ? kid_buf_[0] : ~kid_buf_[0];
  }

  // Structural hashing on (function word, fanin literals): an identical gate
  // anywhere in the pair reuses its variable.
  common::FnKey key;
  key.bits = f.bits();
  key.arity = static_cast<std::uint8_t>(k);
  for (int i = 0; i < k; ++i) key.kids[i] = kid_buf_[static_cast<std::size_t>(i)].code();
  const Lit fresh(static_cast<Var>(solver_.num_vars()), false);
  const std::uint32_t code = hashcons_.find_or_insert(key, fresh.code());
  if (code != fresh.code()) {
    ++hashcons_hits_;
    return Lit::from_code(code);
  }

  // New gate: materialize the variable and its Tseitin row clauses
  // (row r: fanins == r implies y == f(r)).
  const Lit y(solver_.new_var(), false);
  VPGA_ASSERT(y == fresh);
  for (unsigned r = 0; r < (1u << k); ++r) {
    clause_buf_.clear();
    for (int i = 0; i < k; ++i) {
      const Lit li = kid_buf_[static_cast<std::size_t>(i)];
      clause_buf_.push_back(((r >> i) & 1u) != 0 ? ~li : li);
    }
    clause_buf_.push_back(f.eval(r) ? y : ~y);
    solver_.add_clause(clause_buf_);
  }
  return y;
}

}  // namespace vpga::sat
