#pragma once
/// \file cnf.hpp
/// Tseitin encoding of netlist cones into a shared CNF miter.
///
/// A MiterEncoder owns the variable spaces for one golden/revised netlist
/// pair over one Solver. The two netlists share leaf variables — one SAT
/// variable per primary-input index and one per DFF index (the Q pin's
/// current value) — so encoding a driver from each side and constraining the
/// two result literals to differ is exactly the per-output miter. Interior
/// gates get Tseitin variables with full row clauses (arity <= 6, so at most
/// 64 clauses per gate), after constant/buffer/inverter folding and
/// structural hashing: two gates with the same function word and the same
/// fanin literals — on either side — share one variable, which is what makes
/// identical regions of the pre/post-stage netlists collapse before the
/// solver ever sees them.
///
/// Variable allocation follows construction + encode order only, so CNFs,
/// and therefore verdicts and models, are byte-stable across runs.

#include <cstdint>
#include <span>
#include <vector>

#include "common/fnmap.hpp"
#include "netlist/netlist.hpp"
#include "sat/solver.hpp"

namespace vpga::sat {

class MiterEncoder {
 public:
  enum class Side : std::uint8_t { kGolden = 0, kRevised = 1 };

  /// Both netlists must agree on inputs().size() and dffs().size() (the CEC
  /// interface check runs first and refuses mismatched pairs).
  /// `revised_state_map`, when non-empty, gives the register correspondence:
  /// revised DFF d shares the leaf variable of golden DFF
  /// `revised_state_map[d]` instead of golden DFF d — how the CEC miters
  /// netlists whose registers were reordered. Empty means positional.
  MiterEncoder(const netlist::Netlist& golden, const netlist::Netlist& revised, Solver& solver,
               std::span<const std::uint32_t> revised_state_map = {});

  /// Encodes the cone rooted at `node` (a comb node, constant, input, or DFF
  /// — not an output shell) and returns the literal holding its value.
  /// Memoized per side; repeated calls are cheap.
  Lit encode(Side side, netlist::NodeId node);

  /// Shared leaf literals, for counterexample extraction from the model.
  [[nodiscard]] Lit input_lit(std::size_t input_index) const { return input_lits_[input_index]; }
  [[nodiscard]] Lit state_lit(std::size_t state_index) const { return state_lits_[state_index]; }
  [[nodiscard]] std::size_t num_inputs() const { return input_lits_.size(); }
  [[nodiscard]] std::size_t num_states() const { return state_lits_.size(); }

  /// The lazily-created constant literal (a fresh variable pinned by a unit
  /// clause on first use).
  Lit const_lit(bool value);

  /// Overrides the literal memoized for `node` — the SAT-sweeping hook: once
  /// the CEC proves a node equal to an earlier literal (possibly from the
  /// other side), rebinding collapses every not-yet-encoded fanout onto the
  /// proven representative.
  void set_lit(Side side, netlist::NodeId node, Lit lit) {
    sides_[static_cast<int>(side)].lit_of[node.index()] = lit.code();
  }

  /// Gates that hit the structural-hash cache instead of being re-encoded.
  [[nodiscard]] long long hashcons_hits() const { return hashcons_hits_; }

 private:
  struct SideState {
    const netlist::Netlist* nl = nullptr;
    /// Per node index: literal code, or kUnset.
    std::vector<std::uint32_t> lit_of;
  };
  static constexpr std::uint32_t kUnset = 0xFFFFFFFFu;

  void bind_leaves(SideState& ss, std::span<const std::uint32_t> state_map);
  Lit encode_comb(const netlist::Node& n, SideState& ss, netlist::NodeId id);

  Solver& solver_;
  SideState sides_[2];
  std::vector<Lit> input_lits_;
  std::vector<Lit> state_lits_;
  Lit true_lit_;  ///< invalid until const_lit() first runs
  common::FnKeyMap hashcons_;
  long long hashcons_hits_ = 0;
  // Encode-loop scratch, hoisted so the hot path never allocates.
  std::vector<netlist::NodeId> stack_;
  std::vector<Lit> kid_buf_;
  std::vector<Lit> clause_buf_;
};

}  // namespace vpga::sat
