#pragma once
/// \file solver.hpp
/// Dependency-free CDCL SAT solver for the exact-equivalence engine.
///
/// A deliberately small MiniSat-style solver: two-watched-literal
/// propagation, first-UIP conflict learning, VSIDS-lite branching (activity
/// decay with lowest-index tie-breaks), phase saving, and Luby restarts.
/// Everything is deterministic by construction — no wall-clock, no pointer
/// ordering, no random numbers — so a given clause set produces byte-stable
/// verdicts, statistics, and models across runs and across threads. That is
/// the property the verify layer's `cec.*` gate advertises (docs/VERIFY.md)
/// and tests/test_determinism-style repeat/parallel comparisons rely on.
///
/// The solver is incremental in the assumption style: clauses accumulate
/// across solve() calls and each call may pin a set of assumption literals
/// (the CEC uses one selector literal per miter output so learned clauses
/// transfer between outputs). A per-call conflict budget turns
/// would-be-timeouts into an explicit Result::kUnknown instead of unbounded
/// runtime.

#include <cstdint>
#include <span>
#include <vector>

namespace vpga::sat {

/// 0-based propositional variable index.
using Var = std::uint32_t;

/// A literal: variable plus sign, encoded as 2*var + (negated ? 1 : 0).
class Lit {
 public:
  constexpr Lit() = default;
  constexpr Lit(Var v, bool negated) : code_(2 * v + (negated ? 1u : 0u)) {}

  [[nodiscard]] constexpr Var var() const { return code_ >> 1; }
  [[nodiscard]] constexpr bool negated() const { return (code_ & 1u) != 0; }
  [[nodiscard]] constexpr std::uint32_t code() const { return code_; }
  [[nodiscard]] constexpr bool valid() const { return code_ != kInvalidCode; }

  [[nodiscard]] constexpr Lit operator~() const { return from_code(code_ ^ 1u); }
  friend constexpr bool operator==(Lit a, Lit b) { return a.code_ == b.code_; }
  friend constexpr bool operator!=(Lit a, Lit b) { return a.code_ != b.code_; }
  friend constexpr bool operator<(Lit a, Lit b) { return a.code_ < b.code_; }

  static constexpr Lit from_code(std::uint32_t c) {
    Lit l;
    l.code_ = c;
    return l;
  }

 private:
  static constexpr std::uint32_t kInvalidCode = 0xFFFFFFFFu;
  std::uint32_t code_ = kInvalidCode;
};

enum class Result : std::uint8_t {
  kSat,      ///< satisfying assignment found (model available)
  kUnsat,    ///< no assignment satisfies clauses + assumptions
  kUnknown,  ///< conflict budget exhausted before a verdict
};

/// Cumulative search statistics (monotone across solve() calls). Exported as
/// the `sat.*` flow counters; deterministic like everything else here.
struct SolverStats {
  long long conflicts = 0;
  long long decisions = 0;
  long long propagations = 0;
  long long restarts = 0;
  long long learned_clauses = 0;
};

/// One CDCL solver instance over an append-only clause database.
class Solver {
 public:
  Solver();

  /// Creates a fresh unassigned variable and returns its index.
  Var new_var();
  [[nodiscard]] std::size_t num_vars() const { return activity_.size(); }

  /// Adds a clause (callable only at decision level 0, i.e. outside solve()).
  /// Returns false when the clause set became trivially unsatisfiable.
  bool add_clause(std::span<const Lit> lits);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// Solves the current clause set under the given assumptions. A
  /// non-negative `conflict_budget` bounds the conflicts spent in *this*
  /// call; exceeding it returns kUnknown (the solver state stays valid and
  /// later calls may retry with a larger budget).
  Result solve(std::span<const Lit> assumptions = {}, long long conflict_budget = -1);

  /// Model access, valid after a solve() that returned kSat.
  [[nodiscard]] bool model_value(Var v) const { return model_[v] == 1; }

  [[nodiscard]] const SolverStats& stats() const { return stats_; }
  /// False once the clause set is unsatisfiable independent of assumptions.
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  static constexpr std::uint32_t kNoClause = 0xFFFFFFFFu;

  struct Watch {
    std::uint32_t cref = 0;  ///< arena index of the clause header
    Lit blocker;             ///< cached literal; true => clause satisfied
  };

  [[nodiscard]] int value(Lit l) const {  // 1 true, 0 false, -1 unassigned
    const std::int8_t a = assigns_[l.var()];
    return a < 0 ? -1 : (a ^ static_cast<std::int8_t>(l.negated() ? 1 : 0));
  }
  [[nodiscard]] std::size_t decision_level() const { return trail_lim_.size(); }

  std::uint32_t alloc_clause(std::span<const Lit> lits, bool learnt);
  void watch_clause(std::uint32_t cref);
  void enqueue(Lit l, std::uint32_t reason);
  std::uint32_t propagate();
  void analyze(std::uint32_t confl, std::vector<Lit>& out_learnt, std::size_t& out_btlevel);
  void cancel_until(std::size_t level);
  void bump_var(Var v);
  void decay_activities();
  [[nodiscard]] Lit pick_branch();

  // Variable-order max-heap keyed by (activity desc, index asc).
  [[nodiscard]] bool order_less(Var a, Var b) const {
    return activity_[a] > activity_[b] || (activity_[a] == activity_[b] && a < b);
  }
  void heap_insert(Var v);
  void heap_up(std::size_t i);
  void heap_down(std::size_t i);
  Var heap_pop();

  bool ok_ = true;
  /// Clause arena: [size, lit codes...] records, refs are header indices.
  /// Append-only, so crefs stay stable across learning.
  std::vector<std::uint32_t> arena_;
  std::vector<std::vector<Watch>> watches_;  ///< indexed by literal code of the *falsified* literal
  std::vector<std::int8_t> assigns_;         ///< per var: -1 unassigned, 0 false, 1 true
  std::vector<std::int8_t> polarity_;        ///< per var: saved phase (last assigned value)
  std::vector<std::uint32_t> reason_;        ///< per var: implying clause or kNoClause
  std::vector<std::uint32_t> level_;         ///< per var: decision level of assignment
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trail_lim_;     ///< trail size at each decision level
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<std::uint32_t> heap_;          ///< variable-order heap
  std::vector<std::int32_t> heap_pos_;       ///< per var: heap index or -1

  std::vector<std::int8_t> model_;           ///< assignment snapshot of the last kSat
  std::vector<std::int8_t> seen_;            ///< analyze() scratch
  std::vector<Lit> learnt_scratch_;
  std::vector<Lit> add_scratch_;
  SolverStats stats_;
};

/// Deterministic Luby restart sequence value (1, 1, 2, 1, 1, 2, 4, ...).
[[nodiscard]] long long luby(long long i);

}  // namespace vpga::sat
