#include "place/placement.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/assert.hpp"
#include "compact/compact.hpp"
#include "obs/obs.hpp"

namespace vpga::place {
namespace {

using netlist::Netlist;
using netlist::NodeId;
using netlist::NodeType;

bool is_placeable(const Netlist& nl, NodeId id) {
  const auto t = nl.node(id).type;
  return t == NodeType::kComb || t == NodeType::kDff;
}

/// Adjacency: for each node, its connected partners (fanins + fanouts),
/// restricted to placeable/boundary nodes.
std::vector<std::vector<std::uint32_t>> adjacency(const Netlist& nl) {
  std::vector<std::vector<std::uint32_t>> adj(nl.num_nodes());
  for (NodeId id : nl.all_nodes()) {
    for (NodeId fi : nl.fanins(id)) {
      if (!fi.valid()) continue;
      adj[id.index()].push_back(fi.value());
      adj[fi.index()].push_back(id.value());
    }
  }
  return adj;
}

}  // namespace

double asic_die_area(const Netlist& nl, double utilization, const library::CellLibrary& lib) {
  return compact::gate_area(nl, lib) / utilization;
}

Placement place(const Netlist& nl, const PlacerOptions& opts, const library::CellLibrary& lib) {
  Placement p;
  p.pos.resize(nl.num_nodes());
  const double die_area = asic_die_area(nl, opts.utilization, lib);
  const double side = std::max(1.0, std::sqrt(die_area));
  p.width_um = side;
  p.height_um = side;

  // Collect placeable nodes in creation order (generators construct buses in
  // spatial order, so this seeds good locality).
  std::vector<NodeId> cells;
  cells.reserve(nl.num_nodes());
  for (NodeId id : nl.all_nodes())
    if (is_placeable(nl, id)) cells.push_back(id);

  // Initial placement: boustrophedon row fill.
  const std::size_t ncells = std::max<std::size_t>(1, cells.size());
  const int cols = std::max(1, static_cast<int>(std::ceil(std::sqrt(static_cast<double>(ncells)))));
  const double pitch_x = side / cols;
  const int rows = static_cast<int>(std::ceil(static_cast<double>(ncells) / cols));
  const double pitch_y = side / std::max(1, rows);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int r = static_cast<int>(i) / cols;
    int c = static_cast<int>(i) % cols;
    if (r % 2) c = cols - 1 - c;  // serpentine
    p.pos[cells[i].index()] = {(c + 0.5) * pitch_x, (r + 0.5) * pitch_y};
  }

  // Pin I/O on the periphery (inputs left edge, outputs right edge).
  const auto place_boundary = [&](const std::vector<NodeId>& ids, double x) {
    for (std::size_t i = 0; i < ids.size(); ++i)
      p.pos[ids[i].index()] = {x, side * (i + 0.5) / std::max<std::size_t>(1, ids.size())};
  };
  place_boundary(nl.inputs(), 0.0);
  place_boundary(nl.outputs(), side);

  const auto adj = adjacency(nl);

  // Force-directed median sweeps: each cell moves to the mean of its
  // neighbors, then a per-row spreading pass removes pile-ups.
  std::optional<obs::Span> sweep_span(std::in_place, "place.median_sweeps");
  std::vector<NodeId> order;  // per-sweep sort scratch, hoisted
  for (int sweep = 0; sweep < opts.median_sweeps; ++sweep) {
    obs::count("place.median_sweeps");
    for (NodeId id : cells) {
      const auto& nbrs = adj[id.index()];
      if (nbrs.empty()) continue;
      double sx = 0.0, sy = 0.0;
      for (auto v : nbrs) {
        sx += p.pos[v].x;
        sy += p.pos[v].y;
      }
      p.pos[id.index()] = {sx / static_cast<double>(nbrs.size()),
                           sy / static_cast<double>(nbrs.size())};
    }
    // Spreading: sort by y into rows, then by x within a row, and re-grid.
    order.assign(cells.begin(), cells.end());
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return p.pos[a.index()].y < p.pos[b.index()].y;
    });
    for (int r = 0; r < rows; ++r) {
      const auto lo = static_cast<std::size_t>(r) * static_cast<std::size_t>(cols);
      const auto hi = std::min(order.size(), lo + static_cast<std::size_t>(cols));
      if (lo >= hi) break;
      std::sort(order.begin() + static_cast<long>(lo), order.begin() + static_cast<long>(hi),
                [&](NodeId a, NodeId b) { return p.pos[a.index()].x < p.pos[b.index()].x; });
      for (std::size_t i = lo; i < hi; ++i)
        p.pos[order[i].index()] = {(static_cast<double>(i - lo) + 0.5) * pitch_x,
                                   (r + 0.5) * pitch_y};
    }
  }

  sweep_span.reset();
  const obs::Span anneal_span("place.anneal");

  // Simulated-annealing refinement on a slot grid with a shrinking move
  // window (VPR-style). Cells sit on grid slots; a move swaps a random cell
  // with the occupant of a slot within the window (or moves it to an empty
  // slot). Incremental cost uses the star model (sum of edge lengths), so a
  // move is O(degree of the two cells).
  // Rebuild the slot assignment from the final spreading pass.
  const int total_slots = rows * cols;
  std::vector<std::int32_t> node_of_slot(static_cast<std::size_t>(total_slots), -1);
  std::vector<int> slot_of_node(nl.num_nodes(), -1);
  {
    std::vector<NodeId> order = cells;
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      const auto& pa = p.pos[a.index()];
      const auto& pb = p.pos[b.index()];
      return pa.y != pb.y ? pa.y < pb.y : pa.x < pb.x;
    });
    for (std::size_t i = 0; i < order.size(); ++i) {
      node_of_slot[i] = static_cast<std::int32_t>(order[i].value());
      slot_of_node[order[i].index()] = static_cast<int>(i);
      const int r = static_cast<int>(i) / cols, c = static_cast<int>(i) % cols;
      p.pos[order[i].index()] = {(c + 0.5) * pitch_x, (r + 0.5) * pitch_y};
    }
  }
  auto slot_center = [&](int slot) {
    return Point{(slot % cols + 0.5) * pitch_x, (slot / cols + 0.5) * pitch_y};
  };
  auto node_weight = [&](std::uint32_t v) {
    if (opts.criticality.empty()) return 1.0;
    return 1.0 + 3.0 * opts.criticality[v];
  };
  auto star_cost = [&](std::uint32_t v) {
    double c = 0.0;
    const auto& pp = p.pos[v];
    for (auto u : adj[v])
      c += (std::abs(pp.x - p.pos[u].x) + std::abs(pp.y - p.pos[u].y)) *
           std::max(node_weight(v), node_weight(u));
    return c;
  };
  common::Rng rng(opts.seed);
  const std::size_t moves = cells.size() * static_cast<std::size_t>(opts.sa_moves_per_node);
  double temperature = pitch_x * 1.5;
  const double cooling = moves > 0 ? std::pow(0.02, 1.0 / static_cast<double>(moves)) : 1.0;
  double window = std::max(rows, cols) / 2.0;
  const double window_cooling =
      moves > 0 ? std::pow(1.5 / std::max(1.5, window), 1.0 / static_cast<double>(moves)) : 1.0;
  long long sa_attempted = 0, sa_accepted = 0;  // counted once after the loop
  for (std::size_t mv = 0; mv < moves; ++mv, temperature *= cooling, window *= window_cooling) {
    ++sa_attempted;
    const std::uint32_t a = cells[rng.next_below(cells.size())].value();
    const int sa_slot = slot_of_node[a];
    const int w = std::max(1, static_cast<int>(window));
    const int r0 = sa_slot / cols, c0 = sa_slot % cols;
    const int r1 = std::clamp(r0 + static_cast<int>(rng.next_in(-w, w)), 0, rows - 1);
    const int c1 = std::clamp(c0 + static_cast<int>(rng.next_in(-w, w)), 0, cols - 1);
    const int target = r1 * cols + c1;
    if (target == sa_slot || target >= total_slots) continue;
    const std::int32_t b = node_of_slot[static_cast<std::size_t>(target)];
    const double before = star_cost(a) + (b >= 0 ? star_cost(static_cast<std::uint32_t>(b)) : 0.0);
    const Point pa = p.pos[a];
    p.pos[a] = slot_center(target);
    if (b >= 0) p.pos[static_cast<std::uint32_t>(b)] = pa;
    const double after = star_cost(a) + (b >= 0 ? star_cost(static_cast<std::uint32_t>(b)) : 0.0);
    const double delta = after - before;
    if (delta <= 0.0 || rng.next_double() < std::exp(-delta / std::max(1e-9, temperature))) {
      // accept: commit slot bookkeeping
      ++sa_accepted;
      node_of_slot[static_cast<std::size_t>(sa_slot)] = b;
      node_of_slot[static_cast<std::size_t>(target)] = static_cast<std::int32_t>(a);
      slot_of_node[a] = target;
      if (b >= 0) slot_of_node[static_cast<std::size_t>(b)] = sa_slot;
    } else {
      p.pos[a] = pa;
      if (b >= 0) p.pos[static_cast<std::uint32_t>(b)] = slot_center(target);
    }
  }
  obs::count("place.sa_moves", sa_attempted);
  obs::count("place.sa_accepted", sa_accepted);
  return p;
}

double total_hpwl(const Netlist& nl, const Placement& p) {
  double total = 0.0;
  // Nets: one per driver with at least one sink.
  std::vector<double> minx(nl.num_nodes(), 1e30), maxx(nl.num_nodes(), -1e30);
  std::vector<double> miny(nl.num_nodes(), 1e30), maxy(nl.num_nodes(), -1e30);
  std::vector<char> has_sink(nl.num_nodes(), 0);
  auto absorb = [&](std::size_t net, const Point& pt) {
    minx[net] = std::min(minx[net], pt.x);
    maxx[net] = std::max(maxx[net], pt.x);
    miny[net] = std::min(miny[net], pt.y);
    maxy[net] = std::max(maxy[net], pt.y);
  };
  for (netlist::NodeId id : nl.all_nodes()) {
    for (netlist::NodeId fi : nl.fanins(id)) {
      if (!fi.valid()) continue;
      has_sink[fi.index()] = 1;
      absorb(fi.index(), p.pos[id.index()]);
    }
  }
  for (netlist::NodeId id : nl.all_nodes()) {
    if (!has_sink[id.index()]) continue;
    absorb(id.index(), p.pos[id.index()]);
    total += (maxx[id.index()] - minx[id.index()]) + (maxy[id.index()] - miny[id.index()]);
  }
  return total;
}

}  // namespace vpga::place
