#pragma once
/// \file placement.hpp
/// ASIC-style detailed placement of the (compacted) netlist — the substitute
/// for the Dolphin physical-synthesis placement in the paper's flow.
///
/// The placer is deterministic: a locality-preserving initial placement,
/// several force-directed median sweeps, then a bounded simulated-annealing
/// swap refinement driven by (optionally criticality-weighted) HPWL. I/O
/// nodes are pinned to the die periphery.

#include <vector>

#include "common/rng.hpp"
#include "library/cells.hpp"
#include "netlist/netlist.hpp"

namespace vpga::place {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// A placement: one position per netlist node (indexed by NodeId), plus the
/// die footprint it was produced for.
struct Placement {
  std::vector<Point> pos;
  double width_um = 0.0;
  double height_um = 0.0;
};

struct PlacerOptions {
  std::uint64_t seed = 1;
  /// ASIC row utilization; die area = total cell area / utilization.
  double utilization = 0.85;
  int median_sweeps = 7;
  /// SA budget in moves per node.
  int sa_moves_per_node = 12;
  /// Optional per-node criticality in [0,1]; weights the HPWL of nets
  /// touching critical nodes (empty = uniform).
  std::vector<double> criticality;
};

/// Places all logic nodes inside the die; PIs/POs on the periphery.
Placement place(const netlist::Netlist& nl, const PlacerOptions& opts = {},
                const library::CellLibrary& lib = library::CellLibrary::standard());

/// Total half-perimeter wirelength over all nets (driver + sinks bounding box).
double total_hpwl(const netlist::Netlist& nl, const Placement& p);

/// Die area of an unpacked (flow a) implementation: cell area / utilization.
double asic_die_area(const netlist::Netlist& nl, double utilization = 0.85,
                     const library::CellLibrary& lib = library::CellLibrary::standard());

}  // namespace vpga::place
