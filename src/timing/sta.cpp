#include "timing/sta.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "core/config.hpp"
#include "obs/obs.hpp"

namespace vpga::timing {
namespace {

using netlist::Netlist;
using netlist::NodeId;
using netlist::NodeType;

struct NodeTiming {
  library::TimingArc arc;   // driving arc of the node's output
  double input_cap_ff = 0;  // per input pin
  double setup_ps = 0;      // DFF only
};

NodeTiming timing_of(const Netlist& nl, NodeId id, const library::CellLibrary& lib) {
  const auto& n = nl.node(id);
  NodeTiming t;
  if (n.type == NodeType::kDff) {
    const auto& s = lib.spec(library::CellKind::kDff);
    t.arc = s.arc;
    t.input_cap_ff = s.input_cap_ff;
    t.setup_ps = s.setup_ps;
    return t;
  }
  if (n.type != NodeType::kComb) return t;  // PI/PO/const: no arc
  if (n.has_config()) {
    const auto& s = core::config_spec(static_cast<core::ConfigKind>(n.config_tag), lib);
    t.arc = s.arc;
    t.input_cap_ff = s.input_cap_ff;
    return t;
  }
  VPGA_ASSERT_MSG(n.is_mapped(), "STA requires mapped or compacted netlists");
  const auto& s = lib.spec(*n.cell);
  t.arc = s.arc;
  t.input_cap_ff = s.input_cap_ff;
  return t;
}

}  // namespace

TimingReport analyze(const Netlist& nl, const place::Placement& placed,
                     const StaOptions& opts, const library::CellLibrary& lib) {
  const obs::Span span("sta.analyze");
  obs::count("sta.analyses");
  const double T = opts.clock_period_ps;
  const auto& proc = opts.process;

  // Per-node timing data and electrical loads.
  std::vector<NodeTiming> nt(nl.num_nodes());
  for (NodeId id : nl.all_nodes()) nt[id.index()] = timing_of(nl, id, lib);

  std::vector<double> load_ff(nl.num_nodes(), 0.0);  // pin + wire load per driver
  std::vector<double> wire_len(nl.num_nodes(), 0.0);
  for (NodeId id : nl.all_nodes()) {
    for (NodeId fi : nl.fanins(id)) {
      if (!fi.valid()) continue;
      load_ff[fi.index()] += nt[id.index()].input_cap_ff;
      if (opts.net_length_um.empty()) {
        const double dx = std::abs(placed.pos[id.index()].x - placed.pos[fi.index()].x);
        const double dy = std::abs(placed.pos[id.index()].y - placed.pos[fi.index()].y);
        wire_len[fi.index()] += dx + dy;
      }
    }
  }
  if (!opts.net_length_um.empty())
    for (NodeId id : nl.all_nodes()) wire_len[id.index()] = opts.net_length_um[id.index()];
  for (NodeId id : nl.all_nodes())
    load_ff[id.index()] += wire_len[id.index()] * proc.wire_cap_ff_per_um;

  // Elmore-style wire delay charged once per driven connection (lumped:
  // R_wire/2 * C_wire + negligible pin R); driver resistance effects are in
  // the cell slope * load term.
  auto wire_delay_ps = [&](NodeId driver) {
    const double l = wire_len[driver.index()];
    return 0.5 * proc.wire_res_ohm_per_um * l * proc.wire_cap_ff_per_um * l * 1e-3;
  };

  // Forward pass: arrival at each node's output.
  std::vector<double> arrival(nl.num_nodes(), 0.0);
  for (NodeId ff : nl.dffs())
    arrival[ff.index()] = nt[ff.index()].arc.delay(load_ff[ff.index()]);
  const auto& order = nl.topo_order();
  obs::count("sta.arrival_propagations", static_cast<long long>(order.size()));
  for (NodeId id : order) {
    const auto& n = nl.node(id);
    double in_arr = 0.0;
    for (NodeId fi : nl.fanins(id))
      if (fi.valid())
        in_arr = std::max(in_arr, arrival[fi.index()] + wire_delay_ps(fi));
    if (n.type == NodeType::kOutput) {
      arrival[id.index()] = in_arr;
    } else {
      arrival[id.index()] = in_arr + nt[id.index()].arc.delay(load_ff[id.index()]);
    }
  }

  // Endpoint slacks: POs and DFF D pins.
  TimingReport rep;
  std::vector<EndpointSlack> endpoints;
  endpoints.reserve(nl.outputs().size() + nl.dffs().size());
  for (NodeId id : nl.outputs())
    endpoints.push_back({id, T - arrival[id.index()]});
  for (NodeId ff : nl.dffs()) {
    const NodeId d = nl.fanin(ff, 0);
    VPGA_ASSERT(d.valid());
    endpoints.push_back(
        {ff, T - (arrival[d.index()] + wire_delay_ps(d)) - nt[ff.index()].setup_ps});
  }
  std::sort(endpoints.begin(), endpoints.end(),
            [](const EndpointSlack& a, const EndpointSlack& b) { return a.slack_ps < b.slack_ps; });
  rep.wns_ps = endpoints.empty() ? T : endpoints.front().slack_ps;
  rep.critical_delay_ps = T - rep.wns_ps;
  for (const auto& e : endpoints) {
    if (e.slack_ps < 0) rep.tns_ps += e.slack_ps;
  }
  const std::size_t topk = std::min<std::size_t>(10, endpoints.size());
  rep.top_endpoints.assign(endpoints.begin(), endpoints.begin() + static_cast<long>(topk));
  double sum = 0.0;
  for (const auto& e : rep.top_endpoints) sum += e.slack_ps;
  rep.avg_slack_top10_ps = topk > 0 ? sum / static_cast<double>(topk) : T;

  // Backward pass: required times -> per-node slack -> criticality.
  std::vector<double> required(nl.num_nodes(), 1e18);
  for (NodeId id : nl.outputs()) required[id.index()] = T;
  for (NodeId ff : nl.dffs()) {
    const NodeId d = nl.fanin(ff, 0);
    required[d.index()] = std::min(required[d.index()],
                                   T - nt[ff.index()].setup_ps - wire_delay_ps(d));
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    const auto& n = nl.node(id);
    const double own_delay =
        n.type == NodeType::kOutput ? 0.0 : nt[id.index()].arc.delay(load_ff[id.index()]);
    const double req_at_inputs = required[id.index()] - own_delay;
    for (NodeId fi : nl.fanins(id))
      if (fi.valid())
        required[fi.index()] =
            std::min(required[fi.index()], req_at_inputs - wire_delay_ps(fi));
  }
  rep.criticality.assign(nl.num_nodes(), 0.0);
  for (NodeId id : nl.all_nodes()) {
    if (required[id.index()] > 1e17) continue;  // not on any timed path
    const double slack = required[id.index()] - arrival[id.index()];
    rep.criticality[id.index()] = std::clamp(1.0 - slack / std::max(1.0, T), 0.0, 1.0);
  }
  return rep;
}

}  // namespace vpga::timing
