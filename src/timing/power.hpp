#pragma once
/// \file power.hpp
/// Dynamic power estimation from simulated switching activity.
///
/// The paper selects component-cell sizes "to give a good power-delay
/// tradeoff"; this module closes that loop: random-vector simulation gives
/// per-net toggle rates, placement/routing gives per-net capacitance, and
/// dynamic power is the usual 1/2 * alpha * C * Vdd^2 * f sum plus the clock
/// load of the flip-flops. Used by the power ablation bench to compare PLB
/// architectures at equal function.

#include <vector>

#include "library/characterize.hpp"
#include "netlist/netlist.hpp"
#include "place/placement.hpp"

namespace vpga::timing {

struct PowerOptions {
  double clock_period_ps = 2500.0;
  double vdd = 1.8;                ///< volts (0.18 um node)
  int cycles = 256;                ///< random simulation length
  std::uint64_t seed = 1;
  /// Routed length per driver node (empty: Manhattan estimates from placement).
  std::vector<double> net_length_um;
  library::EffortModel process;
};

struct PowerReport {
  double dynamic_mw = 0.0;   ///< combinational + register switching
  double clock_mw = 0.0;     ///< clock network into DFF clock pins
  double total_mw = 0.0;
  double avg_toggle_rate = 0.0;  ///< toggles per net per cycle (activity)
  /// Toggle probability per node output (indexed by NodeId).
  std::vector<double> toggle_rate;
};

/// Estimates dynamic power of a placed (mapped or compacted) netlist.
PowerReport estimate_power(const netlist::Netlist& nl, const place::Placement& placed,
                           const PowerOptions& opts,
                           const library::CellLibrary& lib = library::CellLibrary::standard());

}  // namespace vpga::timing
