#pragma once
/// \file sta.hpp
/// Static timing analysis with post-layout wire parasitics.
///
/// Arrival times propagate through the combinational network; wire delays
/// use an Elmore estimate built from routed net lengths (or, pre-route, from
/// placement Manhattan distances). Endpoints are primary outputs and DFF D
/// pins (with setup); the report carries the paper's Table-2 metric — the
/// average slack over the 10 most critical paths — plus per-node criticality
/// for the timing-driven placement/packing loop.

#include <vector>

#include "library/characterize.hpp"
#include "netlist/netlist.hpp"
#include "place/placement.hpp"

namespace vpga::timing {

struct StaOptions {
  double clock_period_ps = 2500.0;
  /// Routed length per driver node (from route::RoutingResult). Empty:
  /// Manhattan distance between placed cells is used per connection.
  std::vector<double> net_length_um;
  library::EffortModel process;
};

struct EndpointSlack {
  netlist::NodeId endpoint;
  double slack_ps = 0.0;
};

struct TimingReport {
  double critical_delay_ps = 0.0;  ///< worst endpoint arrival (incl. setup)
  double wns_ps = 0.0;             ///< worst negative (or least positive) slack
  double tns_ps = 0.0;             ///< total negative slack
  /// The K (<=10) worst endpoints, most critical first.
  std::vector<EndpointSlack> top_endpoints;
  /// Mean slack of the top-10 critical paths — the paper's Table 2 metric.
  double avg_slack_top10_ps = 0.0;
  /// Per-node criticality in [0, 1] for the placer/packer loops.
  std::vector<double> criticality;
};

/// Runs STA over a placed (and optionally routed) netlist. Every comb node
/// must carry a cell or configuration annotation for its timing arc.
TimingReport analyze(const netlist::Netlist& nl, const place::Placement& placed,
                     const StaOptions& opts,
                     const library::CellLibrary& lib = library::CellLibrary::standard());

}  // namespace vpga::timing
