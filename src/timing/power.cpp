#include "timing/power.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "core/config.hpp"
#include "netlist/simulate.hpp"

namespace vpga::timing {

PowerReport estimate_power(const netlist::Netlist& nl, const place::Placement& placed,
                           const PowerOptions& opts, const library::CellLibrary& lib) {
  PowerReport rep;
  rep.toggle_rate.assign(nl.num_nodes(), 0.0);
  if (opts.cycles <= 0 || nl.num_nodes() == 0) return rep;

  // --- switching activity by random simulation -------------------------------
  netlist::Simulator sim(nl);
  common::Rng rng(opts.seed);
  std::vector<char> prev(nl.num_nodes(), 0);
  std::vector<int> toggles(nl.num_nodes(), 0);
  for (int cycle = 0; cycle < opts.cycles; ++cycle) {
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) sim.set_input(i, rng.next_bool());
    sim.eval();
    for (netlist::NodeId id : nl.all_nodes()) {
      const char v = sim.value(id) ? 1 : 0;
      if (cycle > 0 && v != prev[id.index()]) ++toggles[id.index()];
      prev[id.index()] = v;
    }
    sim.step();
  }
  const double denom = std::max(1, opts.cycles - 1);
  for (netlist::NodeId id : nl.all_nodes())
    rep.toggle_rate[id.index()] = toggles[id.index()] / denom;

  // --- capacitance per net -----------------------------------------------------
  auto input_cap = [&](const netlist::Node& n) {
    if (n.type == netlist::NodeType::kDff) return lib.spec(library::CellKind::kDff).input_cap_ff;
    if (n.type != netlist::NodeType::kComb) return 0.0;
    if (n.has_config())
      return core::config_spec(static_cast<core::ConfigKind>(n.config_tag), lib).input_cap_ff;
    if (n.is_mapped()) return lib.spec(*n.cell).input_cap_ff;
    return lib.spec(library::CellKind::kNd2wi).input_cap_ff;
  };
  std::vector<double> cap_ff(nl.num_nodes(), 0.0);
  for (netlist::NodeId id : nl.all_nodes()) {
    const auto& n = nl.node(id);
    const double pin = input_cap(n);
    for (netlist::NodeId fi : nl.fanins(id)) {
      if (!fi.valid()) continue;
      cap_ff[fi.index()] += pin;
      if (opts.net_length_um.empty()) {
        const double dx = std::abs(placed.pos[id.index()].x - placed.pos[fi.index()].x);
        const double dy = std::abs(placed.pos[id.index()].y - placed.pos[fi.index()].y);
        cap_ff[fi.index()] += (dx + dy) * opts.process.wire_cap_ff_per_um;
      }
    }
  }
  if (!opts.net_length_um.empty())
    for (netlist::NodeId id : nl.all_nodes())
      cap_ff[id.index()] += opts.net_length_um[id.index()] * opts.process.wire_cap_ff_per_um;

  // --- P = 1/2 alpha C V^2 f -----------------------------------------------------
  const double f_hz = 1e12 / opts.clock_period_ps;
  const double v2 = opts.vdd * opts.vdd;
  double dynamic_w = 0.0;
  double rate_sum = 0.0;
  int nets = 0;
  for (netlist::NodeId id : nl.all_nodes()) {
    if (cap_ff[id.index()] <= 0.0) continue;
    dynamic_w += 0.5 * rep.toggle_rate[id.index()] * cap_ff[id.index()] * 1e-15 * v2 * f_hz;
    rate_sum += rep.toggle_rate[id.index()];
    ++nets;
  }
  rep.dynamic_mw = dynamic_w * 1e3;
  rep.avg_toggle_rate = nets > 0 ? rate_sum / nets : 0.0;

  // Clock network: every cycle both edges drive each DFF clock pin (cap
  // comparable to the D pin) plus distribution wiring (one tile pitch each).
  const double clk_pin_ff = lib.spec(library::CellKind::kDff).input_cap_ff;
  const double clk_cap = static_cast<double>(nl.dffs().size()) *
                         (clk_pin_ff + 8.0 * opts.process.wire_cap_ff_per_um);
  rep.clock_mw = clk_cap * 1e-15 * v2 * f_hz * 1e3;  // alpha = 1 (toggles every cycle)
  rep.total_mw = rep.dynamic_mw + rep.clock_mw;
  return rep;
}

}  // namespace vpga::timing
