#include "compact/fa_fusion.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace vpga::compact {

const logic::FnSet3& majority_family() {
  static const logic::FnSet3 fam = [] {
    logic::FnSet3 out;
    // Closure of maj3 under input negations and output complement.
    for (unsigned negs = 0; negs < 8; ++negs) {
      logic::TruthTable t = logic::tt3::maj3();
      for (int v = 0; v < 3; ++v)
        if (negs & (1u << v)) t = t.negate_var(v);
      out.set(static_cast<std::size_t>(t.bits()));
      out.set(static_cast<std::size_t>((~t).bits()));
    }
    return out;
  }();
  return fam;
}

int fuse_full_adders(netlist::Netlist& nl, const core::PlbArchitecture& arch) {
  if (!arch.supports(core::ConfigKind::kFullAdder)) return 0;

  const auto is_sum = [](const netlist::Node& n) {
    if (n.type != netlist::NodeType::kComb || n.func.num_vars() != 3) return false;
    const auto tt = static_cast<std::uint8_t>(n.func.bits());
    return tt == 0x96 || tt == 0x69;  // xor3 / xnor3
  };
  const auto is_carry = [](const netlist::Node& n) {
    if (n.type != netlist::NodeType::kComb || n.func.num_vars() != 3) return false;
    return majority_family().test(static_cast<std::size_t>(n.func.bits()));
  };

  // Group 3-input config nodes by their (sorted) fanin triple: flat
  // (key, id) rows stably sorted by key keep equal-key runs in creation
  // order, replacing the former std::map-of-vectors without a node-based
  // lookup per candidate.
  using Key = std::array<std::uint32_t, 3>;
  using Row = std::pair<Key, netlist::NodeId>;
  std::size_t candidates = 0;
  for (netlist::NodeId id : nl.all_nodes()) {
    const auto& n = nl.node(id);
    if (n.has_config() && !n.in_macro() && n.num_fanins() == 3) ++candidates;
  }
  std::vector<Row> sums, carries;
  sums.reserve(candidates);
  carries.reserve(candidates);
  for (netlist::NodeId id : nl.all_nodes()) {
    const auto& n = nl.node(id);
    if (!n.has_config() || n.in_macro() || n.num_fanins() != 3) continue;
    const auto fins = nl.fanins(id);
    Key k{fins[0].value(), fins[1].value(), fins[2].value()};
    std::sort(k.begin(), k.end());
    if (is_sum(n)) sums.emplace_back(k, id);
    else if (is_carry(n)) carries.emplace_back(k, id);
  }
  const auto by_key = [](const Row& a, const Row& b) { return a.first < b.first; };
  std::stable_sort(sums.begin(), sums.end(), by_key);
  std::stable_sort(carries.begin(), carries.end(), by_key);

  int fused = 0;
  const auto fa_tag = static_cast<std::uint8_t>(core::ConfigKind::kFullAdder);
  std::size_t ci = 0;
  for (std::size_t si = 0; si < sums.size();) {
    const Key& key = sums[si].first;
    std::size_t se = si;
    while (se < sums.size() && sums[se].first == key) ++se;
    while (ci < carries.size() && carries[ci].first < key) ++ci;
    std::size_t ce = ci;
    while (ce < carries.size() && carries[ce].first == key) ++ce;
    // Pair from the back of each equal-key run (the former pop_back order).
    std::size_t sj = se;
    std::size_t cj = ce;
    while (sj > si && cj > ci) {
      const netlist::NodeId s = sums[--sj].second;
      const netlist::NodeId c = carries[--cj].second;
      nl.node(s).config_tag = fa_tag;
      nl.node(s).macro_rep = s;
      nl.node(c).config_tag = fa_tag;
      nl.node(c).macro_rep = s;
      ++fused;
    }
    si = se;
    ci = ce;
  }
  // The compaction cover may speculatively tag FA-half supernodes; any that
  // found no partner revert to the XOAMX configuration (which covers both
  // XOR3/XNOR3 and the majority family).
  for (netlist::NodeId id : nl.all_nodes()) {
    auto& n = nl.node(id);
    if (n.type != netlist::NodeType::kComb || n.in_macro()) continue;
    if (n.config_tag != fa_tag) continue;
    VPGA_ASSERT_MSG(core::config_spec(core::ConfigKind::kXoamx)
                        .coverage.test(static_cast<std::size_t>(
                            n.func.num_vars() == 3 ? n.func.bits() : 0)),
                    "unpaired FA-half not realizable as XOAMX");
    n.config_tag = static_cast<std::uint8_t>(core::ConfigKind::kXoamx);
  }
  return fused;
}

}  // namespace vpga::compact
