#include "compact/fa_fusion.hpp"

#include <algorithm>
#include <map>

#include "common/assert.hpp"

namespace vpga::compact {

const logic::FnSet3& majority_family() {
  static const logic::FnSet3 fam = [] {
    logic::FnSet3 out;
    // Closure of maj3 under input negations and output complement.
    for (unsigned negs = 0; negs < 8; ++negs) {
      logic::TruthTable t = logic::tt3::maj3();
      for (int v = 0; v < 3; ++v)
        if (negs & (1u << v)) t = t.negate_var(v);
      out.set(static_cast<std::size_t>(t.bits()));
      out.set(static_cast<std::size_t>((~t).bits()));
    }
    return out;
  }();
  return fam;
}

int fuse_full_adders(netlist::Netlist& nl, const core::PlbArchitecture& arch) {
  if (!arch.supports(core::ConfigKind::kFullAdder)) return 0;

  const auto is_sum = [](const netlist::Node& n) {
    if (n.type != netlist::NodeType::kComb || n.func.num_vars() != 3) return false;
    const auto tt = static_cast<std::uint8_t>(n.func.bits());
    return tt == 0x96 || tt == 0x69;  // xor3 / xnor3
  };
  const auto is_carry = [](const netlist::Node& n) {
    if (n.type != netlist::NodeType::kComb || n.func.num_vars() != 3) return false;
    return majority_family().test(static_cast<std::size_t>(n.func.bits()));
  };

  // Group 3-input config nodes by their (sorted) fanin triple.
  using Key = std::array<std::uint32_t, 3>;
  std::map<Key, std::vector<netlist::NodeId>> sums, carries;
  for (netlist::NodeId id : nl.all_nodes()) {
    const auto& n = nl.node(id);
    if (!n.has_config() || n.in_macro() || n.num_fanins() != 3) continue;
    const auto fins = nl.fanins(id);
    Key k{fins[0].value(), fins[1].value(), fins[2].value()};
    std::sort(k.begin(), k.end());
    if (is_sum(n)) sums[k].push_back(id);
    else if (is_carry(n)) carries[k].push_back(id);
  }

  int fused = 0;
  const auto fa_tag = static_cast<std::uint8_t>(core::ConfigKind::kFullAdder);
  for (auto& [key, sum_ids] : sums) {
    auto it = carries.find(key);
    if (it == carries.end()) continue;
    auto& carry_ids = it->second;
    while (!sum_ids.empty() && !carry_ids.empty()) {
      const netlist::NodeId s = sum_ids.back();
      const netlist::NodeId c = carry_ids.back();
      sum_ids.pop_back();
      carry_ids.pop_back();
      nl.node(s).config_tag = fa_tag;
      nl.node(s).macro_rep = s;
      nl.node(c).config_tag = fa_tag;
      nl.node(c).macro_rep = s;
      ++fused;
    }
  }
  // The compaction cover may speculatively tag FA-half supernodes; any that
  // found no partner revert to the XOAMX configuration (which covers both
  // XOR3/XNOR3 and the majority family).
  for (netlist::NodeId id : nl.all_nodes()) {
    auto& n = nl.node(id);
    if (n.type != netlist::NodeType::kComb || n.in_macro()) continue;
    if (n.config_tag != fa_tag) continue;
    VPGA_ASSERT_MSG(core::config_spec(core::ConfigKind::kXoamx)
                        .coverage.test(static_cast<std::size_t>(
                            n.func.num_vars() == 3 ? n.func.bits() : 0)),
                    "unpaired FA-half not realizable as XOAMX");
    n.config_tag = static_cast<std::uint8_t>(core::ConfigKind::kXoamx);
  }
  return fused;
}

}  // namespace vpga::compact
