#pragma once
/// \file flowmap.hpp
/// FlowMap-style max-flow/min-cut labeling for 3-feasible supernodes.
///
/// The paper's compaction step "finds clusters of logic or supernodes
/// corresponding to functions with 3 or less inputs ... using a
/// maxflow-mincut algorithm similar to Flowmap [5]". This module implements
/// that algorithm (Cong & Ding's label computation, specialized to k = 3):
/// label(t) is the minimum depth of t in any 3-feasible cover, computed by a
/// unit-node-capacity max-flow feasibility test on the collapsed cone.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"

namespace vpga::compact {

/// Per-node minimum 3-feasible mapping depth (inputs/constants at 0).
/// Exactly FlowMap's LabelPhase; optimal depth of the AIG under 3-input
/// covering = max label over the output nodes.
std::vector<int> flowmap_labels(const aig::Aig& g, int k = 3);

/// The minimum-height k-feasible cut of `target` found by the labeling
/// max-flow (leaf node indices, <= k of them). For a node whose label is
/// p+1 (no flow-feasible cut at height p), this is the trivial fanin cut.
std::vector<std::uint32_t> flowmap_cut(const aig::Aig& g, std::uint32_t target,
                                       const std::vector<int>& labels, int k = 3);

/// Depth of the AIG under optimal 3-feasible covering (max output label).
int flowmap_depth(const aig::Aig& g, int k = 3);

}  // namespace vpga::compact
