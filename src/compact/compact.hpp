#pragma once
/// \file compact.hpp
/// Regularity-driven logic compaction (paper Section 3.1).
///
/// Takes the Design-Compiler-style delay-mapped netlist and re-covers the
/// logic with PLB *configurations* (3-input supernodes: MX, ND3, NDMX, XOAMX,
/// XOANDMX on the granular PLB; LUT3/ND3 on the LUT-based PLB). "This allows
/// more logic to be collapsed into PLBs"; the paper measures ~15% average
/// reduction in total gate area from this step, which is the number this
/// module's report reproduces.

#include <array>

#include "core/plb.hpp"
#include "synth/mapper.hpp"

namespace vpga::compact {

struct CompactionReport {
  double area_before_um2 = 0.0;  ///< mapped gate area entering compaction
  double area_after_um2 = 0.0;   ///< gate area after configuration covering
  int nodes_before = 0;
  int nodes_after = 0;
  int depth_after = 0;
  /// How many supernodes of each configuration the compacted netlist uses
  /// (indexed by core::ConfigKind).
  std::array<int, core::kNumConfigKinds> config_histogram{};

  [[nodiscard]] double area_reduction() const {
    return area_before_um2 <= 0.0 ? 0.0 : 1.0 - area_after_um2 / area_before_um2;
  }
};

struct CompactionResult {
  netlist::Netlist netlist;  ///< every comb node carries a config_tag (or is an INV/BUF cell)
  CompactionReport report;
};

/// Runs compaction on a mapped netlist for the given architecture. The result
/// is functionally equivalent to the input (and hence to the original RTL).
CompactionResult compact(const netlist::Netlist& mapped, const core::PlbArchitecture& arch,
                         const library::CellLibrary& lib = library::CellLibrary::standard());

/// Variant that builds the configuration cover from `reference` (typically
/// the pre-mapping netlist, whose structure is cleaner to re-cover) while
/// still accounting the area delta against `mapped`. Falls back to the
/// re-labelled mapped netlist when no area reduction is found.
CompactionResult compact_from(const netlist::Netlist& reference, const netlist::Netlist& mapped,
                              const core::PlbArchitecture& arch,
                              const library::CellLibrary& lib = library::CellLibrary::standard());

/// Total mapped gate area of a netlist (cells and configuration supernodes).
double gate_area(const netlist::Netlist& nl,
                 const library::CellLibrary& lib = library::CellLibrary::standard());

}  // namespace vpga::compact
