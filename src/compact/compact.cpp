#include "compact/compact.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "compact/fa_fusion.hpp"
#include "core/config.hpp"
#include "obs/obs.hpp"

namespace vpga::compact {

double gate_area(const netlist::Netlist& nl, const library::CellLibrary& lib) {
  double area = 0.0;
  for (netlist::NodeId id : nl.all_nodes()) {
    const auto& n = nl.node(id);
    // Macro members other than the representative are accounted with it.
    if (n.in_macro() && n.macro_rep != id) continue;
    switch (n.type) {
      case netlist::NodeType::kComb:
        if (n.has_config()) {
          area += core::config_spec(static_cast<core::ConfigKind>(n.config_tag), lib)
                      .mapped_area_um2;
        } else if (n.is_mapped()) {
          area += lib.spec(*n.cell).area_um2;
        } else {
          // Generic node: approximate with the NAND2 weight model.
          area += lib.spec(library::CellKind::kNd2wi).area_um2;
        }
        break;
      case netlist::NodeType::kDff:
        area += lib.spec(library::CellKind::kDff).area_um2;
        break;
      default:
        break;
    }
  }
  return area;
}

namespace {

/// Resource pools of one tile, for architecture-aware pricing: the compaction
/// objective is not raw gate area but *PLB array tiles*, so each
/// configuration is priced by the share of a tile its component needs occupy.
struct Pool {
  core::ComponentClass mask;
  int per_tile;
  double base_price;  // tile combinational area apportioned to one slot
};

std::vector<Pool> pricing_pools(const core::PlbArchitecture& arch,
                                const library::CellLibrary& lib) {
  std::vector<Pool> pools;
  const int mux_like = arch.count(core::PlbComponent::kMux) + arch.count(core::PlbComponent::kXoa);
  if (mux_like > 0)
    pools.push_back({static_cast<core::ComponentClass>(
                         core::component_bit(core::PlbComponent::kMux) |
                         core::component_bit(core::PlbComponent::kXoa)),
                     mux_like, 0.0});
  if (arch.count(core::PlbComponent::kNd3) > 0)
    pools.push_back({core::component_bit(core::PlbComponent::kNd3),
                     arch.count(core::PlbComponent::kNd3), 0.0});
  if (arch.count(core::PlbComponent::kLut3) > 0)
    pools.push_back({core::component_bit(core::PlbComponent::kLut3),
                     arch.count(core::PlbComponent::kLut3), 0.0});
  // Apportion the tile's combinational area across slots in proportion to the
  // component cell areas (so a LUT slot costs more than an ND slot).
  double weight_total = 0.0;
  std::vector<double> weight(pools.size(), 0.0);
  auto cell_area = [&](const Pool& p) {
    if (p.mask & core::component_bit(core::PlbComponent::kLut3))
      return lib.spec(library::CellKind::kLut3).area_um2;
    if (p.mask & core::component_bit(core::PlbComponent::kNd3))
      return lib.spec(library::CellKind::kNd3wi).area_um2;
    return lib.spec(library::CellKind::kMux2).area_um2;
  };
  for (std::size_t i = 0; i < pools.size(); ++i) {
    weight[i] = cell_area(pools[i]);
    weight_total += weight[i] * pools[i].per_tile;
  }
  for (std::size_t i = 0; i < pools.size(); ++i)
    pools[i].base_price = arch.comb_area_um2 * weight[i] / weight_total;
  return pools;
}

/// Price of one configuration under the given per-pool multipliers.
double priced(const core::ConfigSpec& spec, const std::vector<Pool>& pools,
              const std::vector<double>& multiplier) {
  double total = 0.0;
  for (auto need : spec.needs) {
    double best = 1e18;
    for (std::size_t i = 0; i < pools.size(); ++i)
      if (need & pools[i].mask)
        best = std::min(best, pools[i].base_price * multiplier[i]);
    total += best >= 1e17 ? 0.0 : best;
  }
  return total;
}

/// Reusable scratch for one compact_from() call. The pricing loop and the
/// two rebalance passes each need the same per-pool vectors; keeping them
/// here lets heap capacity survive across rounds instead of being reallocated
/// (the compact stage runs once per flow but its inner loop re-covers the
/// whole netlist three times).
struct CompactScratch {
  std::vector<double> pool_demand;
  std::vector<std::pair<core::ComponentClass, double>> flexible;
  std::vector<std::vector<netlist::NodeId>> members;
  std::vector<double> load;
};

/// Rebalances single-slot configurations across resource pools: a function
/// covered as (say) an MX whose truth table is also ND3WI-implementable can
/// be re-labelled to the ND3 configuration when the mux pool is the binding
/// constraint — pure re-tagging, the netlist structure is untouched. This is
/// the relabeling freedom the paper describes ("a 2-input Nand function on a
/// non-critical path can be mapped into a MUX ... allowing an extra function
/// to be packed in the PLB") applied globally.
void rebalance_pools(netlist::Netlist& nl, const core::PlbArchitecture& arch,
                     CompactScratch& scratch) {
  struct PoolCfg {
    core::ConfigKind config;
    int per_tile;
  };
  std::vector<PoolCfg> pools;
  if (arch.count(core::PlbComponent::kMux) + arch.count(core::PlbComponent::kXoa) > 0)
    pools.push_back({core::ConfigKind::kMx,
                     arch.count(core::PlbComponent::kMux) + arch.count(core::PlbComponent::kXoa)});
  if (arch.count(core::PlbComponent::kNd3) > 0)
    pools.push_back({core::ConfigKind::kNd3, arch.count(core::PlbComponent::kNd3)});
  if (arch.count(core::PlbComponent::kLut3) > 0)
    pools.push_back({core::ConfigKind::kLut3, arch.count(core::PlbComponent::kLut3)});
  if (pools.size() < 2) return;

  auto pool_of = [&](const netlist::Node& n) -> int {
    if (n.type != netlist::NodeType::kComb || !n.has_config() || n.in_macro()) return -1;
    for (std::size_t i = 0; i < pools.size(); ++i)
      if (n.config_tag == static_cast<std::uint8_t>(pools[i].config))
        return static_cast<int>(i);
    return -1;
  };
  // Bucket the re-taggable nodes per current pool.
  if (scratch.members.size() < pools.size()) scratch.members.resize(pools.size());
  auto& members = scratch.members;
  for (auto& bucket : members) bucket.clear();
  auto& load = scratch.load;
  load.assign(pools.size(), 0.0);
  for (netlist::NodeId id : nl.all_nodes()) {
    const int p = pool_of(nl.node(id));
    if (p < 0) continue;
    members[static_cast<std::size_t>(p)].push_back(id);
    load[static_cast<std::size_t>(p)] += 1.0 / pools[static_cast<std::size_t>(p)].per_tile;
  }
  // Other configurations still occupy slots in these pools (NDMX, XOAMX,
  // XOANDMX, FA): account them as immovable background load.
  for (netlist::NodeId id : nl.all_nodes()) {
    const auto& n = nl.node(id);
    if (n.type != netlist::NodeType::kComb || !n.has_config()) continue;
    if (n.in_macro() && n.macro_rep != id) continue;
    if (pool_of(n) >= 0) continue;
    const auto& spec = core::config_spec(static_cast<core::ConfigKind>(n.config_tag));
    for (auto need : spec.needs)
      for (std::size_t i = 0; i < pools.size(); ++i)
        if (need & core::component_bit(static_cast<core::PlbComponent>(
                       pools[i].config == core::ConfigKind::kMx
                           ? core::PlbComponent::kMux
                           : pools[i].config == core::ConfigKind::kNd3
                                 ? core::PlbComponent::kNd3
                                 : core::PlbComponent::kLut3))) {
          load[i] += 1.0 / pools[i].per_tile;
          break;
        }
  }

  // Greedy moves from the binding pool to the least-loaded accepting pool.
  for (int iter = 0; iter < 1 << 20; ++iter) {
    std::size_t hi = 0, lo = 0;
    for (std::size_t i = 1; i < pools.size(); ++i) {
      if (load[i] > load[hi]) hi = i;
      if (load[i] < load[lo]) lo = i;
    }
    const double gain = 1.0 / pools[hi].per_tile;
    const double cost = 1.0 / pools[lo].per_tile;
    if (hi == lo || load[hi] - gain < load[lo] + cost) break;
    // Find a movable node: its function must be in the target's coverage.
    const auto& target_cov = core::config_spec(pools[lo].config).coverage;
    bool moved = false;
    auto& bucket = members[hi];
    while (!bucket.empty() && !moved) {
      const netlist::NodeId id = bucket.back();
      bucket.pop_back();
      auto& n = nl.node(id);
      if (pool_of(n) != static_cast<int>(hi)) continue;  // stale entry
      const auto mask = (std::uint64_t{1} << (1 << n.func.num_vars())) - 1;
      const auto tt3 = static_cast<std::uint8_t>(n.func.extend(3).bits() & 0xFF);
      (void)mask;
      if (!target_cov.test(tt3)) continue;
      n.config_tag = static_cast<std::uint8_t>(pools[lo].config);
      members[lo].push_back(id);
      load[hi] -= gain;
      load[lo] += cost;
      moved = true;
    }
    if (!moved) break;  // binding pool has no movable members left
  }
}

/// The coverage of a full-adder half: XOR3/XNOR3 sums and majority-family
/// carries. The FA-half option biases the cover toward single supernodes
/// that fa_fusion can then pair into one-tile full adders.
logic::FnSet3 fa_half_coverage() {
  logic::FnSet3 s = majority_family();
  s.set(static_cast<std::size_t>(logic::tt3::xor3().bits()));
  s.set(static_cast<std::size_t>(logic::tt3::xnor3().bits()));
  return s;
}

}  // namespace

CompactionResult compact(const netlist::Netlist& mapped, const core::PlbArchitecture& arch,
                         const library::CellLibrary& lib) {
  return compact_from(mapped, mapped, arch, lib);
}

CompactionResult compact_from(const netlist::Netlist& reference, const netlist::Netlist& mapped,
                              const core::PlbArchitecture& arch,
                              const library::CellLibrary& lib) {
  CompactionResult result;
  result.report.area_before_um2 = gate_area(mapped, lib);
  for (netlist::NodeId id : mapped.all_nodes())
    if (mapped.node(id).type == netlist::NodeType::kComb) ++result.report.nodes_before;

  // Re-cover with configurations, tile-priced. The mapper's cut matching
  // performs the supernode formation: a 3-feasible cluster whose function is
  // in a configuration's coverage collapses into one supernode. Pricing
  // iterates: when one resource pool is oversubscribed relative to the tile
  // ratio (e.g. every function mapped onto the single ND3WI slot), its price
  // rises and the next cover shifts logic to the abundant pools — this is
  // the "better utilizing the given PLB architecture" of Section 3.1.
  const auto pools = pricing_pools(arch, lib);
  std::vector<double> multiplier(pools.size(), 1.0);
  synth::MapResult r;
  double best_tiles = 1e18;
  constexpr int kPricingRounds = 3;
  // The target's structure (options, coverage sets, arcs) is round-invariant;
  // only the prices change. Build it once — including the FA-half — and
  // reprice in place each round.
  auto target = synth::config_target(arch, lib);
  std::size_t fa_half_idx = target.options.size() + 1;  // sentinel: no FA-half
  if (arch.supports(core::ConfigKind::kFullAdder)) {
    // FA-half option: half the full-adder footprint, since fusion pairs
    // two halves into one tile. Tagged kFullAdder so the demand accounting
    // below and the fusion pass can recognize them (unpaired leftovers are
    // demoted to XOAMX by fa_fusion).
    synth::MatchOption half;
    half.name = "FA-half";
    half.coverage = fa_half_coverage();
    half.arc = core::config_spec(core::ConfigKind::kXoamx, lib).arc;
    half.config_tag = static_cast<std::uint8_t>(core::ConfigKind::kFullAdder);
    fa_half_idx = target.options.size();
    target.options.push_back(std::move(half));
  }
  // Per-round scratch, hoisted so the heap capacity carries across rounds.
  CompactScratch scratch;
  auto& pool_demand = scratch.pool_demand;
  auto& flexible = scratch.flexible;
  for (int round = 0; round < kPricingRounds; ++round) {
    const obs::Span round_span("compact.pricing_round");
    obs::count("compact.cover_rounds");
    for (std::size_t oi = 0; oi < target.options.size(); ++oi) {
      auto& opt = target.options[oi];
      // The FA-half aliases kFullAdder's tag, so price by index, not tag:
      // it costs half the full adder under the current multipliers.
      const double scale = oi == fa_half_idx ? 0.5 : 1.0;
      const auto& spec = core::config_spec(static_cast<core::ConfigKind>(opt.config_tag), lib);
      opt.area_um2 = scale * priced(spec, pools, multiplier);
    }
    auto cover = synth::tech_map(reference, target, synth::Objective::kArea);
    // Tiles needed per pool (the quantity flow b actually pays for). An
    // FA-half contributes half the full adder's footprint. Needs that accept
    // several pools are water-filled onto the least loaded one, matching what
    // the packer's fungible slot assignment achieves.
    pool_demand.assign(pools.size(), 0.0);
    flexible.clear();
    flexible.reserve(cover.netlist.num_nodes());
    for (netlist::NodeId id : cover.netlist.all_nodes()) {
      const auto& n = cover.netlist.node(id);
      if (n.type != netlist::NodeType::kComb || !n.has_config()) continue;
      const auto tag = static_cast<core::ConfigKind>(n.config_tag);
      const double share = tag == core::ConfigKind::kFullAdder ? 0.5 : 1.0;
      const auto& spec = core::config_spec(tag, lib);
      for (auto need : spec.needs) {
        int accepting = 0;
        std::size_t only = pools.size();
        for (std::size_t i = 0; i < pools.size(); ++i)
          if (need & pools[i].mask) {
            ++accepting;
            only = i;
          }
        if (accepting == 1) pool_demand[only] += share / pools[only].per_tile;
        else if (accepting > 1) flexible.emplace_back(need, share);
      }
    }
    for (const auto& [need, share] : flexible) {
      std::size_t pick = pools.size();
      double best = 1e18;
      for (std::size_t i = 0; i < pools.size(); ++i) {
        if (!(need & pools[i].mask)) continue;
        const double after = pool_demand[i] + share / pools[i].per_tile;
        if (after < best) {
          best = after;
          pick = i;
        }
      }
      if (pick < pools.size()) pool_demand[pick] += share / pools[pick].per_tile;
    }
    double tiles = 0.0;
    for (double t : pool_demand) tiles = std::max(tiles, t);
    if (tiles < best_tiles) {
      best_tiles = tiles;
      r = std::move(cover);
    }
    if (round + 1 == kPricingRounds) break;
    // Reprice (damped): scale each pool by its share of the binding
    // constraint so oversubscribed slots get more expensive next round.
    for (std::size_t i = 0; i < pools.size(); ++i) {
      const double ratio = tiles > 0 ? pool_demand[i] / tiles : 1.0;
      multiplier[i] = std::clamp(multiplier[i] * std::sqrt(0.5 + ratio), 0.5, 4.0);
    }
  }

  // Like the paper's compaction, changes are committed only when they reduce
  // gate area; otherwise the mapped structure is kept and each cell is simply
  // re-labelled as the configuration it trivially occupies.
  // Fuse (sum, carry) pairs into full-adder macros (Section 2.2) before the
  // commit decision: gate_area() must see paired halves as one macro and
  // unpaired halves demoted to XOAMX, or the comparison is biased. Then
  // spread single-slot configurations across the tile's resource pools.
  fuse_full_adders(r.netlist, arch);
  rebalance_pools(r.netlist, arch, scratch);

  // Commit the configuration cover when it improves on the mapped netlist in
  // real gate area (r.stats uses tile prices, not comparable units) or in the
  // tile-count estimate; otherwise keep the mapped structure re-labelled.
  const double cover_gate_area = gate_area(r.netlist, lib);
  const double mapped_tiles_estimate = [&] {
    // Quick per-pool estimate of the mapped netlist's own tile demand.
    std::vector<double> demand(pools.size(), 0.0);
    for (netlist::NodeId id : mapped.all_nodes()) {
      const auto& n = mapped.node(id);
      if (n.type != netlist::NodeType::kComb || !n.is_mapped()) continue;
      std::size_t pick = pools.size();
      switch (*n.cell) {
        case library::CellKind::kMux2:
        case library::CellKind::kXoa:
        case library::CellKind::kNd2wi:
        case library::CellKind::kNd3wi:
        case library::CellKind::kLut3: {
          const auto bit =
              *n.cell == library::CellKind::kLut3 ? core::component_bit(core::PlbComponent::kLut3)
              : (*n.cell == library::CellKind::kNd2wi || *n.cell == library::CellKind::kNd3wi)
                  ? core::component_bit(core::PlbComponent::kNd3)
                  : core::component_bit(core::PlbComponent::kMux);
          for (std::size_t i = 0; i < pools.size(); ++i)
            if (pools[i].mask & bit) pick = i;
          break;
        }
        default:
          break;
      }
      if (pick < pools.size()) demand[pick] += 1.0 / pools[pick].per_tile;
    }
    double t = 0.0;
    for (double d : demand) t = std::max(t, d);
    return t;
  }();
  if (cover_gate_area < result.report.area_before_um2 || best_tiles < mapped_tiles_estimate) {
    result.netlist = std::move(r.netlist);
  } else {
    result.netlist = mapped;
    for (netlist::NodeId id : result.netlist.all_nodes()) {
      auto& n = result.netlist.node(id);
      if (n.type != netlist::NodeType::kComb || !n.is_mapped()) continue;
      switch (*n.cell) {
        case library::CellKind::kLut3:
          n.config_tag = static_cast<std::uint8_t>(core::ConfigKind::kLut3);
          break;
        case library::CellKind::kNd2wi:
        case library::CellKind::kNd3wi:
          n.config_tag = static_cast<std::uint8_t>(core::ConfigKind::kNd3);
          break;
        case library::CellKind::kMux2:
        case library::CellKind::kXoa:
          n.config_tag = static_cast<std::uint8_t>(core::ConfigKind::kMx);
          break;
        default:
          break;  // INV/BUF ride in the PLB input buffers
      }
    }
  }

  // Fuse (sum, carry) pairs into full-adder macros (Section 2.2) and spread
  // the identity-relabelled cover across the resource pools as well.
  fuse_full_adders(result.netlist, arch);
  rebalance_pools(result.netlist, arch, scratch);

  result.report.area_after_um2 = gate_area(result.netlist, lib);
  int nodes_after = 0;
  for (netlist::NodeId id : result.netlist.all_nodes()) {
    const auto& n = result.netlist.node(id);
    if (n.type == netlist::NodeType::kComb) ++nodes_after;
    if (n.in_macro() && n.macro_rep != id) continue;  // counted at the rep
    if (n.type == netlist::NodeType::kComb && n.has_config())
      ++result.report.config_histogram[n.config_tag];
    else if (n.type == netlist::NodeType::kDff)
      ++result.report.config_histogram[static_cast<std::size_t>(core::ConfigKind::kFf)];
  }
  result.report.nodes_after = nodes_after;
  result.report.depth_after = r.stats.depth;
  for (std::size_t k = 0; k < core::kNumConfigKinds; ++k)
    if (result.report.config_histogram[k] > 0)
      obs::count(std::string("compact.config.") +
                     core::to_string(static_cast<core::ConfigKind>(k)),
                 result.report.config_histogram[k]);
  return result;
}

}  // namespace vpga::compact
