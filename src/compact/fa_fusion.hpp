#pragma once
/// \file fa_fusion.hpp
/// Full-adder fusion (paper Section 2.2).
///
/// The granular PLB's defining capability is producing SUM and COUT of a
/// full adder from a single tile: the XOA computes P = A xor B once and both
/// the SUM mux and the COUT mux reuse it. After configuration covering, this
/// pass finds (sum, carry) node pairs over the same three fanins — the sum an
/// XOR3/XNOR3, the carry in the majority family (programmable input polarity
/// makes subtractor carries eligible too) — and fuses them into a full-adder
/// macro: both nodes get the FA configuration tag and a shared macro
/// representative, which the packer places atomically in one tile.

#include "core/plb.hpp"
#include "netlist/netlist.hpp"

namespace vpga::compact {

/// Fuses eligible (sum, carry) pairs in a compacted netlist. No-op (returns
/// 0) when the architecture has no full-adder configuration. Returns the
/// number of fused pairs.
int fuse_full_adders(netlist::Netlist& nl, const core::PlbArchitecture& arch);

/// The truth tables of a majority gate under all input/output programmable
/// inversions (the carry functions a full-adder macro can realize).
const logic::FnSet3& majority_family();

}  // namespace vpga::compact
