#include "compact/flowmap.hpp"

#include <algorithm>
#include <queue>

#include "common/assert.hpp"

namespace vpga::compact {
namespace {

using aig::Aig;

/// Reusable node→vertex scratch for CutFeasibility, indexed by AIG node id
/// with an epoch stamp so queries never clear the arrays. flowmap_labels runs
/// one feasibility query per AND node; flat indexed lookups here replace the
/// per-query hash maps that dominated the compact-stage profile.
struct CutScratch {
  std::vector<int> stamp;         ///< last epoch that touched the node
  std::vector<int> boundary_in;   ///< split in-vertex; -1 when not boundary
  std::vector<int> boundary_out;  ///< split out-vertex; -1 when not boundary
  std::vector<int> internal;      ///< internal vertex; -1 when not internal
  int epoch = 0;
};

/// Unit-capacity node-cut feasibility network for one labeling query.
///
/// Construction (see header): traverse the cone of `target` downward; nodes
/// with label == p are internal (uncuttable, infinite capacity), the first
/// node on each path with label <= p-1 is a boundary node (capacity 1, fed by
/// the source). Max-flow <= k iff a k-feasible cut at height p-1 exists; the
/// saturated boundary nodes reachable from the source form that cut.
class CutFeasibility {
 public:
  CutFeasibility(const Aig& g, std::uint32_t target, const std::vector<int>& labels,
                 int p, CutScratch& scratch)
      : g_(g), labels_(labels), p_(p), scratch_(scratch) {
    ++scratch_.epoch;
    if (scratch_.stamp.size() < g.num_nodes()) {
      scratch_.stamp.resize(g.num_nodes(), 0);
      scratch_.boundary_in.resize(g.num_nodes(), -1);
      scratch_.boundary_out.resize(g.num_nodes(), -1);
      scratch_.internal.resize(g.num_nodes(), -1);
    }
    source_ = new_vertex();
    sink_ = new_vertex();
    collect(target, sink_);
  }

  /// Runs augmentations until flow exceeds `k` or no path remains.
  /// Returns the achieved flow, capped at k+1.
  int max_flow(int k) {
    int flow = 0;
    while (flow <= k && augment()) ++flow;
    return flow;
  }

  /// Boundary nodes forming the min cut (call after max_flow() <= k).
  [[nodiscard]] std::vector<std::uint32_t> min_cut_leaves() const {
    // Residual reachability from the source.
    std::vector<char> reach(adj_.size(), 0);
    std::queue<int> q;
    q.push(source_);
    reach[static_cast<std::size_t>(source_)] = 1;
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (const int ei : adj_[static_cast<std::size_t>(v)]) {
        const Edge& e = edges_[static_cast<std::size_t>(ei)];
        if (e.cap > e.flow && !reach[static_cast<std::size_t>(e.to)]) {
          reach[static_cast<std::size_t>(e.to)] = 1;
          q.push(e.to);
        }
      }
    }
    std::vector<std::uint32_t> leaves;
    leaves.reserve(boundary_nodes_.size());
    for (const std::uint32_t node : boundary_nodes_) {
      // Cut leaf: in-vertex reachable, out-vertex not (split edge saturated).
      if (reach[static_cast<std::size_t>(scratch_.boundary_in[node])] &&
          !reach[static_cast<std::size_t>(scratch_.boundary_out[node])])
        leaves.push_back(node);
    }
    std::sort(leaves.begin(), leaves.end());
    return leaves;
  }

 private:
  struct Edge {
    int to;
    int cap;
    int flow = 0;
    int rev;  // index of the reverse edge
  };

  static constexpr int kInf = 1 << 20;

  int new_vertex() {
    adj_.emplace_back();
    return static_cast<int>(adj_.size() - 1);
  }

  void add_edge(int from, int to, int cap) {
    adj_[static_cast<std::size_t>(from)].push_back(static_cast<int>(edges_.size()));
    edges_.push_back({to, cap, 0, static_cast<int>(edges_.size() + 1)});
    adj_[static_cast<std::size_t>(to)].push_back(static_cast<int>(edges_.size()));
    edges_.push_back({from, 0, 0, static_cast<int>(edges_.size() - 1)});
  }

  /// Returns the local out-vertex of `node`, building its subnetwork once.
  int vertex_for(std::uint32_t node) {
    int& st = scratch_.stamp[node];
    if (st != scratch_.epoch) {  // first touch this query: reset the slots
      st = scratch_.epoch;
      scratch_.boundary_out[node] = -1;
      scratch_.internal[node] = -1;
    }
    if (labels_[node] <= p_ - 1 || !g_.node(node).is_and) {
      if (scratch_.boundary_out[node] >= 0) return scratch_.boundary_out[node];
      const int in = new_vertex();
      const int out = new_vertex();
      add_edge(in, out, 1);       // unit node capacity: candidate cut leaf
      add_edge(source_, in, kInf);
      scratch_.boundary_in[node] = in;
      scratch_.boundary_out[node] = out;
      boundary_nodes_.push_back(node);
      return out;
    }
    if (scratch_.internal[node] >= 0) return scratch_.internal[node];
    const int v = new_vertex();  // internal label-p node: uncuttable
    scratch_.internal[node] = v;
    collect(node, v);
    return v;
  }

  /// Wires both fanins of AND `node` into local vertex `v`.
  void collect(std::uint32_t node, int v) {
    const auto& n = g_.node(node);
    VPGA_ASSERT(n.is_and);
    add_edge(vertex_for(aig::node_of(n.fanin0)), v, kInf);
    add_edge(vertex_for(aig::node_of(n.fanin1)), v, kInf);
  }

  bool augment() {
    std::vector<int> prev_edge(adj_.size(), -1);
    std::vector<char> seen(adj_.size(), 0);
    std::queue<int> q;
    q.push(source_);
    seen[static_cast<std::size_t>(source_)] = 1;
    while (!q.empty() && !seen[static_cast<std::size_t>(sink_)]) {
      const int v = q.front();
      q.pop();
      for (const int ei : adj_[static_cast<std::size_t>(v)]) {
        const Edge& e = edges_[static_cast<std::size_t>(ei)];
        if (e.cap > e.flow && !seen[static_cast<std::size_t>(e.to)]) {
          seen[static_cast<std::size_t>(e.to)] = 1;
          prev_edge[static_cast<std::size_t>(e.to)] = ei;
          q.push(e.to);
        }
      }
    }
    if (!seen[static_cast<std::size_t>(sink_)]) return false;
    for (int v = sink_; v != source_;) {
      Edge& e = edges_[static_cast<std::size_t>(prev_edge[static_cast<std::size_t>(v)])];
      e.flow += 1;
      edges_[static_cast<std::size_t>(e.rev)].flow -= 1;
      v = edges_[static_cast<std::size_t>(e.rev)].to;
    }
    return true;
  }

  const Aig& g_;
  const std::vector<int>& labels_;
  int p_;
  CutScratch& scratch_;
  int source_ = -1, sink_ = -1;
  std::vector<std::vector<int>> adj_;
  std::vector<Edge> edges_;
  std::vector<std::uint32_t> boundary_nodes_;  ///< boundary nodes, DFS order
};

}  // namespace

std::vector<int> flowmap_labels(const Aig& g, int k) {
  std::vector<int> labels(g.num_nodes(), 0);
  CutScratch scratch;  // shared across the per-node feasibility queries
  for (std::uint32_t n = 1; n < g.num_nodes(); ++n) {
    if (!g.node(n).is_and) continue;  // inputs stay 0
    const int p = std::max(labels[aig::node_of(g.node(n).fanin0)],
                           labels[aig::node_of(g.node(n).fanin1)]);
    if (p == 0) {
      labels[n] = 1;  // an AND of inputs: depth 1, trivially 3-feasible
      continue;
    }
    CutFeasibility net(g, n, labels, p, scratch);
    labels[n] = net.max_flow(k) <= k ? p : p + 1;
  }
  return labels;
}

std::vector<std::uint32_t> flowmap_cut(const Aig& g, std::uint32_t target,
                                       const std::vector<int>& labels, int k) {
  VPGA_ASSERT(g.node(target).is_and);
  const int p = std::max(labels[aig::node_of(g.node(target).fanin0)],
                         labels[aig::node_of(g.node(target).fanin1)]);
  if (p > 0 && labels[target] == p) {
    CutScratch scratch;
    CutFeasibility net(g, target, labels, p, scratch);
    const int flow = net.max_flow(k);
    VPGA_ASSERT(flow <= k);
    return net.min_cut_leaves();
  }
  // label == p+1: the fanin cut is minimum-height.
  std::vector<std::uint32_t> cut = {aig::node_of(g.node(target).fanin0),
                                    aig::node_of(g.node(target).fanin1)};
  std::sort(cut.begin(), cut.end());
  cut.erase(std::unique(cut.begin(), cut.end()), cut.end());
  return cut;
}

int flowmap_depth(const Aig& g, int k) {
  const auto labels = flowmap_labels(g, k);
  int d = 0;
  for (aig::Lit o : g.outputs()) d = std::max(d, labels[aig::node_of(o)]);
  return d;
}

}  // namespace vpga::compact
