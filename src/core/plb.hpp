#pragma once
/// \file plb.hpp
/// PLB architecture descriptors — the paper's Figures 1 and 4, plus the
/// parametric variants used by the application-domain ablation of Section 4.
///
/// An architecture is the multiset of component slots in one tile, the set of
/// legal configurations, and the tile geometry. Tile areas are calibrated to
/// the paper's own stated ratios: the granular PLB is ~20% larger than the
/// LUT-based PLB overall with ~26.6% more combinational logic area.

#include <array>
#include <string>
#include <vector>

#include "core/config.hpp"

namespace vpga::core {

/// One PLB tile architecture.
struct PlbArchitecture {
  std::string name;
  /// How many slots of each PlbComponent one tile provides.
  std::array<int, kNumPlbComponents> component_count{};
  /// Configurations the local interconnect supports.
  std::vector<ConfigKind> configs;
  double tile_area_um2 = 0.0;  ///< full tile (components + vias + buffers + DFF)
  double comb_area_um2 = 0.0;  ///< combinational portion of the tile

  [[nodiscard]] int count(PlbComponent c) const {
    return component_count[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] int dff_count() const { return count(PlbComponent::kDff); }
  [[nodiscard]] bool supports(ConfigKind k) const;

  /// The LUT-based heterogeneous PLB of Figure 1: one 3-LUT, two ND3WI gates,
  /// one DFF.
  static PlbArchitecture lut_based();

  /// The granular heterogeneous PLB of Figure 4: one XOA, two plain 2:1
  /// MUXes, one ND3WI gate, one DFF.
  static PlbArchitecture granular();

  /// Granular variant with `n` flip-flops per tile (Section 4: the optimal
  /// FF-to-combinational ratio is application-domain dependent).
  static PlbArchitecture granular_with_ffs(int n);
};

/// Checks whether a multiset of configurations fits simultaneously into one
/// tile of the architecture: every configuration's component needs must be
/// satisfiable by *distinct* component slots. Exact (backtracking) — tiles
/// are tiny, so this is cheap and used directly by the packer.
bool fits_in_one_plb(const PlbArchitecture& arch, const std::vector<ConfigKind>& configs);

/// All maximal simultaneous configuration multisets (for reports/tests; e.g.
/// the granular PLB's "three MX and one ND3" etc. from Section 2.3).
std::vector<std::vector<ConfigKind>> maximal_packings(
    const PlbArchitecture& arch, const std::vector<ConfigKind>& comb_configs);

}  // namespace vpga::core
