#pragma once
/// \file config.hpp
/// PLB packing configurations (Section 2.3 of the paper).
///
/// A *configuration* is a small pre-characterized composition of PLB
/// component cells that realizes a set of (up to) 3-input functions faster
/// and denser than a 3-LUT. The granular PLB (Figure 4) supports:
///   1. MX       — a single 2:1 MUX
///   2. ND3      — a single ND3WI gate
///   3. NDMX     — a 2:1 MUX driven by a single ND2WI gate
///   4. XOAMX    — a 2:1 MUX driven by another 2:1 MUX (the XOA)
///   5. XOANDMX  — a 2:1 MUX driven by a 2:1 MUX and a ND3WI gate
/// plus the FA macro of Section 2.2 (a full adder in one PLB), the LUT3
/// configuration of the LUT-based PLB (Figure 1), and the flip-flop.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "library/cells.hpp"
#include "logic/function_sets.hpp"

namespace vpga::core {

/// Physical component slots inside a PLB.
enum class PlbComponent : std::uint8_t {
  kXoa = 0,   ///< the sized-up MUX of the granular PLB
  kMux,       ///< a plain 2:1 MUX
  kNd3,       ///< ND3WI gate
  kLut3,      ///< the 3-LUT of the LUT-based PLB
  kDff,       ///< D flip-flop
};
inline constexpr int kNumPlbComponents = 5;

/// Bitmask of PlbComponent values a requirement accepts.
using ComponentClass = std::uint8_t;
constexpr ComponentClass component_bit(PlbComponent c) {
  return static_cast<ComponentClass>(1u << static_cast<unsigned>(c));
}
constexpr bool class_accepts(ComponentClass cls, PlbComponent c) {
  return (cls & component_bit(c)) != 0;
}

/// The configuration alphabet.
enum class ConfigKind : std::uint8_t {
  kMx = 0,
  kNd3,
  kNdmx,
  kXoamx,
  kXoandmx,
  kLut3,
  kFf,
  kFullAdder,
};
inline constexpr int kNumConfigKinds = 8;

/// A characterized configuration.
struct ConfigSpec {
  ConfigKind kind{};
  std::string name;
  /// 3-variable functions the configuration realizes (FA handled separately:
  /// its coverage describes the SUM output; it also produces COUT).
  logic::FnSet3 coverage;
  /// Component slots the configuration occupies; each entry is a class of
  /// acceptable components (e.g. an MX runs on a plain MUX *or* the XOA;
  /// an NDMX driver may be the ND3WI or — "packed as XOAMX" — the XOA).
  std::vector<ComponentClass> needs;
  /// Worst-case input-to-output arc through the configuration, with internal
  /// loading already folded in (only the final stage sees the external load).
  library::TimingArc arc;
  /// Sum of the standalone component-cell areas (used by the compaction
  /// accounting; the paper reports "total gate area").
  double mapped_area_um2 = 0.0;
  /// Capacitance presented per input pin (worst entry stage), for STA.
  double input_cap_ff = 0.0;
};

/// Builds the characterized configuration table from a cell library.
/// Coverage sets are exhaustively enumerated (and cached internally).
const std::array<ConfigSpec, kNumConfigKinds>& config_specs(
    const library::CellLibrary& lib = library::CellLibrary::standard());

/// Convenience lookup.
const ConfigSpec& config_spec(ConfigKind k,
                              const library::CellLibrary& lib = library::CellLibrary::standard());

const char* to_string(ConfigKind k);
const char* to_string(PlbComponent c);

}  // namespace vpga::core
