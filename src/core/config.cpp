#include "core/config.hpp"

#include <map>
#include <mutex>

#include "common/assert.hpp"
#include "logic/s3.hpp"

namespace vpga::core {
namespace {

using library::CellKind;
using library::CellLibrary;
using library::TimingArc;
using logic::FnSet3;

/// Literal/constant sources available at any via-programmable pin.
std::vector<std::uint8_t> literal_sources() {
  std::vector<std::uint8_t> out;
  out.reserve(8);  // 3 variables x 2 polarities + the two constants
  for (int v = 0; v < 3; ++v) {
    const auto t = logic::TruthTable::var(3, v);
    out.push_back(static_cast<std::uint8_t>(t.bits()));
    out.push_back(static_cast<std::uint8_t>((~t).bits()));
  }
  out.push_back(0x00);
  out.push_back(0xFF);
  return out;
}

/// Coverage of a 2:1 MUX whose pins draw from `literals` plus the members of
/// `driver_set` (at most one driver gate instance available).
FnSet3 mux_over(const FnSet3& driver_set) {
  const auto literals = literal_sources();
  FnSet3 out;
  auto mux = [](std::uint8_t s, std::uint8_t d0, std::uint8_t d1) {
    return static_cast<std::uint8_t>((~s & d0) | (s & d1));
  };
  for (int d = 0; d < 256; ++d) {
    if (!driver_set.test(static_cast<std::size_t>(d))) continue;
    auto pins = literals;
    pins.push_back(static_cast<std::uint8_t>(d));
    for (auto s : pins)
      for (auto d0 : pins)
        for (auto d1 : pins) out.set(mux(s, d0, d1));
  }
  return out;
}

/// Composite two-stage arc: `first` drives `second` internally (the only
/// external load is on the second stage's output).
TimingArc chain(const TimingArc& first, double second_cin_ff, const TimingArc& second) {
  TimingArc arc;
  arc.intrinsic_ps = first.intrinsic_ps + first.slope_ps_per_ff * second_cin_ff +
                     second.intrinsic_ps;
  arc.slope_ps_per_ff = second.slope_ps_per_ff;
  return arc;
}

/// Multi-component configurations connect their stages through fixed
/// intra-PLB wiring, avoiding the output driver sizing and routing overhead
/// every standalone cell pays. The discount keeps composite supernodes
/// slightly denser than the sum of their parts — the paper's reason that
/// collapsing logic into configurations "allows more logic to be collapsed
/// into PLBs".
constexpr double kLocalInterconnectDiscount = 0.80;

std::array<ConfigSpec, kNumConfigKinds> build(const CellLibrary& lib) {
  const auto& mux = lib.spec(CellKind::kMux2);
  const auto& xoa = lib.spec(CellKind::kXoa);
  const auto& nd3 = lib.spec(CellKind::kNd3wi);
  const auto& nd2 = lib.spec(CellKind::kNd2wi);
  const auto& lut = lib.spec(CellKind::kLut3);
  const auto& dff = lib.spec(CellKind::kDff);

  const ComponentClass any_mux =
      component_bit(PlbComponent::kMux) | component_bit(PlbComponent::kXoa);
  const ComponentClass plain_mux = component_bit(PlbComponent::kMux);
  const ComponentClass xoa_only = component_bit(PlbComponent::kXoa);
  const ComponentClass nd_only = component_bit(PlbComponent::kNd3);
  // An NDMX driver is normally the ND3WI; the paper notes a second NDMX can
  // be "packed as an XOAMX function", i.e. the XOA stands in for the ND2WI.
  const ComponentClass nd_or_xoa = nd_only | xoa_only;
  const ComponentClass lut_only = component_bit(PlbComponent::kLut3);
  const ComponentClass dff_only = component_bit(PlbComponent::kDff);

  std::array<ConfigSpec, kNumConfigKinds> out;

  auto& mx = out[static_cast<std::size_t>(ConfigKind::kMx)];
  mx = {ConfigKind::kMx, "MX", logic::mux2_set3(), {any_mux}, mux.arc, mux.area_um2};

  auto& n3 = out[static_cast<std::size_t>(ConfigKind::kNd3)];
  n3 = {ConfigKind::kNd3, "ND3", logic::nd3wi_set3(), {nd_only}, nd3.arc, nd3.area_um2};

  auto& ndmx = out[static_cast<std::size_t>(ConfigKind::kNdmx)];
  ndmx = {ConfigKind::kNdmx, "NDMX", mux_over(logic::nd2wi_set3()),
          {nd_or_xoa, plain_mux},
          chain(nd2.arc, mux.input_cap_ff, mux.arc),
          kLocalInterconnectDiscount * (nd2.area_um2 + mux.area_um2)};

  auto& xoamx = out[static_cast<std::size_t>(ConfigKind::kXoamx)];
  xoamx = {ConfigKind::kXoamx, "XOAMX", mux_over(logic::mux2_set3()),
           {xoa_only, plain_mux},
           chain(xoa.arc, mux.input_cap_ff, mux.arc),
           kLocalInterconnectDiscount * (xoa.area_um2 + mux.area_um2)};

  auto& xoandmx = out[static_cast<std::size_t>(ConfigKind::kXoandmx)];
  xoandmx = {ConfigKind::kXoandmx, "XOANDMX", logic::modified_s3_set3(),
             {xoa_only, nd_only, plain_mux},
             chain(xoa.arc, mux.input_cap_ff, mux.arc),
             kLocalInterconnectDiscount * (xoa.area_um2 + nd3.area_um2 + mux.area_um2)};

  auto& l3 = out[static_cast<std::size_t>(ConfigKind::kLut3)];
  l3 = {ConfigKind::kLut3, "LUT3", logic::lut3_set3(), {lut_only}, lut.arc, lut.area_um2};

  auto& ff = out[static_cast<std::size_t>(ConfigKind::kFf)];
  ff = {ConfigKind::kFf, "FF", {}, {dff_only}, dff.arc, dff.area_um2};

  // Full adder (Section 2.2): XOA makes P = A xor B, one MUX makes
  // SUM = P xor Cin, the ND3WI makes G = A.B, the second MUX makes
  // COUT = MUX(P; G, Cin). Coverage records the SUM function; the packer
  // treats the FA as a macro with two outputs.
  auto& fa = out[static_cast<std::size_t>(ConfigKind::kFullAdder)];
  FnSet3 fa_cov;
  fa_cov.set(static_cast<std::size_t>(logic::tt3::xor3().bits()));
  fa = {ConfigKind::kFullAdder, "FA", fa_cov,
        {xoa_only, plain_mux, plain_mux, nd_only},
        // Worst path: Cin through the SUM mux data pin is short; the critical
        // arc is A/B through the XOA into the SUM/COUT muxes.
        chain(xoa.arc, 2 * mux.input_cap_ff, mux.arc),
        kLocalInterconnectDiscount * (xoa.area_um2 + 2 * mux.area_um2 + nd3.area_um2)};

  // Input pin capacitance per configuration (worst entry stage).
  mx.input_cap_ff = mux.input_cap_ff;
  n3.input_cap_ff = nd3.input_cap_ff;
  ndmx.input_cap_ff = std::max(nd2.input_cap_ff, mux.input_cap_ff);
  xoamx.input_cap_ff = xoa.input_cap_ff;
  xoandmx.input_cap_ff = xoa.input_cap_ff;
  l3.input_cap_ff = lut.input_cap_ff;
  ff.input_cap_ff = dff.input_cap_ff;
  fa.input_cap_ff = xoa.input_cap_ff;

  return out;
}

}  // namespace

const std::array<ConfigSpec, kNumConfigKinds>& config_specs(const CellLibrary& lib) {
  // Cache one spec table per library instance; references stay valid for the
  // life of the program (node-based map, never erased).
  static std::mutex mu;
  static std::map<const CellLibrary*, std::array<ConfigSpec, kNumConfigKinds>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(&lib);
  if (it == cache.end()) it = cache.emplace(&lib, build(lib)).first;
  return it->second;
}

const ConfigSpec& config_spec(ConfigKind k, const CellLibrary& lib) {
  return config_specs(lib)[static_cast<std::size_t>(k)];
}

const char* to_string(ConfigKind k) {
  switch (k) {
    case ConfigKind::kMx: return "MX";
    case ConfigKind::kNd3: return "ND3";
    case ConfigKind::kNdmx: return "NDMX";
    case ConfigKind::kXoamx: return "XOAMX";
    case ConfigKind::kXoandmx: return "XOANDMX";
    case ConfigKind::kLut3: return "LUT3";
    case ConfigKind::kFf: return "FF";
    case ConfigKind::kFullAdder: return "FA";
  }
  return "?";
}

const char* to_string(PlbComponent c) {
  switch (c) {
    case PlbComponent::kXoa: return "XOA";
    case PlbComponent::kMux: return "MUX";
    case PlbComponent::kNd3: return "ND3WI";
    case PlbComponent::kLut3: return "LUT3";
    case PlbComponent::kDff: return "DFF";
  }
  return "?";
}

}  // namespace vpga::core
