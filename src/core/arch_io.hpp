#pragma once
/// \file arch_io.hpp
/// Textual PLB architecture descriptions.
///
/// The paper's closing proposal is application-domain-specific logic block
/// exploration; this format makes that a file-driven workflow (shared by the
/// CLI's --arch-file and the architecture_explorer example):
///
///   plb custom_ctrl
///     components xoa=1 mux=2 nd3=1 dff=2
///     configs MX ND3 NDMX XOAMX XOANDMX FF FA
///     tile_area 112
///     comb_area 63.3
///   end
///
/// Component keys: xoa, mux, nd3, lut3, dff. Config names as printed by
/// core::to_string (FA = full-adder macro).

#include <iosfwd>
#include <string>

#include "core/plb.hpp"

namespace vpga::core {

/// Serializes an architecture in the format above.
void write_architecture(std::ostream& os, const PlbArchitecture& arch);
std::string architecture_to_string(const PlbArchitecture& arch);

/// Parse result: architecture or located error.
struct ArchParseResult {
  bool ok = false;
  PlbArchitecture arch;
  std::string error;
};

/// Reads one architecture description (strict).
ArchParseResult read_architecture(std::istream& is);
ArchParseResult parse_architecture(const std::string& text);
ArchParseResult load_architecture(const std::string& path);

}  // namespace vpga::core
