#include "core/vias.hpp"

namespace vpga::core {
namespace {

/// Candidate sources a via-programmable pin can connect to inside a tile:
/// 3 block inputs x 2 polarities, the two rails, and the intermediate
/// outputs the granular PLB exposes (Section 2.3's re-arrangement).
constexpr int kSourcesPerPin = 10;

/// Pins of one component (logic pins + the output's polarity site).
int pins_of(PlbComponent c) {
  switch (c) {
    case PlbComponent::kXoa:
    case PlbComponent::kMux:
    case PlbComponent::kNd3:
    case PlbComponent::kLut3: return 3 + 1;
    case PlbComponent::kDff: return 1 + 1;
  }
  return 0;
}

}  // namespace

int potential_via_sites(const PlbArchitecture& arch) {
  int sites = 0;
  for (int c = 0; c < kNumPlbComponents; ++c)
    sites += arch.component_count[static_cast<std::size_t>(c)] *
             pins_of(static_cast<PlbComponent>(c)) * kSourcesPerPin;
  return sites;
}

int vias_for_config(ConfigKind k) {
  // One via per pin-source selection plus one per programmed polarity; the
  // LUT3 additionally programs its four leaf literals (Figure 5).
  switch (k) {
    case ConfigKind::kMx: return 4;
    case ConfigKind::kNd3: return 5;       // 3 pins + inversion sites
    case ConfigKind::kNdmx: return 8;
    case ConfigKind::kXoamx: return 8;
    case ConfigKind::kXoandmx: return 12;
    case ConfigKind::kLut3: return 3 + 4;  // selects + leaf literals
    case ConfigKind::kFf: return 2;
    case ConfigKind::kFullAdder: return 13;
  }
  return 0;
}

ViaReport count_vias(const netlist::Netlist& nl, const PlbArchitecture& arch, int tiles) {
  ViaReport r;
  r.potential = static_cast<long long>(tiles) * potential_via_sites(arch);
  for (netlist::NodeId id : nl.all_nodes()) {
    const auto& n = nl.node(id);
    if (n.in_macro() && n.macro_rep != id) continue;
    if (n.type == netlist::NodeType::kDff) {
      r.placed += vias_for_config(ConfigKind::kFf);
    } else if (n.type == netlist::NodeType::kComb && n.has_config()) {
      r.placed += vias_for_config(static_cast<ConfigKind>(n.config_tag));
    }
  }
  return r;
}

}  // namespace vpga::core
