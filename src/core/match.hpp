#pragma once
/// \file match.hpp
/// Function-to-configuration matching for a PLB architecture.
///
/// Given a 3-input function, these helpers pick the configuration a PLB
/// architecture would use for it — the mechanism behind the paper's
/// observation that "the majority of the functions that are mapped to a
/// 3-LUT in the LUT-based PLB are mapped to a NDMX or XOAMX configuration in
/// the proposed granular PLB".

#include <cstdint>
#include <optional>

#include "core/plb.hpp"

namespace vpga::core {

/// The minimum-gate-area configuration of `arch` implementing the 3-variable
/// function `tt` (flip-flop and FA macro excluded). nullopt if no single
/// configuration covers it (the function then needs multiple PLB levels).
std::optional<ConfigKind> min_area_config(const PlbArchitecture& arch, std::uint8_t tt);

/// The minimum-delay configuration (intrinsic-delay order) implementing `tt`.
std::optional<ConfigKind> min_delay_config(const PlbArchitecture& arch, std::uint8_t tt);

}  // namespace vpga::core
