#include "core/arch_io.hpp"

#include <fstream>
#include <map>
#include <sstream>

namespace vpga::core {
namespace {

const std::map<std::string, PlbComponent>& component_keys() {
  static const std::map<std::string, PlbComponent> keys = {
      {"xoa", PlbComponent::kXoa},   {"mux", PlbComponent::kMux},
      {"nd3", PlbComponent::kNd3},   {"lut3", PlbComponent::kLut3},
      {"dff", PlbComponent::kDff},
  };
  return keys;
}

const char* component_key(PlbComponent c) {
  switch (c) {
    case PlbComponent::kXoa: return "xoa";
    case PlbComponent::kMux: return "mux";
    case PlbComponent::kNd3: return "nd3";
    case PlbComponent::kLut3: return "lut3";
    case PlbComponent::kDff: return "dff";
  }
  return "?";
}

bool parse_config_name(const std::string& s, ConfigKind& out) {
  for (int i = 0; i < kNumConfigKinds; ++i) {
    const auto k = static_cast<ConfigKind>(i);
    if (s == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

}  // namespace

void write_architecture(std::ostream& os, const PlbArchitecture& arch) {
  os << "plb " << arch.name << "\n  components";
  for (int c = 0; c < kNumPlbComponents; ++c) {
    const int n = arch.component_count[static_cast<std::size_t>(c)];
    if (n > 0) os << ' ' << component_key(static_cast<PlbComponent>(c)) << '=' << n;
  }
  os << "\n  configs";
  for (ConfigKind k : arch.configs) os << ' ' << to_string(k);
  os << "\n  tile_area " << arch.tile_area_um2;
  os << "\n  comb_area " << arch.comb_area_um2;
  os << "\nend\n";
}

std::string architecture_to_string(const PlbArchitecture& arch) {
  std::ostringstream os;
  write_architecture(os, arch);
  return os.str();
}

ArchParseResult read_architecture(std::istream& is) {
  ArchParseResult result;
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& msg) {
    result.ok = false;
    result.error = "line " + std::to_string(lineno) + ": " + msg;
    return result;
  };

  PlbArchitecture arch;
  bool saw_plb = false, saw_end = false;
  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw) || kw[0] == '#') continue;
    if (kw == "plb") {
      if (saw_plb) return fail("duplicate 'plb'");
      if (!(ls >> arch.name)) return fail("'plb' needs a name");
      saw_plb = true;
    } else if (kw == "components") {
      if (!saw_plb) return fail("'components' before 'plb'");
      std::string tok;
      while (ls >> tok) {
        const auto eq = tok.find('=');
        if (eq == std::string::npos) return fail("component needs key=count: " + tok);
        const auto it = component_keys().find(tok.substr(0, eq));
        if (it == component_keys().end()) return fail("unknown component '" + tok + "'");
        int count = 0;
        try {
          count = std::stoi(tok.substr(eq + 1));
        } catch (...) {
          return fail("bad count in '" + tok + "'");
        }
        if (count < 0 || count > 64) return fail("count out of range in '" + tok + "'");
        arch.component_count[static_cast<std::size_t>(it->second)] = count;
      }
    } else if (kw == "configs") {
      if (!saw_plb) return fail("'configs' before 'plb'");
      std::string tok;
      while (ls >> tok) {
        ConfigKind k;
        if (!parse_config_name(tok, k)) return fail("unknown config '" + tok + "'");
        arch.configs.push_back(k);
      }
    } else if (kw == "tile_area") {
      if (!(ls >> arch.tile_area_um2) || arch.tile_area_um2 <= 0)
        return fail("tile_area needs a positive number");
    } else if (kw == "comb_area") {
      if (!(ls >> arch.comb_area_um2) || arch.comb_area_um2 <= 0)
        return fail("comb_area needs a positive number");
    } else if (kw == "end") {
      saw_end = true;
      break;
    } else {
      return fail("unknown keyword '" + kw + "'");
    }
  }
  if (!saw_plb) {
    lineno = std::max(1, lineno);
    return fail("missing 'plb' header");
  }
  if (!saw_end) return fail("missing 'end'");
  if (arch.configs.empty()) return fail("architecture declares no configs");
  if (arch.tile_area_um2 <= 0) return fail("missing tile_area");
  if (arch.comb_area_um2 <= 0) return fail("missing comb_area");
  // Sanity: every config must be satisfiable by the declared components.
  for (ConfigKind k : arch.configs) {
    if (!fits_in_one_plb(arch, {k}))
      return fail(std::string("config ") + to_string(k) + " cannot fit in this tile");
  }
  result.ok = true;
  result.arch = std::move(arch);
  return result;
}

ArchParseResult parse_architecture(const std::string& text) {
  std::istringstream is(text);
  return read_architecture(is);
}

ArchParseResult load_architecture(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    ArchParseResult r;
    r.error = "cannot open " + path;
    return r;
  }
  return read_architecture(is);
}

}  // namespace vpga::core
